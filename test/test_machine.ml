(* Tests for the virtual machine: memory, interpreter semantics,
   builtins, traps, cycle accounting, attacker API. *)

module Memory = Rsti_machine.Memory
module Interp = Rsti_machine.Interp
module Cost = Rsti_machine.Cost
module Layout = Rsti_machine.Layout
module Pipeline = Rsti_engine.Pipeline

let compiled src = Pipeline.compile (Pipeline.source ~file:"t.c" src)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.check Alcotest.int64
let checks = Alcotest.(check string)

(* ------------------------------ memory ----------------------------- *)

let test_mem_u8_roundtrip () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~size:16;
  Memory.write_u8 m 0x1000L 0xAB;
  checki "u8" 0xAB (Memory.read_u8 m 0x1000L)

let test_mem_u64_roundtrip () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~size:16;
  Memory.write_u64 m 0x1008L 0xDEADBEEF12345678L;
  check64 "u64" 0xDEADBEEF12345678L (Memory.read_u64 m 0x1008L)

let test_mem_page_straddle () =
  let m = Memory.create () in
  Memory.map m ~addr:0xFF8L ~size:16;
  Memory.write_u64 m 0xFFCL 0x1122334455667788L;
  check64 "straddling u64" 0x1122334455667788L (Memory.read_u64 m 0xFFCL)

let test_mem_unmapped_faults () =
  let m = Memory.create () in
  checkb "unmapped" true
    (try ignore (Memory.read_u8 m 0x5000L) ; false
     with Memory.Fault (Memory.Unmapped _) -> true)

let test_mem_non_canonical_faults () =
  let m = Memory.create () in
  checkb "non-canonical" true
    (try ignore (Memory.read_u64 m 0x00FF_0000_0000_1000L) ; false
     with Memory.Fault (Memory.Non_canonical _) -> true)

let test_mem_read_only () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~size:64;
  Memory.protect m ~addr:0x1000L ~size:64;
  checkb "write to RO faults" true
    (try Memory.write_u64 m 0x1000L 1L ; false
     with Memory.Fault (Memory.Read_only _) -> true);
  (* raw writes (the runtime's own) bypass protection *)
  Memory.write_u64_raw m 0x1000L 7L;
  check64 "raw write ok" 7L (Memory.read_u64 m 0x1000L)

let test_mem_cstring () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~size:64;
  Memory.write_cstring m 0x1000L "hello";
  checks "cstring" "hello" (Memory.read_cstring m 0x1000L);
  checki "nul" 0 (Memory.read_u8 m 0x1005L)

(* ---------------------------- interpreter --------------------------- *)

let run ?attacks src = Pipeline.run_baseline ?attacks (compiled src)

let exit_code src =
  match (run src).Interp.status with
  | Interp.Exited n -> n
  | Interp.Trapped t -> Alcotest.failf "trap: %s" (Interp.trap_to_string t)

let test_interp_arith () =
  check64 "arith" 14L (exit_code "int main(void) { return 2 + 3 * 4; }")

let test_interp_division_truncates () =
  check64 "C division" (-2L) (exit_code "int main(void) { return -7 / 3; }");
  check64 "C modulo" (-1L) (exit_code "int main(void) { return -7 % 3; }")

let test_interp_div_by_zero_traps () =
  match (run "int main(void) { int z = 0; return 1 / z; }").Interp.status with
  | Interp.Trapped (Interp.Div_by_zero _) -> ()
  | _ -> Alcotest.fail "expected div-by-zero trap"

let test_interp_fib () =
  check64 "fib(10)" 55L
    (exit_code
       "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
        int main(void) { return fib(10); }")

let test_interp_floats () =
  check64 "double math" 7L
    (exit_code "int main(void) { double x = 2.5; double y = 0.5; return (int)(x / y + 2.0); }")

let test_interp_char_semantics () =
  check64 "char ops" 1L
    (exit_code
       "int main(void) { char buf[4]; buf[0] = 'a'; buf[1] = 'b';\n\
        return buf[1] - buf[0]; }")

let test_interp_short_circuit_effects () =
  (* the right-hand side must not run when the left decides *)
  check64 "short circuit" 0L
    (exit_code
       "int hits = 0;\nint bump(void) { hits = hits + 1; return 1; }\n\
        int main(void) { int a = 0; if (a && bump()) { } if (!a || bump()) { }\n\
        return hits; }")

let test_interp_for_continue () =
  (* continue must still execute the step expression *)
  check64 "continue hits step" 20L
    (exit_code
       "int main(void) { int s = 0;\n\
        for (int i = 0; i < 5; i++) { if (i == 2) { continue; } s += 10; }\n\
        return s / 2; }")

let test_interp_do_while () =
  check64 "do-while runs once" 1L
    (exit_code "int main(void) { int n = 0; do { n++; } while (n < 1); return n; }")

let test_interp_cond_expr () =
  check64 "ternary" 5L
    (exit_code "int main(void) { int a = 3; return a > 2 ? 5 : 9; }")

let test_interp_globals_initialized () =
  check64 "global init order" 12L
    (exit_code "int a = 5;\nint b = 7;\nint main(void) { return a + b; }")

let test_interp_function_pointers () =
  check64 "indirect call" 9L
    (exit_code
       "int sq(int x) { return x * x; }\n\
        int main(void) { int (*f)(int) = sq; return f(3); }")

let test_interp_strings_builtins () =
  let o =
    run
      "extern int printf(const char* f, ...);\n\
       extern long strlen(const char* s);\n\
       extern int strcmp(const char* a, const char* b);\n\
       extern char* strstr(const char* h, const char* n);\n\
       int main(void) {\n\
       printf(\"len=%ld cmp=%d found=%d\\n\", strlen(\"abcd\"),\n\
       strcmp(\"a\", \"b\") < 0 ? 1 : 0, strstr(\"hello\", \"ll\") ? 1 : 0);\n\
       return 0; }"
  in
  checks "builtin output" "len=4 cmp=1 found=1\n" o.Interp.output

let test_interp_memcpy_memset () =
  check64 "memcpy/memset" 0L
    (exit_code
       "extern void* memset(void* p, int c, long n);\n\
        extern void* memcpy(void* d, const void* s, long n);\n\
        int main(void) { char a[8]; char b[8];\n\
        memset(a, 65, 8); memcpy(b, a, 8);\n\
        return b[7] == 65 ? 0 : 1; }")

let test_interp_exit_builtin () =
  match (run "extern void exit(int c);\nint main(void) { exit(42); return 0; }").status with
  | Interp.Exited 42L -> ()
  | _ -> Alcotest.fail "exit(42)"

let test_interp_malloc_zeroed () =
  check64 "heap zeroed" 0L
    (exit_code
       "extern void* malloc(long n);\n\
        int main(void) { long* p = (long*) malloc(64); return (int) p[3]; }")

let test_interp_stack_overflow () =
  match
    (run "int boom(int n) { int pad[64]; pad[0] = n; return boom(n + pad[0]); }\n\
          int main(void) { return boom(1); }")
      .status
  with
  | Interp.Trapped Interp.Stack_overflow -> ()
  | s ->
      Alcotest.failf "expected stack overflow, got %s"
        (match s with
        | Interp.Exited n -> Printf.sprintf "exit %Ld" n
        | Interp.Trapped t -> Interp.trap_to_string t)

let test_interp_step_limit () =
  (* step_limit is an Interp-level knob, so build the machine by hand
     from the pipeline's compiled module *)
  let m = Pipeline.ir (compiled "int main(void) { while (1) { } return 0; }") in
  let vm = Interp.create m in
  match (Interp.run ~step_limit:10_000 vm).status with
  | Interp.Trapped Interp.Step_limit_exceeded -> ()
  | _ -> Alcotest.fail "expected step limit"

let test_interp_cycles_positive_and_counted () =
  let o = run "int main(void) { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }" in
  checkb "cycles > instrs" true (o.Interp.cycles > o.Interp.counts.instrs);
  checkb "loads counted" true (o.Interp.counts.loads > 0)

let test_interp_snprintf () =
  let o =
    run
      "extern int snprintf(char* buf, long n, const char* f, ...);\n\
       extern int printf(const char* f, ...);\n\
       int main(void) { char b[16]; snprintf(b, 16, \"%d-%d\", 4, 2);\n\
       printf(\"%s\", b); return 0; }"
  in
  checks "snprintf" "4-2" o.Interp.output

let test_interp_machine_single_use () =
  let m = Pipeline.ir (compiled "int main(void) { return 0; }") in
  let vm = Interp.create m in
  ignore (Interp.run vm);
  checkb "second run rejected" true
    (try ignore (Interp.run vm) ; false with Invalid_argument _ -> true)

let test_interp_qsort_callback () =
  (* libc qsort calls back into instrumented program code through the
     comparator pointer: the section-4.6 external-library boundary *)
  let src =
    "extern void qsort(void* base, long n, long size, int (*cmp)(const void* a, const void* b));\n\
     extern int printf(const char* f, ...);\n\
     long data[6];\n\
     int cmp_longs(const void* a, const void* b) {\n\
     long x = *((const long*) a); long y = *((const long*) b);\n\
     return x < y ? -1 : (x > y ? 1 : 0); }\n\
     int main(void) {\n\
     data[0] = 3; data[1] = 1; data[2] = 2; data[3] = 9; data[4] = 0; data[5] = 4;\n\
     qsort((void*) data, 6, sizeof(long), cmp_longs);\n\
     for (int i = 0; i < 6; i++) { printf(\"%ld\", data[i]); }\n\
     return 0; }"
  in
  (* must hold both uninstrumented and under STWC (strip at the boundary) *)
  let c = compiled src in
  let plain = Pipeline.run_baseline c in
  checks "sorted" "012349" plain.Interp.output;
  let o =
    Pipeline.run (Pipeline.instrument Rsti_sti.Rsti_type.Stwc (Pipeline.analyze c))
  in
  checks "sorted under STWC" "012349" o.Interp.output

let test_interp_strdup () =
  check64 "strdup copies" 0L
    (exit_code
       "extern char* strdup(const char* s);\n\
        extern int strcmp(const char* a, const char* b);\n\
        int main(void) { char* d = strdup(\"xyz\"); return strcmp(d, \"xyz\"); }")

let test_interp_calloc_and_math () =
  check64 "calloc + sqrt" 5L
    (exit_code
       "extern void* calloc(long n, long sz);\n\
        extern double sqrt(double x);\n\
        int main(void) { long* a = (long*) calloc(4, 8);\n\
        a[0] = (long) sqrt(25.0); return (int) (a[0] + a[1]); }")

let test_interp_strncpy_strcat () =
  let o =
    run
      "extern char* strncpy(char* d, const char* s, long n);\n\
       extern char* strcat(char* d, const char* s);\n\
       extern int printf(const char* f, ...);\n\
       int main(void) { char b[32]; strncpy(b, \"hello world\", 5);\n\
       strcat(b, \"!\"); printf(\"%s\", b); return 0; }"
  in
  checks "strncpy+strcat" "hello!" o.Interp.output

let test_interp_atoi_putchar () =
  let o =
    run
      "extern int atoi(const char* s);\n\
       extern int putchar(int c);\n\
       int main(void) { int n = atoi(\"65\"); putchar(n); putchar(n + 1); return n; }"
  in
  checks "putchar" "AB" o.Interp.output

let test_interp_unknown_function_traps () =
  (* the type checker rejects undeclared calls, so the runtime trap is
     only reachable through a missing entry point *)
  let c = compiled "int main(void) { return 0; }" in
  match (Pipeline.run_baseline ~entry:"not_main" c).Interp.status with
  | Interp.Trapped (Interp.Unknown_function _) -> ()
  | _ -> Alcotest.fail "expected unknown-function trap"

let test_interp_profiles_populated () =
  let o =
    run
      "extern int printf(const char* f, ...);\n\
       void tick(void) { }\n\
       int main(void) { for (int i = 0; i < 5; i++) { tick(); } printf(\"x\"); return 0; }"
  in
  checkb "tick counted 5x" true (List.assoc_opt "tick" o.Interp.call_profile = Some 5);
  checkb "printf counted" true (List.assoc_opt "printf" o.Interp.extern_profile = Some 1)

let test_interp_switch_semantics () =
  check64 "fallthrough + default" 422L
    (exit_code
       "int main(void) { int total = 0;\n\
        for (int i = 0; i < 6; i++) {\n\
        switch (i % 3) { case 0: continue; case 1: total += 10; break;\n\
        default: total += 1; }\n\
        total += 100; }\n\
        return total; }")

let test_interp_switch_no_default () =
  check64 "unmatched falls out" 7L
    (exit_code
       "int main(void) { int x = 7; switch (x) { case 1: x = 0; break; } return x; }")

(* --------------------------- attacker API --------------------------- *)

let test_attack_hooks_fire_in_order () =
  let fired = ref [] in
  let atk name trigger =
    { Interp.trigger; action = (fun intr -> intr.note name; fired := name :: !fired) }
  in
  let src =
    "extern int printf(const char* f, ...);\n\
     void step(int n) { printf(\"step %d\\n\", n); }\n\
     int main(void) { step(1); step(2); step(3); return 0; }"
  in
  let o =
    run
      ~attacks:
        [ atk "on-2nd-step" (Interp.On_call ("step", 2));
          atk "on-1st-printf" (Interp.On_extern ("printf", 1)) ]
      src
  in
  checki "both fired" 2 (List.length !fired);
  checkb "events recorded" true
    (List.exists (function Interp.Ev_attack _ -> true | _ -> false) o.Interp.events)

let test_attack_write_visible_to_program () =
  let src = "long g = 1;\nvoid poke(void) { }\nint main(void) { poke(); return (int) g; }" in
  let atk =
    {
      Interp.trigger = Interp.On_call ("poke", 1);
      action = (fun intr -> intr.write_word (intr.global_addr "g") 99L);
    }
  in
  match (run ~attacks:[ atk ] src).status with
  | Interp.Exited 99L -> ()
  | _ -> Alcotest.fail "attacker write not visible"

let test_attack_heap_allocs_listed () =
  let seen = ref 0 in
  let src =
    "extern void* malloc(long n);\nvoid mark(void) { }\n\
     int main(void) { void* a = malloc(16); void* b = malloc(32); mark();\n\
     return a && b ? 0 : 1; }"
  in
  let atk =
    {
      Interp.trigger = Interp.On_call ("mark", 1);
      action = (fun intr -> seen := List.length (intr.heap_allocs ()));
    }
  in
  ignore (run ~attacks:[ atk ] src);
  checki "two allocations" 2 !seen

(* ------------------------------- cost ------------------------------- *)

let test_cost_model_scales () =
  let c =
    compiled
      "int main(void) { int s = 0; for (int i = 0; i < 50; i++) { s += i; } return s; }"
  in
  let run_with costs =
    (Pipeline.run_baseline ~config:{ Pipeline.default with Pipeline.costs } c)
      .Interp.cycles
  in
  let base = run_with Cost.default in
  let double = run_with { Cost.default with alu = Cost.default.alu * 2 } in
  checkb "alu cost scales cycles" true (double > base)

let test_cost_with_pac () =
  checki "with_pac" 11 (Cost.with_pac Cost.default 11).Cost.pac

let tests =
  [
    Alcotest.test_case "mem: u8 roundtrip" `Quick test_mem_u8_roundtrip;
    Alcotest.test_case "mem: u64 roundtrip" `Quick test_mem_u64_roundtrip;
    Alcotest.test_case "mem: page straddle" `Quick test_mem_page_straddle;
    Alcotest.test_case "mem: unmapped faults" `Quick test_mem_unmapped_faults;
    Alcotest.test_case "mem: non-canonical faults" `Quick test_mem_non_canonical_faults;
    Alcotest.test_case "mem: read-only regions" `Quick test_mem_read_only;
    Alcotest.test_case "mem: cstrings" `Quick test_mem_cstring;
    Alcotest.test_case "interp: arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp: division truncates" `Quick test_interp_division_truncates;
    Alcotest.test_case "interp: div by zero" `Quick test_interp_div_by_zero_traps;
    Alcotest.test_case "interp: recursion (fib)" `Quick test_interp_fib;
    Alcotest.test_case "interp: floats" `Quick test_interp_floats;
    Alcotest.test_case "interp: char semantics" `Quick test_interp_char_semantics;
    Alcotest.test_case "interp: short-circuit" `Quick test_interp_short_circuit_effects;
    Alcotest.test_case "interp: for-continue" `Quick test_interp_for_continue;
    Alcotest.test_case "interp: do-while" `Quick test_interp_do_while;
    Alcotest.test_case "interp: ternary" `Quick test_interp_cond_expr;
    Alcotest.test_case "interp: global init" `Quick test_interp_globals_initialized;
    Alcotest.test_case "interp: function pointers" `Quick test_interp_function_pointers;
    Alcotest.test_case "interp: string builtins" `Quick test_interp_strings_builtins;
    Alcotest.test_case "interp: memcpy/memset" `Quick test_interp_memcpy_memset;
    Alcotest.test_case "interp: exit()" `Quick test_interp_exit_builtin;
    Alcotest.test_case "interp: heap zeroed" `Quick test_interp_malloc_zeroed;
    Alcotest.test_case "interp: stack overflow" `Quick test_interp_stack_overflow;
    Alcotest.test_case "interp: step limit" `Quick test_interp_step_limit;
    Alcotest.test_case "interp: cycle accounting" `Quick test_interp_cycles_positive_and_counted;
    Alcotest.test_case "interp: snprintf" `Quick test_interp_snprintf;
    Alcotest.test_case "interp: single use" `Quick test_interp_machine_single_use;
    Alcotest.test_case "interp: switch semantics" `Quick test_interp_switch_semantics;
    Alcotest.test_case "interp: switch no default" `Quick test_interp_switch_no_default;
    Alcotest.test_case "interp: qsort callback" `Quick test_interp_qsort_callback;
    Alcotest.test_case "interp: strdup" `Quick test_interp_strdup;
    Alcotest.test_case "interp: calloc + math" `Quick test_interp_calloc_and_math;
    Alcotest.test_case "interp: strncpy/strcat" `Quick test_interp_strncpy_strcat;
    Alcotest.test_case "interp: atoi/putchar" `Quick test_interp_atoi_putchar;
    Alcotest.test_case "interp: unknown function" `Quick test_interp_unknown_function_traps;
    Alcotest.test_case "interp: profiles" `Quick test_interp_profiles_populated;
    Alcotest.test_case "attack: hooks fire" `Quick test_attack_hooks_fire_in_order;
    Alcotest.test_case "attack: writes visible" `Quick test_attack_write_visible_to_program;
    Alcotest.test_case "attack: heap allocs" `Quick test_attack_heap_allocs_listed;
    Alcotest.test_case "cost: scales" `Quick test_cost_model_scales;
    Alcotest.test_case "cost: with_pac" `Quick test_cost_with_pac;
  ]

(* Tests for the telemetry layer: the span recorder (nesting, the
   disabled no-op contract, well-formed Chrome trace output), the
   metrics registry (roundtrip through its JSON document), the
   determinism contract (span name-tree and non-volatile counters are
   identical whether a suite runs on one domain or four), the exact
   hot-site profiler (sites partition every global counter, and
   re-pricing a cached profiled run matches a fresh simulation
   per-site), the per-stage cache statistics, the histogram
   percentiles, the sorted-JSONL event log (byte-identical at any job
   count, including the full incident collection), the incident
   coverage invariant (every detected attack maps into the static
   attack surface), and a qcheck property tying flight-recorder
   latency attribution to the exact profiler's counters. *)

module Observe = Rsti_observe.Observe
module Span = Observe.Span
module M = Observe.Metrics
module J = Rsti_staticcheck.Json
module Pipeline = Rsti_engine.Pipeline
module Scheduler = Rsti_engine.Scheduler
module Cache = Rsti_engine.Cache
module Interp = Rsti_machine.Interp
module Workload = Rsti_workloads.Workload
module RT = Rsti_sti.Rsti_type

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Enable span recording around [f], restoring the disabled default
   (and an empty record list) whatever happens. *)
let with_spans f =
  Observe.set_enabled true;
  Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Observe.set_enabled false;
      Span.reset ())
    f

(* ------------------------------ spans ------------------------------ *)

let test_span_records () =
  with_spans (fun () ->
      Span.with_ "outer" (fun () ->
          Span.with_ ~attrs:[ ("k", "v") ] "inner" (fun () -> ());
          Span.with_ "inner" (fun () -> ()));
      let rs = Span.records () in
      checki "three spans recorded" 3 (List.length rs);
      let outer = List.find (fun r -> r.Span.name = "outer") rs in
      checki "outer is a root" (-1) outer.Span.parent;
      List.iter
        (fun r ->
          if r.Span.name = "inner" then
            checki "inner nests under outer" outer.Span.id r.Span.parent)
        rs;
      let inner = List.find (fun r -> r.Span.name = "inner") rs in
      checkb "attribute recorded" true (List.mem ("k", "v") inner.Span.attrs);
      List.iter
        (fun r ->
          checkb "span interval is non-negative" true
            (Int64.compare r.Span.t_end_ns r.Span.t_start_ns >= 0))
        rs)

let test_disabled_noop () =
  Observe.set_enabled false;
  Span.reset ();
  let sp = Span.enter "nope" in
  checkb "enter returns the preallocated none handle" true (sp == Span.none);
  Span.add_attr sp "k" "v";
  Span.exit sp;
  checki "nothing recorded while disabled" 0 (List.length (Span.records ()))

(* ----------------------------- metrics ----------------------------- *)

let test_metrics_registry () =
  M.reset ();
  let c = M.counter "test.alpha" in
  M.incr c;
  M.add c 4;
  checki "counter accumulates" 5 (M.value c);
  checki "registration is idempotent" 5 (M.value (M.counter "test.alpha"));
  let g = M.gauge "test.gamma" in
  M.set_gauge g 42;
  checki "gauge holds last value" 42 (M.gauge_value g);
  let h = M.histogram "test.hist" in
  M.observe h 1.5;
  M.observe h 2.5;
  (match J.of_string (Observe.Json.to_string (M.to_json ())) with
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  | Ok (J.Obj fields) -> (
      checkb "schema tag" true
        (List.assoc "schema" fields = J.Str "rsti-metrics/1");
      (match List.assoc "counters" fields with
      | J.Obj cs ->
          checkb "counter in document" true
            (List.assoc "test.alpha" cs = J.Int 5)
      | _ -> Alcotest.fail "counters is not an object");
      match List.assoc "histograms" fields with
      | J.Obj hs -> (
          match List.assoc "test.hist" hs with
          | J.Obj fs ->
              checkb "histogram count" true (List.assoc "count" fs = J.Int 2)
          | _ -> Alcotest.fail "histogram entry is not an object")
      | _ -> Alcotest.fail "histograms is not an object")
  | Ok _ -> Alcotest.fail "metrics JSON is not an object");
  M.reset ();
  checki "reset zeroes values" 0 (M.value c)

(* --------------------------- chrome trace --------------------------- *)

let test_chrome_trace_wellformed () =
  with_spans (fun () ->
      Cache.clear ();
      let w = List.hd Rsti_workloads.Nbench.all in
      let src = Pipeline.source ~file:"trace.c" w.Workload.source in
      ignore
        (Pipeline.run
           (Pipeline.instrument RT.Stwc
              (Pipeline.analyze (Pipeline.compile src))));
      match J.of_string (Observe.Json.to_string (Span.chrome_trace ())) with
      | Error e -> Alcotest.failf "trace does not parse: %s" e
      | Ok (J.Obj fields) -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (J.List evs) ->
              checkb "events recorded" true (evs <> []);
              List.iter
                (function
                  | J.Obj fs ->
                      List.iter
                        (fun k ->
                          checkb (k ^ " field present") true
                            (List.mem_assoc k fs))
                        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
                      checkb "complete (\"X\") event" true
                        (List.assoc "ph" fs = J.Str "X")
                  | _ -> Alcotest.fail "event is not an object")
                evs
          | _ -> Alcotest.fail "no traceEvents list")
      | Ok _ -> Alcotest.fail "trace document is not an object")

(* --------------------- determinism across jobs ---------------------- *)

(* The claim split (own vs. steal), the per-worker task counters, and
   which racing domain gets charged the duplicated recomputation are
   scheduling noise by construction; everything else must be identical
   for any job count. *)
let volatile name =
  let prefixed p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  (prefixed "scheduler." && name <> "scheduler.tasks")
  || Filename.check_suffix name ".duplicated"

let span_paths () =
  let rs = Span.records () in
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace tbl r.Span.id r) rs;
  let rec path r =
    match Hashtbl.find_opt tbl r.Span.parent with
    | Some p -> path p ^ "/" ^ r.Span.name
    | None -> r.Span.name
  in
  List.sort compare (List.map path rs)

let telemetry_run ~jobs () =
  Observe.reset ();
  Cache.clear ();
  let ws = List.filteri (fun i _ -> i < 3) Rsti_workloads.Nbench.all in
  ignore
    (Scheduler.map ~jobs
       (fun (w : Workload.t) ->
         let src = Pipeline.source ~file:(w.name ^ ".c") w.source in
         let i =
           Pipeline.instrument RT.Stwc
             (Pipeline.analyze (Pipeline.compile src))
         in
         (Pipeline.run i).Interp.cycles)
       ws);
  let counters =
    List.filter (fun (n, _) -> not (volatile n)) (M.counters ())
  in
  (span_paths (), counters)

let test_telemetry_identical_across_jobs () =
  Observe.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Observe.set_enabled false;
      Observe.reset ())
    (fun () ->
      let paths1, counters1 = telemetry_run ~jobs:1 () in
      let paths4, counters4 = telemetry_run ~jobs:4 () in
      checkb "span name-tree identical jobs=1 vs 4" true (paths1 = paths4);
      checki "same counter count" (List.length counters1)
        (List.length counters4);
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          checkb (Printf.sprintf "counter name %s" n1) true (n1 = n2);
          checki (Printf.sprintf "counter %s jobs=1 vs 4" n1) v1 v2)
        counters1 counters4)

(* ---------------------------- profiler ------------------------------ *)

(* The exact profiler's partition invariant: an outcome's sites sum to
   the global cycle and event counters, for every kernel and mechanism. *)
let test_profiler_partitions_totals () =
  let kernels =
    [
      List.hd Rsti_workloads.Spec2006.all;
      List.hd Rsti_workloads.Nbench.all;
      List.hd Rsti_workloads.Pytorch.all;
    ]
  in
  let config = { Pipeline.default with Pipeline.cache = false } in
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun mech ->
          let src = Pipeline.source ~file:(w.name ^ ".c") w.source in
          let i =
            Pipeline.instrument ~config mech
              (Pipeline.analyze ~config (Pipeline.compile ~config src))
          in
          let o = Pipeline.run ~config ~profile:true i in
          let sum f = List.fold_left (fun acc s -> acc + f s) 0 o.Interp.sites in
          let name what =
            Printf.sprintf "%s/%s: %s" w.name (RT.mechanism_to_string mech)
              what
          in
          checkb (name "profile non-empty") true (o.Interp.sites <> []);
          checki (name "cycles partition") o.Interp.cycles
            (sum (fun s -> s.Interp.s_cycles));
          checki (name "instrs partition") o.Interp.counts.Interp.instrs
            (sum (fun s -> s.Interp.s_instrs));
          checki (name "pac-charge partition")
            o.Interp.counts.Interp.pac_charges
            (sum (fun s -> s.Interp.s_pac_charges));
          checki (name "strip partition") o.Interp.counts.Interp.pac_strips
            (sum (fun s -> s.Interp.s_strips));
          checki (name "pp partition") o.Interp.counts.Interp.pp_calls
            (sum (fun s -> s.Interp.s_pp_calls));
          let o0 = Pipeline.run ~config i in
          checki (name "profiling does not change cycles") o0.Interp.cycles
            o.Interp.cycles;
          checkb (name "unprofiled outcome has no sites") true
            (o0.Interp.sites = []))
        RT.all_mechanisms)
    kernels

(* Serving a profiled run from the cache under a different PA cost
   re-prices every site exactly: the served sites equal a fresh
   profiled simulation's, per-site. *)
let test_profile_reprice_exact () =
  Cache.clear ();
  let w = List.hd Rsti_workloads.Nbench.all in
  let src = Pipeline.source ~file:"prof_reprice.c" w.Workload.source in
  let a = Pipeline.analyze (Pipeline.compile src) in
  let i = Pipeline.instrument RT.Stwc a in
  let config pac =
    {
      Pipeline.default with
      Pipeline.costs = Rsti_machine.Cost.(with_pac default pac);
    }
  in
  ignore (Pipeline.run ~config:(config 7) ~profile:true i);
  List.iter
    (fun pac ->
      let served = Pipeline.run ~config:(config pac) ~profile:true i in
      let fresh =
        Pipeline.run
          ~config:{ (config pac) with Pipeline.cache = false }
          ~profile:true i
      in
      checki
        (Printf.sprintf "cycles at pac=%d" pac)
        fresh.Interp.cycles served.Interp.cycles;
      checkb
        (Printf.sprintf "per-site profile at pac=%d" pac)
        true
        (served.Interp.sites = fresh.Interp.sites);
      checki
        (Printf.sprintf "repriced sites still partition at pac=%d" pac)
        served.Interp.cycles
        (List.fold_left (fun acc s -> acc + s.Interp.s_cycles) 0
           served.Interp.sites))
    [ 3; 12 ]

(* ------------------------- per-stage cache -------------------------- *)

let test_cache_stage_stats () =
  Cache.clear ();
  let w = List.hd Rsti_workloads.Nbench.all in
  let src = Pipeline.source ~file:"stage.c" w.Workload.source in
  let go () = Pipeline.analyze (Pipeline.compile src) in
  ignore (go ());
  ignore (go ());
  let st = Cache.stage_stats () in
  checkb "stages in pipeline order" true
    (List.map fst st
    = [
        "compile";
        "analysis";
        "points_to";
        "points_to_cs";
        "scope_escape";
        "elide";
        "elide_pt";
        "elide_ctx";
        "instrument";
        "validate";
        "outcome";
        "attack_surface";
        "incident";
      ]);
  let find n = List.assoc n st in
  checki "one compile miss" 1 (find "compile").Cache.misses;
  checkb "compile hit on the second pass" true
    ((find "compile").Cache.hits >= 1);
  checki "one analysis miss" 1 (find "analysis").Cache.misses;
  let agg = Cache.stats () in
  checki "aggregate hits = stage sum" agg.Cache.hits
    (List.fold_left (fun acc (_, s) -> acc + s.Cache.hits) 0 st);
  checki "aggregate misses = stage sum" agg.Cache.misses
    (List.fold_left (fun acc (_, s) -> acc + s.Cache.misses) 0 st);
  checki "aggregate duplicated = stage sum" agg.Cache.duplicated
    (List.fold_left (fun acc (_, s) -> acc + s.Cache.duplicated) 0 st)

(* --------------------- metrics percentiles -------------------------- *)

(* The histogram's p50/p90/p99 use the same type-7 quantile as
   Rsti_util.Stats, so the JSON summaries agree with the report
   tables. *)
let test_metrics_percentiles () =
  M.reset ();
  let h = M.histogram "test.lat" in
  (* insert out of order; percentile must sort *)
  List.iter (fun i -> M.observe h (float_of_int i)) [ 50; 10; 40; 20; 30 ];
  let checkf what exp got =
    Alcotest.(check (float 1e-9)) what exp got
  in
  checkf "p50 of 10..50" 30.0 (M.percentile h 0.5);
  checkf "p50 matches Stats.quantile"
    (Rsti_util.Stats.quantile 0.5 [ 10.; 20.; 30.; 40.; 50. ])
    (M.percentile h 0.5);
  checkf "p90 matches Stats.quantile"
    (Rsti_util.Stats.quantile 0.9 [ 10.; 20.; 30.; 40.; 50. ])
    (M.percentile h 0.9);
  checkb "empty histogram percentile is nan" true
    (Float.is_nan (M.percentile (M.histogram "test.empty") 0.5));
  (match M.to_json () with
  | Observe.Json.Obj fields -> (
      match List.assoc "histograms" fields with
      | Observe.Json.Obj hs -> (
          match List.assoc "test.lat" hs with
          | Observe.Json.Obj fs ->
              checkb "p50 in document" true
                (List.assoc "p50" fs = Observe.Json.Float 30.0);
              checkb "p90 in document" true (List.mem_assoc "p90" fs);
              checkb "p99 in document" true (List.mem_assoc "p99" fs)
          | _ -> Alcotest.fail "histogram entry is not an object")
      | _ -> Alcotest.fail "histograms is not an object")
  | _ -> Alcotest.fail "metrics JSON is not an object");
  M.reset ()

(* --------------------------- event log ------------------------------ *)

let jsonl_lines () =
  String.split_on_char '\n' (Observe.Events.to_jsonl ())
  |> List.filter (fun l -> l <> "")

let test_events_jsonl () =
  Observe.Events.reset ();
  (* the sink is not gated on Observe.enabled *)
  Observe.set_enabled false;
  Observe.Events.emit ~cat:"zeta" ~name:"b" [ ("k", Observe.Json.Int 2) ];
  Observe.Events.emit ~cat:"alpha" ~name:"a" [ ("k", Observe.Json.Int 1) ];
  checki "two events buffered" 2 (Observe.Events.count ());
  (match jsonl_lines () with
  | header :: rest ->
      checkb "header carries schema and count" true
        (header = {|{"schema":"rsti-events/1","events":2}|});
      checkb "lines lexicographically sorted" true
        (rest = List.sort compare rest);
      List.iter
        (fun l ->
          match J.of_string l with
          | Ok (J.Obj fs) ->
              checkb "cat first" true (fst (List.hd fs) = "cat")
          | _ -> Alcotest.fail "event line does not parse")
        rest
  | [] -> Alcotest.fail "empty document");
  Observe.Events.reset ();
  checki "reset drops the buffer" 0 (Observe.Events.count ())

(* The determinism contract end to end: the full incident collection's
   event log is byte-identical at one worker domain and four. *)
let test_events_identical_across_jobs () =
  let doc jobs =
    Observe.Events.reset ();
    Cache.clear ();
    let cov = Rsti_attacks.Incident.collect ~jobs () in
    Rsti_attacks.Incident.emit_events cov;
    let d = Observe.Events.to_jsonl () in
    Observe.Events.reset ();
    d
  in
  let d1 = doc 1 and d4 = doc 4 in
  checkb "event log byte-identical jobs=1 vs 4" true (String.equal d1 d4)

(* ------------------------ incident coverage ------------------------- *)

(* The acceptance invariant: every Detected verdict across the Table-1/
   Table-2 catalogs yields exactly one incident (FPAC traps on the first
   failing auth) that maps into the static attack-surface graph. *)
let test_incident_coverage_invariant () =
  Cache.clear ();
  let module Incident = Rsti_attacks.Incident in
  let module Scenario = Rsti_attacks.Scenario in
  let cov = Incident.collect () in
  checkb "verdict OK" true (Incident.ok cov);
  checki "zero unmapped incidents" 0 cov.Incident.cov_unmapped;
  checki "no detection without a record" 0
    (List.length cov.Incident.cov_missing);
  checki "one incident per detection (FPAC)" cov.Incident.cov_detected
    cov.Incident.cov_incidents;
  List.iter
    (fun (r : Incident.run_row) ->
      checki
        (Printf.sprintf "%s/%s: records match verdict" r.Incident.rr_scenario
           (RT.mechanism_to_string r.Incident.rr_mech))
        (if r.Incident.rr_verdict = Scenario.Detected then 1 else 0)
        (List.length r.Incident.rr_records))
    cov.Incident.cov_runs;
  (* a substitution replay's incident observes the donor's signer and
     maps it to a static class; a raw overwrite observes none *)
  let find sid mech =
    List.find
      (fun (r : Incident.record) ->
        r.Incident.r_scenario = sid && r.Incident.r_mech = mech)
      cov.Incident.cov_records
  in
  let replay = find "sub-same-rsti" RT.Stl in
  checkb "replay incident observes its signer" true
    (replay.Incident.r_incident.Interp.inc_signer <> None);
  checkb "replay signer maps to a donor class" true
    (replay.Incident.r_donor_classes <> []);
  let raw = find "newton-cscfi" RT.Stwc in
  checkb "raw overwrite has no signer" true
    (raw.Incident.r_incident.Interp.inc_signer = None);
  List.iter
    (fun (r : Incident.record) ->
      let inc = r.Incident.r_incident in
      checkb
        (Printf.sprintf "%s/%s: latency attributed" r.Incident.r_scenario
           (RT.mechanism_to_string r.Incident.r_mech))
        true
        (match inc.Interp.inc_latency_cycles with
        | Some l -> l > 0
        | None -> false);
      checkb "window ends with the failing op" true
        (match List.rev inc.Interp.inc_window with
        | op :: _ -> (not op.Interp.op_ok) && op.Interp.op_cycle = inc.Interp.inc_cycle
        | [] -> false))
    cov.Incident.cov_records

(* Latency attribution vs the exact profiler, over random catalog picks:
   the corrupting store and the failing auth are both stamped with the
   machine's cycle/instruction counters, so the latency is their exact
   difference and can never exceed the profiler's totals for the same
   run. *)
let prop_incident_latency_consistent =
  let scenarios =
    Rsti_attacks.Catalog.all
    @ List.map fst Rsti_attacks.Substitution.expected
    @ List.map fst Rsti_attacks.Memory_safety.expected
  in
  let mechs = Rsti_attacks.Incident.mechanisms in
  QCheck.Test.make ~name:"incident: latency consistent with profiler"
    ~count:16
    QCheck.(pair (int_range 0 (List.length scenarios - 1))
              (int_range 0 (List.length mechs - 1)))
    (fun (si, mi) ->
      let sc = List.nth scenarios si and mech = List.nth mechs mi in
      let config = { Pipeline.default with Pipeline.cache = false } in
      let i =
        Pipeline.instrument ~config mech
          (Pipeline.analyze ~config
             (Pipeline.compile ~config
                (Pipeline.source ~file:(sc.Rsti_attacks.Scenario.id ^ ".c")
                   sc.Rsti_attacks.Scenario.program)))
      in
      let o =
        Pipeline.run ~config ~attacks:sc.Rsti_attacks.Scenario.attacks
          ~flight:8 ~profile:true i
      in
      let site_cycles =
        List.fold_left (fun acc s -> acc + s.Interp.s_cycles) 0 o.Interp.sites
      in
      checki "profiled sites partition cycles" o.Interp.cycles site_cycles;
      List.iter
        (fun (inc : Interp.incident) ->
          checkb "incident cycle within run" true
            (inc.Interp.inc_cycle <= o.Interp.cycles);
          checkb "incident instr within run" true
            (inc.Interp.inc_instr <= o.Interp.counts.Interp.instrs);
          (match (inc.Interp.inc_corrupt, inc.Interp.inc_latency_cycles,
                  inc.Interp.inc_latency_instrs) with
          | Some (cc, ci), Some lc, Some li ->
              checki "cycle latency is the exact delta" lc
                (inc.Interp.inc_cycle - cc);
              checki "instr latency is the exact delta" li
                (inc.Interp.inc_instr - ci);
              checkb "latency non-negative" true (lc >= 0 && li >= 0);
              checkb "latency bounded by profiler totals" true
                (lc <= o.Interp.cycles
                && li <= o.Interp.counts.Interp.instrs)
          | None, None, None -> () (* no corruption point: no latency *)
          | _ -> Alcotest.fail "latency fields inconsistent");
          let cycles_mono =
            let rec go last = function
              | [] -> true
              | (op : Interp.pac_op) :: tl ->
                  op.Interp.op_cycle >= last && go op.Interp.op_cycle tl
            in
            go 0 inc.Interp.inc_window
          in
          checkb "flight window cycles non-decreasing" true cycles_mono)
        o.Interp.incidents;
      true)

let tests =
  [
    Alcotest.test_case "span: nesting and records" `Quick test_span_records;
    Alcotest.test_case "span: disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "metrics: registry roundtrip" `Quick
      test_metrics_registry;
    Alcotest.test_case "trace: well-formed Chrome JSON" `Quick
      test_chrome_trace_wellformed;
    Alcotest.test_case "determinism: telemetry jobs=1 vs 4" `Quick
      test_telemetry_identical_across_jobs;
    Alcotest.test_case "profiler: sites partition totals" `Slow
      test_profiler_partitions_totals;
    Alcotest.test_case "profiler: cache re-pricing exact per-site" `Quick
      test_profile_reprice_exact;
    Alcotest.test_case "cache: per-stage statistics" `Quick
      test_cache_stage_stats;
    Alcotest.test_case "metrics: histogram percentiles" `Quick
      test_metrics_percentiles;
    Alcotest.test_case "events: sorted deterministic JSONL" `Quick
      test_events_jsonl;
    Alcotest.test_case "events: incident log jobs=1 vs 4" `Slow
      test_events_identical_across_jobs;
    Alcotest.test_case "incident: coverage maps every detection" `Slow
      test_incident_coverage_invariant;
    QCheck_alcotest.to_alcotest prop_incident_latency_consistent;
  ]

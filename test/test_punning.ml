(* Type punning and inheritance (paper section 4.7.5), plus the replay
   soundness property: authentication of a replayed pointer succeeds
   exactly when the two slots share a PA modifier. *)

module RT = Rsti_sti.Rsti_type
module Interp = Rsti_machine.Interp
module Analysis = Rsti_sti.Analysis
module Ir = Rsti_ir.Ir

let checkb = Alcotest.(check bool)

module Pipeline = Rsti_engine.Pipeline

let build mech src =
  let a = Pipeline.(analyze (compile (source ~file:"t.c" src))) in
  (Pipeline.result (Pipeline.instrument mech a), Pipeline.analysis a)

let run_src ?attacks mech src =
  let a = Pipeline.(analyze (compile (source ~file:"t.c" src))) in
  Pipeline.run ?attacks (Pipeline.instrument mech a)

(* C++-style inheritance modelled the way the paper's prototype sees it:
   the base object embedded as the first member, upcasts as explicit
   pointer casts that LLVM renders as BitCast. *)
let inheritance_src =
  {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct base {
  long id;
  void (*greet)(long id);
};
struct child {
  struct base parent;
  long extra;
};
void base_greet(long id) { printf("base %ld\n", id); }
void child_greet(long id) { printf("child %ld\n", id); }
void dispatch(struct base* obj) {
  obj->greet(obj->id);
}
int main(void) {
  struct child* c = (struct child*) malloc(sizeof(struct child));
  c->parent.id = 7;
  c->parent.greet = child_greet;
  c->extra = 99;
  /* the upcast: one BitCast in the IR (4.7.5) */
  struct base* b = (struct base*) c;
  dispatch(b);
  b->greet = base_greet;
  dispatch((struct base*) c);
  return 0;
}
|}

let test_inheritance_runs_under_all_mechanisms () =
  List.iter
    (fun mech ->
      let o = run_src mech inheritance_src in
      match o.Interp.status with
      | Interp.Exited 0L ->
          Alcotest.(check string)
            ("output under " ^ RT.mechanism_to_string mech)
            "child 7\nbase 7\n" o.Interp.output
      | s ->
          Alcotest.failf "inheritance under %s: %s" (RT.mechanism_to_string mech)
            (match s with
            | Interp.Exited n -> Printf.sprintf "exit %Ld" n
            | Interp.Trapped t -> Interp.trap_to_string t))
    (RT.all_mechanisms @ [ RT.Parts ])

let test_inheritance_vtable_attack_detected () =
  (* overwriting the embedded base's function pointer is caught by every
     mechanism: the slot is Sfield(base, greet), signed on store *)
  let atk =
    {
      Interp.trigger = Interp.On_call ("dispatch", 2);
      action =
        (fun intr ->
          intr.note "overwrite c->parent.greet";
          match intr.heap_allocs () with
          | (obj, _) :: _ -> intr.write_word (Int64.add obj 8L) (intr.func_addr "system")
          | [] -> ());
    }
  in
  List.iter
    (fun mech ->
      let o = run_src ~attacks:[ atk ] mech inheritance_src in
      checkb (RT.mechanism_to_string mech ^ " detects") true (Interp.detected o))
    RT.all_mechanisms

let test_punning_cast_recorded_and_merged () =
  let _, anal = build RT.Stc inheritance_src in
  let cls = Analysis.type_class_of anal (Rsti_minic.Ctype.Ptr (Rsti_minic.Ctype.Struct "child")) in
  checkb "base*/child* merged under STC" true (List.mem "struct base*" cls)

let test_punning_resigned_under_stwc () =
  let r, _ = build RT.Stwc inheritance_src in
  checkb "upcasts re-sign under STWC" true (r.Rsti_rsti.Instrument.counts.resigns >= 1)

(* --------------------- replay soundness property -------------------- *)

(* For generated programs: replaying gptr0's stored word into gptr1's slot
   is accepted by the PA check exactly when the two slots carry the same
   modifier under that mechanism. *)
let replay_outcome mech src n_globals =
  let a = Pipeline.(analyze (compile (source ~file:"g.c" src))) in
  let atk =
    {
      (* fires after main's last global malloc: all globals initialised *)
      Interp.trigger = Interp.On_extern ("malloc", n_globals);
      action =
        (fun intr ->
          intr.write_word (intr.global_addr "gptr1")
            (intr.read_word (intr.global_addr "gptr0")));
    }
  in
  Pipeline.run ~attacks:[ atk ] (Pipeline.instrument mech a)

let prop_replay_soundness =
  QCheck.Test.make ~name:"replay accepted iff modifiers equal" ~count:12
    QCheck.(int_range 3000 3500)
    (fun seed ->
      let config =
        { Rsti_workloads.Generator.default with n_globals = 4; n_structs = 2 }
      in
      let src = Rsti_workloads.Generator.generate ~config ~seed:(Int64.of_int seed) () in
      let anal = Pipeline.(analysis (analyze (compile (source ~file:"g.c" src)))) in
      List.for_all
        (fun mech ->
          (* find the two globals' slots by variable id order *)
          let globals =
            List.filter
              (fun (si : Analysis.slot_info) -> si.kind = Analysis.Kglobal)
              (Analysis.pointer_vars anal)
          in
          match globals with
          | g0 :: g1 :: _ ->
              let m0 = Analysis.modifier_of anal mech g0.slot in
              let m1 = Analysis.modifier_of anal mech g1.slot in
              let o = replay_outcome mech src 4 in
              let detected = Interp.detected o in
              if m0 = m1 && mech <> RT.Stl then
                (* same modifier: the replay authenticates; no PAC trap *)
                not detected
              else if m0 <> m1 then
                (* different modifiers: the replayed value must fail at its
                   next authenticated load — if the program ever loads it *)
                detected
                || not
                     (List.exists
                        (function Interp.Ev_auth_fail _ -> true | _ -> false)
                        o.Interp.events)
              else true
          | _ -> true)
        RT.all_mechanisms)

let tests =
  [
    Alcotest.test_case "inheritance: runs under all mechanisms" `Quick
      test_inheritance_runs_under_all_mechanisms;
    Alcotest.test_case "inheritance: vtable attack detected" `Quick
      test_inheritance_vtable_attack_detected;
    Alcotest.test_case "punning: STC merges base*/child*" `Quick
      test_punning_cast_recorded_and_merged;
    Alcotest.test_case "punning: STWC re-signs upcasts" `Quick
      test_punning_resigned_under_stwc;
    QCheck_alcotest.to_alcotest prop_replay_soundness;
  ]

(* Tests for the MiniC front end: lexer, parser, types, pretty printer,
   type checker. *)

module Ctype = Rsti_minic.Ctype
module Ast = Rsti_minic.Ast
module Lexer = Rsti_minic.Lexer
module Parser = Rsti_minic.Parser
module Pretty = Rsti_minic.Pretty
module Tc = Rsti_minic.Typecheck
module Tast = Rsti_minic.Tast
module Token = Rsti_minic.Token

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let tokens src = List.map fst (Lexer.tokenize ~file:"t" src)

(* ------------------------------ lexer ------------------------------ *)

let test_lex_idents_keywords () =
  match tokens "int foo while NULL" with
  | [ Token.KW_int; Token.IDENT "foo"; Token.KW_while; Token.KW_null; Token.EOF ] -> ()
  | _ -> Alcotest.fail "token mismatch"

let test_lex_numbers () =
  match tokens "42 0x1F 7UL 3.5 1.0e3" with
  | [ Token.INT 42L; Token.INT 0x1FL; Token.INT 7L; Token.FLOAT a; Token.FLOAT b;
      Token.EOF ] ->
      Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
      Alcotest.(check (float 1e-9)) "1e3" 1000. b
  | _ -> Alcotest.fail "number tokens"

let test_lex_strings_chars () =
  match tokens {|"a\nb" '\t' 'x'|} with
  | [ Token.STRING "a\nb"; Token.CHARLIT '\t'; Token.CHARLIT 'x'; Token.EOF ] -> ()
  | _ -> Alcotest.fail "string/char tokens"

let test_lex_comments () =
  checki "comments skipped" 2 (List.length (tokens "/* x */ 1 // y"))

let test_lex_operators () =
  match tokens "-> ++ <= >> && ... %" with
  | [ Token.ARROW; Token.PLUSPLUS; Token.LE; Token.SHR; Token.ANDAND;
      Token.ELLIPSIS; Token.PERCENT; Token.EOF ] -> ()
  | _ -> Alcotest.fail "operator tokens"

let test_lex_error_unterminated () =
  checkb "unterminated string raises" true
    (try ignore (tokens "\"abc") ; false with Lexer.Error _ -> true)

let test_lex_positions () =
  let toks = Lexer.tokenize ~file:"f.c" "a\n  b" in
  match toks with
  | (_, l1) :: (_, l2) :: _ ->
      checki "line 1" 1 l1.Rsti_minic.Loc.line;
      checki "line 2" 2 l2.Rsti_minic.Loc.line;
      checki "col 3" 3 l2.Rsti_minic.Loc.col
  | _ -> Alcotest.fail "positions"

(* ------------------------------ ctype ------------------------------ *)

let lookup_none _ = []

let test_ctype_strings () =
  checks "ptr" "int*" (Ctype.to_string (Ctype.Ptr Ctype.Int));
  checks "const ptr" "const void*" (Ctype.to_string (Ctype.Const (Ctype.Ptr Ctype.Void)));
  checks "struct" "struct node*" (Ctype.to_string (Ctype.Ptr (Ctype.Struct "node")));
  checks "fn ptr" "int (*)(long)"
    (Ctype.to_string
       (Ctype.Ptr (Ctype.Func { ret = Ctype.Int; params = [ Ctype.Long ]; variadic = false })))

let test_ctype_predicates () =
  checkb "is_pointer" true (Ctype.is_pointer (Ctype.Const (Ctype.Ptr Ctype.Char)));
  checkb "is_code_pointer" true
    (Ctype.is_code_pointer
       (Ctype.Ptr (Ctype.Func { ret = Ctype.Void; params = []; variadic = false })));
  checkb "data ptr is not code ptr" false (Ctype.is_code_pointer (Ctype.Ptr Ctype.Int));
  checkb "ptr-to-ptr" true (Ctype.is_pointer_to_pointer (Ctype.Ptr (Ctype.Ptr Ctype.Void)));
  checkb "plain ptr not pp" false (Ctype.is_pointer_to_pointer (Ctype.Ptr Ctype.Void))

let test_ctype_sizeof () =
  checki "char" 1 (Ctype.sizeof ~lookup:lookup_none Ctype.Char);
  checki "ptr" 8 (Ctype.sizeof ~lookup:lookup_none (Ctype.Ptr Ctype.Void));
  checki "array" 24 (Ctype.sizeof ~lookup:lookup_none (Ctype.Array (Ctype.Long, 3)));
  checki "char array packs" 5 (Ctype.sizeof ~lookup:lookup_none (Ctype.Array (Ctype.Char, 5)))

let test_struct_layout () =
  let lookup = function
    | "s" -> [ ("c", Ctype.Char); ("n", Ctype.Long); ("b", Ctype.Array (Ctype.Char, 3)) ]
    | _ -> raise Not_found
  in
  let off_c, _ = Ctype.field_offset ~lookup "s" "c" in
  let off_n, _ = Ctype.field_offset ~lookup "s" "n" in
  let off_b, _ = Ctype.field_offset ~lookup "s" "b" in
  checki "c at 0" 0 off_c;
  checki "n aligned to 8" 8 off_n;
  checki "b after n" 16 off_b;
  checki "size rounded" 24 (Ctype.sizeof ~lookup (Ctype.Struct "s"))

let test_ctype_compatible () =
  checkb "void* both ways" true (Ctype.compatible (Ctype.Ptr Ctype.Void) (Ctype.Ptr Ctype.Int));
  checkb "distinct struct ptrs" false
    (Ctype.compatible (Ctype.Ptr (Ctype.Struct "a")) (Ctype.Ptr (Ctype.Struct "b")));
  checkb "const irrelevant" true
    (Ctype.compatible (Ctype.Const Ctype.Int) Ctype.Long)

(* ------------------------------ parser ----------------------------- *)

let parse src = Parser.parse ~file:"t.c" src

let first_func src =
  match List.find_map (function Ast.Gfunc f -> Some f | _ -> None) (parse src) with
  | Some f -> f
  | None -> Alcotest.fail "no function parsed"

let test_parse_function_pointer_declarator () =
  let prog = parse "int (*fp)(int);" in
  match prog with
  | [ Ast.Gvar d ] -> (
      match d.Ast.d_ty with
      | Ctype.Ptr (Ctype.Func { params = [ Ctype.Int ]; _ }) -> ()
      | t -> Alcotest.failf "got %s" (Ctype.to_string t))
  | _ -> Alcotest.fail "expected one global"

let test_parse_array_of_function_pointers () =
  match parse "long (*ops[5])(long a, long b);" with
  | [ Ast.Gvar d ] -> (
      match d.Ast.d_ty with
      | Ctype.Array (Ctype.Ptr (Ctype.Func _), 5) -> ()
      | t -> Alcotest.failf "got %s" (Ctype.to_string t))
  | _ -> Alcotest.fail "expected one global"

let test_parse_typedef_struct () =
  let prog = parse "typedef struct { long x; } ctx;\nctx* make(void) { return NULL; }" in
  checkb "struct + function" true
    (List.exists (function Ast.Gstruct s -> s.Ast.s_name = "ctx" | _ -> false) prog)

let test_parse_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3" in
  match e.Ast.desc with
  | Ast.Binop (Ast.Add, _, { desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_assoc () =
  let e = Parser.parse_expr_string "10 - 4 - 3" in
  match e.Ast.desc with
  | Ast.Binop (Ast.Sub, { desc = Ast.Binop (Ast.Sub, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "left associativity"

let test_parse_cast_vs_paren () =
  (match (Parser.parse_expr_string "(int) x").Ast.desc with
  | Ast.Cast (Ctype.Int, _) -> ()
  | _ -> Alcotest.fail "cast");
  match (Parser.parse_expr_string "(x) + 1").Ast.desc with
  | Ast.Binop (Ast.Add, _, _) -> ()
  | _ -> Alcotest.fail "paren expr"

let test_parse_compound_assign_desugar () =
  match (Parser.parse_expr_string "a += 2").Ast.desc with
  | Ast.Assign ({ desc = Ast.Var "a"; _ }, { desc = Ast.Binop (Ast.Add, _, _); _ }) -> ()
  | _ -> Alcotest.fail "compound assign"

let test_parse_for_loop () =
  let f = first_func "void f(void) { for (int i = 0; i < 3; i++) { } }" in
  match f.Ast.f_body with
  | [ { s = Ast.Sfor (Some _, Some _, Some _, _); _ } ] -> ()
  | _ -> Alcotest.fail "for shape"

let test_parse_dangling_else () =
  let f = first_func "void f(int a) { if (a) if (a) a = 1; else a = 2; }" in
  match f.Ast.f_body with
  | [ { s = Ast.Sif (_, [ { s = Ast.Sif (_, _, else_b); _ } ], []); _ } ] ->
      checki "else binds inner" 1 (List.length else_b)
  | _ -> Alcotest.fail "dangling else"

let test_parse_sizeof_forms () =
  (match (Parser.parse_expr_string "sizeof(long)").Ast.desc with
  | Ast.Sizeof_type Ctype.Long -> ()
  | _ -> Alcotest.fail "sizeof type");
  match (Parser.parse_expr_string "sizeof(x + 1)").Ast.desc with
  | Ast.Sizeof_expr _ -> ()
  | _ -> Alcotest.fail "sizeof expr"

let test_parse_switch () =
  let f =
    first_func
      "int f(int c) { switch (c) { case 1: case 2: return 1; default: break; } return 0; }"
  in
  match f.Ast.f_body with
  | [ { s = Ast.Sswitch (_, [ arm1; arm2 ]); _ }; _ ] ->
      Alcotest.(check (list int64)) "labels" [ 1L; 2L ] arm1.Ast.c_labels;
      checkb "default arm" true arm2.Ast.c_default
  | _ -> Alcotest.fail "switch shape"

let test_tc_switch_duplicate_label () =
  (try
     ignore
       (Tc.check_source
          "int main(void) { switch (1) { case 1: break; case 1: break; } return 0; }");
     Alcotest.fail "duplicate label accepted"
   with Tc.Error _ -> ())

let test_tc_switch_non_integer () =
  (try
     ignore
       (Tc.check_source
          "int main(void) { double x = 1.0; switch (x) { default: break; } return 0; }");
     Alcotest.fail "double scrutinee accepted"
   with Tc.Error _ -> ())

let test_tc_break_in_switch_ok () =
  ignore
    (Tc.check_source
       "int main(void) { switch (2) { case 2: break; } return 0; }")

let test_parse_member_chains () =
  match (Parser.parse_expr_string "a->b.c[1]").Ast.desc with
  | Ast.Index ({ desc = Ast.Member ({ desc = Ast.Arrow _; _ }, "c"); _ }, _) -> ()
  | _ -> Alcotest.fail "member chain"

let test_parse_error_reports_location () =
  checkb "error has loc" true
    (try ignore (parse "int f(void) { return }") ; false
     with Parser.Error (_, loc) -> loc.Rsti_minic.Loc.line = 1)

let test_parse_multi_declarator_rejected () =
  checkb "int a, b; rejected" true
    (try ignore (parse "void f(void) { int a, b; }") ; false
     with Parser.Error (m, _) -> String.length m > 0)

(* --------------------------- typechecker --------------------------- *)

let tc src = Tc.check_source ~file:"t.c" src

let tc_fails expected_substring src =
  try
    ignore (tc src);
    Alcotest.failf "expected type error containing %S" expected_substring
  with Tc.Error (msg, _) ->
    checkb
      (Printf.sprintf "error %S contains %S" msg expected_substring)
      true
      (let n = String.length expected_substring in
       let m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = expected_substring || go (i + 1)) in
       go 0)

let test_tc_ok_basic () =
  let p = tc "int main(void) { int x = 1; return x + 2; }" in
  checki "one function" 1 (List.length p.Tast.funcs)

let test_tc_unknown_var () = tc_fails "unknown" "int main(void) { return y; }"

let test_tc_const_assignment_rejected () =
  tc_fails "const" "int main(void) { const int x = 1; x = 2; return x; }"

let test_tc_void_deref_rejected () =
  tc_fails "void*" "extern void* malloc(long n);\nint main(void) { void* p = malloc(8); return *p ? 1 : 0; }"

let test_tc_incompatible_ptr_rejected () =
  tc_fails "incompatible"
    "struct a { long x; };\nstruct b { long x; };\nint main(void) { struct a* p = NULL; struct b* q = p; return q ? 1 : 0; }"

let test_tc_void_star_implicit () =
  ignore
    (tc
       "extern void* malloc(long n);\n\
        struct a { long x; };\n\
        int main(void) { struct a* p = malloc(8); void* v = p; return v ? 1 : 0; }")

let test_tc_null_to_pointer () =
  ignore (tc "int main(void) { char* p = NULL; long* q = 0; return p == 0 && q == 0; }")

let test_tc_wrong_arity () =
  tc_fails "arguments" "int f(int a) { return a; }\nint main(void) { return f(1, 2); }"

let test_tc_variadic_extern () =
  ignore
    (tc
       "extern int printf(const char* fmt, ...);\n\
        int main(void) { printf(\"%d %s\", 1, \"x\"); return 0; }")

let test_tc_break_outside_loop () = tc_fails "break" "int main(void) { break; return 0; }"

let test_tc_return_mismatch () =
  tc_fails "void" "void f(void) { return 1; }\nint main(void) { f(); return 0; }"

let test_tc_pointer_arith_types () =
  let p =
    tc
      "int main(void) { char buf[8]; char* p = buf; char* q = p + 3; return (int)(q - p); }"
  in
  checki "funcs" 1 (List.length p.Tast.funcs)

let test_tc_field_resolution () =
  tc_fails "no field"
    "struct s { long a; };\nint main(void) { struct s x; x.a = 1; return x.b; }"

let test_tc_unique_var_ids () =
  let p =
    tc "int f(int a) { int x = a; return x; }\nint g(int a) { int x = a; return x; }"
  in
  let ids = ref [] in
  List.iter
    (fun (fn : Tast.tfunc) ->
      List.iter (fun (v : Tast.var) -> ids := v.v_id :: !ids) fn.tf_params;
      Tast.iter_func
        ~expr:(fun _ -> ())
        ~stmt:(function
          | Tast.Tsdecl (v, _) -> ids := v.Tast.v_id :: !ids
          | _ -> ())
        fn)
    p.Tast.funcs;
  let distinct = List.sort_uniq compare !ids in
  checki "all ids unique" (List.length !ids) (List.length distinct)

let test_tc_array_decay_in_call () =
  ignore
    (tc
       "extern long strlen(const char* s);\n\
        int main(void) { char buf[4]; buf[0] = 0; return (int) strlen(buf); }")

(* --------------------------- pretty/reparse ------------------------ *)

let prop_generated_roundtrip =
  QCheck.Test.make ~name:"pretty(parse(src)) reparses and typechecks" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let src = Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) () in
      let ast1 = Parser.parse ~file:"g.c" src in
      let printed = Pretty.program_to_string ast1 in
      let ast2 = Parser.parse ~file:"g2.c" printed in
      ignore (Tc.check ast2);
      (* shape stability: same number of globals both times *)
      List.length ast1 = List.length ast2)

let tests =
  [
    Alcotest.test_case "lex: idents and keywords" `Quick test_lex_idents_keywords;
    Alcotest.test_case "lex: numbers" `Quick test_lex_numbers;
    Alcotest.test_case "lex: strings and chars" `Quick test_lex_strings_chars;
    Alcotest.test_case "lex: comments" `Quick test_lex_comments;
    Alcotest.test_case "lex: operators" `Quick test_lex_operators;
    Alcotest.test_case "lex: unterminated string" `Quick test_lex_error_unterminated;
    Alcotest.test_case "lex: positions" `Quick test_lex_positions;
    Alcotest.test_case "ctype: rendering" `Quick test_ctype_strings;
    Alcotest.test_case "ctype: predicates" `Quick test_ctype_predicates;
    Alcotest.test_case "ctype: sizeof" `Quick test_ctype_sizeof;
    Alcotest.test_case "ctype: struct layout" `Quick test_struct_layout;
    Alcotest.test_case "ctype: compatibility" `Quick test_ctype_compatible;
    Alcotest.test_case "parse: fn-ptr declarator" `Quick test_parse_function_pointer_declarator;
    Alcotest.test_case "parse: array of fn ptrs" `Quick test_parse_array_of_function_pointers;
    Alcotest.test_case "parse: typedef struct" `Quick test_parse_typedef_struct;
    Alcotest.test_case "parse: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse: associativity" `Quick test_parse_assoc;
    Alcotest.test_case "parse: cast vs paren" `Quick test_parse_cast_vs_paren;
    Alcotest.test_case "parse: compound assign" `Quick test_parse_compound_assign_desugar;
    Alcotest.test_case "parse: for loop" `Quick test_parse_for_loop;
    Alcotest.test_case "parse: dangling else" `Quick test_parse_dangling_else;
    Alcotest.test_case "parse: sizeof forms" `Quick test_parse_sizeof_forms;
    Alcotest.test_case "parse: member chains" `Quick test_parse_member_chains;
    Alcotest.test_case "parse: switch" `Quick test_parse_switch;
    Alcotest.test_case "tc: switch duplicate label" `Quick test_tc_switch_duplicate_label;
    Alcotest.test_case "tc: switch non-integer" `Quick test_tc_switch_non_integer;
    Alcotest.test_case "tc: break in switch" `Quick test_tc_break_in_switch_ok;
    Alcotest.test_case "parse: error location" `Quick test_parse_error_reports_location;
    Alcotest.test_case "parse: multi-declarator rejected" `Quick test_parse_multi_declarator_rejected;
    Alcotest.test_case "tc: basic" `Quick test_tc_ok_basic;
    Alcotest.test_case "tc: unknown var" `Quick test_tc_unknown_var;
    Alcotest.test_case "tc: const assignment" `Quick test_tc_const_assignment_rejected;
    Alcotest.test_case "tc: void deref" `Quick test_tc_void_deref_rejected;
    Alcotest.test_case "tc: incompatible pointers" `Quick test_tc_incompatible_ptr_rejected;
    Alcotest.test_case "tc: void* implicit" `Quick test_tc_void_star_implicit;
    Alcotest.test_case "tc: NULL to pointer" `Quick test_tc_null_to_pointer;
    Alcotest.test_case "tc: arity" `Quick test_tc_wrong_arity;
    Alcotest.test_case "tc: variadic extern" `Quick test_tc_variadic_extern;
    Alcotest.test_case "tc: break outside loop" `Quick test_tc_break_outside_loop;
    Alcotest.test_case "tc: return mismatch" `Quick test_tc_return_mismatch;
    Alcotest.test_case "tc: pointer arithmetic" `Quick test_tc_pointer_arith_types;
    Alcotest.test_case "tc: field resolution" `Quick test_tc_field_resolution;
    Alcotest.test_case "tc: unique var ids" `Quick test_tc_unique_var_ids;
    Alcotest.test_case "tc: array decay" `Quick test_tc_array_decay_in_call;
    QCheck_alcotest.to_alcotest prop_generated_roundtrip;
  ]

(* Tests for the interprocedural dataflow framework: CFG/solver/call
   graph units, Andersen points-to confinement, and the PAC-typestate
   translation validator (green on everything Instrument emits, red on a
   module with one sign deliberately removed). *)

module Ir = Rsti_ir.Ir
module Cfg = Rsti_dataflow.Cfg
module Solver = Rsti_dataflow.Solver
module Callgraph = Rsti_dataflow.Callgraph
module Points_to = Rsti_dataflow.Points_to
module Validate = Rsti_dataflow.Validate
module Elide = Rsti_staticcheck.Elide
module Analysis = Rsti_sti.Analysis
module RT = Rsti_sti.Rsti_type
module Instrument = Rsti_rsti.Instrument

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let compile src = Rsti_ir.Lower.compile ~file:"t.c" src

let branching_src =
  {|
int total;
int main(void) {
  int i;
  i = 0;
  total = 0;
  while (i < 10) {
    if (i > 5) { total = total + 2; } else { total = total + 1; }
    i = i + 1;
  }
  return total;
}
|}

(* ------------------------------ CFG -------------------------------- *)

let test_cfg_shape () =
  let m = compile branching_src in
  List.iter
    (fun (fn : Ir.func) ->
      let cfg = Cfg.of_func fn in
      checki (fn.Ir.name ^ " block count") (Array.length fn.Ir.blocks)
        (Cfg.n_blocks cfg);
      let rpo = Cfg.rpo cfg in
      if Array.length rpo > 0 then
        checki (fn.Ir.name ^ " rpo starts at entry") 0 rpo.(0);
      (* succ and pred are inverse relations *)
      for i = 0 to Cfg.n_blocks cfg - 1 do
        List.iter
          (fun s ->
            checkb
              (Printf.sprintf "%s: %d in pred(%d)" fn.Ir.name i s)
              true
              (List.mem i (Cfg.pred cfg s)))
          (Cfg.succ cfg i);
        List.iter
          (fun p ->
            checkb
              (Printf.sprintf "%s: %d in succ(%d)" fn.Ir.name i p)
              true
              (List.mem i (Cfg.succ cfg p)))
          (Cfg.pred cfg i)
      done;
      checkb (fn.Ir.name ^ " entry reachable") true (Cfg.reachable cfg 0))
    m.Ir.m_funcs

(* ----------------------------- solver ------------------------------ *)

(* A one-bit forward lattice ("a store has been executed on some path
   into this point"): exercises join over branch merges and fixpoint
   termination over the loop. *)
module Store_seen = struct
  module L = struct
    type t = bool

    let bottom = false
    let equal = Bool.equal
    let join = ( || )
    let widen = ( || )
  end

  type ctx = unit

  let instr () (ins : Ir.instr) st =
    match ins.Ir.i with Ir.Store _ -> true | _ -> st

  let term () _ st = st
end

module F = Solver.Forward (Store_seen)

let test_solver_fixpoint () =
  let m = compile branching_src in
  let fn = List.find (fun (f : Ir.func) -> f.Ir.name = "main") m.Ir.m_funcs in
  let cfg = Cfg.of_func fn in
  let res = F.solve ~ctx:() cfg in
  (* main stores to [total] in its entry block, so every reachable
     block's exit sees the bit set *)
  for i = 0 to Cfg.n_blocks cfg - 1 do
    if Cfg.reachable cfg i then
      checkb (Printf.sprintf "block %d exit" i) true (F.exit_state res i)
  done;
  checkb "visited at least every reachable block" true
    (res.F.visits >= Array.length (Cfg.rpo cfg));
  (* iter_block replays states consistent with the block boundary *)
  let entry_seen = ref None in
  F.iter_block ~ctx:() res 0 (fun _ st ->
      if !entry_seen = None then entry_seen := Some st);
  (match !entry_seen with
  | Some st -> checkb "entry block starts at bottom" false st
  | None -> ())

(* --------------------------- call graph ---------------------------- *)

let callgraph_src =
  {|
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main(void) { return mid(1); }
|}

let test_callgraph_bottom_up () =
  let m = compile callgraph_src in
  let cg = Callgraph.of_modul m in
  let order = Callgraph.bottom_up cg in
  let pos f =
    let rec go i = function
      | [] -> Alcotest.failf "%s missing from bottom_up" f
      | x :: _ when x = f -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  checkb "leaf before mid" true (pos "leaf" < pos "mid");
  checkb "mid before main" true (pos "mid" < pos "main");
  checkb "mid calls leaf" true (List.mem "leaf" (Callgraph.callees cg "mid"));
  checkb "leaf reachable from main" true
    (Callgraph.reachable cg ~roots:[ "main" ] "leaf");
  checkb "main not reachable from leaf" false
    (Callgraph.reachable cg ~roots:[ "leaf" ] "main")

(* --------------------------- points-to ----------------------------- *)

let confinement_src =
  {|
extern void sink(int **h);
int x;
int y;
int *p;
int *q;
int main(void) {
  p = &x;
  *p = 1;
  q = &y;
  sink(&q);
  return 0;
}
|}

let global_slot (m : Ir.modul) name =
  let g =
    List.find
      (fun (g : Ir.global_def) -> g.Ir.gvar.Rsti_minic.Tast.v_name = name)
      m.Ir.m_globals
  in
  Ir.Svar g.Ir.gvar.Rsti_minic.Tast.v_id

let test_points_to_confinement () =
  let m = compile confinement_src in
  let pt = Points_to.analyze m in
  let conf = Points_to.confinement pt in
  checkb "p never escapes -> confined" true
    (Points_to.confined_slot conf (global_slot m "p"));
  checkb "&q escapes through sink() -> not confined" false
    (Points_to.confined_slot conf (global_slot m "q"));
  let st = Points_to.stats pt in
  checkb "analysis saw objects" true (st.Points_to.objects > 0);
  checkb "fixpoint took at least one pass" true (st.Points_to.iterations >= 1)

(* ------------------- context-sensitive points-to ------------------- *)

module Context = Rsti_dataflow.Context
module Scope_escape = Rsti_dataflow.Scope_escape

(* Two same-typed registry entries routed through one helper: the
   insensitive solve merges the return channels (both escape through
   [report_stats]), k-limited cloning keeps them apart. *)
let registry_src =
  {|
struct stat_counter { long hits; long misses; };
extern void report_stats(struct stat_counter** slot);
struct stat_counter pub_stats;
struct stat_counter priv_stats;
struct stat_counter** pick(struct stat_counter** a) { return a; }
int main(void) {
  struct stat_counter* sp = &pub_stats;
  struct stat_counter* lp = &priv_stats;
  struct stat_counter** spp = pick(&sp);
  struct stat_counter** lpp = pick(&lp);
  long sum = 0;
  if (sum < 0) { report_stats(spp); }
  struct stat_counter* t = *lpp;
  t->hits = t->hits + 1;
  return 0;
}
|}

let recursion_src =
  {|
int depth(int n) { if (n > 0) { return depth(n - 1) + 1; } return 0; }
int main(void) { return depth(3) + depth(5); }
|}

let test_context_call_strings () =
  let m = compile registry_src in
  let cg = Callgraph.of_modul m in
  let c = Context.build ~k:2 m cg in
  (* pick: the empty context plus one per call site in main *)
  let pick_ctxs = Context.contexts_of c "pick" in
  checki "pick context count" 3 (List.length pick_ctxs);
  checkb "empty context always present" true
    (List.mem Context.empty_ctx pick_ctxs);
  Alcotest.(check string)
    "empty context keeps the bare name" "pick"
    (Context.clone_name c "pick" Context.empty_ctx);
  (* the two extends from main resolve to distinct non-empty contexts *)
  let s0 = Context.site c ~caller:"main" 0 in
  let s1 = Context.site c ~caller:"main" 1 in
  let c0 =
    Context.extend c ~caller:"main" ~ctx:Context.empty_ctx ~site:s0
      ~callee:"pick"
  in
  let c1 =
    Context.extend c ~caller:"main" ~ctx:Context.empty_ctx ~site:s1
      ~callee:"pick"
  in
  checkb "distinct sites, distinct contexts" true (c0 <> c1);
  checkb "extended contexts are non-empty" true
    (c0 <> Context.empty_ctx && c1 <> Context.empty_ctx);
  (* k = 0: every function keeps only the empty context *)
  let c_k0 = Context.build ~k:0 m cg in
  List.iter
    (fun fn ->
      checki (fn ^ " contexts at k=0") 1
        (List.length (Context.contexts_of c_k0 fn)))
    [ "pick"; "main" ]

let test_context_scc_collapse () =
  let m = compile recursion_src in
  let cg = Callgraph.of_modul m in
  let c = Context.build ~k:2 m cg in
  (* the recursive SCC does not extend call strings: depth's contexts
     are the empty one plus main's two entry sites, nothing deeper *)
  let ctxs = Context.contexts_of c "depth" in
  checki "depth context count" 3 (List.length ctxs);
  List.iter
    (fun ctx ->
      let s = Context.site c ~caller:"depth" 0 in
      checki
        (Printf.sprintf "SCC-internal extend keeps ctx %d" ctx)
        ctx
        (Context.extend c ~caller:"depth" ~ctx ~site:s ~callee:"depth"))
    ctxs

let subset label smaller bigger =
  List.iter
    (fun o ->
      checkb
        (Printf.sprintf "%s: %s refined away" label (Points_to.obj_to_string o))
        true (List.mem o bigger))
    smaller

(* Soundness of the cloning mode as a refinement: after projecting
   clones down to base objects, [Cloning k] never adds facts over
   [Insensitive], and [Cloning 0] is pointwise identical. *)
let prop_cloning_refines =
  QCheck.Test.make ~name:"points-to: cloning refines insensitive" ~count:12
    QCheck.(int_range 1 1000)
    (fun seed ->
      let src = Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) () in
      let m = Rsti_ir.Lower.compile ~file:"g.c" src in
      let pt_i = Points_to.analyze m in
      let pt_c = Points_to.analyze ~mode:(Points_to.Cloning 2) m in
      let pt_0 = Points_to.analyze ~mode:(Points_to.Cloning 0) m in
      subset "escaped" (Points_to.escaped_objects pt_c)
        (Points_to.escaped_objects pt_i);
      Alcotest.(check (list string))
        "k=0 escapes identical"
        (List.map Points_to.obj_to_string (Points_to.escaped_objects pt_i))
        (List.map Points_to.obj_to_string (Points_to.escaped_objects pt_0));
      List.iter
        (fun (f : Ir.func) ->
          let fn = f.Ir.name in
          subset (fn ^ " returns")
            (Points_to.returns pt_c ~fn)
            (Points_to.returns pt_i ~fn);
          Alcotest.(check (list string))
            (fn ^ " k=0 returns identical")
            (List.map Points_to.obj_to_string (Points_to.returns pt_i ~fn))
            (List.map Points_to.obj_to_string (Points_to.returns pt_0 ~fn)))
        m.Ir.m_funcs;
      (* attacker shrinks, so confinement verdicts only improve *)
      let conf_i = Points_to.confinement pt_i in
      let conf_c = Points_to.confinement pt_c in
      List.iter
        (fun (g : Ir.global_def) ->
          let s = Ir.Svar g.Ir.gvar.Rsti_minic.Tast.v_id in
          if Points_to.confined_slot conf_i s then
            checkb
              (Printf.sprintf "global %s stays confined under cloning"
                 g.Ir.gvar.Rsti_minic.Tast.v_name)
              true
              (Points_to.confined_slot conf_c s))
        m.Ir.m_globals;
      true)

let test_cloning_strict_gain () =
  let m = compile registry_src in
  let pt_i = Points_to.analyze m in
  let pt_c = Points_to.analyze ~mode:(Points_to.Cloning 2) m in
  checki "insensitive merges both registry cells" 2
    (List.length (Points_to.escaped_objects pt_i));
  checki "cloning separates the channels" 1
    (List.length (Points_to.escaped_objects pt_c));
  let sanon =
    Ir.Sanon Rsti_minic.Ctype.(Ptr (Struct "stat_counter"))
  in
  checkb "class blocked at insensitive" false
    (Points_to.confined_slot (Points_to.confinement pt_i) sanon);
  checkb "class confined under cloning" true
    (Points_to.confined_slot (Points_to.confinement pt_c) sanon)

(* ------------------ equivalence-class refinement -------------------- *)

module Equiv = Rsti_dataflow.Equiv

(* The modifier-partition refinement laws, over generated programs:
   pointwise, STL splits STWC splits STC (a finer mechanism never merges
   two slots a coarser one separates), so the class counts are monotone
   classes(STC) <= classes(STWC) <= classes(STL). The direction is fixed
   by construction — STC folds cast-merged types into one modifier, STL
   appends the storage address — and the analyzer must reproduce it on
   arbitrary inputs, not just the catalog. *)
let prop_equiv_refinement =
  QCheck.Test.make ~name:"equiv: STL refines STWC refines STC" ~count:12
    QCheck.(int_range 1 1000)
    (fun seed ->
      let src = Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) () in
      let m = Rsti_ir.Lower.compile ~file:"g.c" src in
      let anal = Analysis.analyze m in
      let run mech = Equiv.analyze anal m mech in
      let stwc = run RT.Stwc and stc = run RT.Stc and stl = run RT.Stl in
      let class_of (r : Equiv.result) =
        let tbl = Hashtbl.create 64 in
        List.iteri
          (fun i (c : Equiv.cls) ->
            List.iter
              (fun (mb : Equiv.member) ->
                Hashtbl.replace tbl
                  (Ir.slot_to_string mb.Equiv.mb_info.Analysis.slot)
                  i)
              c.Equiv.c_members)
          r.Equiv.r_classes;
        tbl
      in
      let pointwise label fine coarse =
        let coarse_of = class_of coarse in
        List.iter
          (fun (c : Equiv.cls) ->
            let key (mb : Equiv.member) =
              Ir.slot_to_string mb.Equiv.mb_info.Analysis.slot
            in
            match c.Equiv.c_members with
            | [] -> ()
            | first :: rest ->
                let c0 = Hashtbl.find coarse_of (key first) in
                List.iter
                  (fun mb ->
                    checki
                      (Printf.sprintf "%s: seed %d splits a class" label seed)
                      c0
                      (Hashtbl.find coarse_of (key mb)))
                  rest)
          fine.Equiv.r_classes
      in
      pointwise "STL within STWC" stl stwc;
      pointwise "STL within STC" stl stc;
      pointwise "STWC within STC" stwc stc;
      checkb "classes STC <= STWC" true
        (stc.Equiv.r_metrics.Equiv.m_classes
        <= stwc.Equiv.r_metrics.Equiv.m_classes);
      checkb "classes STWC <= STL" true
        (stwc.Equiv.r_metrics.Equiv.m_classes
        <= stl.Equiv.r_metrics.Equiv.m_classes);
      true)

(* Feasible gadget edges refine replay edges: every points-to precision
   can only shrink the attack surface, and sharper contexts shrink it
   further — feasible(Cloning 2) <= feasible(Insensitive) <= replay. *)
let prop_equiv_feasible_ladder =
  QCheck.Test.make ~name:"equiv: feasible edges refine replay edges"
    ~count:12
    QCheck.(int_range 1 1000)
    (fun seed ->
      let src = Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) () in
      let m = Rsti_ir.Lower.compile ~file:"g.c" src in
      let anal = Analysis.analyze m in
      let pt_i = Points_to.analyze m in
      let pt_c = Points_to.analyze ~mode:(Points_to.Cloning 2) m in
      List.iter
        (fun mech ->
          let oracle = Equiv.analyze anal m mech in
          let ins = Equiv.analyze ~points_to:pt_i anal m mech in
          let ctx = Equiv.analyze ~points_to:pt_c anal m mech in
          let feas (r : Equiv.result) = r.Equiv.r_metrics.Equiv.m_feasible_edges in
          let name = RT.mechanism_to_string mech in
          checkb (name ^ ": cloning <= insensitive") true
            (feas ctx <= feas ins);
          checkb (name ^ ": insensitive <= replay") true
            (feas ins <= oracle.Equiv.r_metrics.Equiv.m_replay_edges))
        [ RT.Stwc; RT.Stc; RT.Stl; RT.Parts ];
      true)

(* --------------------------- scope escape -------------------------- *)

let scope_pos_src =
  {|
int *leak;
int *give(void) { int slot; slot = 7; leak = &slot; return &slot; }
int main(void) { int *p; p = give(); return *p; }
|}

let scope_neg_src =
  {|
int fill(int *dst) { *dst = 5; return 0; }
int main(void) { int local; local = 0; fill(&local); return local; }
|}

let test_scope_escape_positive () =
  let m = compile scope_pos_src in
  let pt = Points_to.analyze m in
  let sc = Scope_escape.analyze ~points_to:pt m in
  let escapes = Scope_escape.escapes sc in
  checkb "slot escapes" true
    (List.exists
       (fun (e : Scope_escape.escape) -> e.Scope_escape.local_name = "slot")
       escapes);
  checkb "a stored sink is reported" true
    (List.exists
       (fun e ->
         match e.Scope_escape.sink with Scope_escape.Stored _ -> true | _ -> false)
       escapes);
  checkb "the return sink is reported" true
    (List.exists (fun e -> e.Scope_escape.sink = Scope_escape.Returned) escapes);
  let stales = Scope_escape.stale_derefs sc in
  checkb "main derefs the dead frame" true
    (List.exists
       (fun s ->
         s.Scope_escape.use_func = "main" && s.Scope_escape.decl_func = "give"
         && s.Scope_escape.must)
       stales)

let test_scope_escape_negative () =
  let m = compile scope_neg_src in
  let pt = Points_to.analyze m in
  let sc = Scope_escape.analyze ~points_to:pt m in
  checki "downward &local is no escape" 0
    (List.length (Scope_escape.escapes sc));
  checki "no stale derefs" 0 (List.length (Scope_escape.stale_derefs sc))

(* ------------------ elision precision on workloads ----------------- *)

(* The headline acceptance property: provably-safe counts are monotone
   along the precision ladder on every SPEC2006 workload, and k=2
   cloning is a strict improvement where the insensitive solve merges
   registry-style return channels. *)
let test_elide_precision_monotone () =
  let strict = ref [] in
  List.iter
    (fun (w : Rsti_workloads.Workload.t) ->
      let src = Rsti_workloads.Workload.analysis_source w in
      let m = Rsti_ir.Lower.compile ~file:(w.name ^ ".c") src in
      let anal = Analysis.analyze m in
      let safe e = (Elide.summary e).Elide.safe in
      let syn = safe (Elide.analyze anal m) in
      let pt = safe (Elide.analyze ~points_to:(Points_to.analyze m) anal m) in
      let pt_c = Points_to.analyze ~mode:(Points_to.Cloning 2) m in
      let scope = Scope_escape.analyze ~points_to:pt_c m in
      let cs = safe (Elide.analyze ~points_to:pt_c ~scope anal m) in
      checkb (w.name ^ ": points-to >= syntactic") true (pt >= syn);
      checkb (w.name ^ ": cloning >= points-to") true (cs >= pt);
      if cs > pt then strict := w.name :: !strict)
    Rsti_workloads.Spec2006.all;
  List.iter
    (fun w ->
      checkb (w ^ ": cloning strictly gains") true (List.mem w !strict))
    [ "perlbench"; "xalancbmk" ]

(* ------------------------ validator: green ------------------------- *)

let mechanisms = [ RT.Stwc; RT.Stc; RT.Stl ]

let modes =
  [ Elide.Off; Elide.Syntactic; Elide.With_points_to; Elide.With_context 2 ]

(* Every module Instrument produces — all SPEC2006 workloads, all three
   PAC mechanisms, all three elision precisions — satisfies the
   signed-at-rest typestate. *)
let test_validator_green_on_workloads () =
  List.iter
    (fun (w : Rsti_workloads.Workload.t) ->
      let src = Rsti_workloads.Workload.analysis_source w in
      let m = Rsti_ir.Lower.compile ~file:(w.name ^ ".c") src in
      let anal = Analysis.analyze m in
      List.iter
        (fun mech ->
          List.iter
            (fun mode ->
              let pred = Elide.pred mode anal m in
              let r = Instrument.instrument ?elide:pred mech anal m in
              let rep = Validate.check anal mech r.Instrument.modul in
              if not (Validate.ok rep) then
                Alcotest.failf "%s/%s/%s:\n%s" w.name
                  (RT.mechanism_to_string mech)
                  (Elide.mode_to_string mode)
                  (Validate.report_to_string rep))
            modes)
        mechanisms)
    Rsti_workloads.Spec2006.all

(* ------------------------- validator: red -------------------------- *)

(* Removing a single sign (and rewriting its store back to the raw
   value) must be caught: the slot still has auths, so the typestate's
   all-or-nothing summary trips. *)
let test_validator_red_on_broken () =
  let broken_checked = ref 0 in
  List.iter
    (fun (w : Rsti_workloads.Workload.t) ->
      let src = Rsti_workloads.Workload.analysis_source w in
      let m = Rsti_ir.Lower.compile ~file:(w.name ^ ".c") src in
      let anal = Analysis.analyze m in
      let r = Instrument.instrument RT.Stwc anal m in
      match Validate.break_one_sign r.Instrument.modul with
      | None -> ()
      | Some bad ->
          incr broken_checked;
          checkb (w.name ^ " broken copy rejected") false
            (Validate.ok (Validate.check anal RT.Stwc bad)))
    Rsti_workloads.Spec2006.all;
  checkb "at least one workload had a breakable sign" true (!broken_checked > 0)

(* ---------------------- validator: attack victims ------------------ *)

(* The Table-1 victims through the engine pipeline: validator green for
   every mechanism x elision precision, and the one-sign-removed mutant
   rejected wherever it exists. *)
let test_validator_attack_victims () =
  List.iter
    (fun (sc, per, broken) ->
      List.iter
        (fun (mech, mode, rep) ->
          if not (Validate.ok rep) then
            Alcotest.failf "%s/%s/%s:\n%s" sc.Rsti_attacks.Scenario.id
              (RT.mechanism_to_string mech)
              (Elide.mode_to_string mode)
              (Validate.report_to_string rep))
        per;
      match broken with
      | Some false ->
          Alcotest.failf "%s: broken instrumentation passed"
            sc.Rsti_attacks.Scenario.id
      | _ -> ())
    (Rsti_report.Security.validation_results ())

let tests =
  [
    Alcotest.test_case "cfg: succ/pred inverse, rpo from entry" `Quick
      test_cfg_shape;
    Alcotest.test_case "solver: fixpoint over loop and branch merge" `Quick
      test_solver_fixpoint;
    Alcotest.test_case "callgraph: bottom-up order and reachability" `Quick
      test_callgraph_bottom_up;
    Alcotest.test_case "points-to: confinement separates escapees" `Quick
      test_points_to_confinement;
    Alcotest.test_case "context: call strings and k=0 degeneration" `Quick
      test_context_call_strings;
    Alcotest.test_case "context: recursion collapses to one context" `Quick
      test_context_scc_collapse;
    QCheck_alcotest.to_alcotest prop_cloning_refines;
    Alcotest.test_case "points-to: cloning splits merged return channels"
      `Quick test_cloning_strict_gain;
    QCheck_alcotest.to_alcotest prop_equiv_refinement;
    QCheck_alcotest.to_alcotest prop_equiv_feasible_ladder;
    Alcotest.test_case "scope-escape: leaked local and stale deref" `Quick
      test_scope_escape_positive;
    Alcotest.test_case "scope-escape: downward pass is clean" `Quick
      test_scope_escape_negative;
    Alcotest.test_case "elide: precision ladder monotone on SPEC2006" `Slow
      test_elide_precision_monotone;
    Alcotest.test_case
      "validate: green on all workloads x mechanisms x elide modes" `Slow
      test_validator_green_on_workloads;
    Alcotest.test_case "validate: red on one removed sign" `Slow
      test_validator_red_on_broken;
    Alcotest.test_case "validate: Table-1 victims through the pipeline" `Slow
      test_validator_attack_victims;
  ]

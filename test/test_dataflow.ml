(* Tests for the interprocedural dataflow framework: CFG/solver/call
   graph units, Andersen points-to confinement, and the PAC-typestate
   translation validator (green on everything Instrument emits, red on a
   module with one sign deliberately removed). *)

module Ir = Rsti_ir.Ir
module Cfg = Rsti_dataflow.Cfg
module Solver = Rsti_dataflow.Solver
module Callgraph = Rsti_dataflow.Callgraph
module Points_to = Rsti_dataflow.Points_to
module Validate = Rsti_dataflow.Validate
module Elide = Rsti_staticcheck.Elide
module Analysis = Rsti_sti.Analysis
module RT = Rsti_sti.Rsti_type
module Instrument = Rsti_rsti.Instrument

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let compile src = Rsti_ir.Lower.compile ~file:"t.c" src

let branching_src =
  {|
int total;
int main(void) {
  int i;
  i = 0;
  total = 0;
  while (i < 10) {
    if (i > 5) { total = total + 2; } else { total = total + 1; }
    i = i + 1;
  }
  return total;
}
|}

(* ------------------------------ CFG -------------------------------- *)

let test_cfg_shape () =
  let m = compile branching_src in
  List.iter
    (fun (fn : Ir.func) ->
      let cfg = Cfg.of_func fn in
      checki (fn.Ir.name ^ " block count") (Array.length fn.Ir.blocks)
        (Cfg.n_blocks cfg);
      let rpo = Cfg.rpo cfg in
      if Array.length rpo > 0 then
        checki (fn.Ir.name ^ " rpo starts at entry") 0 rpo.(0);
      (* succ and pred are inverse relations *)
      for i = 0 to Cfg.n_blocks cfg - 1 do
        List.iter
          (fun s ->
            checkb
              (Printf.sprintf "%s: %d in pred(%d)" fn.Ir.name i s)
              true
              (List.mem i (Cfg.pred cfg s)))
          (Cfg.succ cfg i);
        List.iter
          (fun p ->
            checkb
              (Printf.sprintf "%s: %d in succ(%d)" fn.Ir.name i p)
              true
              (List.mem i (Cfg.succ cfg p)))
          (Cfg.pred cfg i)
      done;
      checkb (fn.Ir.name ^ " entry reachable") true (Cfg.reachable cfg 0))
    m.Ir.m_funcs

(* ----------------------------- solver ------------------------------ *)

(* A one-bit forward lattice ("a store has been executed on some path
   into this point"): exercises join over branch merges and fixpoint
   termination over the loop. *)
module Store_seen = struct
  module L = struct
    type t = bool

    let bottom = false
    let equal = Bool.equal
    let join = ( || )
    let widen = ( || )
  end

  type ctx = unit

  let instr () (ins : Ir.instr) st =
    match ins.Ir.i with Ir.Store _ -> true | _ -> st

  let term () _ st = st
end

module F = Solver.Forward (Store_seen)

let test_solver_fixpoint () =
  let m = compile branching_src in
  let fn = List.find (fun (f : Ir.func) -> f.Ir.name = "main") m.Ir.m_funcs in
  let cfg = Cfg.of_func fn in
  let res = F.solve ~ctx:() cfg in
  (* main stores to [total] in its entry block, so every reachable
     block's exit sees the bit set *)
  for i = 0 to Cfg.n_blocks cfg - 1 do
    if Cfg.reachable cfg i then
      checkb (Printf.sprintf "block %d exit" i) true (F.exit_state res i)
  done;
  checkb "visited at least every reachable block" true
    (res.F.visits >= Array.length (Cfg.rpo cfg));
  (* iter_block replays states consistent with the block boundary *)
  let entry_seen = ref None in
  F.iter_block ~ctx:() res 0 (fun _ st ->
      if !entry_seen = None then entry_seen := Some st);
  (match !entry_seen with
  | Some st -> checkb "entry block starts at bottom" false st
  | None -> ())

(* --------------------------- call graph ---------------------------- *)

let callgraph_src =
  {|
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main(void) { return mid(1); }
|}

let test_callgraph_bottom_up () =
  let m = compile callgraph_src in
  let cg = Callgraph.of_modul m in
  let order = Callgraph.bottom_up cg in
  let pos f =
    let rec go i = function
      | [] -> Alcotest.failf "%s missing from bottom_up" f
      | x :: _ when x = f -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  checkb "leaf before mid" true (pos "leaf" < pos "mid");
  checkb "mid before main" true (pos "mid" < pos "main");
  checkb "mid calls leaf" true (List.mem "leaf" (Callgraph.callees cg "mid"));
  checkb "leaf reachable from main" true
    (Callgraph.reachable cg ~roots:[ "main" ] "leaf");
  checkb "main not reachable from leaf" false
    (Callgraph.reachable cg ~roots:[ "leaf" ] "main")

(* --------------------------- points-to ----------------------------- *)

let confinement_src =
  {|
extern void sink(int **h);
int x;
int y;
int *p;
int *q;
int main(void) {
  p = &x;
  *p = 1;
  q = &y;
  sink(&q);
  return 0;
}
|}

let global_slot (m : Ir.modul) name =
  let g =
    List.find
      (fun (g : Ir.global_def) -> g.Ir.gvar.Rsti_minic.Tast.v_name = name)
      m.Ir.m_globals
  in
  Ir.Svar g.Ir.gvar.Rsti_minic.Tast.v_id

let test_points_to_confinement () =
  let m = compile confinement_src in
  let pt = Points_to.analyze m in
  let conf = Points_to.confinement pt in
  checkb "p never escapes -> confined" true
    (Points_to.confined_slot conf (global_slot m "p"));
  checkb "&q escapes through sink() -> not confined" false
    (Points_to.confined_slot conf (global_slot m "q"));
  let st = Points_to.stats pt in
  checkb "analysis saw objects" true (st.Points_to.objects > 0);
  checkb "fixpoint took at least one pass" true (st.Points_to.iterations >= 1)

(* ------------------------ validator: green ------------------------- *)

let mechanisms = [ RT.Stwc; RT.Stc; RT.Stl ]
let modes = [ Elide.Off; Elide.Syntactic; Elide.With_points_to ]

(* Every module Instrument produces — all SPEC2006 workloads, all three
   PAC mechanisms, all three elision precisions — satisfies the
   signed-at-rest typestate. *)
let test_validator_green_on_workloads () =
  List.iter
    (fun (w : Rsti_workloads.Workload.t) ->
      let src = Rsti_workloads.Workload.analysis_source w in
      let m = Rsti_ir.Lower.compile ~file:(w.name ^ ".c") src in
      let anal = Analysis.analyze m in
      List.iter
        (fun mech ->
          List.iter
            (fun mode ->
              let pred = Elide.pred mode anal m in
              let r = Instrument.instrument ?elide:pred mech anal m in
              let rep = Validate.check anal mech r.Instrument.modul in
              if not (Validate.ok rep) then
                Alcotest.failf "%s/%s/%s:\n%s" w.name
                  (RT.mechanism_to_string mech)
                  (Elide.mode_to_string mode)
                  (Validate.report_to_string rep))
            modes)
        mechanisms)
    Rsti_workloads.Spec2006.all

(* ------------------------- validator: red -------------------------- *)

(* Removing a single sign (and rewriting its store back to the raw
   value) must be caught: the slot still has auths, so the typestate's
   all-or-nothing summary trips. *)
let test_validator_red_on_broken () =
  let broken_checked = ref 0 in
  List.iter
    (fun (w : Rsti_workloads.Workload.t) ->
      let src = Rsti_workloads.Workload.analysis_source w in
      let m = Rsti_ir.Lower.compile ~file:(w.name ^ ".c") src in
      let anal = Analysis.analyze m in
      let r = Instrument.instrument RT.Stwc anal m in
      match Validate.break_one_sign r.Instrument.modul with
      | None -> ()
      | Some bad ->
          incr broken_checked;
          checkb (w.name ^ " broken copy rejected") false
            (Validate.ok (Validate.check anal RT.Stwc bad)))
    Rsti_workloads.Spec2006.all;
  checkb "at least one workload had a breakable sign" true (!broken_checked > 0)

(* ---------------------- validator: attack victims ------------------ *)

(* The Table-1 victims through the engine pipeline: validator green for
   every mechanism x elision precision, and the one-sign-removed mutant
   rejected wherever it exists. *)
let test_validator_attack_victims () =
  List.iter
    (fun (sc, per, broken) ->
      List.iter
        (fun (mech, mode, rep) ->
          if not (Validate.ok rep) then
            Alcotest.failf "%s/%s/%s:\n%s" sc.Rsti_attacks.Scenario.id
              (RT.mechanism_to_string mech)
              (Elide.mode_to_string mode)
              (Validate.report_to_string rep))
        per;
      match broken with
      | Some false ->
          Alcotest.failf "%s: broken instrumentation passed"
            sc.Rsti_attacks.Scenario.id
      | _ -> ())
    (Rsti_report.Security.validation_results ())

let tests =
  [
    Alcotest.test_case "cfg: succ/pred inverse, rpo from entry" `Quick
      test_cfg_shape;
    Alcotest.test_case "solver: fixpoint over loop and branch merge" `Quick
      test_solver_fixpoint;
    Alcotest.test_case "callgraph: bottom-up order and reachability" `Quick
      test_callgraph_bottom_up;
    Alcotest.test_case "points-to: confinement separates escapees" `Quick
      test_points_to_confinement;
    Alcotest.test_case
      "validate: green on all workloads x mechanisms x elide modes" `Slow
      test_validator_green_on_workloads;
    Alcotest.test_case "validate: red on one removed sign" `Slow
      test_validator_red_on_broken;
    Alcotest.test_case "validate: Table-1 victims through the pipeline" `Slow
      test_validator_attack_victims;
  ]

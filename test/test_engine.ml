(* Tests for the experiment engine: the domain-pool scheduler (every
   task claimed exactly once, results in input order, for any job
   count), the content-keyed artifact cache (a hit returns exactly what
   a fresh computation would), and the headline determinism guarantee —
   figure and table renderings are byte-identical whether the suite runs
   on one domain or four. *)

module Scheduler = Rsti_engine.Scheduler
module Cache = Rsti_engine.Cache
module Pipeline = Rsti_engine.Pipeline
module Run = Rsti_workloads.Run
module Workload = Rsti_workloads.Workload
module Perf = Rsti_report.Perf
module Figures = Rsti_report.Figures
module RT = Rsti_sti.Rsti_type

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ----------------------------- scheduler ---------------------------- *)

(* Every task runs exactly once and the result order is the input order,
   for any job count — the invariant all merge determinism rests on. *)
let prop_scheduler_exactly_once =
  QCheck.Test.make ~name:"scheduler: each task exactly once, in order" ~count:30
    QCheck.(pair (int_range 0 40) (int_range 1 4))
    (fun (n, jobs) ->
      let xs = List.init n (fun i -> i) in
      let runs = Array.make (max n 1) 0 in
      let lock = Mutex.create () in
      let ys =
        Scheduler.map ~jobs
          (fun i ->
            Mutex.lock lock;
            runs.(i) <- runs.(i) + 1;
            Mutex.unlock lock;
            i * i)
          xs
      in
      ys = List.map (fun i -> i * i) xs
      && List.for_all (fun i -> runs.(i) = 1) xs)

(* The always-on scheduler counters see every task claimed exactly once
   under a parallel fan-out: the task count grows by exactly n, and the
   own-claim/steal split partitions it. *)
let test_scheduler_stats_exactly_once () =
  let before = Scheduler.stats () in
  let n = 37 in
  ignore (Scheduler.map ~jobs:4 (fun i -> i * 2) (List.init n (fun i -> i)));
  let after = Scheduler.stats () in
  checki "one fan-out recorded" 1 (after.Scheduler.fanouts - before.Scheduler.fanouts);
  checki "every task counted" n (after.Scheduler.tasks - before.Scheduler.tasks);
  checki "own claims + steals = tasks" n
    (after.Scheduler.own_claims + after.Scheduler.steals
    - (before.Scheduler.own_claims + before.Scheduler.steals))

let test_scheduler_exception_propagates () =
  checkb "task exception re-raised" true
    (try
       ignore
         (Scheduler.map ~jobs:3
            (fun i -> if i = 5 then failwith "boom" else i)
            (List.init 10 (fun i -> i)));
       false
     with Failure msg -> msg = "boom")

let test_scheduler_nested_map_serializes () =
  (* fan-out inside a pool worker must not spawn domains over domains,
     and must still return correct results *)
  let grid =
    Scheduler.map ~jobs:4
      (fun i -> Scheduler.map ~jobs:4 (fun j -> (10 * i) + j) [ 0; 1; 2 ])
      [ 0; 1; 2; 3 ]
  in
  checkb "nested results correct" true
    (grid = List.init 4 (fun i -> List.init 3 (fun j -> (10 * i) + j)))

let test_jobs_resolution_override () =
  Scheduler.set_default_jobs 3;
  checki "override wins" 3 (Scheduler.default_jobs ());
  Scheduler.set_default_jobs 0;
  checki "override clamped to 1" 1 (Scheduler.default_jobs ());
  Scheduler.clear_default_jobs ();
  checkb "cleared falls back to a positive count" true
    (Scheduler.default_jobs () >= 1)

(* ------------------------------- cache ------------------------------ *)

(* A cached artifact must be indistinguishable from a fresh computation:
   same static counts whether the pipeline runs cold, fills the cache, or
   is served from it. *)
let test_cache_hit_identical () =
  let w = List.hd Rsti_workloads.Nbench.all in
  let counts ~cache mech =
    let config = { Pipeline.default with Pipeline.cache } in
    let src = Pipeline.source ~file:(w.Workload.name ^ ".c") w.Workload.source in
    Pipeline.counts
      (Pipeline.instrument ~config mech
         (Pipeline.analyze ~config (Pipeline.compile ~config src)))
  in
  Cache.clear ();
  let fresh = counts ~cache:false RT.Stwc in
  let filling = counts ~cache:true RT.Stwc in
  let before = Cache.stats () in
  let served = counts ~cache:true RT.Stwc in
  let after = Cache.stats () in
  checkb "second cached call hits" true (after.Cache.hits > before.Cache.hits);
  checkb "no extra miss on the hit" true (after.Cache.misses = before.Cache.misses);
  checkb "cold = filling" true (fresh = filling);
  checkb "filling = served" true (filling = served)

(* Run keys omit the instrumentation prices: a hit under a different
   [pac] cost is re-priced from the outcome's counters instead of
   re-simulated. The re-priced cycle totals must equal what a fresh
   simulation at that cost produces — for instrumented runs, baselines,
   and the shadow-MAC backend alike. *)
let test_run_reprice_matches_simulation () =
  Cache.clear ();
  let w = List.hd Rsti_workloads.Spec2006.all in
  let src = Pipeline.source ~file:"reprice.c" w.Workload.source in
  let a = Pipeline.analyze (Pipeline.compile src) in
  let i = Pipeline.instrument RT.Stwc a in
  let config pac =
    { Pipeline.default with
      Pipeline.costs = Rsti_machine.Cost.(with_pac default pac) }
  in
  let uncached pac = { (config pac) with Pipeline.cache = false } in
  (* prime the cache at the default cost, then sweep *)
  ignore (Pipeline.run ~config:(config 7) i);
  ignore (Pipeline.run_baseline ~config:(config 7) (Pipeline.compiled_of_analyzed a));
  List.iter
    (fun pac ->
      let cached = Pipeline.run ~config:(config pac) i in
      let fresh = Pipeline.run ~config:(uncached pac) i in
      checki
        (Printf.sprintf "instrumented cycles at pac=%d" pac)
        fresh.Rsti_machine.Interp.cycles cached.Rsti_machine.Interp.cycles;
      let cached_b =
        Pipeline.run_baseline ~config:(config pac) (Pipeline.compiled_of_analyzed a)
      in
      let fresh_b =
        Pipeline.run_baseline ~config:(uncached pac) (Pipeline.compiled_of_analyzed a)
      in
      checki
        (Printf.sprintf "baseline cycles at pac=%d" pac)
        fresh_b.Rsti_machine.Interp.cycles cached_b.Rsti_machine.Interp.cycles;
      let cached_s = Pipeline.run ~config:(config pac) ~backend:`Shadow_mac i in
      let fresh_s = Pipeline.run ~config:(uncached pac) ~backend:`Shadow_mac i in
      checki
        (Printf.sprintf "shadow-MAC cycles at pac=%d" pac)
        fresh_s.Rsti_machine.Interp.cycles cached_s.Rsti_machine.Interp.cycles)
    [ 3; 5; 9; 12 ]

let test_cache_disabled_bypasses_table () =
  Cache.clear ();
  Cache.set_enabled false;
  let w = List.hd Rsti_workloads.Nbench.all in
  ignore (Cache.compiled ~file:"off.c" w.Workload.source);
  let s = Cache.stats () in
  Cache.set_enabled true;
  checki "no hits recorded while disabled" 0 s.Cache.hits;
  checki "no misses recorded while disabled" 0 s.Cache.misses

(* --------------------- serial vs parallel output -------------------- *)

let take n l = List.filteri (fun i _ -> i < n) l

(* A reduced Perf.t (two kernels per suite) keeps the double measurement
   affordable while exercising the same fan-out/merge path as the full
   figure reproduction. *)
let reduced_perf ~jobs () =
  let config = { Run.default_config with Run.jobs = Some jobs } in
  let suite ws = Run.measure_suite ~config (take 2 ws) RT.all_mechanisms in
  {
    Perf.spec2006 = suite Rsti_workloads.Spec2006.all;
    spec2017 = suite Rsti_workloads.Spec2017.all;
    nbench = suite Rsti_workloads.Nbench.all;
    pytorch = suite Rsti_workloads.Pytorch.all;
    nginx = suite Rsti_workloads.Nginx.all;
  }

let test_fig9_fig10_identical_across_jobs () =
  let serial = reduced_perf ~jobs:1 () in
  (* Drop the artifacts the serial pass populated, so the parallel pass
     recomputes everything rather than trivially serving cache hits. *)
  Cache.clear ();
  let four = reduced_perf ~jobs:4 () in
  checks "fig9 byte-identical" (Figures.fig9 serial) (Figures.fig9 four);
  checks "fig10 byte-identical" (Figures.fig10 serial) (Figures.fig10 four)

let test_table3_identical_across_jobs () =
  Scheduler.set_default_jobs 1;
  let serial = Figures.table3 () in
  Cache.clear ();
  Scheduler.set_default_jobs 4;
  let four = Figures.table3 () in
  Scheduler.clear_default_jobs ();
  checks "table3 byte-identical" serial four

let tests =
  [
    QCheck_alcotest.to_alcotest prop_scheduler_exactly_once;
    Alcotest.test_case "scheduler: stats count each task once" `Quick
      test_scheduler_stats_exactly_once;
    Alcotest.test_case "scheduler: exceptions propagate" `Quick
      test_scheduler_exception_propagates;
    Alcotest.test_case "scheduler: nested fan-out" `Quick
      test_scheduler_nested_map_serializes;
    Alcotest.test_case "scheduler: jobs resolution" `Quick
      test_jobs_resolution_override;
    Alcotest.test_case "cache: hit = fresh computation" `Quick
      test_cache_hit_identical;
    Alcotest.test_case "cache: run re-pricing = fresh simulation" `Quick
      test_run_reprice_matches_simulation;
    Alcotest.test_case "cache: disabled bypasses table" `Quick
      test_cache_disabled_bypasses_table;
    Alcotest.test_case "determinism: fig9/fig10 jobs=1 vs 4" `Slow
      test_fig9_fig10_identical_across_jobs;
    Alcotest.test_case "determinism: table3 jobs=1 vs 4" `Quick
      test_table3_identical_across_jobs;
  ]

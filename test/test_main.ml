(* Entry point aggregating every suite. *)

let () =
  Alcotest.run "rsti"
    [
      ("util", Test_util.tests);
      ("pa", Test_pa.tests);
      ("minic", Test_minic.tests);
      ("ir", Test_ir.tests);
      ("machine", Test_machine.tests);
      ("sti", Test_sti.tests);
      ("staticcheck", Test_staticcheck.tests);
      ("rsti", Test_rsti.tests);
      ("security", Test_security.tests);
      ("punning", Test_punning.tests);
      ("workloads", Test_workloads.tests);
      ("engine", Test_engine.tests);
      ("observe", Test_observe.tests);
      ("dataflow", Test_dataflow.tests);
      ("report", Test_report.tests);
      ("perf", Test_perf.tests);
    ]

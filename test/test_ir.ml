(* Tests for the IR: lowering shapes, debug metadata, slots, printing. *)

module Ir = Rsti_ir.Ir
module Dinfo = Rsti_ir.Dinfo
module Lower = Rsti_ir.Lower
module Ctype = Rsti_minic.Ctype

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Several tests below corrupt the returned module in place to provoke
   the verifier, so compile with the artifact cache off — a mutated
   module must never be shared with other suites through the cache. *)
let compile src =
  let module P = Rsti_engine.Pipeline in
  let config = { P.default with P.cache = false } in
  P.ir (P.compile ~config (P.source ~file:"t.c" src))

let find_func m name =
  match Ir.find_func m name with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

let count_instrs pred fn =
  Ir.fold_instrs (fun acc ins -> if pred ins.Ir.i then acc + 1 else acc) 0 fn

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ----------------------------- lowering ---------------------------- *)

let test_lower_locals_get_allocas_with_divariables () =
  let m = compile "int main(void) { int x = 1; long y = 2; return x + (int) y; }" in
  let main = find_func m "main" in
  let named_allocas =
    count_instrs (function Ir.Alloca { dv = Some _; _ } -> true | _ -> false) main
  in
  checki "two DIVariable allocas" 2 named_allocas

let test_lower_params_spilled () =
  let m = compile "int f(int a, int b) { return a + b; }\nint main(void) { return f(1,2); }" in
  let f = find_func m "f" in
  let stores = count_instrs (function Ir.Store _ -> true | _ -> false) f in
  checkb "param spills" true (stores >= 2)

let test_lower_dbg_locations () =
  let m = compile "int main(void) {\n  int x = 1;\n  return x;\n}" in
  let main = find_func m "main" in
  let has_line2 = ref false in
  Ir.iter_instrs
    (fun ins ->
      match ins.Ir.dbg with
      | Some d -> if d.Dinfo.dl_line = 2 && d.dl_func = "main" then has_line2 := true
      | None -> ())
    main;
  checkb "line info present" true !has_line2

let test_lower_struct_field_slots () =
  let m =
    compile
      "extern void* malloc(long n);\n\
       struct s { long a; long* p; };\n\
       int main(void) { struct s* x = (struct s*) malloc(sizeof(struct s));\n\
       x->a = 1; return (int) x->a; }"
  in
  let main = find_func m "main" in
  let field_accesses =
    count_instrs
      (function
        | Ir.Store { slot = Ir.Sfield ("s", "a"); _ }
        | Ir.Load { slot = Ir.Sfield ("s", "a"); _ } ->
            true
        | _ -> false)
      main
  in
  checki "field slot on store+load" 2 field_accesses

let test_lower_bitcast_on_pointer_cast () =
  let m =
    compile
      "extern void* malloc(long n);\n\
       int main(void) { long* p = (long*) malloc(8); return p ? 0 : 1; }"
  in
  let main = find_func m "main" in
  checkb "bitcast emitted" true
    (count_instrs (function Ir.Bitcast _ -> true | _ -> false) main >= 1)

let test_lower_global_init_function () =
  let m = compile "int g = 41;\nint main(void) { return g; }" in
  let init = find_func m Ir.global_init_name in
  checki "one initializing store" 1
    (count_instrs (function Ir.Store _ -> true | _ -> false) init)

let test_lower_gep_for_index () =
  let m = compile "long a[4];\nint main(void) { a[2] = 7; return (int) a[2]; }" in
  let main = find_func m "main" in
  checkb "gepidx emitted" true
    (count_instrs (function Ir.Gepidx _ -> true | _ -> false) main >= 2)

let test_lower_ptr_sub_scales () =
  (* (q - p) over longs must divide the byte difference by 8 *)
  let m =
    compile
      "int main(void) { long a[4]; long* p = &a[0]; long* q = &a[3]; return (int)(q - p); }"
  in
  let vm = Rsti_machine.Interp.create m in
  match (Rsti_machine.Interp.run vm).status with
  | Rsti_machine.Interp.Exited 3L -> ()
  | Rsti_machine.Interp.Exited n -> Alcotest.failf "q-p = %Ld, want 3" n
  | Rsti_machine.Interp.Trapped t ->
      Alcotest.failf "trap %s" (Rsti_machine.Interp.trap_to_string t)

let test_lower_string_table_dedup () =
  let m =
    compile
      "extern int printf(const char* f, ...);\n\
       int main(void) { printf(\"hi\"); printf(\"hi\"); printf(\"other\"); return 0; }"
  in
  checki "two distinct strings" 2 (Array.length m.Ir.m_strings)

let test_printing_mentions_slots () =
  let m = compile "long* g;\nint main(void) { g = NULL; return 0; }" in
  let s = Ir.modul_to_string m in
  checkb "prints slot info" true (contains_sub ~sub:"slot" s);
  checkb "prints global" true (contains_sub ~sub:"@g" s)

let test_terminators_well_formed () =
  let m =
    compile
      "int main(void) { int s = 0; for (int i = 0; i < 4; i++) { if (i == 2) { continue; } s += i; } return s; }"
  in
  let main = find_func m "main" in
  Array.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Ir.Br l -> checkb "label valid" true (l >= 0 && l < Array.length main.Ir.blocks)
      | Ir.Condbr (_, a, c) ->
          checkb "labels valid" true
            (a >= 0 && a < Array.length main.Ir.blocks && c >= 0
            && c < Array.length main.Ir.blocks)
      | Ir.Ret _ | Ir.Unreachable -> ())
    main.Ir.blocks

let test_registers_assigned_once () =
  let m =
    compile
      "extern void* malloc(long n);\n\
       struct s { struct s* next; };\n\
       int main(void) { struct s* p = (struct s*) malloc(16); p->next = p;\n\
       long n = 0; while (n < 3) { p = p->next; n++; } return (int) n; }"
  in
  List.iter
    (fun fn ->
      let seen = Hashtbl.create 32 in
      Ir.iter_instrs
        (fun ins ->
          let def =
            match ins.Ir.i with
            | Ir.Alloca { dst; _ } | Ir.Load { dst; _ } | Ir.Gep { dst; _ }
            | Ir.Gepidx { dst; _ } | Ir.Bitcast { dst; _ } | Ir.Binop { dst; _ }
            | Ir.Neg { dst; _ } | Ir.Lognot { dst; _ } | Ir.Bitnot { dst; _ }
            | Ir.Cast_num { dst; _ } ->
                Some dst
            | Ir.Call { dst; _ } -> dst
            | Ir.Pac p -> Some p.p_dst
            | Ir.Pp (Ir.Pp_sign { dst; _ })
            | Ir.Pp (Ir.Pp_auth { dst; _ })
            | Ir.Pp (Ir.Pp_add_tbi { dst; _ }) ->
                Some dst
            | Ir.Store _ | Ir.Pp (Ir.Pp_add _) -> None
          in
          match def with
          | Some d ->
              checkb "reg defined once" false (Hashtbl.mem seen d);
              Hashtbl.replace seen d ()
          | None -> ())
        fn)
    m.Ir.m_funcs

let test_sizeof_struct_via_module () =
  let m = compile "struct s { char c; long n; };\nint main(void) { return 0; }" in
  checki "padded size" 16 (Ir.sizeof m (Ctype.Struct "s"))

let test_verifier_accepts_lowered () =
  let srcs =
    [ "int main(void) { return 0; }";
      "extern void* malloc(long n);\nstruct s { struct s* n; };\n\
       int main(void) { struct s* p = (struct s*) malloc(16); p->n = p;\n\
       return p->n == p ? 0 : 1; }" ]
  in
  List.iter
    (fun src ->
      match Rsti_ir.Verify.verify (compile src) with
      | [] -> ()
      | { fn; msg } :: _ -> Alcotest.failf "verify %s: %s" fn msg)
    srcs

let test_verifier_accepts_generated () =
  for seed = 50 to 60 do
    let src = Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) () in
    match Rsti_ir.Verify.verify (compile src) with
    | [] -> ()
    | { fn; msg } :: _ -> Alcotest.failf "seed %d: %s: %s" seed fn msg
  done

let test_verifier_rejects_bad_branch () =
  let m = compile "int main(void) { return 0; }" in
  let main = find_func m "main" in
  main.Ir.blocks.(0).Ir.term <- Ir.Br 99;
  checkb "invalid label flagged" true (Rsti_ir.Verify.verify m <> [])

let test_verifier_rejects_undefined_reg () =
  let m = compile "int main(void) { return 0; }" in
  let main = find_func m "main" in
  main.Ir.blocks.(0).Ir.term <- Ir.Ret (Some (Ir.Reg 77));
  checkb "undefined register flagged" true (Rsti_ir.Verify.verify m <> [])

(* Append one bogus argument to every direct call of [callee] in [fn]. *)
let pad_call_args fn callee =
  Array.iter
    (fun (b : Ir.block) ->
      b.Ir.instrs <-
        List.map
          (fun (ins : Ir.instr) ->
            match ins.Ir.i with
            | Ir.Call ({ callee = Ir.Direct f; args; arg_tys; _ } as c)
              when f = callee ->
                {
                  ins with
                  Ir.i =
                    Ir.Call
                      {
                        c with
                        args = args @ [ Ir.Imm 0L ];
                        arg_tys = arg_tys @ [ Ctype.Int ];
                      };
                }
            | _ -> ins)
          b.Ir.instrs)
    fn.Ir.blocks

let test_verifier_rejects_call_arity () =
  let m =
    compile
      "int f(int a) { return a; }\nint main(void) { return f(1); }"
  in
  checkb "well-typed call passes" true (Rsti_ir.Verify.verify m = []);
  pad_call_args (find_func m "main") "f";
  let errs = Rsti_ir.Verify.verify m in
  checkb "module-function arity flagged" true
    (List.exists
       (fun (e : Rsti_ir.Verify.error) ->
         e.fn = "main"
         && contains_sub ~sub:"passes 2 args, signature declares 1" e.msg)
       errs)

let test_verifier_rejects_extern_arity () =
  let m =
    compile
      "extern int puts(const char* s);\nint main(void) { return puts(\"x\"); }"
  in
  checkb "declared extern call passes" true (Rsti_ir.Verify.verify m = []);
  pad_call_args (find_func m "main") "puts";
  let errs = Rsti_ir.Verify.verify m in
  checkb "extern arity flagged" true
    (List.exists
       (fun (e : Rsti_ir.Verify.error) ->
         contains_sub ~sub:"extern @puts passes 2 args, declared 1" e.msg)
       errs)

let test_verifier_accepts_variadic_extern () =
  (* printf's fixed part is one parameter: extra args are fine, too few
     are not. *)
  let m =
    compile
      "extern int printf(const char* fmt, ...);\n\
       int main(void) { printf(\"%d %d\\n\", 1, 2); return 0; }"
  in
  checkb "variadic extras pass" true (Rsti_ir.Verify.verify m = []);
  let main = find_func m "main" in
  Array.iter
    (fun (b : Ir.block) ->
      b.Ir.instrs <-
        List.map
          (fun (ins : Ir.instr) ->
            match ins.Ir.i with
            | Ir.Call ({ callee = Ir.Direct "printf"; _ } as c) ->
                { ins with Ir.i = Ir.Call { c with args = []; arg_tys = [] } }
            | _ -> ins)
          b.Ir.instrs)
    main.Ir.blocks;
  checkb "too few variadic args flagged" true
    (List.exists
       (fun (e : Rsti_ir.Verify.error) ->
         contains_sub ~sub:"variadic extern @printf" e.msg)
       (Rsti_ir.Verify.verify m))

let strip_store_dbg fn munge =
  Array.iter
    (fun (b : Ir.block) ->
      b.Ir.instrs <-
        List.map
          (fun (ins : Ir.instr) ->
            match ins.Ir.i with
            | Ir.Store _ -> { ins with Ir.dbg = munge ins.Ir.dbg }
            | _ -> ins)
          b.Ir.instrs)
    fn.Ir.blocks

let test_verifier_rejects_missing_dbg () =
  let m = compile "int main(void) { int x = 1; return x; }" in
  strip_store_dbg (find_func m "main") (fun _ -> None);
  checkb "store without !dbg flagged" true
    (List.exists
       (fun (e : Rsti_ir.Verify.error) ->
         contains_sub ~sub:"store without !dbg" e.msg)
       (Rsti_ir.Verify.verify m))

let test_verifier_rejects_dangling_dbg () =
  let m = compile "int main(void) { int x = 1; return x; }" in
  strip_store_dbg (find_func m "main") (fun dbg ->
      Option.map (fun d -> { d with Rsti_ir.Dinfo.dl_func = "ghost" }) dbg);
  checkb "dangling !dbg function flagged" true
    (List.exists
       (fun (e : Rsti_ir.Verify.error) ->
         contains_sub ~sub:"names unknown function ghost" e.msg)
       (Rsti_ir.Verify.verify m))

let tests =
  [
    Alcotest.test_case "verify: lowered modules" `Quick test_verifier_accepts_lowered;
    Alcotest.test_case "verify: generated modules" `Quick test_verifier_accepts_generated;
    Alcotest.test_case "verify: bad branch" `Quick test_verifier_rejects_bad_branch;
    Alcotest.test_case "verify: undefined register" `Quick test_verifier_rejects_undefined_reg;
    Alcotest.test_case "verify: call arity" `Quick test_verifier_rejects_call_arity;
    Alcotest.test_case "verify: extern arity" `Quick test_verifier_rejects_extern_arity;
    Alcotest.test_case "verify: variadic extern" `Quick test_verifier_accepts_variadic_extern;
    Alcotest.test_case "verify: missing !dbg" `Quick test_verifier_rejects_missing_dbg;
    Alcotest.test_case "verify: dangling !dbg" `Quick test_verifier_rejects_dangling_dbg;
    Alcotest.test_case "lower: DIVariable allocas" `Quick test_lower_locals_get_allocas_with_divariables;
    Alcotest.test_case "lower: param spills" `Quick test_lower_params_spilled;
    Alcotest.test_case "lower: !dbg locations" `Quick test_lower_dbg_locations;
    Alcotest.test_case "lower: field slots" `Quick test_lower_struct_field_slots;
    Alcotest.test_case "lower: bitcast at casts" `Quick test_lower_bitcast_on_pointer_cast;
    Alcotest.test_case "lower: global init fn" `Quick test_lower_global_init_function;
    Alcotest.test_case "lower: gep for indexing" `Quick test_lower_gep_for_index;
    Alcotest.test_case "lower: ptr subtraction scales" `Quick test_lower_ptr_sub_scales;
    Alcotest.test_case "lower: string dedup" `Quick test_lower_string_table_dedup;
    Alcotest.test_case "print: slots and globals" `Quick test_printing_mentions_slots;
    Alcotest.test_case "lower: terminators valid" `Quick test_terminators_well_formed;
    Alcotest.test_case "lower: registers SSA" `Quick test_registers_assigned_once;
    Alcotest.test_case "module: sizeof struct" `Quick test_sizeof_struct_via_module;
  ]

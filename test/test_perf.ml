(* The performance evaluation as a test suite: every workload of every
   suite must run identically under every mechanism (the runner raises
   Divergence otherwise), and the paper's qualitative results must hold:
   overhead orderings, pointer-heavy outliers, near-zero numeric kernels,
   PARTS losing to RSTI on nbench, and a positive overhead/
   instrumentation correlation. *)

module RT = Rsti_sti.Rsti_type
module Run = Rsti_workloads.Run
module Workload = Rsti_workloads.Workload
module Stats = Rsti_util.Stats

let checkb = Alcotest.(check bool)

let mechs = RT.all_mechanisms

(* Cache: measure each suite once for the whole test run. *)
let suite_cache : (string, Run.measurement list) Hashtbl.t = Hashtbl.create 8

let measurements name ws =
  match Hashtbl.find_opt suite_cache name with
  | Some ms -> ms
  | None ->
      let ms = Run.measure_suite ws mechs in
      Hashtbl.replace suite_cache name ms;
      ms

let suites =
  [
    ("spec2006", Rsti_workloads.Spec2006.all);
    ("spec2017", Rsti_workloads.Spec2017.all);
    ("nbench", Rsti_workloads.Nbench.all);
    ("pytorch", Rsti_workloads.Pytorch.all);
    ("nginx", Rsti_workloads.Nginx.all);
  ]

let overhead ms mech name =
  List.find_map
    (fun (m : Run.measurement) ->
      if m.mech = mech && m.workload.Workload.name = name then Some m.overhead_pct
      else None)
    ms

let geomean ms mech =
  Stats.geomean_overhead
    (List.filter_map
       (fun (m : Run.measurement) ->
         if m.mech = mech then Some m.overhead_pct else None)
       ms)

(* one test per workload: runs under all mechanisms without divergence,
   with non-negative overhead *)
let per_workload_tests =
  List.concat_map
    (fun (suite, ws) ->
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s runs identically under all mechanisms" suite w.name)
            `Slow
            (fun () ->
              let ms = measurements suite ws in
              List.iter
                (fun mech ->
                  match overhead ms mech w.name with
                  | Some x -> checkb "overhead >= 0" true (x >= -0.001)
                  | None -> Alcotest.fail "missing measurement")
                mechs))
        ws)
    suites

let test_suite_orderings () =
  List.iter
    (fun (suite, ws) ->
      let ms = measurements suite ws in
      let stwc = geomean ms RT.Stwc in
      let stc = geomean ms RT.Stc in
      let stl = geomean ms RT.Stl in
      checkb (suite ^ ": STC <= STWC") true (stc <= stwc +. 0.05);
      checkb (suite ^ ": STWC <= STL") true (stwc <= stl +. 0.05))
    suites

let test_pointer_heavy_are_outliers () =
  let ms = measurements "spec2006" Rsti_workloads.Spec2006.all in
  let get name = Option.get (overhead ms RT.Stwc name) in
  (* the paper's pointer-heavy benchmarks must clearly exceed the numeric
     ones under every mechanism *)
  List.iter
    (fun heavy ->
      List.iter
        (fun light ->
          checkb
            (Printf.sprintf "%s > %s" heavy light)
            true
            (get heavy > get light +. 1.0))
        [ "lbm"; "milc"; "namd"; "hmmer" ])
    [ "perlbench"; "xalancbmk"; "omnetpp"; "mcf"; "povray" ]

let test_numeric_kernels_near_zero () =
  let ms = measurements "spec2006" Rsti_workloads.Spec2006.all in
  List.iter
    (fun name ->
      List.iter
        (fun mech ->
          let x = Option.get (overhead ms mech name) in
          checkb (Printf.sprintf "%s %s < 1%%" name (RT.mechanism_to_string mech)) true
            (x < 1.0))
        mechs)
    [ "lbm"; "milc"; "namd"; "libquantum"; "hmmer"; "sphinx3" ]

let test_stwc_stc_gap_on_cast_heavy () =
  let ms = measurements "spec2006" Rsti_workloads.Spec2006.all in
  (* perlbench/xalancbmk cast in hot loops: combining must pay off *)
  List.iter
    (fun name ->
      let stwc = Option.get (overhead ms RT.Stwc name) in
      let stc = Option.get (overhead ms RT.Stc name) in
      checkb (name ^ ": STC beats STWC") true (stc < stwc))
    [ "perlbench"; "xalancbmk" ]

let test_stl_costs_more_on_call_heavy () =
  let ms = measurements "spec2006" Rsti_workloads.Spec2006.all in
  List.iter
    (fun name ->
      let stwc = Option.get (overhead ms RT.Stwc name) in
      let stl = Option.get (overhead ms RT.Stl name) in
      checkb (name ^ ": STL > STWC") true (stl > stwc +. 1.0))
    [ "povray"; "mcf"; "omnetpp" ]

let test_parts_loses_on_nbench () =
  (* paper 6.3.2: PARTS 19.5% mean vs RSTI's ~1-3% on nbench *)
  let ms = Run.measure_suite Rsti_workloads.Nbench.all (mechs @ [ RT.Parts ]) in
  let mean mech =
    Stats.mean
      (List.filter_map
         (fun (m : Run.measurement) ->
           if m.mech = mech then Some m.overhead_pct else None)
         ms)
  in
  let parts = mean RT.Parts in
  List.iter
    (fun mech ->
      checkb
        (Printf.sprintf "PARTS >> %s on nbench" (RT.mechanism_to_string mech))
        true
        (parts > 3. *. mean mech +. 1.0))
    mechs;
  checkb "PARTS mean sizable" true (parts > 5.

  )

let test_correlation_positive () =
  (* paper 6.3.2: overhead correlates with instrumented load/stores *)
  let ms = measurements "spec2006" Rsti_workloads.Spec2006.all in
  List.iter
    (fun mech ->
      let per = List.filter (fun (m : Run.measurement) -> m.mech = mech) ms in
      let xs =
        List.map
          (fun (m : Run.measurement) ->
            float_of_int
              (m.dyn.Rsti_machine.Interp.pac_signs + m.dyn.Rsti_machine.Interp.pac_auths))
          per
      in
      let ys = List.map (fun (m : Run.measurement) -> m.overhead_pct) per in
      let r = Stats.pearson xs ys in
      (* the paper reports 0.75-0.8 with exceptions; we require a clearly
         positive correlation *)
      checkb
        (Printf.sprintf "%s: r > 0.35 (got %.2f)" (RT.mechanism_to_string mech) r)
        true (r > 0.35))
    mechs

let test_overall_geomeans_in_paper_ballpark () =
  (* shape, not absolute numbers: single digits for STWC/STC, STL higher *)
  let all =
    List.concat_map (fun (suite, ws) -> measurements suite ws) suites
  in
  let g mech = geomean all mech in
  let stwc = g RT.Stwc and stc = g RT.Stc and stl = g RT.Stl in
  checkb "STWC in (0.5%, 15%)" true (stwc > 0.5 && stwc < 15.);
  checkb "STC in (0.3%, 12%)" true (stc > 0.3 && stc < 12.);
  checkb "STL in (1%, 30%)" true (stl > 1. && stl < 30.);
  checkb "STC < STWC < STL" true (stc < stwc && stwc < stl)

let test_dynamic_counts_match_mechanism () =
  let ms = measurements "spec2006" Rsti_workloads.Spec2006.all in
  List.iter
    (fun (m : Run.measurement) ->
      if m.mech = RT.Stc then
        checkb "STC executes no resign pairs" true
          (m.static_counts.Rsti_rsti.Instrument.resigns = 0))
    ms

let test_fig9_rows_complete () =
  (* the Figure 9 reproduction has one row per SPEC2017 benchmark plus
     the aggregate rows *)
  let p =
    {
      Rsti_report.Perf.spec2006 = measurements "spec2006" Rsti_workloads.Spec2006.all;
      spec2017 = measurements "spec2017" Rsti_workloads.Spec2017.all;
      nbench = measurements "nbench" Rsti_workloads.Nbench.all;
      pytorch = measurements "pytorch" Rsti_workloads.Pytorch.all;
      nginx = measurements "nginx" Rsti_workloads.Nginx.all;
    }
  in
  let rows = Rsti_report.Figures.fig9_rows p in
  Alcotest.(check int) "23 benchmarks + 6 aggregates" 29 (List.length rows);
  List.iter
    (fun (_, per_mech) -> Alcotest.(check int) "3 mechanisms" 3 (List.length per_mech))
    rows

let test_table3_report_renders () =
  let s = Rsti_report.Figures.table3 () in
  checkb "mentions perlbench" true
    (let sub = "perlbench" in
     let n = String.length sub and m = String.length s in
     let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
     go 0)

let tests =
  per_workload_tests
  @ [
      Alcotest.test_case "geomean orderings per suite" `Slow test_suite_orderings;
      Alcotest.test_case "pointer-heavy outliers" `Slow test_pointer_heavy_are_outliers;
      Alcotest.test_case "numeric kernels ~0%" `Slow test_numeric_kernels_near_zero;
      Alcotest.test_case "STC beats STWC on cast-heavy" `Slow test_stwc_stc_gap_on_cast_heavy;
      Alcotest.test_case "STL premium on call-heavy" `Slow test_stl_costs_more_on_call_heavy;
      Alcotest.test_case "PARTS loses on nbench" `Slow test_parts_loses_on_nbench;
      Alcotest.test_case "overhead/pac-op correlation" `Slow test_correlation_positive;
      Alcotest.test_case "overall geomeans ballpark" `Slow test_overall_geomeans_in_paper_ballpark;
      Alcotest.test_case "STC never resigns" `Slow test_dynamic_counts_match_mechanism;
      Alcotest.test_case "fig9 rows complete" `Slow test_fig9_rows_complete;
      Alcotest.test_case "table3 renders" `Slow test_table3_report_renders;
    ]

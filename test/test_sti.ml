(* Tests for the STI analysis: scopes, RSTI-types, permissions,
   field-sensitivity, type-class merging, equivalence classes, the
   pointer-to-pointer census, and modifier derivation. *)

module Analysis = Rsti_sti.Analysis
module RT = Rsti_sti.Rsti_type
module Ir = Rsti_ir.Ir
module Ctype = Rsti_minic.Ctype

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Pipeline = Rsti_engine.Pipeline

let analyze src =
  Pipeline.(analysis (analyze (compile (source ~file:"t.c" src))))

(* Figure 5's program. *)
let fig5 =
  {|
extern void* malloc(long n);
typedef struct { void (*send_file)(long x); } ctx;
void do_send(long x) { }
void foo(ctx* c) { c->send_file(1); }
void bar(ctx* c) { c->send_file(2); }
void foo2(void* v_ctx) {
  foo((ctx*) v_ctx);
  bar((ctx*) v_ctx);
}
int main(void) {
  ctx* c = (ctx*) malloc(sizeof(ctx));
  c->send_file = do_send;
  const void* v_const = malloc(sizeof(long));
  foo2((void*) c);
  return v_const ? 0 : 1;
}
|}

(* Figure 6's program. *)
let fig6 =
  {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
int hello_func(void) { printf("Hello!"); return 0; }
struct node {
  int key;
  int (*fp)(void);
  struct node *next;
};
int main(void) {
  struct node* ptr = (struct node*) malloc(sizeof(struct node));
  ptr->fp = hello_func;
  return ptr->fp();
}
|}

let var_named anal name =
  match
    List.find_opt
      (fun (si : Analysis.slot_info) ->
        match si.slot with
        | Ir.Svar _ -> si.decl_func <> None || si.kind = Analysis.Kglobal
        | _ -> false)
      (List.filter
         (fun (si : Analysis.slot_info) ->
           match si.slot with Ir.Svar _ -> true | _ -> false)
         (Analysis.pointer_vars anal))
  with
  | Some _ ->
      (* resolve by matching scope strings is brittle; find via key *)
      List.find
        (fun (si : Analysis.slot_info) ->
          match si.slot with Ir.Svar _ -> si.key <> "" && name = name | _ -> false)
        (Analysis.pointer_vars anal)
  | None -> Alcotest.fail "no vars"

let _ = var_named

(* ------------------------ Figure 5 semantics ----------------------- *)

let test_fig5_ctx_scope_widened () =
  let anal = analyze fig5 in
  (* the ctx* class must be scoped over main, foo, bar, foo2 *)
  let vars = Analysis.pointer_vars anal in
  let ctx_var =
    List.find
      (fun (si : Analysis.slot_info) ->
        Ctype.to_string (Ctype.strip_all_quals si.sty) = "struct ctx*"
        && si.kind <> Analysis.Kfield "ctx")
      vars
  in
  let rt = Analysis.rsti_of anal RT.Stwc ctx_var.slot in
  List.iter
    (fun f -> checkb ("scope has " ^ f) true (List.mem f rt.RT.rt_scope))
    [ "main"; "foo"; "bar"; "foo2" ]

let test_fig5_const_permission_distinct () =
  let anal = analyze fig5 in
  let vars = Analysis.pointer_vars anal in
  let v_const =
    List.find (fun (si : Analysis.slot_info) -> si.read_only) vars
  in
  let rt = Analysis.rsti_of anal RT.Stwc v_const.slot in
  checkb "read-only RSTI-type" true rt.RT.rt_read_only

let test_fig5_stc_merges_ctx_void () =
  let anal = analyze fig5 in
  let cls = Analysis.type_class_of anal (Ctype.Ptr (Ctype.Struct "ctx")) in
  checkb "void* in ctx* class" true (List.mem "void*" cls);
  checkb "ctx* in class" true (List.mem "struct ctx*" cls)

let test_fig5_stwc_does_not_merge () =
  let anal = analyze fig5 in
  let vars = Analysis.pointer_vars anal in
  List.iter
    (fun (si : Analysis.slot_info) ->
      let rt = Analysis.rsti_of anal RT.Stwc si.slot in
      checki "STWC: single type per RSTI-type" 1 (List.length rt.RT.rt_types))
    vars

let test_fig5_casts_recorded () =
  let anal = analyze fig5 in
  let casts = Analysis.casts anal in
  checkb "void*->ctx* in foo2" true
    (List.exists (fun (f, a, b) -> f = "foo2" && a = "void*" && b = "struct ctx*") casts);
  checkb "ctx*->void* in main" true
    (List.exists (fun (f, a, b) -> f = "main" && a = "struct ctx*" && b = "void*") casts)

(* ------------------------ Figure 6 semantics ----------------------- *)

let test_fig6_field_scope_includes_struct () =
  let anal = analyze fig6 in
  let rt = Analysis.rsti_of anal RT.Stwc (Ir.Sfield ("node", "fp")) in
  checkb "struct node in fp's scope" true (List.mem "struct node" rt.RT.rt_scope);
  checkb "main in fp's scope" true (List.mem "main" rt.RT.rt_scope)

let test_fig6_code_pointer_key () =
  Alcotest.(check string)
    "fp uses IA" "ia"
    (Rsti_pa.Key.which_to_string
       (Analysis.key_for
          (Ctype.Ptr (Ctype.Func { ret = Ctype.Int; params = []; variadic = false }))));
  Alcotest.(check string)
    "data ptr uses DA" "da"
    (Rsti_pa.Key.which_to_string (Analysis.key_for (Ctype.Ptr Ctype.Long)))

(* --------------------------- modifiers ------------------------------ *)

let test_modifiers_deterministic () =
  let a1 = analyze fig6 and a2 = analyze fig6 in
  Alcotest.check Alcotest.int64 "stable modifier"
    (Analysis.modifier_of a1 RT.Stwc (Ir.Sfield ("node", "fp")))
    (Analysis.modifier_of a2 RT.Stwc (Ir.Sfield ("node", "fp")))

let test_modifiers_distinct_fields () =
  let anal = analyze fig6 in
  checkb "fp and next differ" true
    (Analysis.modifier_of anal RT.Stwc (Ir.Sfield ("node", "fp"))
    <> Analysis.modifier_of anal RT.Stwc (Ir.Sfield ("node", "next")))

let test_parts_modifier_type_only () =
  let anal = analyze fig5 in
  (* PARTS: every slot of the same basic type shares one modifier *)
  let vars =
    List.filter
      (fun (si : Analysis.slot_info) ->
        Ctype.to_string (Ctype.strip_all_quals si.sty) = "void*")
      (Analysis.pointer_vars anal)
  in
  checkb "at least two void* vars" true (List.length vars >= 2);
  let mods =
    List.sort_uniq compare
      (List.map (fun (si : Analysis.slot_info) ->
           Analysis.modifier_of anal RT.Parts si.slot) vars)
  in
  checki "one PARTS modifier" 1 (List.length mods)

let test_rsti_type_to_string_injective_cases () =
  let a = RT.make ~types:[ "int*" ] ~scope:[ "f" ] ~read_only:false in
  let b = RT.make ~types:[ "int*" ] ~scope:[ "g" ] ~read_only:false in
  let c = RT.make ~types:[ "int*" ] ~scope:[ "f" ] ~read_only:true in
  checkb "scope changes modifier" true (RT.modifier a <> RT.modifier b);
  checkb "permission changes modifier" true (RT.modifier a <> RT.modifier c)

let test_rsti_type_canonicalisation () =
  let a = RT.make ~types:[ "b"; "a"; "a" ] ~scope:[ "z"; "y" ] ~read_only:false in
  let b = RT.make ~types:[ "a"; "b" ] ~scope:[ "y"; "z"; "z" ] ~read_only:false in
  checkb "order-insensitive" true (RT.equal a b && RT.modifier a = RT.modifier b)

(* --------------------------- statistics ----------------------------- *)

let stats_invariants (s : Analysis.stats) =
  (* RT orderings and NT <= RT hold empirically on real programs (the
     paper's Table 3) but are not structural for per-component merging;
     only the structural invariants are asserted here. The perf suite
     checks the empirical ones on the SPEC kernels. *)
  checkb "RT(STWC) <= NV" true (s.rt_stwc <= s.nv);
  checki "ECT(STWC) = 1" 1 s.largest_ect_stwc;
  checkb "ECT(STC) >= 1" true (s.largest_ect_stc >= 1)

let test_stats_invariants_fig5 () = stats_invariants (Analysis.stats (analyze fig5))

let prop_stats_invariants_generated =
  QCheck.Test.make ~name:"Table-3 invariants on generated programs" ~count:15
    QCheck.(int_range 1 500)
    (fun seed ->
      let src = Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) () in
      let s = Analysis.stats (analyze src) in
      s.rt_stwc <= s.nv
      && s.largest_ect_stwc = 1
      && s.largest_ecv_stwc <= s.largest_ecv_stc)

(* ------------------------------ census ------------------------------ *)

let pp_src =
  {|
extern void* malloc(long n);
struct node { long key; struct node* next; };
void by_type(struct node** pp) { if (*pp) { } }
void erased(void** pp) { if (*pp) { } }
int main(void) {
  struct node* p = (struct node*) malloc(sizeof(struct node));
  by_type(&p);
  erased((void**) &p);
  return 0;
}
|}

let test_pp_census_counts () =
  let anal = analyze pp_src in
  let c = Analysis.pp_census anal in
  checkb "several pp sites" true (c.pp_total_sites >= 2);
  checki "one type-loss site" 1 (List.length c.pp_special);
  match c.pp_special with
  | [ (func, ty) ] ->
      Alcotest.(check string) "site in main" "main" func;
      Alcotest.(check string) "original type" "struct node**" (Ctype.to_string ty)
  | _ -> Alcotest.fail "census shape"

let test_ce_table_assignment () =
  let anal = analyze pp_src in
  match Analysis.ce_table anal with
  | [ (ty, ce, fe) ] ->
      Alcotest.(check string) "FE type" "struct node**" (Ctype.to_string ty);
      checkb "CE in 1..255" true (ce >= 1 && ce <= 255);
      checkb "FE modifier nonzero" true (fe <> 0L)
  | l -> Alcotest.failf "expected 1 CE entry, got %d" (List.length l)

let test_no_pp_census_for_typed_passing () =
  let anal =
    analyze
      "extern void* malloc(long n);\nstruct n { long k; };\n\
       void f(struct n** pp) { if (*pp) { } }\n\
       int main(void) { struct n* p = (struct n*) malloc(8); f(&p); return 0; }"
  in
  checki "no type-loss site" 0 (List.length (Analysis.pp_census anal).pp_special)

(* ------------------------- escape analysis -------------------------- *)

let test_address_taken_local () =
  let anal =
    analyze
      "void touch(long* p) { *p = 1; }\n\
       int main(void) { long x = 0; long y = 0; touch(&x); return (int)(x + y); }"
  in
  (* exactly one of the two locals escapes *)
  let escaped =
    List.filter
      (fun (si : Analysis.slot_info) ->
        match si.slot with
        | Ir.Svar id -> Analysis.address_taken anal id
        | _ -> false)
      (Analysis.pointer_vars anal)
  in
  ignore escaped;
  (* x is a long (not a pointer var) — verify via the raw API instead:
     find var ids by probing both; at least one id is address-taken *)
  checkb "some local escaped" true
    (let any = ref false in
     for id = 0 to 10 do
       if Analysis.address_taken anal id then any := true
     done;
     !any)

let test_alias_consistency_through_double_pointer () =
  (* signing through the variable and authenticating through *pp must
     agree: the program runs cleanly under every mechanism *)
  let src =
    "extern void* malloc(long n);\n\
     struct n { long k; };\n\
     void set(struct n** pp) { (*pp)->k = 5; }\n\
     int main(void) { struct n* p = (struct n*) malloc(8); set(&p);\n\
     return (int) p->k; }"
  in
  List.iter
    (fun mech ->
      let a = Pipeline.(analyze (compile (source ~file:"t.c" src))) in
      match (Pipeline.run (Pipeline.instrument mech a)).status with
      | Rsti_machine.Interp.Exited 5L -> ()
      | s ->
          Alcotest.failf "alias run under %s: %s" (RT.mechanism_to_string mech)
            (match s with
            | Rsti_machine.Interp.Exited n -> Printf.sprintf "exit %Ld" n
            | Rsti_machine.Interp.Trapped t -> Rsti_machine.Interp.trap_to_string t))
    RT.all_mechanisms

let tests =
  [
    Alcotest.test_case "fig5: ctx scope widened" `Quick test_fig5_ctx_scope_widened;
    Alcotest.test_case "fig5: const permission" `Quick test_fig5_const_permission_distinct;
    Alcotest.test_case "fig5: STC merges" `Quick test_fig5_stc_merges_ctx_void;
    Alcotest.test_case "fig5: STWC keeps types apart" `Quick test_fig5_stwc_does_not_merge;
    Alcotest.test_case "fig5: casts recorded" `Quick test_fig5_casts_recorded;
    Alcotest.test_case "fig6: field scope" `Quick test_fig6_field_scope_includes_struct;
    Alcotest.test_case "fig6: IA/DA keys" `Quick test_fig6_code_pointer_key;
    Alcotest.test_case "modifiers: deterministic" `Quick test_modifiers_deterministic;
    Alcotest.test_case "modifiers: fields distinct" `Quick test_modifiers_distinct_fields;
    Alcotest.test_case "modifiers: PARTS type-only" `Quick test_parts_modifier_type_only;
    Alcotest.test_case "rsti-type: modifier sensitivity" `Quick test_rsti_type_to_string_injective_cases;
    Alcotest.test_case "rsti-type: canonicalisation" `Quick test_rsti_type_canonicalisation;
    Alcotest.test_case "stats: fig5 invariants" `Quick test_stats_invariants_fig5;
    Alcotest.test_case "census: pp counts" `Quick test_pp_census_counts;
    Alcotest.test_case "census: CE table" `Quick test_ce_table_assignment;
    Alcotest.test_case "census: typed passing free" `Quick test_no_pp_census_for_typed_passing;
    Alcotest.test_case "escape: address taken" `Quick test_address_taken_local;
    Alcotest.test_case "escape: alias consistency" `Quick test_alias_consistency_through_double_pointer;
    QCheck_alcotest.to_alcotest prop_stats_invariants_generated;
  ]

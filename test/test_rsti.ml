(* Tests for the RSTI instrumentation pass: what gets instrumented under
   each mechanism, static counts, pp plan, and behaviour preservation. *)

module Ir = Rsti_ir.Ir
module RT = Rsti_sti.Rsti_type
module Analysis = Rsti_sti.Analysis
module Instrument = Rsti_rsti.Instrument
module Interp = Rsti_machine.Interp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Pipeline = Rsti_engine.Pipeline

let instrument mech src =
  let a = Pipeline.(analyze (compile (source ~file:"t.c" src))) in
  ( Pipeline.result (Pipeline.instrument mech a),
    Pipeline.analyzed_ir a,
    Pipeline.analysis a )

let ptr_heavy_src =
  {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct node { long k; struct node* next; };
struct node* head;
void push(long k) {
  struct node* n = (struct node*) malloc(sizeof(struct node));
  n->k = k;
  n->next = head;
  head = n;
}
long total(void) {
  long s = 0;
  struct node* cur = head;
  while (cur) { s = s + cur->k; cur = cur->next; }
  return s;
}
int main(void) {
  for (int i = 0; i < 5; i++) { push(i); }
  void* erased = (void*) head;
  head = (struct node*) erased;
  printf("%ld\n", total());
  return 0;
}
|}

(* ------------------------------ basics ------------------------------ *)

let test_nop_returns_unchanged () =
  let r, m, _ = instrument RT.Nop ptr_heavy_src in
  checkb "same module" true (r.Instrument.modul == m);
  checki "no static ops" 0 r.Instrument.counts.signs

let test_input_not_mutated () =
  let a = Pipeline.(analyze (compile (source ~file:"t.c" ptr_heavy_src))) in
  let m = Pipeline.analyzed_ir a in
  let count_pac fn =
    Ir.fold_instrs
      (fun acc ins -> match ins.Ir.i with Ir.Pac _ -> acc + 1 | _ -> acc)
      0 fn
  in
  let before = List.fold_left (fun a f -> a + count_pac f) 0 m.Ir.m_funcs in
  (* cache = false forces a fresh pass over [m], not a memoized artifact *)
  ignore
    (Pipeline.instrument ~config:{ Pipeline.default with Pipeline.cache = false }
       RT.Stwc a);
  let after = List.fold_left (fun a f -> a + count_pac f) 0 m.Ir.m_funcs in
  checki "input module untouched" before after

let test_signs_and_auths_inserted () =
  let r, _, _ = instrument RT.Stwc ptr_heavy_src in
  checkb "signs inserted" true (r.Instrument.counts.signs > 0);
  checkb "auths inserted" true (r.Instrument.counts.auths > 0)

let test_cast_resigns_only_under_stwc_stl () =
  let stwc, _, _ = instrument RT.Stwc ptr_heavy_src in
  let stc, _, _ = instrument RT.Stc ptr_heavy_src in
  checkb "STWC resigns at casts" true (stwc.Instrument.counts.resigns > 0);
  checki "STC has no cast resigns" 0 stc.Instrument.counts.resigns

let test_stl_has_most_instrumentation () =
  let sites (c : Instrument.static_counts) = c.signs + c.auths + (2 * c.resigns) in
  let stwc, _, _ = instrument RT.Stwc ptr_heavy_src in
  let stc, _, _ = instrument RT.Stc ptr_heavy_src in
  let stl, _, _ = instrument RT.Stl ptr_heavy_src in
  checkb "STC <= STWC" true (sites stc.Instrument.counts <= sites stwc.Instrument.counts);
  checkb "STWC <= STL" true (sites stwc.Instrument.counts <= sites stl.Instrument.counts)

let test_extern_pointer_args_stripped () =
  let r, _, _ =
    instrument RT.Stwc
      "extern int puts(const char* s);\nint main(void) { puts(\"x\"); return 0; }"
  in
  checkb "strip before extern" true (r.Instrument.counts.strips > 0)

let test_parts_instruments_params () =
  let src =
    "long get(long* p, long i) { return p[i]; }\n\
     long data[4];\n\
     int main(void) { data[0] = 9; return (int) get(data, 0); }"
  in
  let parts, _, _ = instrument RT.Parts src in
  let stwc, _, _ = instrument RT.Stwc src in
  checkb "PARTS instruments more (params)" true
    (parts.Instrument.counts.auths > stwc.Instrument.counts.auths)

let test_per_func_counts_sum () =
  let r, _, _ = instrument RT.Stwc ptr_heavy_src in
  let sum =
    List.fold_left
      (fun acc (_, (c : Instrument.static_counts)) -> acc + c.signs + c.auths)
      0 r.Instrument.per_func
  in
  checki "per-func sums to total" (r.Instrument.counts.signs + r.Instrument.counts.auths) sum

let test_non_pointer_loads_uninstrumented () =
  let r, _, _ =
    instrument RT.Stwc
      "long g;\nint main(void) { g = 5; return (int) g; }"
  in
  checki "scalar traffic free" 0 (r.Instrument.counts.signs + r.Instrument.counts.auths)

let test_stl_uses_location_modifiers () =
  let r, _, _ = instrument RT.Stl ptr_heavy_src in
  let found_mloc = ref false in
  List.iter
    (fun fn ->
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Pac { p_mod = Ir.Mloc _; _ } -> found_mloc := true
          | _ -> ())
        fn)
    r.Instrument.modul.Ir.m_funcs;
  checkb "STL emits &p-bound modifiers" true !found_mloc

let test_stwc_uses_const_modifiers_only () =
  let r, _, _ = instrument RT.Stwc ptr_heavy_src in
  List.iter
    (fun fn ->
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Pac { p_mod = Ir.Mloc _; _ } -> Alcotest.fail "STWC must not use Mloc"
          | _ -> ())
        fn)
    r.Instrument.modul.Ir.m_funcs

(* --------------------------- pp mechanism --------------------------- *)

let pp_src =
  {|
extern void* malloc(long n);
struct node { long key; struct node* next; };
void erased(void** pp) { if (*pp) { } }
int main(void) {
  struct node* p = (struct node*) malloc(sizeof(struct node));
  erased((void**) &p);
  return 0;
}
|}

let test_pp_ops_emitted () =
  let r, _, _ = instrument RT.Stwc pp_src in
  checkb "pp ops present" true (r.Instrument.counts.pp_ops >= 3);
  checki "one CE entry" 1 (List.length r.Instrument.pp_table)

let test_pp_runtime_roundtrip () =
  List.iter
    (fun mech ->
      let r, _, _ = instrument mech pp_src in
      let vm = Interp.create ~pp_table:r.Instrument.pp_table r.Instrument.modul in
      let o = Interp.run vm in
      (match o.Interp.status with
      | Interp.Exited 0L -> ()
      | s ->
          Alcotest.failf "pp run under %s: %s" (RT.mechanism_to_string mech)
            (match s with
            | Interp.Exited n -> Printf.sprintf "exit %Ld" n
            | Interp.Trapped t -> Interp.trap_to_string t));
      checkb "pp calls executed" true (o.Interp.counts.pp_calls > 0))
    RT.all_mechanisms

let test_pp_metadata_read_only () =
  (* interpreted code cannot write the CE/FE table *)
  let r, _, _ = instrument RT.Stwc pp_src in
  let vm = Interp.create ~pp_table:r.Instrument.pp_table r.Instrument.modul in
  ignore (Interp.run vm);
  (* direct probe through the memory the machine exposes via intruder API
     is raw (privileged); the protection is exercised by Memory tests.
     Here we just confirm the table was installed. *)
  checki "table entries" 1 (List.length r.Instrument.pp_table)

(* ----------------------- behaviour preservation --------------------- *)

let outputs_of mech src =
  let r, _, _ = instrument mech src in
  let vm = Interp.create ~pp_table:r.Instrument.pp_table r.Instrument.modul in
  let o = Interp.run vm in
  (o.Interp.output, o.Interp.status)

let test_behaviour_preserved_ptr_heavy () =
  let base = outputs_of RT.Nop ptr_heavy_src in
  List.iter
    (fun mech ->
      let got = outputs_of mech ptr_heavy_src in
      checkb (RT.mechanism_to_string mech ^ " unchanged") true (got = base))
    (RT.all_mechanisms @ [ RT.Parts ])

let prop_behaviour_preserved_generated =
  QCheck.Test.make ~name:"instrumentation preserves generated-program behaviour"
    ~count:10
    QCheck.(int_range 1000 2000)
    (fun seed ->
      let src = Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) () in
      let base = outputs_of RT.Nop src in
      List.for_all (fun mech -> outputs_of mech src = base) RT.all_mechanisms)

let test_instrumented_modules_verify () =
  List.iter
    (fun mech ->
      List.iter
        (fun src ->
          let r, _, _ = instrument mech src in
          match Rsti_ir.Verify.verify r.Instrument.modul with
          | [] -> ()
          | { Rsti_ir.Verify.fn; msg } :: _ ->
              Alcotest.failf "%s under %s: %s" fn (RT.mechanism_to_string mech) msg)
        [ ptr_heavy_src; pp_src ])
    (RT.all_mechanisms @ [ RT.Parts ])

let tests =
  [
    Alcotest.test_case "pass: instrumented IR verifies" `Quick
      test_instrumented_modules_verify;
    Alcotest.test_case "nop: unchanged" `Quick test_nop_returns_unchanged;
    Alcotest.test_case "pass: input not mutated" `Quick test_input_not_mutated;
    Alcotest.test_case "pass: signs+auths inserted" `Quick test_signs_and_auths_inserted;
    Alcotest.test_case "pass: cast resigns STWC only" `Quick test_cast_resigns_only_under_stwc_stl;
    Alcotest.test_case "pass: site ordering STC<=STWC<=STL" `Quick test_stl_has_most_instrumentation;
    Alcotest.test_case "pass: extern strips" `Quick test_extern_pointer_args_stripped;
    Alcotest.test_case "pass: PARTS params" `Quick test_parts_instruments_params;
    Alcotest.test_case "pass: per-func sums" `Quick test_per_func_counts_sum;
    Alcotest.test_case "pass: scalars free" `Quick test_non_pointer_loads_uninstrumented;
    Alcotest.test_case "pass: STL Mloc modifiers" `Quick test_stl_uses_location_modifiers;
    Alcotest.test_case "pass: STWC Mconst only" `Quick test_stwc_uses_const_modifiers_only;
    Alcotest.test_case "pp: ops emitted" `Quick test_pp_ops_emitted;
    Alcotest.test_case "pp: runtime roundtrip" `Quick test_pp_runtime_roundtrip;
    Alcotest.test_case "pp: metadata installed" `Quick test_pp_metadata_read_only;
    Alcotest.test_case "behaviour preserved (list kernel)" `Quick test_behaviour_preserved_ptr_heavy;
    QCheck_alcotest.to_alcotest prop_behaviour_preserved_generated;
  ]

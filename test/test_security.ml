(* The security evaluation as a test suite: every Table 1 attack must
   succeed with no defense and be detected by all three RSTI mechanisms;
   the Table 2 substitution matrix must match the paper's claims; the
   non-FPAC (plain ARMv8.3) path must also end in a crash at the use of
   the corrupted pointer. *)

module S = Rsti_attacks.Scenario
module RT = Rsti_sti.Rsti_type
module Interp = Rsti_machine.Interp
module Pipeline = Rsti_engine.Pipeline

let checkb = Alcotest.(check bool)

let verdict = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (S.verdict_to_string v))
    ( = )

(* one test per (scenario, mechanism) cell *)
let catalog_tests =
  List.concat_map
    (fun sc ->
      Alcotest.test_case
        (sc.S.id ^ ": baseline succeeds")
        `Quick
        (fun () ->
          Alcotest.check verdict "baseline" S.Attack_succeeded
            (S.run_baseline sc).S.verdict)
      :: List.map
           (fun mech ->
             Alcotest.test_case
               (Printf.sprintf "%s: %s detects" sc.S.id (RT.mechanism_to_string mech))
               `Quick
               (fun () ->
                 Alcotest.check verdict "detected" S.Detected (S.run sc mech).S.verdict))
           RT.all_mechanisms)
    Rsti_attacks.Catalog.all

(* Table 2 matrix *)
let substitution_tests =
  List.concat_map
    (fun (sc, expectations) ->
      Alcotest.test_case (sc.S.id ^ ": baseline succeeds") `Quick (fun () ->
          Alcotest.check verdict "baseline" S.Attack_succeeded
            (S.run_baseline sc).S.verdict)
      :: List.map
           (fun (mech, expected) ->
             Alcotest.test_case
               (Printf.sprintf "%s under %s" sc.S.id (RT.mechanism_to_string mech))
               `Quick
               (fun () ->
                 Alcotest.check verdict "matrix" expected (S.run sc mech).S.verdict))
           expectations)
    Rsti_attacks.Substitution.expected

(* ---------------- memory-safety scenarios (Table 2) ----------------- *)

let memory_safety_tests =
  List.concat_map
    (fun (sc, expectations) ->
      Alcotest.test_case (sc.S.id ^ ": baseline succeeds") `Quick (fun () ->
          Alcotest.check verdict "baseline" S.Attack_succeeded
            (S.run_baseline sc).S.verdict)
      :: List.map
           (fun (mech, expected) ->
             Alcotest.test_case
               (Printf.sprintf "%s under %s" sc.S.id (RT.mechanism_to_string mech))
               `Quick
               (fun () ->
                 Alcotest.check verdict "memory safety" expected (S.run sc mech).S.verdict))
           expectations)
    Rsti_attacks.Memory_safety.expected

(* ------------------------ CFI baseline claims ----------------------- *)

(* The paper's introduction: data-oriented attacks and same-signature
   code reuse bypass CFI entirely; RSTI stops them. *)
let cfi_must_miss =
  [ "aocr-nginx-2"; "aocr-apache"; "control-jujutsu"; "pittypat-coop";
    "dop-proftpd"; "ghttpd" ]

let cfi_tests =
  List.map
    (fun id ->
      Alcotest.test_case (id ^ ": evades signature-CFI") `Quick (fun () ->
          let sc = List.find (fun sc -> sc.S.id = id) Rsti_attacks.Catalog.all in
          Alcotest.check verdict "cfi misses" S.Attack_succeeded
            (S.run_cfi sc).S.verdict))
    cfi_must_miss
  @ [
      Alcotest.test_case "signature-CFI catches arity-mismatched redirects" `Quick
        (fun () ->
          Alcotest.check verdict "cfi catches newton-cscfi" S.Detected
            (S.run_cfi Rsti_attacks.Catalog.newton_cscfi).S.verdict);
      Alcotest.test_case "signature-CFI does not break benign dispatch" `Quick
        (fun () ->
          (* a legitimate function-pointer program must run under CFI *)
          let c =
            Pipeline.compile
              (Pipeline.source ~file:"cfi.c"
                 "extern int printf(const char* f, ...);\n\
                  long twice(long x) { return 2 * x; }\n\
                  long thrice(long x) { return 3 * x; }\n\
                  long (*ops[2])(long x);\n\
                  int main(void) { ops[0] = twice; ops[1] = thrice;\n\
                  long s = 0; for (int i = 0; i < 6; i++) { s += ops[i % 2](i); }\n\
                  printf(\"%ld\\n\", s); return (int) s; }")
          in
          match (Pipeline.run_baseline ~cfi:true c).Interp.status with
          | Interp.Exited n -> Alcotest.(check int64) "sum" 39L n
          | Interp.Trapped t -> Alcotest.failf "CFI broke benign code: %s"
                                  (Interp.trap_to_string t));
    ]

(* --------------------- shadow-MAC backend (sec. 7) ------------------ *)

let run_shadow sc mech =
  let a = Pipeline.(analyze (compile (source ~file:"t.c" sc.S.program))) in
  Pipeline.run ~backend:`Shadow_mac ~attacks:sc.S.attacks
    (Pipeline.instrument mech a)

let shadow_backend_tests =
  List.map
    (fun sc ->
      Alcotest.test_case (sc.S.id ^ ": shadow-MAC backend detects") `Quick
        (fun () -> checkb "detected" true (Interp.detected (run_shadow sc RT.Stwc))))
    Rsti_attacks.Catalog.all
  @ [
      Alcotest.test_case "shadow-MAC stops in-class replay (beyond PAC-STWC)" `Quick
        (fun () ->
          checkb "detected" true
            (Interp.detected
               (run_shadow Rsti_attacks.Substitution.same_rsti_replay RT.Stwc)));
      Alcotest.test_case "shadow-MAC preserves clean behaviour" `Quick
        (fun () ->
          let w = List.hd Rsti_workloads.Nginx.all in
          let c =
            Pipeline.compile
              (Pipeline.source ~file:"w.c" w.Rsti_workloads.Workload.source)
          in
          let base = Pipeline.run_baseline c in
          let i = Pipeline.instrument RT.Stwc (Pipeline.analyze c) in
          let o = Pipeline.run ~backend:`Shadow_mac i in
          Alcotest.(check string) "same output" base.Interp.output o.Interp.output;
          checkb "costs more than PAC" true
            (let p = Pipeline.run i in
             o.Interp.cycles > p.Interp.cycles));
    ]

(* ------------------------- non-FPAC behaviour ----------------------- *)

let test_without_fpac_crash_at_use () =
  (* plain ARMv8.3: the failing aut leaves a corrupted pointer and the
     crash happens at the subsequent use, still attributable to the
     authentication failure *)
  let sc = Rsti_attacks.Catalog.cve_libtiff in
  let a = Pipeline.(analyze (compile (source ~file:"t.c" sc.S.program))) in
  let o =
    Pipeline.run ~fpac:false ~attacks:sc.S.attacks (Pipeline.instrument RT.Stwc a)
  in
  checkb "still detected (deref faults)" true (Interp.detected o);
  (match o.Interp.status with
  | Interp.Trapped (Interp.Pac_auth_failure _) ->
      Alcotest.fail "without FPAC there must be no synchronous trap"
  | _ -> ());
  checkb "auth-failure event recorded" true
    (List.exists
       (function Interp.Ev_auth_fail _ -> true | _ -> false)
       o.Interp.events)

let test_fpac_traps_synchronously () =
  let sc = Rsti_attacks.Catalog.cve_libtiff in
  let r = S.run sc RT.Stwc in
  match r.S.outcome.Interp.status with
  | Interp.Trapped (Interp.Pac_auth_failure _) -> ()
  | _ -> Alcotest.fail "FPAC must trap at the aut instruction"

(* -------------------- scenario metadata sanity ---------------------- *)

let test_table1_has_twelve_rows () =
  Alcotest.(check int) "12 attacks" 12 (List.length Rsti_attacks.Catalog.table1)

let test_categories_cover_both () =
  let cf, dta =
    List.partition
      (fun sc -> sc.S.category = S.Control_flow)
      Rsti_attacks.Catalog.table1
  in
  checkb "control-flow attacks present" true (List.length cf > 0);
  checkb "data-oriented attacks present" true (List.length dta > 0)

let test_attacker_cannot_forge_pac () =
  (* writing a *guessed* PAC'ed value must still fail: only the kernel's
     keys produce valid PACs *)
  let src =
    "extern void* malloc(long n);\nextern int printf(const char* f, ...);\n\
     char* msg;\nvoid show(int r) { printf(\"%s\\n\", msg); }\n\
     int main(void) { msg = (char*) malloc(8); msg[0] = 'o'; msg[1] = 'k'; msg[2] = 0;\n\
     show(1); show(2); return 0; }"
  in
  let forged_guess = 0x2A00_2000_0000_0000L (* wrong-PAC heap pointer *) in
  let atk =
    {
      Interp.trigger = Interp.On_call ("show", 2);
      action = (fun intr -> intr.write_word (intr.global_addr "msg") forged_guess);
    }
  in
  let a = Pipeline.(analyze (compile (source ~file:"t.c" src))) in
  let o = Pipeline.run ~attacks:[ atk ] (Pipeline.instrument RT.Stwc a) in
  checkb "forged PAC rejected" true (Interp.detected o)

let test_detected_requires_auth_failure () =
  (* a plain crash with no auth failure must NOT count as detection *)
  let src =
    "int main(void) { long* p = NULL; long* q = p + 1; return (int) *q; }"
  in
  let o = Pipeline.run_baseline (Pipeline.compile (Pipeline.source ~file:"t.c" src)) in
  checkb "null-deref crash is not detection" false (Interp.detected o)

(* ------------------ static/dynamic cross-validation ----------------- *)

(* The static analyzer's replay verdicts against the machine oracle:
   every catalog substitution scenario and every generated candidate
   (same-class replays plus cross-class controls, over the catalog
   programs and the crossval corpus) must agree — zero disagreements is
   the acceptance bar, not a statistic. *)
let test_crossval_zero_disagreements () =
  let module X = Rsti_attacks.Crossval in
  let s = X.summarize () in
  checkb "some comparisons ran" true (s.X.s_checked > 0);
  Alcotest.(check int) "zero disagreements" 0 s.X.s_disagreements;
  List.iter
    (fun (r : X.catalog_row) ->
      checkb
        (Printf.sprintf "catalog %s/%s agrees" r.X.cr_scenario
           (RT.mechanism_to_string r.X.cr_mech))
        true r.X.cr_agree)
    s.X.s_catalog;
  (* The generated pool must exercise both directions: same-class
     replays that the static side predicts, and cross-class controls.
     Every executed cross-class control must trap — in particular the
     STL rows, where every class is a singleton, check the
     singleton-class => dynamic-trap direction. *)
  let same, cross =
    List.partition (fun (g : X.gen_row) -> g.X.g_kind = X.Same_class)
      s.X.s_generated
  in
  checkb "same-class candidates generated" true (same <> []);
  checkb "cross-class controls generated" true (cross <> []);
  List.iter
    (fun (g : X.gen_row) ->
      checkb
        (Printf.sprintf "%s/%s: %s over %s not predicted" g.X.g_program
           (RT.mechanism_to_string g.X.g_mech) g.X.g_donor g.X.g_victim)
        false g.X.g_predicted;
      match g.X.g_detected with
      | Some d ->
          checkb
            (Printf.sprintf "%s/%s: cross-class replay of %s over %s traps"
               g.X.g_program
               (RT.mechanism_to_string g.X.g_mech)
               g.X.g_donor g.X.g_victim)
            true d
      | None -> ())
    cross

let tests =
  catalog_tests @ substitution_tests @ memory_safety_tests @ cfi_tests
  @ shadow_backend_tests
  @ [
      Alcotest.test_case "crossval: static = dynamic, zero disagreements"
        `Slow test_crossval_zero_disagreements;
      Alcotest.test_case "non-FPAC: crash at use" `Quick test_without_fpac_crash_at_use;
      Alcotest.test_case "FPAC: synchronous trap" `Quick test_fpac_traps_synchronously;
      Alcotest.test_case "table1: twelve rows" `Quick test_table1_has_twelve_rows;
      Alcotest.test_case "table1: both categories" `Quick test_categories_cover_both;
      Alcotest.test_case "attacker cannot forge PACs" `Quick test_attacker_cannot_forge_pac;
      Alcotest.test_case "detection needs auth failure" `Quick test_detected_requires_auth_failure;
    ]

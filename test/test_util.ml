(* Tests for rsti_util: RNG, statistics, bit manipulation, union-find,
   table rendering. *)

module Sm = Rsti_util.Splitmix
module Stats = Rsti_util.Stats
module Bits = Rsti_util.Bits
module Uf = Rsti_util.Uf
module Tab = Rsti_util.Tab

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ----------------------------- splitmix ---------------------------- *)

let test_rng_deterministic () =
  let a = Sm.create 42L and b = Sm.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sm.next64 a) (Sm.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sm.create 1L and b = Sm.create 2L in
  checkb "different seeds differ" true (Sm.next64 a <> Sm.next64 b)

let test_rng_int_bounds () =
  let rng = Sm.create 7L in
  for _ = 1 to 1000 do
    let v = Sm.int rng 13 in
    checkb "in [0,13)" true (v >= 0 && v < 13)
  done

let test_rng_int_in () =
  let rng = Sm.create 7L in
  for _ = 1 to 1000 do
    let v = Sm.int_in rng (-5) 5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_rejects_bad () =
  let rng = Sm.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Sm.int rng 0))

let test_rng_pick () =
  let rng = Sm.create 3L in
  for _ = 1 to 50 do
    checkb "picked member" true (List.mem (Sm.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done

let test_rng_weighted () =
  let rng = Sm.create 3L in
  for _ = 1 to 200 do
    (* zero-weight entries must never be chosen *)
    let v = Sm.weighted rng [ (0, "never"); (5, "a"); (5, "b") ] in
    checkb "never-zero-weight" true (v <> "never")
  done

let test_rng_shuffle_permutation () =
  let rng = Sm.create 9L in
  let a = Array.init 50 Fun.id in
  Sm.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let a = Sm.create 5L in
  let b = Sm.split a in
  checkb "split streams differ" true (Sm.next64 a <> Sm.next64 b)

let test_rng_chance_extremes () =
  let rng = Sm.create 11L in
  for _ = 1 to 100 do
    checkb "p=0 never" false (Sm.chance rng 0.0)
  done;
  for _ = 1 to 100 do
    checkb "p=1 always" true (Sm.chance rng 1.0)
  done

(* ------------------------------ stats ------------------------------ *)

let test_mean () = checkf "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

let test_geomean () = checkf "geomean" 4. (Stats.geomean [ 2.; 8. ])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "geomean 0" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [ 1.; 0. ]))

let test_geomean_overhead_zero () =
  checkf "all-zero overheads" 0. (Stats.geomean_overhead [ 0.; 0.; 0. ])

let test_geomean_overhead_known () =
  (* ratios 1.1 and 1.2: geomean = sqrt(1.32) *)
  checkf "known overhead geomean"
    ((sqrt 1.32 -. 1.) *. 100.)
    (Stats.geomean_overhead [ 10.; 20. ])

let test_quantile_median () =
  checkf "median odd" 3. (Stats.median [ 1.; 2.; 3.; 4.; 5. ]);
  checkf "median even" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ])

let test_quantile_extremes () =
  let xs = [ 3.; 1.; 2. ] in
  checkf "q0 = min" 1. (Stats.quantile 0. xs);
  checkf "q1 = max" 3. (Stats.quantile 1. xs)

let test_quantile_interpolates () =
  checkf "q25 of 1..5" 2. (Stats.quantile 0.25 [ 1.; 2.; 3.; 4.; 5. ])

let test_boxplot () =
  let b = Stats.boxplot [ 1.; 2.; 3.; 4.; 100. ] in
  checkf "median" 3. b.Stats.median;
  checki "one outlier" 1 (List.length b.Stats.outliers);
  checkb "outlier is 100" true (List.mem 100. b.Stats.outliers);
  checkb "max excludes outlier" true (b.Stats.maximum < 100.)

let test_boxplot_single () =
  let b = Stats.boxplot [ 5. ] in
  checkf "min" 5. b.Stats.minimum;
  checkf "max" 5. b.Stats.maximum;
  checki "no outliers" 0 (List.length b.Stats.outliers)

let test_pearson_perfect () =
  checkf "r=1" 1. (Stats.pearson [ 1.; 2.; 3. ] [ 10.; 20.; 30. ]);
  checkf "r=-1" (-1.) (Stats.pearson [ 1.; 2.; 3. ] [ 30.; 20.; 10. ])

let test_pearson_constant () =
  checkf "degenerate r=0" 0. (Stats.pearson [ 1.; 1.; 1. ] [ 1.; 2.; 3. ])

let test_pearson_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.pearson: length mismatch") (fun () ->
      ignore (Stats.pearson [ 1. ] [ 1.; 2. ]))

let test_stddev () =
  checkf "stddev" (sqrt 2.5) (Stats.stddev [ 1.; 2.; 3.; 4.; 5. ])

(* ------------------------------ bits ------------------------------- *)

let test_mask () =
  check Alcotest.int64 "mask 0" 0L (Bits.mask 0);
  check Alcotest.int64 "mask 4" 0xFL (Bits.mask 4);
  check Alcotest.int64 "mask 64" (-1L) (Bits.mask 64)

let test_field_roundtrip () =
  let x = 0xDEADBEEF12345678L in
  let v = Bits.field x ~lo:8 ~width:16 in
  let y = Bits.set_field 0L ~lo:8 ~width:16 v in
  check Alcotest.int64 "field back" v (Bits.field y ~lo:8 ~width:16)

let test_set_field_preserves_rest () =
  let x = -1L in
  let y = Bits.set_field x ~lo:4 ~width:8 0L in
  check Alcotest.int64 "low nibble kept" 0xFL (Bits.field y ~lo:0 ~width:4);
  check Alcotest.int64 "cleared field" 0L (Bits.field y ~lo:4 ~width:8);
  check Alcotest.int64 "rest kept" (Bits.mask 52) (Bits.field y ~lo:12 ~width:52)

let test_bit_ops () =
  checkb "bit set" true (Bits.bit 8L 3);
  checkb "bit clear" false (Bits.bit 8L 2);
  check Alcotest.int64 "set_bit" 9L (Bits.set_bit 8L 0 true);
  check Alcotest.int64 "clear_bit" 0L (Bits.set_bit 8L 3 false)

let test_rot () =
  check Alcotest.int64 "rotl identity" 5L (Bits.rotl 5L 64);
  check Alcotest.int64 "rotl 1" 2L (Bits.rotl 1L 1);
  check Alcotest.int64 "rotr inverse" 0x123456789ABCDEF0L
    (Bits.rotr (Bits.rotl 0x123456789ABCDEF0L 17) 17)

let test_popcount () =
  checki "popcount 0" 0 (Bits.popcount 0L);
  checki "popcount -1" 64 (Bits.popcount (-1L));
  checki "popcount f0" 4 (Bits.popcount 0xF0L)

let test_to_hex () =
  check Alcotest.string "hex" "0x00000000000000ff" (Bits.to_hex 0xFFL)

(* ------------------------------- uf -------------------------------- *)

let test_uf_singleton () =
  let u = Uf.create () in
  check Alcotest.string "own root" "x" (Uf.find u "x")

let test_uf_union () =
  let u = Uf.create () in
  Uf.union u "a" "b";
  Uf.union u "b" "c";
  checkb "transitive" true (Uf.same u "a" "c");
  checkb "separate" false (Uf.same u "a" "d")

let test_uf_classes () =
  let u = Uf.create () in
  Uf.union u "a" "b";
  let cls = Uf.classes u ~members:[ "a"; "b"; "c" ] in
  checki "two classes" 2 (List.length cls);
  let sizes = List.map (fun (_, m) -> List.length m) cls |> List.sort compare in
  check Alcotest.(list int) "sizes 1,2" [ 1; 2 ] sizes

(* ------------------------------- tab ------------------------------- *)

let test_tab_alignment () =
  let s = Tab.render ~header:[ "name"; "n" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  checkb "has separator" true (String.length s > 0 && String.contains s '-');
  (* right-aligned numeric column: "1" padded to width 2 *)
  checkb "right aligned" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "a      1"))

let test_tab_pads_short_rows () =
  let s = Tab.render ~header:[ "a"; "b" ] [ [ "x" ] ] in
  checkb "renders" true (String.length s > 0)

let test_tab_rejects_wide_rows () =
  Alcotest.check_raises "wide row" (Invalid_argument "Tab.render: row wider than header")
    (fun () -> ignore (Tab.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

(* qcheck properties *)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))
              (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (q1, q2)) ->
      QCheck.assume (xs <> []);
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.quantile lo xs <= Stats.quantile hi xs +. 1e-9)

let prop_bits_field_roundtrip =
  QCheck.Test.make ~name:"set_field/field roundtrip" ~count:500
    QCheck.(triple int64 (int_bound 56) (int_bound 7))
    (fun (x, lo, w) ->
      let width = w + 1 in
      if lo + width > 64 then true
      else begin
        let v = Int64.logand x (Bits.mask width) in
        Bits.field (Bits.set_field 0L ~lo ~width v) ~lo ~width = v
      end)

let tests =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: int_in bounds" `Quick test_rng_int_in;
    Alcotest.test_case "rng: rejects bad bound" `Quick test_rng_int_rejects_bad;
    Alcotest.test_case "rng: pick membership" `Quick test_rng_pick;
    Alcotest.test_case "rng: weighted skips zero" `Quick test_rng_weighted;
    Alcotest.test_case "rng: shuffle is permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: chance extremes" `Quick test_rng_chance_extremes;
    Alcotest.test_case "stats: mean" `Quick test_mean;
    Alcotest.test_case "stats: mean empty" `Quick test_mean_empty;
    Alcotest.test_case "stats: geomean" `Quick test_geomean;
    Alcotest.test_case "stats: geomean non-positive" `Quick test_geomean_rejects_nonpositive;
    Alcotest.test_case "stats: overhead geomean zero" `Quick test_geomean_overhead_zero;
    Alcotest.test_case "stats: overhead geomean known" `Quick test_geomean_overhead_known;
    Alcotest.test_case "stats: median" `Quick test_quantile_median;
    Alcotest.test_case "stats: quantile extremes" `Quick test_quantile_extremes;
    Alcotest.test_case "stats: quantile interpolation" `Quick test_quantile_interpolates;
    Alcotest.test_case "stats: boxplot outliers" `Quick test_boxplot;
    Alcotest.test_case "stats: boxplot single" `Quick test_boxplot_single;
    Alcotest.test_case "stats: pearson perfect" `Quick test_pearson_perfect;
    Alcotest.test_case "stats: pearson degenerate" `Quick test_pearson_constant;
    Alcotest.test_case "stats: pearson mismatch" `Quick test_pearson_mismatch;
    Alcotest.test_case "stats: stddev" `Quick test_stddev;
    Alcotest.test_case "bits: mask" `Quick test_mask;
    Alcotest.test_case "bits: field roundtrip" `Quick test_field_roundtrip;
    Alcotest.test_case "bits: set_field preserves" `Quick test_set_field_preserves_rest;
    Alcotest.test_case "bits: bit ops" `Quick test_bit_ops;
    Alcotest.test_case "bits: rotations" `Quick test_rot;
    Alcotest.test_case "bits: popcount" `Quick test_popcount;
    Alcotest.test_case "bits: to_hex" `Quick test_to_hex;
    Alcotest.test_case "uf: singleton" `Quick test_uf_singleton;
    Alcotest.test_case "uf: union" `Quick test_uf_union;
    Alcotest.test_case "uf: classes" `Quick test_uf_classes;
    Alcotest.test_case "tab: alignment" `Quick test_tab_alignment;
    Alcotest.test_case "tab: short rows" `Quick test_tab_pads_short_rows;
    Alcotest.test_case "tab: wide rows rejected" `Quick test_tab_rejects_wide_rows;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_bits_field_roundtrip;
  ]

(* The report layer: every paper-reproduction section must render, carry
   the rows it promises, and state the verdicts the security suite
   already established. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_lines s = List.length (String.split_on_char '\n' s)

let test_table1_report () =
  let s = Rsti_report.Security.table1 () in
  List.iter
    (fun sub -> checkb ("mentions " ^ sub) true (contains ~sub s))
    [ "NEWTON CsCFI"; "DOP ProFTPd"; "PittyPat"; "sig-CFI"; "STWC"; "STL" ];
  (* 13 scenario rows + header + separator + footer *)
  checkb "row count sane" true (count_lines s > 15);
  checkb "no failures reported" false (contains ~sub:"failed" s)

let test_table1_verdict_structure () =
  let rows = Rsti_report.Security.table1_verdicts () in
  checki "13 scenarios" 13 (List.length rows);
  List.iter
    (fun (_, base, per_mech) ->
      checkb "baseline owned" true (base = Rsti_attacks.Scenario.Attack_succeeded);
      checki "three mechanisms" 3 (List.length per_mech);
      List.iter
        (fun (_, v) -> checkb "detected" true (v = Rsti_attacks.Scenario.Detected))
        per_mech)
    rows

let test_table2_report () =
  let s = Rsti_report.Security.table2 () in
  List.iter
    (fun sub -> checkb ("mentions " ^ sub) true (contains ~sub s))
    [ "sub-same-rsti"; "mem-temporal-uaf"; "PARTS" ]

let test_table3_report () =
  let s = Rsti_report.Figures.table3 () in
  List.iter
    (fun sub -> checkb ("mentions " ^ sub) true (contains ~sub s))
    [ "perlbench"; "xalancbmk"; "ECV"; "ECT" ];
  checkb "at least 18 rows + frame" true (count_lines s > 22)

let test_pp_census_report () =
  let s = Rsti_report.Figures.pp_census () in
  checkb "has totals line" true (contains ~sub:"Total:" s);
  checkb "mentions type loss" true (contains ~sub:"type-loss" s)

let test_parts_report () =
  let s = Rsti_report.Figures.parts_comparison () in
  checkb "has mean row" true (contains ~sub:"mean" s);
  checkb "mentions PARTS" true (contains ~sub:"PARTS" s)

let test_ablation_merge_report () =
  let s = Rsti_report.Ablation.merge_effect () in
  checkb "has unmerged column" true (contains ~sub:"RT unmerged" s)

let test_ablation_stl_report () =
  let s = Rsti_report.Ablation.stl_argument_cost () in
  checkb "attributes to &p" true (contains ~sub:"&p" s)

let test_ablation_ce_report () =
  let s = Rsti_report.Ablation.ce_width () in
  checkb "within budget everywhere" false (contains ~sub:"NO" s)

let test_ablation_pac_width_report () =
  let s = Rsti_report.Ablation.pac_brute_force () in
  checkb "both layouts" true (contains ~sub:"TBI on" s && contains ~sub:"TBI off" s);
  (* the 7-bit acceptance rate must be visibly non-zero, the 15-bit ~0 *)
  checkb "7-bit rate printed" true (contains ~sub:"0.00781" s)

let test_backend_report () =
  let s = Rsti_report.Ablation.backend_comparison () in
  checkb "compares PAC and MAC" true
    (contains ~sub:"STWC via PAC" s && contains ~sub:"shadow MAC" s);
  checkb "numeric kernels filtered out" false (contains ~sub:"milc" s)

let tests =
  [
    Alcotest.test_case "table1 renders" `Slow test_table1_report;
    Alcotest.test_case "table1 verdicts" `Slow test_table1_verdict_structure;
    Alcotest.test_case "table2 renders" `Slow test_table2_report;
    Alcotest.test_case "table3 renders" `Slow test_table3_report;
    Alcotest.test_case "pp census renders" `Slow test_pp_census_report;
    Alcotest.test_case "parts comparison renders" `Slow test_parts_report;
    Alcotest.test_case "ablation: merge renders" `Slow test_ablation_merge_report;
    Alcotest.test_case "ablation: stl renders" `Slow test_ablation_stl_report;
    Alcotest.test_case "ablation: ce renders" `Slow test_ablation_ce_report;
    Alcotest.test_case "ablation: pac width renders" `Quick test_ablation_pac_width_report;
    Alcotest.test_case "extension: backend renders" `Slow test_backend_report;
  ]

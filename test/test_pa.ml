(* Tests for the pointer-authentication substrate: cipher, address
   layout, and pac/aut instruction semantics. *)

module Qarma = Rsti_pa.Qarma
module Vaddr = Rsti_pa.Vaddr
module Key = Rsti_pa.Key
module Pac = Rsti_pa.Pac
module Sm = Rsti_util.Splitmix
module Bits = Rsti_util.Bits

let checkb = Alcotest.(check bool)
let check64 = Alcotest.check Alcotest.int64
let checki = Alcotest.(check int)

let key () = Qarma.key_of_rng (Sm.create 77L)

(* ------------------------------ qarma ------------------------------ *)

let test_qarma_roundtrip () =
  let k = key () in
  let rng = Sm.create 1L in
  for _ = 1 to 200 do
    let b = Sm.next64 rng and t = Sm.next64 rng in
    check64 "dec(enc(x)) = x" b (Qarma.decrypt ~key:k ~tweak:t (Qarma.encrypt ~key:k ~tweak:t b))
  done

let test_qarma_tweak_sensitivity () =
  let k = key () in
  let e1 = Qarma.encrypt ~key:k ~tweak:1L 42L in
  let e2 = Qarma.encrypt ~key:k ~tweak:2L 42L in
  checkb "different tweaks differ" true (e1 <> e2);
  (* good diffusion: a 1-bit tweak change flips many bits *)
  checkb "avalanche > 10 bits" true (Bits.popcount (Int64.logxor e1 e2) > 10)

let test_qarma_key_sensitivity () =
  let k1 = Qarma.key_of_rng (Sm.create 1L) in
  let k2 = Qarma.key_of_rng (Sm.create 2L) in
  checkb "different keys differ" true
    (Qarma.encrypt ~key:k1 ~tweak:0L 5L <> Qarma.encrypt ~key:k2 ~tweak:0L 5L)

let test_qarma_plaintext_avalanche () =
  let k = key () in
  let e1 = Qarma.encrypt ~key:k ~tweak:0L 0L in
  let e2 = Qarma.encrypt ~key:k ~tweak:0L 1L in
  checkb "plaintext avalanche" true (Bits.popcount (Int64.logxor e1 e2) > 10)

let test_qarma_deterministic () =
  let k = key () in
  check64 "stable" (Qarma.encrypt ~key:k ~tweak:9L 9L) (Qarma.encrypt ~key:k ~tweak:9L 9L)

let prop_qarma_roundtrip =
  QCheck.Test.make ~name:"qarma decrypt inverts encrypt" ~count:300
    QCheck.(pair int64 int64)
    (fun (block, tweak) ->
      let k = key () in
      Qarma.decrypt ~key:k ~tweak (Qarma.encrypt ~key:k ~tweak block) = block)

let prop_qarma_injective =
  QCheck.Test.make ~name:"qarma injective per tweak" ~count:300
    QCheck.(triple int64 int64 int64)
    (fun (a, b, tweak) ->
      let k = key () in
      a = b || Qarma.encrypt ~key:k ~tweak a <> Qarma.encrypt ~key:k ~tweak b)

(* ------------------------------ vaddr ------------------------------ *)

let test_pac_width () =
  checki "TBI on: 7 bits" 7 (Vaddr.pac_width Vaddr.default);
  checki "TBI off: 15 bits" 15 (Vaddr.pac_width Vaddr.no_tbi)

let test_canonical_low () =
  let p = 0x0000_7FFF_1234_5678L in
  check64 "low canonical unchanged" p (Vaddr.canonical Vaddr.default p);
  checkb "is canonical" true (Vaddr.is_canonical Vaddr.default p)

let test_canonical_clears_pac () =
  (* PAC bits set, bit 55 (the selector) clear *)
  let p = 0x007F_7FFF_1234_5678L in
  checkb "pac'ed not canonical" false (Vaddr.is_canonical Vaddr.no_tbi p);
  check64 "stripped" 0x0000_7FFF_1234_5678L (Vaddr.canonical Vaddr.no_tbi p)

let test_canonical_kernel_half () =
  (* bit 55 set: upper half; canonicalisation sign-extends *)
  let p = Int64.logor 0x0080_0000_0000_0000L 0x1234L in
  let c = Vaddr.canonical Vaddr.no_tbi p in
  checkb "upper bits set" true (Bits.field c ~lo:48 ~width:16 = Bits.mask 16)

let test_embed_extract () =
  let cfg = Vaddr.no_tbi in
  let p = 0x0000_7FFF_0000_1000L in
  for pac = 0 to 100 do
    let pacv = Int64.of_int pac in
    let s = Vaddr.embed_pac cfg ~pac:pacv p in
    check64 "extract = embed" pacv (Vaddr.extract_pac cfg s)
  done

let test_embed_tbi_preserves_top_byte () =
  let cfg = Vaddr.default in
  let tagged = Vaddr.with_top_byte 0x0000_7FFF_0000_1000L 0xAB in
  let s = Vaddr.embed_pac cfg ~pac:0x5AL tagged in
  checki "tag kept" 0xAB (Vaddr.top_byte s)

let test_corrupt_not_canonical () =
  let cfg = Vaddr.default in
  let p = 0x0000_7FFF_0000_1000L in
  let c = Vaddr.corrupt cfg p in
  checkb "corrupted differs" true (c <> p);
  checkb "corrupted non-canonical" false (Vaddr.is_canonical cfg c)

let test_corrupt_involution () =
  (* flipping the same two bits twice restores the pointer *)
  let cfg = Vaddr.default in
  let p = 0x0000_7FFF_0000_1000L in
  check64 "double corrupt = id" p (Vaddr.corrupt cfg (Vaddr.corrupt cfg p))

let test_top_byte () =
  checki "read tag" 0xCD (Vaddr.top_byte (Vaddr.with_top_byte 5L 0xCD));
  check64 "clear tag" 5L (Vaddr.with_top_byte (Vaddr.with_top_byte 5L 0xCD) 0)

(* ------------------------------- key -------------------------------- *)

let test_key_slots_distinct () =
  let bank = Key.generate ~seed:3L in
  let all = List.map (Key.lookup bank) [ Key.IA; Key.IB; Key.DA; Key.DB; Key.GA ] in
  let distinct = List.sort_uniq compare all in
  checki "five distinct keys" 5 (List.length distinct)

let test_key_of_int () =
  Alcotest.(check string) "key 2 = da" "da" (Key.which_to_string (Key.which_of_int 2));
  checki "roundtrip" 4 (Key.int_of_which (Key.which_of_int 4));
  Alcotest.check_raises "bad key id"
    (Invalid_argument "Key.which_of_int: 9 is not a PA key") (fun () ->
      ignore (Key.which_of_int 9))

(* ------------------------------- pac -------------------------------- *)

let ctx () = Pac.make ~seed:123L ()

let test_sign_auth_roundtrip () =
  let c = ctx () in
  let p = 0x0000_2000_0000_0040L in
  let s = Pac.sign c ~key:Key.DA ~modifier:0xAAL p in
  checkb "signed has pac bits" true (Pac.is_signed c s);
  match Pac.auth c ~key:Key.DA ~modifier:0xAAL s with
  | Ok q -> check64 "auth strips to original" p q
  | Error _ -> Alcotest.fail "auth should succeed"

let test_auth_wrong_modifier_fails () =
  let c = ctx () in
  let s = Pac.sign c ~key:Key.DA ~modifier:0xAAL 0x2000_0000L in
  match Pac.auth c ~key:Key.DA ~modifier:0xABL s with
  | Ok _ -> Alcotest.fail "wrong modifier must fail"
  | Error corrupted ->
      checkb "corrupted non-canonical" false
        (Vaddr.is_canonical (Pac.layout c) corrupted)

let test_auth_wrong_key_fails () =
  let c = ctx () in
  let s = Pac.sign c ~key:Key.DA ~modifier:1L 0x2000_0000L in
  checkb "wrong key fails" true
    (match Pac.auth c ~key:Key.IA ~modifier:1L s with Error _ -> true | Ok _ -> false)

let test_auth_raw_pointer_fails () =
  let c = ctx () in
  (* an unsigned non-null pointer (the attacker's forged value) *)
  checkb "raw pointer rejected" true
    (match Pac.auth c ~key:Key.DA ~modifier:1L 0x2000_0040L with
    | Error _ -> true
    | Ok _ -> false)

let test_null_never_signed () =
  let c = ctx () in
  check64 "sign NULL = NULL" 0L (Pac.sign c ~key:Key.DA ~modifier:77L 0L);
  checkb "auth NULL ok" true
    (match Pac.auth c ~key:Key.DA ~modifier:123L 0L with Ok 0L -> true | _ -> false)

let test_strip () =
  let c = ctx () in
  let p = 0x0000_2000_0000_0040L in
  let s = Pac.sign c ~key:Key.DA ~modifier:5L p in
  check64 "xpac strips" p (Pac.strip c s)

let test_tbi_tag_does_not_affect_pac () =
  let c = ctx () in
  let p = 0x0000_2000_0000_0040L in
  let s = Pac.sign c ~key:Key.DA ~modifier:5L p in
  let tagged = Vaddr.with_top_byte s 0x42 in
  (* authentication ignores the software tag byte under TBI *)
  checkb "tagged still authenticates" true
    (match Pac.auth c ~key:Key.DA ~modifier:5L tagged with Ok _ -> true | Error _ -> false)

let test_different_seeds_different_pacs () =
  let c1 = Pac.make ~seed:1L () and c2 = Pac.make ~seed:2L () in
  let p = 0x2000_0000L in
  checkb "per-process keys" true
    (Pac.sign c1 ~key:Key.DA ~modifier:1L p <> Pac.sign c2 ~key:Key.DA ~modifier:1L p)

let test_compute_pac_fits_field () =
  let c = ctx () in
  let pac = Pac.compute_pac c ~key:Key.DA ~modifier:99L 0x2000_0000L in
  checkb "pac fits width" true
    (Int64.unsigned_compare pac (Bits.mask (Vaddr.pac_width (Pac.layout c))) <= 0)

let prop_sign_auth =
  QCheck.Test.make ~name:"sign/auth roundtrip for canonical pointers" ~count:300
    QCheck.(pair (int_bound 0xFFFFFF) int64)
    (fun (off, modifier) ->
      let c = ctx () in
      let p = Int64.add 0x2000_0000L (Int64.of_int off) in
      let s = Pac.sign c ~key:Key.DA ~modifier p in
      match Pac.auth c ~key:Key.DA ~modifier s with Ok q -> q = p | Error _ -> false)

let prop_modifier_separation =
  QCheck.Test.make ~name:"distinct modifiers reject replays (w.h.p.)" ~count:300
    QCheck.(pair int64 int64)
    (fun (m1, m2) ->
      QCheck.assume (m1 <> m2);
      let c = ctx () in
      let p = 0x2000_0040L in
      let s = Pac.sign c ~key:Key.DA ~modifier:m1 p in
      (* 7-bit PAC: forgery chance 1/128 per pair; deterministic seeds keep
         this stable, and the chosen seed avoids collisions in this range *)
      match Pac.auth c ~key:Key.DA ~modifier:m2 s with
      | Error _ -> true
      | Ok _ ->
          (* accept rare PAC collisions: they must match the truncated PAC *)
          Pac.compute_pac c ~key:Key.DA ~modifier:m1 p
          = Pac.compute_pac c ~key:Key.DA ~modifier:m2 p)

let test_brute_force_rate_tracks_width () =
  (* deterministic seeds: the 7-bit acceptance rate over 2048 guesses
     must sit near 2^-7, and the 15-bit rate must be far smaller *)
  let rate layout =
    let pac = Pac.make ~layout ~seed:99L () in
    let rng = Sm.create 4242L in
    let accepted = ref 0 in
    for _ = 1 to 2048 do
      let forged = Vaddr.embed_pac layout ~pac:(Sm.next64 rng) 0x2000_0040L in
      match Pac.auth pac ~key:Key.DA ~modifier:7L forged with
      | Ok _ -> incr accepted
      | Error _ -> ()
    done;
    float_of_int !accepted /. 2048.
  in
  let r7 = rate Vaddr.default and r15 = rate Vaddr.no_tbi in
  checkb "7-bit rate near 1/128" true (r7 > 0.001 && r7 < 0.03);
  checkb "15-bit rate << 7-bit rate" true (r15 < r7 /. 4.)

let tests =
  [
    Alcotest.test_case "pac: brute-force rate" `Quick test_brute_force_rate_tracks_width;
    Alcotest.test_case "qarma: roundtrip" `Quick test_qarma_roundtrip;
    Alcotest.test_case "qarma: tweak sensitivity" `Quick test_qarma_tweak_sensitivity;
    Alcotest.test_case "qarma: key sensitivity" `Quick test_qarma_key_sensitivity;
    Alcotest.test_case "qarma: plaintext avalanche" `Quick test_qarma_plaintext_avalanche;
    Alcotest.test_case "qarma: deterministic" `Quick test_qarma_deterministic;
    Alcotest.test_case "vaddr: pac width" `Quick test_pac_width;
    Alcotest.test_case "vaddr: canonical low" `Quick test_canonical_low;
    Alcotest.test_case "vaddr: canonical clears pac" `Quick test_canonical_clears_pac;
    Alcotest.test_case "vaddr: kernel half" `Quick test_canonical_kernel_half;
    Alcotest.test_case "vaddr: embed/extract" `Quick test_embed_extract;
    Alcotest.test_case "vaddr: TBI keeps tag" `Quick test_embed_tbi_preserves_top_byte;
    Alcotest.test_case "vaddr: corrupt non-canonical" `Quick test_corrupt_not_canonical;
    Alcotest.test_case "vaddr: corrupt involution" `Quick test_corrupt_involution;
    Alcotest.test_case "vaddr: top byte" `Quick test_top_byte;
    Alcotest.test_case "key: slots distinct" `Quick test_key_slots_distinct;
    Alcotest.test_case "key: int mapping" `Quick test_key_of_int;
    Alcotest.test_case "pac: sign/auth roundtrip" `Quick test_sign_auth_roundtrip;
    Alcotest.test_case "pac: wrong modifier fails" `Quick test_auth_wrong_modifier_fails;
    Alcotest.test_case "pac: wrong key fails" `Quick test_auth_wrong_key_fails;
    Alcotest.test_case "pac: raw pointer fails" `Quick test_auth_raw_pointer_fails;
    Alcotest.test_case "pac: NULL unsigned" `Quick test_null_never_signed;
    Alcotest.test_case "pac: xpac strip" `Quick test_strip;
    Alcotest.test_case "pac: TBI tag independence" `Quick test_tbi_tag_does_not_affect_pac;
    Alcotest.test_case "pac: per-seed keys" `Quick test_different_seeds_different_pacs;
    Alcotest.test_case "pac: pac fits field" `Quick test_compute_pac_fits_field;
    QCheck_alcotest.to_alcotest prop_qarma_roundtrip;
    QCheck_alcotest.to_alcotest prop_qarma_injective;
    QCheck_alcotest.to_alcotest prop_sign_auth;
    QCheck_alcotest.to_alcotest prop_modifier_separation;
  ]

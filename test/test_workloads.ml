(* Static checks over the workload suites and the generator: every
   kernel parses, type-checks, lowers to verifiable IR, and has the
   pointer profile its archetype promises; generator configurations
   behave as documented. *)

module Workload = Rsti_workloads.Workload
module Generator = Rsti_workloads.Generator
module Analysis = Rsti_sti.Analysis
module Ir = Rsti_ir.Ir
module RT = Rsti_sti.Rsti_type

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Pipeline = Rsti_engine.Pipeline

let analyzed ~file src =
  Pipeline.analyze (Pipeline.compile (Pipeline.source ~file src))
let analyze_src ~file src = Pipeline.analysis (analyzed ~file src)

let all_workloads =
  Rsti_workloads.Spec2006.all @ Rsti_workloads.Spec2017.all
  @ Rsti_workloads.Nbench.all @ Rsti_workloads.Pytorch.all
  @ Rsti_workloads.Nginx.all

(* one static-pipeline test per workload *)
let per_workload_static_tests =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s compiles and verifies"
           (Workload.suite_to_string w.suite) w.name)
        `Quick
        (fun () ->
          let a = analyzed ~file:(w.name ^ ".c") w.Workload.source in
          (match Rsti_ir.Verify.verify (Pipeline.analyzed_ir a) with
          | [] -> ()
          | { fn; msg } :: _ -> Alcotest.failf "verify %s: %s" fn msg);
          (* instrumented forms must verify too *)
          List.iter
            (fun mech ->
              match Rsti_ir.Verify.verify (Pipeline.instrumented_ir (Pipeline.instrument mech a)) with
              | [] -> ()
              | { fn; msg } :: _ ->
                  Alcotest.failf "verify %s under %s: %s" fn
                    (RT.mechanism_to_string mech) msg)
            RT.all_mechanisms))
    all_workloads

let test_workload_names_unique () =
  let names = List.map (fun (w : Workload.t) -> w.name) all_workloads in
  checki "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_suite_sizes_match_paper () =
  checki "18 SPEC2006 benchmarks" 18 (List.length Rsti_workloads.Spec2006.all);
  checki "23 SPEC2017 benchmarks" 23 (List.length Rsti_workloads.Spec2017.all);
  checki "10 nbench kernels" 10 (List.length Rsti_workloads.Nbench.all);
  checki "8 PyTorch benchmarks" 8 (List.length Rsti_workloads.Pytorch.all)

let test_archetype_pointer_profiles () =
  (* pointer-chasing kernels must have pointer slots; numeric kernels
     (before population augmentation) must not *)
  let has_pointer_vars name source =
    Analysis.pointer_vars (analyze_src ~file:(name ^ ".c") source) <> []
  in
  let find name =
    List.find (fun (w : Workload.t) -> w.name = name) all_workloads
  in
  List.iter
    (fun n -> checkb (n ^ " has pointers") true (has_pointer_vars n (find n).source))
    [ "perlbench"; "mcf"; "omnetpp"; "povray"; "541.leela_r"; "nginx" ];
  List.iter
    (fun n ->
      checkb (n ^ " kernel itself is pointer-free") false
        (has_pointer_vars n (find n).source))
    [ "milc"; "bitfield"; "fourier" ];
  (* lbm/namd carry grid/coordinate pointers (the real kernels' idiom),
     but every one is provably safe for the static checker to elide *)
  List.iter
    (fun n ->
      let w = find n in
      let a = analyzed ~file:(n ^ ".c") w.Workload.source in
      let m = Pipeline.analyzed_ir a and anal = Pipeline.analysis a in
      let e = Rsti_staticcheck.Elide.analyze anal m in
      let s = Rsti_staticcheck.Elide.summary e in
      checkb (n ^ " has elidable pointer slots") true
        Rsti_staticcheck.Elide.(s.candidates > 0);
      checki (n ^ " pointer slots all provably safe")
        Rsti_staticcheck.Elide.(s.candidates)
        Rsti_staticcheck.Elide.(s.safe))
    [ "lbm"; "namd" ]

let test_spec2006_population_attached () =
  List.iter
    (fun (w : Workload.t) ->
      checkb (w.name ^ " carries analysis population") true
        (String.length w.Workload.analysis_extra > 0))
    Rsti_workloads.Spec2006.all

let test_population_scales_with_paper_nt () =
  let stats name =
    let w = List.find (fun (w : Workload.t) -> w.name = name) Rsti_workloads.Spec2006.all in
    Analysis.stats (Rsti_workloads.Run.analyze_workload w)
  in
  let big = stats "xalancbmk" and small = stats "libquantum" in
  checkb "xalancbmk >> libquantum (NT)" true (big.nt > 20 * small.nt);
  checkb "xalancbmk >> libquantum (NV)" true (big.nv > 20 * small.nv)

(* ----------------------------- generator ---------------------------- *)

let test_generator_deterministic () =
  let a = Generator.generate ~seed:5L () in
  let b = Generator.generate ~seed:5L () in
  Alcotest.(check string) "same seed, same program" a b;
  checkb "different seed differs" true (a <> Generator.generate ~seed:6L ())

let test_generator_no_main_mode () =
  let config = { Generator.default with emit_main = false; prefix = "q_" } in
  let src = Generator.generate ~config ~seed:3L () in
  let m = Pipeline.(ir (compile (source ~file:"g.c" src))) in
  checkb "no main emitted" true (Ir.find_func m "main" = None);
  checkb "prefixed workers present" true (Ir.find_func m "q_work0" <> None)

let test_generator_pp_rates () =
  let config =
    { Generator.default with pp_typed_rate = 1.0; n_funcs = 6; emit_main = false }
  in
  let src = Generator.generate ~config ~seed:11L () in
  let anal = analyze_src ~file:"g.c" src in
  checkb "pp sites generated" true ((Analysis.pp_census anal).pp_total_sites > 0)

let test_generator_zero_pp_by_default () =
  let src = Generator.generate ~seed:13L () in
  let anal = analyze_src ~file:"g.c" src in
  checki "no pp sites by default" 0 (Analysis.pp_census anal).pp_total_sites

let test_generator_cast_bias_extremes () =
  (* cast_bias = 1.0 guarantees casts whenever a same-typed callee
     exists; 0.0 yields none beyond the malloc casts *)
  let gen bias =
    let config =
      { Generator.default with cast_bias = bias; n_funcs = 8; n_structs = 1 }
    in
    let src = Generator.generate ~config ~seed:21L () in
    let anal = analyze_src ~file:"g.c" src in
    List.length
      (List.filter (fun (_, _, to_) -> to_ = "void*") (Analysis.casts anal))
  in
  checkb "bias drives void* casts" true (gen 1.0 > gen 0.0)

let tests =
  per_workload_static_tests
  @ [
      Alcotest.test_case "workload names unique" `Quick test_workload_names_unique;
      Alcotest.test_case "suite sizes match paper" `Quick test_suite_sizes_match_paper;
      Alcotest.test_case "archetype pointer profiles" `Quick test_archetype_pointer_profiles;
      Alcotest.test_case "spec2006 population attached" `Quick test_spec2006_population_attached;
      Alcotest.test_case "population scales with paper NT" `Slow test_population_scales_with_paper_nt;
      Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
      Alcotest.test_case "generator no-main mode" `Quick test_generator_no_main_mode;
      Alcotest.test_case "generator pp rates" `Quick test_generator_pp_rates;
      Alcotest.test_case "generator zero pp default" `Quick test_generator_zero_pp_by_default;
      Alcotest.test_case "generator cast bias" `Quick test_generator_cast_bias_extremes;
    ]

(* Tests for the static checker: lint determinism and coverage over the
   attack catalog, elision's safety invariant (no detection verdict ever
   changes), and the prover's bookkeeping invariants. *)

module Lint = Rsti_staticcheck.Lint
module Elide = Rsti_staticcheck.Elide
module Finding = Rsti_staticcheck.Finding
module Scenario = Rsti_attacks.Scenario
module RT = Rsti_sti.Rsti_type

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Pipeline = Rsti_engine.Pipeline

let analyze src =
  let a = Pipeline.(analyze (compile (source ~file:"t.c" src))) in
  (Pipeline.analyzed_ir a, Pipeline.analysis a)

let lint_src src =
  let m, anal = analyze src in
  Lint.run anal m

(* ------------------------- lint: determinism ----------------------- *)

(* Findings are a function of the source alone: compiling and linting a
   generated program twice (fresh module, fresh analysis, fresh hash
   tables) renders byte-identical reports. *)
let prop_lint_deterministic =
  QCheck.Test.make ~name:"lint deterministic over generated programs"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src =
        Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) ()
      in
      let render () = Lint.render_json ~file:"gen.c" (lint_src src) in
      String.equal (render ()) (render ()))

(* ---------------------- lint: catalog coverage --------------------- *)

(* Every Table-1 victim program trips the checker, and across the
   catalog at least five distinct rules fire. *)
let test_catalog_coverage () =
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun (sc : Scenario.t) ->
      let findings = lint_src sc.program in
      checkb (sc.id ^ " has findings") true (findings <> []);
      List.iter
        (fun (f : Finding.t) ->
          Hashtbl.replace kinds (Finding.kind_name f.kind) ())
        findings)
    Rsti_attacks.Catalog.all;
  let distinct = Hashtbl.length kinds in
  if distinct < 5 then
    Alcotest.failf "only %d distinct finding kinds across the catalog: %s"
      distinct
      (String.concat ", " (Hashtbl.fold (fun k () acc -> k :: acc) kinds []))

let test_lint_locations () =
  (* Findings that point into a function carry a usable line. *)
  List.iter
    (fun (sc : Scenario.t) ->
      List.iter
        (fun (f : Finding.t) ->
          if f.func <> "" then
            checkb
              (Printf.sprintf "%s: %s in %s has a line" sc.id
                 (Finding.kind_name f.kind) f.func)
              true (f.line >= 0))
        (lint_src sc.program))
    Rsti_attacks.Catalog.all

(* --------------------------- lint: SARIF ---------------------------- *)

(* The SARIF document parses, carries the 2.1.0 version tag and the
   stilint rule table, and every finding maps to a result whose ruleId
   is a declared rule. *)
let test_lint_sarif () =
  let module J = Rsti_staticcheck.Json in
  let sc = List.hd Rsti_attacks.Catalog.all in
  let findings = lint_src sc.program in
  let doc = Lint.render_sarif [ ("a.c", findings); ("b.c", []) ] in
  match J.of_string doc with
  | Error e -> Alcotest.failf "SARIF does not parse: %s" e
  | Ok (J.Obj fields) -> (
      checkb "version 2.1.0" true
        (List.assoc "version" fields = J.Str "2.1.0");
      match List.assoc "runs" fields with
      | J.List [ J.Obj run ] ->
          let driver =
            match List.assoc "tool" run with
            | J.Obj t -> (
                match List.assoc "driver" t with
                | J.Obj d -> d
                | _ -> Alcotest.fail "driver is not an object")
            | _ -> Alcotest.fail "tool is not an object"
          in
          checkb "driver is stilint" true
            (List.assoc "name" driver = J.Str "stilint");
          let rule_ids =
            match List.assoc "rules" driver with
            | J.List rules ->
                List.map
                  (function
                    | J.Obj r -> (
                        match List.assoc "id" r with
                        | J.Str id -> id
                        | _ -> Alcotest.fail "rule id is not a string")
                    | _ -> Alcotest.fail "rule is not an object")
                  rules
            | _ -> Alcotest.fail "rules is not a list"
          in
          checki "twelve declared rules" 12 (List.length rule_ids);
          (match List.assoc "results" run with
          | J.List results ->
              checki "one result per finding" (List.length findings)
                (List.length results);
              List.iter
                (function
                  | J.Obj r -> (
                      match List.assoc "ruleId" r with
                      | J.Str id ->
                          checkb ("ruleId declared: " ^ id) true
                            (List.mem id rule_ids)
                      | _ -> Alcotest.fail "ruleId is not a string")
                  | _ -> Alcotest.fail "result is not an object")
                results
          | _ -> Alcotest.fail "results is not a list")
      | _ -> Alcotest.fail "runs is not a one-element list")
  | Ok _ -> Alcotest.fail "SARIF document is not an object"

(* ------------------ lint: attack-surface opt-in --------------------- *)

(* Two same-typed global pointers share one (key, modifier) class under
   STWC, so the attack-surface pass must report the collision (warning)
   and, since globals are attacker-writable in the oracle model, at
   least one concrete feasible-substitution gadget (error). The base
   battery never emits either rule: they are opt-in. *)
let collision_src =
  {|
char buf[4];
char *a;
char *b;
int main(void) {
  char n;
  buf[0] = 65;
  a = buf;
  b = buf;
  n = *a;
  n = *b;
  return n;
}
|}

let test_attack_surface_opt_in () =
  let m, anal = analyze collision_src in
  let has kind fs =
    List.exists (fun (f : Finding.t) -> Finding.kind_name f.kind = kind) fs
  in
  let base = Lint.run anal m in
  checkb "base lint has no modifier-collision" false
    (has "modifier-collision" base);
  checkb "base lint has no feasible-substitution" false
    (has "feasible-substitution" base);
  let surface = Rsti_staticcheck.Attack_surface.surface anal m in
  let fs = Lint.run ~attack_surface:surface anal m in
  checkb "opt-in reports modifier-collision" true (has "modifier-collision" fs);
  checkb "opt-in reports feasible-substitution" true
    (has "feasible-substitution" fs);
  List.iter
    (fun (f : Finding.t) ->
      match Finding.kind_name f.kind with
      | "modifier-collision" ->
          checkb "collision is a warning" true (f.severity = Finding.Warning)
      | "feasible-substitution" ->
          checkb "substitution is an error" true (f.severity = Finding.Error)
      | _ -> ())
    fs

(* --------------- lint: scope-escape / stale-frame rules ------------- *)

let scope_of m =
  Rsti_dataflow.Scope_escape.analyze
    ~points_to:(Rsti_dataflow.Points_to.analyze m) m

let scope_positive_src =
  {|
int *leak;
int *give(void) { int slot; slot = 7; leak = &slot; return &slot; }
int main(void) { int *p; p = give(); return *p; }
|}

let scope_negative_src =
  {|
int fill(int *dst) { *dst = 5; return 0; }
int main(void) { int local; local = 0; fill(&local); return local; }
|}

let test_lint_scope_rules_positive () =
  let m, anal = analyze scope_positive_src in
  let findings = Lint.run ~scope:(scope_of m) anal m in
  let of_kind k =
    List.filter (fun (f : Finding.t) -> Finding.kind_name f.kind = k) findings
  in
  checkb "scope-escape fires" true (of_kind "scope-escape" <> []);
  List.iter
    (fun (f : Finding.t) ->
      checkb "scope-escape is a warning" true (f.severity = Finding.Warning))
    (of_kind "scope-escape");
  (match of_kind "stale-frame-deref" with
  | [] -> Alcotest.fail "stale-frame-deref did not fire"
  | fs ->
      checkb "must-deref of a dead frame is an error" true
        (List.exists (fun (f : Finding.t) -> f.severity = Finding.Error) fs));
  (* without ?scope the two rules stay silent *)
  List.iter
    (fun (f : Finding.t) ->
      let k = Finding.kind_name f.kind in
      checkb ("no " ^ k ^ " without scope input") true
        (k <> "scope-escape" && k <> "stale-frame-deref"))
    (Lint.run anal m)

let test_lint_scope_rules_negative () =
  let m, anal = analyze scope_negative_src in
  List.iter
    (fun (f : Finding.t) ->
      let k = Finding.kind_name f.kind in
      checkb ("clean program has no " ^ k) true
        (k <> "scope-escape" && k <> "stale-frame-deref"))
    (Lint.run ~scope:(scope_of m) anal m)

(* The analyze --format=sarif path: only the dataflow findings, round-
   tripped through the JSON parser, with declared ruleIds and the stale
   must-deref at error level. *)
let test_dataflow_findings_sarif_roundtrip () =
  let module J = Rsti_staticcheck.Json in
  let m, _ = analyze scope_positive_src in
  let findings = Lint.dataflow_findings (scope_of m) in
  checkb "dataflow findings exist" true (findings <> []);
  let doc = Lint.render_sarif [ ("p.c", findings) ] in
  match J.of_string doc with
  | Error e -> Alcotest.failf "SARIF does not parse: %s" e
  | Ok (J.Obj fields) -> (
      match List.assoc "runs" fields with
      | J.List [ J.Obj run ] ->
          let results =
            match List.assoc "results" run with
            | J.List rs -> rs
            | _ -> Alcotest.fail "results is not a list"
          in
          checki "one result per finding" (List.length findings)
            (List.length results);
          let seen_error = ref false in
          List.iter
            (function
              | J.Obj r ->
                  (match List.assoc "ruleId" r with
                  | J.Str id ->
                      checkb ("dataflow ruleId: " ^ id) true
                        (id = "scope-escape" || id = "stale-frame-deref")
                  | _ -> Alcotest.fail "ruleId is not a string");
                  if List.assoc_opt "level" r = Some (J.Str "error") then
                    seen_error := true
              | _ -> Alcotest.fail "result is not an object")
            results;
          checkb "the must stale-deref renders at error level" true !seen_error
      | _ -> Alcotest.fail "runs is not a one-element list")
  | Ok _ -> Alcotest.fail "SARIF document is not an object"

(* ------------------- elision: the safety invariant ------------------ *)

(* Elision must never change a detection verdict: any scenario, any
   mechanism, full vs elided instrumentation agree. Exercised as a
   property over the substitution micro-scenarios (where a wrongly
   elided auth shows up immediately as Detected -> Attack_succeeded). *)
let sub_scenarios =
  List.map fst Rsti_attacks.Substitution.expected
  @ List.map fst Rsti_attacks.Memory_safety.expected

let prop_elide_preserves_verdicts =
  let n = List.length sub_scenarios in
  let mechs = RT.all_mechanisms in
  QCheck.Test.make ~name:"elision preserves substitution verdicts"
    ~count:(n * List.length mechs)
    QCheck.(pair (int_bound (n - 1)) (int_bound (List.length mechs - 1)))
    (fun (i, j) ->
      let sc = List.nth sub_scenarios i in
      let mech = List.nth mechs j in
      let full = (Scenario.run sc mech).Scenario.verdict in
      let elided =
        (Scenario.run ~elision:Elide.Syntactic sc mech).Scenario.verdict
      in
      full = elided)

let test_table1_detected_under_elision () =
  List.iter
    (fun (sc : Scenario.t) ->
      List.iter
        (fun mech ->
          let r = Scenario.run ~elision:Elide.Syntactic sc mech in
          Alcotest.(check string)
            (Printf.sprintf "%s under %s+elide" sc.id
               (RT.mechanism_to_string mech))
            "detected"
            (Scenario.verdict_to_string r.Scenario.verdict))
        RT.all_mechanisms)
    Rsti_attacks.Catalog.all

let prop_elide_pt_preserves_verdicts =
  let n = List.length sub_scenarios in
  let mechs = RT.all_mechanisms in
  QCheck.Test.make ~name:"points-to elision preserves substitution verdicts"
    ~count:(n * List.length mechs)
    QCheck.(pair (int_bound (n - 1)) (int_bound (List.length mechs - 1)))
    (fun (i, j) ->
      let sc = List.nth sub_scenarios i in
      let mech = List.nth mechs j in
      let full = (Scenario.run sc mech).Scenario.verdict in
      let elided =
        (Scenario.run ~elision:Elide.With_points_to sc mech).Scenario.verdict
      in
      full = elided)

let test_table1_detected_under_pt_elision () =
  List.iter
    (fun (sc : Scenario.t) ->
      List.iter
        (fun mech ->
          let r = Scenario.run ~elision:Elide.With_points_to sc mech in
          Alcotest.(check string)
            (Printf.sprintf "%s under %s+elide:points-to" sc.id
               (RT.mechanism_to_string mech))
            "detected"
            (Scenario.verdict_to_string r.Scenario.verdict))
        RT.all_mechanisms)
    Rsti_attacks.Catalog.all

let prop_elide_cs_preserves_verdicts =
  let n = List.length sub_scenarios in
  let mechs = RT.all_mechanisms in
  QCheck.Test.make ~name:"context elision preserves substitution verdicts"
    ~count:(n * List.length mechs)
    QCheck.(pair (int_bound (n - 1)) (int_bound (List.length mechs - 1)))
    (fun (i, j) ->
      let sc = List.nth sub_scenarios i in
      let mech = List.nth mechs j in
      let full = (Scenario.run sc mech).Scenario.verdict in
      let elided =
        (Scenario.run ~elision:(Elide.With_context 2) sc mech).Scenario.verdict
      in
      full = elided)

let test_table1_detected_under_cs_elision () =
  List.iter
    (fun (sc : Scenario.t) ->
      List.iter
        (fun mech ->
          let r = Scenario.run ~elision:(Elide.With_context 2) sc mech in
          Alcotest.(check string)
            (Printf.sprintf "%s under %s+elide:context" sc.id
               (RT.mechanism_to_string mech))
            "detected"
            (Scenario.verdict_to_string r.Scenario.verdict))
        RT.all_mechanisms)
    Rsti_attacks.Catalog.all

(* ------------------ elision: soundness monotonicity ----------------- *)

(* The points-to upgrade may only move slots from Must_check to
   Provably_safe, never the reverse: every syntactically-safe slot stays
   safe when the Andersen confinement proof is added. Property-checked
   over generated programs (plus the SPEC2006 kernels below, where the
   discharge actually fires). *)
let prop_elide_sound_monotone =
  QCheck.Test.make ~name:"points-to elision is sound-monotone" ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src =
        Rsti_workloads.Generator.generate ~seed:(Int64.of_int seed) ()
      in
      let m, anal = analyze src in
      let pt = Rsti_dataflow.Points_to.analyze m in
      let e_syn = Elide.analyze anal m in
      let e_pt = Elide.analyze ~points_to:pt anal m in
      List.for_all
        (fun (si : Rsti_sti.Analysis.slot_info) ->
          (not (Elide.elide e_syn si.slot)) || Elide.elide e_pt si.slot)
        (Rsti_sti.Analysis.pointer_vars anal))

let test_monotone_on_spec2006 () =
  List.iter
    (fun (w : Rsti_workloads.Workload.t) ->
      let m, anal =
        analyze (Rsti_workloads.Workload.analysis_source w)
      in
      let pt = Rsti_dataflow.Points_to.analyze m in
      let e_syn = Elide.analyze anal m in
      let e_pt = Elide.analyze ~points_to:pt anal m in
      List.iter
        (fun (si : Rsti_sti.Analysis.slot_info) ->
          if Elide.elide e_syn si.slot then
            checkb
              (Printf.sprintf "%s: %s stays safe under points-to" w.name
                 (Rsti_ir.Ir.slot_to_string si.slot))
              true (Elide.elide e_pt si.slot))
        (Rsti_sti.Analysis.pointer_vars anal);
      let s_syn = Elide.summary e_syn and s_pt = Elide.summary e_pt in
      checkb (w.name ^ " safe set grows monotonically") true
        (s_pt.Elide.safe >= s_syn.Elide.safe))
    Rsti_workloads.Spec2006.all

(* -------------------- lint: overflow-window split ------------------- *)

(* Regression: each pointer slot is a victim of its nearest preceding
   opener only. Two openers used to double-report everything behind the
   second one. *)
let test_window_nearest_opener () =
  let src =
    {|
int buf1[4];
int *p1;
int buf2[4];
int *p2;
int main(void) {
  buf1[0] = 1;
  buf2[0] = 2;
  p1 = &buf1[0];
  p2 = &buf2[0];
  return 0;
}
|}
  in
  let windows =
    List.filter_map
      (fun (f : Finding.t) ->
        match f.kind with
        | Finding.Overflow_window { opener; victims } -> Some (opener, victims)
        | _ -> None)
      (lint_src src)
  in
  checki "two windows, one per opener" 2 (List.length windows);
  let victims_of opener =
    match List.assoc_opt opener windows with
    | Some v -> v
    | None -> Alcotest.failf "no window for %s" opener
  in
  Alcotest.(check (list string)) "buf1 claims only p1" [ "p1" ]
    (victims_of "buf1");
  Alcotest.(check (list string)) "buf2 claims only p2" [ "p2" ]
    (victims_of "buf2");
  let mentions =
    List.length
      (List.filter (fun (_, vs) -> List.mem "p2" vs) windows)
  in
  checki "p2 reported exactly once" 1 mentions

let test_window_nearest_opener_struct () =
  let src =
    {|
struct two_windows {
  int a[4];
  int *pa;
  int b[4];
  int *pb;
};
struct two_windows g;
int main(void) {
  g.a[0] = 1;
  g.pa = &g.a[0];
  g.pb = &g.b[0];
  return 0;
}
|}
  in
  let windows =
    List.filter_map
      (fun (f : Finding.t) ->
        match f.kind with
        | Finding.Overflow_window { opener; victims } -> Some (opener, victims)
        | _ -> None)
      (lint_src src)
  in
  let struct_windows =
    List.filter (fun (o, _) -> String.length o > 4 && String.sub o 0 4 = "two_")
      windows
  in
  checki "two struct windows" 2 (List.length struct_windows);
  List.iter
    (fun (opener, victims) ->
      checki (opener ^ " claims exactly one victim") 1 (List.length victims))
    struct_windows

(* -------------------- elision: prover bookkeeping ------------------- *)

let test_summary_partition () =
  (* safe + sum(must-check tallies) = candidates, on every workload. *)
  List.iter
    (fun (w : Rsti_workloads.Workload.t) ->
      let m, anal = analyze w.source in
      let e = Elide.analyze anal m in
      let s = Elide.summary e in
      let tallied = List.fold_left (fun acc (_, n) -> acc + n) 0 s.reasons in
      checki (w.name ^ " partition") s.candidates (s.safe + tallied))
    Rsti_workloads.Spec2006.all

let test_elision_fires_on_pointer_light_kernels () =
  (* lbm and namd route their arrays through swap pointers the prover
     can discharge: the instrumenter must actually drop sites there. *)
  List.iter
    (fun name ->
      let w =
        List.find
          (fun (w : Rsti_workloads.Workload.t) -> w.name = name)
          Rsti_workloads.Spec2006.all
      in
      let a = Pipeline.(analyze (compile (source ~file:"t.c" w.source))) in
      let elide_config =
        { Pipeline.default with Pipeline.elision = Elide.Syntactic }
      in
      let i = Pipeline.instrument ~config:elide_config RT.Stwc a in
      checkb (name ^ " elides sites") true
        ((Pipeline.counts i).Rsti_rsti.Instrument.elided > 0))
    [ "lbm"; "namd" ]

let test_code_pointers_never_elided () =
  let src =
    {|
extern int printf(const char *fmt, ...);
int hello(int x) { return x + 1; }
int (*handler)(int);
int main(void) {
  handler = hello;
  printf("%d\n", handler(41));
  return 0;
}
|}
  in
  let m, anal = analyze src in
  let e = Elide.analyze anal m in
  List.iter
    (fun (si : Rsti_sti.Analysis.slot_info) ->
      if Rsti_minic.Ctype.is_code_pointer si.sty then
        checkb "code pointer stays checked" false (Elide.elide e si.slot))
    (Rsti_sti.Analysis.pointer_vars anal)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_lint_deterministic;
    Alcotest.test_case "lint: catalog coverage (>=5 kinds, all victims)"
      `Quick test_catalog_coverage;
    Alcotest.test_case "lint: findings carry locations" `Quick
      test_lint_locations;
    Alcotest.test_case "lint: SARIF document well-formed" `Quick
      test_lint_sarif;
    Alcotest.test_case "lint: attack-surface rules are opt-in" `Quick
      test_attack_surface_opt_in;
    Alcotest.test_case "lint: scope rules fire on the leaky frame" `Quick
      test_lint_scope_rules_positive;
    Alcotest.test_case "lint: scope rules silent on downward pass" `Quick
      test_lint_scope_rules_negative;
    Alcotest.test_case "lint: dataflow findings SARIF round-trip" `Quick
      test_dataflow_findings_sarif_roundtrip;
    QCheck_alcotest.to_alcotest prop_elide_preserves_verdicts;
    QCheck_alcotest.to_alcotest prop_elide_pt_preserves_verdicts;
    QCheck_alcotest.to_alcotest prop_elide_cs_preserves_verdicts;
    QCheck_alcotest.to_alcotest prop_elide_sound_monotone;
    Alcotest.test_case "elide: Table 1 still detected" `Slow
      test_table1_detected_under_elision;
    Alcotest.test_case "elide: Table 1 still detected (points-to)" `Slow
      test_table1_detected_under_pt_elision;
    Alcotest.test_case "elide: Table 1 still detected (context)" `Slow
      test_table1_detected_under_cs_elision;
    Alcotest.test_case "elide: sound-monotone on SPEC2006" `Quick
      test_monotone_on_spec2006;
    Alcotest.test_case "lint: window per nearest opener (globals)" `Quick
      test_window_nearest_opener;
    Alcotest.test_case "lint: window per nearest opener (struct)" `Quick
      test_window_nearest_opener_struct;
    Alcotest.test_case "elide: summary partitions candidates" `Quick
      test_summary_partition;
    Alcotest.test_case "elide: fires on lbm/namd" `Quick
      test_elision_fires_on_pointer_light_kernels;
    Alcotest.test_case "elide: code pointers kept" `Quick
      test_code_pointers_never_elided;
  ]

module RT = Rsti_sti.Rsti_type
module Elide = Rsti_staticcheck.Elide
module Observe = Rsti_observe.Observe

(* Stage spans carry just enough attrs to read a trace: the file for
   frontend stages, file x mechanism for the per-mechanism ones. The
   attr lists are built only when recording is on, so the disabled path
   costs one flag load per stage. *)
let stage_span name (attrs : unit -> (string * string) list) f =
  if Observe.enabled () then Observe.Span.with_ ~attrs:(attrs ()) name f
  else f ()

let c_reprices = Observe.Metrics.counter "cache.outcome.reprices"

type config = {
  costs : Rsti_machine.Cost.t;
  elision : Elide.mode;
  validate : bool;
  mechanisms : RT.mechanism list;
  cache : bool;
  jobs : int option;
}

let default =
  {
    costs = Rsti_machine.Cost.default;
    elision = Elide.Off;
    validate = false;
    mechanisms = RT.all_mechanisms;
    cache = true;
    jobs = None;
  }

exception Validation_failed of Rsti_dataflow.Validate.report

type source = { file : string; text : string }
type compiled = { src : source; modul : Rsti_ir.Ir.modul }
type analyzed = { comp : compiled; anal : Rsti_sti.Analysis.t }

type instrumented = {
  stage : analyzed;
  mech : RT.mechanism;
  elision : Elide.mode;
  result : Rsti_rsti.Instrument.result;
}

let source ?(file = "<memory>.c") text = { file; text }

(* Each stage consults the cache exactly when [config.cache] is set; the
   cache key is the stage value's source, so a stage value built with
   cache off composes with later stages run with cache on. *)

let compile ?(config = default) (s : source) =
  stage_span "pipeline.compile" (fun () -> [ ("file", s.file) ]) @@ fun () ->
  let modul =
    if config.cache then Cache.compiled ~file:s.file s.text
    else Rsti_ir.Lower.compile ~file:s.file s.text
  in
  { src = s; modul }

let analyze ?(config = default) (c : compiled) =
  stage_span "pipeline.analyze" (fun () -> [ ("file", c.src.file) ])
  @@ fun () ->
  let anal =
    if config.cache then Cache.analysis ~file:c.src.file c.src.text
    else Rsti_sti.Analysis.analyze c.modul
  in
  { comp = c; anal }

let points_to ?(config = default)
    ?(mode = Rsti_dataflow.Points_to.Insensitive) (c : compiled) =
  stage_span "pipeline.points_to"
    (fun () ->
      [
        ("file", c.src.file);
        ("mode", Rsti_dataflow.Points_to.mode_to_string mode);
      ])
  @@ fun () ->
  if config.cache then Cache.points_to_mode ~file:c.src.file ~mode c.src.text
  else Rsti_dataflow.Points_to.analyze ~mode c.modul

let scope_escape ?(config = default)
    ?(mode = Rsti_dataflow.Points_to.Insensitive) (c : compiled) =
  stage_span "pipeline.scope_escape"
    (fun () ->
      [
        ("file", c.src.file);
        ("mode", Rsti_dataflow.Points_to.mode_to_string mode);
      ])
  @@ fun () ->
  if config.cache then Cache.scope ~file:c.src.file ~mode c.src.text
  else
    Rsti_dataflow.Scope_escape.analyze
      ~points_to:(Rsti_dataflow.Points_to.analyze ~mode c.modul)
      c.modul

(* The static substitution-attack-surface partition for one mechanism.
   [mode = None] is the unconfined (oracle) attacker model; [Some m]
   refines feasibility with points-to confinement and scope escape at
   that precision. Cached per (mechanism, mode). *)
let attack_surface ?(config = default) ?mode mech (a : analyzed) =
  stage_span "pipeline.attack_surface"
    (fun () ->
      [
        ("file", a.comp.src.file);
        ("mech", RT.mechanism_to_string mech);
        ( "mode",
          match mode with
          | None -> "oracle"
          | Some m -> Rsti_dataflow.Points_to.mode_to_string m );
      ])
  @@ fun () ->
  if config.cache then
    Cache.equiv ~file:a.comp.src.file ~mode mech a.comp.src.text
  else
    match mode with
    | None -> Rsti_dataflow.Equiv.analyze a.anal a.comp.modul mech
    | Some pt_mode ->
        let pt = points_to ~config ~mode:pt_mode a.comp in
        let sc = scope_escape ~config ~mode:pt_mode a.comp in
        Rsti_dataflow.Equiv.analyze ~points_to:pt ~scope:sc a.anal a.comp.modul
          mech

let elide_pred ?(config = default) ?(mode = Elide.Syntactic) (a : analyzed) =
  match mode with
  | Elide.Off -> fun _ -> false
  | Elide.Syntactic ->
      if config.cache then Cache.elide ~file:a.comp.src.file a.comp.src.text
      else Elide.elide (Elide.analyze a.anal a.comp.modul)
  | Elide.With_points_to ->
      if config.cache then Cache.elide_pt ~file:a.comp.src.file a.comp.src.text
      else
        let pt = points_to ~config a.comp in
        Elide.elide (Elide.analyze ~points_to:pt a.anal a.comp.modul)
  | Elide.With_context k ->
      if config.cache then
        Cache.elide_ctx ~file:a.comp.src.file ~k a.comp.src.text
      else
        let pmode = Rsti_dataflow.Points_to.Cloning k in
        let pt = points_to ~config ~mode:pmode a.comp in
        let scope = scope_escape ~config ~mode:pmode a.comp in
        Elide.elide (Elide.analyze ~points_to:pt ~scope a.anal a.comp.modul)

(* The PAC-typestate validator over an instrumented module: re-checks
   the rewriter's output against the signed-at-rest discipline. *)
let validation ?(config = default) (i : instrumented) =
  let s = i.stage.comp.src in
  stage_span "pipeline.validate"
    (fun () ->
      [ ("file", s.file); ("mech", RT.mechanism_to_string i.mech) ])
  @@ fun () ->
  if config.cache then
    Cache.validation ~file:s.file ~elision:i.elision i.mech s.text
  else
    Rsti_dataflow.Validate.check i.stage.anal i.mech
      i.result.Rsti_rsti.Instrument.modul

let instrument ?(config = default) mech (a : analyzed) =
  (* Parts/Nop model toolchains without the whole-program proof; the
     elision stage key stays Off for them so the cache never splits. *)
  let elision =
    if mech = RT.Parts || mech = RT.Nop then Elide.Off else config.elision
  in
  let result =
    stage_span "pipeline.instrument"
      (fun () ->
        [
          ("file", a.comp.src.file);
          ("mech", RT.mechanism_to_string mech);
          ("elision", Elide.mode_to_string elision);
        ])
    @@ fun () ->
    if config.cache then
      Cache.instrumented ~file:a.comp.src.file ~elision mech a.comp.src.text
    else
      let pred = Elide.pred elision a.anal a.comp.modul in
      Rsti_rsti.Instrument.instrument ?elide:pred mech a.anal a.comp.modul
  in
  let i = { stage = a; mech; elision; result } in
  if config.validate then begin
    let rep = validation ~config i in
    if not (Rsti_dataflow.Validate.ok rep) then raise (Validation_failed rep)
  end;
  i

let instrument_all ?(config = default) (a : analyzed) =
  List.map (fun mech -> instrument ~config mech a) config.mechanisms

(* Run outcomes are memoizable exactly when no attack closure is
   installed: the machine is deterministic, so the outcome is a pure
   function of the module's source digest, the cost record, and the
   machine knobs. Only the base ISA prices go into the key — the
   instrumentation prices (pac, strip, pp, pac_spill) map 1:1 onto
   outcome counters, so a hit under different ones is re-priced
   ({!Rsti_machine.Interp.reprice}) instead of re-simulated. That is
   what makes the PA-cost ablation cheap: one simulation per
   (workload, mechanism) serves the whole sweep. *)
let cost_key (c : Rsti_machine.Cost.t) =
  Printf.sprintf "%d.%d.%d.%d.%d.%d.%d" c.Rsti_machine.Cost.alu
    c.Rsti_machine.Cost.load c.Rsti_machine.Cost.store c.Rsti_machine.Cost.gep
    c.Rsti_machine.Cost.branch c.Rsti_machine.Cost.call
    c.Rsti_machine.Cost.extern_call

let knobs_key ?seed ?fpac ?cfi ?backend ?entry () =
  String.concat "|"
    [
      (match seed with None -> "-" | Some s -> Int64.to_string s);
      (match fpac with None -> "-" | Some b -> string_of_bool b);
      (match cfi with None -> "-" | Some b -> string_of_bool b);
      (match backend with None | Some `Pac -> "pac" | Some `Shadow_mac -> "mac");
      Option.value entry ~default:"main";
    ]

let cached_run ~key ~costs ~backend exec =
  let o, priced = Cache.outcome ~key (fun () -> (exec (), costs)) in
  if priced == costs || priced = costs then o
  else begin
    Observe.Metrics.incr c_reprices;
    Rsti_machine.Interp.reprice ~from:priced ~to_:costs
      ~pac_spill_charged:(backend <> Some `Shadow_mac)
      o
  end

let run ?(config = default) ?(attacks = []) ?seed ?fpac ?backend ?entry
    ?(profile = false) ?(flight = 0) (i : instrumented) =
  stage_span "pipeline.run"
    (fun () ->
      [
        ("file", i.stage.comp.src.file);
        ("mech", RT.mechanism_to_string i.mech);
      ])
  @@ fun () ->
  let exec () =
    let vm =
      Rsti_machine.Interp.create ~costs:config.costs ?seed ?fpac ?backend
        ~profile ~flight
        ~pp_table:i.result.Rsti_rsti.Instrument.pp_table
        i.result.Rsti_rsti.Instrument.modul
    in
    Rsti_machine.Interp.run ~attacks ?entry vm
  in
  if (not config.cache) || attacks <> [] then exec ()
  else
    let s = i.stage.comp.src in
    let key =
      String.concat "|"
        [
          "run";
          Cache.source_key ~file:s.file s.text;
          RT.mechanism_to_string i.mech;
          Elide.mode_to_string i.elision;
          cost_key config.costs;
          knobs_key ?seed ?fpac ?backend ?entry ();
          (* a profiled outcome carries sites an unprofiled one lacks;
             likewise a flight-recorded one carries incidents *)
          (if profile then "prof" else "-");
          (if flight > 0 then "fl" ^ string_of_int flight else "-");
        ]
    in
    cached_run ~key ~costs:config.costs ~backend exec

let run_baseline ?(config = default) ?(attacks = []) ?seed ?fpac ?cfi ?backend
    ?entry ?(profile = false) ?(flight = 0) (c : compiled) =
  stage_span "pipeline.run_baseline" (fun () -> [ ("file", c.src.file) ])
  @@ fun () ->
  let exec () =
    let vm =
      Rsti_machine.Interp.create ~costs:config.costs ?seed ?fpac ?cfi ?backend
        ~profile ~flight c.modul
    in
    Rsti_machine.Interp.run ~attacks ?entry vm
  in
  if (not config.cache) || attacks <> [] then exec ()
  else
    (* An uninstrumented module executes no PA/xpac/pp instructions, so
       on top of the key's price-blindness the whole PA-cost ablation
       shares one baseline run per workload (re-pricing it is the
       identity: every instrumentation counter is zero). *)
    let key =
      String.concat "|"
        [
          "base";
          Cache.source_key ~file:c.src.file c.src.text;
          cost_key config.costs;
          knobs_key ?seed ?fpac ?cfi ?backend ?entry ();
          (if profile then "prof" else "-");
          (if flight > 0 then "fl" ^ string_of_int flight else "-");
        ]
    in
    cached_run ~key ~costs:config.costs ~backend exec

let file (s : source) = s.file
let text (s : source) = s.text
let source_of_compiled (c : compiled) = c.src
let ir (c : compiled) = c.modul
let compiled_of_analyzed (a : analyzed) = a.comp
let analysis (a : analyzed) = a.anal
let analyzed_ir (a : analyzed) = a.comp.modul
let analyzed_of_instrumented (i : instrumented) = i.stage
let mechanism (i : instrumented) = i.mech
let elision (i : instrumented) = i.elision
let elided (i : instrumented) = i.elision <> Elide.Off
let result (i : instrumented) = i.result
let instrumented_ir (i : instrumented) = i.result.Rsti_rsti.Instrument.modul
let counts (i : instrumented) = i.result.Rsti_rsti.Instrument.counts

module RT = Rsti_sti.Rsti_type
module Elide = Rsti_staticcheck.Elide
module Observe = Rsti_observe.Observe

type stats = { hits : int; misses : int; duplicated : int }

(* Per-stage counters live in the observability registry
   (cache.<stage>.{hits,misses,duplicated}); the cache holds direct
   references so a bump is one lock-free atomic increment. Counting
   discipline: a lookup that finds the artifact is a hit; a lookup that
   computed and installed it is a miss; a lookup that computed but lost
   the install race counts as a hit *and* a duplicated — so hits/misses
   are deterministic across job counts (they match the serial schedule)
   and [duplicated] surfaces exactly the racing recomputations that used
   to be invisible. *)
type stage = {
  sg_name : string;
  sg_hits : Observe.Metrics.counter;
  sg_misses : Observe.Metrics.counter;
  sg_dup : Observe.Metrics.counter;
}

let stage name =
  {
    sg_name = name;
    sg_hits = Observe.Metrics.counter ("cache." ^ name ^ ".hits");
    sg_misses = Observe.Metrics.counter ("cache." ^ name ^ ".misses");
    sg_dup = Observe.Metrics.counter ("cache." ^ name ^ ".duplicated");
  }

let st_compile = stage "compile"
let st_analysis = stage "analysis"
let st_points_to = stage "points_to"
let st_points_to_cs = stage "points_to_cs"
let st_scope = stage "scope_escape"
let st_elide = stage "elide"
let st_elide_pt = stage "elide_pt"
let st_elide_ctx = stage "elide_ctx"
let st_instrument = stage "instrument"
let st_validate = stage "validate"
let st_outcome = stage "outcome"
let st_equiv = stage "attack_surface"
let st_incident = stage "incident"

let stages =
  [
    st_compile; st_analysis; st_points_to; st_points_to_cs; st_scope;
    st_elide; st_elide_pt; st_elide_ctx; st_instrument; st_validate;
    st_outcome; st_equiv; st_incident;
  ]

let span st = Observe.Span.enter ("cache." ^ st.sg_name)

let hit st sp =
  Observe.Metrics.incr st.sg_hits;
  Observe.Span.add_attr sp "result" "hit"

let miss st sp =
  Observe.Metrics.incr st.sg_misses;
  Observe.Span.add_attr sp "result" "miss"

let duplicated st sp =
  Observe.Metrics.incr st.sg_hits;
  Observe.Metrics.incr st.sg_dup;
  Observe.Span.add_attr sp "result" "duplicated"

type entry = {
  modul : Rsti_ir.Ir.modul;
  mutable analysis : Rsti_sti.Analysis.t option;
  mutable points_to :
    (Rsti_dataflow.Points_to.mode * Rsti_dataflow.Points_to.t) list;
      (* one solve per precision mode (k is part of the mode key) *)
  mutable scope :
    (Rsti_dataflow.Points_to.mode * Rsti_dataflow.Scope_escape.t) list;
  mutable elide_pred : (Rsti_ir.Ir.slot -> bool) option;
  mutable elide_pred_pt : (Rsti_ir.Ir.slot -> bool) option;
  mutable elide_pred_ctx : (int * (Rsti_ir.Ir.slot -> bool)) list;
      (* context-mode predicates, keyed by k *)
  mutable instrumented :
    ((RT.mechanism * Elide.mode) * Rsti_rsti.Instrument.result) list;
  mutable validated :
    ((RT.mechanism * Elide.mode) * Rsti_dataflow.Validate.report) list;
  mutable equiv :
    ((RT.mechanism * Rsti_dataflow.Points_to.mode option)
    * Rsti_dataflow.Equiv.result)
    list;
      (* attack-surface partitions, keyed per (mechanism, confinement
         precision); [None] is the unconfined oracle model *)
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let outcomes :
    (string, Rsti_machine.Interp.outcome * Rsti_machine.Cost.t) Hashtbl.t =
  Hashtbl.create 64
(* Serialized incident-extraction artifacts, keyed like {!outcome} by a
   caller-assembled string. Values are opaque payload strings (rendered
   JSON) because the incident types live above this library. *)
let incidents_tbl : (string, string) Hashtbl.t = Hashtbl.create 64
let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Hashtbl.reset outcomes;
  Hashtbl.reset incidents_tbl;
  Mutex.unlock lock;
  List.iter
    (fun st ->
      Observe.Metrics.set st.sg_hits 0;
      Observe.Metrics.set st.sg_misses 0;
      Observe.Metrics.set st.sg_dup 0)
    stages

let stage_stats () =
  List.map
    (fun st ->
      ( st.sg_name,
        {
          hits = Observe.Metrics.value st.sg_hits;
          misses = Observe.Metrics.value st.sg_misses;
          duplicated = Observe.Metrics.value st.sg_dup;
        } ))
    stages

let stats () =
  List.fold_left
    (fun acc (_, s) ->
      {
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        duplicated = acc.duplicated + s.duplicated;
      })
    { hits = 0; misses = 0; duplicated = 0 }
    (stage_stats ())

let key ~file text = Digest.to_hex (Digest.string (file ^ "\x00" ^ text))
let source_key = key

(* Find the entry for a source, compiling on a miss. The compile runs
   outside the lock; if two domains miss the same key at once the second
   insert is dropped in favour of the first (both modules are equal —
   the stage is deterministic) and the loser counts as duplicated.
   [count] is false when the lookup is a sub-step of a later stage, so
   the compile stage counts each access once. *)
let entry ?(count = true) ~file text =
  let k = key ~file text in
  let sp = if count then span st_compile else Observe.Span.none in
  Mutex.lock lock;
  let found = Hashtbl.find_opt table k in
  Mutex.unlock lock;
  let e =
    match found with
    | Some e ->
        if count then hit st_compile sp;
        e
    | None ->
        let e =
          {
            modul = Rsti_ir.Lower.compile ~file text;
            analysis = None;
            points_to = [];
            scope = [];
            elide_pred = None;
            elide_pred_pt = None;
            elide_pred_ctx = [];
            instrumented = [];
            validated = [];
            equiv = [];
          }
        in
        Mutex.lock lock;
        let winner = Hashtbl.find_opt table k in
        let e =
          match winner with
          | Some w -> w
          | None ->
              Hashtbl.replace table k e;
              e
        in
        Mutex.unlock lock;
        if count then
          (match winner with
          | Some _ -> duplicated st_compile sp
          | None -> miss st_compile sp);
        e
  in
  Observe.Span.exit sp;
  e

let compiled ~file text =
  if not (enabled ()) then Rsti_ir.Lower.compile ~file text
  else (entry ~file text).modul

(* Attack-free runs of a deterministic machine are pure functions of the
   caller-assembled [key] (source digest x base-ISA prices x machine
   knobs), so their outcomes memoize like any other artifact. The entry
   remembers the full cost record the run was priced under, so a hit
   whose instrumentation prices differ can be re-priced by the caller
   instead of re-simulated ({!Rsti_machine.Interp.reprice}). The compute
   runs outside the lock; first writer wins on a racing miss. *)
let outcome ~key:k compute =
  if not (enabled ()) then compute ()
  else begin
    let sp = span st_outcome in
    Mutex.lock lock;
    let found = Hashtbl.find_opt outcomes k in
    Mutex.unlock lock;
    let o =
      match found with
      | Some o ->
          hit st_outcome sp;
          o
      | None ->
          let o = compute () in
          Mutex.lock lock;
          let winner = Hashtbl.find_opt outcomes k in
          let o =
            match winner with
            | Some w -> w
            | None ->
                Hashtbl.replace outcomes k o;
                o
          in
          Mutex.unlock lock;
          (match winner with
          | Some _ -> duplicated st_outcome sp
          | None -> miss st_outcome sp);
          o
    in
    Observe.Span.exit sp;
    o
  end

(* Incident extraction (replaying an attack scenario with the flight
   recorder on and correlating the incident against the static class
   partition) is deterministic like every stage, so its serialized
   artifact memoizes under the caller's key with the same first-writer-
   wins discipline as {!outcome}. *)
let incident ~key:k compute =
  if not (enabled ()) then compute ()
  else begin
    let sp = span st_incident in
    Mutex.lock lock;
    let found = Hashtbl.find_opt incidents_tbl k in
    Mutex.unlock lock;
    let v =
      match found with
      | Some v ->
          hit st_incident sp;
          v
      | None ->
          let v = compute () in
          Mutex.lock lock;
          let winner = Hashtbl.find_opt incidents_tbl k in
          let v =
            match winner with
            | Some w -> w
            | None ->
                Hashtbl.replace incidents_tbl k v;
                v
          in
          Mutex.unlock lock;
          (match winner with
          | Some _ -> duplicated st_incident sp
          | None -> miss st_incident sp);
          v
    in
    Observe.Span.exit sp;
    v
  end

(* Fill a memoized field of an entry. The compute runs outside the lock
   (it can take seconds); a racing duplicate is resolved in favour of
   the first writer. *)
let memo_field ~stage:st ~get ~set ~compute e =
  let sp = span st in
  Mutex.lock lock;
  let found = get e in
  Mutex.unlock lock;
  let v =
    match found with
    | Some v ->
        hit st sp;
        v
    | None ->
        let v = compute e in
        Mutex.lock lock;
        let winner = get e in
        let v = match winner with Some w -> w | None -> set e v; v in
        Mutex.unlock lock;
        (match winner with
        | Some _ -> duplicated st sp
        | None -> miss st sp);
        v
  in
  Observe.Span.exit sp;
  v

(* Memoize one slot of an entry's association-list field; same
   first-writer-wins discipline as {!memo_field}. *)
let memo_assoc ~stage:st ~get ~add ~key:k ~compute e =
  let sp = span st in
  Mutex.lock lock;
  let found = List.assoc_opt k (get e) in
  Mutex.unlock lock;
  let v =
    match found with
    | Some v ->
        hit st sp;
        v
    | None ->
        let v = compute e in
        Mutex.lock lock;
        let winner = List.assoc_opt k (get e) in
        let v =
          match winner with
          | Some w -> w
          | None ->
              add e k v;
              v
        in
        Mutex.unlock lock;
        (match winner with
        | Some _ -> duplicated st sp
        | None -> miss st sp);
        v
  in
  Observe.Span.exit sp;
  v

let analysis ~file text =
  if not (enabled ()) then
    Rsti_sti.Analysis.analyze (Rsti_ir.Lower.compile ~file text)
  else
    memo_field ~stage:st_analysis
      ~get:(fun e -> e.analysis)
      ~set:(fun e v -> e.analysis <- Some v)
      ~compute:(fun e -> Rsti_sti.Analysis.analyze e.modul)
      (entry ~count:false ~file text)

let elide_of anal modul =
  Rsti_staticcheck.Elide.elide (Rsti_staticcheck.Elide.analyze anal modul)

(* Points-to solves are memoized per precision mode — [Cloning k]
   carries its k in the key, so each (k, mode) pair is one stage slot.
   The insensitive and cloned solves report under separate stage
   counters. *)
let points_to_mode ~file ~mode text =
  if not (enabled ()) then
    Rsti_dataflow.Points_to.analyze ~mode (Rsti_ir.Lower.compile ~file text)
  else
    let st =
      match mode with
      | Rsti_dataflow.Points_to.Insensitive -> st_points_to
      | Rsti_dataflow.Points_to.Cloning _ -> st_points_to_cs
    in
    memo_assoc ~stage:st
      ~get:(fun e -> e.points_to)
      ~add:(fun e k v -> e.points_to <- (k, v) :: e.points_to)
      ~key:mode
      ~compute:(fun e -> Rsti_dataflow.Points_to.analyze ~mode e.modul)
      (entry ~count:false ~file text)

let points_to ~file text =
  points_to_mode ~file ~mode:Rsti_dataflow.Points_to.Insensitive text

let scope ~file ~mode text =
  if not (enabled ()) then
    let m = Rsti_ir.Lower.compile ~file text in
    Rsti_dataflow.Scope_escape.analyze
      ~points_to:(Rsti_dataflow.Points_to.analyze ~mode m)
      m
  else
    let pt = points_to_mode ~file ~mode text in
    memo_assoc ~stage:st_scope
      ~get:(fun e -> e.scope)
      ~add:(fun e k v -> e.scope <- (k, v) :: e.scope)
      ~key:mode
      ~compute:(fun e -> Rsti_dataflow.Scope_escape.analyze ~points_to:pt e.modul)
      (entry ~count:false ~file text)

let elide ~file text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    elide_of (Rsti_sti.Analysis.analyze m) m
  end
  else begin
    let anal = analysis ~file text in
    memo_field ~stage:st_elide
      ~get:(fun e -> e.elide_pred)
      ~set:(fun e v -> e.elide_pred <- Some v)
      ~compute:(fun e -> elide_of anal e.modul)
      (entry ~count:false ~file text)
  end

let elide_pt ~file text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pt = Rsti_dataflow.Points_to.analyze m in
    Elide.elide (Elide.analyze ~points_to:pt anal m)
  end
  else begin
    let anal = analysis ~file text in
    let pt = points_to ~file text in
    memo_field ~stage:st_elide_pt
      ~get:(fun e -> e.elide_pred_pt)
      ~set:(fun e v -> e.elide_pred_pt <- Some v)
      ~compute:(fun e -> Elide.elide (Elide.analyze ~points_to:pt anal e.modul))
      (entry ~count:false ~file text)
  end

let elide_ctx ~file ~k text =
  let mode = Rsti_dataflow.Points_to.Cloning k in
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pt = Rsti_dataflow.Points_to.analyze ~mode m in
    let scope = Rsti_dataflow.Scope_escape.analyze ~points_to:pt m in
    Elide.elide (Elide.analyze ~points_to:pt ~scope anal m)
  end
  else begin
    let anal = analysis ~file text in
    let pt = points_to_mode ~file ~mode text in
    let sc = scope ~file ~mode text in
    memo_assoc ~stage:st_elide_ctx
      ~get:(fun e -> e.elide_pred_ctx)
      ~add:(fun e k v -> e.elide_pred_ctx <- (k, v) :: e.elide_pred_ctx)
      ~key:k
      ~compute:(fun e ->
        Elide.elide (Elide.analyze ~points_to:pt ~scope:sc anal e.modul))
      (entry ~count:false ~file text)
  end

(* The elision predicate at a precision; [Off] means "no predicate" and
   instruments every candidate site. *)
let elide_pred ~file ~mode text =
  match mode with
  | Elide.Off -> None
  | Elide.Syntactic -> Some (elide ~file text)
  | Elide.With_points_to -> Some (elide_pt ~file text)
  | Elide.With_context k -> Some (elide_ctx ~file ~k text)

let instrumented ~file ~elision mech text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pred = Rsti_staticcheck.Elide.pred elision anal m in
    Rsti_rsti.Instrument.instrument ?elide:pred mech anal m
  end
  else begin
    let anal = analysis ~file text in
    let pred = elide_pred ~file ~mode:elision text in
    memo_assoc ~stage:st_instrument
      ~get:(fun e -> e.instrumented)
      ~add:(fun e k r -> e.instrumented <- (k, r) :: e.instrumented)
      ~key:(mech, elision)
      ~compute:(fun e ->
        Rsti_rsti.Instrument.instrument ?elide:pred mech anal e.modul)
      (entry ~count:false ~file text)
  end

(* Attack-surface partitions ({!Rsti_dataflow.Equiv}), keyed per
   (mechanism, points-to precision). [mode = None] computes the paper's
   unconfined attacker model (what the dynamic oracle cross-validates);
   [Some mode] refines feasibility with points-to confinement and scope
   escape at that precision. *)
let equiv ~file ~mode mech text =
  let compute anal m =
    match mode with
    | None -> Rsti_dataflow.Equiv.analyze anal m mech
    | Some pt_mode ->
        let pt = Rsti_dataflow.Points_to.analyze ~mode:pt_mode m in
        let sc = Rsti_dataflow.Scope_escape.analyze ~points_to:pt m in
        Rsti_dataflow.Equiv.analyze ~points_to:pt ~scope:sc anal m mech
  in
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    compute (Rsti_sti.Analysis.analyze m) m
  end
  else begin
    let anal = analysis ~file text in
    let compute_cached e =
      match mode with
      | None -> Rsti_dataflow.Equiv.analyze anal e.modul mech
      | Some pt_mode ->
          let pt = points_to_mode ~file ~mode:pt_mode text in
          let sc = scope ~file ~mode:pt_mode text in
          Rsti_dataflow.Equiv.analyze ~points_to:pt ~scope:sc anal e.modul mech
    in
    memo_assoc ~stage:st_equiv
      ~get:(fun e -> e.equiv)
      ~add:(fun e k v -> e.equiv <- (k, v) :: e.equiv)
      ~key:(mech, mode)
      ~compute:compute_cached
      (entry ~count:false ~file text)
  end

let validation ~file ~elision mech text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pred = Rsti_staticcheck.Elide.pred elision anal m in
    let r = Rsti_rsti.Instrument.instrument ?elide:pred mech anal m in
    Rsti_dataflow.Validate.check anal mech r.Rsti_rsti.Instrument.modul
  end
  else begin
    let anal = analysis ~file text in
    let r = instrumented ~file ~elision mech text in
    memo_assoc ~stage:st_validate
      ~get:(fun e -> e.validated)
      ~add:(fun e k v -> e.validated <- (k, v) :: e.validated)
      ~key:(mech, elision)
      ~compute:(fun _ ->
        Rsti_dataflow.Validate.check anal mech r.Rsti_rsti.Instrument.modul)
      (entry ~count:false ~file text)
  end

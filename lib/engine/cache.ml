module RT = Rsti_sti.Rsti_type
module Elide = Rsti_staticcheck.Elide

type stats = { hits : int; misses : int }

type entry = {
  modul : Rsti_ir.Ir.modul;
  mutable analysis : Rsti_sti.Analysis.t option;
  mutable points_to : Rsti_dataflow.Points_to.t option;
  mutable elide_pred : (Rsti_ir.Ir.slot -> bool) option;
  mutable elide_pred_pt : (Rsti_ir.Ir.slot -> bool) option;
  mutable instrumented :
    ((RT.mechanism * Elide.mode) * Rsti_rsti.Instrument.result) list;
  mutable validated :
    ((RT.mechanism * Elide.mode) * Rsti_dataflow.Validate.report) list;
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let outcomes :
    (string, Rsti_machine.Interp.outcome * Rsti_machine.Cost.t) Hashtbl.t =
  Hashtbl.create 64
let enabled_flag = Atomic.make true
let hits = Atomic.make 0
let misses = Atomic.make 0

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Hashtbl.reset outcomes;
  Atomic.set hits 0;
  Atomic.set misses 0;
  Mutex.unlock lock

let stats () = { hits = Atomic.get hits; misses = Atomic.get misses }

let key ~file text = Digest.to_hex (Digest.string (file ^ "\x00" ^ text))
let source_key = key

let hit () = Atomic.incr hits
let miss () = Atomic.incr misses

(* Find the entry for a source, compiling on a miss. The compile runs
   outside the lock; if two domains miss the same key at once the second
   insert is dropped in favour of the first (both modules are equal —
   the stage is deterministic). [count] is false when the lookup is a
   sub-step of a later stage, so {!stats} counts each stage access
   once. *)
let entry ?(count = true) ~file text =
  let k = key ~file text in
  Mutex.lock lock;
  let found = Hashtbl.find_opt table k in
  Mutex.unlock lock;
  match found with
  | Some e ->
      if count then hit ();
      e
  | None ->
      if count then miss ();
      let e =
        {
          modul = Rsti_ir.Lower.compile ~file text;
          analysis = None;
          points_to = None;
          elide_pred = None;
          elide_pred_pt = None;
          instrumented = [];
          validated = [];
        }
      in
      Mutex.lock lock;
      let e =
        match Hashtbl.find_opt table k with
        | Some winner -> winner
        | None ->
            Hashtbl.replace table k e;
            e
      in
      Mutex.unlock lock;
      e

let compiled ~file text =
  if not (enabled ()) then Rsti_ir.Lower.compile ~file text
  else (entry ~file text).modul

(* Attack-free runs of a deterministic machine are pure functions of the
   caller-assembled [key] (source digest x base-ISA prices x machine
   knobs), so their outcomes memoize like any other artifact. The entry
   remembers the full cost record the run was priced under, so a hit
   whose instrumentation prices differ can be re-priced by the caller
   instead of re-simulated ({!Rsti_machine.Interp.reprice}). The compute
   runs outside the lock; first writer wins on a racing miss. *)
let outcome ~key:k compute =
  if not (enabled ()) then compute ()
  else begin
    Mutex.lock lock;
    let found = Hashtbl.find_opt outcomes k in
    Mutex.unlock lock;
    match found with
    | Some o ->
        hit ();
        o
    | None ->
        miss ();
        let o = compute () in
        Mutex.lock lock;
        let o =
          match Hashtbl.find_opt outcomes k with
          | Some winner -> winner
          | None ->
              Hashtbl.replace outcomes k o;
              o
        in
        Mutex.unlock lock;
        o
  end

(* Fill a memoized field of an entry. The compute runs outside the lock
   (it can take seconds); a racing duplicate is resolved in favour of
   the first writer. *)
let memo_field ~get ~set ~compute e =
  Mutex.lock lock;
  let found = get e in
  Mutex.unlock lock;
  match found with
  | Some v ->
      hit ();
      v
  | None ->
      miss ();
      let v = compute e in
      Mutex.lock lock;
      let v = match get e with Some w -> w | None -> set e v; v in
      Mutex.unlock lock;
      v

let analysis ~file text =
  if not (enabled ()) then
    Rsti_sti.Analysis.analyze (Rsti_ir.Lower.compile ~file text)
  else
    memo_field
      ~get:(fun e -> e.analysis)
      ~set:(fun e v -> e.analysis <- Some v)
      ~compute:(fun e -> Rsti_sti.Analysis.analyze e.modul)
      (entry ~count:false ~file text)

let elide_of anal modul =
  Rsti_staticcheck.Elide.elide (Rsti_staticcheck.Elide.analyze anal modul)

let points_to ~file text =
  if not (enabled ()) then
    Rsti_dataflow.Points_to.analyze (Rsti_ir.Lower.compile ~file text)
  else
    memo_field
      ~get:(fun e -> e.points_to)
      ~set:(fun e v -> e.points_to <- Some v)
      ~compute:(fun e -> Rsti_dataflow.Points_to.analyze e.modul)
      (entry ~count:false ~file text)

let elide ~file text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    elide_of (Rsti_sti.Analysis.analyze m) m
  end
  else begin
    let anal = analysis ~file text in
    memo_field
      ~get:(fun e -> e.elide_pred)
      ~set:(fun e v -> e.elide_pred <- Some v)
      ~compute:(fun e -> elide_of anal e.modul)
      (entry ~count:false ~file text)
  end

let elide_pt ~file text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pt = Rsti_dataflow.Points_to.analyze m in
    Elide.elide (Elide.analyze ~points_to:pt anal m)
  end
  else begin
    let anal = analysis ~file text in
    let pt = points_to ~file text in
    memo_field
      ~get:(fun e -> e.elide_pred_pt)
      ~set:(fun e v -> e.elide_pred_pt <- Some v)
      ~compute:(fun e -> Elide.elide (Elide.analyze ~points_to:pt anal e.modul))
      (entry ~count:false ~file text)
  end

(* The elision predicate at a precision; [Off] means "no predicate" and
   instruments every candidate site. *)
let elide_pred ~file ~mode text =
  match mode with
  | Elide.Off -> None
  | Elide.Syntactic -> Some (elide ~file text)
  | Elide.With_points_to -> Some (elide_pt ~file text)

(* Memoize one slot of an entry's association-list field; same
   first-writer-wins discipline as {!memo_field}. *)
let memo_assoc ~get ~add ~key:k ~compute e =
  Mutex.lock lock;
  let found = List.assoc_opt k (get e) in
  Mutex.unlock lock;
  match found with
  | Some v ->
      hit ();
      v
  | None ->
      miss ();
      let v = compute e in
      Mutex.lock lock;
      let v =
        match List.assoc_opt k (get e) with
        | Some winner -> winner
        | None ->
            add e k v;
            v
      in
      Mutex.unlock lock;
      v

let instrumented ~file ~elision mech text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pred = Rsti_staticcheck.Elide.pred elision anal m in
    Rsti_rsti.Instrument.instrument ?elide:pred mech anal m
  end
  else begin
    let anal = analysis ~file text in
    let pred = elide_pred ~file ~mode:elision text in
    memo_assoc
      ~get:(fun e -> e.instrumented)
      ~add:(fun e k r -> e.instrumented <- (k, r) :: e.instrumented)
      ~key:(mech, elision)
      ~compute:(fun e ->
        Rsti_rsti.Instrument.instrument ?elide:pred mech anal e.modul)
      (entry ~count:false ~file text)
  end

let validation ~file ~elision mech text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pred = Rsti_staticcheck.Elide.pred elision anal m in
    let r = Rsti_rsti.Instrument.instrument ?elide:pred mech anal m in
    Rsti_dataflow.Validate.check anal mech r.Rsti_rsti.Instrument.modul
  end
  else begin
    let anal = analysis ~file text in
    let r = instrumented ~file ~elision mech text in
    memo_assoc
      ~get:(fun e -> e.validated)
      ~add:(fun e k v -> e.validated <- (k, v) :: e.validated)
      ~key:(mech, elision)
      ~compute:(fun _ ->
        Rsti_dataflow.Validate.check anal mech r.Rsti_rsti.Instrument.modul)
      (entry ~count:false ~file text)
  end

module RT = Rsti_sti.Rsti_type

type stats = { hits : int; misses : int }

type entry = {
  modul : Rsti_ir.Ir.modul;
  mutable analysis : Rsti_sti.Analysis.t option;
  mutable elide_pred : (Rsti_ir.Ir.slot -> bool) option;
  mutable instrumented : ((RT.mechanism * bool) * Rsti_rsti.Instrument.result) list;
}

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let outcomes :
    (string, Rsti_machine.Interp.outcome * Rsti_machine.Cost.t) Hashtbl.t =
  Hashtbl.create 64
let enabled_flag = Atomic.make true
let hits = Atomic.make 0
let misses = Atomic.make 0

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Hashtbl.reset outcomes;
  Atomic.set hits 0;
  Atomic.set misses 0;
  Mutex.unlock lock

let stats () = { hits = Atomic.get hits; misses = Atomic.get misses }

let key ~file text = Digest.to_hex (Digest.string (file ^ "\x00" ^ text))
let source_key = key

let hit () = Atomic.incr hits
let miss () = Atomic.incr misses

(* Find the entry for a source, compiling on a miss. The compile runs
   outside the lock; if two domains miss the same key at once the second
   insert is dropped in favour of the first (both modules are equal —
   the stage is deterministic). [count] is false when the lookup is a
   sub-step of a later stage, so {!stats} counts each stage access
   once. *)
let entry ?(count = true) ~file text =
  let k = key ~file text in
  Mutex.lock lock;
  let found = Hashtbl.find_opt table k in
  Mutex.unlock lock;
  match found with
  | Some e ->
      if count then hit ();
      e
  | None ->
      if count then miss ();
      let e =
        {
          modul = Rsti_ir.Lower.compile ~file text;
          analysis = None;
          elide_pred = None;
          instrumented = [];
        }
      in
      Mutex.lock lock;
      let e =
        match Hashtbl.find_opt table k with
        | Some winner -> winner
        | None ->
            Hashtbl.replace table k e;
            e
      in
      Mutex.unlock lock;
      e

let compiled ~file text =
  if not (enabled ()) then Rsti_ir.Lower.compile ~file text
  else (entry ~file text).modul

(* Attack-free runs of a deterministic machine are pure functions of the
   caller-assembled [key] (source digest x base-ISA prices x machine
   knobs), so their outcomes memoize like any other artifact. The entry
   remembers the full cost record the run was priced under, so a hit
   whose instrumentation prices differ can be re-priced by the caller
   instead of re-simulated ({!Rsti_machine.Interp.reprice}). The compute
   runs outside the lock; first writer wins on a racing miss. *)
let outcome ~key:k compute =
  if not (enabled ()) then compute ()
  else begin
    Mutex.lock lock;
    let found = Hashtbl.find_opt outcomes k in
    Mutex.unlock lock;
    match found with
    | Some o ->
        hit ();
        o
    | None ->
        miss ();
        let o = compute () in
        Mutex.lock lock;
        let o =
          match Hashtbl.find_opt outcomes k with
          | Some winner -> winner
          | None ->
              Hashtbl.replace outcomes k o;
              o
        in
        Mutex.unlock lock;
        o
  end

(* Fill a memoized field of an entry. The compute runs outside the lock
   (it can take seconds); a racing duplicate is resolved in favour of
   the first writer. *)
let memo_field ~get ~set ~compute e =
  Mutex.lock lock;
  let found = get e in
  Mutex.unlock lock;
  match found with
  | Some v ->
      hit ();
      v
  | None ->
      miss ();
      let v = compute e in
      Mutex.lock lock;
      let v = match get e with Some w -> w | None -> set e v; v in
      Mutex.unlock lock;
      v

let analysis ~file text =
  if not (enabled ()) then
    Rsti_sti.Analysis.analyze (Rsti_ir.Lower.compile ~file text)
  else
    memo_field
      ~get:(fun e -> e.analysis)
      ~set:(fun e v -> e.analysis <- Some v)
      ~compute:(fun e -> Rsti_sti.Analysis.analyze e.modul)
      (entry ~count:false ~file text)

let elide_of anal modul =
  Rsti_staticcheck.Elide.elide (Rsti_staticcheck.Elide.analyze anal modul)

let elide ~file text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    elide_of (Rsti_sti.Analysis.analyze m) m
  end
  else begin
    let anal = analysis ~file text in
    memo_field
      ~get:(fun e -> e.elide_pred)
      ~set:(fun e v -> e.elide_pred <- Some v)
      ~compute:(fun e -> elide_of anal e.modul)
      (entry ~count:false ~file text)
  end

let instrumented ~file ~elide:el mech text =
  if not (enabled ()) then begin
    let m = Rsti_ir.Lower.compile ~file text in
    let anal = Rsti_sti.Analysis.analyze m in
    let pred = if el then Some (elide_of anal m) else None in
    Rsti_rsti.Instrument.instrument ?elide:pred mech anal m
  end
  else begin
    let anal = analysis ~file text in
    let pred = if el then Some (elide ~file text) else None in
    let e = entry ~count:false ~file text in
    let k = (mech, el) in
    Mutex.lock lock;
    let found = List.assoc_opt k e.instrumented in
    Mutex.unlock lock;
    match found with
    | Some r ->
        hit ();
        r
    | None ->
        miss ();
        let r = Rsti_rsti.Instrument.instrument ?elide:pred mech anal e.modul in
        Mutex.lock lock;
        let r =
          match List.assoc_opt k e.instrumented with
          | Some winner -> winner
          | None ->
              e.instrumented <- (k, r) :: e.instrumented;
              r
        in
        Mutex.unlock lock;
        r
  end

(** The engine's content-keyed artifact cache.

    Every pipeline stage up to instrumentation is a pure function of the
    source text plus a small stage key, so its artifacts are memoized
    under the MD5 digest of [file ^ "\x00" ^ source]:

    - [compiled]      key = digest
    - [analysis]      key = digest (analysis is a function of the module)
    - [points_to]     key = digest x precision mode (Andersen solve;
                      [Cloning k] carries its k in the mode key)
    - [scope]         key = digest x precision mode (scope-escape over
                      the matching points-to solution)
    - [elide]/[elide_pt] key = digest (the proof is a function of both)
    - [elide_ctx]     key = digest x k (context-precision proof)
    - [instrumented]  key = digest x (mechanism, elision mode)
    - [validation]    key = digest x (mechanism, elision mode)
    - [equiv]         key = digest x (mechanism, points-to mode option) —
                      the attack-surface partition; [None] is the
                      unconfined oracle model
    - [outcome]       key = caller-assembled (digest x base-ISA prices x
                      machine knobs) — attack-free runs only; the
                      machine is deterministic, so the outcome is a pure
                      function of that key up to the instrumentation
                      prices, which a hit re-prices without
                      re-simulating

    This is what makes whole-bench runs cheap: the seed harness
    recompiled and re-analyzed every SPEC kernel once per section (the
    PA-cost ablation alone re-ran the frontend fifteen times per
    workload); with the cache each artifact is built once per process.

    Domain safety: the table and each entry's fields are mutex-guarded,
    so concurrent lookups are safe. Artifact values themselves
    ({!Rsti_sti.Analysis.t} in particular) answer some queries by
    memoizing internally, so the engine's parallel paths hand any given
    key's artifacts to one domain at a time (tasks are partitioned by
    workload, and each workload owns its keys). Cache misses are computed
    outside the lock; a duplicated computation under a racing miss is
    benign because stages are deterministic. *)

type stats = { hits : int; misses : int; duplicated : int }
(** A lookup that found its artifact is a hit; one that computed and
    installed it is a miss; one that computed but lost the install race
    to a concurrent miss counts as a hit *and* a [duplicated]. Hits and
    misses therefore match the serial schedule for any job count, and
    [duplicated] counts exactly the racing recomputations that the old
    global pair silently misfiled as misses. *)

val set_enabled : bool -> unit
(** Default [true]. Disabling makes every accessor compute fresh
    artifacts without touching the table (and without counting). *)

val enabled : unit -> bool

val clear : unit -> unit
(** Drop all entries and reset {!stats}. *)

val stats : unit -> stats
(** Aggregate over {!stage_stats}. *)

val stage_stats : unit -> (string * stats) list
(** Per-stage counts in pipeline order: compile, analysis, points_to,
    points_to_cs, scope_escape, elide, elide_pt, elide_ctx, instrument,
    validate, outcome, attack_surface, incident. The same counters back
    the [cache.<stage>.{hits,misses,duplicated}] entries of
    {!Rsti_observe.Observe.Metrics}. *)

val source_key : file:string -> string -> string
(** The digest both the cache and {!Pipeline}'s run keys are built on. *)

val compiled : file:string -> string -> Rsti_ir.Ir.modul
(** [Lower.compile], memoized. *)

val outcome :
  key:string ->
  (unit -> Rsti_machine.Interp.outcome * Rsti_machine.Cost.t) ->
  Rsti_machine.Interp.outcome * Rsti_machine.Cost.t
(** Memoize an attack-free run under a caller-assembled key.
    {!Pipeline.run} / {!Pipeline.run_baseline} build the key from the
    source digest, the base ISA prices, and every machine knob ([seed],
    [fpac], [cfi], [backend], [entry]) — the instrumentation prices
    ([pac], [strip], [pp], [pac_spill]) are deliberately left out of the
    key, and the cost record the run actually priced under is stored
    beside the outcome so a hit under different instrumentation prices
    is re-priced ({!Rsti_machine.Interp.reprice}) instead of
    re-simulated. Callers must bypass this for runs with attacks
    installed — attack closures are not part of any key. *)

val incident : key:string -> (unit -> string) -> string
(** Memoize a serialized incident-extraction artifact (an opaque
    marshalled payload — the incident types live above this library,
    so the caller serializes) under a caller-assembled key. Attack replays are deterministic, so the
    extraction is a pure function of (scenario, mechanism, flight
    capacity) and memoizes like every other stage, under the
    ["incident"] stage counters. *)

val analysis : file:string -> string -> Rsti_sti.Analysis.t
(** [Sti.Analysis.analyze] of {!compiled}, memoized. *)

val points_to : file:string -> string -> Rsti_dataflow.Points_to.t
(** The insensitive Andersen points-to analysis over {!compiled},
    memoized — shorthand for {!points_to_mode} at [Insensitive]. *)

val points_to_mode :
  file:string ->
  mode:Rsti_dataflow.Points_to.mode ->
  string ->
  Rsti_dataflow.Points_to.t
(** The points-to solve at a chosen precision mode, memoized per mode
    (each [Cloning k] is its own slot). *)

val scope :
  file:string ->
  mode:Rsti_dataflow.Points_to.mode ->
  string ->
  Rsti_dataflow.Scope_escape.t
(** The scope-escape analysis over {!points_to_mode} at the same mode,
    memoized per mode. *)

val elide : file:string -> string -> Rsti_ir.Ir.slot -> bool
(** The static checker's syntactic elision proof ([Staticcheck.Elide])
    over {!analysis}, memoized. *)

val elide_pt : file:string -> string -> Rsti_ir.Ir.slot -> bool
(** The elision proof at points-to precision: {!elide}'s obligations
    discharged through {!points_to} confinement, memoized. *)

val elide_ctx : file:string -> k:int -> string -> Rsti_ir.Ir.slot -> bool
(** The elision proof at context precision: obligations discharged
    through the [Cloning k] solution plus the scope-escape checker,
    memoized per k. *)

val elide_pred :
  file:string ->
  mode:Rsti_staticcheck.Elide.mode ->
  string ->
  (Rsti_ir.Ir.slot -> bool) option
(** {!elide} / {!elide_pt} / {!elide_ctx} selected by elision mode;
    [None] when [Off]. *)

val instrumented :
  file:string ->
  elision:Rsti_staticcheck.Elide.mode ->
  Rsti_sti.Rsti_type.mechanism ->
  string ->
  Rsti_rsti.Instrument.result
(** [Rsti.Instrument.instrument] over {!analysis}, memoized per
    (mechanism, elision mode) stage key. *)

val validation :
  file:string ->
  elision:Rsti_staticcheck.Elide.mode ->
  Rsti_sti.Rsti_type.mechanism ->
  string ->
  Rsti_dataflow.Validate.report
(** The PAC-typestate validator's report over {!instrumented}, memoized
    per (mechanism, elision mode) stage key. *)

val equiv :
  file:string ->
  mode:Rsti_dataflow.Points_to.mode option ->
  Rsti_sti.Rsti_type.mechanism ->
  string ->
  Rsti_dataflow.Equiv.result
(** The substitution-attack-surface partition
    ({!Rsti_dataflow.Equiv.analyze}) over {!analysis}, memoized per
    (mechanism, points-to mode) stage key. [mode = None] computes the
    paper's unconfined attacker model — the configuration the dynamic
    oracle cross-validates; [Some m] refines feasibility with
    {!points_to_mode} confinement and {!scope} escape results at that
    precision. *)

module Observe = Rsti_observe.Observe

let env_jobs () =
  match Sys.getenv_opt "RSTI_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let override = Atomic.make None

let set_default_jobs n = Atomic.set override (Some (max 1 n))
let clear_default_jobs () = Atomic.set override None

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

type stats = {
  tasks : int;
  own_claims : int;
  steals : int;
  serial_runs : int;
  fanouts : int;
}

(* [tasks] is bumped identically on the serial and fan-out paths, so it
   is deterministic for any job count; the claim split (own vs. steal)
   and the per-worker scheduler.worker.N.tasks counters are scheduling
   noise by construction and excluded from cross-job-count comparisons. *)
let c_tasks = Observe.Metrics.counter "scheduler.tasks"
let c_own = Observe.Metrics.counter "scheduler.own_claims"
let c_steals = Observe.Metrics.counter "scheduler.steals"
let c_serial = Observe.Metrics.counter "scheduler.serial_runs"
let c_fanouts = Observe.Metrics.counter "scheduler.fanouts"

let stats () =
  {
    tasks = Observe.Metrics.value c_tasks;
    own_claims = Observe.Metrics.value c_own;
    steals = Observe.Metrics.value c_steals;
    serial_runs = Observe.Metrics.value c_serial;
    fanouts = Observe.Metrics.value c_fanouts;
  }

(* One block of the task-index space [lo, hi). The owning worker pops
   from [lo]; thieves steal from [hi]. A mutex per deque keeps the claim
   of every index exclusive — tasks are coarse (whole compile+run
   pipelines), so contention is irrelevant next to task cost. *)
type deque = { mutable lo : int; mutable hi : int; lock : Mutex.t }

let pop_own d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then (
      let i = d.lo in
      d.lo <- i + 1;
      Some i)
    else None
  in
  Mutex.unlock d.lock;
  r

let steal d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then (
      d.hi <- d.hi - 1;
      Some d.hi)
    else None
  in
  Mutex.unlock d.lock;
  r

(* Workers must not fan out again from inside a task: a nested [map]
   runs serially in the calling worker. *)
let in_pool = Domain.DLS.new_key (fun () -> false)

let task_span ~worker ~claim ~index =
  if Observe.enabled () then
    Observe.Span.enter "scheduler.task"
      ~attrs:
        [
          ("worker", string_of_int worker);
          ("claim", claim);
          ("index", string_of_int index);
        ]
  else Observe.Span.none

let map ?jobs f xs =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_pool then begin
    Observe.Metrics.incr c_serial;
    Observe.Metrics.add c_tasks n;
    Observe.Metrics.add c_own n;
    let i = ref (-1) in
    List.map
      (fun x ->
        incr i;
        let sp = task_span ~worker:0 ~claim:"serial" ~index:!i in
        Fun.protect ~finally:(fun () -> Observe.Span.exit sp) (fun () -> f x))
      xs
  end
  else begin
    Observe.Metrics.incr c_fanouts;
    Observe.Metrics.add c_tasks n;
    let ctx = Observe.Span.current_context () in
    let tasks = Array.of_list xs in
    let results = Array.make n None in
    let error = Atomic.make None in
    let workers = min jobs n in
    let worker_tasks =
      Array.init workers (fun w ->
          Observe.Metrics.counter
            (Printf.sprintf "scheduler.worker.%d.tasks" w))
    in
    let deques =
      Array.init workers (fun w ->
          { lo = w * n / workers; hi = (w + 1) * n / workers; lock = Mutex.create () })
    in
    let run_task ~worker:w ~stolen i =
      Observe.Metrics.incr worker_tasks.(w);
      Observe.Metrics.incr (if stolen then c_steals else c_own);
      if Atomic.get error = None then begin
        let sp =
          task_span ~worker:w ~claim:(if stolen then "steal" else "own")
            ~index:i
        in
        (try results.(i) <- Some (f tasks.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set error None (Some (e, bt))));
        Observe.Span.exit sp
      end
    in
    let worker w () =
      Domain.DLS.set in_pool true;
      let d = deques.(w) in
      let rec own () =
        match pop_own d with
        | Some i ->
            run_task ~worker:w ~stolen:false i;
            own ()
        | None -> hunt 1
      and hunt tried =
        if tried <= workers then
          match steal deques.((w + tried) mod workers) with
          | Some i ->
              run_task ~worker:w ~stolen:true i;
              hunt tried
          | None -> hunt (tried + 1)
      in
      own ()
    in
    let doms =
      Array.init (workers - 1) (fun k ->
          Domain.spawn (fun () ->
              Observe.Span.with_context ctx (fun () -> worker (k + 1) ())))
    in
    (* the calling domain is worker 0; restore its nesting flag after *)
    worker 0 ();
    Domain.DLS.set in_pool false;
    Array.iter Domain.join doms;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x) xs)

(** The staged experiment pipeline — the one typed entry point every
    consumer (bench harness, [rstic], the report/workload/attack
    libraries) uses to go from MiniC source to a measured run:

    {[ source --> compiled --> analyzed --> instrumented(mech) --> outcome ]}

    Each arrow is an explicit stage function returning an opaque stage
    value, so "compile then analyze then instrument then run" is written
    once here instead of being hand-assembled at every call site, and the
    only way to obtain an {!Rsti_rsti.Instrument.result} outside [lib/]
    is through this API. A {!config} record replaces the optional-arg
    soup that used to grow on [Workloads.Run.measure] ([?costs ?elide
    ...]); the pointer-to-pointer table an instrumented module needs at
    run time travels inside the {!instrumented} stage value, so {!run}
    wires it into the machine automatically.

    Every stage is memoized in the content-keyed {!Cache} (switched by
    [config.cache]); fan-out over workloads happens in {!Scheduler}.
    Attack-free runs memoize too — the machine is deterministic, so an
    outcome is a pure function of the source digest, the cost record and
    the machine knobs. {!run}/{!run_baseline} key on the source digest,
    the base ISA prices and the knobs only: the instrumentation prices
    ([pac], [strip], [pp], [pac_spill]) map 1:1 onto outcome counters,
    so a hit under different ones is re-priced
    ({!Rsti_machine.Interp.reprice}) instead of re-simulated — one
    simulation per (workload, mechanism) serves an entire PA-cost sweep.
    Runs with attacks installed always execute — attack closures are not
    part of any key. *)

type config = {
  costs : Rsti_machine.Cost.t;  (** cycle model for {!run} *)
  elision : Rsti_staticcheck.Elide.mode;
      (** instrumentation-elision precision: [Off] keeps every site,
          [Syntactic] applies the static checker's flow-component proof,
          [With_points_to] additionally discharges obligations through
          the Andersen confinement proof, [With_context k] discharges
          through the k-limited call-site-cloned solution plus the
          scope-escape checker *)
  validate : bool;
      (** run the PAC-typestate translation validator over every
          {!instrument} output and raise {!Validation_failed} if the
          rewriter broke the signed-at-rest discipline *)
  mechanisms : Rsti_sti.Rsti_type.mechanism list;
      (** the mechanism sweep {!instrument_all} expands *)
  cache : bool;  (** consult/fill the artifact {!Cache} *)
  jobs : int option;
      (** fan-out width for suite-level consumers; [None] defers to
          {!Scheduler.default_jobs} *)
}

val default : config
(** [costs = Cost.default], [elision = Off], [validate = false],
    [mechanisms = Rsti_type.all_mechanisms], [cache = true],
    [jobs = None]. *)

exception Validation_failed of Rsti_dataflow.Validate.report
(** Raised by {!instrument} under [config.validate] when the validator
    rejects the instrumented module. *)

type source
type compiled
type analyzed
type instrumented

val source : ?file:string -> string -> source
(** Wrap MiniC text; [file] (default ["<memory>.c"]) names it in
    diagnostics and debug metadata and is part of the cache key. *)

val compile : ?config:config -> source -> compiled
(** Parse, type-check, lower ([Ir.Lower.compile]). Frontend errors
    ([Lexer.Error], [Parser.Error], [Typecheck.Error]) propagate. *)

val analyze : ?config:config -> compiled -> analyzed
(** The whole-program STI analysis ([Sti.Analysis.analyze]). *)

val instrument :
  ?config:config -> Rsti_sti.Rsti_type.mechanism -> analyzed -> instrumented
(** The RSTI instrumentation pass; [config.elision] selects the
    [Staticcheck.Elide] proof precision (forced [Off] under
    [Parts]/[Nop], which model toolchains without the whole-program
    proof). Under [config.validate] the output is checked by
    {!Rsti_dataflow.Validate} and {!Validation_failed} raised on any
    issue. *)

val instrument_all : ?config:config -> analyzed -> instrumented list
(** One {!instrumented} per [config.mechanisms], in order. *)

val run :
  ?config:config ->
  ?attacks:Rsti_machine.Interp.attack list ->
  ?seed:int64 ->
  ?fpac:bool ->
  ?backend:[ `Pac | `Shadow_mac ] ->
  ?entry:string ->
  ?profile:bool ->
  ?flight:int ->
  instrumented ->
  Rsti_machine.Interp.outcome
(** Load the instrumented module (with its pointer-to-pointer table)
    into a fresh machine under [config.costs] and execute it.
    [profile] (default false) turns on the machine's exact hot-site
    profiler ({!Rsti_machine.Interp.outcome.sites}); profiled and
    unprofiled outcomes memoize under distinct keys. [flight] (default
    0 = off) is the PAC flight recorder's ring capacity
    ({!Rsti_machine.Interp.outcome.incidents}); flight-recorded
    outcomes likewise memoize under their own keys. *)

val run_baseline :
  ?config:config ->
  ?attacks:Rsti_machine.Interp.attack list ->
  ?seed:int64 ->
  ?fpac:bool ->
  ?cfi:bool ->
  ?backend:[ `Pac | `Shadow_mac ] ->
  ?entry:string ->
  ?profile:bool ->
  ?flight:int ->
  compiled ->
  Rsti_machine.Interp.outcome
(** Execute the uninstrumented module ([cfi] enables the signature-CFI
    baseline machine). [profile] and [flight] as in {!run}. *)

(** {2 Stage accessors} *)

val file : source -> string
val text : source -> string

val source_of_compiled : compiled -> source
val ir : compiled -> Rsti_ir.Ir.modul

val compiled_of_analyzed : analyzed -> compiled
val analysis : analyzed -> Rsti_sti.Analysis.t
val analyzed_ir : analyzed -> Rsti_ir.Ir.modul

val analyzed_of_instrumented : instrumented -> analyzed
val mechanism : instrumented -> Rsti_sti.Rsti_type.mechanism

val elision : instrumented -> Rsti_staticcheck.Elide.mode
(** The elision precision this stage value was instrumented under. *)

val elided : instrumented -> bool
(** Whether any elision proof was applied: [elision i <> Off]. *)

val result : instrumented -> Rsti_rsti.Instrument.result
(** The pass output: rewritten module, pp table, static counts. *)

val instrumented_ir : instrumented -> Rsti_ir.Ir.modul
val counts : instrumented -> Rsti_rsti.Instrument.static_counts

val points_to :
  ?config:config ->
  ?mode:Rsti_dataflow.Points_to.mode ->
  compiled ->
  Rsti_dataflow.Points_to.t
(** The Andersen points-to analysis over the module at a chosen
    precision mode (default [Insensitive]); cache-memoized per mode. *)

val scope_escape :
  ?config:config ->
  ?mode:Rsti_dataflow.Points_to.mode ->
  compiled ->
  Rsti_dataflow.Scope_escape.t
(** The static scope-escape analysis, consuming the {!points_to}
    solution at the same mode; cache-memoized per mode. *)

val elide_pred :
  ?config:config ->
  ?mode:Rsti_staticcheck.Elide.mode ->
  analyzed ->
  Rsti_ir.Ir.slot ->
  bool
(** The elision-proof predicate itself at a chosen precision (default
    [Syntactic]; [Off] is constantly false); exposed for consumers that
    report per-slot verdicts. *)

val validation :
  ?config:config -> instrumented -> Rsti_dataflow.Validate.report
(** The PAC-typestate validator's report for an instrumented stage value
    (cache-memoized). [config.validate] runs this automatically inside
    {!instrument}. *)

val attack_surface :
  ?config:config ->
  ?mode:Rsti_dataflow.Points_to.mode ->
  Rsti_sti.Rsti_type.mechanism ->
  analyzed ->
  Rsti_dataflow.Equiv.result
(** The static substitution-attack-surface partition
    ({!Rsti_dataflow.Equiv.analyze}) for one mechanism; cache-memoized
    per (mechanism, mode). Without [mode] the partition uses the paper's
    unconfined attacker model — the configuration the dynamic oracle
    cross-validates; with it, feasibility is refined by the points-to
    confinement and scope-escape results at that precision. *)

(** The experiment engine's domain-pool scheduler.

    The paper's whole-suite measurements (Fig. 9/10: ~60 kernels x 4
    mechanisms) are embarrassingly parallel, so the engine fans tasks out
    over a pool of OCaml 5 domains with a per-worker work-stealing deque:
    the task list is block-partitioned, each worker pops from the front of
    its own block and, when empty, steals from the back of another
    worker's block. Every task is claimed exactly once (the deque ranges
    are mutex-guarded), so results are written to disjoint indices of one
    result array and {!map} returns them in input order — output is
    byte-identical for any job count.

    Job-count resolution, highest priority first:
    - an explicit [?jobs] argument,
    - a process-wide override ({!set_default_jobs}, the [--jobs] flag),
    - the [RSTI_JOBS] environment variable,
    - [Domain.recommended_domain_count ()]. *)

val env_jobs : unit -> int option
(** [RSTI_JOBS] if set to a positive integer. *)

val set_default_jobs : int -> unit
(** Install a process-wide job-count override (what [--jobs] routes to);
    clamped to at least 1. *)

val clear_default_jobs : unit -> unit

val default_jobs : unit -> int
(** The resolved job count used when [?jobs] is omitted. *)

(** Scheduler activity counters, backed by the
    [scheduler.{tasks,own_claims,steals,serial_runs,fanouts}] entries of
    {!Rsti_observe.Observe.Metrics} (zeroed by [Observe.Metrics.reset]).
    [tasks] counts every task {!map} ran, on both the serial and
    parallel paths, so it is deterministic for any job count;
    [own_claims + steals = tasks] always holds (exactly-once claims),
    but the split — and the per-worker [scheduler.worker.N.tasks]
    counters — depends on runtime scheduling. [serial_runs]/[fanouts]
    count {!map} calls that ran inline vs. spawned domains. *)
type stats = {
  tasks : int;
  own_claims : int;
  steals : int;
  serial_runs : int;
  fanouts : int;
}

val stats : unit -> stats

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] over the domain pool; results in input order.
    Runs serially when the resolved job count is 1, the list has fewer
    than two elements, or the caller is itself a pool worker (nested
    fan-out does not spawn domains over domains). The first task
    exception (by task index claim order) is re-raised after all workers
    join; remaining tasks are skipped once an exception is recorded. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

open Cmdliner

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of worker domains for suite-level fan-out. Defaults to \
           $(b,RSTI_JOBS), then the machine's recommended domain count. \
           Results are deterministic: output is byte-identical for any N.")

let apply = function
  | Some n -> Rsti_engine.Scheduler.set_default_jobs n
  | None -> ()

let setup_jobs_term = Term.(const apply $ jobs_term)

let resolved_jobs () = Rsti_engine.Scheduler.default_jobs ()

let pt_mode_conv =
  let parse s =
    match Rsti_dataflow.Points_to.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown points-to mode %S (insensitive|cloning[:K])"
               s))
  in
  let print fmt m =
    Format.pp_print_string fmt (Rsti_dataflow.Points_to.mode_to_string m)
  in
  Arg.conv (parse, print)

let points_to_term ?(bare = Rsti_dataflow.Points_to.Insensitive) ~doc () =
  Arg.(
    value
    & opt ~vopt:(Some bare) (some pt_mode_conv) None
    & info [ "points-to" ] ~docv:"MODE" ~doc)

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans for the whole invocation and write a Chrome \
           trace-event JSON document to $(docv) (loadable in Perfetto or \
           chrome://tracing). Enables span recording.")

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the telemetry counter/gauge/histogram registry as one \
           JSON document to $(docv) on exit.")

type observe = string option * string option

let setup_observe trace metrics =
  if trace <> None || metrics <> None then
    Rsti_observe.Observe.set_enabled true;
  (trace, metrics)

let observe_term = Term.(const setup_observe $ trace_term $ metrics_term)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let events_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Write the structured security-event log (schema \
           $(b,rsti-events/1): one compact JSON object per line, \
           lexicographically sorted, byte-identical at any $(b,--jobs)) \
           to $(docv) on exit. Incident events carry the failing PAC \
           site, expected vs observed signer, detection latency, and \
           the static-class mapping.")

let write_events path =
  write_file path (Rsti_observe.Observe.Events.to_jsonl ())

let write_trace path =
  write_file path
    (Rsti_observe.Observe.Json.to_string ~indent:false
       (Rsti_observe.Observe.Span.chrome_trace ())
    ^ "\n")

let write_metrics path =
  write_file path
    (Rsti_observe.Observe.Json.to_string
       (Rsti_observe.Observe.Metrics.to_json ())
    ^ "\n")

let finish_observe (trace, metrics) =
  Option.iter write_trace trace;
  Option.iter write_metrics metrics

open Cmdliner

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of worker domains for suite-level fan-out. Defaults to \
           $(b,RSTI_JOBS), then the machine's recommended domain count. \
           Results are deterministic: output is byte-identical for any N.")

let apply = function
  | Some n -> Rsti_engine.Scheduler.set_default_jobs n
  | None -> ()

let setup_jobs_term = Term.(const apply $ jobs_term)

let resolved_jobs () = Rsti_engine.Scheduler.default_jobs ()

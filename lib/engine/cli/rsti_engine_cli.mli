(** The shared cmdliner terms: both [rstic] (run / analyze / lint /
    report) and [bench/main.exe] reuse them, so [--jobs], [--points-to]
    and the telemetry flags parse and route into the engine identically
    everywhere. *)

val jobs_term : int option Cmdliner.Term.t
(** [--jobs N] / [-j N]: number of worker domains. Unset defers to
    [RSTI_JOBS], then [Domain.recommended_domain_count ()]. *)

val setup_jobs_term : unit Cmdliner.Term.t
(** {!jobs_term} routed into the engine: evaluating the term installs
    the override via {!Rsti_engine.Scheduler.set_default_jobs} (or
    leaves the environment default in place when the flag is absent).
    Compose it into a command with [Term.(const f $ setup_jobs_term $ ...)]. *)

val resolved_jobs : unit -> int
(** The job count the engine will use after term evaluation. *)

val pt_mode_conv : Rsti_dataflow.Points_to.mode Cmdliner.Arg.conv
(** Parses [insensitive] and [cloning[:K]] (bare [cloning] means K=2) —
    the one points-to precision syntax every subcommand accepts. *)

val points_to_term :
  ?bare:Rsti_dataflow.Points_to.mode ->
  doc:string ->
  unit ->
  Rsti_dataflow.Points_to.mode option Cmdliner.Term.t
(** The shared [--points-to MODE] flag. [None] when absent; the bare
    flag (no [MODE]) means [bare] (default [Insensitive] — lint passes
    [Cloning 2], its historical bare-flag meaning). [doc] is the
    per-command manpage text. *)

type observe = string option * string option
(** Evaluated telemetry flags: [(trace_file, metrics_file)]. *)

val observe_term : observe Cmdliner.Term.t
(** [--trace FILE] and [--metrics FILE]: evaluating the term enables
    {!Rsti_observe.Observe} recording when either flag is given (the
    disabled default stays a no-op on hot paths). Compose it into a
    command and pass the evaluated value to {!finish_observe} at exit. *)

val events_term : string option Cmdliner.Term.t
(** [--events FILE]: write the [rsti-events/1] JSONL security-event log
    on exit. The sink is not gated on observability being enabled —
    events are emitted only from rare paths (incidents, coverage
    summaries) and written only when this flag asks for them. *)

val write_events : string -> unit
(** Write {!Rsti_observe.Observe.Events.to_jsonl} to the path: a
    [{"schema":"rsti-events/1",...}] header line followed by one
    compact, lexicographically sorted JSON object per event. *)

val write_trace : string -> unit
(** Write the recorded spans as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}], microsecond timestamps) to the path. *)

val write_metrics : string -> unit
(** Write the metrics registry ({!Rsti_observe.Observe.Metrics.to_json})
    to the path. *)

val finish_observe : observe -> unit
(** Flush whichever telemetry sinks {!observe_term} requested. Call it
    before the command exits (including early [exit] paths). *)

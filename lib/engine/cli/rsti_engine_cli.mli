(** The one shared [--jobs] cmdliner term: both [rstic] (run / analyze /
    lint / report) and [bench/main.exe] reuse it, so the flag parses and
    routes into the engine identically everywhere. *)

val jobs_term : int option Cmdliner.Term.t
(** [--jobs N] / [-j N]: number of worker domains. Unset defers to
    [RSTI_JOBS], then [Domain.recommended_domain_count ()]. *)

val setup_jobs_term : unit Cmdliner.Term.t
(** {!jobs_term} routed into the engine: evaluating the term installs
    the override via {!Rsti_engine.Scheduler.set_default_jobs} (or
    leaves the environment default in place when the flag is absent).
    Compose it into a command with [Term.(const f $ setup_jobs_term $ ...)]. *)

val resolved_jobs : unit -> int
(** The job count the engine will use after term evaluation. *)

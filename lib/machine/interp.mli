(** The virtual machine: executes (possibly RSTI-instrumented) IR over the
    simulated address space with real PA semantics, counts cycles under
    {!Cost}, and exposes the attacker API the security evaluation uses.

    Faithful PA behaviour: a failed [aut*] does not trap — it leaves a
    corrupted (non-canonical) pointer behind, and the subsequent
    dereference or indirect call faults, exactly as on ARMv8.3 hardware
    (paper section 2.4). The machine records the original auth failure so
    scenarios can attribute the crash. *)

type event =
  | Ev_call of string                       (** defined function entered *)
  | Ev_extern of string * int64 list        (** simulated-libc call *)
  | Ev_auth_fail of { func : string; modifier : int64; ptr : int64 }
      (** an aut*/resign/pp_auth whose PAC check failed *)
  | Ev_attack of string                     (** attacker action (from hooks) *)
  | Ev_output of string                     (** program output *)

type trap =
  | Mem_fault of { fault : string; func : string; after_auth_fail : bool }
  | Bad_indirect_call of { target : int64; func : string; after_auth_fail : bool }
  | Div_by_zero of string
  | Stack_overflow
  | Step_limit_exceeded
  | Unknown_function of string
  | Pac_auth_failure of { func : string; modifier : int64; ptr : int64 }
      (** a failing [aut*] under FPAC (the default machine config) *)
  | Cfi_violation of { func : string; target : string }
      (** signature-based CFI baseline rejected an indirect call *)

val trap_to_string : trap -> string

type status = Exited of int64 | Trapped of trap

type counts = {
  mutable instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable pac_signs : int;
  mutable pac_auths : int;      (** auths + the auth halves of resigns *)
  mutable pac_strips : int;
  mutable pp_calls : int;
  mutable pac_charges : int;
      (** times the [pac] price was charged (a resign charges twice;
          the pp mechanism's sign/auth price at [pp], not here) *)
}

(** One profiled (function, source line) pair of the exact hot-site
    profiler ([create ~profile:true]). Attribution is exact, not
    sampled: every cycle the machine charges is added to the site of the
    last instruction dispatched (terminator and call-overhead charges
    land on that site too; pre-[entry] setup lands on the ["_start"]
    pseudo-site), so an outcome's sites partition its cycle total —
    [sum s_cycles = cycles], [sum s_instrs = counts.instrs], and
    likewise for [s_pac_charges]/[s_strips]/[s_pp_calls] against the
    global counters. *)
type site = {
  s_func : string;
  s_line : int;  (** 0 when the instruction carries no !dbg location *)
  mutable s_cycles : int;
  mutable s_instrs : int;
  mutable s_pac_charges : int;
  mutable s_strips : int;
  mutable s_pp_calls : int;
}

(** One PAC-unit operation captured by the flight recorder
    ([create ~flight:n]). *)
type op_kind =
  | Op_sign
  | Op_auth
  | Op_resign
  | Op_strip
  | Op_pp_sign
  | Op_pp_auth

val op_kind_to_string : op_kind -> string

type pac_op = {
  op_kind : op_kind;
  op_func : string;
  op_line : int;  (** 0 when the instruction carries no !dbg location *)
  op_key : Rsti_pa.Key.which;
  op_static_mod : int64;
      (** the modifier {e constant} the instruction carries ([Mconst c]
          and [Mloc c] both record [c], before any slot-address XOR) —
          exactly the class identity of the static [Equiv] partition, so
          flight-recorder ops correlate with their static class *)
  op_modifier : int64;  (** the runtime modifier fed to the PAC unit *)
  op_src : int64;
  op_result : int64;
  op_ok : bool;  (** [false] only for a failing auth/resign *)
  op_cycle : int;
  op_instr : int;
}

(** The structured security-event record emitted at a failing auth.
    The {e expected} signer is the failing site's own
    ([inc_static_mod], [inc_key]) pair — the signed-at-rest discipline
    says whoever produced this slot's value must have signed with
    exactly that pair. The {e observed} signer [inc_signer] is the sign
    operation that actually produced the failing pointer value, tracked
    for the whole run (not just the window); [None] means the value was
    never signed at all — a raw overwrite. Detection latency runs from
    the first intruder store (tagged automatically by the attacker API)
    to the failing auth; [None] when no corruption was tagged. *)
type incident = {
  inc_func : string;
  inc_line : int;
  inc_key : Rsti_pa.Key.which;
  inc_static_mod : int64;
  inc_modifier : int64;  (** runtime modifier of the failing auth *)
  inc_ptr : int64;       (** the pointer value that failed to authenticate *)
  inc_signer : pac_op option;
  inc_window : pac_op list;
      (** the last-N flight-recorder ops, oldest first; ends with the
          failing op itself *)
  inc_cycle : int;
  inc_instr : int;
  inc_corrupt : (int * int) option;
      (** (cycle, instr) of the first intruder store *)
  inc_latency_cycles : int option;
  inc_latency_instrs : int option;
}

type outcome = {
  status : status;
  cycles : int;
  counts : counts;
  events : event list;       (** chronological *)
  output : string;           (** everything the program printed *)
  call_profile : (string * int) list;
      (** defined-function call counts, most-called first *)
  extern_profile : (string * int) list;
      (** simulated-libc call counts, most-called first *)
  sites : site list;
      (** hot-site profile, cycles descending (ties by site); [] unless
          the machine was created with [~profile:true] *)
  incidents : incident list;
      (** chronological; [] unless the machine was created with a
          [flight] capacity (under FPAC a run holds at most one, since
          the first failing auth traps) *)
}

val detected : outcome -> bool
(** True when execution ended in a trap that followed a PAC authentication
    failure — i.e. RSTI detected and stopped an attack. *)

val reprice :
  from:Cost.t -> to_:Cost.t -> pac_spill_charged:bool -> outcome -> outcome
(** Re-price a finished run under a different cost record without
    re-simulating: costs never influence control flow, so the trace —
    and with it {!counts}, status, events, output — is identical, and
    only the cycle total moves. Valid only when [from] and [to_] differ
    in the instrumentation prices ([pac], [strip], [pp], [pac_spill]);
    the base ISA prices are not reconstructible from {!counts} and a
    difference there raises [Invalid_argument]. [pac_spill_charged] is
    whether the run's backend pays the spill price alongside each [pac]
    charge ([`Pac] does, [`Shadow_mac] never spills). A profiled
    outcome's {!site}s carry the same per-price counters, so their
    cycles are re-priced exactly too and keep partitioning the total. *)

val profile_report : ?top:int -> outcome -> string
(** A perf-report-style table of the hottest [top] (default 20) sites —
    cycles, share of total, instructions, pac/strip/pp charges — with
    one trailing row aggregating the rest. Empty profile renders just
    the header. *)

type t
(** A loaded machine instance (module + memory image + PA keys). *)

(** The corruption primitive handed to attack scenarios: what a real
    attacker gets from a memory-corruption vulnerability (arbitrary
    read/write) plus the address-space knowledge (infoleak) the paper's
    threat model grants. It cannot forge PACs: signing needs the kernel's
    keys. *)
type intruder = {
  read_word : int64 -> int64;
  write_word : int64 -> int64 -> unit;
  read_string : int64 -> string;
  write_string : int64 -> string -> unit;
  global_addr : string -> int64;
  func_addr : string -> int64;         (** includes simulated-libc symbols *)
  heap_allocs : unit -> (int64 * int) list;  (** (address, size), newest first *)
  note : string -> unit;               (** record an [Ev_attack] event *)
}

type trigger =
  | On_call of string * int    (** nth (1-based) entry to a defined function *)
  | On_extern of string * int  (** nth call of a libc function *)

type attack = { trigger : trigger; action : intruder -> unit }

val create :
  ?costs:Cost.t ->
  ?seed:int64 ->
  ?pp_table:(int * int64) list ->
  ?fpac:bool ->
  ?cfi:bool ->
  ?backend:[ `Pac | `Shadow_mac ] ->
  ?profile:bool ->
  ?flight:int ->
  Rsti_ir.Ir.modul ->
  t
(** Load a module: lay out globals/strings/code, generate PA keys from
    [seed], install the read-only pointer-to-pointer metadata table.
    [fpac] (default true) selects ARMv8.6 FPAC semantics — a failing
    [aut*] traps synchronously, as on the Apple M1 the paper evaluates
    on; with [fpac:false] the failure only corrupts the pointer and the
    crash happens at the subsequent dereference (plain ARMv8.3).
    [cfi] (default false) enables the signature-based CFI baseline the
    paper's introduction contrasts RSTI with: indirect calls must match
    the target's prototype; data pointers are not checked at all.
    [backend] selects the enforcement substrate (section 7): [`Pac]
    (default) keeps the code in pointer bits; [`Shadow_mac] is the
    CCFI-style alternative — a full-width MAC of (pointer, modifier)
    held in a runtime-protected shadow table keyed by the slot address,
    with pointers left raw. Same STI policy, different mechanism.
    [profile] (default false) turns on the exact hot-site profiler;
    when off, profiling costs one boolean test per charge and allocates
    nothing.
    [flight] (default 0 = off) is the PAC flight recorder's ring
    capacity: every sign/auth/resign/strip/pp op is captured as a
    {!pac_op}, the last [flight] of them are kept, and a failing auth
    emits an {!incident} carrying that window plus detection latency.
    Same discipline as the profiler: when off, each PAC op pays one
    boolean test and nothing allocates. Flight timestamps are cycle
    numbers under the run's own costs; {!reprice} does not rewrite
    them (flight runs carry attacks, which the outcome cache refuses
    anyway). *)

val pac_ctx : t -> Rsti_pa.Pac.ctx
(** The machine's PA context (tests use it to forge/inspect PACs). *)

val global_addr : t -> string -> int64
val func_addr : t -> string -> int64

val run :
  ?attacks:attack list ->
  ?step_limit:int ->
  ?entry:string ->
  t ->
  outcome
(** Execute [__rsti_global_init] then [entry] (default ["main"]).
    [step_limit] bounds interpreted instructions (default 200 million).
    A machine can be run only once; create a fresh one per run. *)

(** Byte-addressable sparse paged memory with little-endian word access
    and read-only regions (the pointer-to-pointer CE/FE metadata store is
    read-only, paper section 4.7.7).

    Addresses must be canonical (fit the 48-bit VA with zero upper bits —
    callers strip TBI tags first); access to an unmapped or non-canonical
    address raises {!Fault}, which is how a corrupted (failed-auth)
    pointer manifests as a crash. *)

type t

type fault =
  | Unmapped of int64            (** page never allocated *)
  | Non_canonical of int64       (** PAC bits set — likely corrupted pointer *)
  | Read_only of int64           (** write to a protected region *)

exception Fault of fault

val fault_to_string : fault -> string

val create : unit -> t

val map : t -> addr:int64 -> size:int -> unit
(** Make a region accessible (zero-filled). *)

val protect : t -> addr:int64 -> size:int -> unit
(** Mark a mapped region read-only for normal writes. *)

val is_mapped : t -> int64 -> bool

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit

val write_u64_raw : t -> int64 -> int64 -> unit
(** Privileged write ignoring read-only protection — used by the runtime
    to build its own metadata, never by interpreted code. *)

val read_bytes : t -> int64 -> int -> bytes
val write_bytes : t -> int64 -> bytes -> unit

val read_cstring : t -> int64 -> string
(** Read a NUL-terminated string (capped at 64 KiB). *)

val write_cstring : t -> int64 -> string -> unit
(** Write string bytes plus a terminating NUL. *)

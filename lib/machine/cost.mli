(** The cycle cost model used by the performance evaluation.

    The paper measures wall-clock on an Apple M1 and, for C++, emulates
    one PA instruction with seven XOR instructions ("measured and
    confirmed in previous works" — section 6.3.1). We adopt that same
    equivalence: a single-cycle ALU baseline with [pac = 7]. Overheads in
    Figure 9/10 are ratios of cycle totals, so only relative costs
    matter; the ablation bench sweeps [pac] over 3..12. *)

type t = {
  alu : int;       (** arithmetic / logic / bitcast / numeric cast *)
  load : int;      (** memory load *)
  store : int;     (** memory store *)
  gep : int;       (** address computation *)
  branch : int;    (** (conditional) branch *)
  call : int;      (** call + return bookkeeping *)
  extern_call : int;  (** call into the simulated libc *)
  pac : int;       (** one pac*/aut* instruction *)
  strip : int;     (** xpac *)
  pp : int;        (** one pointer-to-pointer runtime library call *)
  pac_spill : int; (** extra per-PA-op cost for codegen that cannot keep
                       the value in registers (models PARTS' unoptimized
                       instrumentation, paper section 6.3.2) *)
}

val default : t
(** alu 1, load 3, store 2, gep 1, branch 1, call 6, extern 8, pac 7,
    strip 1, pp 14, pac_spill 0. *)

val with_pac : t -> int -> t
(** Override the PA instruction cost (ablation). *)

val parts_codegen : t
(** {!default} plus [pac_spill = 6]: PARTS emits its checks without the
    backend-intrinsic/LTO optimisations the paper credits for RSTI's
    lower overhead. *)

(* The simulated process address-space layout. All segments sit inside the
   48-bit canonical low half, so every legitimate pointer has zero PAC
   bits — exactly the property ARM PA exploits. *)

let text_base = 0x0000_0000_0040_0000L (* defined functions, 16 bytes apart *)
let rodata_base = 0x0000_0000_0060_0000L (* string literals, pp metadata *)
let libc_base = 0x0000_0000_00f0_0000L (* external/builtin functions *)
let globals_base = 0x0000_0000_1000_0000L
let heap_base = 0x0000_0000_2000_0000L
let stack_top = 0x0000_7fff_ff00_0000L (* grows down *)

(* 16 MiB of simulated stack: enough for any workload, small enough that
   runaway recursion hits Stack_overflow quickly. *)
let stack_limit = 0x0000_7fff_fe00_0000L

let func_slot_size = 16L

let code_addr_of_index base i =
  Int64.add base (Int64.mul (Int64.of_int i) func_slot_size)

let is_text a = a >= text_base && a < rodata_base
let is_libc a = a >= libc_base && a < globals_base
let is_stack a = a >= stack_limit && a <= stack_top

type t = {
  alu : int;
  load : int;
  store : int;
  gep : int;
  branch : int;
  call : int;
  extern_call : int;
  pac : int;
  strip : int;
  pp : int;
  pac_spill : int;
}

let default =
  {
    alu = 1;
    load = 3;
    store = 2;
    gep = 1;
    branch = 1;
    call = 6;
    extern_call = 8;
    pac = 7;
    strip = 1;
    pp = 14;
    pac_spill = 0;
  }

let with_pac t pac = { t with pac }

let parts_codegen = { default with pac_spill = 6 }

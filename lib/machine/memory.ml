type fault =
  | Unmapped of int64
  | Non_canonical of int64
  | Read_only of int64

exception Fault of fault

let fault_to_string = function
  | Unmapped a -> Printf.sprintf "unmapped address 0x%Lx" a
  | Non_canonical a ->
      Printf.sprintf "non-canonical address 0x%Lx (corrupted pointer?)" a
  | Read_only a -> Printf.sprintf "write to read-only address 0x%Lx" a

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  pages : (int64, bytes) Hashtbl.t;
  mutable ro_regions : (int64 * int64) list; (* inclusive lo, exclusive hi *)
}

let create () = { pages = Hashtbl.create 256; ro_regions = [] }

let canonical_limit = 0x0001_0000_0000_0000L (* 2^48 *)

let check_canonical a =
  if Int64.unsigned_compare a canonical_limit >= 0 then
    raise (Fault (Non_canonical a))

let page_of a = Int64.shift_right_logical a page_bits
let offset_of a = Int64.to_int (Int64.logand a (Int64.of_int (page_size - 1)))

let get_page t a =
  check_canonical a;
  match Hashtbl.find_opt t.pages (page_of a) with
  | Some p -> p
  | None -> raise (Fault (Unmapped a))

let map t ~addr ~size =
  check_canonical addr;
  let first = page_of addr and last = page_of (Int64.add addr (Int64.of_int (max 0 (size - 1)))) in
  let p = ref first in
  while Int64.compare !p last <= 0 do
    if not (Hashtbl.mem t.pages !p) then
      Hashtbl.replace t.pages !p (Bytes.make page_size '\000');
    p := Int64.add !p 1L
  done

let protect t ~addr ~size =
  t.ro_regions <- (addr, Int64.add addr (Int64.of_int size)) :: t.ro_regions

let in_ro t a =
  List.exists (fun (lo, hi) -> a >= lo && a < hi) t.ro_regions

let is_mapped t a =
  Int64.unsigned_compare a canonical_limit < 0 && Hashtbl.mem t.pages (page_of a)

let read_u8 t a = Char.code (Bytes.get (get_page t a) (offset_of a))

let write_u8_unchecked t a v =
  Bytes.set (get_page t a) (offset_of a) (Char.chr (v land 0xFF))

let write_u8 t a v =
  if in_ro t a then raise (Fault (Read_only a));
  write_u8_unchecked t a v

let read_u64 t a =
  (* Fast path when the word does not straddle a page. *)
  let off = offset_of a in
  if off + 8 <= page_size then Bytes.get_int64_le (get_page t a) off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (read_u8 t (Int64.add a (Int64.of_int i))))
    done;
    !v
  end

let write_u64_raw t a v =
  let off = offset_of a in
  if off + 8 <= page_size then Bytes.set_int64_le (get_page t a) off v
  else
    for i = 0 to 7 do
      write_u8_unchecked t (Int64.add a (Int64.of_int i))
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
    done

let write_u64 t a v =
  if in_ro t a then raise (Fault (Read_only a));
  write_u64_raw t a v

let read_bytes t a n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (read_u8 t (Int64.add a (Int64.of_int i))))
  done;
  out

let write_bytes t a b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t (Int64.add a (Int64.of_int i)) (Char.code (Bytes.get b i))
  done

let read_cstring t a =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= 65536 then Buffer.contents buf
    else begin
      let c = read_u8 t (Int64.add a (Int64.of_int i)) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
    end
  in
  go 0

let write_cstring t a s =
  String.iteri (fun i c -> write_u8 t (Int64.add a (Int64.of_int i)) (Char.code c)) s;
  write_u8 t (Int64.add a (Int64.of_int (String.length s))) 0

module Ctype = Rsti_minic.Ctype
module Ir = Rsti_ir.Ir
module Ast = Rsti_minic.Ast

type event =
  | Ev_call of string
  | Ev_extern of string * int64 list
  | Ev_auth_fail of { func : string; modifier : int64; ptr : int64 }
  | Ev_attack of string
  | Ev_output of string

type trap =
  | Mem_fault of { fault : string; func : string; after_auth_fail : bool }
  | Bad_indirect_call of { target : int64; func : string; after_auth_fail : bool }
  | Div_by_zero of string
  | Stack_overflow
  | Step_limit_exceeded
  | Unknown_function of string
  | Pac_auth_failure of { func : string; modifier : int64; ptr : int64 }
  | Cfi_violation of { func : string; target : string }

let trap_to_string = function
  | Mem_fault { fault; func; after_auth_fail } ->
      Printf.sprintf "memory fault in %s: %s%s" func fault
        (if after_auth_fail then " [after PAC authentication failure]" else "")
  | Bad_indirect_call { target; func; after_auth_fail } ->
      Printf.sprintf "indirect call to invalid target 0x%Lx in %s%s" target func
        (if after_auth_fail then " [after PAC authentication failure]" else "")
  | Div_by_zero f -> "division by zero in " ^ f
  | Pac_auth_failure { func; modifier; ptr } ->
      Printf.sprintf
        "PAC authentication failure in %s (modifier 0x%Lx, pointer 0x%Lx): FPAC trap"
        func modifier ptr
  | Cfi_violation { func; target } ->
      Printf.sprintf "CFI violation in %s: indirect call to %s with mismatched signature"
        func target
  | Stack_overflow -> "stack overflow"
  | Step_limit_exceeded -> "step limit exceeded"
  | Unknown_function f -> "unknown function " ^ f

type status = Exited of int64 | Trapped of trap

type counts = {
  mutable instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable pac_signs : int;
  mutable pac_auths : int;
  mutable pac_strips : int;
  mutable pp_calls : int;
  mutable pac_charges : int;
}

(* One profiled (function, source line) pair. Attribution is exact, not
   sampled: every cycle the machine charges goes through [charge], which
   also adds it to the current site when profiling, so the sites of an
   outcome partition its cycle total. The per-site instrumentation
   counters ([s_pac_charges]/[s_strips]/[s_pp_calls]) mirror the global
   {!counts} ones so {!reprice} moves site cycles exactly too. *)
type site = {
  s_func : string;
  s_line : int;  (* 0 when the instruction carries no !dbg location *)
  mutable s_cycles : int;
  mutable s_instrs : int;
  mutable s_pac_charges : int;
  mutable s_strips : int;
  mutable s_pp_calls : int;
}

(* One PAC-unit operation captured by the flight recorder. [op_static_mod]
   is the modifier *constant* carried by the instruction (Mconst c and
   Mloc c both record c, before any slot-address XOR), which is exactly
   the class identity the static Equiv partition uses — incidents
   correlate with their static class through it. [op_modifier] is the
   runtime modifier actually fed to the PAC unit. *)
type op_kind =
  | Op_sign
  | Op_auth
  | Op_resign
  | Op_strip
  | Op_pp_sign
  | Op_pp_auth

type pac_op = {
  op_kind : op_kind;
  op_func : string;
  op_line : int;        (* 0 when the instruction carries no !dbg location *)
  op_key : Rsti_pa.Key.which;
  op_static_mod : int64;
  op_modifier : int64;
  op_src : int64;
  op_result : int64;
  op_ok : bool;         (* false only for a failing auth/resign *)
  op_cycle : int;
  op_instr : int;
}

(* The structured security-event record emitted at a failing auth. The
   expected signer is the failing site's own (static modifier, key) —
   the discipline says whoever signed this slot must have used exactly
   that pair; the observed signer is the sign operation that actually
   produced the failing pointer value ([None] = the value was never
   signed in this run: a raw overwrite). Detection latency is measured
   from the first attacker store (scenarios tag it through the intruder
   API) to the failing auth, in both cycles and instructions; [None]
   when no corruption was tagged (an organic failure). *)
type incident = {
  inc_func : string;
  inc_line : int;
  inc_key : Rsti_pa.Key.which;
  inc_static_mod : int64;
  inc_modifier : int64;
  inc_ptr : int64;
  inc_signer : pac_op option;
  inc_window : pac_op list;  (* last-N flight-recorder ops, oldest first *)
  inc_cycle : int;
  inc_instr : int;
  inc_corrupt : (int * int) option;  (* (cycle, instr) of the first tagged store *)
  inc_latency_cycles : int option;
  inc_latency_instrs : int option;
}

type outcome = {
  status : status;
  cycles : int;
  counts : counts;
  events : event list;
  output : string;
  call_profile : (string * int) list;
      (* defined-function call counts, descending *)
  extern_profile : (string * int) list;
      (* simulated-libc call counts, descending *)
  sites : site list;
      (* hot-site profile, cycles descending; [] unless profiling *)
  incidents : incident list;
      (* chronological; [] unless flight recording *)
}

let detected (o : outcome) =
  match o.status with
  | Trapped (Mem_fault { after_auth_fail = true; _ })
  | Trapped (Bad_indirect_call { after_auth_fail = true; _ })
  | Trapped (Pac_auth_failure _) ->
      true
  | _ -> false

(* Costs never influence control flow (the step limit counts
   instructions, not cycles), so a finished run's trace is identical
   under any cost record and the cycle total is the only thing to
   adjust. Each instrumentation price maps to one counter: [pac] was
   charged [pac_charges] times (resigns count twice; the pp mechanism's
   sign/auth price at [pp]), [strip] once per [pac_strips], [pp] once
   per [pp_calls], and [pac_spill] rides along with every [pac] charge
   on the [`Pac] backend and never on [`Shadow_mac]. The base ISA
   prices have no exact counters, so a change there is refused. *)
let reprice ~from ~to_ ~pac_spill_charged (o : outcome) =
  let d get = get to_ - get from in
  if
    d (fun (c : Cost.t) -> c.alu) <> 0
    || d (fun (c : Cost.t) -> c.load) <> 0
    || d (fun (c : Cost.t) -> c.store) <> 0
    || d (fun (c : Cost.t) -> c.gep) <> 0
    || d (fun (c : Cost.t) -> c.branch) <> 0
    || d (fun (c : Cost.t) -> c.call) <> 0
    || d (fun (c : Cost.t) -> c.extern_call) <> 0
  then invalid_arg "Interp.reprice: base ISA prices differ";
  let spill =
    if pac_spill_charged then d (fun (c : Cost.t) -> c.pac_spill) else 0
  in
  let d_pac = d (fun (c : Cost.t) -> c.pac) + spill in
  let d_strip = d (fun (c : Cost.t) -> c.strip) in
  let d_pp = d (fun (c : Cost.t) -> c.pp) in
  let cycles =
    o.cycles
    + (d_pac * o.counts.pac_charges)
    + (d_strip * o.counts.pac_strips)
    + (d_pp * o.counts.pp_calls)
  in
  let sites =
    match o.sites with
    | [] -> []
    | sites ->
        List.map
          (fun s ->
            {
              s with
              s_cycles =
                s.s_cycles
                + (d_pac * s.s_pac_charges)
                + (d_strip * s.s_strips)
                + (d_pp * s.s_pp_calls);
            })
          sites
        |> List.sort (fun a b ->
               match compare b.s_cycles a.s_cycles with
               | 0 -> compare (a.s_func, a.s_line) (b.s_func, b.s_line)
               | c -> c)
  in
  { o with cycles; sites }

type intruder = {
  read_word : int64 -> int64;
  write_word : int64 -> int64 -> unit;
  read_string : int64 -> string;
  write_string : int64 -> string -> unit;
  global_addr : string -> int64;
  func_addr : string -> int64;
  heap_allocs : unit -> (int64 * int) list;
  note : string -> unit;
}

type trigger = On_call of string * int | On_extern of string * int

type attack = { trigger : trigger; action : intruder -> unit }

(* ------------------------------------------------------------------ *)
(* Machine state                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  m : Ir.modul;
  mem : Memory.t;
  pac : Rsti_pa.Pac.ctx;
  costs : Cost.t;
  funcs_by_name : (string, Ir.func) Hashtbl.t;
  func_addrs : (string, int64) Hashtbl.t;    (* defined + libc *)
  code_map : (int64, [ `Defined of Ir.func | `Libc of string ]) Hashtbl.t;
  global_addrs : (string, int64) Hashtbl.t;
  string_addrs : int64 array;
  mutable heap_ptr : int64;
  mutable allocs : (int64 * int) list;
  mutable sp : int64;
  mutable cycles : int;
  counts : counts;
  mutable events : event list;  (* reverse *)
  out : Buffer.t;
  mutable steps : int;
  mutable step_limit : int;
  mutable auth_failed : bool;   (* any auth failure so far *)
  mutable call_counts : (string, int) Hashtbl.t;
  mutable extern_counts : (string, int) Hashtbl.t;
  mutable attacks : attack list;
  mutable rng : Rsti_util.Splitmix.t;
  mutable ran : bool;
  fpac : bool;
  cfi : bool;
  backend : [ `Pac | `Shadow_mac ];
  (* the shadow-MAC backend's table: slot address -> 64-bit MAC, held by
     the trusted runtime (CCFI stores it in protected memory) *)
  shadow : (int64, int64) Hashtbl.t;
  (* exact hot-site profiler; when off, the only cost on the hot path is
     one boolean load per charge and nothing allocates *)
  profiling : bool;
  prof_sites : (string * int, site) Hashtbl.t;
  mutable cur_site : site;
  (* PAC flight recorder; same discipline as the profiler — when off
     ([recording] = false), every PAC op pays one boolean test and
     nothing allocates. When on, the last [Array.length fr_buf] ops are
     kept in a preallocated ring. *)
  recording : bool;
  fr_buf : pac_op array;
  mutable fr_next : int;  (* total ops recorded; slot = fr_next mod cap *)
  signers : (int64, pac_op) Hashtbl.t;
      (* signed value -> the sign op that produced it (latest wins), so
         the observed signer survives even after falling out of the ring *)
  mutable incidents : incident list;  (* reverse *)
  mutable corrupt_at : (int * int) option;
      (* (cycle, instr) of the first intruder store, the corruption
         point detection latency is measured from *)
  mutable cur_line : int;  (* !dbg line of the dispatching instruction *)
}

exception Trap_exn of trap
exception Exit_exn of int64

let emit_event t ev = t.events <- ev :: t.events

let builtin_names =
  [
    "malloc"; "calloc"; "free"; "printf"; "puts"; "putchar"; "strlen"; "strcmp";
    "strncmp"; "strcpy"; "strncpy"; "strcat"; "memcpy"; "memset"; "memmove";
    "strstr"; "strchr"; "atoi"; "abs"; "exit"; "rand"; "srand"; "system";
    "mprotect"; "dlopen"; "mmap"; "socket"; "send"; "recv"; "open"; "read";
    "write"; "close"; "getenv"; "snprintf"; "fprintf"; "qsort"; "log"; "strdup";
    "sqrt"; "fabs"; "floor"; "ceil"; "pow"; "exec";
  ]

(* Execution begins (global init, entry dispatch) before any instruction
   has named a site; those charges land on the _start pseudo-site. *)
let boot_site () =
  {
    s_func = "_start";
    s_line = 0;
    s_cycles = 0;
    s_instrs = 0;
    s_pac_charges = 0;
    s_strips = 0;
    s_pp_calls = 0;
  }

(* Ring slots are overwritten before they are ever read, so the filler
   op is never observable. *)
let dummy_op =
  {
    op_kind = Op_strip;
    op_func = "";
    op_line = 0;
    op_key = Rsti_pa.Key.DA;
    op_static_mod = 0L;
    op_modifier = 0L;
    op_src = 0L;
    op_result = 0L;
    op_ok = true;
    op_cycle = 0;
    op_instr = 0;
  }

let create ?(costs = Cost.default) ?(seed = 0xC0FFEEL) ?(pp_table = []) ?(fpac = true)
    ?(cfi = false) ?(backend = `Pac) ?(profile = false) ?(flight = 0) (m : Ir.modul) =
  let mem = Memory.create () in
  let pac = Rsti_pa.Pac.make ~seed () in
  let funcs_by_name = Hashtbl.create 64 in
  let func_addrs = Hashtbl.create 64 in
  let code_map = Hashtbl.create 64 in
  List.iteri
    (fun i (f : Ir.func) ->
      let addr = Layout.code_addr_of_index Layout.text_base i in
      Hashtbl.replace funcs_by_name f.name f;
      Hashtbl.replace func_addrs f.name addr;
      Hashtbl.replace code_map addr (`Defined f))
    m.m_funcs;
  (* Externs and built-ins live in the simulated libc. *)
  let libc_syms =
    List.sort_uniq compare (builtin_names @ List.map fst m.m_externs)
  in
  List.iteri
    (fun i name ->
      if not (Hashtbl.mem func_addrs name) then begin
        let addr = Layout.code_addr_of_index Layout.libc_base i in
        Hashtbl.replace func_addrs name addr;
        Hashtbl.replace code_map addr (`Libc name)
      end)
    libc_syms;
  (* Globals. *)
  let global_addrs = Hashtbl.create 32 in
  let gp = ref Layout.globals_base in
  List.iter
    (fun (g : Ir.global_def) ->
      let size = max 8 (Ir.sizeof m g.gvar.v_ty) in
      Memory.map mem ~addr:!gp ~size;
      Hashtbl.replace global_addrs g.gvar.Rsti_minic.Tast.v_name !gp;
      gp := Int64.add !gp (Int64.of_int ((size + 7) / 8 * 8)))
    m.m_globals;
  (* Extern data objects (rare) get zeroed storage too. *)
  List.iter
    (fun (name, ty) ->
      match ty with
      | Ctype.Func _ -> ()
      | _ ->
          if not (Hashtbl.mem global_addrs name) then begin
            let size = max 8 (try Ir.sizeof m ty with _ -> 8) in
            Memory.map mem ~addr:!gp ~size;
            Hashtbl.replace global_addrs name !gp;
            gp := Int64.add !gp (Int64.of_int ((size + 7) / 8 * 8))
          end)
    m.m_externs;
  (* Strings in read-only data. *)
  let sp = ref Layout.rodata_base in
  let string_addrs =
    Array.map
      (fun s ->
        let addr = !sp in
        Memory.map mem ~addr ~size:(String.length s + 1);
        Memory.write_cstring mem addr s;
        sp := Int64.add !sp (Int64.of_int ((String.length s + 8) / 8 * 8));
        addr)
      m.m_strings
  in
  let boot = boot_site () in
  (* Pointer-to-pointer CE->FE metadata: read-only, as the paper requires. *)
  let pp_base = Int64.add Layout.rodata_base 0x8000L in
  if pp_table <> [] then begin
    Memory.map mem ~addr:pp_base ~size:(256 * 8);
    List.iter
      (fun (ce, fe_mod) ->
        Memory.write_u64_raw mem (Int64.add pp_base (Int64.of_int (ce * 8))) fe_mod)
      pp_table;
    Memory.protect mem ~addr:pp_base ~size:(256 * 8)
  end;
  {
    m;
    mem;
    pac;
    costs;
    funcs_by_name;
    func_addrs;
    code_map;
    global_addrs;
    string_addrs;
    heap_ptr = Layout.heap_base;
    allocs = [];
    sp = Layout.stack_top;
    cycles = 0;
    counts =
      { instrs = 0; loads = 0; stores = 0; pac_signs = 0; pac_auths = 0;
        pac_strips = 0; pp_calls = 0; pac_charges = 0 };
    events = [];
    out = Buffer.create 256;
    steps = 0;
    step_limit = 200_000_000;
    auth_failed = false;
    call_counts = Hashtbl.create 16;
    extern_counts = Hashtbl.create 16;
    attacks = [];
    rng = Rsti_util.Splitmix.create seed;
    ran = false;
    fpac;
    cfi;
    backend;
    shadow = Hashtbl.create 256;
    profiling = profile;
    prof_sites =
      (let h = Hashtbl.create 64 in
       if profile then Hashtbl.replace h ("_start", 0) boot;
       h);
    cur_site = boot;
    recording = flight > 0;
    fr_buf = (if flight > 0 then Array.make flight dummy_op else [||]);
    fr_next = 0;
    signers = Hashtbl.create (if flight > 0 then 64 else 1);
    incidents = [];
    corrupt_at = None;
    cur_line = 0;
  }

let pp_meta_base = Int64.add Layout.rodata_base 0x8000L

let pac_ctx t = t.pac

let global_addr t name =
  match Hashtbl.find_opt t.global_addrs name with
  | Some a -> a
  | None -> invalid_arg ("Interp.global_addr: unknown global " ^ name)

let func_addr t name =
  match Hashtbl.find_opt t.func_addrs name with
  | Some a -> a
  | None -> invalid_arg ("Interp.func_addr: unknown function " ^ name)

(* ------------------------------------------------------------------ *)
(* Attacker hooks                                                      *)
(* ------------------------------------------------------------------ *)

(* Every scenario corruption goes through the intruder's store hooks, so
   tagging the first one here marks the corruption point detection
   latency is measured from — no per-scenario bookkeeping needed. *)
let tag_corruption t =
  if t.corrupt_at = None then
    t.corrupt_at <- Some (t.cycles, t.counts.instrs)

let intruder_of t =
  {
    read_word = (fun a -> Memory.read_u64 t.mem a);
    write_word =
      (fun a v ->
        tag_corruption t;
        Memory.write_u64_raw t.mem a v);
    read_string = (fun a -> Memory.read_cstring t.mem a);
    write_string =
      (fun a s ->
        tag_corruption t;
        Memory.write_cstring t.mem a s);
    global_addr = (fun n -> global_addr t n);
    func_addr = (fun n -> func_addr t n);
    heap_allocs = (fun () -> t.allocs);
    note = (fun s -> emit_event t (Ev_attack s));
  }

let bump _t tbl name =
  let n = (match Hashtbl.find_opt tbl name with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace tbl name n;
  n

let fire_attacks t trig =
  List.iter
    (fun atk -> if atk.trigger = trig then atk.action (intruder_of t))
    t.attacks

(* ------------------------------------------------------------------ *)
(* Value and memory helpers                                            *)
(* ------------------------------------------------------------------ *)

let charge t c =
  t.cycles <- t.cycles + c;
  if t.profiling then t.cur_site.s_cycles <- t.cur_site.s_cycles + c

let step t =
  t.steps <- t.steps + 1;
  t.counts.instrs <- t.counts.instrs + 1;
  if t.profiling then t.cur_site.s_instrs <- t.cur_site.s_instrs + 1;
  if t.steps > t.step_limit then raise (Trap_exn Step_limit_exceeded)

(* Site switching, called (under [profiling] only) before each
   instruction executes: terminator and call-dispatch charges attribute
   to the site of the last instruction that ran, which keeps the
   partition exact without threading a site through every helper. *)
let set_site t (fn : Ir.func) (ins : Ir.instr) =
  let line = match ins.dbg with Some d -> d.Rsti_ir.Dinfo.dl_line | None -> 0 in
  let cur = t.cur_site in
  if not (cur.s_func == fn.name && cur.s_line = line) then
    let key = (fn.name, line) in
    match Hashtbl.find_opt t.prof_sites key with
    | Some s -> t.cur_site <- s
    | None ->
        let s =
          {
            s_func = fn.name;
            s_line = line;
            s_cycles = 0;
            s_instrs = 0;
            s_pac_charges = 0;
            s_strips = 0;
            s_pp_calls = 0;
          }
        in
        Hashtbl.replace t.prof_sites key s;
        t.cur_site <- s

let prof_pac t n =
  if t.profiling then
    t.cur_site.s_pac_charges <- t.cur_site.s_pac_charges + n

let prof_strip t =
  if t.profiling then t.cur_site.s_strips <- t.cur_site.s_strips + 1

let prof_pp t =
  if t.profiling then t.cur_site.s_pp_calls <- t.cur_site.s_pp_calls + 1

(* ------------------------------------------------------------------ *)
(* PAC flight recorder                                                 *)
(* ------------------------------------------------------------------ *)

(* The modifier constant an instruction carries, before the runtime
   slot-address XOR: the static Equiv class identity. *)
let static_modifier (m : Ir.modifier) =
  match m with Ir.Mconst c | Ir.Mloc c -> c

let op_kind_to_string = function
  | Op_sign -> "sign"
  | Op_auth -> "auth"
  | Op_resign -> "resign"
  | Op_strip -> "strip"
  | Op_pp_sign -> "pp_sign"
  | Op_pp_auth -> "pp_auth"

(* Callers guard on [t.recording]; this allocates one op record. *)
let record_op t ~kind ~func ~key ~static_mod ~modifier ~src ~result ~ok =
  let op =
    {
      op_kind = kind;
      op_func = func;
      op_line = t.cur_line;
      op_key = key;
      op_static_mod = static_mod;
      op_modifier = modifier;
      op_src = src;
      op_result = result;
      op_ok = ok;
      op_cycle = t.cycles;
      op_instr = t.counts.instrs;
    }
  in
  t.fr_buf.(t.fr_next mod Array.length t.fr_buf) <- op;
  t.fr_next <- t.fr_next + 1;
  (match kind with
  | Op_sign | Op_pp_sign | Op_resign ->
      if ok then Hashtbl.replace t.signers result op
  | Op_auth | Op_pp_auth | Op_strip -> ());
  op

let flight_window t =
  let cap = Array.length t.fr_buf in
  let n = min t.fr_next cap in
  List.init n (fun i -> t.fr_buf.((t.fr_next - n + i) mod cap))

(* Build and store the incident for a failing auth. The failing op has
   already been pushed into the ring, so the window ends with it. *)
let record_incident t ~func ~key ~static_mod ~modifier ~ptr =
  let corrupt = t.corrupt_at in
  let latency f =
    Option.map (fun (cy, ins) -> f (t.cycles, t.counts.instrs) (cy, ins)) corrupt
  in
  let inc =
    {
      inc_func = func;
      inc_line = t.cur_line;
      inc_key = key;
      inc_static_mod = static_mod;
      inc_modifier = modifier;
      inc_ptr = ptr;
      inc_signer = Hashtbl.find_opt t.signers ptr;
      inc_window = flight_window t;
      inc_cycle = t.cycles;
      inc_instr = t.counts.instrs;
      inc_corrupt = corrupt;
      inc_latency_cycles = latency (fun (now, _) (cy, _) -> now - cy);
      inc_latency_instrs = latency (fun (_, now) (_, ins) -> now - ins);
    }
  in
  t.incidents <- inc :: t.incidents

let guard_mem t func f =
  try f ()
  with Memory.Fault fault ->
    raise
      (Trap_exn
         (Mem_fault
            {
              fault = Memory.fault_to_string fault;
              func;
              after_auth_fail = t.auth_failed;
            }))

(* Loads and stores honour the C type's width: char is one byte,
   everything else a 64-bit word. *)
let load_typed t func ty addr =
  guard_mem t func (fun () ->
      match Ctype.strip_const ty with
      | Ctype.Char -> Int64.of_int (Memory.read_u8 t.mem addr)
      | _ -> Memory.read_u64 t.mem addr)

let store_typed t func ty addr v =
  guard_mem t func (fun () ->
      match Ctype.strip_const ty with
      | Ctype.Char -> Memory.write_u8 t.mem addr (Int64.to_int (Int64.logand v 0xFFL))
      | _ -> Memory.write_u64 t.mem addr v)

let malloc t size =
  if size < 0 || size > 0x1000000 then 0L (* 16 MiB cap: huge requests fail *)
  else begin
  let size = max 1 size in
  let addr = t.heap_ptr in
  Memory.map t.mem ~addr ~size;
  t.heap_ptr <- Int64.add t.heap_ptr (Int64.of_int ((size + 15) / 16 * 16));
  t.allocs <- (addr, size) :: t.allocs;
  addr
  end

(* ------------------------------------------------------------------ *)
(* printf                                                              *)
(* ------------------------------------------------------------------ *)

let format_printf t fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let next () =
    match !args with
    | [] -> 0L
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      incr i;
      (* skip width/flags *)
      while !i < n && (match fmt.[!i] with '0' .. '9' | '-' | '.' | 'l' -> true | _ -> false) do
        incr i
      done;
      (match fmt.[!i] with
      | 'd' | 'i' | 'u' -> Buffer.add_string buf (Int64.to_string (next ()))
      | 'x' -> Buffer.add_string buf (Printf.sprintf "%Lx" (next ()))
      | 'p' -> Buffer.add_string buf (Printf.sprintf "0x%Lx" (next ()))
      | 'c' -> Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand (next ()) 0xFFL))
                                    )
      | 's' -> Buffer.add_string buf (Memory.read_cstring t.mem (next ()))
      | 'f' | 'g' ->
          Buffer.add_string buf (Printf.sprintf "%g" (Int64.float_of_bits (next ())))
      | '%' -> Buffer.add_char buf '%'
      | c -> Buffer.add_char buf c);
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Builtins (the simulated libc)                                       *)
(* ------------------------------------------------------------------ *)

let rec run_builtin t name (args : int64 list) : int64 =
  let n = bump t t.extern_counts name in
  emit_event t (Ev_extern (name, args));
  charge t t.costs.extern_call;
  let result = run_builtin_body t name args in
  (* Hooks fire after the call completes, so "on the nth malloc" sees the
     allocation it corrupts. *)
  fire_attacks t (On_extern (name, n));
  result

and run_builtin_body t name (args : int64 list) : int64 =
  let arg i = match List.nth_opt args i with Some v -> v | None -> 0L in
  let sarg i = Memory.read_cstring t.mem (arg i) in
  match name with
  | "malloc" -> malloc t (Int64.to_int (arg 0))
  | "calloc" -> malloc t (Int64.to_int (arg 0) * Int64.to_int (arg 1))
  | "mmap" -> malloc t (Int64.to_int (arg 1))
  | "free" -> 0L
  | "printf" | "fprintf" ->
      let off = if name = "fprintf" then 1 else 0 in
      let s = format_printf t (sarg off) (List.filteri (fun i _ -> i > off) args) in
      Buffer.add_string t.out s;
      emit_event t (Ev_output s);
      Int64.of_int (String.length s)
  | "snprintf" ->
      let s = format_printf t (sarg 2) (List.filteri (fun i _ -> i > 2) args) in
      let cap = Int64.to_int (arg 1) in
      let s' = if String.length s >= cap && cap > 0 then String.sub s 0 (cap - 1) else s in
      Memory.write_cstring t.mem (arg 0) s';
      Int64.of_int (String.length s)
  | "puts" ->
      let s = sarg 0 ^ "\n" in
      Buffer.add_string t.out s;
      emit_event t (Ev_output s);
      0L
  | "putchar" ->
      Buffer.add_char t.out (Char.chr (Int64.to_int (Int64.logand (arg 0) 0xFFL)));
      arg 0
  | "strlen" -> Int64.of_int (String.length (sarg 0))
  | "strcmp" -> Int64.of_int (compare (sarg 0) (sarg 1))
  | "strncmp" ->
      let cap s n = if String.length s > n then String.sub s 0 n else s in
      let n = Int64.to_int (arg 2) in
      Int64.of_int (compare (cap (sarg 0) n) (cap (sarg 1) n))
  | "strcpy" ->
      (* Deliberately unsafe, like the real thing: this is the classic
         buffer-overflow vector the attack scenarios exploit. *)
      Memory.write_cstring t.mem (arg 0) (sarg 1);
      arg 0
  | "strncpy" ->
      let s = sarg 1 and n = Int64.to_int (arg 2) in
      let s = if String.length s > n then String.sub s 0 n else s in
      Memory.write_cstring t.mem (arg 0) s;
      arg 0
  | "strcat" ->
      Memory.write_cstring t.mem
        (Int64.add (arg 0) (Int64.of_int (String.length (sarg 0))))
        (sarg 1);
      arg 0
  | "memcpy" | "memmove" ->
      let n = Int64.to_int (arg 2) in
      let b = Memory.read_bytes t.mem (arg 1) n in
      Memory.write_bytes t.mem (arg 0) b;
      arg 0
  | "memset" ->
      let v = Int64.to_int (Int64.logand (arg 1) 0xFFL) in
      let n = Int64.to_int (arg 2) in
      for i = 0 to n - 1 do
        Memory.write_u8 t.mem (Int64.add (arg 0) (Int64.of_int i)) v
      done;
      arg 0
  | "strstr" -> (
      let hay = sarg 0 and needle = sarg 1 in
      if needle = "" then arg 0
      else
        let hl = String.length hay and nl = String.length needle in
        let rec find i =
          if i + nl > hl then 0L
          else if String.sub hay i nl = needle then Int64.add (arg 0) (Int64.of_int i)
          else find (i + 1)
        in
        find 0)
  | "strchr" -> (
      let s = sarg 0 and c = Char.chr (Int64.to_int (Int64.logand (arg 1) 0xFFL)) in
      match String.index_opt s c with
      | Some i -> Int64.add (arg 0) (Int64.of_int i)
      | None -> 0L)
  | "atoi" -> ( try Int64.of_string (String.trim (sarg 0)) with _ -> 0L)
  | "abs" -> Int64.abs (arg 0)
  | "exit" -> raise (Exit_exn (arg 0))
  | "rand" -> Int64.of_int (Rsti_util.Splitmix.int t.rng 0x7FFFFFFF)
  | "srand" ->
      t.rng <- Rsti_util.Splitmix.create (arg 0);
      0L
  | "sqrt" -> Int64.bits_of_float (sqrt (Int64.float_of_bits (arg 0)))
  | "fabs" -> Int64.bits_of_float (Float.abs (Int64.float_of_bits (arg 0)))
  | "floor" -> Int64.bits_of_float (Float.floor (Int64.float_of_bits (arg 0)))
  | "ceil" -> Int64.bits_of_float (Float.ceil (Int64.float_of_bits (arg 0)))
  | "pow" ->
      Int64.bits_of_float
        (Float.pow (Int64.float_of_bits (arg 0)) (Int64.float_of_bits (arg 1)))
  | "log" -> Int64.bits_of_float (Float.log (Int64.float_of_bits (arg 0)))
  | "getenv" -> 0L
  | "strdup" ->
      let s = sarg 0 in
      let p = malloc t (String.length s + 1) in
      if p <> 0L then Memory.write_cstring t.mem p s;
      p
  | "qsort" ->
      (* A real qsort: the library calls back *into* the (instrumented)
         program through the comparator pointer — the uninstrumented-
         library boundary case of section 4.6. Insertion sort keeps the
         comparator call count deterministic. *)
      let base = arg 0 in
      let n = Int64.to_int (arg 1) in
      let size = Int64.to_int (arg 2) in
      let cmp_ptr = arg 3 in
      let call_cmp a b =
        match Hashtbl.find_opt t.code_map cmp_ptr with
        | Some (`Defined f) -> call_function t f [ a; b ]
        | Some (`Libc nm) -> run_builtin t nm [ a; b ]
        | None ->
            raise
              (Trap_exn
                 (Bad_indirect_call
                    { target = cmp_ptr; func = "qsort"; after_auth_fail = t.auth_failed }))
      in
      if n > 1 && size > 0 && size <= 4096 then begin
        let elem i = Int64.add base (Int64.of_int (i * size)) in
        let buf = Bytes.create size in
        for i = 1 to n - 1 do
          Bytes.blit (Memory.read_bytes t.mem (elem i) size) 0 buf 0 size;
          let j = ref (i - 1) in
          let continue_ = ref true in
          while !j >= 0 && !continue_ do
            (* compare element j with the held element: the comparator
               receives the *addresses*, C-style *)
            Memory.write_bytes t.mem (elem (!j + 1)) buf;
            let held_addr = elem (!j + 1) in
            if Int64.compare (call_cmp (elem !j) held_addr) 0L > 0 then begin
              Memory.write_bytes t.mem (elem (!j + 1))
                (Memory.read_bytes t.mem (elem !j) size);
              decr j
            end
            else continue_ := false
          done;
          Memory.write_bytes t.mem (elem (!j + 1)) buf
        done
      end;
      0L
  | "system" | "mprotect" | "dlopen" | "exec" | "socket" | "send" | "recv"
  | "open" | "read" | "write" | "close" ->
      (* Security-sensitive sinks: reaching one of these with attacker-
         controlled state is what scenarios check for in the event list. *)
      0L
  | _ ->
      (* A declared extern we have no model for behaves as a generic libc
         stub: it runs (the event is recorded above) and returns 0. This
         is what attack scenarios that redirect control into arbitrary
         libc functions (AOCR's _IO_new_file_overflow, etc.) rely on. *)
      if Hashtbl.mem t.func_addrs name then 0L
      else raise (Trap_exn (Unknown_function name))

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

and eval t (regs : int64 array) (v : Ir.value) : int64 =
  match v with
  | Ir.Imm n -> n
  | Ir.Fimm x -> Int64.bits_of_float x
  | Ir.Reg r -> regs.(r)
  | Ir.Global g -> global_addr t g
  | Ir.Funcaddr f -> func_addr t f
  | Ir.Str i -> t.string_addrs.(i)
  | Ir.Null -> 0L

and modifier_value t regs (m : Ir.modifier) (slot_addr : Ir.value) : int64 =
  match m with
  | Ir.Mconst c -> c
  | Ir.Mloc c -> Int64.logxor c (eval t regs slot_addr)

and mac_of t key ~modifier value =
  Rsti_pa.Qarma.encrypt
    ~key:(Rsti_pa.Key.lookup (Rsti_pa.Pac.keys t.pac) key)
    ~tweak:modifier value

and exec_shadow_mac t fname regs (p : Ir.pac) =
  (* section 7: the same scope-type modifiers enforced through a
     CCFI-style MAC stored beside the object instead of in pointer bits.
     Pointers stay raw; each op pays the MAC plus a shadow access. *)
  let src = eval t regs p.p_src in
  let m = modifier_value t regs p.p_mod p.p_slot_addr in
  let slot = eval t regs p.p_slot_addr in
  match p.p_kind with
  | Ir.Ksign ->
      charge t (t.costs.pac + t.costs.load + t.costs.store);
      t.counts.pac_signs <- t.counts.pac_signs + 1;
      t.counts.pac_charges <- t.counts.pac_charges + 1;
      prof_pac t 1;
      if Int64.equal src 0L then Hashtbl.remove t.shadow slot
      else Hashtbl.replace t.shadow slot (mac_of t p.p_key ~modifier:m src);
      if t.recording then
        ignore
          (record_op t ~kind:Op_sign ~func:fname ~key:p.p_key
             ~static_mod:(static_modifier p.p_mod) ~modifier:m ~src ~result:src
             ~ok:true);
      regs.(p.p_dst) <- src
  | Ir.Kauth ->
      charge t (t.costs.pac + t.costs.load);
      t.counts.pac_auths <- t.counts.pac_auths + 1;
      t.counts.pac_charges <- t.counts.pac_charges + 1;
      prof_pac t 1;
      let ok =
        if Int64.equal src 0L then not (Hashtbl.mem t.shadow slot)
        else
          match Hashtbl.find_opt t.shadow slot with
          | Some expected -> Int64.equal expected (mac_of t p.p_key ~modifier:m src)
          | None -> false
      in
      if ok then begin
        if t.recording then
          ignore
            (record_op t ~kind:Op_auth ~func:fname ~key:p.p_key
               ~static_mod:(static_modifier p.p_mod) ~modifier:m ~src
               ~result:src ~ok:true);
        regs.(p.p_dst) <- src
      end
      else begin
        t.auth_failed <- true;
        emit_event t (Ev_auth_fail { func = fname; modifier = m; ptr = src });
        if t.recording then begin
          ignore
            (record_op t ~kind:Op_auth ~func:fname ~key:p.p_key
               ~static_mod:(static_modifier p.p_mod) ~modifier:m ~src
               ~result:src ~ok:false);
          record_incident t ~func:fname ~key:p.p_key
            ~static_mod:(static_modifier p.p_mod) ~modifier:m ~ptr:src
        end;
        if t.fpac then
          raise (Trap_exn (Pac_auth_failure { func = fname; modifier = m; ptr = src }));
        regs.(p.p_dst) <- Rsti_pa.Vaddr.corrupt (Rsti_pa.Pac.layout t.pac) src
      end
  | Ir.Kresign ->
      (* casts carry no per-slot state under the shadow backend *)
      charge t (2 * t.costs.pac);
      t.counts.pac_auths <- t.counts.pac_auths + 1;
      t.counts.pac_signs <- t.counts.pac_signs + 1;
      t.counts.pac_charges <- t.counts.pac_charges + 2;
      prof_pac t 2;
      if t.recording then
        ignore
          (record_op t ~kind:Op_resign ~func:fname ~key:p.p_key
             ~static_mod:(static_modifier p.p_mod) ~modifier:m ~src ~result:src
             ~ok:true);
      regs.(p.p_dst) <- src
  | Ir.Kstrip ->
      charge t t.costs.strip;
      t.counts.pac_strips <- t.counts.pac_strips + 1;
      prof_strip t;
      if t.recording then
        ignore
          (record_op t ~kind:Op_strip ~func:fname ~key:p.p_key
             ~static_mod:(static_modifier p.p_mod)
             ~modifier:(static_modifier p.p_mod) ~src ~result:src ~ok:true);
      regs.(p.p_dst) <- src

and exec_pac t fname regs (p : Ir.pac) =
  if t.backend = `Shadow_mac then exec_shadow_mac t fname regs p
  else begin
  let src = eval t regs p.p_src in
  let key = p.p_key in
  let record_fail ~kind ~static_mod ~result modifier ptr =
    t.auth_failed <- true;
    emit_event t (Ev_auth_fail { func = fname; modifier; ptr });
    if t.recording then begin
      ignore
        (record_op t ~kind ~func:fname ~key ~static_mod ~modifier ~src:ptr
           ~result ~ok:false);
      record_incident t ~func:fname ~key ~static_mod ~modifier ~ptr
    end;
    (* ARMv8.6 FPAC (implemented by the M1): a failing aut* traps
       synchronously instead of leaving a corrupted pointer behind.
       Without it, a later xpac strip could launder the corruption. *)
    if t.fpac then
      raise (Trap_exn (Pac_auth_failure { func = fname; modifier; ptr }))
  in
  match p.p_kind with
  | Ir.Ksign ->
      charge t (t.costs.pac + t.costs.pac_spill);
      t.counts.pac_signs <- t.counts.pac_signs + 1;
      t.counts.pac_charges <- t.counts.pac_charges + 1;
      prof_pac t 1;
      let m = modifier_value t regs p.p_mod p.p_slot_addr in
      let signed = Rsti_pa.Pac.sign t.pac ~key ~modifier:m src in
      if t.recording then
        ignore
          (record_op t ~kind:Op_sign ~func:fname ~key
             ~static_mod:(static_modifier p.p_mod) ~modifier:m ~src
             ~result:signed ~ok:true);
      regs.(p.p_dst) <- signed
  | Ir.Kauth -> (
      charge t (t.costs.pac + t.costs.pac_spill);
      t.counts.pac_auths <- t.counts.pac_auths + 1;
      t.counts.pac_charges <- t.counts.pac_charges + 1;
      prof_pac t 1;
      let m = modifier_value t regs p.p_mod p.p_slot_addr in
      match Rsti_pa.Pac.auth t.pac ~key ~modifier:m src with
      | Ok v ->
          if t.recording then
            ignore
              (record_op t ~kind:Op_auth ~func:fname ~key
                 ~static_mod:(static_modifier p.p_mod) ~modifier:m ~src
                 ~result:v ~ok:true);
          regs.(p.p_dst) <- v
      | Error corrupted ->
          record_fail ~kind:Op_auth ~static_mod:(static_modifier p.p_mod)
            ~result:corrupted m src;
          regs.(p.p_dst) <- corrupted)
  | Ir.Kresign -> (
      charge t (2 * (t.costs.pac + t.costs.pac_spill));
      t.counts.pac_auths <- t.counts.pac_auths + 1;
      t.counts.pac_signs <- t.counts.pac_signs + 1;
      t.counts.pac_charges <- t.counts.pac_charges + 2;
      prof_pac t 2;
      (* Fused aut+pac. In this codebase's discipline in-flight values are
         raw (canonical), so the pair acts as a checked identity; a signed
         value (the pp mechanism) gets a real authenticate + re-sign. *)
      if not (Rsti_pa.Pac.is_signed t.pac src) then begin
        if t.recording then
          ignore
            (record_op t ~kind:Op_resign ~func:fname ~key
               ~static_mod:(static_modifier p.p_mod)
               ~modifier:(modifier_value t regs p.p_mod p.p_slot_addr)
               ~src ~result:src ~ok:true);
        regs.(p.p_dst) <- src
      end
      else begin
        let mf = modifier_value t regs p.p_mod_from p.p_slot_addr in
        let mt = modifier_value t regs p.p_mod p.p_slot_addr in
        match Rsti_pa.Pac.auth t.pac ~key ~modifier:mf src with
        | Ok v ->
            let resigned = Rsti_pa.Pac.sign t.pac ~key ~modifier:mt v in
            if t.recording then
              ignore
                (record_op t ~kind:Op_resign ~func:fname ~key
                   ~static_mod:(static_modifier p.p_mod) ~modifier:mt ~src
                   ~result:resigned ~ok:true);
            regs.(p.p_dst) <- resigned
        | Error corrupted ->
            record_fail ~kind:Op_resign
              ~static_mod:(static_modifier p.p_mod_from) ~result:corrupted mf
              src;
            regs.(p.p_dst) <- corrupted
      end)
  | Ir.Kstrip ->
      charge t t.costs.strip;
      t.counts.pac_strips <- t.counts.pac_strips + 1;
      prof_strip t;
      let stripped = Rsti_pa.Pac.strip t.pac src in
      if t.recording then
        ignore
          (record_op t ~kind:Op_strip ~func:fname ~key
             ~static_mod:(static_modifier p.p_mod)
             ~modifier:(static_modifier p.p_mod) ~src ~result:stripped
             ~ok:true);
      regs.(p.p_dst) <- stripped
  end

and exec_pp t fname regs (pp : Ir.pp_call) =
  charge t t.costs.pp;
  t.counts.pp_calls <- t.counts.pp_calls + 1;
  prof_pp t;
  let fe_modifier ce =
    Memory.read_u64 t.mem (Int64.add pp_meta_base (Int64.of_int (ce * 8)))
  in
  match pp with
  | Ir.Pp_add _ -> () (* table is static in our model; cost only *)
  | Ir.Pp_sign { dst; src; ce; slot_addr } ->
      let fe = fe_modifier ce in
      let m = Int64.logxor fe (eval t regs slot_addr) in
      t.counts.pac_signs <- t.counts.pac_signs + 1;
      let signed =
        Rsti_pa.Pac.sign t.pac ~key:Rsti_pa.Key.DA ~modifier:m
          (eval t regs src)
      in
      if t.recording then
        ignore
          (record_op t ~kind:Op_pp_sign ~func:fname ~key:Rsti_pa.Key.DA
             ~static_mod:fe ~modifier:m ~src:(eval t regs src) ~result:signed
             ~ok:true);
      regs.(dst) <- signed
  | Ir.Pp_add_tbi { dst; src; ce } ->
      regs.(dst) <- Rsti_pa.Vaddr.with_top_byte (eval t regs src) ce
  | Ir.Pp_auth { dst; src; slot_addr } -> (
      let v = eval t regs src in
      let ce = Rsti_pa.Vaddr.top_byte v in
      let fe = fe_modifier ce in
      let m = Int64.logxor fe (eval t regs slot_addr) in
      t.counts.pac_auths <- t.counts.pac_auths + 1;
      match Rsti_pa.Pac.auth t.pac ~key:Rsti_pa.Key.DA ~modifier:m v with
      | Ok ok ->
          if t.recording then
            ignore
              (record_op t ~kind:Op_pp_auth ~func:fname ~key:Rsti_pa.Key.DA
                 ~static_mod:fe ~modifier:m ~src:v ~result:ok ~ok:true);
          regs.(dst) <- Rsti_pa.Vaddr.with_top_byte ok 0
      | Error corrupted ->
          t.auth_failed <- true;
          emit_event t (Ev_auth_fail { func = fname; modifier = m; ptr = v });
          if t.recording then begin
            ignore
              (record_op t ~kind:Op_pp_auth ~func:fname ~key:Rsti_pa.Key.DA
                 ~static_mod:fe ~modifier:m ~src:v ~result:corrupted ~ok:false);
            record_incident t ~func:fname ~key:Rsti_pa.Key.DA ~static_mod:fe
              ~modifier:m ~ptr:v
          end;
          if t.fpac then
            raise (Trap_exn (Pac_auth_failure { func = fname; modifier = m; ptr = v }));
          regs.(dst) <- corrupted)

and binop_int op a b fname =
  match op with
  | Ast.Add -> Int64.add a b
  | Ast.Sub -> Int64.sub a b
  | Ast.Mul -> Int64.mul a b
  | Ast.Div ->
      if b = 0L then raise (Trap_exn (Div_by_zero fname)) else Int64.div a b
  | Ast.Mod ->
      if b = 0L then raise (Trap_exn (Div_by_zero fname)) else Int64.rem a b
  | Ast.Eq -> if Int64.equal a b then 1L else 0L
  | Ast.Ne -> if Int64.equal a b then 0L else 1L
  | Ast.Lt -> if Int64.compare a b < 0 then 1L else 0L
  | Ast.Le -> if Int64.compare a b <= 0 then 1L else 0L
  | Ast.Gt -> if Int64.compare a b > 0 then 1L else 0L
  | Ast.Ge -> if Int64.compare a b >= 0 then 1L else 0L
  | Ast.Bitand -> Int64.logand a b
  | Ast.Bitor -> Int64.logor a b
  | Ast.Bitxor -> Int64.logxor a b
  | Ast.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Ast.Shr -> Int64.shift_right a (Int64.to_int b land 63)
  | Ast.Logand -> if a <> 0L && b <> 0L then 1L else 0L
  | Ast.Logor -> if a <> 0L || b <> 0L then 1L else 0L

and binop_float op a b fname =
  let x = Int64.float_of_bits a and y = Int64.float_of_bits b in
  let bool v = if v then 1L else 0L in
  match op with
  | Ast.Add -> Int64.bits_of_float (x +. y)
  | Ast.Sub -> Int64.bits_of_float (x -. y)
  | Ast.Mul -> Int64.bits_of_float (x *. y)
  | Ast.Div -> Int64.bits_of_float (x /. y)
  | Ast.Mod -> Int64.bits_of_float (Float.rem x y)
  | Ast.Eq -> bool (x = y)
  | Ast.Ne -> bool (x <> y)
  | Ast.Lt -> bool (x < y)
  | Ast.Le -> bool (x <= y)
  | Ast.Gt -> bool (x > y)
  | Ast.Ge -> bool (x >= y)
  | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl | Ast.Shr | Ast.Logand
  | Ast.Logor ->
      ignore fname;
      binop_int op a b fname

(* Signature-based CFI (the LLVM cfi-icall / vfGuard style baseline the
   paper's introduction contrasts RSTI with): an indirect call may only
   land on a function whose prototype matches the call site's static
   signature. It sees nothing of data pointers. *)
and signatures_match (arg_tys : Ctype.t list) (param_tys : Ctype.t list) variadic =
  let rec go a p =
    match (a, p) with
    | [], [] -> true
    | _ :: _, [] -> variadic
    | [], _ :: _ -> false
    | ta :: a', tp :: p' ->
        Ctype.equal (Ctype.strip_all_quals ta) (Ctype.strip_all_quals tp) && go a' p'
  in
  go arg_tys param_tys

and check_cfi _t caller arg_tys (f : Ir.func) =
  let param_tys = List.map (fun (p : Rsti_minic.Tast.var) -> p.v_ty) f.params in
  if not (signatures_match arg_tys param_tys false) then
    raise (Trap_exn (Cfi_violation { func = caller; target = f.name }))

and check_cfi_libc t caller arg_tys name =
  match List.assoc_opt name t.m.Ir.m_externs with
  | Some (Ctype.Func sg) ->
      if not (signatures_match arg_tys sg.Ctype.params sg.Ctype.variadic) then
        raise (Trap_exn (Cfi_violation { func = caller; target = name }))
  | _ -> () (* unknown prototype: coarse CFI allows it *)

and call_function t (fn : Ir.func) (args : int64 list) : int64 =
  let n = bump t t.call_counts fn.name in
  emit_event t (Ev_call fn.name);
  fire_attacks t (On_call (fn.name, n));
  charge t t.costs.call;
  let regs = Array.make (max fn.nregs (List.length args)) 0L in
  List.iteri (fun i a -> if i < Array.length regs then regs.(i) <- a) args;
  let saved_sp = t.sp in
  let result = exec_blocks t fn regs in
  t.sp <- saved_sp;
  result

and exec_blocks t (fn : Ir.func) regs : int64 =
  let rec run_block label =
    let blk = fn.blocks.(label) in
    List.iter (exec_instr t fn regs) blk.instrs;
    match blk.term with
    | Ir.Ret None ->
        charge t t.costs.branch;
        0L
    | Ir.Ret (Some v) ->
        charge t t.costs.branch;
        eval t regs v
    | Ir.Br l ->
        charge t t.costs.branch;
        step t;
        run_block l
    | Ir.Condbr (c, a, b) ->
        charge t t.costs.branch;
        step t;
        run_block (if eval t regs c <> 0L then a else b)
    | Ir.Unreachable -> raise (Trap_exn (Unknown_function (fn.name ^ ":unreachable")))
  in
  run_block 0

and exec_instr t (fn : Ir.func) regs (ins : Ir.instr) : unit =
  if t.profiling then set_site t fn ins;
  if t.recording then
    t.cur_line <-
      (match ins.dbg with Some d -> d.Rsti_ir.Dinfo.dl_line | None -> 0);
  step t;
  match ins.i with
  | Ir.Alloca { dst; ty; _ } ->
      charge t t.costs.alu;
      let size = max 8 (Ir.sizeof t.m ty) in
      let aligned = (size + 15) / 16 * 16 in
      t.sp <- Int64.sub t.sp (Int64.of_int aligned);
      if t.sp < Layout.stack_limit then raise (Trap_exn Stack_overflow);
      Memory.map t.mem ~addr:t.sp ~size:aligned;
      regs.(dst) <- t.sp
  | Ir.Load { dst; addr; ty; _ } ->
      charge t t.costs.load;
      t.counts.loads <- t.counts.loads + 1;
      regs.(dst) <- load_typed t fn.name ty (eval t regs addr)
  | Ir.Store { src; addr; ty; _ } ->
      charge t t.costs.store;
      t.counts.stores <- t.counts.stores + 1;
      store_typed t fn.name ty (eval t regs addr) (eval t regs src)
  | Ir.Gep { dst; base; sname; field } ->
      charge t t.costs.gep;
      let off, _ = Ir.field_offset t.m sname field in
      regs.(dst) <- Int64.add (eval t regs base) (Int64.of_int off)
  | Ir.Gepidx { dst; base; elem; idx } ->
      charge t t.costs.gep;
      let size = Int64.of_int (Ir.sizeof t.m elem) in
      regs.(dst) <- Int64.add (eval t regs base) (Int64.mul size (eval t regs idx))
  | Ir.Bitcast { dst; src; _ } ->
      charge t t.costs.alu;
      regs.(dst) <- eval t regs src
  | Ir.Binop { dst; op; fl; a; b } ->
      charge t t.costs.alu;
      let va = eval t regs a and vb = eval t regs b in
      regs.(dst) <-
        (match fl with
        | Ir.Iop -> binop_int op va vb fn.name
        | Ir.Fop -> binop_float op va vb fn.name)
  | Ir.Neg { dst; fl; src } ->
      charge t t.costs.alu;
      let v = eval t regs src in
      regs.(dst) <-
        (match fl with
        | Ir.Iop -> Int64.neg v
        | Ir.Fop -> Int64.bits_of_float (-.Int64.float_of_bits v))
  | Ir.Lognot { dst; src } ->
      charge t t.costs.alu;
      regs.(dst) <- (if eval t regs src = 0L then 1L else 0L)
  | Ir.Bitnot { dst; src } ->
      charge t t.costs.alu;
      regs.(dst) <- Int64.lognot (eval t regs src)
  | Ir.Cast_num { dst; src; from_ty; to_ty } ->
      charge t t.costs.alu;
      let v = eval t regs src in
      let f = Ctype.strip_all_quals from_ty and g = Ctype.strip_all_quals to_ty in
      regs.(dst) <-
        (match (f, g) with
        | (Ctype.Char | Ctype.Int | Ctype.Long), Ctype.Double ->
            Int64.bits_of_float (Int64.to_float v)
        | Ctype.Double, (Ctype.Char | Ctype.Int | Ctype.Long) ->
            Int64.of_float (Int64.float_of_bits v)
        | _, Ctype.Char -> Int64.logand v 0xFFL
        | _, Ctype.Int | _, Ctype.Long | _, _ -> v)
  | Ir.Call { dst; callee; args; arg_tys; _ } ->
      let arg_tys_of_call = arg_tys in
      let argv = List.map (eval t regs) args in
      let result =
        match callee with
        | Ir.Direct name -> dispatch_call t fn.name name argv
        | Ir.Indirect c -> (
            let target = eval t regs c in
            match Hashtbl.find_opt t.code_map target with
            | Some (`Defined f) ->
                if t.cfi then check_cfi t fn.name arg_tys_of_call f;
                call_function t f argv
            | Some (`Libc name) ->
                if t.cfi then check_cfi_libc t fn.name arg_tys_of_call name;
                run_builtin t name argv
            | None ->
                raise
                  (Trap_exn
                     (Bad_indirect_call
                        { target; func = fn.name; after_auth_fail = t.auth_failed })))
      in
      (match dst with Some d -> regs.(d) <- result | None -> ())
  | Ir.Pac p -> exec_pac t fn.name regs p
  | Ir.Pp pp -> exec_pp t fn.name regs pp

and dispatch_call t caller name argv =
  match Hashtbl.find_opt t.funcs_by_name name with
  | Some f -> call_function t f argv
  | None ->
      if List.mem name builtin_names || Hashtbl.mem t.func_addrs name then
        run_builtin t name argv
      else begin
        ignore caller;
        raise (Trap_exn (Unknown_function name))
      end

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let run ?(attacks = []) ?step_limit ?(entry = "main") t =
  if t.ran then invalid_arg "Interp.run: machine already ran; create a fresh one";
  t.ran <- true;
  t.attacks <- attacks;
  Option.iter (fun l -> t.step_limit <- l) step_limit;
  let status =
    try
      (match Hashtbl.find_opt t.funcs_by_name Ir.global_init_name with
      | Some init -> ignore (call_function t init [])
      | None -> ());
      match Hashtbl.find_opt t.funcs_by_name entry with
      | Some f -> Exited (call_function t f [])
      | None -> Trapped (Unknown_function entry)
    with
    | Trap_exn tr -> Trapped tr
    | Exit_exn code -> Exited code
  in
  let profile tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let sites =
    if not t.profiling then []
    else
      Hashtbl.fold (fun _ s acc -> s :: acc) t.prof_sites []
      |> List.sort (fun a b ->
             match compare b.s_cycles a.s_cycles with
             | 0 -> compare (a.s_func, a.s_line) (b.s_func, b.s_line)
             | c -> c)
  in
  {
    status;
    cycles = t.cycles;
    counts = t.counts;
    events = List.rev t.events;
    output = Buffer.contents t.out;
    call_profile = profile t.call_counts;
    extern_profile = profile t.extern_counts;
    sites;
    incidents = List.rev t.incidents;
  }

(* A perf-report-style rendering of {!outcome.sites}. The percentage
   column is of the run's total cycles, so the top-N rows under-count
   exactly what the final "other" row holds. *)
let profile_report ?(top = 20) (o : outcome) =
  let total = max 1 o.cycles in
  let shown, rest =
    let rec split n = function
      | [] -> ([], [])
      | l when n = 0 -> ([], l)
      | x :: tl ->
          let a, b = split (n - 1) tl in
          (x :: a, b)
    in
    split top o.sites
  in
  let pct c = Printf.sprintf "%5.1f%%" (100. *. float_of_int c /. float_of_int total) in
  let row s =
    [
      Printf.sprintf "%s:%d" s.s_func s.s_line;
      string_of_int s.s_cycles;
      pct s.s_cycles;
      string_of_int s.s_instrs;
      string_of_int s.s_pac_charges;
      string_of_int s.s_strips;
      string_of_int s.s_pp_calls;
    ]
  in
  let rows = List.map row shown in
  let rows =
    if rest = [] then rows
    else
      let sum f = List.fold_left (fun a s -> a + f s) 0 rest in
      rows
      @ [
          [
            Printf.sprintf "(other: %d sites)" (List.length rest);
            string_of_int (sum (fun s -> s.s_cycles));
            pct (sum (fun s -> s.s_cycles));
            string_of_int (sum (fun s -> s.s_instrs));
            string_of_int (sum (fun s -> s.s_pac_charges));
            string_of_int (sum (fun s -> s.s_strips));
            string_of_int (sum (fun s -> s.s_pp_calls));
          ];
        ]
  in
  Rsti_util.Tab.render
    ~header:[ "site"; "cycles"; "%"; "instrs"; "pac"; "strip"; "pp" ]
    rows

(** 64-bit bit-field helpers shared by the pointer-authentication model
    (PAC field insertion/extraction) and the cipher. All positions are bit
    indices counted from 0 (least significant). *)

val mask : int -> int64
(** [mask w] is a value with the low [w] bits set; [mask 64] is all-ones. *)

val field : int64 -> lo:int -> width:int -> int64
(** [field x ~lo ~width] extracts bits [lo .. lo+width-1], right-aligned. *)

val set_field : int64 -> lo:int -> width:int -> int64 -> int64
(** [set_field x ~lo ~width v] replaces bits [lo .. lo+width-1] of [x] with
    the low [width] bits of [v]. *)

val bit : int64 -> int -> bool
(** [bit x i] is the value of bit [i]. *)

val set_bit : int64 -> int -> bool -> int64
(** [set_bit x i b] sets bit [i] to [b]. *)

val rotl : int64 -> int -> int64
(** Rotate left by [n] (mod 64). *)

val rotr : int64 -> int -> int64
(** Rotate right by [n] (mod 64). *)

val popcount : int64 -> int
(** Number of set bits. *)

val to_hex : int64 -> string
(** 16-digit lowercase hexadecimal, zero-padded, with a [0x] prefix. *)

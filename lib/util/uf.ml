type t = { parent : (string, string) Hashtbl.t }

let create () = { parent = Hashtbl.create 64 }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None -> x
  | Some p ->
      if String.equal p x then x
      else begin
        let root = find t p in
        Hashtbl.replace t.parent x root;
        root
      end

let union t a b =
  let ra = find t a and rb = find t b in
  if not (String.equal ra rb) then Hashtbl.replace t.parent ra rb

let same t a b = String.equal (find t a) (find t b)

let classes t ~members =
  let by_root = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let r = find t m in
      let existing = try Hashtbl.find by_root r with Not_found -> [] in
      Hashtbl.replace by_root r (m :: existing))
    members;
  Hashtbl.fold (fun r ms acc -> (r, List.rev ms) :: acc) by_root []

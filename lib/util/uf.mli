(** String-keyed union-find with path compression. The STI analysis uses
    two instances: one over slot identities (flow components) and one over
    basic-type names (the STC compatible-type merging, paper section 4.8). *)

type t

val create : unit -> t

val find : t -> string -> string
(** Representative of the element's class. Unknown elements are singleton
    classes of themselves. *)

val union : t -> string -> string -> unit
(** Merge two classes. *)

val same : t -> string -> string -> bool
(** Whether two elements are in one class. *)

val classes : t -> members:string list -> (string * string list) list
(** Group [members] by class: [(representative, members-in-class)]. The
    member lists preserve the order given. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a ->
        if List.length a <> ncols then invalid_arg "Tab.render: align length";
        Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize row =
    let n = List.length row in
    if n > ncols then invalid_arg "Tab.render: row wider than header"
    else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let line cells =
    cells
    |> List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell)
    |> String.concat "  "
  in
  let sep =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (line row))
    rows;
  Buffer.contents buf

let rule c n = String.make n c

let section title =
  let bar = rule '=' (max 8 (String.length title + 8)) in
  Printf.sprintf "\n%s\n=== %s ===\n%s" bar title bar

let check_non_empty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = check_non_empty "Stats.mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = check_non_empty "Stats.geomean" xs in
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geomean: non-positive value"
        else acc +. log x)
      0. xs
  in
  exp (log_sum /. float_of_int (List.length xs))

let geomean_overhead xs =
  let ratios = List.map (fun x -> 1. +. (x /. 100.)) xs in
  (geomean ratios -. 1.) *. 100.

let quantile q xs =
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of [0,1]";
  let xs = check_non_empty "Stats.quantile" xs in
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    (* Type-7 (R default): h = (n-1)q, interpolate between floor and ceil. *)
    let h = float_of_int (n - 1) *. q in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = quantile 0.5 xs

type boxplot = {
  minimum : float;
  q1 : float;
  median : float;
  q3 : float;
  maximum : float;
  outliers : float list;
  geomean : float;
}

let boxplot xs =
  let xs = check_non_empty "Stats.boxplot" xs in
  let q1 = quantile 0.25 xs and q3 = quantile 0.75 xs in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) and hi_fence = q3 +. (1.5 *. iqr) in
  let inside, outliers = List.partition (fun x -> x >= lo_fence && x <= hi_fence) xs in
  (* Degenerate distributions can put everything outside the fences; keep
     the whiskers meaningful by falling back to the raw extremes. *)
  let whisk = if inside = [] then xs else inside in
  {
    minimum = List.fold_left min (List.hd whisk) whisk;
    q1;
    median = median xs;
    q3;
    maximum = List.fold_left max (List.hd whisk) whisk;
    outliers;
    geomean = geomean_overhead xs;
  }

let stddev xs =
  let xs = check_non_empty "Stats.stddev" xs in
  let n = List.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let pearson xs ys =
  let nx = List.length xs and ny = List.length ys in
  if nx <> ny then invalid_arg "Stats.pearson: length mismatch";
  if nx < 2 then invalid_arg "Stats.pearson: need at least two points";
  let mx = mean xs and my = mean ys in
  let num, dx2, dy2 =
    List.fold_left2
      (fun (num, dx2, dy2) x y ->
        let dx = x -. mx and dy = y -. my in
        (num +. (dx *. dy), dx2 +. (dx *. dx), dy2 +. (dy *. dy)))
      (0., 0., 0.) xs ys
  in
  if dx2 = 0. || dy2 = 0. then 0. else num /. sqrt (dx2 *. dy2)

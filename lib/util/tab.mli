(** Plain-text table rendering for benchmark reports. Produces the aligned
    rows the bench harness prints for each reproduced paper table. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with one column per header
    entry, padding cells to the widest entry of each column. Rows shorter
    than the header are padded with empty cells; longer rows are an error.
    [align] defaults to left for the first column and right for the rest,
    which suits "name, number, number, ..." benchmark tables. *)

val rule : char -> int -> string
(** [rule c n] is a horizontal rule of [n] copies of [c]. *)

val section : string -> string
(** A titled separator used between experiment sections in bench output. *)

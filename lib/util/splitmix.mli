(** Deterministic pseudo-random number generation (splitmix64).

    Everything in this repository that needs randomness — the workload
    generator, property tests seeds, PA key generation — goes through this
    module so that runs are reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next64 : t -> int64
(** Next 64-bit value, uniform over all 2^64 values. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)

val pick_arr : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the integer weights.
    Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (splitmix "split" operation). *)

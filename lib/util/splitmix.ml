(* Splitmix64 (Steele, Lea & Flood 2014): a tiny, fast, statistically solid
   generator whose whole state is one 64-bit word, which makes seeding and
   splitting trivial. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny compared to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Splitmix.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))

let chance t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Splitmix.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Splitmix.pick_arr: empty array";
  a.(int t (Array.length a))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Splitmix.weighted: weights must sum > 0";
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Splitmix.weighted: unreachable"
    | (w, x) :: rest -> if roll < acc + w then x else go (acc + w) rest
  in
  go 0 choices

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next64 t }

let mask w =
  if w < 0 || w > 64 then invalid_arg "Bits.mask: width out of range";
  if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let field x ~lo ~width =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Bits.field";
  Int64.logand (Int64.shift_right_logical x lo) (mask width)

let set_field x ~lo ~width v =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Bits.set_field";
  let m = Int64.shift_left (mask width) lo in
  let v = Int64.shift_left (Int64.logand v (mask width)) lo in
  Int64.logor (Int64.logand x (Int64.lognot m)) v

let bit x i = field x ~lo:i ~width:1 = 1L

let set_bit x i b = set_field x ~lo:i ~width:1 (if b then 1L else 0L)

let rotl x n =
  let n = n land 63 in
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let rotr x n = rotl x (64 - (n land 63))

let popcount x =
  let rec go acc x = if x = 0L then acc else go (acc + 1) Int64.(logand x (sub x 1L)) in
  go 0 x

let to_hex x = Printf.sprintf "0x%016Lx" x

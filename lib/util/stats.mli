(** Descriptive statistics used by the benchmark reports (Figures 9/10 and
    the Pearson-correlation analysis in the paper's section 6.3.2). *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values. Values [<= 0.] raise
    [Invalid_argument]: benchmark ratios are always positive. *)

val geomean_overhead : float list -> float
(** Geometric mean of overhead percentages, computed the way benchmark
    papers do: geomean over the ratios [(1 + x/100)], reported back as a
    percentage. Accepts zero and slightly negative overheads. *)

val quantile : float -> float list -> float
(** [quantile q xs] with [q] in [\[0,1\]], linear interpolation between
    order statistics (type-7, the R default). *)

val median : float list -> float

type boxplot = {
  minimum : float;
  q1 : float;
  median : float;
  q3 : float;
  maximum : float;
  outliers : float list;  (** points beyond 1.5 IQR from the box *)
  geomean : float;        (** geometric mean of (1 + x/100), as percent *)
}
(** Five-number summary plus outliers, matching the paper's Figure 10. *)

val boxplot : float list -> boxplot
(** Tukey box plot summary: whiskers at the most extreme points within
    1.5 IQR of the box, everything beyond reported as outliers. *)

val pearson : float list -> float list -> float
(** Sample Pearson correlation coefficient of two equal-length series. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator). *)

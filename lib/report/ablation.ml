module RT = Rsti_sti.Rsti_type
module Run = Rsti_workloads.Run
module Pipeline = Rsti_engine.Pipeline
module Points_to = Rsti_dataflow.Points_to
module Tab = Rsti_util.Tab

let pct x = Printf.sprintf "%.2f%%" x

let pac_cost_sweep () =
  let rows =
    List.map
      (fun pac ->
        let config =
          {
            Run.default_config with
            Run.costs = Rsti_machine.Cost.with_pac Rsti_machine.Cost.default pac;
          }
        in
        let cells =
          List.map
            (fun mech ->
              let ms =
                Run.measure_suite ~config Rsti_workloads.Spec2006.all [ mech ]
              in
              pct (Run.geomean_overhead ms))
            RT.all_mechanisms
        in
        string_of_int pac :: cells)
      [ 3; 5; 7; 9; 12 ]
  in
  "Ablation: PA instruction cost (cycles) vs SPEC2006 geomean overhead\n\
   (the paper's model point is 7, the measured 7-XOR equivalence)\n\n"
  ^ Tab.render ~header:[ "pac cost"; "RSTI-STWC"; "RSTI-STC"; "RSTI-STL" ] rows

let analyzed_workload (w : Rsti_workloads.Workload.t) =
  Pipeline.analyze (Pipeline.compile (Pipeline.source ~file:(w.name ^ ".c") w.source))

let instrument_workload mech (w : Rsti_workloads.Workload.t) =
  let a = analyzed_workload w in
  (Pipeline.result (Pipeline.instrument mech a), Pipeline.analysis a)

let merge_effect () =
  let rows =
    List.map
      (fun (w : Rsti_workloads.Workload.t) ->
        let r_stc, anal = instrument_workload RT.Stc w in
        let r_stwc, _ = instrument_workload RT.Stwc w in
        let s = Rsti_sti.Analysis.stats anal in
        let sites (c : Rsti_rsti.Instrument.static_counts) =
          c.signs + c.auths + (2 * c.resigns)
        in
        [
          w.name;
          string_of_int s.rt_stc;
          string_of_int s.rt_stwc;
          string_of_int (sites r_stc.counts);
          string_of_int (sites r_stwc.counts);
        ])
      Rsti_workloads.Spec2006.all
  in
  "Ablation: STC's compatible-type merging (Figure 8)\n\
   Merging shrinks the RSTI-type space and removes cast re-signing.\n\n"
  ^ Tab.render
      ~header:[ "BM"; "RT merged"; "RT unmerged"; "sites STC"; "sites STWC" ]
      rows

let stl_argument_cost () =
  let rows =
    List.map
      (fun (w : Rsti_workloads.Workload.t) ->
        let r_stl, _ = instrument_workload RT.Stl w in
        let r_stwc, _ = instrument_workload RT.Stwc w in
        [
          w.name;
          string_of_int r_stwc.counts.resigns;
          string_of_int r_stl.counts.resigns;
          string_of_int (r_stl.counts.resigns - r_stwc.counts.resigns);
        ])
      Rsti_workloads.Spec2006.all
  in
  "Ablation: STL location re-binding (section 4.6)\n\
   Extra re-sign sites are pointer arguments and pointer returns whose\n\
   location changes at the call boundary.\n\n"
  ^ Tab.render
      ~header:[ "BM"; "resigns STWC"; "resigns STL"; "attributable to &p" ]
      rows

let ce_width () =
  let count_types ws =
    List.fold_left
      (fun acc (w : Rsti_workloads.Workload.t) ->
        let anal = Run.analyze_workload w in
        List.fold_left
          (fun acc (ty, _, _) ->
            let s = Rsti_minic.Ctype.to_string ty in
            if List.mem s acc then acc else s :: acc)
          acc
          (Rsti_sti.Analysis.ce_table anal))
      [] ws
  in
  let suites =
    [
      ("SPEC2006", Rsti_workloads.Spec2006.all);
      ("SPEC2017", Rsti_workloads.Spec2017.all);
      ("nbench", Rsti_workloads.Nbench.all);
      ("PyTorch", Rsti_workloads.Pytorch.all);
      ("NGINX", Rsti_workloads.Nginx.all);
    ]
  in
  let rows =
    List.map
      (fun (label, ws) ->
        let n = List.length (count_types ws) in
        [ label; string_of_int n; "255"; (if n <= 255 then "yes" else "NO") ])
      suites
  in
  "Ablation: pointer-to-pointer CE capacity (section 4.7.7)\n\
   The CE tag is 8 bits (255 usable values); the paper argues real\n\
   programs need only a handful of full-equivalent types.\n\n"
  ^ Tab.render ~header:[ "Suite"; "FE types needed"; "budget"; "fits" ] rows

let pac_brute_force () =
  let trials = 4096 in
  let rows =
    List.map
      (fun (label, layout) ->
        (* a dedicated PA context with the requested layout *)
        let pac = Rsti_pa.Pac.make ~layout ~seed:99L () in
        let width = Rsti_pa.Vaddr.pac_width layout in
        let rng = Rsti_util.Splitmix.create 4242L in
        let accepted = ref 0 in
        for _ = 1 to trials do
          (* the attacker controls the PAC bits but not the keys *)
          let guess = Rsti_util.Splitmix.next64 rng in
          let forged =
            Rsti_pa.Vaddr.embed_pac layout ~pac:guess 0x2000_0040L
          in
          match Rsti_pa.Pac.auth pac ~key:Rsti_pa.Key.DA ~modifier:7L forged with
          | Ok _ -> incr accepted
          | Error _ -> ()
        done;
        let rate = float_of_int !accepted /. float_of_int trials in
        [
          label;
          string_of_int width;
          Printf.sprintf "%.5f" rate;
          Printf.sprintf "%.5f" (1. /. float_of_int (1 lsl width));
        ])
      [ ("TBI on (RSTI's config)", Rsti_pa.Vaddr.default);
        ("TBI off", Rsti_pa.Vaddr.no_tbi) ]
  in
  "Ablation: PAC width vs brute-force forgery (4096 random guesses)\n\
   The acceptance rate must track 2^-width; RSTI trades 8 PAC bits for\n\
   the TBI byte its pointer-to-pointer CE tag needs (section 4.7.7).\n\n"
  ^ Tab.render
      ~header:[ "layout"; "PAC bits"; "measured accept rate"; "expected 2^-w" ]
      rows

let elision () =
  let mechs = RT.all_mechanisms in
  let sites (c : Rsti_rsti.Instrument.static_counts) =
    c.signs + c.auths + (2 * c.resigns)
  in
  let elide_config =
    { Run.default_config with Run.elision = Rsti_staticcheck.Elide.Syntactic }
  in
  let full = ref [] and elided = ref [] in
  let rows =
    List.map
      (fun (w : Rsti_workloads.Workload.t) ->
        let ms_full = Run.measure w mechs in
        let ms_elide = Run.measure ~config:elide_config w mechs in
        full := !full @ ms_full;
        elided := !elided @ ms_elide;
        let stwc_full = List.find (fun m -> m.Run.mech = RT.Stwc) ms_full in
        let stwc_el = List.find (fun m -> m.Run.mech = RT.Stwc) ms_elide in
        let s_full = sites stwc_full.Run.static_counts in
        let s_el = sites stwc_el.Run.static_counts in
        let reduction =
          if s_full = 0 then 0.
          else float_of_int (s_full - s_el) /. float_of_int s_full *. 100.
        in
        [
          w.name;
          string_of_int s_full;
          string_of_int s_el;
          string_of_int stwc_el.Run.static_counts.elided;
          Printf.sprintf "%.1f%%" reduction;
          pct stwc_full.Run.overhead_pct;
          pct stwc_el.Run.overhead_pct;
        ])
      Rsti_workloads.Spec2006.all
  in
  let geo mech ms =
    Run.geomean_overhead (List.filter (fun m -> m.Run.mech = mech) ms)
  in
  "Elision: proof-based instrumentation removal (staticcheck)\n\
   Sites whose sign/auth the static checker proves redundant keep plain\n\
   loads/stores; the safety report shows no detection verdict changes.\n\
   Counts and overheads below are RSTI-STWC (fig9 with/without elision).\n\n"
  ^ Tab.render
      ~header:
        [
          "BM"; "sites"; "sites+elide"; "elided"; "reduction";
          "ovh STWC"; "ovh STWC+elide";
        ]
      rows
  ^ "\n"
  ^ Tab.render
      ~header:[ "geomean overhead"; "STWC"; "STC"; "STL" ]
      [
        "full" :: List.map (fun m -> pct (geo m !full)) mechs;
        "elided" :: List.map (fun m -> pct (geo m !elided)) mechs;
      ]
  ^ "\n(The STC < STWC < STL ordering must survive elision.)\n"

(* Per-workload safe-site counts at both elision precisions: the tally
   behind the framework's headline claim that Andersen confinement
   strictly grows the provably-safe set. The three analyses per workload
   are independent, so the suite fans out across domains. *)
let elide_precision () =
  let module Elide = Rsti_staticcheck.Elide in
  let rows =
    Rsti_engine.Scheduler.map
      (fun (w : Rsti_workloads.Workload.t) ->
        let src =
          Pipeline.source ~file:(w.name ^ ".c")
            (Rsti_workloads.Workload.analysis_source w)
        in
        let c = Pipeline.compile src in
        let a = Pipeline.analyze c in
        let anal = Pipeline.analysis a in
        let m = Pipeline.ir c in
        let pt = Pipeline.points_to c in
        let syn = Elide.summary (Elide.analyze anal m) in
        let pts = Elide.summary (Elide.analyze ~points_to:pt anal m) in
        let st = Points_to.stats pt in
        [
          w.name;
          string_of_int syn.Elide.candidates;
          string_of_int syn.Elide.safe;
          string_of_int pts.Elide.safe;
          string_of_int (pts.Elide.safe - syn.Elide.safe);
          string_of_int st.Points_to.objects;
        ])
      Rsti_workloads.Spec2006.all
  in
  "Elision precision: syntactic flow-component proof vs points-to\n\
   confinement (rsti_dataflow's Andersen analysis discharging the\n\
   escape/cast/heap-adjacency obligations). \"delta\" is the number of\n\
   sites the interprocedural proof newly removes; soundness is the\n\
   monotone property test plus the verdict-identity report.\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Right; Right; Right; Right; Right ]
      ~header:
        [ "BM"; "candidates"; "safe (syntactic)"; "safe (points-to)";
          "delta"; "pt objects" ]
      rows

(* Three-way precision ladder: the syntactic flow-component proof, the
   insensitive Andersen confinement, and k=2 call-site cloning with the
   scope-escape completion. The data form is what BENCH_fig9.json
   embeds; per-mode wall-clocks price the extra precision. *)
type cs_row = {
  cs_name : string;
  cs_candidates : int;
  cs_safe_syn : int;
  cs_safe_pt : int;
  cs_safe_cs : int;
  cs_seconds_pt : float;
  cs_seconds_cs : float;
}

let elide_precision_cs_data () =
  let module Elide = Rsti_staticcheck.Elide in
  Rsti_engine.Scheduler.map
    (fun (w : Rsti_workloads.Workload.t) ->
      let src =
        Pipeline.source ~file:(w.name ^ ".c")
          (Rsti_workloads.Workload.analysis_source w)
      in
      let c = Pipeline.compile src in
      let a = Pipeline.analyze c in
      let anal = Pipeline.analysis a in
      let m = Pipeline.ir c in
      let syn = Elide.summary (Elide.analyze anal m) in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let pts, s_pt =
        time (fun () ->
            Elide.summary
              (Elide.analyze ~points_to:(Pipeline.points_to c) anal m))
      in
      let cs, s_cs =
        time (fun () ->
            let mode = Points_to.Cloning 2 in
            let pt = Pipeline.points_to ~mode c in
            let scope = Pipeline.scope_escape ~mode c in
            Elide.summary (Elide.analyze ~points_to:pt ~scope anal m))
      in
      {
        cs_name = w.name;
        cs_candidates = syn.Elide.candidates;
        cs_safe_syn = syn.Elide.safe;
        cs_safe_pt = pts.Elide.safe;
        cs_safe_cs = cs.Elide.safe;
        cs_seconds_pt = s_pt;
        cs_seconds_cs = s_cs;
      })
    Rsti_workloads.Spec2006.all

let render_elide_precision_cs data =
  let rows =
    List.map
      (fun r ->
        [
          r.cs_name;
          string_of_int r.cs_candidates;
          string_of_int r.cs_safe_syn;
          string_of_int r.cs_safe_pt;
          string_of_int r.cs_safe_cs;
          string_of_int (r.cs_safe_cs - r.cs_safe_pt);
          Printf.sprintf "%.3f" r.cs_seconds_pt;
          Printf.sprintf "%.3f" r.cs_seconds_cs;
        ])
      data
  in
  "Elision precision: syntactic vs insensitive points-to vs k=2\n\
   call-site cloning (context-sensitive confinement plus the\n\
   scope-escape refinement). \"delta\" is what cloning adds over the\n\
   insensitive proof — non-negative by the qcheck refinement property,\n\
   strictly positive where merged return channels were the blocker.\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Right; Right; Right; Right; Right; Right; Right ]
      ~header:
        [ "BM"; "candidates"; "safe (syn)"; "safe (pt)"; "safe (cs k=2)";
          "delta"; "s (pt)"; "s (cs)" ]
      rows

let elide_precision_cs () = render_elide_precision_cs (elide_precision_cs_data ())

let backend_comparison () =
  let mech = RT.Stwc in
  let rows =
    List.filter_map
      (fun (w : Rsti_workloads.Workload.t) ->
        let a = analyzed_workload w in
        let inst = Pipeline.instrument mech a in
        let base = Pipeline.run_baseline (Pipeline.compiled_of_analyzed a) in
        let run backend = Pipeline.run ~backend inst in
        let pac = run `Pac and mac = run `Shadow_mac in
        let overhead (o : Rsti_machine.Interp.outcome) =
          (float_of_int o.cycles /. float_of_int base.Rsti_machine.Interp.cycles -. 1.)
          *. 100.
        in
        if overhead pac < 0.005 && overhead mac < 0.005 then None
        else
          Some [ w.name; pct (overhead pac); pct (overhead mac) ])
      Rsti_workloads.Spec2006.all
  in
  "Extension (section 7): the same STWC policy enforced through a\n\
   CCFI-style shadow MAC instead of PAC. The MAC is full-width and bound\n\
   to the slot address (so even in-class replays are caught), but each\n\
   check pays a shadow-table access on top of the MAC — the overhead\n\
   trade-off the paper describes for CCFI.\n\n"
  ^ Tab.render
      ~header:[ "BM (pointer-active only)"; "STWC via PAC"; "STWC via shadow MAC" ]
      rows

(** Shared performance-measurement data for the Figure 9 / Figure 10 /
    correlation reproductions: every workload of every suite, run under
    the three RSTI mechanisms, measured once and reused. Collection fans
    out over the engine's domain pool (one task per workload) and merges
    deterministically — the record is identical for any job count. *)

type t = {
  spec2006 : Rsti_workloads.Run.measurement list;
  spec2017 : Rsti_workloads.Run.measurement list;
  nbench : Rsti_workloads.Run.measurement list;
  pytorch : Rsti_workloads.Run.measurement list;
  nginx : Rsti_workloads.Run.measurement list;
}

val collect : ?config:Rsti_workloads.Run.config -> unit -> t
(** Run everything (takes tens of seconds of simulation at one job;
    [config.jobs] parallelizes, [config.cache] reuses compile/analysis
    artifacts across sections). *)

val of_mech : Rsti_workloads.Run.measurement list -> Rsti_sti.Rsti_type.mechanism ->
  Rsti_workloads.Run.measurement list

val overheads : Rsti_workloads.Run.measurement list -> float list

val all : t -> Rsti_workloads.Run.measurement list
(** Every measurement of every suite, concatenated. *)

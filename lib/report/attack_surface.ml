module RT = Rsti_sti.Rsti_type
module Tab = Rsti_util.Tab
module Pipeline = Rsti_engine.Pipeline
module Equiv = Rsti_dataflow.Equiv
module PT = Rsti_dataflow.Points_to
module Workload = Rsti_workloads.Workload
module Crossval = Rsti_attacks.Crossval

type row = {
  as_workload : string;
  as_mech : RT.mechanism;
  as_mode : PT.mode option;
  as_metrics : Equiv.metrics;
}

let mechs = Rsti_staticcheck.Attack_surface.mechanisms
let modes = [ None; Some PT.Insensitive; Some (PT.Cloning 2) ]

(* The static population is the same one Table 3 partitions: the kernel
   plus its generated never-executed module. Same cache key as
   [Run.analyze_workload], so bench sections share the artifacts. *)
let analyzed_workload (w : Workload.t) =
  Pipeline.analyze
    (Pipeline.compile
       (Pipeline.source
          ~file:(w.Workload.name ^ ".c")
          (Workload.analysis_source w)))

let collect ?jobs ?(workloads = Rsti_workloads.Spec2006.all) () =
  List.concat
    (Rsti_engine.Scheduler.map ?jobs
       (fun w ->
         let a = analyzed_workload w in
         List.concat_map
           (fun mech ->
             List.map
               (fun mode ->
                 {
                   as_workload = w.Workload.name;
                   as_mech = mech;
                   as_mode = mode;
                   as_metrics =
                     (Pipeline.attack_surface ?mode mech a).Equiv.r_metrics;
                 })
               modes)
           mechs)
       workloads)

let find rows w mech mode =
  List.find
    (fun r -> r.as_workload = w && r.as_mech = mech && r.as_mode = mode)
    rows

let workload_names rows =
  List.sort_uniq compare (List.map (fun r -> r.as_workload) rows)
  |> List.sort (fun a b ->
         (* keep input (suite) order, not alphabetical *)
         let pos n =
           let rec go i = function
             | [] -> max_int
             | r :: tl -> if r.as_workload = n then i else go (i + 1) tl
           in
           go 0 rows
         in
         compare (pos a) (pos b))

let class_refinement_ok rows =
  List.for_all
    (fun w ->
      List.for_all
        (fun mode ->
          let c m = (find rows w m mode).as_metrics.Equiv.m_classes in
          c RT.Stc <= c RT.Stwc && c RT.Stwc <= c RT.Stl)
        modes)
    (workload_names rows)

let feasible_refinement_ok rows =
  List.for_all
    (fun w ->
      List.for_all
        (fun mech ->
          let f mode = (find rows w mech mode).as_metrics.Equiv.m_feasible_edges in
          f (Some (PT.Cloning 2)) <= f (Some PT.Insensitive)
          && f (Some PT.Insensitive) <= f None)
        mechs)
    (workload_names rows)

let pct n d = if d = 0 then 0. else 100. *. float_of_int n /. float_of_int d

(* "34 (71%, 5)": classes (singleton share, largest class) *)
let class_cell (m : Equiv.metrics) =
  Printf.sprintf "%d (%.0f%%, %d)" m.Equiv.m_classes
    (pct m.Equiv.m_singletons m.Equiv.m_classes)
    m.Equiv.m_largest

let render rows =
  let ws = workload_names rows in
  let structure =
    List.map
      (fun w ->
        let oracle mech = (find rows w mech None).as_metrics in
        [
          w;
          string_of_int (oracle RT.Stwc).Equiv.m_candidates;
          class_cell (oracle RT.Stwc);
          class_cell (oracle RT.Stc);
          class_cell (oracle RT.Stl);
          class_cell (oracle RT.Parts);
        ])
      ws
  in
  let ladder =
    List.map
      (fun w ->
        let cell mech =
          let f mode = (find rows w mech mode).as_metrics.Equiv.m_feasible_edges in
          Printf.sprintf "%d > %d > %d" (f None) (f (Some PT.Insensitive))
            (f (Some (PT.Cloning 2)))
        in
        [ w; cell RT.Stwc; cell RT.Stc; cell RT.Stl; cell RT.Parts ])
      ws
  in
  let class_ok = class_refinement_ok rows in
  let feas_ok = feasible_refinement_ok rows in
  "Modifier equivalence classes per mechanism (oracle attacker model)\n\
   Cell: classes (singleton share, largest class). STL binds the slot\n\
   address into the modifier, so every class is a singleton; STC merges\n\
   cast-compatible RSTI-types, so it can only coarsen STWC.\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Right; Right; Right; Right; Right ]
      ~header:[ "Workload"; "slots"; "STWC"; "STC"; "STL"; "PARTS" ]
      structure
  ^ Printf.sprintf
      "\n\nClass refinement (classes STC <= STWC <= STL on every workload): \
       %s\n"
      (if class_ok then "HELD" else "VIOLATED")
  ^ "\nSubstitution-gadget edges by attacker precision\n\
     Cell: replay edges (oracle) > feasible at points-to (insensitive) > \n\
     feasible at points-to (cloning K=2); rising precision can only\n\
     discharge edges, never add them.\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Right; Right; Right; Right ]
      ~header:[ "Workload"; "STWC"; "STC"; "STL"; "PARTS" ]
      ladder
  ^ Printf.sprintf
      "\n\nFeasibility refinement (edges never increase with precision): %s\n"
      (if feas_ok then "HELD" else "VIOLATED")

(* --------------------- dynamic cross-validation -------------------- *)

let crossval_summary ?jobs () =
  let kernel_programs =
    List.map
      (fun (w : Workload.t) -> (w.Workload.name, w.Workload.source))
      Rsti_workloads.Spec2006.all
  in
  Crossval.summarize ?jobs
    ~programs:(Crossval.default_programs () @ kernel_programs)
    ()

let verdict_cell = function
  | Rsti_attacks.Scenario.Attack_succeeded -> "succeeds"
  | Rsti_attacks.Scenario.Detected -> "DETECTED"
  | Rsti_attacks.Scenario.Attack_failed -> "failed"

let render_crossval (s : Crossval.summary) =
  let catalog_rows =
    List.map
      (fun (r : Crossval.catalog_row) ->
        [
          r.Crossval.cr_scenario;
          RT.mechanism_to_string r.Crossval.cr_mech;
          (if r.Crossval.cr_static then "replayable" else "blocked");
          verdict_cell r.Crossval.cr_dynamic;
          (if r.Crossval.cr_agree then "yes" else "NO");
        ])
      s.Crossval.s_catalog
  in
  let gen_rows =
    List.map
      (fun (g : Crossval.gen_row) ->
        [
          g.Crossval.g_program;
          RT.mechanism_to_string g.Crossval.g_mech;
          Printf.sprintf "%s -> %s @ %s" g.Crossval.g_donor g.Crossval.g_victim
            g.Crossval.g_trigger;
          (match g.Crossval.g_kind with
          | Crossval.Same_class -> "same-class"
          | Crossval.Cross_class -> "cross-class");
          (if g.Crossval.g_predicted then "replayable" else "blocked");
          (match g.Crossval.g_detected with
          | None -> "skipped"
          | Some true -> "DETECTED"
          | Some false -> "succeeds");
          (match g.Crossval.g_agree with
          | None -> "-"
          | Some true -> "yes"
          | Some false -> "NO");
        ])
      s.Crossval.s_generated
  in
  "Catalog cross-validation: static verdict vs the machine\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Left; Right; Right; Right ]
      ~header:[ "Scenario"; "Mechanism"; "Static"; "Dynamic"; "agree" ]
      catalog_rows
  ^ "\n\nGenerated candidate replays (from the analyzer's own classes)\n\
     Same-class candidates must succeed on the machine, cross-class\n\
     controls must trap; an empty-donor candidate is skipped, not\n\
     counted.\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Left; Left; Left; Right; Right; Right ]
      ~header:
        [ "Program"; "Mechanism"; "Replay"; "Kind"; "Static"; "Dynamic"; "agree" ]
      gen_rows
  ^ Printf.sprintf
      "\n\nCross-validation verdict: %s (checks=%d, skipped=%d; candidate \
       pools: %d same-class, %d cross-class)\n"
      (if s.Crossval.s_disagreements = 0 then "OK - zero disagreements"
       else Printf.sprintf "MISMATCH - %d disagreement(s)" s.Crossval.s_disagreements)
      s.Crossval.s_checked s.Crossval.s_skipped s.Crossval.s_pool_same
      s.Crossval.s_pool_cross

let report ?jobs () =
  render (collect ?jobs ())
  ^ "\n"
  ^ Tab.section "Static/dynamic cross-validation"
  ^ "\n"
  ^ render_crossval (crossval_summary ?jobs ())

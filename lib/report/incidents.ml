module RT = Rsti_sti.Rsti_type
module Tab = Rsti_util.Tab
module Stats = Rsti_util.Stats
module Interp = Rsti_machine.Interp
module Incident = Rsti_attacks.Incident
module Equiv = Rsti_dataflow.Equiv

let pctile samples q =
  match samples with
  | [] -> "-"
  | _ ->
      Printf.sprintf "%.0f" (Stats.quantile q (List.map float_of_int samples))

let latency_rows cov =
  List.map
    (fun (mc : Incident.mech_cov) ->
      let c = mc.Incident.mc_latency_cycles in
      let i = mc.Incident.mc_latency_instrs in
      [
        RT.mechanism_to_string mc.Incident.mc_mech;
        string_of_int mc.Incident.mc_incidents;
        (match c with [] -> "-" | x :: _ -> string_of_int x);
        pctile c 0.5;
        pctile c 0.9;
        pctile c 0.99;
        (match List.rev c with [] -> "-" | x :: _ -> string_of_int x);
        pctile i 0.5;
        pctile i 0.9;
        pctile i 0.99;
      ])
    cov.Incident.cov_mechs

let coverage_rows cov =
  List.map
    (fun (mc : Incident.mech_cov) ->
      [
        RT.mechanism_to_string mc.Incident.mc_mech;
        Printf.sprintf "%d/%d" mc.Incident.mc_detected mc.Incident.mc_runs;
        string_of_int mc.Incident.mc_incidents;
        Printf.sprintf "%d/%d" mc.Incident.mc_mapped mc.Incident.mc_incidents;
        string_of_int mc.Incident.mc_replays;
        string_of_int mc.Incident.mc_raw;
        Printf.sprintf "%d > %d" mc.Incident.mc_static_replay_edges
          mc.Incident.mc_static_feasible_edges;
        Printf.sprintf "%d/%d" mc.Incident.mc_replayable_exercised
          mc.Incident.mc_replayable_total;
        string_of_int mc.Incident.mc_nonedges_checked;
      ])
    cov.Incident.cov_mechs

let incident_rows cov =
  List.map
    (fun (r : Incident.record) ->
      let inc = r.Incident.r_incident in
      [
        r.Incident.r_scenario;
        RT.mechanism_to_string r.Incident.r_mech;
        Printf.sprintf "%s:%d" inc.Interp.inc_func inc.Interp.inc_line;
        Rsti_pa.Key.which_to_string inc.Interp.inc_key;
        (match inc.Interp.inc_signer with
        | None -> "raw overwrite"
        | Some op -> Printf.sprintf "%s@%s" (Interp.op_kind_to_string
            op.Interp.op_kind) op.Interp.op_func);
        (match inc.Interp.inc_latency_cycles with
        | None -> "-"
        | Some l -> string_of_int l);
        (match r.Incident.r_classes with
        | c :: _ -> c.Equiv.c_label
        | [] -> if r.Incident.r_pp then "<pp-table>" else "?");
        (if r.Incident.r_mapped then "yes" else "NO");
      ])
    cov.Incident.cov_records

(* The full forensic view of one incident — the shape the EXPERIMENTS
   walkthrough narrates. *)
let render_record (r : Incident.record) =
  let inc = r.Incident.r_incident in
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "Incident: %s under %s (%s)" r.Incident.r_scenario
    (RT.mechanism_to_string r.Incident.r_mech)
    r.Incident.r_paper_row;
  line "  failing auth   %s:%d  key=%s" inc.Interp.inc_func
    inc.Interp.inc_line
    (Rsti_pa.Key.which_to_string inc.Interp.inc_key);
  line "  expected signer  modifier=0x%Lx (static class %s)"
    inc.Interp.inc_static_mod
    (match r.Incident.r_classes with
    | c :: _ -> c.Equiv.c_label
    | [] -> if r.Incident.r_pp then "<pp-table>" else "?");
  (match inc.Interp.inc_signer with
  | None ->
      line "  observed signer  none - the value was a raw (PAC-less) overwrite"
  | Some op ->
      line "  observed signer  %s at %s:%d  modifier=0x%Lx%s"
        (Interp.op_kind_to_string op.Interp.op_kind)
        op.Interp.op_func op.Interp.op_line op.Interp.op_static_mod
        (match r.Incident.r_donor_classes with
        | c :: _ -> Printf.sprintf " (static class %s)" c.Equiv.c_label
        | [] -> ""));
  line "  runtime modifier 0x%Lx  pointer 0x%Lx" inc.Interp.inc_modifier
    inc.Interp.inc_ptr;
  (match (inc.Interp.inc_latency_cycles, inc.Interp.inc_latency_instrs) with
  | Some c, Some i ->
      line "  detection latency  %d cycles / %d instructions after the \
            corrupting store" c i
  | _ -> line "  detection latency  unknown (corruption point not tagged)");
  line "  flight window (%d ops, oldest first):"
    (List.length inc.Interp.inc_window);
  List.iter
    (fun (op : Interp.pac_op) ->
      line "    [c%d] %-7s %s:%d key=%s mod=0x%Lx %s" op.Interp.op_cycle
        (Interp.op_kind_to_string op.Interp.op_kind)
        op.Interp.op_func op.Interp.op_line
        (Rsti_pa.Key.which_to_string op.Interp.op_key)
        op.Interp.op_static_mod
        (if op.Interp.op_ok then "ok" else "FAIL"))
    inc.Interp.inc_window;
  Buffer.contents b

let verdict_line cov =
  Printf.sprintf
    "Incident coverage verdict: %s (%d detections, %d incidents, %d \
     unmapped, %d missing)\n"
    (if Incident.ok cov then "OK - every detection maps to a static class"
     else "FAIL")
    cov.Incident.cov_detected cov.Incident.cov_incidents
    cov.Incident.cov_unmapped
    (List.length cov.Incident.cov_missing)

let render cov =
  "Detection latency from the corrupting store to the failing \
   authentication,\nin simulated cycles (and instructions), across every \
   detected Table-1/\nTable-2 attack. The flight recorder timestamps both \
   ends; latencies are\ndeterministic because the clock is the machine's, \
   not the host's.\n\n"
  ^ Tab.render
      ~align:
        Tab.[ Left; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
      ~header:
        [
          "Mechanism"; "n"; "min"; "p50"; "p90"; "p99"; "max"; "i-p50";
          "i-p90"; "i-p99";
        ]
      (latency_rows cov)
  ^ "\n\n"
  ^ Tab.section "Static<->dynamic coverage map"
  ^ "\nDetected: detections over catalog runs. Mapped: incidents that \
     resolve\nto a static Equiv class (or the pp modifier table). Edges: \
     static\nreplayable > feasible gadget edges over the catalog programs. \
     Exercised:\ncross-validation pairs statically replayable and \
     dynamically confirmed;\nnon-edges: cross-class controls that \
     trapped.\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Right; Right; Right; Right; Right; Right; Right; Right ]
      ~header:
        [
          "Mechanism"; "Detected"; "Incidents"; "Mapped"; "Replays"; "Raw";
          "Edges"; "Exercised"; "Non-edges";
        ]
      (coverage_rows cov)
  ^ "\n\n"
  ^ Tab.section "Incident records"
  ^ "\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Left; Left; Right; Left; Right; Left; Right ]
      ~header:
        [
          "Scenario"; "Mechanism"; "Site"; "Key"; "Signer"; "Latency";
          "Class"; "mapped";
        ]
      (incident_rows cov)
  ^ "\n\n"
  ^ Tab.section "Sample forensic record"
  ^ "\n\n"
  ^ (match
       List.find_opt
         (fun (r : Incident.record) ->
           r.Incident.r_table = "table2"
           && r.Incident.r_incident.Interp.inc_signer <> None)
         cov.Incident.cov_records
     with
    | Some r -> render_record r
    | None -> (
        match cov.Incident.cov_records with
        | r :: _ -> render_record r
        | [] -> "(no incidents)\n"))
  ^ "\n"
  ^ verdict_line cov

let report ?jobs ?flight () =
  let cov = Incident.collect ?jobs ?flight () in
  render cov

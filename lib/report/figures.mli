(** Reproductions of the paper's performance figures and analysis tables. *)

val fig9 : Perf.t -> string
(** Figure 9: per-benchmark overhead for SPEC CPU2017, the geometric means
    of SPEC CPU2006 / nbench / CPython-PyTorch, NGINX, and the overall
    geometric mean — for the three RSTI mechanisms. *)

val fig10 : Perf.t -> string
(** Figure 10: box-plot summaries (min, quartiles, median, max, outliers,
    geomean) for SPEC CPU2006, nbench and PyTorch per mechanism. *)

val table3 : unit -> string
(** Table 3: SPEC CPU2006 equivalence classes — NT, RT (STC/STWC), NV,
    largest ECV and largest ECT per benchmark. *)

val pp_census : unit -> string
(** Section 6.2.2: pointer-to-pointer sites across SPEC2006-like code —
    total sites vs sites where the original type is lost. *)

val parts_comparison : unit -> string
(** Section 6.3.2: nbench overheads of the three RSTI mechanisms versus
    the PARTS baseline. *)

val correlation : Perf.t -> string
(** Section 6.3.2: Pearson correlation between SPEC2006 overheads and the
    number of instrumented load/stores. *)

val fig9_rows :
  Perf.t ->
  (string * (Rsti_sti.Rsti_type.mechanism * float) list) list
(** Structured Figure 9 data: benchmark (or geomean label) with the
    overhead per mechanism — used by tests and the bench harness. *)

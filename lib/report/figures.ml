module RT = Rsti_sti.Rsti_type
module Run = Rsti_workloads.Run
module Stats = Rsti_util.Stats
module Tab = Rsti_util.Tab

let mechs = RT.all_mechanisms

let pct x = Printf.sprintf "%.2f%%" x

let overhead_for ms mech name =
  List.find_map
    (fun (m : Run.measurement) ->
      if m.mech = mech && m.workload.Rsti_workloads.Workload.name = name then
        Some m.overhead_pct
      else None)
    ms

let geomean_of ms mech =
  Stats.geomean_overhead (Perf.overheads (Perf.of_mech ms mech))

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

let fig9_rows (p : Perf.t) =
  let bench_rows =
    List.map
      (fun (w : Rsti_workloads.Workload.t) ->
        ( w.name,
          List.map
            (fun mech ->
              match overhead_for p.spec2017 mech w.name with
              | Some x -> (mech, x)
              | None -> (mech, nan))
            mechs ))
      Rsti_workloads.Spec2017.all
  in
  let agg label ms = (label, List.map (fun mech -> (mech, geomean_of ms mech)) mechs) in
  bench_rows
  @ [
      agg "Geomean-SPEC2017" p.spec2017;
      agg "Geomean-SPEC2006" p.spec2006;
      agg "Geomean-nbench" p.nbench;
      agg "Geomean-CPython" p.pytorch;
      agg "NGINX" p.nginx;
      agg "Geomean-all" (Perf.all p);
    ]

let fig9 p =
  let rows =
    fig9_rows p
    |> List.map (fun (name, per_mech) ->
           name :: List.map (fun (_, x) -> pct x) per_mech)
  in
  "Figure 9: performance overhead, three RSTI mechanisms\n"
  ^ "(paper overall geomeans: STWC 5.29%, STC 2.97%, STL 11.12%)\n\n"
  ^ Tab.render ~header:[ "Benchmark"; "RSTI-STWC"; "RSTI-STC"; "RSTI-STL" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

let fig10 (p : Perf.t) =
  let suites =
    [ ("SPEC 2006", p.spec2006); ("nbench", p.nbench); ("PyTorch", p.pytorch) ]
  in
  let rows =
    List.concat_map
      (fun (label, ms) ->
        List.map
          (fun mech ->
            let b = Stats.boxplot (Perf.overheads (Perf.of_mech ms mech)) in
            [
              label;
              RT.mechanism_to_string mech;
              pct b.Stats.minimum;
              pct b.Stats.q1;
              pct b.Stats.median;
              pct b.Stats.q3;
              pct b.Stats.maximum;
              string_of_int (List.length b.Stats.outliers);
              pct b.Stats.geomean;
            ])
          mechs)
      suites
  in
  "Figure 10: overhead distributions (box-plot summaries)\n\n"
  ^ Tab.render
      ~header:
        [ "Suite"; "Mechanism"; "min"; "q1"; "median"; "q3"; "max"; "#outliers"; "geomean" ]
      rows

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 () =
  let rows =
    List.map
      (fun (w : Rsti_workloads.Workload.t) ->
        let anal = Run.analyze_workload w in
        let s = Rsti_sti.Analysis.stats anal in
        [
          w.name;
          string_of_int s.nt;
          string_of_int s.rt_stc;
          string_of_int s.rt_stwc;
          string_of_int s.nv;
          string_of_int s.largest_ecv_stc;
          string_of_int s.largest_ecv_stwc;
          string_of_int s.largest_ect_stc;
          string_of_int s.largest_ect_stwc;
        ])
      Rsti_workloads.Spec2006.all
  in
  "Table 3: SPEC2006 equivalence classes\n"
  ^ "(NT: basic types; RT: RSTI-types; NV: pointer variables; ECV/ECT: \
     largest equivalence class of variables / types)\n\n"
  ^ Tab.render
      ~header:
        [ "BM"; "NT"; "RT/STC"; "RT/STWC"; "NV"; "ECV/STC"; "ECV/STWC";
          "ECT/STC"; "ECT/STWC" ]
      rows
  ^ "\n\nAs in the paper: ECT(STWC) = 1 everywhere; on these kernels \
     NT <= RT(STC) <= RT(STWC) <= NV.\n"

(* ------------------------------------------------------------------ *)
(* Pointer-to-pointer census (6.2.2)                                   *)
(* ------------------------------------------------------------------ *)

let pp_census () =
  let totals, specials, rows =
    List.fold_left
      (fun (t, s, rows) (w : Rsti_workloads.Workload.t) ->
        let anal = Run.analyze_workload w in
        let c = Rsti_sti.Analysis.pp_census anal in
        let n_special = List.length c.pp_special in
        ( t + c.pp_total_sites,
          s + n_special,
          rows
          @ [ [ w.name; string_of_int c.pp_total_sites; string_of_int n_special ] ] ))
      (0, 0, []) Rsti_workloads.Spec2006.all
  in
  "Section 6.2.2: pointer-to-pointer census over the SPEC2006 kernels\n"
  ^ "(paper: 7,489 sites total, of which 25 lose the original type)\n\n"
  ^ Tab.render ~header:[ "BM"; "pp sites"; "type-loss sites" ] rows
  ^ Printf.sprintf "\n\nTotal: %d sites, %d where the original type is lost.\n"
      totals specials

(* ------------------------------------------------------------------ *)
(* PARTS comparison (6.3.2)                                            *)
(* ------------------------------------------------------------------ *)

let parts_comparison () =
  let mech_list = mechs @ [ RT.Parts ] in
  let ms = Run.measure_suite Rsti_workloads.Nbench.all mech_list in
  let rows =
    List.map
      (fun (w : Rsti_workloads.Workload.t) ->
        w.name
        :: List.map
             (fun mech ->
               match overhead_for ms mech w.name with
               | Some x -> pct x
               | None -> "-")
             mech_list)
      Rsti_workloads.Nbench.all
  in
  let means =
    "mean"
    :: List.map
         (fun mech ->
           pct (Stats.mean (Perf.overheads (Perf.of_mech ms mech))))
         mech_list
  in
  "Section 6.3.2: nbench, RSTI vs the PARTS baseline\n"
  ^ "(paper: PARTS mean 19.5%; RSTI means 1.54% / 0.52% / 2.78%)\n\n"
  ^ Tab.render
      ~header:[ "nbench kernel"; "RSTI-STWC"; "RSTI-STC"; "RSTI-STL"; "PARTS" ]
      (rows @ [ means ])

(* ------------------------------------------------------------------ *)
(* Overhead/instrumentation correlation (6.3.2)                        *)
(* ------------------------------------------------------------------ *)

let correlation (p : Perf.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Section 6.3.2: Pearson correlation between SPEC2006 overhead and the\n\
     amount of instrumentation (paper reports 0.75-0.8 against the number\n\
     of instrumented load/stores). Three views: static sites, executed\n\
     pac/aut operations, and executed operations per baseline cycle (the\n\
     density the cost model acts on).\n\n";
  List.iter
    (fun mech ->
      let ms = Perf.of_mech p.spec2006 mech in
      let ys = Perf.overheads ms in
      let dyn_ops (m : Run.measurement) =
        float_of_int
          (m.dyn.Rsti_machine.Interp.pac_signs + m.dyn.Rsti_machine.Interp.pac_auths)
      in
      let static (m : Run.measurement) =
        float_of_int
          (m.static_counts.Rsti_rsti.Instrument.signs
          + m.static_counts.Rsti_rsti.Instrument.auths)
      in
      let density m = dyn_ops m /. float_of_int m.Run.base_cycles in
      let r f = Stats.pearson (List.map f ms) ys in
      Buffer.add_string buf
        (Printf.sprintf "%-10s r(static sites) = %.3f   r(ops) = %.3f   r(density) = %.3f\n"
           (RT.mechanism_to_string mech) (r static) (r dyn_ops) (r density)))
    mechs;
  Buffer.contents buf

(** The security-event forensics report behind [rstic report incidents]:
    per-mechanism detection-latency percentiles (p50/p90/p99 in simulated
    cycles and instructions), the static↔dynamic coverage map, the
    per-incident table, one fully rendered forensic record, and the
    CI-greppable verdict line ["Incident coverage verdict: OK ..."],
    which holds iff every detected attack produced an incident that maps
    into the static attack-surface graph. *)

val render_record : Rsti_attacks.Incident.record -> string
(** The full forensic view of one incident: failing site, expected vs
    observed signer, runtime modifier, detection latency, and the
    flight-recorder window. *)

val verdict_line : Rsti_attacks.Incident.coverage -> string

val render : Rsti_attacks.Incident.coverage -> string
(** Render an already-collected coverage map. *)

val report : ?jobs:int -> ?flight:int -> unit -> string
(** Collect ({!Rsti_attacks.Incident.collect}) and render. *)

module S = Rsti_attacks.Scenario
module RT = Rsti_sti.Rsti_type
module Tab = Rsti_util.Tab

let table1_verdicts () =
  List.map
    (fun sc ->
      let base = S.run_baseline sc in
      let per_mech =
        List.map (fun m -> (m, (S.run sc m).S.verdict)) RT.all_mechanisms
      in
      (sc, base.S.verdict, per_mech))
    Rsti_attacks.Catalog.all

let table1_cfi_verdicts () =
  List.map (fun sc -> (sc, (S.run_cfi sc).S.verdict)) Rsti_attacks.Catalog.all

let verdict_cell = function
  | S.Attack_succeeded -> "succeeds"
  | S.Detected -> "DETECTED"
  | S.Attack_failed -> "failed"

let table1 () =
  let cfi = table1_cfi_verdicts () in
  let rows =
    table1_verdicts ()
    |> List.map (fun (sc, base, per_mech) ->
           let cfi_v =
             match List.find_opt (fun (sc', _) -> sc'.S.id = sc.S.id) cfi with
             | Some (_, v) -> verdict_cell v
             | None -> "-"
           in
           [
             sc.S.paper_row;
             sc.S.corrupted;
             sc.S.target;
             Printf.sprintf "%s @ %s" sc.S.original.ty sc.S.original.scope;
             verdict_cell base;
             cfi_v;
           ]
           @ List.map (fun (_, v) -> verdict_cell v) per_mech)
  in
  Tab.render
    ~align:Tab.[ Left; Left; Left; Left; Right; Right; Right; Right; Right ]
    ~header:
      [
        "Attack (Table 1)"; "Corrupted pointer"; "Target";
        "Original scope-type"; "no-defense"; "sig-CFI"; "STWC"; "STC"; "STL";
      ]
    rows
  ^ "\n\nExpected: every attack succeeds with no defense and is DETECTED by \
     all three RSTI mechanisms; the signature-CFI baseline misses every \
     data-oriented attack and same-signature code reuse (the paper's \
     motivation).\n"

(* ------------------------- elision safety ------------------------- *)

(* The static checker's safety invariant: proof-based instrumentation
   elision must never change a detection verdict. Run every Table 1
   attack and every substitution micro-scenario under each mechanism,
   with and without elision, and compare. *)

let elide_safety_verdicts () =
  List.map
    (fun sc ->
      let per_mech =
        List.map
          (fun m ->
            ( m,
              (S.run sc m).S.verdict,
              (S.run ~elide:true sc m).S.verdict ))
          RT.all_mechanisms
      in
      (sc, per_mech))
    Rsti_attacks.Catalog.all

let substitution_elide_agreement () =
  let scenarios =
    List.map fst Rsti_attacks.Substitution.expected
    @ List.map fst Rsti_attacks.Memory_safety.expected
  in
  List.concat_map
    (fun sc ->
      List.map
        (fun m ->
          ( sc,
            m,
            (S.run sc m).S.verdict,
            (S.run ~elide:true sc m).S.verdict ))
        (RT.all_mechanisms @ [ RT.Parts ]))
    scenarios

let elide_safety () =
  let t1 = elide_safety_verdicts () in
  let rows =
    List.map
      (fun (sc, per_mech) ->
        sc.S.paper_row
        :: List.concat_map
             (fun (_, full, elided) ->
               [
                 verdict_cell full;
                 verdict_cell elided;
                 (if full = elided then "yes" else "NO");
               ])
             per_mech)
      t1
  in
  let t1_held =
    List.for_all
      (fun (_, per_mech) ->
        List.for_all
          (fun (_, full, elided) -> full = S.Detected && elided = full)
          per_mech)
      t1
  in
  let subs = substitution_elide_agreement () in
  let subs_disagree =
    List.filter (fun (_, _, full, elided) -> full <> elided) subs
  in
  Tab.render
    ~align:
      Tab.[ Left; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
    ~header:
      [
        "Attack (Table 1)";
        "STWC"; "+elide"; "same";
        "STC"; "+elide"; "same";
        "STL"; "+elide"; "same";
      ]
    rows
  ^ Printf.sprintf
      "\n\nSafety invariant — all %d attacks DETECTED under every mechanism \
       with elision on: %s\nSubstitution micro-scenarios (%d scenario x \
       mechanism runs) verdict-identical with elision: %s\n"
      (List.length t1)
      (if t1_held then "HELD" else "VIOLATED")
      (List.length subs)
      (if subs_disagree = [] then "HELD"
       else
         "VIOLATED: "
         ^ String.concat ", "
             (List.map
                (fun (sc, m, _, _) ->
                  sc.S.id ^ "/" ^ RT.mechanism_to_string m)
                subs_disagree))

let table2 () =
  let mech_cols = RT.all_mechanisms @ [ RT.Parts ] in
  let make_rows scenarios =
    List.map
      (fun (sc, expectations) ->
        let cells =
          List.map
            (fun m ->
              match List.assoc_opt m expectations with
              | None -> "-"
              | Some _ -> verdict_cell (S.run sc m).S.verdict)
            mech_cols
        in
        [ sc.S.id; sc.S.paper_row ] @ cells)
      scenarios
  in
  let rows =
    make_rows Rsti_attacks.Substitution.expected
    @ make_rows Rsti_attacks.Memory_safety.expected
  in
  Tab.render
    ~align:Tab.[ Left; Left; Right; Right; Right; Right ]
    ~header:[ "Scenario"; "Substitution (Table 2)"; "STWC"; "STC"; "STL"; "PARTS" ]
    rows
  ^ "\n\nExpected (paper Table 2 + section 6.1.2): same-RSTI-type replay \
     evades STWC/STC but not STL; cast-merged replay evades only STC; \
     cross-scope and permission replays evade only the PARTS baseline.\n"

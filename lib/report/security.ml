module S = Rsti_attacks.Scenario
module RT = Rsti_sti.Rsti_type
module Tab = Rsti_util.Tab
module Pipeline = Rsti_engine.Pipeline
module Validate = Rsti_dataflow.Validate

let table1_verdicts () =
  List.map
    (fun sc ->
      let base = S.run_baseline sc in
      let per_mech =
        List.map (fun m -> (m, (S.run sc m).S.verdict)) RT.all_mechanisms
      in
      (sc, base.S.verdict, per_mech))
    Rsti_attacks.Catalog.all

let table1_cfi_verdicts () =
  List.map (fun sc -> (sc, (S.run_cfi sc).S.verdict)) Rsti_attacks.Catalog.all

let verdict_cell = function
  | S.Attack_succeeded -> "succeeds"
  | S.Detected -> "DETECTED"
  | S.Attack_failed -> "failed"

let table1 () =
  let cfi = table1_cfi_verdicts () in
  let rows =
    table1_verdicts ()
    |> List.map (fun (sc, base, per_mech) ->
           let cfi_v =
             match List.find_opt (fun (sc', _) -> sc'.S.id = sc.S.id) cfi with
             | Some (_, v) -> verdict_cell v
             | None -> "-"
           in
           [
             sc.S.paper_row;
             sc.S.corrupted;
             sc.S.target;
             Printf.sprintf "%s @ %s" sc.S.original.ty sc.S.original.scope;
             verdict_cell base;
             cfi_v;
           ]
           @ List.map (fun (_, v) -> verdict_cell v) per_mech)
  in
  Tab.render
    ~align:Tab.[ Left; Left; Left; Left; Right; Right; Right; Right; Right ]
    ~header:
      [
        "Attack (Table 1)"; "Corrupted pointer"; "Target";
        "Original scope-type"; "no-defense"; "sig-CFI"; "STWC"; "STC"; "STL";
      ]
    rows
  ^ "\n\nExpected: every attack succeeds with no defense and is DETECTED by \
     all three RSTI mechanisms; the signature-CFI baseline misses every \
     data-oriented attack and same-signature code reuse (the paper's \
     motivation).\n"

(* ------------------------- elision safety ------------------------- *)

(* The static checker's safety invariant: proof-based instrumentation
   elision must never change a detection verdict, at either precision.
   Run every Table 1 attack and every substitution micro-scenario under
   each mechanism, with and without elision, and compare. [~elision]
   selects the precision being audited (default [Syntactic]; the bench
   harness also runs the [With_points_to] variant). *)

let elide_safety_verdicts ?(elision = Rsti_staticcheck.Elide.Syntactic) () =
  List.map
    (fun sc ->
      let per_mech =
        List.map
          (fun m ->
            ( m,
              (S.run sc m).S.verdict,
              (S.run ~elision sc m).S.verdict ))
          RT.all_mechanisms
      in
      (sc, per_mech))
    Rsti_attacks.Catalog.all

let substitution_elide_agreement ?(elision = Rsti_staticcheck.Elide.Syntactic)
    () =
  let scenarios =
    List.map fst Rsti_attacks.Substitution.expected
    @ List.map fst Rsti_attacks.Memory_safety.expected
  in
  List.concat_map
    (fun sc ->
      List.map
        (fun m ->
          ( sc,
            m,
            (S.run sc m).S.verdict,
            (S.run ~elision sc m).S.verdict ))
        (RT.all_mechanisms @ [ RT.Parts ]))
    scenarios

let elide_safety ?(elision = Rsti_staticcheck.Elide.Syntactic) () =
  let t1 = elide_safety_verdicts ~elision () in
  let rows =
    List.map
      (fun (sc, per_mech) ->
        sc.S.paper_row
        :: List.concat_map
             (fun (_, full, elided) ->
               [
                 verdict_cell full;
                 verdict_cell elided;
                 (if full = elided then "yes" else "NO");
               ])
             per_mech)
      t1
  in
  let t1_held =
    List.for_all
      (fun (_, per_mech) ->
        List.for_all
          (fun (_, full, elided) -> full = S.Detected && elided = full)
          per_mech)
      t1
  in
  let subs = substitution_elide_agreement ~elision () in
  let subs_disagree =
    List.filter (fun (_, _, full, elided) -> full <> elided) subs
  in
  Tab.render
    ~align:
      Tab.[ Left; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
    ~header:
      [
        "Attack (Table 1)";
        "STWC"; "+elide"; "same";
        "STC"; "+elide"; "same";
        "STL"; "+elide"; "same";
      ]
    rows
  ^ Printf.sprintf
      "\n\nSafety invariant (%s elision) — all %d attacks DETECTED under \
       every mechanism with elision on: %s\nSubstitution micro-scenarios \
       (%d scenario x mechanism runs) verdict-identical with elision: %s\n"
      (Rsti_staticcheck.Elide.mode_to_string elision)
      (List.length t1)
      (if t1_held then "HELD" else "VIOLATED")
      (List.length subs)
      (if subs_disagree = [] then "HELD"
       else
         "VIOLATED: "
         ^ String.concat ", "
             (List.map
                (fun (sc, m, _, _) ->
                  sc.S.id ^ "/" ^ RT.mechanism_to_string m)
                subs_disagree))

(* --------------------- translation validation --------------------- *)

(* The PAC-typestate validator over every Table-1 victim: each
   instrumented module (mechanism x elision precision) must satisfy the
   signed-at-rest discipline, and a deliberately broken copy (one sign
   removed) must be rejected. Victims are independent, so the catalog
   fans out across domains. *)

let validation_results () =
  let modes =
    Rsti_staticcheck.Elide.[ Off; Syntactic; With_points_to ]
  in
  Rsti_engine.Scheduler.map
    (fun sc ->
      let src = Pipeline.source ~file:(sc.S.id ^ ".c") sc.S.program in
      let a = Pipeline.analyze (Pipeline.compile src) in
      let per =
        List.concat_map
          (fun m ->
            List.map
              (fun mode ->
                let config =
                  { Pipeline.default with Pipeline.elision = mode }
                in
                let i = Pipeline.instrument ~config m a in
                (m, mode, Pipeline.validation i))
              modes)
          RT.all_mechanisms
      in
      let anal = Pipeline.analysis a in
      let i = Pipeline.instrument RT.Stwc a in
      let broken_caught =
        match Validate.break_one_sign (Pipeline.instrumented_ir i) with
        | None -> None
        | Some broken ->
            Some (not (Validate.ok (Validate.check anal RT.Stwc broken)))
      in
      (sc, per, broken_caught))
    Rsti_attacks.Catalog.all

let validation () =
  let results = validation_results () in
  let cell sc mech per =
    let mine = List.filter (fun (m, _, _) -> m = mech) per in
    let bad =
      List.filter (fun (_, _, r) -> not (Validate.ok r)) mine
    in
    match bad with
    | [] -> "ok"
    | (_, mode, r) :: _ ->
        Printf.printf "validator FAIL %s/%s/%s:\n%s\n" sc.S.id
          (RT.mechanism_to_string mech)
          (Rsti_staticcheck.Elide.mode_to_string mode)
          (Validate.report_to_string r);
        "FAIL"
  in
  let rows =
    List.map
      (fun (sc, per, broken) ->
        [
          sc.S.id;
          cell sc RT.Stwc per;
          cell sc RT.Stc per;
          cell sc RT.Stl per;
          (match broken with
          | None -> "-"
          | Some true -> "caught"
          | Some false -> "MISSED");
        ])
      results
  in
  let all_ok =
    List.for_all
      (fun (_, per, broken) ->
        List.for_all (fun (_, _, r) -> Validate.ok r) per
        && broken <> Some false)
      results
  in
  "PAC-typestate translation validation (Table 1 victims)\n\
   Every instrumented module (mechanism x elision off/syntactic/points-to)\n\
   must satisfy the signed-at-rest discipline; a copy with one sign\n\
   removed must be rejected.\n\n"
  ^ Tab.render
      ~align:Tab.[ Left; Right; Right; Right; Right ]
      ~header:[ "Victim"; "STWC"; "STC"; "STL"; "broken copy" ]
      rows
  ^ Printf.sprintf "\n\nValidator verdict: %s\n"
      (if all_ok then "ALL PASS" else "FAILURES (see above)")

let table2 () =
  let mech_cols = RT.all_mechanisms @ [ RT.Parts ] in
  let make_rows scenarios =
    List.map
      (fun (sc, expectations) ->
        let cells =
          List.map
            (fun m ->
              match List.assoc_opt m expectations with
              | None -> "-"
              | Some _ -> verdict_cell (S.run sc m).S.verdict)
            mech_cols
        in
        [ sc.S.id; sc.S.paper_row ] @ cells)
      scenarios
  in
  let rows =
    make_rows Rsti_attacks.Substitution.expected
    @ make_rows Rsti_attacks.Memory_safety.expected
  in
  Tab.render
    ~align:Tab.[ Left; Left; Right; Right; Right; Right ]
    ~header:[ "Scenario"; "Substitution (Table 2)"; "STWC"; "STC"; "STL"; "PARTS" ]
    rows
  ^ "\n\nExpected (paper Table 2 + section 6.1.2): same-RSTI-type replay \
     evades STWC/STC but not STL; cast-merged replay evades only STC; \
     cross-scope and permission replays evade only the PARTS baseline.\n"

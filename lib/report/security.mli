(** Reproductions of the paper's security tables.

    - {!table1} runs every Table 1 attack at baseline and under the three
      RSTI mechanisms and renders the paper's columns (corrupted pointer,
      target, original vs corrupted scope-type info) plus the measured
      verdicts.
    - {!table2} runs the pointer-substitution micro-scenarios and renders
      the per-mechanism attacker-restriction matrix. *)

val table1 : unit -> string
val table2 : unit -> string

val table1_cfi_verdicts :
  unit -> (Rsti_attacks.Scenario.t * Rsti_attacks.Scenario.verdict) list
(** Each Table 1 attack under the signature-CFI baseline. *)

val table1_verdicts :
  unit ->
  (Rsti_attacks.Scenario.t
  * Rsti_attacks.Scenario.verdict
  * (Rsti_sti.Rsti_type.mechanism * Rsti_attacks.Scenario.verdict) list)
  list
(** Structured results (baseline verdict + per-mechanism verdicts), for
    tests and the bench harness. *)

val elide_safety : ?elision:Rsti_staticcheck.Elide.mode -> unit -> string
(** Render the elision safety-invariant check: every Table 1 attack under
    every mechanism with and without {!Rsti_staticcheck.Elide} elision at
    the chosen precision (default [Syntactic]; all must stay DETECTED),
    plus verdict agreement over the substitution micro-scenarios. *)

val elide_safety_verdicts :
  ?elision:Rsti_staticcheck.Elide.mode ->
  unit ->
  (Rsti_attacks.Scenario.t
  * (Rsti_sti.Rsti_type.mechanism
    * Rsti_attacks.Scenario.verdict
    * Rsti_attacks.Scenario.verdict)
    list)
  list
(** Structured (mechanism, full verdict, elided verdict) triples per
    Table 1 attack. *)

val validation : unit -> string
(** Render the PAC-typestate translation-validation matrix: every
    Table 1 victim instrumented under each mechanism and elision
    precision checked by {!Rsti_dataflow.Validate}, plus the
    one-sign-removed mutant that must be rejected. *)

val validation_results :
  unit ->
  (Rsti_attacks.Scenario.t
  * (Rsti_sti.Rsti_type.mechanism
    * Rsti_staticcheck.Elide.mode
    * Rsti_dataflow.Validate.report)
    list
  * bool option)
  list
(** Structured validator reports per victim; the final component is
    [Some caught] for the broken-copy check ([None] when the victim has
    no sign to break). *)

val substitution_elide_agreement :
  ?elision:Rsti_staticcheck.Elide.mode ->
  unit ->
  (Rsti_attacks.Scenario.t
  * Rsti_sti.Rsti_type.mechanism
  * Rsti_attacks.Scenario.verdict
  * Rsti_attacks.Scenario.verdict)
  list
(** Substitution + memory-safety micro-scenario verdicts with and without
    elision, per mechanism (including PARTS). *)

(** The static substitution-attack-surface report: per-workload modifier
    equivalence-class structure and gadget metrics for every mechanism at
    every points-to precision, plus the static/dynamic cross-validation
    ([rstic report attack-surface], the bench [attack-surface] section). *)

type row = {
  as_workload : string;
  as_mech : Rsti_sti.Rsti_type.mechanism;
  as_mode : Rsti_dataflow.Points_to.mode option;
      (** [None] = the unconfined oracle model *)
  as_metrics : Rsti_dataflow.Equiv.metrics;
}

val modes : Rsti_dataflow.Points_to.mode option list
(** The precision ladder each (workload, mechanism) pair is analyzed at:
    oracle, [Insensitive], [Cloning 2]. *)

val collect :
  ?jobs:int -> ?workloads:Rsti_workloads.Workload.t list -> unit -> row list
(** One row per (workload, mechanism, mode) over the static population
    ([Workload.analysis_source]); default workloads: the 18 SPEC2006
    kernels. Fans out over the domain pool; cache-memoized. *)

val class_refinement_ok : row list -> bool
(** The acceptance invariant: for every workload at every mode,
    [classes(STC) <= classes(STWC) <= classes(STL)] — cast-merging only
    coarsens and the location tweak only refines. *)

val feasible_refinement_ok : row list -> bool
(** For every (workload, mechanism): feasible edges never increase as
    precision rises — [feasible(Cloning 2) <= feasible(Insensitive) <=
    replay edges (oracle)]. *)

val render : row list -> string
(** The two tables: class structure per mechanism (oracle mode) and the
    gadget-edge precision ladder, each with its invariant verdict. *)

val crossval_summary : ?jobs:int -> unit -> Rsti_attacks.Crossval.summary
(** The full cross-validation: the substitution catalog plus generated
    candidates over the catalog programs and every executed SPEC2006
    kernel. *)

val render_crossval : Rsti_attacks.Crossval.summary -> string
(** Catalog and generated-candidate tables plus the machine-checkable
    verdict line: ["Cross-validation verdict: OK ..."] exactly when
    there are zero disagreements (["MISMATCH"] otherwise — the CI gate
    greps for the former). *)

val report : ?jobs:int -> unit -> string
(** [render (collect ())] followed by
    [render_crossval (crossval_summary ())]. *)

(** Ablation benches for the design choices DESIGN.md calls out. *)

val pac_cost_sweep : unit -> string
(** Sweep the modelled PA-instruction cost over 3..12 cycles (the paper
    adopts the 7-XOR equivalence) and report the SPEC2006 geomean per
    mechanism at each cost. *)

val merge_effect : unit -> string
(** Effect of STC's compatible-type merging: RSTI-type counts and static
    instrumentation sites with (STC) and without (STWC) combining, per
    SPEC2006 benchmark. *)

val stl_argument_cost : unit -> string
(** How much of STL's instrumentation is attributable to location
    re-binding at calls: static re-sign sites under STL vs STWC. *)

val ce_width : unit -> string
(** Pointer-to-pointer CE capacity: distinct original types needing a CE
    across all suites versus the 8-bit (255-entry) budget. *)

val pac_brute_force : unit -> string
(** PAC width vs forgery resistance, measured: an attacker who cannot
    sign guesses pointers with random PAC bits; the measured acceptance
    rate must track 2^-width (7 usable bits under TBI, 15 without — the
    paper's section 6.2.1 cites prior work that the PAC length suffices;
    this makes the claim quantitative). *)

val elision : unit -> string
(** The static checker's proof-based elision over SPEC2006: per-benchmark
    instrumented-site counts and STWC overhead with and without
    {!Rsti_staticcheck.Elide}, plus full-vs-elided geomeans per mechanism
    (the fig9 bars with elision on). *)

val elide_precision : unit -> string
(** Syntactic vs points-to elision precision over SPEC2006: per-workload
    candidate counts, provably-safe counts at both precisions, and the
    delta the {!Rsti_dataflow.Points_to} confinement proof adds. *)

type cs_row = {
  cs_name : string;
  cs_candidates : int;
  cs_safe_syn : int;       (** provably-safe, syntactic proof only *)
  cs_safe_pt : int;        (** + insensitive Andersen confinement *)
  cs_safe_cs : int;        (** + k=2 cloning and scope-escape *)
  cs_seconds_pt : float;   (** wall-clock of the insensitive pass *)
  cs_seconds_cs : float;   (** wall-clock of the cloned pass *)
}

val elide_precision_cs_data : unit -> cs_row list
(** The three-way precision ladder over SPEC2006 as data — what the
    bench harness embeds in BENCH_fig9.json's [elide-precision-cs]
    section. *)

val render_elide_precision_cs : cs_row list -> string
(** Render already-collected rows (the bench harness collects once and
    shares the rows with its JSON summary). *)

val elide_precision_cs : unit -> string
(** {!elide_precision_cs_data} rendered: safe counts at all three
    precisions, the cloning delta, and per-mode wall-clocks. *)

val backend_comparison : unit -> string
(** Section 7's "RSTI with mechanisms other than PAC", made concrete:
    the STWC policy enforced through a CCFI-style shadow MAC, compared
    against the PAC backend on the pointer-active SPEC2006 kernels. *)

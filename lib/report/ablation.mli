(** Ablation benches for the design choices DESIGN.md calls out. *)

val pac_cost_sweep : unit -> string
(** Sweep the modelled PA-instruction cost over 3..12 cycles (the paper
    adopts the 7-XOR equivalence) and report the SPEC2006 geomean per
    mechanism at each cost. *)

val merge_effect : unit -> string
(** Effect of STC's compatible-type merging: RSTI-type counts and static
    instrumentation sites with (STC) and without (STWC) combining, per
    SPEC2006 benchmark. *)

val stl_argument_cost : unit -> string
(** How much of STL's instrumentation is attributable to location
    re-binding at calls: static re-sign sites under STL vs STWC. *)

val ce_width : unit -> string
(** Pointer-to-pointer CE capacity: distinct original types needing a CE
    across all suites versus the 8-bit (255-entry) budget. *)

val pac_brute_force : unit -> string
(** PAC width vs forgery resistance, measured: an attacker who cannot
    sign guesses pointers with random PAC bits; the measured acceptance
    rate must track 2^-width (7 usable bits under TBI, 15 without — the
    paper's section 6.2.1 cites prior work that the PAC length suffices;
    this makes the claim quantitative). *)

val elision : unit -> string
(** The static checker's proof-based elision over SPEC2006: per-benchmark
    instrumented-site counts and STWC overhead with and without
    {!Rsti_staticcheck.Elide}, plus full-vs-elided geomeans per mechanism
    (the fig9 bars with elision on). *)

val elide_precision : unit -> string
(** Syntactic vs points-to elision precision over SPEC2006: per-workload
    candidate counts, provably-safe counts at both precisions, and the
    delta the {!Rsti_dataflow.Points_to} confinement proof adds. *)

val backend_comparison : unit -> string
(** Section 7's "RSTI with mechanisms other than PAC", made concrete:
    the STWC policy enforced through a CCFI-style shadow MAC, compared
    against the PAC backend on the pointer-active SPEC2006 kernels. *)

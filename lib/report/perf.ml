module RT = Rsti_sti.Rsti_type
module Run = Rsti_workloads.Run

type t = {
  spec2006 : Run.measurement list;
  spec2017 : Run.measurement list;
  nbench : Run.measurement list;
  pytorch : Run.measurement list;
  nginx : Run.measurement list;
}

let mechs = RT.all_mechanisms

let collect ?costs () =
  {
    spec2006 = Run.measure_suite ?costs Rsti_workloads.Spec2006.all mechs;
    spec2017 = Run.measure_suite ?costs Rsti_workloads.Spec2017.all mechs;
    nbench = Run.measure_suite ?costs Rsti_workloads.Nbench.all mechs;
    pytorch = Run.measure_suite ?costs Rsti_workloads.Pytorch.all mechs;
    nginx = Run.measure_suite ?costs Rsti_workloads.Nginx.all mechs;
  }

let of_mech ms mech = List.filter (fun (m : Run.measurement) -> m.mech = mech) ms

let overheads ms = List.map (fun (m : Run.measurement) -> m.Run.overhead_pct) ms

let all t = t.spec2006 @ t.spec2017 @ t.nbench @ t.pytorch @ t.nginx

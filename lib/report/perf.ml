module RT = Rsti_sti.Rsti_type
module Run = Rsti_workloads.Run
module Scheduler = Rsti_engine.Scheduler

type t = {
  spec2006 : Run.measurement list;
  spec2017 : Run.measurement list;
  nbench : Run.measurement list;
  pytorch : Run.measurement list;
  nginx : Run.measurement list;
}

let mechs = RT.all_mechanisms

(* One scheduler task per workload across every suite at once (the
   widest fan-out the data allows), then regroup per suite in workload
   order — the result is independent of the job count. *)
let collect ?(config = Run.default_config) () =
  let suites =
    [
      Rsti_workloads.Spec2006.all;
      Rsti_workloads.Spec2017.all;
      Rsti_workloads.Nbench.all;
      Rsti_workloads.Pytorch.all;
      Rsti_workloads.Nginx.all;
    ]
  in
  let tagged =
    List.concat (List.mapi (fun i ws -> List.map (fun w -> (i, w)) ws) suites)
  in
  let measured =
    Scheduler.map ?jobs:config.Run.jobs
      (fun (i, w) -> (i, Run.measure ~config w mechs))
      tagged
  in
  let of_suite i =
    List.concat_map (fun (j, ms) -> if i = j then ms else []) measured
  in
  {
    spec2006 = of_suite 0;
    spec2017 = of_suite 1;
    nbench = of_suite 2;
    pytorch = of_suite 3;
    nginx = of_suite 4;
  }

let of_mech ms mech = List.filter (fun (m : Run.measurement) -> m.mech = mech) ms

let overheads ms = List.map (fun (m : Run.measurement) -> m.Run.overhead_pct) ms

let all t = t.spec2006 @ t.spec2017 @ t.nbench @ t.pytorch @ t.nginx

(** The RSTI instrumentation pass (paper sections 4.6–4.7): rewrites a
    module so that

    - every store of a pointer-typed value is preceded by a [pac*] sign
      with the slot's RSTI-type modifier (on-store pointer signing),
    - every load of a pointer-typed value is followed by an [aut*]
      authentication with the same modifier (on-load authentication),
    - under STWC/STL, every pointer cast executes an authenticate+re-sign
      pair for the type transition,
    - under STL, modifiers additionally fold in the slot address ([&p]) at
      runtime, and parameter slots are instrumented too (the location
      changes at every call, section 4.6),
    - pointer arguments to uninstrumented external (libc) functions are
      [xpac]-stripped (section 4.6),
    - a pointer-to-pointer cast to a universal type passed as a function
      argument goes through the compiler-rt pp library: [pp_add] +
      [pp_sign] + [pp_add_tbi] at the call site, [pp_auth] at the
      callee's uses of that parameter (section 4.7.7).

    Parameter slots are not instrumented under STWC/STC — at -O2 those
    values live in registers (mem2reg), which the paper's threat model
    treats as uncorruptible; the PARTS baseline instruments them anyway,
    modelling its lack of backend optimisation. *)

type static_counts = {
  signs : int;
  auths : int;
  resigns : int;    (** cast-site auth+re-sign pairs *)
  strips : int;
  pp_ops : int;
  elided : int;     (** sign/auth sites skipped by the elision proof *)
}

type result = {
  modul : Rsti_ir.Ir.modul;                 (** rewritten copy *)
  pp_table : (int * int64) list;            (** CE → FE modifier, for the
                                                machine's read-only store *)
  counts : static_counts;                   (** inserted instrumentation *)
  per_func : (string * static_counts) list;
}

val instrument :
  ?elide:(Rsti_ir.Ir.slot -> bool) ->
  Rsti_sti.Rsti_type.mechanism -> Rsti_sti.Analysis.t -> Rsti_ir.Ir.modul -> result
(** Instrument under a mechanism. [Nop] returns the module unchanged. The
    input module must be uninstrumented.

    [elide] is the static checker's safety proof
    ({!Rsti_staticcheck.Elide.elide}): slots it accepts keep plain
    loads/stores — sign and auth are dropped together, so in-memory values
    stay raw and agree with the uninstrumented discipline. Sites skipped
    this way are tallied in [elided]. PARTS never elides (it models a
    compiler without the whole-program proof); the default elides
    nothing. *)

val compile_and_instrument :
  ?file:string -> ?elide:(Rsti_ir.Ir.slot -> bool) ->
  Rsti_sti.Rsti_type.mechanism -> string ->
  result * Rsti_sti.Analysis.t
(** Front-end convenience: source → checked → lowered → analyzed →
    instrumented. *)

module Ir = Rsti_ir.Ir
module Ctype = Rsti_minic.Ctype
module Analysis = Rsti_sti.Analysis
module Rsti_type = Rsti_sti.Rsti_type

type static_counts = {
  signs : int;
  auths : int;
  resigns : int;
  strips : int;
  pp_ops : int;
  elided : int;
}

let zero_counts =
  { signs = 0; auths = 0; resigns = 0; strips = 0; pp_ops = 0; elided = 0 }

let add_counts a b =
  {
    signs = a.signs + b.signs;
    auths = a.auths + b.auths;
    resigns = a.resigns + b.resigns;
    strips = a.strips + b.strips;
    pp_ops = a.pp_ops + b.pp_ops;
    elided = a.elided + b.elided;
  }

type result = {
  modul : Ir.modul;
  pp_table : (int * int64) list;
  counts : static_counts;
  per_func : (string * static_counts) list;
}

(* ------------------------------------------------------------------ *)
(* Per-module pre-analysis for the pointer-to-pointer mechanism        *)
(* ------------------------------------------------------------------ *)

type pp_plan = {
  (* caller side: bitcast result registers to wrap, per function *)
  casts_to_wrap : (string * Ir.reg, int (* CE *)) Hashtbl.t;
  (* callee side: parameter variable ids whose loads use pp_auth *)
  protected_params : (int, unit) Hashtbl.t;
  table : (int * int64) list;
}

let build_pp_plan anal (m : Ir.modul) : pp_plan =
  let ce_by_type = Hashtbl.create 8 in
  let table = ref [] in
  List.iter
    (fun (ty, ce, fe) ->
      Hashtbl.replace ce_by_type (Ctype.to_string (Ctype.strip_all_quals ty)) ce;
      table := (ce, fe) :: !table)
    (Analysis.ce_table anal);
  let casts_to_wrap = Hashtbl.create 8 in
  let protected_params = Hashtbl.create 8 in
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.name f) m.m_funcs;
  List.iter
    (fun (fn : Ir.func) ->
      (* map: reg -> (from_ty) for double-pointer-to-universal bitcasts *)
      let cast_regs = Hashtbl.create 8 in
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Bitcast { dst; from_ty; to_ty; _ }
            when Ctype.is_pointer_to_pointer from_ty
                 && (match Ctype.strip_all_quals to_ty with
                    | Ctype.Ptr Ctype.Void | Ctype.Ptr (Ctype.Ptr Ctype.Void) -> true
                    | Ctype.Ptr Ctype.Char -> true
                    | _ -> false)
                 && not (Ctype.equal (Ctype.strip_all_quals from_ty)
                           (Ctype.strip_all_quals to_ty)) ->
              Hashtbl.replace cast_regs dst
                (Ctype.to_string (Ctype.strip_all_quals from_ty))
          | _ -> ())
        fn;
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Call { callee; args; _ } ->
              List.iteri
                (fun j arg ->
                  match arg with
                  | Ir.Reg r when Hashtbl.mem cast_regs r -> (
                      let tstr = Hashtbl.find cast_regs r in
                      match Hashtbl.find_opt ce_by_type tstr with
                      | Some ce ->
                          Hashtbl.replace casts_to_wrap (fn.name, r) ce;
                          (match callee with
                          | Ir.Direct f -> (
                              match Hashtbl.find_opt defined f with
                              | Some callee_fn -> (
                                  match List.nth_opt callee_fn.params j with
                                  | Some p ->
                                      Hashtbl.replace protected_params
                                        p.Rsti_minic.Tast.v_id ()
                                  | None -> ())
                              | None -> ())
                          | Ir.Indirect _ -> ())
                      | None -> ())
                  | _ -> ())
                args
          | _ -> ())
        fn)
    m.m_funcs;
  { casts_to_wrap; protected_params; table = List.rev !table }

(* ------------------------------------------------------------------ *)
(* The rewrite                                                         *)
(* ------------------------------------------------------------------ *)

type fn_state = {
  mutable next_reg : int;
  mutable c : static_counts;
  (* registers defined by pp instructions: loads through them skip auth *)
  pp_regs : (Ir.reg, unit) Hashtbl.t;
}

let fresh st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

(* Which slots carry PAC instrumentation: the criterion lives in
   {!Analysis.instrument_candidate} so the attack-surface analysis
   enumerates exactly the population the rewriter instruments. *)
let should_instrument mech anal ty slot =
  Analysis.instrument_candidate anal mech ty slot

(* The slot address rides along on every sign/auth: the PAC backend only
   consumes it for STL's Mloc modifiers, but the shadow-MAC backend
   (section 7's "RSTI with mechanisms other than PAC") keys its MAC
   table by it. *)
let modifier_for mech anal slot (addr : Ir.value) : Ir.modifier * Ir.value =
  let h = Analysis.modifier_of anal mech slot in
  match mech with
  | Rsti_type.Stl -> (Ir.Mloc h, addr)
  | _ -> (Ir.Mconst h, addr)

let instrument_function ~elide mech anal plan externs (fn : Ir.func) :
    static_counts =
  let st = { next_reg = fn.nregs; c = zero_counts; pp_regs = Hashtbl.create 4 } in
  (* Elision (the staticcheck prover's verdicts): a slot whose every
     reaching store is a same-RSTI-type sign in its own flow component,
     with no escaping address and no attacker-writable window, keeps
     baseline loads/stores. Sign and auth are dropped together, so the
     raw-in-flight discipline is preserved. PARTS models a compiler
     without the whole-program proof and never elides. *)
  let elide_slot slot =
    mech <> Rsti_type.Parts && elide (Analysis.alias_slot anal slot)
  in
  let param_is_pp (slot : Ir.slot) =
    match slot with
    | Ir.Svar id -> Hashtbl.mem plan.protected_params id
    | _ -> false
  in
  (* Register definition map on the ORIGINAL code, to detect loads whose
     address came from a pp instruction's output (the callee's inner
     access through an authenticated double pointer). *)
  let pp_addr_reg r = Hashtbl.mem st.pp_regs r in
  let rewrite_instr (ins : Ir.instr) : Ir.instr list =
    match ins.i with
    | Ir.Load { dst; addr; ty; slot } when param_is_pp slot && Ctype.is_pointer ty ->
        (* pp-protected parameter: authenticate with the pp library, which
           recovers the original type's FE modifier from the CE tag. *)
        let tmp = fresh st in
        Hashtbl.replace st.pp_regs dst ();
        st.c <- add_counts st.c { zero_counts with pp_ops = 1; auths = 1 };
        [
          { ins with i = Ir.Load { dst = tmp; addr; ty; slot } };
          { ins with i = Ir.Pp (Ir.Pp_auth { dst; src = Ir.Reg tmp; slot_addr = Ir.Null }) };
        ]
    | Ir.Load { ty; slot; addr; _ }
      when should_instrument mech anal ty slot
           && elide_slot slot
           && not (match addr with Ir.Reg r -> pp_addr_reg r | _ -> false) ->
        st.c <- add_counts st.c { zero_counts with elided = 1 };
        [ ins ]
    | Ir.Load { dst; addr; ty; slot }
      when should_instrument mech anal ty slot
           && not (match addr with Ir.Reg r -> pp_addr_reg r | _ -> false) ->
        let tmp = fresh st in
        let m, slot_addr = modifier_for mech anal slot addr in
        st.c <- add_counts st.c { zero_counts with auths = 1 };
        [
          { ins with i = Ir.Load { dst = tmp; addr; ty; slot } };
          {
            ins with
            i =
              Ir.Pac
                {
                  p_kind = Ir.Kauth;
                  p_dst = dst;
                  p_src = Ir.Reg tmp;
                  p_key = Analysis.key_for ty;
                  p_mod = m;
                  p_mod_from = m;
                  p_slot_addr = slot_addr;
                };
          };
        ]
    | Ir.Store { ty; slot; addr; _ }
      when should_instrument mech anal ty slot
           && elide_slot slot
           && (not (param_is_pp slot))
           && not (match addr with Ir.Reg r -> pp_addr_reg r | _ -> false) ->
        st.c <- add_counts st.c { zero_counts with elided = 1 };
        [ ins ]
    | Ir.Store { src; addr; ty; slot }
      when should_instrument mech anal ty slot
           && (not (param_is_pp slot))
           && not (match addr with Ir.Reg r -> pp_addr_reg r | _ -> false) ->
        let tmp = fresh st in
        let m, slot_addr = modifier_for mech anal slot addr in
        st.c <- add_counts st.c { zero_counts with signs = 1 };
        [
          {
            ins with
            i =
              Ir.Pac
                {
                  p_kind = Ir.Ksign;
                  p_dst = tmp;
                  p_src = src;
                  p_key = Analysis.key_for ty;
                  p_mod = m;
                  p_mod_from = m;
                  p_slot_addr = slot_addr;
                };
          };
          { ins with i = Ir.Store { src = Ir.Reg tmp; addr; ty; slot } };
        ]
    | Ir.Bitcast { dst; src; from_ty; to_ty }
      when (mech = Rsti_type.Stwc || mech = Rsti_type.Stl)
           && Ctype.is_pointer from_ty && Ctype.is_pointer to_ty
           && (not (Ctype.equal (Ctype.strip_all_quals from_ty)
                      (Ctype.strip_all_quals to_ty)))
           && not (Hashtbl.mem plan.casts_to_wrap (fn.name, dst)) ->
        (* Legitimate cast: authenticate under the source RSTI-type and
           re-sign under the target's (section 4.7.5). In-flight values
           are raw in this codebase's discipline, so the pair acts as a
           checked identity; its cost and counts are real. *)
        let tmp = fresh st in
        let from_mod = Analysis.modifier_of anal mech (Ir.Sanon from_ty) in
        let to_mod = Analysis.modifier_of anal mech (Ir.Sanon to_ty) in
        st.c <- add_counts st.c { zero_counts with resigns = 1 };
        [
          { ins with i = Ir.Bitcast { dst = tmp; src; from_ty; to_ty } };
          {
            ins with
            i =
              Ir.Pac
                {
                  p_kind = Ir.Kresign;
                  p_dst = dst;
                  p_src = Ir.Reg tmp;
                  p_key = Analysis.key_for to_ty;
                  p_mod = Ir.Mconst to_mod;
                  p_mod_from = Ir.Mconst from_mod;
                  p_slot_addr = Ir.Null;
                };
          };
        ]
    | Ir.Call ({ callee; args; arg_tys; _ } as call) ->
        let pre = ref [] in
        let args' =
          List.mapi
            (fun j arg ->
              let ty = List.nth_opt arg_tys j in
              match arg with
              | Ir.Reg r when Hashtbl.mem plan.casts_to_wrap (fn.name, r) ->
                  (* pp mechanism at the call site (Figure 7). *)
                  let ce = Hashtbl.find plan.casts_to_wrap (fn.name, r) in
                  let t1 = fresh st and t2 = fresh st in
                  st.c <- add_counts st.c { zero_counts with pp_ops = 3; signs = 1 };
                  pre :=
                    !pre
                    @ [
                        { ins with i = Ir.Pp (Ir.Pp_add { pp_addr = arg; ce }) };
                        { ins with
                          i = Ir.Pp (Ir.Pp_sign
                                       { dst = t1; src = arg; ce; slot_addr = Ir.Null }) };
                        { ins with
                          i = Ir.Pp (Ir.Pp_add_tbi { dst = t2; src = Ir.Reg t1; ce }) };
                      ];
                  Ir.Reg t2
              | _ -> (
                  match (callee, ty) with
                  | Ir.Indirect _, Some ty
                  | Ir.Direct _, Some ty
                    when (match callee with
                         | Ir.Direct f -> not (Hashtbl.mem externs f)
                         | Ir.Indirect _ -> true)
                         && Ctype.is_pointer ty && mech = Rsti_type.Stl ->
                      (* STL: the pointer's location changes when it is
                         passed, so it is authenticated under the caller's
                         binding and re-signed for the callee's (4.6). In
                         this codebase's raw-in-flight discipline the pair
                         is a checked identity with real cost/counts. *)
                      let tmp = fresh st in
                      let am = Analysis.modifier_of anal mech (Ir.Sanon ty) in
                      st.c <- add_counts st.c { zero_counts with resigns = 1 };
                      pre :=
                        !pre
                        @ [
                            {
                              ins with
                              i =
                                Ir.Pac
                                  {
                                    p_kind = Ir.Kresign;
                                    p_dst = tmp;
                                    p_src = arg;
                                    p_key = Analysis.key_for ty;
                                    p_mod = Ir.Mconst am;
                                    p_mod_from = Ir.Mconst am;
                                    p_slot_addr = Ir.Null;
                                  };
                            };
                          ];
                      Ir.Reg tmp
                  | Ir.Direct f, Some ty
                    when Hashtbl.mem externs f && Ctype.is_pointer ty
                         && mech <> Rsti_type.Nop ->
                      (* external library call: strip the PAC (4.6) *)
                      let tmp = fresh st in
                      st.c <- add_counts st.c { zero_counts with strips = 1 };
                      pre :=
                        !pre
                        @ [
                            {
                              ins with
                              i =
                                Ir.Pac
                                  {
                                    p_kind = Ir.Kstrip;
                                    p_dst = tmp;
                                    p_src = arg;
                                    p_key = Analysis.key_for ty;
                                    p_mod = Ir.Mconst 0L;
                                    p_mod_from = Ir.Mconst 0L;
                                    p_slot_addr = Ir.Null;
                                  };
                            };
                          ];
                      Ir.Reg tmp
                  | _ -> arg))
            args
        in
        !pre @ [ { ins with i = Ir.Call { call with args = args' } } ]
    | _ -> [ ins ]
  in
  let rewrite_term (b : Ir.block) =
    (* STL: a returned pointer moves to the caller's location and is
       re-signed on the way out, symmetric to the argument case. *)
    match b.Ir.term with
    | Ir.Ret (Some v) when mech = Rsti_type.Stl && Ctype.is_pointer fn.ret ->
        let tmp = fresh st in
        let am = Analysis.modifier_of anal mech (Ir.Sanon fn.ret) in
        st.c <- add_counts st.c { zero_counts with resigns = 1 };
        let resign =
          {
            Ir.i =
              Ir.Pac
                {
                  p_kind = Ir.Kresign;
                  p_dst = tmp;
                  p_src = v;
                  p_key = Analysis.key_for fn.ret;
                  p_mod = Ir.Mconst am;
                  p_mod_from = Ir.Mconst am;
                  p_slot_addr = Ir.Null;
                };
            dbg = None;
          }
        in
        (b.Ir.instrs @ [ resign ], Ir.Ret (Some (Ir.Reg tmp)))
    | t -> (b.Ir.instrs, t)
  in
  let new_blocks =
    Array.map
      (fun (b : Ir.block) ->
        let instrs = List.concat_map rewrite_instr b.instrs in
        let instrs, term = rewrite_term { b with Ir.instrs } in
        { b with Ir.instrs; term })
      fn.blocks
  in
  fn.blocks <- new_blocks;
  fn.nregs <- st.next_reg;
  st.c

(* Deep-copy a function so instrumentation never mutates the input. *)
let copy_func (fn : Ir.func) : Ir.func =
  {
    fn with
    Ir.blocks =
      Array.map (fun (b : Ir.block) -> { b with Ir.instrs = b.instrs }) fn.blocks;
  }

let instrument ?(elide = fun _ -> false) mech anal (m : Ir.modul) : result =
  if mech = Rsti_type.Nop then
    { modul = m; pp_table = []; counts = zero_counts; per_func = [] }
  else begin
    let funcs = List.map copy_func m.m_funcs in
    let m' = { m with Ir.m_funcs = funcs } in
    let plan = build_pp_plan anal m' in
    let externs = Hashtbl.create 16 in
    let defined = Hashtbl.create 16 in
    List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.name ()) funcs;
    List.iter
      (fun (name, _) ->
        if not (Hashtbl.mem defined name) then Hashtbl.replace externs name ())
      m.m_externs;
    let per_func =
      List.map
        (fun fn ->
          (fn.Ir.name, instrument_function ~elide mech anal plan externs fn))
        funcs
    in
    let counts = List.fold_left (fun acc (_, c) -> add_counts acc c) zero_counts per_func in
    { modul = m'; pp_table = plan.table; counts; per_func }
  end

let compile_and_instrument ?(file = "<string>") ?elide mech src =
  let m = Rsti_ir.Lower.compile ~file src in
  let anal = Analysis.analyze m in
  (instrument ?elide mech anal m, anal)

exception Error of string * Loc.t

let err loc fmt = Printf.ksprintf (fun msg -> raise (Error (msg, loc))) fmt

type env = {
  structs : (string, (string * Ctype.t) list) Hashtbl.t;
  funcs : (string, Ctype.signature) Hashtbl.t;   (* defined functions *)
  externs : (string, Ctype.t) Hashtbl.t;          (* declared, no body *)
  globals : (string, Tast.var) Hashtbl.t;
  mutable next_id : int;
  (* per-function state *)
  mutable scopes : (string * Tast.var) list list;
  mutable current_func : string option;
  mutable current_ret : Ctype.t;
  mutable loop_depth : int;
  mutable switch_depth : int;
}

let fresh_var env ~name ~ty ~kind ~loc =
  let id = env.next_id in
  env.next_id <- id + 1;
  {
    Tast.v_id = id;
    v_name = name;
    v_ty = ty;
    v_kind = kind;
    v_func = env.current_func;
    v_loc = loc;
  }

let push_scope env = env.scopes <- [] :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> invalid_arg "Typecheck.pop_scope: no scope"

let bind_local env (v : Tast.var) =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((v.v_name, v) :: scope) :: rest
  | [] -> invalid_arg "Typecheck.bind_local: no scope"

let lookup_var env name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some v -> Some v
        | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some v -> Some v
  | None -> Hashtbl.find_opt env.globals name

let struct_fields env loc name =
  match Hashtbl.find_opt env.structs name with
  | Some fields -> fields
  | None -> err loc "unknown struct '%s'" name

let lookup_field env loc sname fname =
  match List.assoc_opt fname (struct_fields env loc sname) with
  | Some ty -> ty
  | None -> err loc "struct %s has no field '%s'" sname fname

(* ---------------------------------------------------------------- *)
(* Conversions                                                       *)
(* ---------------------------------------------------------------- *)

let is_null_constant (e : Tast.texpr) =
  match e.tdesc with
  | Tast.Tint 0L -> true
  | Tast.Tcast (ty, { tdesc = Tast.Tint 0L; _ }) -> Ctype.is_pointer ty
  | _ -> false

(* Can [e] be implicitly used where type [want] is expected? Mirrors C's
   assignment conversions. Returns the possibly-adjusted expression. *)
let coerce env loc ~want (e : Tast.texpr) =
  ignore env;
  let have = e.Tast.tty in
  let have_s = Ctype.strip_all_quals have and want_s = Ctype.strip_all_quals want in
  if Ctype.equal have_s want_s then e
  else if Ctype.is_integer have && Ctype.is_integer want then
    (* same 64-bit representation; retype to the expected type so call
       sites carry the signature's types (CFI and lowering rely on it) *)
    { e with Tast.tty = want_s }
  else if
    (Ctype.is_integer have && Ctype.strip_const want_s = Ctype.Double)
    || (Ctype.strip_const have_s = Ctype.Double && Ctype.is_integer want)
  then { e with Tast.tdesc = Tast.Tcast (want_s, e); tty = want_s }
  else if Ctype.is_pointer want && is_null_constant e then
    { e with Tast.tdesc = Tast.Tcast (want_s, e); tty = want_s }
  else if Ctype.is_pointer have && Ctype.is_pointer want then begin
    (* void* converts both ways implicitly, like C. *)
    let hp = Ctype.strip_all_quals (Ctype.pointee have_s) in
    let wp = Ctype.strip_all_quals (Ctype.pointee want_s) in
    if hp = Ctype.Void || wp = Ctype.Void then
      { e with Tast.tdesc = Tast.Tcast (want_s, e); tty = want_s }
    else
      err loc "incompatible pointer types: have %s, want %s (insert a cast)"
        (Ctype.to_string have) (Ctype.to_string want)
  end
  else
    err loc "type mismatch: have %s, want %s" (Ctype.to_string have)
      (Ctype.to_string want)

(* Array-typed values decay to pointers to their first element. *)
let decay (e : Tast.texpr) =
  match Ctype.strip_const e.Tast.tty with
  | Ctype.Array (elem, _) -> (
      match e.Tast.tdesc with
      | Tast.Tread l -> { e with Tast.tdesc = Tast.Taddr l; tty = Ctype.Ptr elem }
      | _ -> { e with Tast.tty = Ctype.Ptr elem })
  | _ -> e

(* ---------------------------------------------------------------- *)
(* Expressions                                                       *)
(* ---------------------------------------------------------------- *)

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  let loc = e.loc in
  let mk tdesc tty = { Tast.tdesc; tty; tloc = loc } in
  match e.desc with
  | Ast.Int_lit n -> mk (Tast.Tint n) Ctype.Long
  | Ast.Float_lit x -> mk (Tast.Tdouble x) Ctype.Double
  | Ast.Char_lit c -> mk (Tast.Tint (Int64.of_int (Char.code c))) Ctype.Char
  | Ast.Str_lit s -> mk (Tast.Tstr s) (Ctype.Ptr (Ctype.Const Ctype.Char))
  | Ast.Var name -> (
      match lookup_var env name with
      | Some v -> mk (Tast.Tread { Tast.ldesc = Tast.Lvar v; lty = v.v_ty; lloc = loc }) v.Tast.v_ty
      | None -> (
          match Hashtbl.find_opt env.funcs name with
          | Some sg -> mk (Tast.Tfunc_addr name) (Ctype.Ptr (Ctype.Func sg))
          | None -> (
              match Hashtbl.find_opt env.externs name with
              | Some (Ctype.Func sg) -> mk (Tast.Tfunc_addr name) (Ctype.Ptr (Ctype.Func sg))
              | Some ty ->
                  mk (Tast.Tread { Tast.ldesc = Tast.Lvar (extern_var env name ty loc);
                                   lty = ty; lloc = loc }) ty
              | None -> err loc "unknown identifier '%s'" name)))
  | Ast.Unop (Ast.Neg, a) ->
      let a = check_expr env a in
      if not (Ctype.is_integer a.tty || Ctype.strip_const a.tty = Ctype.Double) then
        err loc "negation needs a numeric operand";
      mk (Tast.Tneg a) a.tty
  | Ast.Unop (Ast.Lognot, a) ->
      let a = check_scalar env a in
      mk (Tast.Tlognot a) Ctype.Int
  | Ast.Unop (Ast.Bitnot, a) ->
      let a = check_expr env a in
      if not (Ctype.is_integer a.tty) then err loc "bitwise not needs an integer";
      mk (Tast.Tbitnot a) a.tty
  | Ast.Unop (Ast.AddrOf, a) ->
      let l = check_lval env a in
      mk (Tast.Taddr l) (Ctype.Ptr l.Tast.lty)
  | Ast.Unop (Ast.Deref, a) ->
      let l = check_lval env e in
      ignore a;
      mk (Tast.Tread l) l.Tast.lty
  | Ast.Member _ | Ast.Arrow _ | Ast.Index _ ->
      let l = check_lval env e in
      mk (Tast.Tread l) l.Tast.lty
  | Ast.Binop (op, a, b) -> check_binop env loc op a b
  | Ast.Assign (lhs, rhs) ->
      let l = check_lval env lhs in
      if Ctype.is_const l.Tast.lty then
        err loc "assignment to const lvalue of type %s" (Ctype.to_string l.Tast.lty);
      let r = decay (check_expr env rhs) in
      let r = coerce env loc ~want:l.Tast.lty r in
      mk (Tast.Tassign (l, r)) (Ctype.strip_const l.Tast.lty)
  | Ast.Call (callee, args) -> check_call env loc callee args
  | Ast.Cast (ty, a) ->
      let a = decay (check_expr env a) in
      check_cast_validity loc ty a;
      mk (Tast.Tcast (ty, a)) ty
  | Ast.Sizeof_type ty ->
      mk (Tast.Tint (Int64.of_int (sizeof env loc ty))) Ctype.Long
  | Ast.Sizeof_expr a ->
      let a = check_expr env a in
      mk (Tast.Tint (Int64.of_int (sizeof env loc a.Tast.tty))) Ctype.Long
  | Ast.Cond (c, a, b) ->
      let c = check_scalar env c in
      let a = decay (check_expr env a) in
      let b = decay (check_expr env b) in
      let ty =
        if Ctype.equal (Ctype.strip_all_quals a.tty) (Ctype.strip_all_quals b.tty)
        then Ctype.strip_all_quals a.tty
        else if Ctype.is_integer a.tty && Ctype.is_integer b.tty then Ctype.Long
        else if Ctype.is_pointer a.tty && is_null_constant b then a.tty
        else if Ctype.is_pointer b.tty && is_null_constant a then b.tty
        else if Ctype.is_pointer a.tty && Ctype.is_pointer b.tty then
          Ctype.Ptr Ctype.Void
        else
          err loc "incompatible branches of ?: (%s vs %s)" (Ctype.to_string a.tty)
            (Ctype.to_string b.tty)
      in
      mk (Tast.Tcond (c, a, b)) ty

and extern_var env name ty loc =
  (* Extern data objects get a stable pseudo-variable per name. *)
  match Hashtbl.find_opt env.globals ("extern$" ^ name) with
  | Some v -> v
  | None ->
      let saved = env.current_func in
      env.current_func <- None;
      let v = fresh_var env ~name ~ty ~kind:Tast.Kglobal ~loc in
      env.current_func <- saved;
      Hashtbl.replace env.globals ("extern$" ^ name) v;
      v

and check_scalar env (e : Ast.expr) =
  let t = decay (check_expr env e) in
  if not (Ctype.is_scalar t.Tast.tty) then
    err e.loc "expected a scalar value, got %s" (Ctype.to_string t.Tast.tty);
  t

and check_cast_validity loc ty (a : Tast.texpr) =
  let from = Ctype.strip_all_quals a.Tast.tty in
  let to_ = Ctype.strip_all_quals ty in
  let ok =
    match (from, to_) with
    | _, Ctype.Void -> true
    | (Ctype.Char | Ctype.Int | Ctype.Long | Ctype.Double),
      (Ctype.Char | Ctype.Int | Ctype.Long | Ctype.Double) ->
        true
    | Ctype.Ptr _, Ctype.Ptr _ -> true
    | Ctype.Ptr _, (Ctype.Char | Ctype.Int | Ctype.Long)
    | (Ctype.Char | Ctype.Int | Ctype.Long), Ctype.Ptr _ ->
        true
    | _ -> false
  in
  if not ok then
    err loc "invalid cast from %s to %s" (Ctype.to_string a.Tast.tty)
      (Ctype.to_string ty)

and check_binop env loc op a b : Tast.texpr =
  let mk tdesc tty = { Tast.tdesc; tty; tloc = loc } in
  match op with
  | Ast.Logand | Ast.Logor ->
      let a = check_scalar env a and b = check_scalar env b in
      mk (Tast.Tbinop (op, a, b)) Ctype.Int
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let a = decay (check_expr env a) and b = decay (check_expr env b) in
      let ok =
        (Ctype.is_integer a.tty && Ctype.is_integer b.tty)
        || (Ctype.strip_const a.tty = Ctype.Double
           && Ctype.strip_const b.tty = Ctype.Double)
        || (Ctype.is_pointer a.tty && (Ctype.is_pointer b.tty || is_null_constant b))
        || (Ctype.is_pointer b.tty && is_null_constant a)
        || (Ctype.is_integer a.tty && Ctype.strip_const b.tty = Ctype.Double)
        || (Ctype.is_integer b.tty && Ctype.strip_const a.tty = Ctype.Double)
      in
      if not ok then
        err loc "cannot compare %s with %s" (Ctype.to_string a.tty)
          (Ctype.to_string b.tty);
      mk (Tast.Tbinop (op, a, b)) Ctype.Int
  | Ast.Add | Ast.Sub ->
      let a = decay (check_expr env a) and b = decay (check_expr env b) in
      if Ctype.is_pointer a.tty && Ctype.is_integer b.tty then
        mk (Tast.Tbinop (op, a, b)) (Ctype.strip_const a.tty)
      else if op = Ast.Add && Ctype.is_integer a.tty && Ctype.is_pointer b.tty then
        mk (Tast.Tbinop (op, b, a)) (Ctype.strip_const b.tty)
      else if op = Ast.Sub && Ctype.is_pointer a.tty && Ctype.is_pointer b.tty then
        mk (Tast.Tbinop (op, a, b)) Ctype.Long
      else numeric_binop env loc op a b
  | Ast.Mul | Ast.Div | Ast.Mod ->
      let a = decay (check_expr env a) and b = decay (check_expr env b) in
      numeric_binop env loc op a b
  | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl | Ast.Shr ->
      let a = decay (check_expr env a) and b = decay (check_expr env b) in
      if not (Ctype.is_integer a.tty && Ctype.is_integer b.tty) then
        err loc "bitwise operator needs integer operands";
      mk (Tast.Tbinop (op, a, b)) Ctype.Long

and numeric_binop _env loc op (a : Tast.texpr) (b : Tast.texpr) =
  let is_num t = Ctype.is_integer t || Ctype.strip_const t = Ctype.Double in
  if not (is_num a.tty && is_num b.tty) then
    err loc "arithmetic needs numeric operands (got %s and %s)"
      (Ctype.to_string a.tty) (Ctype.to_string b.tty);
  let ty =
    if Ctype.strip_const a.tty = Ctype.Double || Ctype.strip_const b.tty = Ctype.Double
    then Ctype.Double
    else Ctype.Long
  in
  { Tast.tdesc = Tast.Tbinop (op, a, b); tty = ty; tloc = loc }

and check_call env loc callee args : Tast.texpr =
  let mk tdesc tty = { Tast.tdesc; tty; tloc = loc } in
  let check_args sg args =
    let nparams = List.length sg.Ctype.params in
    let nargs = List.length args in
    if nargs < nparams || ((not sg.Ctype.variadic) && nargs > nparams) then
      err loc "wrong number of arguments: expected %d%s, got %d" nparams
        (if sg.Ctype.variadic then "+" else "")
        nargs;
    let fixed, extra =
      let rec split i = function
        | [] -> ([], [])
        | x :: rest ->
            if i < nparams then
              let f, e = split (i + 1) rest in
              (x :: f, e)
            else ([], x :: rest)
      in
      split 0 args
    in
    let fixed =
      List.map2
        (fun want arg -> coerce env loc ~want (decay (check_expr env arg)))
        sg.Ctype.params fixed
    in
    fixed @ List.map (fun a -> decay (check_expr env a)) extra
  in
  match callee.Ast.desc with
  | Ast.Var name when Hashtbl.mem env.funcs name ->
      let sg = Hashtbl.find env.funcs name in
      mk (Tast.Tcall (Tast.Cdirect name, check_args sg args)) sg.Ctype.ret
  | Ast.Var name when (match Hashtbl.find_opt env.externs name with
                      | Some (Ctype.Func _) -> true
                      | _ -> false) ->
      let sg =
        match Hashtbl.find env.externs name with
        | Ctype.Func sg -> sg
        | _ -> assert false
      in
      mk (Tast.Tcall (Tast.Cdirect name, check_args sg args)) sg.Ctype.ret
  | _ ->
      (* indirect call through a function pointer expression *)
      let f = decay (check_expr env callee) in
      let sg =
        match Ctype.strip_const f.Tast.tty with
        | Ctype.Ptr fty -> (
            match Ctype.strip_const fty with
            | Ctype.Func sg -> sg
            | _ -> err loc "called value is not a function pointer")
        | _ -> err loc "called value is not a function pointer"
      in
      mk (Tast.Tcall (Tast.Cindirect f, check_args sg args)) sg.Ctype.ret

(* ---------------------------------------------------------------- *)
(* Lvalues                                                           *)
(* ---------------------------------------------------------------- *)

and check_lval env (e : Ast.expr) : Tast.lval =
  let loc = e.loc in
  match e.desc with
  | Ast.Var name -> (
      match lookup_var env name with
      | Some v -> { Tast.ldesc = Tast.Lvar v; lty = v.Tast.v_ty; lloc = loc }
      | None -> (
          match Hashtbl.find_opt env.externs name with
          | Some ty when (match ty with Ctype.Func _ -> false | _ -> true) ->
              let v = extern_var env name ty loc in
              { Tast.ldesc = Tast.Lvar v; lty = ty; lloc = loc }
          | _ -> err loc "unknown variable '%s'" name))
  | Ast.Unop (Ast.Deref, a) -> (
      let p = decay (check_expr env a) in
      match Ctype.strip_const p.Tast.tty with
      | Ctype.Ptr inner ->
          if Ctype.strip_all_quals inner = Ctype.Void then
            err loc "cannot dereference void*";
          { Tast.ldesc = Tast.Lderef p; lty = inner; lloc = loc }
      | t -> err loc "cannot dereference non-pointer type %s" (Ctype.to_string t))
  | Ast.Member (base, fname) -> (
      let l = check_lval env base in
      match Ctype.strip_const l.Tast.lty with
      | Ctype.Struct sname ->
          let fty = lookup_field env loc sname fname in
          { Tast.ldesc = Tast.Lfield (l, sname, fname); lty = fty; lloc = loc }
      | t -> err loc "member access on non-struct type %s" (Ctype.to_string t))
  | Ast.Arrow (base, fname) -> (
      let p = decay (check_expr env base) in
      match Ctype.strip_const p.Tast.tty with
      | Ctype.Ptr inner -> (
          match Ctype.strip_const inner with
          | Ctype.Struct sname ->
              let fty = lookup_field env loc sname fname in
              { Tast.ldesc = Tast.Lfield_ptr (p, sname, fname); lty = fty; lloc = loc }
          | t -> err loc "-> on pointer to non-struct type %s" (Ctype.to_string t))
      | t -> err loc "-> on non-pointer type %s" (Ctype.to_string t))
  | Ast.Index (base, idx) -> (
      let p = decay (check_expr env base) in
      let i = decay (check_expr env idx) in
      if not (Ctype.is_integer i.Tast.tty) then err loc "array index must be an integer";
      match Ctype.strip_const p.Tast.tty with
      | Ctype.Ptr inner -> { Tast.ldesc = Tast.Lindex (p, i); lty = inner; lloc = loc }
      | t -> err loc "indexing a non-pointer type %s" (Ctype.to_string t))
  | Ast.Cast _ | Ast.Assign _ | Ast.Call _ | Ast.Int_lit _ | Ast.Float_lit _
  | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Unop _ | Ast.Binop _ | Ast.Sizeof_type _
  | Ast.Sizeof_expr _ | Ast.Cond _ ->
      err loc "expression is not an lvalue"

and sizeof env loc ty =
  let lookup name = struct_fields env loc name in
  try Ctype.sizeof ~lookup ty
  with Invalid_argument m -> err loc "sizeof: %s" m

(* ---------------------------------------------------------------- *)
(* Statements                                                        *)
(* ---------------------------------------------------------------- *)

let rec check_stmt env (s : Ast.stmt) : Tast.tstmt =
  let loc = s.s_loc in
  match s.s with
  | Ast.Sexpr e -> Tast.Tsexpr (check_expr env e)
  | Ast.Sdecl d ->
      (match d.d_ty with
      | Ctype.Void -> err loc "cannot declare a void variable"
      | _ -> ());
      ignore (sizeof env loc d.d_ty);
      let init =
        Option.map
          (fun e ->
            let r = decay (check_expr env e) in
            coerce env loc ~want:d.d_ty r)
          d.Ast.d_init
      in
      let v = fresh_var env ~name:d.d_name ~ty:d.d_ty ~kind:Tast.Klocal ~loc in
      bind_local env v;
      Tast.Tsdecl (v, init)
  | Ast.Sif (c, a, b) ->
      let c = check_scalar env c in
      Tast.Tsif (c, check_block env a, check_block env b)
  | Ast.Swhile (c, b) ->
      let c = check_scalar env c in
      env.loop_depth <- env.loop_depth + 1;
      let b = check_block env b in
      env.loop_depth <- env.loop_depth - 1;
      Tast.Tswhile (c, b)
  | Ast.Sdo (b, c) ->
      env.loop_depth <- env.loop_depth + 1;
      let b = check_block env b in
      env.loop_depth <- env.loop_depth - 1;
      let c = check_scalar env c in
      Tast.Tsdo (b, c)
  | Ast.Sfor (init, cond, step, b) ->
      push_scope env;
      let init = Option.map (check_stmt env) init in
      let cond = Option.map (check_scalar env) cond in
      let step = Option.map (check_expr env) step in
      env.loop_depth <- env.loop_depth + 1;
      let b = check_block env b in
      env.loop_depth <- env.loop_depth - 1;
      pop_scope env;
      Tast.Tsfor (init, cond, step, b)
  | Ast.Sreturn None ->
      if Ctype.strip_const env.current_ret <> Ctype.Void then
        err loc "non-void function must return a value";
      Tast.Tsreturn None
  | Ast.Sreturn (Some e) ->
      if Ctype.strip_const env.current_ret = Ctype.Void then
        err loc "void function cannot return a value";
      let r = decay (check_expr env e) in
      Tast.Tsreturn (Some (coerce env loc ~want:env.current_ret r))
  | Ast.Sblock b -> Tast.Tsblock (check_block env b)
  | Ast.Sswitch (e, arms) ->
      let e = decay (check_expr env e) in
      if not (Ctype.is_integer e.Tast.tty) then
        err loc "switch scrutinee must be an integer";
      let seen = Hashtbl.create 8 in
      let default_seen = ref false in
      env.switch_depth <- env.switch_depth + 1;
      let arms =
        List.map
          (fun (a : Ast.switch_case) ->
            List.iter
              (fun v ->
                if Hashtbl.mem seen v then err loc "duplicate case label %Ld" v;
                Hashtbl.replace seen v ())
              a.c_labels;
            if a.c_default then begin
              if !default_seen then err loc "duplicate default label";
              default_seen := true
            end;
            {
              Tast.tc_labels = a.c_labels;
              tc_default = a.c_default;
              tc_body = check_block env a.c_body;
            })
          arms
      in
      env.switch_depth <- env.switch_depth - 1;
      Tast.Tsswitch (e, arms)
  | Ast.Sbreak ->
      if env.loop_depth = 0 && env.switch_depth = 0 then
        err loc "break outside of a loop or switch";
      Tast.Tsbreak
  | Ast.Scontinue ->
      if env.loop_depth = 0 then err loc "continue outside of a loop";
      Tast.Tscontinue

and check_block env (b : Ast.block) : Tast.tstmt list =
  push_scope env;
  let out = List.map (check_stmt env) b in
  pop_scope env;
  out

(* ---------------------------------------------------------------- *)
(* Program                                                           *)
(* ---------------------------------------------------------------- *)

let check (prog : Ast.program) : Tast.program =
  let env =
    {
      structs = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      externs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      next_id = 0;
      scopes = [];
      current_func = None;
      current_ret = Ctype.Void;
      loop_depth = 0;
      switch_depth = 0;
    }
  in
  (* Pass 1: signatures. *)
  let structs = ref [] in
  List.iter
    (function
      | Ast.Gstruct sd ->
          if Hashtbl.mem env.structs sd.s_name then
            err sd.s_loc "duplicate struct '%s'" sd.s_name;
          Hashtbl.replace env.structs sd.s_name sd.s_fields;
          structs := (sd.Ast.s_name, sd.Ast.s_fields) :: !structs
      | Ast.Gfunc f ->
          if Hashtbl.mem env.funcs f.f_name then
            err f.f_loc "duplicate function '%s'" f.f_name;
          Hashtbl.replace env.funcs f.f_name
            { Ctype.ret = f.f_ret; params = List.map snd f.f_params; variadic = false }
      | Ast.Gvar d ->
          if Hashtbl.mem env.globals d.d_name then
            err d.d_loc "duplicate global '%s'" d.d_name;
          let v = fresh_var env ~name:d.d_name ~ty:d.d_ty ~kind:Tast.Kglobal ~loc:d.d_loc in
          Hashtbl.replace env.globals d.d_name v
      | Ast.Gextern (name, ty, _) -> Hashtbl.replace env.externs name ty)
    prog;
  (* Pass 2: bodies and initializers. *)
  let globals = ref [] and funcs = ref [] in
  List.iter
    (function
      | Ast.Gstruct _ -> ()
      | Ast.Gvar d ->
          let v = Hashtbl.find env.globals d.d_name in
          let init =
            Option.map
              (fun e ->
                let r = decay (check_expr env e) in
                coerce env d.d_loc ~want:d.d_ty r)
              d.Ast.d_init
          in
          globals := (v, init) :: !globals
      | Ast.Gextern _ -> ()
      | Ast.Gfunc f ->
          env.current_func <- Some f.f_name;
          env.current_ret <- f.f_ret;
          env.loop_depth <- 0;
          push_scope env;
          let params =
            List.map
              (fun (name, ty) ->
                let v = fresh_var env ~name ~ty ~kind:Tast.Kparam ~loc:f.f_loc in
                bind_local env v;
                v)
              f.Ast.f_params
          in
          let body = check_block env f.Ast.f_body in
          pop_scope env;
          env.current_func <- None;
          funcs :=
            {
              Tast.tf_name = f.Ast.f_name;
              tf_ret = f.Ast.f_ret;
              tf_params = params;
              tf_body = body;
              tf_loc = f.Ast.f_loc;
            }
            :: !funcs)
    prog;
  {
    Tast.structs = List.rev !structs;
    globals = List.rev !globals;
    externs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.externs [];
    funcs = List.rev !funcs;
  }

let check_source ?(file = "<string>") src = check (Parser.parse ~file src)

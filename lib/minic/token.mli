(** Lexical tokens of MiniC. *)

type t =
  | IDENT of string
  | INT of int64
  | FLOAT of float
  | CHARLIT of char
  | STRING of string
  (* keywords *)
  | KW_void | KW_char | KW_int | KW_long | KW_double
  | KW_struct | KW_const | KW_extern | KW_typedef
  | KW_if | KW_else | KW_while | KW_for | KW_do
  | KW_return | KW_break | KW_continue | KW_sizeof | KW_null
  | KW_switch | KW_case | KW_default
  (* punctuation / operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA | DOT | ARROW | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR
  | SHL | SHR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ       (** compound assignment *)
  | PLUSPLUS | MINUSMINUS                     (** ++/-- (pre and post) *)
  | QUESTION | COLON
  | EOF

val to_string : t -> string
(** Human-readable token name for error messages. *)

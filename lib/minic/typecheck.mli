(** The MiniC semantic analysis: resolves names to uniquely-identified
    variables, computes a type for every expression, enforces C-like
    typing (with explicit casts required for incompatible pointer
    conversions) and const-ness, and produces the typed AST the IR
    lowering and the STI analysis consume.

    Checking is two-pass — struct/function/global signatures first, then
    bodies — so forward references work without prototypes. *)

exception Error of string * Loc.t

val check : Ast.program -> Tast.program
(** Type-check a parsed translation unit. Raises {!Error} with a
    diagnostic on the first violation. *)

val check_source : ?file:string -> string -> Tast.program
(** Convenience: parse then check a source string. *)

(** Pretty-printer from the MiniC AST back to compilable source. Used by
    the workload generator (programs are generated as ASTs, printed, and
    fed back through the full front end — which also round-trip-tests the
    parser) and for diagnostics. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val program_to_string : Ast.program -> string

val binop_str : Ast.binop -> string
(** Operator spelling, shared with the IR printer. *)

type t =
  | IDENT of string
  | INT of int64
  | FLOAT of float
  | CHARLIT of char
  | STRING of string
  | KW_void | KW_char | KW_int | KW_long | KW_double
  | KW_struct | KW_const | KW_extern | KW_typedef
  | KW_if | KW_else | KW_while | KW_for | KW_do
  | KW_return | KW_break | KW_continue | KW_sizeof | KW_null
  | KW_switch | KW_case | KW_default
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA | DOT | ARROW | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR
  | SHL | SHR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %Ld" n
  | FLOAT x -> Printf.sprintf "float %g" x
  | CHARLIT c -> Printf.sprintf "char %C" c
  | STRING s -> Printf.sprintf "string %S" s
  | KW_void -> "'void'" | KW_char -> "'char'" | KW_int -> "'int'"
  | KW_long -> "'long'" | KW_double -> "'double'"
  | KW_struct -> "'struct'" | KW_const -> "'const'"
  | KW_extern -> "'extern'" | KW_typedef -> "'typedef'"
  | KW_if -> "'if'" | KW_else -> "'else'" | KW_while -> "'while'"
  | KW_for -> "'for'" | KW_do -> "'do'"
  | KW_return -> "'return'" | KW_break -> "'break'"
  | KW_continue -> "'continue'" | KW_sizeof -> "'sizeof'" | KW_null -> "'NULL'"
  | KW_switch -> "'switch'" | KW_case -> "'case'" | KW_default -> "'default'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACK -> "'['" | RBRACK -> "']'"
  | SEMI -> "';'" | COMMA -> "','" | DOT -> "'.'" | ARROW -> "'->'"
  | ELLIPSIS -> "'...'"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'" | PIPE -> "'|'" | CARET -> "'^'" | TILDE -> "'~'"
  | BANG -> "'!'"
  | LT -> "'<'" | GT -> "'>'" | LE -> "'<='" | GE -> "'>='"
  | EQEQ -> "'=='" | NEQ -> "'!='"
  | ANDAND -> "'&&'" | OROR -> "'||'"
  | SHL -> "'<<'" | SHR -> "'>>'"
  | ASSIGN -> "'='"
  | PLUSEQ -> "'+='" | MINUSEQ -> "'-='" | STAREQ -> "'*='" | SLASHEQ -> "'/='"
  | PLUSPLUS -> "'++'" | MINUSMINUS -> "'--'"
  | QUESTION -> "'?'" | COLON -> "':'"
  | EOF -> "end of input"

type t =
  | Void
  | Char
  | Int
  | Long
  | Double
  | Const of t
  | Ptr of t
  | Struct of string
  | Func of signature
  | Array of t * int

and signature = { ret : t; params : t list; variadic : bool }

let rec equal a b =
  match (a, b) with
  | Void, Void | Char, Char | Int, Int | Long, Long | Double, Double -> true
  | Const a, Const b | Ptr a, Ptr b -> equal a b
  | Struct a, Struct b -> String.equal a b
  | Func a, Func b ->
      equal a.ret b.ret
      && List.length a.params = List.length b.params
      && List.for_all2 equal a.params b.params
      && a.variadic = b.variadic
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | (Void | Char | Int | Long | Double | Const _ | Ptr _ | Struct _ | Func _ | Array _), _
    -> false

let rec strip_const = function Const t -> strip_const t | t -> t

let rec strip_all_quals = function
  | Const t -> strip_all_quals t
  | Ptr t -> Ptr (strip_all_quals t)
  | Array (t, n) -> Array (strip_all_quals t, n)
  | Func s ->
      Func
        {
          ret = strip_all_quals s.ret;
          params = List.map strip_all_quals s.params;
          variadic = s.variadic;
        }
  | (Void | Char | Int | Long | Double | Struct _) as t -> t

let is_const = function Const _ -> true | _ -> false

let declared_read_only t =
  match t with
  | Const _ -> true
  | Ptr (Const _) -> true
  | _ -> false

let is_pointer t = match strip_const t with Ptr _ -> true | _ -> false

let is_code_pointer t =
  match strip_const t with
  | Ptr p -> ( match strip_const p with Func _ -> true | _ -> false)
  | _ -> false

let is_pointer_to_pointer t =
  match strip_const t with
  | Ptr p -> ( match strip_const p with Ptr _ -> true | _ -> false)
  | _ -> false

let pointee t =
  match strip_const t with
  | Ptr p -> p
  | _ -> invalid_arg "Ctype.pointee: not a pointer"

let is_integer t =
  match strip_const t with Char | Int | Long -> true | _ -> false

let is_scalar t =
  match strip_const t with
  | Char | Int | Long | Double | Ptr _ -> true
  | Void | Const _ | Struct _ | Func _ | Array _ -> false

let rec sizeof ~lookup t =
  match t with
  | Void -> invalid_arg "Ctype.sizeof: void has no size"
  | Char -> 1
  | Int | Long | Double | Ptr _ -> 8
  | Const t -> sizeof ~lookup t
  | Struct name -> struct_size ~lookup name
  | Func _ -> invalid_arg "Ctype.sizeof: function type has no size"
  | Array (t, n) -> n * sizeof ~lookup t

and layout ~lookup fields =
  (* Declaration order; 8-byte alignment except chars / char arrays pack. *)
  let align off t =
    let needs8 =
      match strip_const t with
      | Char -> false
      | Array (e, _) -> ( match strip_const e with Char -> false | _ -> true)
      | _ -> true
    in
    if needs8 then (off + 7) / 8 * 8 else off
  in
  let rec go off acc = function
    | [] -> (List.rev acc, (off + 7) / 8 * 8)
    | (name, ty) :: rest ->
        let off = align off ty in
        go (off + sizeof ~lookup ty) ((name, ty, off) :: acc) rest
  in
  go 0 [] fields

and struct_size ~lookup name =
  let _, size = layout ~lookup (lookup name) in
  max 8 size

let field_offset ~lookup sname fname =
  let fields, _ = layout ~lookup (lookup sname) in
  let rec find = function
    | [] -> raise Not_found
    | (name, ty, off) :: rest -> if String.equal name fname then (off, ty) else find rest
  in
  find fields

let rec to_string = function
  | Void -> "void"
  | Char -> "char"
  | Int -> "int"
  | Long -> "long"
  | Double -> "double"
  | Const t -> "const " ^ to_string t
  | Struct name -> "struct " ^ name
  | Ptr (Func s) ->
      Printf.sprintf "%s (*)(%s)" (to_string s.ret) (params_string s)
  | Ptr t -> to_string t ^ "*"
  | Func s -> Printf.sprintf "%s ()(%s)" (to_string s.ret) (params_string s)
  | Array (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n

and params_string s =
  let ps = List.map to_string s.params in
  let ps = if s.variadic then ps @ [ "..." ] else ps in
  if ps = [] then "void" else String.concat ", " ps

let pp fmt t = Format.pp_print_string fmt (to_string t)

let compatible a b =
  let a = strip_all_quals a and b = strip_all_quals b in
  if equal a b then true
  else
    match (a, b) with
    | Ptr Void, Ptr _ | Ptr _, Ptr Void -> true
    | (Char | Int | Long), (Char | Int | Long) -> true
    | Double, (Char | Int | Long) | (Char | Int | Long), Double -> true
    | Ptr _, (Char | Int | Long) | (Char | Int | Long), Ptr _ ->
        (* Integer/pointer conversions require an explicit cast in MiniC;
           the checker special-cases the literal 0 as a null constant. *)
        false
    | _ -> false

exception Error of string * Loc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let error st msg = raise (Error (msg, loc st))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let keywords =
  [
    ("void", Token.KW_void); ("char", Token.KW_char); ("int", Token.KW_int);
    ("long", Token.KW_long); ("double", Token.KW_double);
    ("struct", Token.KW_struct); ("const", Token.KW_const);
    ("extern", Token.KW_extern); ("typedef", Token.KW_typedef);
    ("if", Token.KW_if); ("else", Token.KW_else); ("while", Token.KW_while);
    ("for", Token.KW_for); ("do", Token.KW_do); ("return", Token.KW_return);
    ("break", Token.KW_break); ("continue", Token.KW_continue);
    ("sizeof", Token.KW_sizeof); ("NULL", Token.KW_null);
    ("switch", Token.KW_switch); ("case", Token.KW_case);
    ("default", Token.KW_default);
    (* Accepted and ignored qualifiers common in the paper's C snippets. *)
    ("unsigned", Token.KW_int); ("static", Token.KW_extern);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let skip_space_and_comments st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance st;
        go ()
    | Some '/' when peek2 st = Some '/' ->
        while peek st <> None && peek st <> Some '\n' do
          advance st
        done;
        go ()
    | Some '/' when peek2 st = Some '*' ->
        advance st;
        advance st;
        let rec skip () =
          match (peek st, peek2 st) with
          | Some '*', Some '/' ->
              advance st;
              advance st
          | None, _ -> error st "unterminated block comment"
          | _ ->
              advance st;
              skip ()
        in
        skip ();
        go ()
    | _ -> ()
  in
  go ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s keywords with Some kw -> kw | None -> Token.IDENT s

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    let s = String.sub st.src start (st.pos - start) in
    try Token.INT (Int64.of_string s) with _ -> error st ("bad hex literal " ^ s)
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (* Decimal point (not followed by another '.') makes it a float. *)
    let is_float =
      match (peek st, peek2 st) with
      | Some '.', Some '.' -> false
      | Some '.', _ ->
          advance st;
          while (match peek st with Some c -> is_digit c | None -> false) do
            advance st
          done;
          (match (peek st, peek2 st) with
          | Some ('e' | 'E'), Some c when is_digit c || c = '-' || c = '+' ->
              advance st;
              advance st;
              while (match peek st with Some c -> is_digit c | None -> false) do
                advance st
              done
          | _ -> ());
          true
      | _ -> false
    in
    let numeral = String.sub st.src start (st.pos - start) in
    if is_float then
      try Token.FLOAT (float_of_string numeral)
      with _ -> error st ("bad float literal " ^ numeral)
    else begin
      (* Accept and drop C integer suffixes (1024UL etc.). *)
      while (match peek st with Some ('u' | 'U' | 'l' | 'L') -> true | _ -> false) do
        advance st
      done;
      try Token.INT (Int64.of_string numeral)
      with _ -> error st ("bad integer literal " ^ numeral)
    end
  end

let lex_escape st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> error st (Printf.sprintf "unknown escape '\\%c'" c)
  | None -> error st "unterminated escape"

let lex_char st =
  advance st (* opening quote *);
  let c =
    match peek st with
    | Some '\\' ->
        advance st;
        lex_escape st
    | Some c ->
        advance st;
        c
    | None -> error st "unterminated character literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> error st "unterminated character literal");
  Token.CHARLIT c

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        Buffer.add_char buf (lex_escape st);
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
    | None -> error st "unterminated string literal"
  in
  go ();
  Token.STRING (Buffer.contents buf)

let lex_op st =
  let one tok = advance st; tok in
  let two tok = advance st; advance st; tok in
  let three tok = advance st; advance st; advance st; tok in
  match (peek st, peek2 st) with
  | Some '-', Some '>' -> two Token.ARROW
  | Some '-', Some '-' -> two Token.MINUSMINUS
  | Some '-', Some '=' -> two Token.MINUSEQ
  | Some '-', _ -> one Token.MINUS
  | Some '+', Some '+' -> two Token.PLUSPLUS
  | Some '+', Some '=' -> two Token.PLUSEQ
  | Some '+', _ -> one Token.PLUS
  | Some '*', Some '=' -> two Token.STAREQ
  | Some '*', _ -> one Token.STAR
  | Some '/', Some '=' -> two Token.SLASHEQ
  | Some '/', _ -> one Token.SLASH
  | Some '%', _ -> one Token.PERCENT
  | Some '&', Some '&' -> two Token.ANDAND
  | Some '&', _ -> one Token.AMP
  | Some '|', Some '|' -> two Token.OROR
  | Some '|', _ -> one Token.PIPE
  | Some '^', _ -> one Token.CARET
  | Some '~', _ -> one Token.TILDE
  | Some '!', Some '=' -> two Token.NEQ
  | Some '!', _ -> one Token.BANG
  | Some '<', Some '<' -> two Token.SHL
  | Some '<', Some '=' -> two Token.LE
  | Some '<', _ -> one Token.LT
  | Some '>', Some '>' -> two Token.SHR
  | Some '>', Some '=' -> two Token.GE
  | Some '>', _ -> one Token.GT
  | Some '=', Some '=' -> two Token.EQEQ
  | Some '=', _ -> one Token.ASSIGN
  | Some '(', _ -> one Token.LPAREN
  | Some ')', _ -> one Token.RPAREN
  | Some '{', _ -> one Token.LBRACE
  | Some '}', _ -> one Token.RBRACE
  | Some '[', _ -> one Token.LBRACK
  | Some ']', _ -> one Token.RBRACK
  | Some ';', _ -> one Token.SEMI
  | Some ',', _ -> one Token.COMMA
  | Some '.', Some '.' when st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '.'
    -> three Token.ELLIPSIS
  | Some '.', _ -> one Token.DOT
  | Some '?', _ -> one Token.QUESTION
  | Some ':', _ -> one Token.COLON
  | Some c, _ -> error st (Printf.sprintf "unexpected character %C" c)
  | None, _ -> error st "unexpected end of input"

let tokenize ~file src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    skip_space_and_comments st;
    let l = loc st in
    match peek st with
    | None -> List.rev ((Token.EOF, l) :: acc)
    | Some c when is_ident_start c -> go ((lex_ident st, l) :: acc)
    | Some c when is_digit c -> go ((lex_number st, l) :: acc)
    | Some '\'' -> go ((lex_char st, l) :: acc)
    | Some '"' -> go ((lex_string st, l) :: acc)
    | Some _ -> go ((lex_op st, l) :: acc)
  in
  go []

(** Hand-written lexer for MiniC. Handles line comments ([//]), block
    comments, decimal/hex integer literals, character and string literals
    with the usual escapes. *)

exception Error of string * Loc.t
(** Lexical error with a message and the offending position. *)

val tokenize : file:string -> string -> (Token.t * Loc.t) list
(** Turn a whole source string into tokens; the final element is always
    [(EOF, _)]. Raises {!Error} on malformed input. *)

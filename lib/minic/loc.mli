(** Source positions for diagnostics. The STI analysis also uses line
    numbers to mirror the paper's [!DILocation] debug metadata. *)

type t = { file : string; line : int; col : int }

val dummy : t
(** Position for synthesized nodes (the workload generator, desugaring). *)

val make : file:string -> line:int -> col:int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

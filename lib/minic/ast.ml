type unop = Neg | Lognot | Bitnot | AddrOf | Deref

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | Logand | Logor
  | Bitand | Bitor | Bitxor | Shl | Shr

type expr = { desc : expr_desc; loc : Loc.t }

and expr_desc =
  | Int_lit of int64
  | Float_lit of float
  | Char_lit of char
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Call of expr * expr list
  | Cast of Ctype.t * expr
  | Member of expr * string
  | Arrow of expr * string
  | Index of expr * expr
  | Sizeof_type of Ctype.t
  | Sizeof_expr of expr
  | Cond of expr * expr * expr

type decl = { d_name : string; d_ty : Ctype.t; d_init : expr option; d_loc : Loc.t }

type stmt = { s : stmt_desc; s_loc : Loc.t }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of decl
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sdo of block * expr
  | Sfor of stmt option * expr option * expr option * block
  | Sswitch of expr * switch_case list
  | Sreturn of expr option
  | Sblock of block
  | Sbreak
  | Scontinue

and switch_case = { c_labels : int64 list; c_default : bool; c_body : block }

and block = stmt list

type struct_def = { s_name : string; s_fields : (string * Ctype.t) list; s_loc : Loc.t }

type func_def = {
  f_name : string;
  f_ret : Ctype.t;
  f_params : (string * Ctype.t) list;
  f_body : block;
  f_loc : Loc.t;
}

type global =
  | Gstruct of struct_def
  | Gfunc of func_def
  | Gvar of decl
  | Gextern of string * Ctype.t * Loc.t

type program = global list

let mk loc desc = { desc; loc }

exception Error of string * Loc.t

type state = {
  mutable toks : (Token.t * Loc.t) list;
  typedefs : (string, Ctype.t) Hashtbl.t;
}

let error st msg =
  let loc = match st.toks with (_, l) :: _ -> l | [] -> Loc.dummy in
  raise (Error (msg, loc))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Token.EOF

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> Token.EOF

let cur_loc st = match st.toks with (_, l) :: _ -> l | [] -> Loc.dummy

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> error st ("expected identifier but found " ^ Token.to_string t)

(* ---------------------------------------------------------------- *)
(* Types and declarators                                             *)
(* ---------------------------------------------------------------- *)

let is_typedef st name = Hashtbl.mem st.typedefs name

(* Does the current token start a type? Used to disambiguate casts and to
   recognize declarations. *)
let starts_type st =
  match peek st with
  | Token.KW_void | Token.KW_char | Token.KW_int | Token.KW_long
  | Token.KW_double | Token.KW_struct | Token.KW_const ->
      true
  | Token.IDENT name -> is_typedef st name
  | _ -> false

(* base-type := ['const'] (void|char|int|long|double|struct IDENT|typedef-name) ['const'] *)
let parse_base_type st =
  let const_before =
    if peek st = Token.KW_const then (advance st; true) else false
  in
  let base =
    match peek st with
    | Token.KW_void -> advance st; Ctype.Void
    | Token.KW_char -> advance st; Ctype.Char
    | Token.KW_int -> advance st; Ctype.Int
    | Token.KW_long ->
        advance st;
        (* accept "long long" and "long int" *)
        (match peek st with
        | Token.KW_long | Token.KW_int -> advance st
        | _ -> ());
        Ctype.Long
    | Token.KW_double -> advance st; Ctype.Double
    | Token.KW_struct ->
        advance st;
        let name = expect_ident st in
        Ctype.Struct name
    | Token.IDENT name when is_typedef st name ->
        advance st;
        Hashtbl.find st.typedefs name
    | t -> error st ("expected a type but found " ^ Token.to_string t)
  in
  let const_after =
    if peek st = Token.KW_const then (advance st; true) else false
  in
  if const_before || const_after then Ctype.Const base else base

(* declarator := '*' ['const'] declarator | direct-declarator
   direct     := IDENT suffix* | '(' declarator ')' suffix* | suffix*
   suffix     := '[' INT ']' | '(' params ')'
   Returns the (optional) declared name and a function building the full
   type from the base type, composing inside-out as C requires. *)
let rec parse_declarator st : string option * (Ctype.t -> Ctype.t) =
  match peek st with
  | Token.STAR ->
      advance st;
      let ptr_const =
        if peek st = Token.KW_const then (advance st; true) else false
      in
      let name, wrap = parse_declarator st in
      let build base =
        let p = Ctype.Ptr base in
        wrap (if ptr_const then Ctype.Const p else p)
      in
      (name, build)
  | _ -> parse_direct_declarator st

and parse_direct_declarator st =
  let name, wrap_core =
    match peek st with
    | Token.IDENT n ->
        advance st;
        (Some n, fun (base : Ctype.t) -> base)
    | Token.LPAREN
      when (match peek2 st with
           | Token.STAR | Token.IDENT _ | Token.LPAREN -> true
           | _ -> false) ->
        advance st;
        let name, wrap = parse_declarator st in
        expect st Token.RPAREN;
        (name, wrap)
    | _ -> (None, fun (base : Ctype.t) -> base)
  in
  let rec suffixes wrap =
    match peek st with
    | Token.LBRACK ->
        advance st;
        let n =
          match peek st with
          | Token.INT n ->
              advance st;
              Int64.to_int n
          | Token.RBRACK -> 0 (* incomplete array: treated as size 0 *)
          | t -> error st ("expected array size but found " ^ Token.to_string t)
        in
        expect st Token.RBRACK;
        suffixes (fun base -> wrap (Ctype.Array (base, n)))
    | Token.LPAREN ->
        advance st;
        let params, variadic = parse_param_types st in
        expect st Token.RPAREN;
        suffixes (fun base ->
            wrap (Ctype.Func { ret = base; params; variadic }))
    | _ -> wrap
  in
  (name, suffixes wrap_core)

and parse_param_types st =
  (* Used for function-pointer suffixes; names are allowed and dropped. *)
  if peek st = Token.RPAREN then ([], false)
  else if peek st = Token.KW_void && peek2 st = Token.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let rec go acc =
      if peek st = Token.ELLIPSIS then begin
        advance st;
        (List.rev acc, true)
      end
      else begin
        let base = parse_base_type st in
        let _name, wrap = parse_declarator st in
        let ty = wrap base in
        if peek st = Token.COMMA then begin
          advance st;
          go (ty :: acc)
        end
        else (List.rev (ty :: acc), false)
      end
    in
    go []
  end

(* A full type with abstract declarator, for casts and sizeof. *)
and parse_type_name st =
  let base = parse_base_type st in
  let _name, wrap = parse_declarator st in
  wrap base

(* ---------------------------------------------------------------- *)
(* Expressions (precedence climbing)                                 *)
(* ---------------------------------------------------------------- *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  let loc = cur_loc st in
  match peek st with
  | Token.ASSIGN ->
      advance st;
      let rhs = parse_assign st in
      Ast.mk loc (Ast.Assign (lhs, rhs))
  | Token.PLUSEQ | Token.MINUSEQ | Token.STAREQ | Token.SLASHEQ ->
      let op =
        match peek st with
        | Token.PLUSEQ -> Ast.Add
        | Token.MINUSEQ -> Ast.Sub
        | Token.STAREQ -> Ast.Mul
        | Token.SLASHEQ -> Ast.Div
        | _ -> assert false
      in
      advance st;
      let rhs = parse_assign st in
      Ast.mk loc (Ast.Assign (lhs, Ast.mk loc (Ast.Binop (op, lhs, rhs))))
  | _ -> lhs

and parse_cond st =
  let c = parse_binop st 0 in
  if peek st = Token.QUESTION then begin
    let loc = cur_loc st in
    advance st;
    let a = parse_expr st in
    expect st Token.COLON;
    let b = parse_cond st in
    Ast.mk loc (Ast.Cond (c, a, b))
  end
  else c

(* Precedence table, loosest first. *)
and binop_of_token = function
  | Token.OROR -> Some (0, Ast.Logor)
  | Token.ANDAND -> Some (1, Ast.Logand)
  | Token.PIPE -> Some (2, Ast.Bitor)
  | Token.CARET -> Some (3, Ast.Bitxor)
  | Token.AMP -> Some (4, Ast.Bitand)
  | Token.EQEQ -> Some (5, Ast.Eq)
  | Token.NEQ -> Some (5, Ast.Ne)
  | Token.LT -> Some (6, Ast.Lt)
  | Token.LE -> Some (6, Ast.Le)
  | Token.GT -> Some (6, Ast.Gt)
  | Token.GE -> Some (6, Ast.Ge)
  | Token.SHL -> Some (7, Ast.Shl)
  | Token.SHR -> Some (7, Ast.Shr)
  | Token.PLUS -> Some (8, Ast.Add)
  | Token.MINUS -> Some (8, Ast.Sub)
  | Token.STAR -> Some (9, Ast.Mul)
  | Token.SLASH -> Some (9, Ast.Div)
  | Token.PERCENT -> Some (9, Ast.Mod)
  | _ -> None

and parse_binop st min_prec =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match binop_of_token (peek st) with
    | Some (prec, op) when prec >= min_prec ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_binop st (prec + 1) in
        lhs := Ast.mk loc (Ast.Binop (op, !lhs, rhs));
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  let loc = cur_loc st in
  match peek st with
  | Token.MINUS ->
      advance st;
      Ast.mk loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.BANG ->
      advance st;
      Ast.mk loc (Ast.Unop (Ast.Lognot, parse_unary st))
  | Token.TILDE ->
      advance st;
      Ast.mk loc (Ast.Unop (Ast.Bitnot, parse_unary st))
  | Token.AMP ->
      advance st;
      Ast.mk loc (Ast.Unop (Ast.AddrOf, parse_unary st))
  | Token.STAR ->
      advance st;
      Ast.mk loc (Ast.Unop (Ast.Deref, parse_unary st))
  | Token.PLUSPLUS ->
      advance st;
      let e = parse_unary st in
      Ast.mk loc (Ast.Assign (e, Ast.mk loc (Ast.Binop (Ast.Add, e, Ast.mk loc (Ast.Int_lit 1L)))))
  | Token.MINUSMINUS ->
      advance st;
      let e = parse_unary st in
      Ast.mk loc (Ast.Assign (e, Ast.mk loc (Ast.Binop (Ast.Sub, e, Ast.mk loc (Ast.Int_lit 1L)))))
  | Token.KW_sizeof ->
      advance st;
      if peek st = Token.LPAREN then begin
        advance st;
        if starts_type st then begin
          let ty = parse_type_name st in
          expect st Token.RPAREN;
          Ast.mk loc (Ast.Sizeof_type ty)
        end
        else begin
          let e = parse_expr st in
          expect st Token.RPAREN;
          Ast.mk loc (Ast.Sizeof_expr e)
        end
      end
      else Ast.mk loc (Ast.Sizeof_expr (parse_unary st))
  | Token.LPAREN when (match peek2 st with
                      | Token.KW_void | Token.KW_char | Token.KW_int
                      | Token.KW_long | Token.KW_double | Token.KW_struct
                      | Token.KW_const -> true
                      | Token.IDENT n -> is_typedef st n
                      | _ -> false) ->
      advance st;
      let ty = parse_type_name st in
      expect st Token.RPAREN;
      let e = parse_unary st in
      Ast.mk loc (Ast.Cast (ty, e))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec go () =
    let loc = cur_loc st in
    match peek st with
    | Token.LPAREN ->
        advance st;
        let args = parse_args st in
        expect st Token.RPAREN;
        e := Ast.mk loc (Ast.Call (!e, args));
        go ()
    | Token.LBRACK ->
        advance st;
        let i = parse_expr st in
        expect st Token.RBRACK;
        e := Ast.mk loc (Ast.Index (!e, i));
        go ()
    | Token.DOT ->
        advance st;
        let f = expect_ident st in
        e := Ast.mk loc (Ast.Member (!e, f));
        go ()
    | Token.ARROW ->
        advance st;
        let f = expect_ident st in
        e := Ast.mk loc (Ast.Arrow (!e, f));
        go ()
    | Token.PLUSPLUS ->
        advance st;
        e := Ast.mk loc (Ast.Assign (!e, Ast.mk loc (Ast.Binop (Ast.Add, !e, Ast.mk loc (Ast.Int_lit 1L)))));
        go ()
    | Token.MINUSMINUS ->
        advance st;
        e := Ast.mk loc (Ast.Assign (!e, Ast.mk loc (Ast.Binop (Ast.Sub, !e, Ast.mk loc (Ast.Int_lit 1L)))));
        go ()
    | _ -> ()
  in
  go ();
  !e

and parse_args st =
  if peek st = Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if peek st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []
  end

and parse_primary st =
  let loc = cur_loc st in
  match peek st with
  | Token.INT n ->
      advance st;
      Ast.mk loc (Ast.Int_lit n)
  | Token.FLOAT x ->
      advance st;
      Ast.mk loc (Ast.Float_lit x)
  | Token.CHARLIT c ->
      advance st;
      Ast.mk loc (Ast.Char_lit c)
  | Token.STRING s ->
      advance st;
      Ast.mk loc (Ast.Str_lit s)
  | Token.KW_null ->
      advance st;
      Ast.mk loc (Ast.Cast (Ctype.Ptr Ctype.Void, Ast.mk loc (Ast.Int_lit 0L)))
  | Token.IDENT n ->
      advance st;
      Ast.mk loc (Ast.Var n)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | t -> error st ("expected expression but found " ^ Token.to_string t)

(* ---------------------------------------------------------------- *)
(* Statements                                                        *)
(* ---------------------------------------------------------------- *)

let rec parse_stmt st : Ast.stmt =
  let loc = cur_loc st in
  match peek st with
  | Token.LBRACE ->
      let b = parse_block st in
      { Ast.s = Ast.Sblock b; s_loc = loc }
  | Token.KW_if ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_b = parse_stmt_as_block st in
      let else_b =
        if peek st = Token.KW_else then begin
          advance st;
          parse_stmt_as_block st
        end
        else []
      in
      { Ast.s = Ast.Sif (cond, then_b, else_b); s_loc = loc }
  | Token.KW_while ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_stmt_as_block st in
      { Ast.s = Ast.Swhile (cond, body); s_loc = loc }
  | Token.KW_do ->
      advance st;
      let body = parse_stmt_as_block st in
      expect st Token.KW_while;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      { Ast.s = Ast.Sdo (body, cond); s_loc = loc }
  | Token.KW_for ->
      advance st;
      expect st Token.LPAREN;
      let init =
        if peek st = Token.SEMI then begin
          advance st;
          None
        end
        else if starts_type st then begin
          let d = parse_local_decl st in
          Some { Ast.s = Ast.Sdecl d; s_loc = loc }
        end
        else begin
          let e = parse_expr st in
          expect st Token.SEMI;
          Some { Ast.s = Ast.Sexpr e; s_loc = loc }
        end
      in
      let cond =
        if peek st = Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      let step =
        if peek st = Token.RPAREN then None else Some (parse_expr st)
      in
      expect st Token.RPAREN;
      let body = parse_stmt_as_block st in
      { Ast.s = Ast.Sfor (init, cond, step, body); s_loc = loc }
  | Token.KW_switch ->
      advance st;
      expect st Token.LPAREN;
      let scrutinee = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.LBRACE;
      (* arms: one or more labels, then statements up to the next label *)
      let parse_labels () =
        let rec go labels is_default =
          match peek st with
          | Token.KW_case ->
              advance st;
              let v =
                match peek st with
                | Token.INT n -> advance st; n
                | Token.CHARLIT c -> advance st; Int64.of_int (Char.code c)
                | Token.MINUS -> (
                    advance st;
                    match peek st with
                    | Token.INT n -> advance st; Int64.neg n
                    | t -> error st ("expected case constant, found " ^ Token.to_string t))
                | t -> error st ("expected case constant, found " ^ Token.to_string t)
              in
              expect st Token.COLON;
              go (v :: labels) is_default
          | Token.KW_default ->
              advance st;
              expect st Token.COLON;
              go labels true
          | _ -> (List.rev labels, is_default)
        in
        go [] false
      in
      let rec parse_arms acc =
        if peek st = Token.RBRACE then begin
          advance st;
          List.rev acc
        end
        else begin
          let labels, is_default = parse_labels () in
          if labels = [] && not is_default then
            error st "expected 'case' or 'default' in switch body";
          let rec body acc =
            match peek st with
            | Token.KW_case | Token.KW_default | Token.RBRACE -> List.rev acc
            | _ -> body (parse_stmt st :: acc)
          in
          let b = body [] in
          parse_arms ({ Ast.c_labels = labels; c_default = is_default; c_body = b } :: acc)
        end
      in
      let arms = parse_arms [] in
      { Ast.s = Ast.Sswitch (scrutinee, arms); s_loc = loc }
  | Token.KW_return ->
      advance st;
      let e = if peek st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      { Ast.s = Ast.Sreturn e; s_loc = loc }
  | Token.KW_break ->
      advance st;
      expect st Token.SEMI;
      { Ast.s = Ast.Sbreak; s_loc = loc }
  | Token.KW_continue ->
      advance st;
      expect st Token.SEMI;
      { Ast.s = Ast.Scontinue; s_loc = loc }
  | _ when starts_type st ->
      let d = parse_local_decl st in
      { Ast.s = Ast.Sdecl d; s_loc = loc }
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      { Ast.s = Ast.Sexpr e; s_loc = loc }

and parse_stmt_as_block st : Ast.block =
  match parse_stmt st with { Ast.s = Ast.Sblock b; _ } -> b | s -> [ s ]

and parse_block st : Ast.block =
  expect st Token.LBRACE;
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* local-decl := base-type declarator ['=' expr] (',' declarator ['=' expr])* ';'
   Multi-declarator lines are rejected for simplicity (one per line). *)
and parse_local_decl st : Ast.decl =
  let loc = cur_loc st in
  let base = parse_base_type st in
  let name, wrap = parse_declarator st in
  let name =
    match name with
    | Some n -> n
    | None -> error st "declaration without a name"
  in
  let ty = wrap base in
  let init =
    if peek st = Token.ASSIGN then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  (match peek st with
  | Token.COMMA ->
      error st "multiple declarators per declaration are not supported; split the line"
  | _ -> ());
  expect st Token.SEMI;
  { Ast.d_name = name; d_ty = ty; d_init = init; d_loc = loc }

(* ---------------------------------------------------------------- *)
(* Globals                                                           *)
(* ---------------------------------------------------------------- *)

let parse_struct_body st =
  expect st Token.LBRACE;
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let base = parse_base_type st in
      let name, wrap = parse_declarator st in
      let name =
        match name with
        | Some n -> n
        | None -> error st "struct field without a name"
      in
      expect st Token.SEMI;
      go ((name, wrap base) :: acc)
    end
  in
  go []

let rec parse_global st : Ast.global list =
  let loc = cur_loc st in
  match peek st with
  | Token.KW_typedef ->
      advance st;
      (* typedef struct [tag] { .. } Name;  or  typedef <type> Name; *)
      if peek st = Token.KW_struct then begin
        advance st;
        let tag =
          match peek st with
          | Token.IDENT t ->
              advance st;
              Some t
          | _ -> None
        in
        if peek st = Token.LBRACE then begin
          let fields = parse_struct_body st in
          let name = expect_ident st in
          expect st Token.SEMI;
          let sname = match tag with Some t -> t | None -> name in
          Hashtbl.replace st.typedefs name (Ctype.Struct sname);
          [ Ast.Gstruct { s_name = sname; s_fields = fields; s_loc = loc } ]
        end
        else begin
          let name = expect_ident st in
          expect st Token.SEMI;
          let sname = match tag with Some t -> t | None -> name in
          Hashtbl.replace st.typedefs name (Ctype.Struct sname);
          []
        end
      end
      else begin
        let base = parse_base_type st in
        let name, wrap = parse_declarator st in
        let name =
          match name with
          | Some n -> n
          | None -> error st "typedef without a name"
        in
        expect st Token.SEMI;
        Hashtbl.replace st.typedefs name (wrap base);
        []
      end
  | Token.KW_struct when peek2 st <> Token.LBRACE && (
      match st.toks with
      | _ :: _ :: (Token.LBRACE, _) :: _ -> true
      | _ -> false) ->
      (* struct NAME { ... };  definition *)
      advance st;
      let name = expect_ident st in
      let fields = parse_struct_body st in
      expect st Token.SEMI;
      [ Ast.Gstruct { s_name = name; s_fields = fields; s_loc = loc } ]
  | Token.KW_extern ->
      advance st;
      let base = parse_base_type st in
      let name, wrap = parse_declarator st in
      let name =
        match name with
        | Some n -> n
        | None -> error st "extern declaration without a name"
      in
      expect st Token.SEMI;
      [ Ast.Gextern (name, wrap base, loc) ]
  | _ ->
      (* function definition, function prototype, or global variable *)
      let base = parse_base_type st in
      let name, wrap = parse_declarator_with_params st in
      (match name with
      | None -> error st "global declaration without a name"
      | Some (n, params) -> (
          let ty = wrap base in
          match (ty, params) with
          | Ctype.Func sg, Some named_params when peek st = Token.LBRACE ->
              let body = parse_block st in
              [ Ast.Gfunc
                  {
                    f_name = n;
                    f_ret = sg.ret;
                    f_params = named_params;
                    f_body = body;
                    f_loc = loc;
                  } ]
          | Ctype.Func _, _ ->
              (* prototype: record as extern *)
              expect st Token.SEMI;
              [ Ast.Gextern (n, ty, loc) ]
          | _ ->
              let init =
                if peek st = Token.ASSIGN then begin
                  advance st;
                  Some (parse_expr st)
                end
                else None
              in
              expect st Token.SEMI;
              [ Ast.Gvar { d_name = n; d_ty = ty; d_init = init; d_loc = loc } ]))

(* Like parse_declarator but, for the outermost function suffix, keeps the
   parameter names so function definitions get named parameters. *)
and parse_declarator_with_params st :
    (string * (string * Ctype.t) list option) option * (Ctype.t -> Ctype.t) =
  match peek st with
  | Token.STAR ->
      advance st;
      let name, wrap = parse_declarator_with_params st in
      (name, fun base -> wrap (Ctype.Ptr base))
  | Token.IDENT n -> (
      advance st;
      match peek st with
      | Token.LPAREN ->
          advance st;
          let params, variadic = parse_named_params st in
          expect st Token.RPAREN;
          ( Some (n, Some params),
            fun base ->
              Ctype.Func { ret = base; params = List.map snd params; variadic } )
      | Token.LBRACK ->
          let rec arrays wrap =
            if peek st = Token.LBRACK then begin
              advance st;
              let size =
                match peek st with
                | Token.INT k ->
                    advance st;
                    Int64.to_int k
                | _ -> 0
              in
              expect st Token.RBRACK;
              arrays (fun base -> wrap (Ctype.Array (base, size)))
            end
            else wrap
          in
          let wrap = arrays (fun (base : Ctype.t) -> base) in
          (Some (n, None), wrap)
      | _ -> (Some (n, None), fun (base : Ctype.t) -> base))
  | Token.LPAREN ->
      (* parenthesized declarator, e.g. a global function pointer
         "int ( *handler)(int)"; fall back to the plain declarator parser. *)
      let name, wrap = parse_declarator st in
      (Option.map (fun n -> (n, None)) name, wrap)
  | t -> error st ("expected declarator but found " ^ Token.to_string t)

and parse_named_params st : (string * Ctype.t) list * bool =
  if peek st = Token.RPAREN then ([], false)
  else if peek st = Token.KW_void && peek2 st = Token.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let rec go acc =
      if peek st = Token.ELLIPSIS then begin
        advance st;
        (List.rev acc, true)
      end
      else begin
        let base = parse_base_type st in
        let name, wrap = parse_declarator st in
        let name =
          match name with
          | Some n -> n
          | None -> error st "unnamed parameter in function definition"
        in
        let p = (name, wrap base) in
        if peek st = Token.COMMA then begin
          advance st;
          go (p :: acc)
        end
        else (List.rev (p :: acc), false)
      end
    in
    go []
  end

let parse ~file src =
  let toks = Lexer.tokenize ~file src in
  let st = { toks; typedefs = Hashtbl.create 16 } in
  let rec go acc =
    if peek st = Token.EOF then List.rev acc
    else begin
      let gs = parse_global st in
      go (List.rev_append gs acc)
    end
  in
  go []

let parse_expr_string src =
  let toks = Lexer.tokenize ~file:"<expr>" src in
  let st = { toks; typedefs = Hashtbl.create 4 } in
  let e = parse_expr st in
  expect st Token.EOF;
  e

(** MiniC types. The representation deliberately mirrors how DWARF / LLVM
    debug info layers types (a [Const] wrapper mirrors
    [DW_TAG_const_type], [Ptr] mirrors [DW_TAG_pointer_type]), because the
    STI analysis consumes exactly those layers to recover the
    programmer's intent (paper section 4.4).

    Data model: ILP64 — [char] is 1 byte, every other scalar and every
    pointer is 8 bytes. This keeps the simulated memory simple without
    affecting any result the paper measures. *)

type t =
  | Void
  | Char
  | Int
  | Long
  | Double
  | Const of t              (** const-qualified type — the permission bit *)
  | Ptr of t                 (** pointer to [t] *)
  | Struct of string         (** reference to a named struct *)
  | Func of signature        (** function type, used through [Ptr] *)
  | Array of t * int         (** fixed-size array *)

and signature = { ret : t; params : t list; variadic : bool }

val equal : t -> t -> bool
(** Structural equality, [Const] included. *)

val strip_const : t -> t
(** Remove top-level [Const] wrappers only. *)

val strip_all_quals : t -> t
(** Remove [Const] wrappers at every level (for compatibility checks). *)

val is_const : t -> bool
(** Whether the top level is const-qualified. *)

val declared_read_only : t -> bool
(** The paper's "permission" bit: the declaration mentions [const] at the
    top level or on a pointer's immediate pointee — [const void* cp] is
    permission R in the paper's Figure 4 example. *)

val is_pointer : t -> bool
(** True for [Ptr _] (under any const qualification). *)

val is_code_pointer : t -> bool
(** True for pointers to function types; these get the IA key, data
    pointers the DA key. *)

val is_pointer_to_pointer : t -> bool
(** True for [Ptr (Ptr _)]-shaped types (any const layering) — the types
    subject to the pointer-to-pointer CE/FE mechanism. *)

val pointee : t -> t
(** The pointed-to type. Raises [Invalid_argument] on non-pointers. *)

val is_integer : t -> bool
(** [Char], [Int] or [Long] under any qualification. *)

val is_scalar : t -> bool
(** Integer, double, or pointer. *)

val sizeof : lookup:(string -> (string * t) list) -> t -> int
(** Byte size under the ILP64 model. [lookup] resolves struct names to
    field lists. Function types have no size (raises). *)

val field_offset : lookup:(string -> (string * t) list) -> string -> string -> int * t
(** [field_offset ~lookup sname fname] is the byte offset and type of a
    struct field. Fields are laid out in declaration order, each aligned
    to 8 bytes except consecutive [char]s/char arrays which pack. Raises
    [Not_found] if the field does not exist. *)

val to_string : t -> string
(** C-style rendering, e.g. ["const void*"], ["struct node*"],
    ["int (*)(int)"]. This string is also the canonical name STI hashes
    into modifiers, so it must be injective on distinct types. *)

val pp : Format.formatter -> t -> unit

val params_string : signature -> string
(** Comma-separated parameter type list, ["void"] when empty — the piece
    inside the parentheses of a function type rendering. *)

val compatible : t -> t -> bool
(** The C notion of assignment compatibility MiniC enforces: equal after
    qualifier stripping, or one side is [void*], or null-pointer-constant
    contexts (handled by the checker). *)

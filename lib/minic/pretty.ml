let unop_str = function
  | Ast.Neg -> "-"
  | Ast.Lognot -> "!"
  | Ast.Bitnot -> "~"
  | Ast.AddrOf -> "&"
  | Ast.Deref -> "*"

let binop_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<="
  | Ast.Gt -> ">" | Ast.Ge -> ">="
  | Ast.Logand -> "&&" | Ast.Logor -> "||"
  | Ast.Bitand -> "&" | Ast.Bitor -> "|" | Ast.Bitxor -> "^"
  | Ast.Shl -> "<<" | Ast.Shr -> ">>"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Declarations need C's inside-out declarator syntax: [decl ty "x"] gives
   e.g. "int (*x)(int)" for a function-pointer variable x. *)
let rec decl_string ty name =
  match ty with
  | Ctype.Func s ->
      Printf.sprintf "%s %s(%s)" (Ctype.to_string s.ret) name
        (Ctype.params_string s)
  | Ctype.Ptr (Ctype.Func s) ->
      Printf.sprintf "%s (*%s)(%s)" (Ctype.to_string s.ret) name
        (Ctype.params_string s)
  | Ctype.Array (t, n) -> Printf.sprintf "%s %s[%d]" (Ctype.to_string t) name n
  | Ctype.Const inner ->
      (* const binds to the base in our rendering: "const T x" *)
      "const " ^ decl_string inner name
  | t -> Printf.sprintf "%s %s" (Ctype.to_string t) name

let rec expr_to_string (e : Ast.expr) =
  match e.desc with
  | Ast.Int_lit n -> Int64.to_string n
  | Ast.Float_lit x ->
      let s = Printf.sprintf "%.17g" x in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Ast.Char_lit c -> Printf.sprintf "'%s'" (escape_string (String.make 1 c))
  | Ast.Str_lit s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Ast.Var v -> v
  | Ast.Unop (op, a) -> Printf.sprintf "(%s%s)" (unop_str op) (expr_to_string a)
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op) (expr_to_string b)
  | Ast.Assign (l, r) -> Printf.sprintf "%s = %s" (expr_to_string l) (expr_to_string r)
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" (expr_to_string f)
        (String.concat ", " (List.map expr_to_string args))
  | Ast.Cast (ty, a) -> Printf.sprintf "((%s)%s)" (Ctype.to_string ty) (expr_to_string a)
  | Ast.Member (a, f) -> Printf.sprintf "%s.%s" (expr_to_string a) f
  | Ast.Arrow (a, f) -> Printf.sprintf "%s->%s" (expr_to_string a) f
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | Ast.Sizeof_type ty -> Printf.sprintf "sizeof(%s)" (Ctype.to_string ty)
  | Ast.Sizeof_expr a -> Printf.sprintf "sizeof(%s)" (expr_to_string a)
  | Ast.Cond (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
        (expr_to_string b)

let rec stmt_to_string ?(indent = 0) (s : Ast.stmt) =
  let pad = String.make (indent * 2) ' ' in
  let block_str b = block_to_string ~indent b in
  match s.s with
  | Ast.Sexpr e -> pad ^ expr_to_string e ^ ";"
  | Ast.Sdecl d -> (
      match d.d_init with
      | None -> pad ^ decl_string d.d_ty d.d_name ^ ";"
      | Some e -> pad ^ decl_string d.d_ty d.d_name ^ " = " ^ expr_to_string e ^ ";")
  | Ast.Sif (c, t, []) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (expr_to_string c) (block_str t) pad
  | Ast.Sif (c, t, e) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (expr_to_string c)
        (block_str t) pad (block_str e) pad
  | Ast.Swhile (c, b) ->
      Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (expr_to_string c) (block_str b) pad
  | Ast.Sdo (b, c) ->
      Printf.sprintf "%sdo {\n%s\n%s} while (%s);" pad (block_str b) pad
        (expr_to_string c)
  | Ast.Sfor (init, cond, step, b) ->
      let init_s =
        match init with
        | None -> ""
        | Some s -> (
            let raw = stmt_to_string ~indent:0 s in
            (* drop the trailing ';' duplication inside for-header *)
            match String.index_opt raw ';' with
            | Some _ -> String.sub raw 0 (String.length raw - 1)
            | None -> raw)
      in
      let cond_s = match cond with None -> "" | Some e -> expr_to_string e in
      let step_s = match step with None -> "" | Some e -> expr_to_string e in
      Printf.sprintf "%sfor (%s; %s; %s) {\n%s\n%s}" pad init_s cond_s step_s
        (block_str b) pad
  | Ast.Sswitch (e, arms) ->
      let arm_str (a : Ast.switch_case) =
        let labels =
          List.map (fun v -> Printf.sprintf "%scase %Ld:" pad v) a.c_labels
          @ (if a.c_default then [ pad ^ "default:" ] else [])
        in
        String.concat "\n" (labels @ [ block_to_string ~indent a.c_body ])
      in
      Printf.sprintf "%sswitch (%s) {\n%s\n%s}" pad (expr_to_string e)
        (String.concat "\n" (List.map arm_str arms))
        pad
  | Ast.Sreturn None -> pad ^ "return;"
  | Ast.Sreturn (Some e) -> pad ^ "return " ^ expr_to_string e ^ ";"
  | Ast.Sblock b -> Printf.sprintf "%s{\n%s\n%s}" pad (block_str b) pad
  | Ast.Sbreak -> pad ^ "break;"
  | Ast.Scontinue -> pad ^ "continue;"

and block_to_string ~indent b =
  String.concat "\n" (List.map (stmt_to_string ~indent:(indent + 1)) b)

let global_to_string = function
  | Ast.Gstruct sd ->
      let fields =
        sd.Ast.s_fields
        |> List.map (fun (n, ty) -> "  " ^ decl_string ty n ^ ";")
        |> String.concat "\n"
      in
      Printf.sprintf "struct %s {\n%s\n};" sd.Ast.s_name fields
  | Ast.Gfunc f ->
      let params =
        match f.Ast.f_params with
        | [] -> "void"
        | ps -> String.concat ", " (List.map (fun (n, ty) -> decl_string ty n) ps)
      in
      Printf.sprintf "%s %s(%s) {\n%s\n}" (Ctype.to_string f.Ast.f_ret) f.Ast.f_name
        params
        (block_to_string ~indent:0 f.Ast.f_body)
  | Ast.Gvar d -> (
      match d.Ast.d_init with
      | None -> decl_string d.Ast.d_ty d.Ast.d_name ^ ";"
      | Some e -> decl_string d.Ast.d_ty d.Ast.d_name ^ " = " ^ expr_to_string e ^ ";")
  | Ast.Gextern (n, ty, _) -> "extern " ^ decl_string ty n ^ ";"

let program_to_string prog = String.concat "\n\n" (List.map global_to_string prog)

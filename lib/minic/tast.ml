(* Typed abstract syntax, the output of {!Typecheck} and the input of the
   IR lowering. Pure data; every node carries its type and location, and
   every variable occurrence is resolved to a unique [var] so the STI
   analysis can key scope information by variable identity. *)

type var_kind =
  | Klocal   (* function-local variable *)
  | Kparam   (* function parameter *)
  | Kglobal  (* file-scope variable *)

type var = {
  v_id : int;           (* unique across the program *)
  v_name : string;
  v_ty : Ctype.t;
  v_kind : var_kind;
  v_func : string option;  (* containing function; [None] for globals *)
  v_loc : Loc.t;
}

type lval = { ldesc : lval_desc; lty : Ctype.t; lloc : Loc.t }

and lval_desc =
  | Lvar of var
  | Lderef of texpr                          (* *e *)
  | Lfield of lval * string * string         (* l.f   (struct name, field) *)
  | Lfield_ptr of texpr * string * string    (* e->f  (struct name, field) *)
  | Lindex of texpr * texpr                  (* e[i], e decayed to pointer *)

and texpr = { tdesc : tdesc; tty : Ctype.t; tloc : Loc.t }

and tdesc =
  | Tint of int64
  | Tdouble of float
  | Tstr of string                 (* string literal, typed char* *)
  | Tread of lval                  (* rvalue read *)
  | Taddr of lval                  (* &lval *)
  | Tfunc_addr of string           (* function designator used as a value *)
  | Tneg of texpr
  | Tlognot of texpr
  | Tbitnot of texpr
  | Tbinop of Ast.binop * texpr * texpr
  | Tassign of lval * texpr        (* value is the stored value *)
  | Tcall of callee * texpr list
  | Tcast of Ctype.t * texpr
  | Tcond of texpr * texpr * texpr

and callee =
  | Cdirect of string              (* defined function or extern *)
  | Cindirect of texpr             (* call through a function pointer *)

type tstmt =
  | Tsexpr of texpr
  | Tsdecl of var * texpr option
  | Tsif of texpr * tstmt list * tstmt list
  | Tswhile of texpr * tstmt list
  | Tsdo of tstmt list * texpr
  | Tsfor of tstmt option * texpr option * texpr option * tstmt list
  | Tsswitch of texpr * tcase list
  | Tsreturn of texpr option
  | Tsblock of tstmt list
  | Tsbreak
  | Tscontinue

and tcase = { tc_labels : int64 list; tc_default : bool; tc_body : tstmt list }

type tfunc = {
  tf_name : string;
  tf_ret : Ctype.t;
  tf_params : var list;
  tf_body : tstmt list;
  tf_loc : Loc.t;
}

type program = {
  structs : (string * (string * Ctype.t) list) list;  (* declaration order *)
  globals : (var * texpr option) list;
  externs : (string * Ctype.t) list;
  funcs : tfunc list;
}

(* Iterators used by several analyses. *)

let rec iter_texpr f (e : texpr) =
  f e;
  match e.tdesc with
  | Tint _ | Tdouble _ | Tstr _ | Tfunc_addr _ -> ()
  | Tread l | Taddr l -> iter_lval f l
  | Tneg a | Tlognot a | Tbitnot a | Tcast (_, a) -> iter_texpr f a
  | Tbinop (_, a, b) -> iter_texpr f a; iter_texpr f b
  | Tassign (l, r) -> iter_lval f l; iter_texpr f r
  | Tcall (callee, args) ->
      (match callee with Cdirect _ -> () | Cindirect c -> iter_texpr f c);
      List.iter (iter_texpr f) args
  | Tcond (c, a, b) -> iter_texpr f c; iter_texpr f a; iter_texpr f b

and iter_lval f (l : lval) =
  match l.ldesc with
  | Lvar _ -> ()
  | Lderef e -> iter_texpr f e
  | Lfield (base, _, _) -> iter_lval f base
  | Lfield_ptr (e, _, _) -> iter_texpr f e
  | Lindex (e, i) -> iter_texpr f e; iter_texpr f i

let rec iter_stmt ~expr ~stmt (s : tstmt) =
  stmt s;
  let on_block = List.iter (iter_stmt ~expr ~stmt) in
  match s with
  | Tsexpr e -> iter_texpr expr e
  | Tsdecl (_, init) -> Option.iter (iter_texpr expr) init
  | Tsif (c, a, b) -> iter_texpr expr c; on_block a; on_block b
  | Tswhile (c, b) -> iter_texpr expr c; on_block b
  | Tsdo (b, c) -> on_block b; iter_texpr expr c
  | Tsfor (init, cond, step, b) ->
      Option.iter (iter_stmt ~expr ~stmt) init;
      Option.iter (iter_texpr expr) cond;
      Option.iter (iter_texpr expr) step;
      on_block b
  | Tsswitch (e, arms) ->
      iter_texpr expr e;
      List.iter (fun a -> on_block a.tc_body) arms
  | Tsreturn e -> Option.iter (iter_texpr expr) e
  | Tsblock b -> on_block b
  | Tsbreak | Tscontinue -> ()

let iter_func ~expr ~stmt (fn : tfunc) = List.iter (iter_stmt ~expr ~stmt) fn.tf_body

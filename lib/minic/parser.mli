(** Recursive-descent parser for MiniC.

    Supported surface (everything the paper's code figures need): struct
    definitions, typedefs of structs, global and local variable
    declarations with initializers, full declarator syntax including
    function-pointer declarators ("int ( *f)(int)" — star inside
    parentheses), const
    qualification, casts, [sizeof], the usual expression operators,
    [if]/[while]/[do]/[for]/[break]/[continue]/[return], address-of,
    dereference, member access ([.], [->]) and indexing.

    Deliberate simplifications (documented in README): compound
    assignment and [++]/[--] are desugared to plain assignment with
    new-value semantics; no preprocessor; no [switch]; no unions. *)

exception Error of string * Loc.t

val parse : file:string -> string -> Ast.program
(** Parse a whole translation unit. Raises {!Error} or {!Lexer.Error}. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression — convenient in tests. *)

(** The measurement runner behind Figures 9 and 10: compiles a workload
    once, runs it uninstrumented and under each requested mechanism, and
    reports cycle overheads. Instrumentation must not change program
    behaviour — the runner asserts that the instrumented run's output and
    exit status equal the baseline's, and raises [Divergence] otherwise
    (this doubles as a whole-pipeline correctness check that the test
    suite leans on). *)

exception Divergence of string
(** A mechanism changed a workload's observable behaviour. *)

type measurement = {
  workload : Workload.t;
  mech : Rsti_sti.Rsti_type.mechanism;
  base_cycles : int;
  mech_cycles : int;
  overhead_pct : float;                       (** (mech/base - 1) * 100 *)
  dyn : Rsti_machine.Interp.counts;           (** instrumented run *)
  static_counts : Rsti_rsti.Instrument.static_counts;
}

val measure :
  ?costs:Rsti_machine.Cost.t ->
  ?elide:bool ->
  Workload.t ->
  Rsti_sti.Rsti_type.mechanism list ->
  measurement list
(** One measurement per mechanism. [costs] defaults to
    {!Rsti_machine.Cost.default}, except that the [Parts] mechanism
    always runs under {!Rsti_machine.Cost.parts_codegen}. [~elide:true]
    enables {!Rsti_staticcheck.Elide} proof-based instrumentation
    elision for the STWC/STC/STL runs; sites skipped are counted in
    [static_counts.elided]. The output-equality assertion still applies,
    so a behaviour-changing elision raises [Divergence]. *)

val measure_suite :
  ?costs:Rsti_machine.Cost.t ->
  ?elide:bool ->
  Workload.t list ->
  Rsti_sti.Rsti_type.mechanism list ->
  measurement list

val analyze_workload : Workload.t -> Rsti_sti.Analysis.t
(** The STI analysis of a workload over its full static population
    ([Workload.analysis_source] — kernel plus the generated module that
    scales types/variables to 1/8 of the real benchmark). *)

val geomean_overhead : measurement list -> float
(** Geometric-mean overhead (percent) across measurements. *)

(** The measurement runner behind Figures 9 and 10, built on the
    engine's staged pipeline: compiles a workload once (artifact-cached),
    runs it uninstrumented and under each requested mechanism, and
    reports cycle overheads. Instrumentation must not change program
    behaviour — the runner asserts that the instrumented run's output and
    exit status equal the baseline's, and raises [Divergence] otherwise
    (this doubles as a whole-pipeline correctness check that the test
    suite leans on). *)

exception Divergence of string
(** A mechanism changed a workload's observable behaviour. *)

type config = {
  costs : Rsti_machine.Cost.t;
      (** cycle model; the [Parts] mechanism always runs under
          {!Rsti_machine.Cost.parts_codegen} with this record's [pac] *)
  elision : Rsti_staticcheck.Elide.mode;
      (** proof-based instrumentation elision ({!Rsti_staticcheck.Elide})
          for the STWC/STC/STL runs, at syntactic or points-to
          precision; skipped sites are counted in
          [static_counts.elided] *)
  validate : bool;
      (** run the PAC-typestate validator over every instrumented module
          ({!Rsti_dataflow.Validate}); failures raise
          [Rsti_engine.Pipeline.Validation_failed] *)
  cache : bool;  (** consult the engine's content-keyed artifact cache *)
  jobs : int option;
      (** fan-out width of {!measure_suite}; [None] defers to
          {!Rsti_engine.Scheduler.default_jobs} *)
}

val default_config : config
(** [Cost.default], no elision, no validation, cache on, engine-default
    jobs. *)

type measurement = {
  workload : Workload.t;
  mech : Rsti_sti.Rsti_type.mechanism;
  base_cycles : int;
  mech_cycles : int;
  overhead_pct : float;                       (** (mech/base - 1) * 100 *)
  dyn : Rsti_machine.Interp.counts;           (** instrumented run *)
  static_counts : Rsti_rsti.Instrument.static_counts;
}

val measure :
  ?config:config ->
  Workload.t ->
  Rsti_sti.Rsti_type.mechanism list ->
  measurement list
(** One measurement per mechanism, in mechanism order. The
    output-equality assertion applies under elision too, so a
    behaviour-changing elision raises [Divergence]. *)

val measure_suite :
  ?config:config ->
  Workload.t list ->
  Rsti_sti.Rsti_type.mechanism list ->
  measurement list
(** {!measure} fanned out over the engine's domain pool
    ([config.jobs]); the result is flattened in workload order, so it is
    identical for any job count. *)

val analyze_workload : ?config:config -> Workload.t -> Rsti_sti.Analysis.t
(** The STI analysis of a workload over its full static population
    ([Workload.analysis_source] — kernel plus the generated module that
    scales types/variables to 1/8 of the real benchmark). *)

val geomean_overhead : measurement list -> float
(** Geometric-mean overhead (percent) across measurements. *)

(* The NGINX stress workload (the paper drives TLS transactions with wrk;
   ours drives request parse + handler dispatch, the instrumented-pointer
   hot path of that configuration). *)

let workload =
  Workload.make ~suite:Workload.Nginx ~name:"nginx"
    ~description:"request parsing + handler function-pointer dispatch"
    (Kernels.http_server ~requests:700)

let all = [ workload ]

module Interp = Rsti_machine.Interp
module RT = Rsti_sti.Rsti_type
module Pipeline = Rsti_engine.Pipeline
module Scheduler = Rsti_engine.Scheduler

exception Divergence of string

type config = {
  costs : Rsti_machine.Cost.t;
  elision : Rsti_staticcheck.Elide.mode;
  validate : bool;
  cache : bool;
  jobs : int option;
}

let default_config =
  {
    costs = Rsti_machine.Cost.default;
    elision = Rsti_staticcheck.Elide.Off;
    validate = false;
    cache = true;
    jobs = None;
  }

type measurement = {
  workload : Workload.t;
  mech : RT.mechanism;
  base_cycles : int;
  mech_cycles : int;
  overhead_pct : float;
  dyn : Interp.counts;
  static_counts : Rsti_rsti.Instrument.static_counts;
}

let pipeline_config ?(mechs = RT.all_mechanisms) (c : config) =
  {
    Pipeline.costs = c.costs;
    elision = c.elision;
    validate = c.validate;
    cache = c.cache;
    jobs = c.jobs;
    mechanisms = mechs;
  }

let exit_code (o : Interp.outcome) =
  match o.Interp.status with
  | Interp.Exited code -> code
  | Interp.Trapped tr ->
      invalid_arg
        (Printf.sprintf "workload trapped: %s" (Interp.trap_to_string tr))

let measure ?(config = default_config) (w : Workload.t) mechs =
  let pcfg = pipeline_config ~mechs config in
  let analyzed =
    Pipeline.analyze ~config:pcfg
      (Pipeline.compile ~config:pcfg
         (Pipeline.source ~file:(w.Workload.name ^ ".c") w.Workload.source))
  in
  let base_outcome =
    Pipeline.run_baseline ~config:pcfg (Pipeline.compiled_of_analyzed analyzed)
  in
  let base_code = exit_code base_outcome in
  List.map
    (fun mech ->
      let run_cfg =
        if mech = RT.Parts then
          {
            pcfg with
            Pipeline.costs =
              {
                Rsti_machine.Cost.parts_codegen with
                pac = config.costs.Rsti_machine.Cost.pac;
              };
          }
        else pcfg
      in
      let inst = Pipeline.instrument ~config:pcfg mech analyzed in
      let o = Pipeline.run ~config:run_cfg inst in
      let code = exit_code o in
      if code <> base_code || o.Interp.output <> base_outcome.Interp.output then
        raise
          (Divergence
             (Printf.sprintf "%s under %s: exit %Ld vs %Ld, output %S vs %S"
                w.Workload.name (RT.mechanism_to_string mech) code base_code
                o.Interp.output base_outcome.Interp.output));
      let base_cycles = base_outcome.Interp.cycles in
      let mech_cycles = o.Interp.cycles in
      {
        workload = w;
        mech;
        base_cycles;
        mech_cycles;
        overhead_pct =
          (float_of_int mech_cycles /. float_of_int base_cycles -. 1.) *. 100.;
        dyn = o.Interp.counts;
        static_counts = (Pipeline.result inst).Rsti_rsti.Instrument.counts;
      })
    mechs

let measure_suite ?(config = default_config) ws mechs =
  List.concat
    (Scheduler.map ?jobs:config.jobs (fun w -> measure ~config w mechs) ws)

let analyze_workload ?(config = default_config) (w : Workload.t) =
  let pcfg = pipeline_config config in
  Pipeline.analysis
    (Pipeline.analyze ~config:pcfg
       (Pipeline.compile ~config:pcfg
          (Pipeline.source ~file:(w.Workload.name ^ ".c")
             (Workload.analysis_source w))))

let geomean_overhead ms =
  Rsti_util.Stats.geomean_overhead (List.map (fun m -> m.overhead_pct) ms)

module Interp = Rsti_machine.Interp
module RT = Rsti_sti.Rsti_type

exception Divergence of string

type measurement = {
  workload : Workload.t;
  mech : RT.mechanism;
  base_cycles : int;
  mech_cycles : int;
  overhead_pct : float;
  dyn : Interp.counts;
  static_counts : Rsti_rsti.Instrument.static_counts;
}

let run_once ?costs modul pp_table =
  let vm = Interp.create ?costs ~pp_table modul in
  let o = Interp.run vm in
  match o.Interp.status with
  | Interp.Exited code -> (o, code)
  | Interp.Trapped tr ->
      invalid_arg
        (Printf.sprintf "workload trapped: %s" (Interp.trap_to_string tr))

let measure ?(costs = Rsti_machine.Cost.default) ?(elide = false)
    (w : Workload.t) mechs =
  let m = Rsti_ir.Lower.compile ~file:(w.Workload.name ^ ".c") w.Workload.source in
  let anal = Rsti_sti.Analysis.analyze m in
  let elide =
    if elide then
      let e = Rsti_staticcheck.Elide.analyze anal m in
      Some (Rsti_staticcheck.Elide.elide e)
    else None
  in
  let base_outcome, base_code = run_once ~costs m [] in
  List.map
    (fun mech ->
      let costs =
        if mech = RT.Parts then
          { Rsti_machine.Cost.parts_codegen with pac = costs.Rsti_machine.Cost.pac }
        else costs
      in
      let r = Rsti_rsti.Instrument.instrument ?elide mech anal m in
      let o, code = run_once ~costs r.Rsti_rsti.Instrument.modul r.pp_table in
      if code <> base_code || o.Interp.output <> base_outcome.Interp.output then
        raise
          (Divergence
             (Printf.sprintf "%s under %s: exit %Ld vs %Ld, output %S vs %S"
                w.Workload.name (RT.mechanism_to_string mech) code base_code
                o.Interp.output base_outcome.Interp.output));
      let base_cycles = base_outcome.Interp.cycles in
      let mech_cycles = o.Interp.cycles in
      {
        workload = w;
        mech;
        base_cycles;
        mech_cycles;
        overhead_pct =
          (float_of_int mech_cycles /. float_of_int base_cycles -. 1.) *. 100.;
        dyn = o.Interp.counts;
        static_counts = r.Rsti_rsti.Instrument.counts;
      })
    mechs

let measure_suite ?costs ?elide ws mechs =
  List.concat_map (fun w -> measure ?costs ?elide w mechs) ws

let analyze_workload (w : Workload.t) =
  Rsti_sti.Analysis.analyze
    (Rsti_ir.Lower.compile ~file:(w.Workload.name ^ ".c")
       (Workload.analysis_source w))

let geomean_overhead ms =
  Rsti_util.Stats.geomean_overhead (List.map (fun m -> m.overhead_pct) ms)

(** Parameterised MiniC kernel templates.

    Each template models one pointer-behaviour archetype found in the
    paper's benchmarks — pointer-chasing containers, function-pointer
    dispatch, numeric array code with few pointers, and so on. The suite
    modules ({!Spec2006}, {!Spec2017}, {!Nbench}, {!Pytorch}, {!Nginx})
    instantiate these with per-benchmark sizes so that each benchmark's
    instrumented-operation density (and therefore its Figure 9 overhead)
    reflects the original program's character.

    All templates return self-contained MiniC sources that print a final
    checksum and return 0, so the runner can assert that instrumentation
    never changes results. *)

val hash_table : buckets:int -> items:int -> lookups:int -> string
(** Chained string-keyed hash table storing [void*] payloads cast to and
    from typed entries: pointer- and cast-heavy (perlbench archetype). *)

val event_queue : events:int -> string
(** Sorted intrusive linked-list scheduler: insert/pop pointer chasing
    (omnetpp archetype). *)

val binary_tree : nodes:int -> searches:int -> string
(** Unbalanced binary search tree build + lookups (xalancbmk/dealII
    archetype). *)

val network_simplex : nodes:int -> iters:int -> string
(** Arc/node graph relabelling with pointer fields (mcf archetype). *)

val stencil : n:int -> iters:int -> string
(** Double-precision 1-D stencil over arrays; no pointers in the hot loop
    (lbm/nab archetype). *)

val string_churn : rounds:int -> string
(** strcpy/strstr/strlen churn over heap buffers (perlbench regex-ish). *)

val dispatch_table : rounds:int -> string
(** Function-pointer opcode dispatch loop (sjeng/deepsjeng archetype). *)

val sparse_matrix : rows:int -> iters:int -> string
(** Sparse matrix-vector product with per-row pointers (soplex). *)

val scene_render : objects:int -> rays:int -> string
(** Shape objects with virtual-ish intersect function pointers (povray). *)

val compress : n:int -> rounds:int -> string
(** Byte-array transform with small tables (bzip2/xz archetype). *)

val quantum_gates : qubits:int -> rounds:int -> string
(** Bit-twiddling register array (libquantum archetype). *)

val dp_align : m:int -> n:int -> string
(** 2-D dynamic-programming alignment over long arrays (hmmer). *)

val tensor_mlp : features:int -> hidden:int -> iters:int -> string
(** Tensor structs with data pointers + layer dispatch: the CPython
    PyTorch inference loop archetype. *)

val tensor_stencil : n:int -> iters:int -> string
(** A stencil driven through tensor objects and per-tile kernel helper
    calls — the pointer profile of a CPython-interpreted PyTorch
    operator loop. *)

val http_server : requests:int -> string
(** Request parsing, header buffers, handler function-pointer dispatch:
    the NGINX archetype. *)

val su3_lattice : sites:int -> sweeps:int -> string
(** Lattice-QCD style 3x3 complex matrix products (milc). *)

val force_field : atoms:int -> steps:int -> string
(** Pairwise short-range force computation over coordinate arrays
    (namd/nab). *)

val mcts : playouts:int -> string
(** Monte-Carlo tree search with child/parent pointer nodes and UCB
    selection (leela). *)

val grid_pathfind : dim:int -> searches:int -> string
(** A*-style grid search with parent-pointer node objects (astar). *)

val board_scan : dim:int -> plays:int -> string
(** Go-engine board scanning: liberties + pattern hashes (gobmk). *)

val motion_estimate : frame:int -> blocks:int -> string
(** H.264-style sum-of-absolute-differences search (h264ref). *)

val huffman : symbols:int -> rounds:int -> string
(** Huffman tree build + encode (nbench Huffman). *)

val neural_net : neurons:int -> epochs:int -> string
(** Small back-propagation network over double arrays (nbench NN). *)

val lu_decomp : n:int -> rounds:int -> string
(** LU decomposition over a dense matrix (nbench LU). *)

val fourier : terms:int -> string
(** Fourier coefficients via numerical integration (nbench Fourier). *)

val bitfield : n:int -> rounds:int -> string
(** Bit-map manipulation (nbench Bitfield). *)

val assignment : n:int -> rounds:int -> string
(** Assignment-problem cost-matrix scan (nbench Assignment). *)

val idea_cipher : blocks:int -> string
(** IDEA-like cipher rounds over integer arrays (nbench IDEA). *)

val numeric_sort : n:int -> rounds:int -> string
(** Heap-sort of long arrays (nbench Numeric sort). *)

val string_sort : n:int -> rounds:int -> string
(** Pointer-array string sort — pointer-heavy (nbench String sort). *)

val fp_emulation : n:int -> rounds:int -> string
(** Software floating-point-ish fixed-point loop (nbench FP emulation). *)

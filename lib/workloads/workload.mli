(** A named benchmark workload: a MiniC program standing in for one of
    the paper's benchmarks, with the suite it belongs to. Instrumentation
    must never change program results — the runner ({!Run}) asserts it. *)

type suite = Spec2006 | Spec2017 | Nbench | Pytorch | Nginx

val suite_to_string : suite -> string

type t = {
  name : string;        (** the paper's benchmark name, e.g. ["perlbench"] *)
  suite : suite;
  description : string;
      (** which pointer behaviour of the original the kernel models *)
  source : string;      (** MiniC, executed by the runner *)
  analysis_extra : string;
      (** additional never-executed code joined to [source] for the
          static analyses (Table 3, pp census): generated modules scaling
          the variable/type population to 1/8 of the real benchmark's *)
}

val make :
  ?analysis_extra:string ->
  name:string ->
  suite:suite ->
  description:string ->
  string ->
  t

val analysis_source : t -> string
(** [source] joined with [analysis_extra] — the static population the
    Table 3 / census analyses run over. *)

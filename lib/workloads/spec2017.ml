(* The 23 SPEC CPU2017 benchmarks of Figure 9 (the paper could not run
   625.x264, and neither rate nor speed gcc). The _r (rate) and _s
   (speed) variants share a kernel at different sizes, as in SPEC. *)

let w = Workload.make ~suite:Workload.Spec2017

let all : Workload.t list =
  [
    (* integer, rate *)
    w ~name:"500.perlbench_r" ~description:"interpreter hash + strings"
      (Kernels.hash_table ~buckets:64 ~items:250 ~lookups:1000);
    w ~name:"505.mcf_r" ~description:"network simplex pointer graph"
      (Kernels.network_simplex ~nodes:250 ~iters:18);
    w ~name:"520.omnetpp_r" ~description:"event queue simulation"
      (Kernels.event_queue ~events:800);
    w ~name:"523.xalancbmk_r" ~description:"DOM trees + hash lookups"
      (Kernels.hash_table ~buckets:128 ~items:350 ~lookups:1300);
    w ~name:"531.deepsjeng_r" ~description:"chess search dispatch"
      (Kernels.dispatch_table ~rounds:6000);
    w ~name:"541.leela_r" ~description:"Go MCTS: UCB tree walks"
      (Kernels.mcts ~playouts:700);
    w ~name:"557.xz_r" ~description:"LZMA byte transforms"
      (Kernels.compress ~n:1800 ~rounds:5);
    (* integer, speed: same kernels, larger inputs *)
    w ~name:"600.perlbench_s" ~description:"interpreter hash + strings (speed)"
      (Kernels.hash_table ~buckets:64 ~items:350 ~lookups:1500);
    w ~name:"605.mcf_s" ~description:"network simplex (speed)"
      (Kernels.network_simplex ~nodes:350 ~iters:22);
    w ~name:"620.omnetpp_s" ~description:"event queue (speed)"
      (Kernels.event_queue ~events:1100);
    w ~name:"623.xalancbmk_s" ~description:"DOM trees (speed)"
      (Kernels.hash_table ~buckets:128 ~items:450 ~lookups:1800);
    w ~name:"631.deepsjeng_s" ~description:"chess search (speed)"
      (Kernels.dispatch_table ~rounds:9000);
    w ~name:"641.leela_s" ~description:"Go MCTS (speed)"
      (Kernels.mcts ~playouts:1000);
    w ~name:"657.xz_s" ~description:"LZMA (speed)"
      (Kernels.compress ~n:2400 ~rounds:6);
    (* floating point *)
    w ~name:"508.namd_r" ~description:"molecular dynamics pairwise forces"
      (Kernels.force_field ~atoms:110 ~steps:14);
    w ~name:"510.parest_r" ~description:"finite elements: sparse solves"
      (Kernels.sparse_matrix ~rows:220 ~iters:22);
    w ~name:"511.povray_r" ~description:"ray tracer dispatch"
      (Kernels.scene_render ~objects:36 ~rays:360);
    w ~name:"519.lbm_r" ~description:"lattice Boltzmann stencil"
      (Kernels.stencil ~n:1800 ~iters:28);
    w ~name:"538.imagick_r" ~description:"image convolutions over arrays"
      (Kernels.stencil ~n:1500 ~iters:26);
    w ~name:"544.nab_r" ~description:"molecular modelling pairwise forces"
      (Kernels.force_field ~atoms:90 ~steps:12);
    w ~name:"619.lbm_s" ~description:"lattice Boltzmann (speed)"
      (Kernels.stencil ~n:2400 ~iters:32);
    w ~name:"638.imagick_s" ~description:"image convolutions (speed)"
      (Kernels.stencil ~n:2000 ~iters:30);
    w ~name:"644.nab_s" ~description:"molecular modelling (speed)"
      (Kernels.force_field ~atoms:120 ~steps:14);
  ]

(* CPython/PyTorch benchmark stand-ins (the paper runs the PyTorch
   benchmark suite on CPython 3.9): tensor objects with data pointers,
   layer dispatch through function pointers, and array math — the
   pointer profile of an interpreter driving numeric kernels. *)

let w = Workload.make ~suite:Workload.Pytorch

let all : Workload.t list =
  [
    w ~name:"mnist-mlp" ~description:"2-layer MLP inference"
      (Kernels.tensor_mlp ~features:24 ~hidden:32 ~iters:40);
    w ~name:"resnet-block" ~description:"conv-ish stencil through tensor objects"
      (Kernels.tensor_stencil ~n:1200 ~iters:24);
    w ~name:"lstm-cell" ~description:"gated recurrent updates"
      (Kernels.tensor_mlp ~features:32 ~hidden:24 ~iters:36);
    w ~name:"attention" ~description:"score matrix + weighted sum"
      (Kernels.tensor_mlp ~features:20 ~hidden:40 ~iters:30);
    w ~name:"embedding-bag" ~description:"gather + reduce over index arrays"
      (Kernels.sparse_matrix ~rows:200 ~iters:18);
    w ~name:"conv1d" ~description:"sliding-window convolution over tensors"
      (Kernels.tensor_stencil ~n:1500 ~iters:22);
    w ~name:"batchnorm" ~description:"normalisation sweeps over tensors"
      (Kernels.tensor_stencil ~n:1000 ~iters:20);
    w ~name:"softmax-loss" ~description:"loss reduction over logits"
      (Kernels.neural_net ~neurons:100 ~epochs:45);
  ]

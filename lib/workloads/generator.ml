module Rng = Rsti_util.Splitmix

type config = {
  n_structs : int;
  n_funcs : int;
  n_globals : int;
  loop_iters : int;
  cast_bias : float;
  prefix : string;        (* prepended to every generated name *)
  emit_main : bool;       (* false: a library-style module for static
                             analysis population (no entry point) *)
  pp_typed_rate : float;  (* chance a worker passes a typed T** *)
  pp_erased_rate : float; (* chance of a type-erasing void-double-pointer pass *)
}

let default =
  {
    n_structs = 3;
    n_funcs = 5;
    n_globals = 4;
    loop_iters = 8;
    cast_bias = 0.3;
    prefix = "";
    emit_main = true;
    pp_typed_rate = 0.0;
    pp_erased_rate = 0.0;
  }

(* Field layout of every generated struct: a scalar, a double, a pointer
   to another struct, and a small char buffer — enough surface for the
   field-sensitive analysis without unbounded shapes. *)
type gstruct = { s_idx : int; link_to : int }

let struct_name cfg i = Printf.sprintf "%sS%d" cfg.prefix i

let gen_structs cfg rng =
  List.init cfg.n_structs (fun i -> { s_idx = i; link_to = Rng.int rng cfg.n_structs })

let struct_def cfg g =
  Printf.sprintf
    {|struct %s {
  long tag;
  double weight;
  struct %s* link;
  char label[8];
};|}
    (struct_name cfg g.s_idx)
    (struct_name cfg g.link_to)

(* Arithmetic expression over the names in scope; constants keep division
   and modulo well-defined. *)
let rec gen_arith rng depth scalars =
  if depth = 0 || scalars = [] || Rng.chance rng 0.3 then
    match (scalars, Rng.bool rng) with
    | x :: _, true -> x
    | _ -> string_of_int (1 + Rng.int rng 97)
  else begin
    let a = gen_arith rng (depth - 1) scalars in
    let b = gen_arith rng (depth - 1) scalars in
    let op = Rng.pick rng [ "+"; "-"; "*"; "^"; "&"; "|" ] in
    let e = Printf.sprintf "(%s %s %s)" a op b in
    if Rng.chance rng 0.4 then Printf.sprintf "(%s %% %d)" e (1009 + Rng.int rng 1000)
    else e
  end

let gen_func cfg rng structs prior i =
  let g = Rng.pick rng structs in
  let sname = struct_name cfg g.s_idx in
  let fname = Printf.sprintf "%swork%d" cfg.prefix i in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "long %s(struct %s* obj, long salt) {\n" fname sname;
  Buffer.add_string buf "  long acc = salt;\n";
  let scalars = ref [ "acc"; "salt" ] in
  let n_stmts = 2 + Rng.int rng 4 in
  for s = 0 to n_stmts - 1 do
    match Rng.int rng 6 with
    | 0 ->
        (* field read/update through the pointer parameter *)
        Printf.bprintf buf "  obj->tag = %s;\n" (gen_arith rng 2 !scalars);
        Buffer.add_string buf "  acc = acc + obj->tag;\n"
    | 1 ->
        (* walk the link field (allocated by main, never null) *)
        Printf.bprintf buf "  if (obj->link) { acc = acc + obj->link->tag %% 64; }\n"
    | 2 ->
        (* bounded loop with arithmetic *)
        let v = Printf.sprintf "i%d" s in
        Printf.bprintf buf "  for (long %s = 0; %s < %d; %s++) {\n" v v
          cfg.loop_iters v;
        Printf.bprintf buf "    acc = (acc + %s * %s) %% 1000003;\n" v
          (gen_arith rng 1 !scalars);
        Buffer.add_string buf "  }\n"
    | 3 ->
        (* local scalar *)
        let v = Printf.sprintf "t%d" s in
        Printf.bprintf buf "  long %s = %s;\n" v (gen_arith rng 2 !scalars);
        scalars := v :: !scalars
    | 5 ->
        (* switch dispatch over a small mode value *)
        Printf.bprintf buf "  switch (acc %% 4) {\n";
        Printf.bprintf buf "  case 0:\n    acc = acc + %s;\n    break;\n"
          (gen_arith rng 1 !scalars);
        Printf.bprintf buf "  case 1:\n  case 2:\n    acc = (acc * 3 + 1) %% 999983;\n    break;\n";
        Printf.bprintf buf "  default:\n    acc = acc - 1;\n  }\n"
    | _ ->
        (* label byte churn *)
        Printf.bprintf buf "  obj->label[%d] = (char) (acc %% 96 + 32);\n"
          (Rng.int rng 8);
        Printf.bprintf buf "  acc = acc + obj->label[%d];\n" (Rng.int rng 8)
  done;
  (* pointer-to-pointer traffic for the census: mostly typed double
     pointers (original type preserved); rarely a type-erasing pass (the
     case the CE/FE mechanism exists for) *)
  if Rng.chance rng cfg.pp_typed_rate then begin
    Printf.bprintf buf "  struct %s* aux = obj;\n" sname;
    Printf.bprintf buf "  %sreseat%d(&aux);\n" cfg.prefix g.s_idx;
    Buffer.add_string buf "  acc = acc + (aux ? 1 : 0);\n"
  end;
  if Rng.chance rng cfg.pp_erased_rate then begin
    Printf.bprintf buf "  struct %s* aux2 = obj;\n" sname;
    Printf.bprintf buf "  %serase_pp((void**) &aux2);\n" cfg.prefix;
    Buffer.add_string buf "  acc = acc + (aux2 ? 1 : 0);\n"
  end;
  (* call an earlier worker taking the same struct type, possibly
     laundering the pointer through void* (a legitimate cast: STC
     merges, STWC re-signs) *)
  let compatible = List.filter (fun (_, s) -> s = sname) prior in
  if compatible <> [] && Rng.chance rng 0.7 then begin
    let callee, _ = Rng.pick rng compatible in
    if Rng.chance rng cfg.cast_bias then begin
      Printf.bprintf buf "  void* erased = (void*) obj;\n";
      Printf.bprintf buf "  acc = acc + %s((struct %s*) erased, acc %% 251);\n"
        callee sname
    end
    else Printf.bprintf buf "  acc = acc + %s(obj, acc %% 251);\n" callee
  end;
  Buffer.add_string buf "  return acc % 1000000007;\n}\n";
  (fname, sname, Buffer.contents buf)

let generate ?(config = default) ~seed () =
  let cfg = config in
  let rng = Rng.create seed in
  let structs = gen_structs cfg rng in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "extern void* malloc(long n);\nextern int printf(const char *fmt, ...);\n\n";
  List.iter (fun g -> Buffer.add_string buf (struct_def cfg g ^ "\n")) structs;
  Buffer.add_char buf '\n';
  (* globals: one pointer per struct round-robin plus scalar counters *)
  let globals =
    List.init cfg.n_globals (fun i ->
        let g = List.nth structs (i mod cfg.n_structs) in
        (Printf.sprintf "%sgptr%d" cfg.prefix i, g))
  in
  List.iter
    (fun (name, g) ->
      Printf.bprintf buf "struct %s* %s;\n" (struct_name cfg g.s_idx) name)
    globals;
  Printf.bprintf buf "long %sgcount = 0;\n\n" cfg.prefix;
  (* pointer-to-pointer helpers used by the workers *)
  if cfg.pp_typed_rate > 0.0 then
    List.iter
      (fun g ->
        Printf.bprintf buf
          "void %sreseat%d(struct %s** pp) {\n  if (*pp) { *pp = *pp; }\n}\n"
          cfg.prefix g.s_idx (struct_name cfg g.s_idx))
      structs;
  if cfg.pp_erased_rate > 0.0 then
    Printf.bprintf buf "void %serase_pp(void** pp) {\n  if (*pp) { }\n}\n"
      cfg.prefix;
  (* workers; calls only go to earlier, same-typed workers *)
  let funcs =
    let rec go acc i =
      if i >= cfg.n_funcs then List.rev acc
      else begin
        let prior = List.map (fun (f, s, _) -> (f, s)) acc in
        go (gen_func cfg rng structs prior i :: acc) (i + 1)
      end
    in
    go [] 0
  in
  List.iter (fun (_, _, src) -> Buffer.add_string buf (src ^ "\n")) funcs;
  if not cfg.emit_main then Buffer.contents buf
  else begin
  (* main: allocate every global, link them, drive the workers *)
  Buffer.add_string buf "int main(void) {\n";
  List.iter
    (fun (name, g) ->
      let sname = struct_name cfg g.s_idx in
      Printf.bprintf buf
        "  %s = (struct %s*) malloc(sizeof(struct %s));\n  %s->tag = %d;\n\
        \  %s->weight = %d.5;\n  %s->link = NULL;\n"
        name sname sname name (Rng.int rng 100) name (Rng.int rng 9) name)
    globals;
  (* link globals whose struct's link field points at the other's type *)
  List.iter
    (fun (a, ga) ->
      let targets =
        List.filter (fun (b, gb) -> gb.s_idx = ga.link_to && b <> a) globals
      in
      match targets with
      | [] -> ()
      | l ->
          let b, _ = Rng.pick rng l in
          Printf.bprintf buf "  %s->link = %s;\n" a b)
    globals;
  Buffer.add_string buf "  long sum = 0;\n";
  List.iter
    (fun (fname, sname, _) ->
      let candidates =
        List.filter (fun (_, g) -> struct_name cfg g.s_idx = sname) globals
      in
      match candidates with
      | [] -> ()
      | l ->
          let gname, _ = Rng.pick rng l in
          Printf.bprintf buf "  sum = (sum + %s(%s, %d)) %% 1000000007;\n" fname
            gname (Rng.int rng 1000))
    funcs;
  Printf.bprintf buf "  %sgcount = sum;\n" cfg.prefix;
  Buffer.add_string buf "  printf(\"gen checksum %ld\\n\", sum);\n";
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf
  end

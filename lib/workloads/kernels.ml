(* MiniC kernel templates. Sources use Printf with explicit scale
   parameters; every kernel prints a checksum and returns 0. *)

let prelude =
  {|
extern void* malloc(long n);
extern void free(void* p);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
extern long strlen(const char* s);
extern int strcmp(const char* a, const char* b);
extern char* strstr(const char* hay, const char* needle);
extern void* memset(void* p, int c, long n);
|}

let hash_table ~buckets ~items ~lookups =
  prelude
  ^ Printf.sprintf
      {|
struct entry {
  long key;
  void* value;
  struct entry* next;
};
struct payload {
  long a;
  long b;
};
/* Statistics registry: two same-typed counter cells whose pointers are
   routed through one helper. Only the public cell is handed to external
   code, and only the private cell is dereferenced locally — so an
   insensitive points-to merges the two return channels and taints the
   private side, while a call-site-cloned solve keeps them apart. The
   real perlbench/xalancbmk interpreters share this registry idiom. */
struct stat_counter {
  long hits;
  long misses;
};
extern void report_stats(struct stat_counter** slot);
struct stat_counter pub_stats;
struct stat_counter priv_stats;
struct stat_counter** pick(struct stat_counter** a) { return a; }
struct entry* table[%d];
long hash(long key) {
  /* FNV-style byte-at-a-time hash: the scalar work real interpreters do */
  long h = 1469598103;
  for (int i = 0; i < 8; i++) {
    h = h ^ ((key >> (i * 8)) & 255);
    h = (h * 16777619) %% 1099511627689;
  }
  return h %% %d;
}
void insert(long key, void* value) {
  struct entry* e = (struct entry*) malloc(sizeof(struct entry));
  e->key = key;
  e->value = value;
  long h = hash(key);
  if (h < 0) { h = -h; }
  e->next = table[h];
  table[h] = e;
}
long entry_matches(struct entry* e, long key) {
  return e->key == key ? 1 : 0;
}
void* lookup(long key) {
  long h = hash(key);
  if (h < 0) { h = -h; }
  struct entry* e = table[h];
  while (e) {
    if (entry_matches(e, key)) { return e->value; }
    e = e->next;
  }
  return NULL;
}
int main(void) {
  for (int i = 0; i < %d; i++) {
    struct payload* p = (struct payload*) malloc(sizeof(struct payload));
    p->a = i;
    p->b = i * 3;
    insert(i * 7, (void*) p);
  }
  long sum = 0;
  for (int i = 0; i < %d; i++) {
    void* v = lookup((i %% %d) * 7);
    if (v) {
      struct payload* p = (struct payload*) v;
      sum = sum + p->a + p->b;
    }
  }
  struct stat_counter* sp = &pub_stats;
  struct stat_counter* lp = &priv_stats;
  struct stat_counter** spp = pick(&sp);
  struct stat_counter** lpp = pick(&lp);
  if (sum < 0) { report_stats(spp); }
  struct stat_counter* t = *lpp;
  t->hits = t->hits + 1;
  printf("hash checksum %%ld\n", sum);
  return 0;
}
|}
      buckets buckets items lookups items

let event_queue ~events =
  prelude
  ^ Printf.sprintf
      {|
struct event {
  long time;
  long kind;
  struct event* next;
};
struct event* queue;
long process_event(struct event* e) {
  /* module state update arithmetic */
  long state = e->kind;
  for (int k = 0; k < 16; k++) {
    state = (state * 131 + e->time + k) %% 999983;
    if (state & 1) { state = state + 3; }
  }
  return e->time + state %% 5;
}
void schedule(long time, long kind) {
  struct event* e = (struct event*) malloc(sizeof(struct event));
  e->time = time;
  e->kind = kind;
  e->next = NULL;
  if (!queue || queue->time > time) {
    e->next = queue;
    queue = e;
    return;
  }
  struct event* cur = queue;
  while (cur->next && cur->next->time <= time) {
    cur = cur->next;
  }
  e->next = cur->next;
  cur->next = e;
}
int main(void) {
  long seed = 12345;
  int n = %d;
  for (int i = 0; i < n; i++) {
    seed = (seed * 1103515245 + 12345) %% 2147483647;
    /* near-sorted arrival: inserts stay close to the queue head */
    schedule((n - i) * 8 + seed %% 16, i %% 7);
  }
  long clock = 0;
  long handled = 0;
  while (queue) {
    struct event* e = queue;
    queue = e->next;
    clock = clock + process_event(e);
    handled = handled + 1;
    free((void*) e);
  }
  printf("events %%ld clock %%ld\n", handled, clock);
  return 0;
}
|}
      events

let binary_tree ~nodes ~searches =
  prelude
  ^ Printf.sprintf
      {|
struct tnode {
  long key;
  struct tnode* left;
  struct tnode* right;
};
struct tnode* root;
void insert(long key) {
  struct tnode* n = (struct tnode*) malloc(sizeof(struct tnode));
  n->key = key;
  n->left = NULL;
  n->right = NULL;
  if (!root) { root = n; return; }
  struct tnode* cur = root;
  while (1) {
    if (key < cur->key) {
      if (!cur->left) { cur->left = n; return; }
      cur = cur->left;
    } else {
      if (!cur->right) { cur->right = n; return; }
      cur = cur->right;
    }
  }
}
long compare_keys(struct tnode* n, long key) {
  /* composite-key comparison: the per-node work of real tree code */
  long a = n->key;
  long probe = key;
  for (int k = 0; k < 6; k++) {
    probe = (probe * 33 + a + k) %% 1000003;
  }
  if (a == key) { return 0; }
  return key < a ? -1 - probe %% 2 : 1 + probe %% 2;
}
long search(long key) {
  struct tnode* cur = root;
  long depth = 0;
  while (cur) {
    depth = depth + 1;
    long c = compare_keys(cur, key);
    if (c == 0) { return depth; }
    if (c < 0) { cur = cur->left; } else { cur = cur->right; }
  }
  return -depth;
}
int main(void) {
  long seed = 99;
  for (int i = 0; i < %d; i++) {
    seed = (seed * 1103515245 + 12345) %% 1000003;
    insert(seed);
  }
  long sum = 0;
  seed = 99;
  for (int i = 0; i < %d; i++) {
    seed = (seed * 1103515245 + 12345) %% 1000003;
    sum = sum + search(seed);
  }
  printf("tree checksum %%ld\n", sum);
  return 0;
}
|}
      nodes searches

let network_simplex ~nodes ~iters =
  prelude
  ^ Printf.sprintf
      {|
struct arc {
  long cost;
  long flow;
  struct mcf_node* tail;
  struct mcf_node* head;
};
struct mcf_node {
  long potential;
  long depth;
  struct arc* basic_arc;
  struct mcf_node* pred;
};
struct mcf_node* net[%d];
long reduced_cost(struct arc* a) {
  return a->cost + a->tail->potential - a->head->potential;
}
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    struct mcf_node* v = (struct mcf_node*) malloc(sizeof(struct mcf_node));
    v->potential = i * 17 %% 101;
    v->depth = 0;
    v->basic_arc = NULL;
    v->pred = NULL;
    net[i] = v;
  }
  for (int i = 1; i < n; i++) {
    struct arc* a = (struct arc*) malloc(sizeof(struct arc));
    a->cost = (i * 31) %% 97;
    a->flow = 0;
    a->tail = net[i - 1];
    a->head = net[i];
    net[i]->basic_arc = a;
    net[i]->pred = net[i - 1];
  }
  long objective = 0;
  for (int it = 0; it < %d; it++) {
    for (int i = 1; i < n; i++) {
      struct mcf_node* v = net[i];
      struct arc* a = v->basic_arc;
      if (a) {
        long reduced = reduced_cost(a);
        /* price refinement: the scalar work that dominates real mcf */
        long price = v->potential;
        for (int k = 0; k < 12; k++) {
          price = (price * 3 + reduced + k) %% 65449;
          if (price > 32768) { price = price - 17; }
        }
        if (reduced < 0) {
          a->flow = a->flow + 1;
          v->potential = price %% 4096;
        }
        objective = objective + a->flow + price %% 7;
      }
      v->depth = v->pred ? v->pred->depth + 1 : 0;
    }
  }
  printf("mcf objective %%ld\n", objective);
  return 0;
}
|}
      nodes nodes iters

let stencil ~n ~iters =
  prelude
  ^ Printf.sprintf
      {|
/* lbm idiom: the grids are swapped by exchanging two global pointers
   each timestep (LBM_swapGrids); element traffic goes through locals
   the pointer loads are hoisted into, so only the per-step swap touches
   instrumented slots. The pointers are declared before the writable
   arrays, where no overflow window reaches them. */
double* src;
double* dst;
double grid_a[%d];
double grid_b[%d];
int main(void) {
  int n = %d;
  src = grid_a;
  dst = grid_b;
  double* init = src;
  for (int i = 0; i < n; i++) {
    init[i] = (double) (i %% 13) * 0.5;
  }
  for (int it = 0; it < %d; it++) {
    double* s = src;
    double* d = dst;
    for (int i = 1; i < n - 1; i++) {
      d[i] = 0.25 * s[i - 1] + 0.5 * s[i] + 0.25 * s[i + 1];
    }
    d[0] = s[0];
    d[n - 1] = s[n - 1];
    double* t = src;
    src = dst;
    dst = t;
  }
  double sum = 0.0;
  double* fin = src;
  for (int i = 0; i < n; i++) {
    sum = sum + fin[i];
  }
  printf("stencil checksum %%f\n", sum);
  return 0;
}
|}
      n n n iters

let string_churn ~rounds =
  prelude
  ^ Printf.sprintf
      {|
char* patterns[8];
int main(void) {
  patterns[0] = "the quick brown fox";
  patterns[1] = "jumps over the lazy dog";
  patterns[2] = "pack my box with five dozen";
  patterns[3] = "liquor jugs";
  patterns[4] = "sphinx of black quartz";
  patterns[5] = "judge my vow";
  patterns[6] = "quick zephyrs blow";
  patterns[7] = "vexing daft jim";
  char* buf = (char*) malloc(256);
  long found = 0;
  long total_len = 0;
  for (int r = 0; r < %d; r++) {
    char* p = patterns[r %% 8];
    strcpy(buf, p);
    total_len = total_len + strlen(buf);
    if (strstr(buf, "qu")) { found = found + 1; }
    char* q = strstr(buf, "o");
    if (q) { total_len = total_len + (q - buf); }
  }
  printf("strings found %%ld len %%ld\n", found, total_len);
  return 0;
}
|}
      rounds

let dispatch_table ~rounds =
  prelude
  ^ Printf.sprintf
      {|
long mix(long a, long b) {
  long h = a * 31 + b;
  h = h ^ (h >> 7);
  h = (h * 131 + 17) %% 1048573;
  h = h ^ (h >> 3);
  return h;
}
long op_add(long a, long b) { return mix(a + b, a); }
long op_sub(long a, long b) { return mix(a - b, b); }
long op_mul(long a, long b) { return mix(a * b %% 65521, a + b); }
long op_xor(long a, long b) { return mix(a ^ b, a - b); }
long op_shl(long a, long b) { return mix((a << (b %% 8)) %% 1048573, b); }
long (*ops[5])(long a, long b);
int main(void) {
  ops[0] = op_add;
  ops[1] = op_sub;
  ops[2] = op_mul;
  ops[3] = op_xor;
  ops[4] = op_shl;
  long acc = 1;
  for (int i = 0; i < %d; i++) {
    acc = ops[i %% 5](acc, i) & 1048575;
  }
  printf("dispatch acc %%ld\n", acc);
  return 0;
}
|}
      rounds

let sparse_matrix ~rows ~iters =
  prelude
  ^ Printf.sprintf
      {|
struct row {
  long nnz;
  long* cols;
  double* vals;
};
struct row* mat[%d];
double x[%d];
double y[%d];
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    struct row* r = (struct row*) malloc(sizeof(struct row));
    r->nnz = 16;
    r->cols = (long*) malloc(16 * sizeof(long));
    r->vals = (double*) malloc(16 * sizeof(double));
    for (int k = 0; k < 16; k++) {
      r->cols[k] = (i + k * 7) %% n;
      r->vals[k] = (double) ((i + k) %% 9) * 0.25;
    }
    mat[i] = r;
    x[i] = 1.0;
  }
  for (int it = 0; it < %d; it++) {
    for (int i = 0; i < n; i++) {
      struct row* r = mat[i];
      long nnz = r->nnz;
      long* cols = r->cols;
      double* vals = r->vals;
      double acc = 0.0;
      for (int k = 0; k < nnz; k++) {
        acc = acc + vals[k] * x[cols[k]];
      }
      y[i] = acc;
    }
    for (int i = 0; i < n; i++) {
      x[i] = y[i] * 0.5 + 0.5;
    }
  }
  double sum = 0.0;
  for (int i = 0; i < n; i++) { sum = sum + x[i]; }
  printf("spmv checksum %%f\n", sum);
  return 0;
}
|}
      rows rows rows rows iters

let scene_render ~objects ~rays =
  prelude
  ^ Printf.sprintf
      {|
struct shape {
  double center;
  double radius;
  long (*intersect)(struct shape* self, double ray);
};
long sphere_intersect(struct shape* self, double ray) {
  double d = ray - self->center;
  if (d < 0.0) { d = -d; }
  return d < self->radius ? 1 : 0;
}
long box_intersect(struct shape* self, double ray) {
  double d = ray - self->center;
  return d >= -self->radius && d <= self->radius ? 1 : 0;
}
struct shape* scene[%d];
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    struct shape* s = (struct shape*) malloc(sizeof(struct shape));
    s->center = (double) (i * 7 %% 100);
    s->radius = 1.5 + (double) (i %% 3);
    if (i %% 2 == 0) { s->intersect = sphere_intersect; }
    else { s->intersect = box_intersect; }
    scene[i] = s;
  }
  long hits = 0;
  for (int r = 0; r < %d; r++) {
    double ray = (double) (r %% 100);
    for (int i = 0; i < n; i++) {
      struct shape* s = scene[i];
      hits = hits + s->intersect(s, ray);
    }
  }
  printf("render hits %%ld\n", hits);
  return 0;
}
|}
      objects objects rays

let compress ~n ~rounds =
  prelude
  ^ Printf.sprintf
      {|
char input[%d];
char output[%d];
long freq[256];
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    input[i] = (char) ((i * 31 + i / 7) %% 251);
  }
  long out_len = 0;
  for (int r = 0; r < %d; r++) {
    out_len = 0;
    for (int i = 0; i < 256; i++) { freq[i] = 0; }
    int i = 0;
    while (i < n) {
      char c = input[i];
      int run = 1;
      while (i + run < n && input[i + run] == c && run < 100) {
        run = run + 1;
      }
      freq[(int) c & 255] = freq[(int) c & 255] + run;
      output[out_len %% %d] = c;
      out_len = out_len + 1;
      i = i + run;
    }
  }
  long checksum = 0;
  for (int i = 0; i < 256; i++) { checksum = checksum + freq[i] * i; }
  printf("compress %%ld out %%ld\n", checksum, out_len);
  return 0;
}
|}
      n n n rounds n

let quantum_gates ~qubits ~rounds =
  prelude
  ^ Printf.sprintf
      {|
long reg_state[%d];
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) { reg_state[i] = i; }
  for (int r = 0; r < %d; r++) {
    for (int i = 0; i < n; i++) {
      reg_state[i] = reg_state[i] ^ (1 << (r %% 16));
    }
    for (int i = 0; i + 1 < n; i++) {
      if (reg_state[i] & 1) {
        reg_state[i + 1] = reg_state[i + 1] ^ 2;
      }
    }
  }
  long sum = 0;
  for (int i = 0; i < n; i++) { sum = sum + reg_state[i]; }
  printf("quantum %%ld\n", sum);
  return 0;
}
|}
      qubits qubits rounds

let dp_align ~m ~n =
  prelude
  ^ Printf.sprintf
      {|
long score[%d];
long prev[%d];
int main(void) {
  int m = %d;
  int n = %d;
  for (int j = 0; j <= n; j++) { prev[j] = j * -2; }
  for (int i = 1; i <= m; i++) {
    score[0] = i * -2;
    for (int j = 1; j <= n; j++) {
      long match = prev[j - 1] + ((i * 7 + j * 3) %% 4 == 0 ? 5 : -3);
      long del = prev[j] - 2;
      long ins = score[j - 1] - 2;
      long best = match;
      if (del > best) { best = del; }
      if (ins > best) { best = ins; }
      score[j] = best;
    }
    for (int j = 0; j <= n; j++) { prev[j] = score[j]; }
  }
  printf("align score %%ld\n", prev[n]);
  return 0;
}
|}
      (n + 1) (n + 1) m n

let tensor_mlp ~features ~hidden ~iters =
  prelude
  ^ Printf.sprintf
      {|
struct tensor {
  long rows;
  long cols;
  double* data;
};
struct layer {
  struct tensor* weight;
  struct tensor* bias;
  double (*activation)(double x);
};
double relu(double x) { return x > 0.0 ? x : 0.0; }
double identity(double x) { return x; }
struct tensor* make_tensor(long rows, long cols) {
  struct tensor* t = (struct tensor*) malloc(sizeof(struct tensor));
  t->rows = rows;
  t->cols = cols;
  t->data = (double*) malloc(rows * cols * sizeof(double));
  for (long i = 0; i < rows * cols; i++) {
    t->data[i] = (double) ((i * 13) %% 7) * 0.1 - 0.3;
  }
  return t;
}
void forward(struct layer* l, struct tensor* in, struct tensor* out) {
  struct tensor* w = l->weight;
  long rows = w->rows;
  long cols = w->cols;
  double* wdata = w->data;
  double* bias = l->bias->data;
  double* indata = in->data;
  double* outdata = out->data;
  for (long r = 0; r < rows; r++) {
    double acc = bias[r];
    for (long c = 0; c < cols; c++) {
      acc = acc + wdata[r * cols + c] * indata[c];
    }
    outdata[r] = l->activation(acc);
  }
}
int main(void) {
  int features = %d;
  int hidden = %d;
  struct layer* l1 = (struct layer*) malloc(sizeof(struct layer));
  l1->weight = make_tensor(hidden, features);
  l1->bias = make_tensor(hidden, 1);
  l1->activation = relu;
  struct layer* l2 = (struct layer*) malloc(sizeof(struct layer));
  l2->weight = make_tensor(4, hidden);
  l2->bias = make_tensor(4, 1);
  l2->activation = identity;
  struct tensor* input = make_tensor(features, 1);
  struct tensor* mid = make_tensor(hidden, 1);
  struct tensor* out = make_tensor(4, 1);
  double total = 0.0;
  for (int it = 0; it < %d; it++) {
    for (int i = 0; i < features; i++) {
      input->data[i] = (double) ((it + i) %% 11) * 0.2;
    }
    forward(l1, input, mid);
    forward(l2, mid, out);
    total = total + out->data[it %% 4];
  }
  printf("mlp output %%f\n", total);
  return 0;
}
|}
      features hidden iters

let tensor_stencil ~n ~iters =
  prelude
  ^ Printf.sprintf
      {|
/* a PyTorch-style operator: data lives behind tensor objects, each row
   is processed by a kernel helper taking the tensors as arguments */
struct tensor {
  long len;
  double* data;
};
struct tensor* src;
struct tensor* dst;
struct tensor* make(long len) {
  struct tensor* t = (struct tensor*) malloc(sizeof(struct tensor));
  t->len = len;
  t->data = (double*) malloc(len * sizeof(double));
  for (long i = 0; i < len; i++) {
    t->data[i] = (double) (i %% 13) * 0.5;
  }
  return t;
}
void blur_row(struct tensor* a, struct tensor* b, long lo, long hi) {
  double* x = a->data;
  double* y = b->data;
  for (long i = lo; i < hi; i++) {
    y[i] = 0.25 * x[i - 1] + 0.5 * x[i] + 0.25 * x[i + 1];
  }
}
int main(void) {
  int n = %d;
  src = make(n);
  dst = make(n);
  for (int it = 0; it < %d; it++) {
    /* operator dispatch granularity: 32-element tiles, like an
       interpreter issuing kernel calls */
    for (long lo = 1; lo + 32 < n; lo = lo + 32) {
      blur_row(src, dst, lo, lo + 32);
    }
    struct tensor* tmp = src;
    src = dst;
    dst = tmp;
  }
  double sum = 0.0;
  double* d = src->data;
  for (int i = 0; i < n; i++) { sum = sum + d[i]; }
  printf("tensor stencil %%f\n", sum);
  return 0;
}
|}
      n iters

let http_server ~requests =
  prelude
  ^ Printf.sprintf
      {|
struct request {
  char url[64];
  long method;
  long status;
};
struct handler {
  const char* prefix;
  long (*serve)(struct request* r);
};
long serve_static(struct request* r) {
  r->status = 200;
  return strlen(r->url);
}
long serve_api(struct request* r) {
  r->status = r->method == 1 ? 201 : 200;
  return 16;
}
long serve_notfound(struct request* r) {
  r->status = 404;
  return 0;
}
struct handler* routes[3];
struct handler* make_route(const char* prefix, long (*serve)(struct request* r)) {
  struct handler* h = (struct handler*) malloc(sizeof(struct handler));
  h->prefix = prefix;
  h->serve = serve;
  return h;
}
long parse_headers(struct request* r) {
  /* header scan: hash each byte of the url, the parsing work that
     dominates real request handling */
  long h = 5381;
  char* u = r->url;
  long i = 0;
  while (u[i] && i < 64) {
    h = (h * 33 + u[i]) %% 1000000007;
    i = i + 1;
  }
  return h;
}
long dispatch(struct request* r) {
  long h = parse_headers(r);
  for (int i = 0; i < 2; i++) {
    struct handler* hd = routes[i];
    if (strstr(r->url, hd->prefix) == r->url) {
      return hd->serve(r) + h %% 2;
    }
  }
  return routes[2]->serve(r) + h %% 2;
}
int main(void) {
  routes[0] = make_route("/static", serve_static);
  routes[1] = make_route("/api", serve_api);
  routes[2] = make_route("", serve_notfound);
  struct request* r = (struct request*) malloc(sizeof(struct request));
  long bytes = 0;
  long ok = 0;
  for (int i = 0; i < %d; i++) {
    switch (i %% 3) {
    case 0:
      strcpy(r->url, "/static/index.html");
      break;
    case 1:
      strcpy(r->url, "/api/v1/items");
      break;
    default:
      strcpy(r->url, "/favicon.ico");
    }
    r->method = i %% 2;
    bytes = bytes + dispatch(r);
    if (r->status < 400) { ok = ok + 1; }
  }
  printf("served %%ld ok %%ld bytes\n", ok, bytes);
  return 0;
}
|}
      requests

let su3_lattice ~sites ~sweeps =
  prelude
  ^ Printf.sprintf
      {|
/* lattice QCD flavour (milc): 3x3 complex-ish matrix multiplies over a
   flat lattice; pure double arrays, no pointers in the hot loop */
double lat_re[%d];
double lat_im[%d];
int main(void) {
  int n = %d;
  for (int i = 0; i < 9 * n; i++) {
    lat_re[i] = (double) (i %% 7) * 0.25;
    lat_im[i] = (double) (i %% 5) * 0.125;
  }
  double plaq = 0.0;
  for (int sweep = 0; sweep < %d; sweep++) {
    for (int s = 0; s + 1 < n; s++) {
      long a = 9 * s;
      long b = 9 * (s + 1);
      /* trace of the 3x3 product, complex arithmetic unrolled *)
       */
      double tr_re = 0.0;
      double tr_im = 0.0;
      for (int i = 0; i < 3; i++) {
        for (int k = 0; k < 3; k++) {
          double xr = lat_re[a + 3 * i + k];
          double xi = lat_im[a + 3 * i + k];
          double yr = lat_re[b + 3 * k + i];
          double yi = lat_im[b + 3 * k + i];
          tr_re = tr_re + xr * yr - xi * yi;
          tr_im = tr_im + xr * yi + xi * yr;
        }
      }
      plaq = plaq + tr_re * 0.333 + tr_im * 0.1;
      lat_re[a] = lat_re[a] * 0.999 + plaq * 0.000001;
    }
  }
  printf("milc plaquette %%f\n", plaq);
  return 0;
}
|}
      (9 * sites) (9 * sites) sites sweeps

let force_field ~atoms ~steps =
  prelude
  ^ Printf.sprintf
      {|
/* molecular dynamics flavour (namd/nab): pairwise short-range forces
   over coordinate arrays with a cutoff. Like real nab, the arrays are
   reached through global pointers (the molecule structure's coordinate
   and force views) hoisted into locals per step; the pointers precede
   every writable array, out of overflow-window reach. */
double* pos_x;
double* pos_y;
double* frc_x;
double* frc_y;
double px[%d];
double py[%d];
double fx[%d];
double fy[%d];
int main(void) {
  int n = %d;
  pos_x = px;
  pos_y = py;
  frc_x = fx;
  frc_y = fy;
  double* ix = pos_x;
  double* iy = pos_y;
  for (int i = 0; i < n; i++) {
    ix[i] = (double) ((i * 13) %% 50);
    iy[i] = (double) ((i * 29) %% 50);
  }
  double energy = 0.0;
  for (int step = 0; step < %d; step++) {
    double* ax = pos_x;
    double* ay = pos_y;
    double* gx = frc_x;
    double* gy = frc_y;
    for (int i = 0; i < n; i++) { gx[i] = 0.0; gy[i] = 0.0; }
    for (int i = 0; i < n; i++) {
      for (int j = i + 1; j < n && j < i + 12; j++) {
        double dx = ax[i] - ax[j];
        double dy = ay[i] - ay[j];
        double r2 = dx * dx + dy * dy + 0.01;
        if (r2 < 100.0) {
          double inv = 1.0 / r2;
          double f = inv * inv - 0.5 * inv;
          gx[i] = gx[i] + f * dx;
          gy[i] = gy[i] + f * dy;
          gx[j] = gx[j] - f * dx;
          gy[j] = gy[j] - f * dy;
          energy = energy + f;
        }
      }
    }
    for (int i = 0; i < n; i++) {
      ax[i] = ax[i] + gx[i] * 0.001;
      ay[i] = ay[i] + gy[i] * 0.001;
    }
  }
  printf("namd energy %%f\n", energy);
  return 0;
}
|}
      atoms atoms atoms atoms atoms steps

let mcts ~playouts =
  prelude
  ^ Printf.sprintf
      {|
/* Monte-Carlo tree search flavour (leela): tree of nodes with child
   pointers, UCB selection, playout stats back-propagation */
struct mnode {
  long visits;
  long wins;
  struct mnode* child[4];
  struct mnode* parent;
};
struct mnode* root;
struct mnode* make_node(struct mnode* parent) {
  struct mnode* n = (struct mnode*) malloc(sizeof(struct mnode));
  n->visits = 0;
  n->wins = 0;
  for (int i = 0; i < 4; i++) { n->child[i] = NULL; }
  n->parent = parent;
  return n;
}
long select_child(struct mnode* n, long seed) {
  long best = 0;
  long best_score = -1;
  for (int i = 0; i < 4; i++) {
    struct mnode* c = n->child[i];
    long score = 0;
    if (!c) { score = 1000 + (seed + i) %% 16; }
    else {
      /* integer UCB: wins/visits scaled, plus an exploration bonus *)
       */
      score = (c->wins * 1000) / (c->visits + 1)
        + (n->visits * 40) / (c->visits + 1);
    }
    if (score > best_score) { best_score = score; best = i; }
  }
  return best;
}
int main(void) {
  root = make_node(NULL);
  long seed = 17;
  for (int p = 0; p < %d; p++) {
    /* selection + expansion *)
     */
    struct mnode* cur = root;
    long depth = 0;
    while (depth < 6) {
      seed = (seed * 1103515245 + 12345) %% 2147483647;
      long i = select_child(cur, seed);
      if (!cur->child[i]) {
        cur->child[i] = make_node(cur);
        cur = cur->child[i];
        depth = depth + 1;
        break;
      }
      cur = cur->child[i];
      depth = depth + 1;
    }
    /* playout: hash arithmetic standing in for the simulated game *)
     */
    long result = 0;
    for (int k = 0; k < 24; k++) {
      seed = (seed * 6364136223846793005 + 1442695040888963407) %% 2147483647;
      result = result ^ (seed %% 3);
    }
    /* back-propagation through parent pointers *)
     */
    while (cur) {
      cur->visits = cur->visits + 1;
      cur->wins = cur->wins + (result %% 2);
      cur = cur->parent;
    }
  }
  printf("mcts visits %%ld wins %%ld\n", root->visits, root->wins);
  return 0;
}
|}
      playouts

let grid_pathfind ~dim ~searches =
  prelude
  ^ Printf.sprintf
      {|
/* A* style grid search: open-list of node objects with parent pointers
   (the astar archetype: mixed array scans and pointer chasing) */
struct pnode {
  long x;
  long y;
  long cost;
  struct pnode* parent;
};
long grid[%d];
struct pnode* open_list[128];
long open_count;
long heuristic(long x, long y, long gx, long gy) {
  long dx = x - gx;
  long dy = y - gy;
  if (dx < 0) { dx = -dx; }
  if (dy < 0) { dy = -dy; }
  return dx + dy;
}
int main(void) {
  int dim = %d;
  for (int i = 0; i < dim * dim; i++) {
    grid[i] = (i * 2654435761) %% 7 == 0 ? 1 : 0;
  }
  long total = 0;
  for (int s = 0; s < %d; s++) {
    long gx = (s * 13) %% dim;
    long gy = (s * 29) %% dim;
    open_count = 0;
    struct pnode* start = (struct pnode*) malloc(sizeof(struct pnode));
    start->x = 0;
    start->y = 0;
    start->cost = 0;
    start->parent = NULL;
    open_list[open_count] = start;
    open_count = open_count + 1;
    long expanded = 0;
    while (open_count > 0 && expanded < 64) {
      /* pop the cheapest node */
      long best = 0;
      for (long i = 1; i < open_count; i++) {
        long fi = open_list[i]->cost
          + heuristic(open_list[i]->x, open_list[i]->y, gx, gy);
        long fb = open_list[best]->cost
          + heuristic(open_list[best]->x, open_list[best]->y, gx, gy);
        if (fi < fb) { best = i; }
      }
      struct pnode* cur = open_list[best];
      open_list[best] = open_list[open_count - 1];
      open_count = open_count - 1;
      expanded = expanded + 1;
      if (cur->x == gx && cur->y == gy) {
        /* walk the parent chain to measure the path */
        struct pnode* w = cur;
        while (w) { total = total + 1; w = w->parent; }
        break;
      }
      /* expand right and down neighbours */
      for (int d = 0; d < 2; d++) {
        long nx = cur->x + (d == 0 ? 1 : 0);
        long ny = cur->y + (d == 1 ? 1 : 0);
        if (nx < dim && ny < dim && grid[ny * dim + nx] == 0
            && open_count < 127) {
          struct pnode* n = (struct pnode*) malloc(sizeof(struct pnode));
          n->x = nx;
          n->y = ny;
          n->cost = cur->cost + 1;
          n->parent = cur;
          open_list[open_count] = n;
          open_count = open_count + 1;
        }
      }
    }
  }
  printf("astar total %%ld\n", total);
  return 0;
}
|}
      (dim * dim) dim searches

let board_scan ~dim ~plays =
  prelude
  ^ Printf.sprintf
      {|
/* Go-engine style board scanning: liberty counts and pattern hashes over
   a flat board with occasional group-structure updates (gobmk) */
long board[%d];
struct grp {
  long stones;
  struct grp* next;
};
struct grp* groups[%d];
long count_liberties(long pos, long dim) {
  long libs = 0;
  long x = pos %% dim;
  long y = pos / dim;
  if (x > 0 && board[pos - 1] == 0) { libs = libs + 1; }
  if (x < dim - 1 && board[pos + 1] == 0) { libs = libs + 1; }
  if (y > 0 && board[pos - dim] == 0) { libs = libs + 1; }
  if (y < dim - 1 && board[pos + dim] == 0) { libs = libs + 1; }
  return libs;
}
int main(void) {
  int dim = %d;
  int cells = dim * dim;
  for (int i = 0; i < cells; i++) {
    board[i] = 0;
    groups[i] = NULL;
  }
  long seed = 7;
  long captures = 0;
  long hash = 5381;
  for (int p = 0; p < %d; p++) {
    seed = (seed * 1103515245 + 12345) %% 2147483647;
    long pos = seed %% cells;
    long colour = 1 + p %% 2;
    if (board[pos] == 0) {
      board[pos] = colour;
      struct grp* g = (struct grp*) malloc(sizeof(struct grp));
      g->stones = 1;
      g->next = NULL;
      /* merge with the neighbour's group if one exists */
      if (pos > 0 && groups[pos - 1]) {
        g->next = groups[pos - 1];
        g->stones = g->stones + groups[pos - 1]->stones;
      }
      groups[pos] = g;
      if (count_liberties(pos, dim) == 0) {
        board[pos] = 0;
        groups[pos] = NULL;
        captures = captures + 1;
      }
    }
    /* full-board pattern scan, the hot loop of real gobmk *)
     */
    for (int i = 0; i < cells; i++) {
      hash = (hash * 33 + board[i] * 7 + count_liberties(i, dim))
        %% 1000000007;
    }
  }
  printf("gobmk hash %%ld captures %%ld\n", hash, captures);
  return 0;
}
|}
      (dim * dim) (dim * dim) dim plays

let motion_estimate ~frame ~blocks =
  prelude
  ^ Printf.sprintf
      {|
/* H.264-style motion estimation: sum-of-absolute-differences over byte
   frames with a small search window (h264ref) */
char ref_frame[%d];
char cur_frame[%d];
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    ref_frame[i] = (char) ((i * 31) %% 251);
    cur_frame[i] = (char) ((i * 31 + i / 64) %% 251);
  }
  long total_sad = 0;
  long best_vectors = 0;
  for (int b = 0; b < %d; b++) {
    long base = (b * 97) %% (n - 80);
    long best = 1000000;
    long best_off = 0;
    for (long off = 0; off < 16; off++) {
      long sad = 0;
      for (long i = 0; i < 64; i++) {
        long d = cur_frame[base + i] - ref_frame[base + i + off];
        if (d < 0) { d = -d; }
        sad = sad + d;
      }
      if (sad < best) { best = sad; best_off = off; }
    }
    total_sad = total_sad + best;
    best_vectors = best_vectors + best_off;
  }
  printf("h264 sad %%ld vectors %%ld\n", total_sad, best_vectors);
  return 0;
}
|}
      frame frame frame blocks

let huffman ~symbols ~rounds =
  prelude
  ^ Printf.sprintf
      {|
/* nbench Huffman works over static index arrays, not heap pointers */
long weight[%d];
long left[%d];
long right[%d];
long heap_idx[%d];
long heap_size;
void heap_push(long node) {
  long i = heap_size;
  heap_size = heap_size + 1;
  heap_idx[i] = node;
  while (i > 0 && weight[heap_idx[(i - 1) / 2]] > weight[heap_idx[i]]) {
    long tmp = heap_idx[i];
    heap_idx[i] = heap_idx[(i - 1) / 2];
    heap_idx[(i - 1) / 2] = tmp;
    i = (i - 1) / 2;
  }
}
long heap_pop(void) {
  long top = heap_idx[0];
  heap_size = heap_size - 1;
  heap_idx[0] = heap_idx[heap_size];
  long i = 0;
  while (1) {
    long l = 2 * i + 1;
    long r = 2 * i + 2;
    long best = i;
    if (l < heap_size && weight[heap_idx[l]] < weight[heap_idx[best]]) { best = l; }
    if (r < heap_size && weight[heap_idx[r]] < weight[heap_idx[best]]) { best = r; }
    if (best == i) { break; }
    long tmp = heap_idx[i];
    heap_idx[i] = heap_idx[best];
    heap_idx[best] = tmp;
    i = best;
  }
  return top;
}
long depth_sum(long node, long depth) {
  if (left[node] < 0 && right[node] < 0) { return depth * weight[node]; }
  long s = 0;
  if (left[node] >= 0) { s = s + depth_sum(left[node], depth + 1); }
  if (right[node] >= 0) { s = s + depth_sum(right[node], depth + 1); }
  return s;
}
int main(void) {
  int m = %d;
  long total = 0;
  for (int round = 0; round < %d; round++) {
    heap_size = 0;
    long next = m;
    for (int i = 0; i < m; i++) {
      weight[i] = (i * 37 + round) %% 100 + 1;
      left[i] = -1;
      right[i] = -1;
      heap_push(i);
    }
    while (heap_size > 1) {
      long a = heap_pop();
      long b = heap_pop();
      weight[next] = weight[a] + weight[b];
      left[next] = a;
      right[next] = b;
      heap_push(next);
      next = next + 1;
    }
    total = total + depth_sum(heap_pop(), 0);
  }
  printf("huffman bits %%ld\n", total);
  return 0;
}
|}
      (2 * symbols) (2 * symbols) (2 * symbols) (2 * symbols) symbols rounds

let neural_net ~neurons ~epochs =
  prelude
  ^ Printf.sprintf
      {|
double w1[%d];
double w2[%d];
double hidden_out[%d];
void apply_gradient(double* w, double* acts, double scale, long n) {
  for (long i = 0; i < n; i++) {
    w[i] = w[i] - scale * acts[i];
  }
}
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    w1[i] = 0.1 + (double) (i %% 5) * 0.05;
    w2[i] = 0.2 - (double) (i %% 3) * 0.04;
  }
  double out = 0.0;
  for (int e = 0; e < %d; e++) {
    double input = (double) (e %% 10) * 0.1;
    out = 0.0;
    for (int i = 0; i < n; i++) {
      double h = input * w1[i];
      if (h < 0.0) { h = 0.0; }
      hidden_out[i] = h;
      out = out + h * w2[i];
    }
    double err = out - 0.5;
    apply_gradient(w2, hidden_out, 0.01 * err, n);
    apply_gradient(w1, w2, 0.01 * err * input, n);
  }
  printf("nn out %%f\n", out);
  return 0;
}
|}
      neurons neurons neurons neurons epochs

let lu_decomp ~n ~rounds =
  prelude
  ^ Printf.sprintf
      {|
double a[%d];
void eliminate(double* row, double* pivot, double f, long from, long to) {
  for (long j = from; j < to; j++) {
    row[j] = row[j] - f * pivot[j];
  }
}
int main(void) {
  int n = %d;
  double det = 0.0;
  for (int r = 0; r < %d; r++) {
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) {
        a[i * n + j] = (double) (((i + 1) * (j + 2) + r) %% 17) + (i == j ? 40.0 : 0.0);
      }
    }
    for (int k = 0; k < n; k++) {
      for (int i = k + 1; i < n; i++) {
        double f = a[i * n + k] / a[k * n + k];
        eliminate(&a[i * n], &a[k * n], f, k, n);
      }
    }
    det = 1.0;
    for (int k = 0; k < n; k++) { det = det * a[k * n + k]; }
  }
  printf("lu det %%f\n", det);
  return 0;
}
|}
      (n * n) n rounds

let fourier ~terms =
  prelude
  ^ Printf.sprintf
      {|
double coeffs[%d];
double poly(double x) {
  return x * x * x - 2.0 * x * x + x - 1.0;
}
double integrate(int harmonic, int cosine) {
  double sum = 0.0;
  double step = 0.01;
  double x = 0.0;
  while (x < 2.0) {
    /* truncated-series sin/cos to stay within MiniC's surface */
    double angle = (double) harmonic * 3.141592653589793 * x;
    while (angle > 6.283185307179586) { angle = angle - 6.283185307179586; }
    double a2 = angle * angle;
    double s = angle * (1.0 - a2 / 6.0 + a2 * a2 / 120.0 - a2 * a2 * a2 / 5040.0);
    double c = 1.0 - a2 / 2.0 + a2 * a2 / 24.0 - a2 * a2 * a2 / 720.0;
    sum = sum + poly(x) * (cosine ? c : s) * step;
    x = x + step;
  }
  return sum;
}
int main(void) {
  int terms = %d;
  for (int k = 0; k < terms; k++) {
    coeffs[k] = integrate(k, k %% 2);
  }
  double sum = 0.0;
  for (int k = 0; k < terms; k++) { sum = sum + coeffs[k]; }
  printf("fourier %%f\n", sum);
  return 0;
}
|}
      terms terms

let bitfield ~n ~rounds =
  prelude
  ^ Printf.sprintf
      {|
long bitmap[%d];
int main(void) {
  int n = %d;
  for (int r = 0; r < %d; r++) {
    for (int i = 0; i < n; i++) { bitmap[i] = 0; }
    for (int i = 0; i < n * 64; i = i + 3) {
      bitmap[i / 64] = bitmap[i / 64] | (1 << (i %% 64));
    }
    for (int i = 0; i < n * 64; i = i + 7) {
      bitmap[i / 64] = bitmap[i / 64] & ~(1 << (i %% 64));
    }
  }
  long pop = 0;
  for (int i = 0; i < n; i++) {
    long w = bitmap[i];
    while (w) {
      pop = pop + (w & 1);
      w = (w >> 1) & 9223372036854775807;
    }
  }
  printf("bitfield pop %%ld\n", pop);
  return 0;
}
|}
      n n rounds

let assignment ~n ~rounds =
  prelude
  ^ Printf.sprintf
      {|
long cost[%d];
long assigned[%d];
int main(void) {
  int n = %d;
  long total = 0;
  for (int r = 0; r < %d; r++) {
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) {
        cost[i * n + j] = ((i + 1) * (j + 3) + r * 7) %% 100;
      }
      assigned[i] = -1;
    }
    for (int i = 0; i < n; i++) {
      long best = -1;
      long best_cost = 1000000;
      for (int j = 0; j < n; j++) {
        long taken = 0;
        for (int k = 0; k < i; k++) {
          if (assigned[k] == j) { taken = 1; }
        }
        if (!taken && cost[i * n + j] < best_cost) {
          best_cost = cost[i * n + j];
          best = j;
        }
      }
      assigned[i] = best;
      total = total + best_cost;
    }
  }
  printf("assignment cost %%ld\n", total);
  return 0;
}
|}
      (n * n) n n rounds

let idea_cipher ~blocks =
  prelude
  ^ Printf.sprintf
      {|
long keys[52];
long data[%d];
long out_data[%d];
void store_block(long* dst, long x1, long x2, long x3, long x4) {
  dst[0] = x1;
  dst[1] = x2;
  dst[2] = x3;
  dst[3] = x4;
}
long mul_mod(long a, long b) {
  if (a == 0) { a = 65536; }
  if (b == 0) { b = 65536; }
  return (a * b) %% 65537 %% 65536;
}
int main(void) {
  int blocks = %d;
  for (int i = 0; i < 52; i++) { keys[i] = (i * 2654435761) %% 65536; }
  for (int i = 0; i < blocks; i++) { data[i] = (i * 40503) %% 65536; }
  long check = 0;
  for (int i = 0; i + 3 < blocks; i = i + 4) {
    long x1 = data[i];
    long x2 = data[i + 1];
    long x3 = data[i + 2];
    long x4 = data[i + 3];
    for (int round = 0; round < 8; round++) {
      x1 = mul_mod(x1, keys[round * 6]);
      x2 = (x2 + keys[round * 6 + 1]) %% 65536;
      x3 = (x3 + keys[round * 6 + 2]) %% 65536;
      x4 = mul_mod(x4, keys[round * 6 + 3]);
      long t = x1 ^ x3;
      t = mul_mod(t, keys[round * 6 + 4]);
      long u = ((x2 ^ x4) + t) %% 65536;
      u = mul_mod(u, keys[round * 6 + 5]);
      x1 = x1 ^ u;
      x3 = x3 ^ u;
      x2 = x2 ^ t;
      x4 = x4 ^ t;
    }
    store_block(&out_data[i], x1, x2, x3, x4);
    check = (check + out_data[i] + x2 + x3 + x4) %% 1000000007;
  }
  printf("idea check %%ld\n", check);
  return 0;
}
|}
      blocks blocks blocks

let numeric_sort ~n ~rounds =
  prelude
  ^ Printf.sprintf
      {|
long arr[%d];
long shadow[%d];
void copy_longs(long* src, long* dst, long n) {
  for (long i = 0; i < n; i++) {
    dst[i] = src[i];
  }
}
void sift_down(long start, long end) {
  long root = start;
  while (2 * root + 1 <= end) {
    long child = 2 * root + 1;
    if (child + 1 <= end && arr[child] < arr[child + 1]) { child = child + 1; }
    if (arr[root] < arr[child]) {
      long tmp = arr[root];
      arr[root] = arr[child];
      arr[child] = tmp;
      root = child;
    } else {
      return;
    }
  }
}
int main(void) {
  int n = %d;
  long check = 0;
  for (int r = 0; r < %d; r++) {
    long seed = 42 + r;
    for (int i = 0; i < n; i++) {
      seed = (seed * 1103515245 + 12345) %% 2147483647;
      arr[i] = seed %% 100000;
    }
    for (long start = (n - 2) / 2; start >= 0; start--) {
      sift_down(start, n - 1);
    }
    for (long end = n - 1; end > 0; end--) {
      long tmp = arr[end];
      arr[end] = arr[0];
      arr[0] = tmp;
      sift_down(0, end - 1);
    }
    copy_longs(arr, shadow, n);
    check = (check + shadow[n / 2]) %% 1000000007;
  }
  printf("numsort %%ld\n", check);
  return 0;
}
|}
      n n n rounds

let string_sort ~n ~rounds =
  prelude
  ^ Printf.sprintf
      {|
/* nbench's string sort keeps strings in a flat arena and sorts an
   offset array (not pointers) - so RSTI has almost nothing to do here */
long offsets[%d];
char storage[%d];
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    storage[i * 8] = (char) ('a' + (i * 7) %% 26);
    storage[i * 8 + 1] = (char) ('a' + (i * 13) %% 26);
    storage[i * 8 + 2] = (char) ('a' + (i * 29) %% 26);
    storage[i * 8 + 3] = 0;
    offsets[i] = i * 8;
  }
  long swaps = 0;
  for (int r = 0; r < %d; r++) {
    for (int i = 0; i < n - 1; i++) {
      for (int j = 0; j < n - 1 - i; j++) {
        long a = offsets[j];
        long b = offsets[j + 1];
        long k = 0;
        long diff = 0;
        while (k < 8) {
          char ca = storage[a + k];
          char cb = storage[b + k];
          if (ca != cb) { diff = ca - cb; k = 8; }
          else {
            if (ca == 0) { k = 8; } else { k = k + 1; }
          }
        }
        if (diff > 0) {
          offsets[j] = b;
          offsets[j + 1] = a;
          swaps = swaps + 1;
        }
      }
    }
  }
  printf("strsort swaps %%ld\n", swaps);
  return 0;
}
|}
      n (8 * n) n rounds

let fp_emulation ~n ~rounds =
  prelude
  ^ Printf.sprintf
      {|
long mantissa[%d];
long exponent[%d];
void renormalize(long* m, long* e, long n) {
  for (long i = 0; i < n; i++) {
    while (m[i] >= 1048576) { m[i] = m[i] >> 1; e[i] = e[i] + 1; }
  }
}
int main(void) {
  int n = %d;
  for (int i = 0; i < n; i++) {
    mantissa[i] = (i * 69069 + 1) %% 1048576;
    exponent[i] = i %% 32 - 16;
  }
  long check = 0;
  for (int r = 0; r < %d; r++) {
    for (int i = 0; i + 1 < n; i++) {
      long ma = mantissa[i];
      long mb = mantissa[i + 1];
      long ea = exponent[i];
      long eb = exponent[i + 1];
      while (ea < eb) { ma = ma >> 1; ea = ea + 1; }
      while (eb < ea) { mb = mb >> 1; eb = eb + 1; }
      long ms = ma + mb;
      long es = ea;
      while (ms >= 1048576) { ms = ms >> 1; es = es + 1; }
      mantissa[i] = ms;
      exponent[i] = es;
    }
    renormalize(mantissa, exponent, n);
    check = (check + mantissa[n / 2]) %% 1000000007;
  }
  printf("fpemu %%ld\n", check);
  return 0;
}
|}
      n n n rounds

(* The ten nbench kernels (the suite PARTS was evaluated on, which the
   paper uses for its head-to-head comparison in section 6.3.2). *)

let w = Workload.make ~suite:Workload.Nbench

let all : Workload.t list =
  [
    w ~name:"numeric-sort" ~description:"heap sort of long arrays"
      (Kernels.numeric_sort ~n:600 ~rounds:4);
    w ~name:"string-sort" ~description:"pointer-array string bubble sort"
      (Kernels.string_sort ~n:90 ~rounds:3);
    w ~name:"bitfield" ~description:"bit-map set/clear sweeps"
      (Kernels.bitfield ~n:60 ~rounds:18);
    w ~name:"fp-emulation" ~description:"fixed-point mantissa/exponent loops"
      (Kernels.fp_emulation ~n:500 ~rounds:10);
    w ~name:"fourier" ~description:"numerical integration of coefficients"
      (Kernels.fourier ~terms:10);
    w ~name:"assignment" ~description:"cost-matrix greedy assignment"
      (Kernels.assignment ~n:28 ~rounds:4);
    w ~name:"idea" ~description:"IDEA-style cipher rounds"
      (Kernels.idea_cipher ~blocks:600);
    w ~name:"huffman" ~description:"Huffman tree build + depth walk"
      (Kernels.huffman ~symbols:60 ~rounds:10);
    w ~name:"neural-net" ~description:"back-propagation over double arrays"
      (Kernels.neural_net ~neurons:120 ~epochs:60);
    w ~name:"lu-decomposition" ~description:"dense LU factorisation"
      (Kernels.lu_decomp ~n:22 ~rounds:5);
  ]

(* A named benchmark workload: a MiniC program standing in for one of the
   paper's benchmarks, with the suite it belongs to and the exit value the
   runner asserts (instrumentation must never change program results). *)

type suite = Spec2006 | Spec2017 | Nbench | Pytorch | Nginx

let suite_to_string = function
  | Spec2006 -> "SPEC CPU2006"
  | Spec2017 -> "SPEC CPU2017"
  | Nbench -> "nbench"
  | Pytorch -> "CPython PyTorch"
  | Nginx -> "NGINX"

type t = {
  name : string;        (* the paper's benchmark name, e.g. "perlbench" *)
  suite : suite;
  description : string; (* which pointer behaviour of the original the
                           kernel models *)
  source : string;      (* MiniC, executed by the runner *)
  analysis_extra : string;
      (* additional never-executed code joined to [source] for the static
         analyses (Table 3, pp census): generated modules scaling the
         variable/type population to 1/8 of the real benchmark's, since a
         hot-loop kernel cannot also carry a full program's symbol table *)
}

let make ?(analysis_extra = "") ~name ~suite ~description source =
  { name; suite; description; source; analysis_extra }

let analysis_source t =
  if t.analysis_extra = "" then t.source
  else t.source ^ "\n" ^ t.analysis_extra

(** Seeded random MiniC program generator.

    Produces well-typed, terminating programs exercising the pointer
    features STI cares about: struct definitions with pointer fields,
    heap allocation, field access, pointer arguments, void* casts (so the
    STC merge has work to do), function-pointer dispatch, loops and
    arithmetic. Programs print a checksum, so the property tests can
    assert that instrumentation does not change behaviour.

    The same seed always yields the same program. *)

type config = {
  n_structs : int;      (** struct types to define (>= 1) *)
  n_funcs : int;        (** worker functions (>= 1) *)
  n_globals : int;      (** global pointer + scalar variables *)
  loop_iters : int;     (** bound for every generated loop *)
  cast_bias : float;    (** probability a pointer argument goes through
                            a void* round-trip cast *)
  prefix : string;      (** prepended to every generated name, so a
                            generated module can be concatenated with
                            other code without collisions *)
  emit_main : bool;     (** false: omit [main] and global initialisation —
                            a library-style module used to scale the
                            *static* population behind Table 3 and the
                            pointer-to-pointer census *)
  pp_typed_rate : float;
      (** chance a worker passes a typed double pointer (a census
          site that keeps its original type) *)
  pp_erased_rate : float;
      (** chance of a type-erasing [void**] argument pass — the rare
          case needing the CE/FE mechanism (25 of 7,489 in the paper) *)
}

val default : config
(** 3 structs, 5 functions, 4 globals, loops of 8, cast bias 0.3, no
    prefix, with [main], no pointer-to-pointer traffic. *)

val generate : ?config:config -> seed:int64 -> unit -> string
(** Generate a self-contained MiniC translation unit. *)

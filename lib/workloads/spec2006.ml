(* The 18 SPEC CPU2006 benchmarks of the paper's Table 3 / Figure 10,
   each mapped to the kernel archetype matching its published pointer
   behaviour. Sizes are chosen so every kernel interprets in well under a
   second; overhead is a ratio, so absolute size only needs to dominate
   startup noise. *)

(* The static population behind Table 3 and the pp census: each benchmark
   carries a generated, never-executed module scaled to 1/8 of the real
   benchmark's type count (paper Table 3's NT column), with
   pointer-to-pointer traffic at rates matching the paper's census
   (7,489 sites, 25 of them type-losing, across the suite). *)
let paper_nt =
  [
    ("perlbench", 155); ("bzip2", 25); ("mcf", 12); ("milc", 55); ("namd", 30);
    ("gobmk", 120); ("dealII", 2546); ("soplex", 129); ("povray", 282);
    ("hmmer", 90); ("libquantum", 13); ("sjeng", 29); ("h264ref", 116);
    ("lbm", 14); ("omnetpp", 255); ("astar", 36); ("sphinx3", 88);
    ("xalancbmk", 2558);
  ]

let population name =
  match List.assoc_opt name paper_nt with
  | None -> ""
  | Some nt ->
      let structs = max 2 (nt / 8) in
      let config =
        {
          Generator.default with
          n_structs = structs;
          n_funcs = max 4 (structs * 2);
          n_globals = max 2 (structs / 2);
          cast_bias = 0.25;
          prefix = "zz_";
          emit_main = false;
          pp_typed_rate = 0.35;
          pp_erased_rate = 0.008;
        }
      in
      let seed = Int64.of_int (Hashtbl.hash name) in
      Generator.generate ~config ~seed ()

let w ~name = Workload.make ~suite:Workload.Spec2006 ~analysis_extra:(population name) ~name

let all : Workload.t list =
  [
    w ~name:"perlbench"
      ~description:"interpreter hash tables + string ops, cast-heavy"
      (Kernels.hash_table ~buckets:64 ~items:300 ~lookups:1200);
    w ~name:"bzip2" ~description:"block-sorting compression over byte arrays"
      (Kernels.compress ~n:2000 ~rounds:6);
    w ~name:"mcf" ~description:"network simplex over arc/node pointer graph"
      (Kernels.network_simplex ~nodes:300 ~iters:20);
    w ~name:"milc" ~description:"lattice QCD: 3x3 complex matrix sweeps"
      (Kernels.su3_lattice ~sites:120 ~sweeps:25);
    w ~name:"namd" ~description:"molecular dynamics pairwise forces"
      (Kernels.force_field ~atoms:120 ~steps:15);
    w ~name:"gobmk" ~description:"Go engine: board scans + liberty counting"
      (Kernels.board_scan ~dim:11 ~plays:40);
    w ~name:"dealII" ~description:"finite elements: adjacency tree walks"
      (Kernels.binary_tree ~nodes:700 ~searches:3000);
    w ~name:"soplex" ~description:"simplex LP over sparse rows"
      (Kernels.sparse_matrix ~rows:250 ~iters:25);
    w ~name:"povray" ~description:"ray tracer: virtual intersect dispatch"
      (Kernels.scene_render ~objects:40 ~rays:400);
    w ~name:"hmmer" ~description:"profile HMM dynamic programming"
      (Kernels.dp_align ~m:120 ~n:400);
    w ~name:"libquantum" ~description:"quantum register bit kernels"
      (Kernels.quantum_gates ~qubits:900 ~rounds:40);
    w ~name:"sjeng" ~description:"chess search: opcode-style dispatch"
      (Kernels.dispatch_table ~rounds:6000);
    w ~name:"h264ref" ~description:"video encoder: motion-estimation SAD search"
      (Kernels.motion_estimate ~frame:2000 ~blocks:40);
    w ~name:"lbm" ~description:"lattice Boltzmann: pure double stencil"
      (Kernels.stencil ~n:2000 ~iters:30);
    w ~name:"omnetpp" ~description:"discrete-event simulation: sorted queue"
      (Kernels.event_queue ~events:900);
    w ~name:"astar" ~description:"A* grid search with parent-pointer nodes"
      (Kernels.grid_pathfind ~dim:14 ~searches:10);
    w ~name:"sphinx3" ~description:"speech decoding: DP over frames"
      (Kernels.dp_align ~m:100 ~n:300);
    w ~name:"xalancbmk" ~description:"XSLT: DOM trees + string keys, cast-heavy"
      (Kernels.hash_table ~buckets:128 ~items:400 ~lookups:1500);
  ]

(** Every attack of the paper's Table 1, as a runnable scenario, plus the
    two motivating examples (Figures 1 and 2).

    Each victim program is a faithful miniature of the real vulnerable
    code path: same data-structure shape (function pointer in a heap
    object, pointer array, data pointer guarding a check), same function
    names as the paper's table, and a corruption step standing in for the
    memory-corruption vulnerability (the paper's threat model grants the
    attacker arbitrary write — section 3). *)

val newton_cscfi : Scenario.t
(** NEWTON CsCFI: nginx [c->send_chain] redirected to libc [malloc]. *)

val aocr_nginx1 : Scenario.t
(** AOCR NGINX Attack 1: [task->handler] → [_IO_new_file_overflow]. *)

val aocr_nginx2 : Scenario.t
(** AOCR NGINX Attack 2: [log->handler] → [ngx_master_process_cycle]. *)

val aocr_apache : Scenario.t
(** AOCR Apache: [eval->errfn] → [ap_get_exec_line]. *)

val control_jujutsu : Scenario.t
(** Control Jujutsu: [ctx->output_filter] → [ngx_execute_proc]. *)

val cve_libtiff : Scenario.t
(** The libtiff CVE of Figure 1: [tif->tif_encoderow] → arbitrary. *)

val cve_python : Scenario.t
(** CVE-2014-1912: CPython [tp->tp_hash] → arbitrary. *)

val coop_rec_g : Scenario.t
(** COOP REC-G (synthetic): [objB->unref] → another class's destructor. *)

val coop_ml_g : Scenario.t
(** COOP ML-G (synthetic): [students\[i\]->decCourseCount] → [~Course]. *)

val pittypat_coop : Scenario.t
(** PittyPat COOP (synthetic): replay of [member_1->registration] (class
    Student) into [member_2->registration] (class Teacher) — a signed-
    pointer substitution, not a raw overwrite. *)

val dop_proftpd : Scenario.t
(** DOP ProFTPd: data-oriented corruption of [&ServerName] from
    [resp_buf]; leaks in place of the server name. *)

val newton_cpi : Scenario.t
(** NEWTON CPI: [v\[index\].get_handler] → libc [dlopen]. *)

val ghttpd : Scenario.t
(** The Figure 2 motivating example: GHTTPD's [ptr] corrupted to bypass
    the ["/.."] check and reach [system]. *)

val table1 : Scenario.t list
(** The twelve Table 1 rows, in the paper's order. *)

val all : Scenario.t list
(** [table1] plus the motivating examples. *)

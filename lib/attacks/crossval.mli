(** Static/dynamic cross-validation of the substitution attack surface.

    The static analyzer ({!Rsti_dataflow.Equiv}) predicts, per
    mechanism, exactly which (donor, victim) replays survive the
    modifier check; the machine is the oracle. Any disagreement is a bug
    in the analyzer, the instrumenter, or the PA model — so this module
    checks both directions:

    - {e catalog}: every scenario in {!Substitution.expected} is run
      dynamically and compared against the static verdict for the same
      (donor, victim) pair — predicted-replayable ⇔ the attack succeeds
      on the machine;
    - {e generated}: fresh candidate replays are derived from the
      analyzer's own non-singleton classes (plus cross-class control
      pairs that must trap) and executed. A candidate victim is a global
      pointer with an unconditional load in some function's entry block
      — triggering the replay at an entry of that function guarantees
      the authentication actually runs — and a candidate donor is any
      signed same-module global. A donor whose cell is still empty at
      trigger time skips the write and is excluded from the comparison
      rather than counted as agreement. *)

type catalog_row = {
  cr_scenario : string;
  cr_mech : Rsti_sti.Rsti_type.mechanism;
  cr_static : bool;              (** predicted replayable *)
  cr_dynamic : Scenario.verdict; (** what the machine did *)
  cr_agree : bool;
}

val catalog : unit -> catalog_row list
(** Run every (scenario, mechanism) pair of {!Substitution.expected}
    and compare machine verdicts against the static prediction. *)

type gen_kind = Same_class | Cross_class

type gen_row = {
  g_program : string;
  g_mech : Rsti_sti.Rsti_type.mechanism;
  g_donor : string;              (** donor global *)
  g_victim : string;             (** victim global *)
  g_trigger : string;            (** function whose entry fires the replay *)
  g_kind : gen_kind;
  g_predicted : bool;            (** static: replay survives the check *)
  g_detected : bool option;      (** dynamic; [None] = skipped (empty donor) *)
  g_agree : bool option;         (** [detected = not predicted]; [None] if skipped *)
}

type gen_batch = {
  gb_rows : gen_row list;
  gb_pool_same : int;   (** same-class pairs available before the cap *)
  gb_pool_cross : int;  (** cross-class control pairs available before the cap *)
}

val generated :
  ?max_same:int ->
  ?max_cross:int ->
  name:string ->
  source:string ->
  Rsti_sti.Rsti_type.mechanism ->
  gen_batch
(** Generate and execute candidate replays for one program under one
    mechanism: up to [max_same] (default 2) same-class pairs and
    [max_cross] (default 1) cross-class controls, picked
    deterministically (non-[main] trigger functions first, then
    lexicographic). The pool sizes report how many pairs the caps
    dropped. *)

type summary = {
  s_catalog : catalog_row list;
  s_generated : gen_row list;
  s_checked : int;         (** comparisons performed (skips excluded) *)
  s_disagreements : int;   (** MUST be 0 *)
  s_skipped : int;         (** empty-donor candidates excluded *)
  s_pool_same : int;
  s_pool_cross : int;
}

val corpus : (string * string) list
(** Hand-written crossval victim programs beyond the catalog: a size-3
    equivalence class, a cast-merged trio, and a scope-split pair, each
    with entry-block authentications so generated triggers always land. *)

val default_programs : unit -> (string * string) list
(** The four catalog victim programs plus {!corpus}, as [(name, source)]
    pairs. *)

val summarize :
  ?jobs:int -> ?programs:(string * string) list -> unit -> summary
(** The full cross-validation: the catalog plus generated candidates for
    every [(name, source)] program (default: the four catalog programs),
    under every mechanism (STWC/STC/STL/PARTS), parallelized over
    programs. *)

val mechanisms : Rsti_sti.Rsti_type.mechanism list

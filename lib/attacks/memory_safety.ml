module Interp = Rsti_machine.Interp
module RT = Rsti_sti.Rsti_type

let info ty scope = { Scenario.ty; scope }

(* ------------------------------------------------------------------ *)
(* Spatial: overflow into an adjacent function pointer                 *)
(* ------------------------------------------------------------------ *)

let spatial_overflow =
  {
    Scenario.id = "mem-spatial-fp";
    paper_row = "spatial violation into a code pointer (Table 2)";
    category = Scenario.Control_flow;
    source = Scenario.Synthetic;
    corrupted = "sess->on_close";
    target = "attacker bytes (then &system via partial overwrite)";
    original = info "void (*)(long)" "session_close, main";
    corrupted_info = info "raw overflow bytes" "n/a";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
extern int system(const char* cmd);
struct session {
  char name[16];
  void (*on_close)(long id);
};
void normal_close(long id) {
  printf("closed %ld\n", id);
}
struct session* sess;
char* request_name;
void set_name(void) {
  /* the real bug: unbounded strcpy into a 16-byte field */
  strcpy(sess->name, request_name);
}
int main(void) {
  sess = (struct session*) malloc(sizeof(struct session));
  sess->on_close = normal_close;
  request_name = (char*) malloc(64);
  strcpy(request_name, "bob");
  set_name();
  sess->on_close(1);
  set_name();
  sess->on_close(2);
  return 0;
}
|};
    attacks =
      [
        {
          (* The attacker only controls the *input string*: before the
             second set_name, the request is made long enough that the
             victim's own strcpy runs past the 16-byte field and lays the
             little-endian bytes of a target address over on_close (a
             classic partial overwrite: copying stops at the address's
             first zero byte, the stale high bytes complete the value). *)
          Interp.trigger = Interp.On_call ("set_name", 2);
          action =
            (fun intr ->
              intr.note "grow request_name past the 16-byte field";
              let target = intr.func_addr "system" in
              let addr_bytes =
                String.init 8 (fun i ->
                    Char.chr
                      (Int64.to_int
                         (Int64.logand
                            (Int64.shift_right_logical target (8 * i))
                            0xFFL)))
              in
              let request =
                Int64.logand (intr.read_word (intr.global_addr "request_name"))
                  0xFFFF_FFFF_FFFFL
              in
              intr.write_string request (String.make 16 'A' ^ addr_bytes));
        };
      ];
    success = Checks.extern_called "system";
  }

(* ------------------------------------------------------------------ *)
(* Spatial: overflow into a same-basic-type data pointer               *)
(* ------------------------------------------------------------------ *)

let spatial_overflow_same_type =
  {
    Scenario.id = "mem-spatial-data";
    paper_row = "spatial violation into a data pointer (Table 2)";
    category = Scenario.Data_oriented;
    source = Scenario.Synthetic;
    corrupted = "entry->payload";
    target = "secret_store";
    original = info "char*" "struct entry, render";
    corrupted_info = info "char* (other scope)" "struct vault";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
struct entry {
  char title[8];
  char* payload;
};
struct vault {
  char* secret;
};
struct entry* page;
struct vault* safe;
void render(int round) {
  printf("render %d: %s\n", round, page->payload);
}
int main(void) {
  safe = (struct vault*) malloc(sizeof(struct vault));
  safe->secret = (char*) malloc(16);
  strcpy(safe->secret, "CLASSIFIED");
  page = (struct entry*) malloc(sizeof(struct entry));
  page->payload = (char*) malloc(16);
  strcpy(page->payload, "public");
  strcpy(page->title, "home");
  render(1);
  render(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("render", 2);
          action =
            (fun intr ->
              (* overflow of title into payload: replay the vault's signed
                 secret pointer into the page's payload slot *)
              intr.note "overflow title[] into entry->payload (replayed vault ptr)";
              match intr.heap_allocs () with
              | _ :: (page, _) :: _ :: (safe, _) :: _ ->
                  intr.write_word (Int64.add page 8L) (intr.read_word safe)
              | _ -> ());
        };
      ];
    success = Checks.output_contains "render 2: CLASSIFIED";
  }

(* ------------------------------------------------------------------ *)
(* Temporal: use-after-free respray                                    *)
(* ------------------------------------------------------------------ *)

let temporal_uaf =
  {
    Scenario.id = "mem-temporal-uaf";
    paper_row = "temporal violation: use-after-free respray (Table 2)";
    category = Scenario.Control_flow;
    source = Scenario.Synthetic;
    corrupted = "conn->on_data (dangling)";
    target = "attacker-sprayed fake object";
    original = info "void (*)(long)" "struct conn, pump";
    corrupted_info = info "raw sprayed pointer" "n/a";
    program =
      {|
extern void* malloc(long n);
extern void free(void* p);
extern int printf(const char *fmt, ...);
struct conn {
  long fd;
  void (*on_data)(long n);
};
void echo_data(long n) {
  printf("echo %ld\n", n);
}
struct conn* dangling;
void pump(int round) {
  dangling->on_data(round);
}
int main(void) {
  dangling = (struct conn*) malloc(sizeof(struct conn));
  dangling->fd = 3;
  dangling->on_data = echo_data;
  pump(1);
  /* the bug: the object is freed but the global keeps pointing at it */
  free((void*) dangling);
  pump(2);
  return 0;
}
|};
    attacks =
      [
        {
          (* after the free (2nd pump is about to run), the attacker
             resprays the freed chunk with a fake object *)
          Interp.trigger = Interp.On_extern ("free", 1);
          action =
            (fun intr ->
              intr.note "respray freed conn with fake object";
              match List.rev (intr.heap_allocs ()) with
              | (obj, _) :: _ ->
                  intr.write_word obj 666L;
                  intr.write_word (Int64.add obj 8L) (intr.func_addr "system")
              | [] -> ());
        };
      ];
    success = Checks.extern_called "system";
  }

let all = [ spatial_overflow; spatial_overflow_same_type; temporal_uaf ]

let expected =
  List.map
    (fun sc -> (sc, List.map (fun m -> (m, Scenario.Detected)) RT.all_mechanisms))
    all

(** Outcome predicates shared by the attack scenarios. *)

val extern_called : string -> Rsti_machine.Interp.outcome -> bool
(** The simulated-libc function was invoked at least once. *)

val extern_called_times : string -> int -> Rsti_machine.Interp.outcome -> bool
(** ... at least [n] times. *)

val func_called : string -> Rsti_machine.Interp.outcome -> bool
(** The defined function was entered at least once. *)

val output_contains : string -> Rsti_machine.Interp.outcome -> bool
(** The program printed the given substring. *)

val exited_zero : Rsti_machine.Interp.outcome -> bool

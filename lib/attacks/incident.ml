(* Security-event forensics over the attack catalogs: run every Table-1
   and Table-2 scenario with the machine's PAC flight recorder on,
   collect the structured incident records of each detected attack, and
   correlate them with the static substitution-attack-surface partition
   (Equiv) — which static class the failing authentication belongs to,
   which class signed the replayed value, and which statically
   replayable gadget edges the dynamic catalog actually exercised. *)

module RT = Rsti_sti.Rsti_type
module Interp = Rsti_machine.Interp
module Equiv = Rsti_dataflow.Equiv
module Points_to = Rsti_dataflow.Points_to
module Pipeline = Rsti_engine.Pipeline
module Cache = Rsti_engine.Cache
module Scheduler = Rsti_engine.Scheduler
module Observe = Rsti_observe.Observe
module Json = Observe.Json

let mechanisms = RT.all_mechanisms @ [ RT.Parts ]
let default_flight = 16

type record = {
  r_table : string;
  r_scenario : string;
  r_paper_row : string;
  r_mech : RT.mechanism;
  r_incident : Interp.incident;
  r_classes : Equiv.cls list;
  r_donor_classes : Equiv.cls list;
  r_pp : bool;
  r_mapped : bool;
}

type run_row = {
  rr_table : string;
  rr_scenario : string;
  rr_mech : RT.mechanism;
  rr_verdict : Scenario.verdict;
  rr_records : record list;
  rr_replay_edges : int;
  rr_feasible_edges : int;
}

type mech_cov = {
  mc_mech : RT.mechanism;
  mc_runs : int;
  mc_detected : int;
  mc_incidents : int;
  mc_mapped : int;
  mc_replays : int;
  mc_raw : int;
  mc_static_replay_edges : int;
  mc_static_feasible_edges : int;
  mc_replayable_total : int;
  mc_replayable_exercised : int;
  mc_nonedges_checked : int;
  mc_latency_cycles : int list;
  mc_latency_instrs : int list;
}

type coverage = {
  cov_flight : int;
  cov_runs : run_row list;
  cov_records : record list;
  cov_mechs : mech_cov list;
  cov_detected : int;
  cov_incidents : int;
  cov_unmapped : int;
  cov_missing : (string * RT.mechanism) list;
  cov_crossval : Crossval.catalog_row list;
}

(* ----------------------------------------------------------------- *)
(* Per-run extraction, memoized                                        *)
(* ----------------------------------------------------------------- *)

(* Attack replays bypass the outcome cache (attack closures are not part
   of any key), but the replay itself is deterministic — so the verdict
   and incident list are a pure function of (program, mechanism, flight
   capacity) and memoize under the engine's [incident] stage. The
   payload crosses the engine boundary serialized ([Marshal] of plain
   data: the incident types carry no closures), because the cache
   library sits below the attack types. *)
let run_key (sc : Scenario.t) mech flight =
  Printf.sprintf "%s|%s|fl%d|inc1"
    (Cache.source_key ~file:(sc.Scenario.id ^ ".c") sc.Scenario.program)
    (RT.mechanism_to_string mech)
    flight

let raw_run (sc : Scenario.t) mech flight :
    Scenario.verdict * Interp.incident list =
  let payload =
    Cache.incident ~key:(run_key sc mech flight) (fun () ->
        let rr = Scenario.run ~flight sc mech in
        Marshal.to_string
          ((rr.Scenario.verdict, rr.Scenario.outcome.Interp.incidents)
            : Scenario.verdict * Interp.incident list)
          [])
  in
  (Marshal.from_string payload 0 : Scenario.verdict * Interp.incident list)

let analyzed (sc : Scenario.t) =
  Pipeline.analyze
    (Pipeline.compile
       (Pipeline.source ~file:(sc.Scenario.id ^ ".c") sc.Scenario.program))

(* ----------------------------------------------------------------- *)
(* Static correlation                                                  *)
(* ----------------------------------------------------------------- *)

(* The window ends with the failing op itself, so its kind tells a
   pointer-to-pointer authentication apart from a slot one. *)
let failing_kind (inc : Interp.incident) =
  match List.rev inc.Interp.inc_window with
  | op :: _ when not op.Interp.op_ok -> op.Interp.op_kind
  | _ -> Interp.Op_auth

(* Flight-recorder ops carry the static modifier constant — exactly the
   class identity of the Equiv partition. Under STL several classes can
   share one (modifier, key) pair (the runtime modifier additionally
   binds the storage address), so the lookup returns the matching set. *)
let classes_of (surface : Equiv.result) ~static_mod ~key =
  List.filter
    (fun c ->
      Int64.equal c.Equiv.c_modifier static_mod && c.Equiv.c_pa_key = key)
    surface.Equiv.r_classes

let in_pp_table pp_table fe =
  List.exists (fun (_, fe') -> Int64.equal fe' fe) pp_table

let donor_resolved surface pp_table = function
  | None -> true (* raw overwrite: no signer to map *)
  | Some op -> (
      match op.Interp.op_kind with
      | Interp.Op_pp_sign -> in_pp_table pp_table op.Interp.op_static_mod
      | _ ->
          classes_of surface ~static_mod:op.Interp.op_static_mod
            ~key:op.Interp.op_key
          <> [])

let make_record ~table ~(scenario : Scenario.t) ~mech ~surface ~pp_table
    (inc : Interp.incident) =
  let pp = failing_kind inc = Interp.Op_pp_auth in
  let classes =
    if pp then []
    else
      classes_of surface ~static_mod:inc.Interp.inc_static_mod
        ~key:inc.Interp.inc_key
  in
  let donor_classes =
    match inc.Interp.inc_signer with
    | Some op when op.Interp.op_kind <> Interp.Op_pp_sign ->
        classes_of surface ~static_mod:op.Interp.op_static_mod
          ~key:op.Interp.op_key
    | _ -> []
  in
  let victim_ok =
    if pp then in_pp_table pp_table inc.Interp.inc_static_mod
    else classes <> []
  in
  let mapped =
    victim_ok && donor_resolved surface pp_table inc.Interp.inc_signer
  in
  {
    r_table = table;
    r_scenario = scenario.Scenario.id;
    r_paper_row = scenario.Scenario.paper_row;
    r_mech = mech;
    r_incident = inc;
    r_classes = classes;
    r_donor_classes = donor_classes;
    r_pp = pp;
    r_mapped = mapped;
  }

(* ----------------------------------------------------------------- *)
(* Collection                                                          *)
(* ----------------------------------------------------------------- *)

let catalog_rows () =
  List.map (fun sc -> ("table1", sc)) Catalog.all
  @ List.map (fun (sc, _) -> ("table2", sc)) Substitution.expected
  @ List.map (fun (sc, _) -> ("table2", sc)) Memory_safety.expected

let run_one ~table (sc : Scenario.t) mech flight =
  let verdict, incidents = raw_run sc mech flight in
  let anal = analyzed sc in
  let surface = Pipeline.attack_surface mech anal in
  let feasible =
    Pipeline.attack_surface ~mode:Points_to.Insensitive mech anal
  in
  let pp_table =
    (Pipeline.result (Pipeline.instrument mech anal))
      .Rsti_rsti.Instrument.pp_table
  in
  let records =
    List.map (make_record ~table ~scenario:sc ~mech ~surface ~pp_table)
      incidents
  in
  {
    rr_table = table;
    rr_scenario = sc.Scenario.id;
    rr_mech = mech;
    rr_verdict = verdict;
    rr_records = records;
    rr_replay_edges = surface.Equiv.r_metrics.Equiv.m_replay_edges;
    rr_feasible_edges = feasible.Equiv.r_metrics.Equiv.m_feasible_edges;
  }

let mech_cov runs crossval mech =
  let mruns = List.filter (fun r -> r.rr_mech = mech) runs in
  let mrecs = List.concat_map (fun r -> r.rr_records) mruns in
  let count p l = List.length (List.filter p l) in
  let latencies f =
    List.sort compare
      (List.filter_map (fun r -> f r.r_incident) mrecs)
  in
  let mcross =
    List.filter (fun c -> c.Crossval.cr_mech = mech) crossval
  in
  {
    mc_mech = mech;
    mc_runs = List.length mruns;
    mc_detected = count (fun r -> r.rr_verdict = Scenario.Detected) mruns;
    mc_incidents = List.length mrecs;
    mc_mapped = count (fun r -> r.r_mapped) mrecs;
    mc_replays =
      count (fun r -> r.r_incident.Interp.inc_signer <> None) mrecs;
    mc_raw = count (fun r -> r.r_incident.Interp.inc_signer = None) mrecs;
    mc_static_replay_edges =
      List.fold_left (fun a r -> a + r.rr_replay_edges) 0 mruns;
    mc_static_feasible_edges =
      List.fold_left (fun a r -> a + r.rr_feasible_edges) 0 mruns;
    mc_replayable_total = count (fun c -> c.Crossval.cr_static) mcross;
    mc_replayable_exercised =
      count
        (fun c ->
          c.Crossval.cr_static
          && c.Crossval.cr_dynamic = Scenario.Attack_succeeded)
        mcross;
    mc_nonedges_checked =
      count
        (fun c ->
          (not c.Crossval.cr_static)
          && c.Crossval.cr_dynamic = Scenario.Detected)
        mcross;
    mc_latency_cycles = latencies (fun i -> i.Interp.inc_latency_cycles);
    mc_latency_instrs = latencies (fun i -> i.Interp.inc_latency_instrs);
  }

let collect ?jobs ?(flight = default_flight) () =
  Observe.Span.with_ "incident.collect" @@ fun () ->
  let rows = catalog_rows () in
  (* Parallelism is over scenarios, never over a scenario's mechanisms:
     each scenario's cache keys stay owned by one domain (the same
     partitioning discipline the scheduler's other suite consumers
     follow), and the row order is restored by [Scheduler.map], so the
     collection is deterministic at any job count. *)
  let runs =
    List.concat
      (Scheduler.map ?jobs
         (fun (table, sc) ->
           List.map (fun mech -> run_one ~table sc mech flight) mechanisms)
         rows)
  in
  let crossval = Crossval.catalog () in
  let records = List.concat_map (fun r -> r.rr_records) runs in
  let missing =
    List.filter_map
      (fun r ->
        if r.rr_verdict = Scenario.Detected && r.rr_records = [] then
          Some (r.rr_scenario, r.rr_mech)
        else None)
      runs
  in
  List.iter
    (fun r ->
      Observe.Span.instant ~cat:"rsti-incident"
        ~attrs:
          [
            ("scenario", r.r_scenario);
            ("mech", RT.mechanism_to_string r.r_mech);
            ( "site",
              Printf.sprintf "%s:%d" r.r_incident.Interp.inc_func
                r.r_incident.Interp.inc_line );
          ]
        "pac-auth-failure")
    records;
  {
    cov_flight = flight;
    cov_runs = runs;
    cov_records = records;
    cov_mechs = List.map (mech_cov runs crossval) mechanisms;
    cov_detected =
      List.length
        (List.filter (fun r -> r.rr_verdict = Scenario.Detected) runs);
    cov_incidents = List.length records;
    cov_unmapped =
      List.length (List.filter (fun r -> not r.r_mapped) records);
    cov_missing = missing;
    cov_crossval = crossval;
  }

let ok cov = cov.cov_unmapped = 0 && cov.cov_missing = []

(* ----------------------------------------------------------------- *)
(* Event emission                                                      *)
(* ----------------------------------------------------------------- *)

let hex64 v = Printf.sprintf "0x%Lx" v
let opt_int = function None -> Json.Null | Some i -> Json.Int i

let signer_json = function
  | None -> Json.Null
  | Some (op : Interp.pac_op) ->
      Json.Obj
        [
          ("kind", Json.Str (Interp.op_kind_to_string op.Interp.op_kind));
          ("func", Json.Str op.Interp.op_func);
          ("line", Json.Int op.Interp.op_line);
          ( "key",
            Json.Str (Rsti_pa.Key.which_to_string op.Interp.op_key) );
          ("static_modifier", Json.Str (hex64 op.Interp.op_static_mod));
          ("modifier", Json.Str (hex64 op.Interp.op_modifier));
          ("cycle", Json.Int op.Interp.op_cycle);
          ("instr", Json.Int op.Interp.op_instr);
        ]

let incident_fields (inc : Interp.incident) =
  [
    ("func", Json.Str inc.Interp.inc_func);
    ("line", Json.Int inc.Interp.inc_line);
    ("key", Json.Str (Rsti_pa.Key.which_to_string inc.Interp.inc_key));
    ("expected_signer", Json.Str (hex64 inc.Interp.inc_static_mod));
    ("modifier", Json.Str (hex64 inc.Interp.inc_modifier));
    ("ptr", Json.Str (hex64 inc.Interp.inc_ptr));
    ("observed_signer", signer_json inc.Interp.inc_signer);
    ("window", Json.Int (List.length inc.Interp.inc_window));
    ("cycle", Json.Int inc.Interp.inc_cycle);
    ("instr", Json.Int inc.Interp.inc_instr);
    ("latency_cycles", opt_int inc.Interp.inc_latency_cycles);
    ("latency_instrs", opt_int inc.Interp.inc_latency_instrs);
  ]

let record_fields r =
  [
    ("table", Json.Str r.r_table);
    ("scenario", Json.Str r.r_scenario);
    ("mech", Json.Str (RT.mechanism_to_string r.r_mech));
  ]
  @ incident_fields r.r_incident
  @ [
    ( "class",
      match r.r_classes with
      | c :: _ -> Json.Str c.Equiv.c_label
      | [] -> if r.r_pp then Json.Str "<pp-table>" else Json.Null );
    ("classes", Json.Int (List.length r.r_classes));
    ("mapped", Json.Bool r.r_mapped);
  ]

let mech_fields mc =
  [
    ("mech", Json.Str (RT.mechanism_to_string mc.mc_mech));
    ("runs", Json.Int mc.mc_runs);
    ("detected", Json.Int mc.mc_detected);
    ("incidents", Json.Int mc.mc_incidents);
    ("mapped", Json.Int mc.mc_mapped);
    ("replays", Json.Int mc.mc_replays);
    ("raw_overwrites", Json.Int mc.mc_raw);
    ("static_replay_edges", Json.Int mc.mc_static_replay_edges);
    ("static_feasible_edges", Json.Int mc.mc_static_feasible_edges);
    ("replayable_total", Json.Int mc.mc_replayable_total);
    ("replayable_exercised", Json.Int mc.mc_replayable_exercised);
    ("nonedges_checked", Json.Int mc.mc_nonedges_checked);
  ]

let emit_events cov =
  List.iter
    (fun r ->
      Observe.Events.emit ~cat:"incident"
        ~name:(r.r_scenario ^ ":" ^ RT.mechanism_to_string r.r_mech)
        (record_fields r))
    cov.cov_records;
  List.iter
    (fun mc ->
      Observe.Events.emit ~cat:"coverage"
        ~name:(RT.mechanism_to_string mc.mc_mech)
        (mech_fields mc))
    cov.cov_mechs;
  Observe.Events.emit ~cat:"coverage" ~name:"summary"
    [
      ("flight", Json.Int cov.cov_flight);
      ("runs", Json.Int (List.length cov.cov_runs));
      ("detected", Json.Int cov.cov_detected);
      ("incidents", Json.Int cov.cov_incidents);
      ("unmapped", Json.Int cov.cov_unmapped);
      ("missing", Json.Int (List.length cov.cov_missing));
      ("verdict", Json.Str (if ok cov then "OK" else "FAIL"));
    ]

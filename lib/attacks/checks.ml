module Interp = Rsti_machine.Interp

let extern_called_times name n (o : Interp.outcome) =
  let count =
    List.fold_left
      (fun acc ev ->
        match ev with Interp.Ev_extern (m, _) when m = name -> acc + 1 | _ -> acc)
      0 o.events
  in
  count >= n

let extern_called name o = extern_called_times name 1 o

let func_called name (o : Interp.outcome) =
  List.exists (function Interp.Ev_call m -> m = name | _ -> false) o.events

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  end

let output_contains sub (o : Interp.outcome) = contains_sub ~sub o.output

let exited_zero (o : Interp.outcome) =
  match o.status with Interp.Exited 0L -> true | _ -> false

(* Static/dynamic cross-validation of the substitution attack surface:
   the Equiv partition predicts which replays survive, the machine
   decides which actually do, and any disagreement is a bug. *)

module Interp = Rsti_machine.Interp
module RT = Rsti_sti.Rsti_type
module Pipeline = Rsti_engine.Pipeline
module Equiv = Rsti_dataflow.Equiv
module Ir = Rsti_ir.Ir
module Tast = Rsti_minic.Tast
module Ctype = Rsti_minic.Ctype

let mechanisms = Rsti_staticcheck.Attack_surface.mechanisms

(* ----------------------------------------------------------------- *)
(* Catalog: the hand-written scenarios of Substitution.expected.      *)
(* ----------------------------------------------------------------- *)

type catalog_row = {
  cr_scenario : string;
  cr_mech : RT.mechanism;
  cr_static : bool;
  cr_dynamic : Scenario.verdict;
  cr_agree : bool;
}

(* Scenario metadata names pointers as e.g. "banner (const char*)"; the
   global's name is the first whitespace-delimited token. *)
let first_token s =
  match String.index_opt s ' ' with
  | Some i -> String.sub s 0 i
  | None -> s

let find_global (m : Ir.modul) name =
  match
    List.find_map
      (fun (g : Ir.global_def) ->
        let v = g.Ir.gvar in
        if v.Tast.v_name = name then Some (Ir.Svar v.Tast.v_id) else None)
      m.Ir.m_globals
  with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Crossval: no global named %s" name)

let analyzed_scenario config (sc : Scenario.t) =
  Pipeline.analyze ~config
    (Pipeline.compile ~config
       (Pipeline.source ~file:(sc.Scenario.id ^ ".c") sc.Scenario.program))

let catalog () =
  let config = Pipeline.default in
  List.concat_map
    (fun ((sc : Scenario.t), expectations) ->
      let a = analyzed_scenario config sc in
      let m = Pipeline.analyzed_ir a in
      let donor = find_global m (first_token sc.Scenario.target) in
      let victim = find_global m (first_token sc.Scenario.corrupted) in
      List.map
        (fun (mech, _expected) ->
          let eq = Pipeline.attack_surface ~config mech a in
          let static = Equiv.replayable eq ~donor ~victim in
          let dynamic = (Scenario.run sc mech).Scenario.verdict in
          (* Attack_failed matches neither model and counts as a
             disagreement: a fizzled replay means the oracle setup broke. *)
          let agree =
            match dynamic with
            | Scenario.Attack_succeeded -> static
            | Scenario.Detected -> not static
            | Scenario.Attack_failed -> false
          in
          {
            cr_scenario = sc.Scenario.id;
            cr_mech = mech;
            cr_static = static;
            cr_dynamic = dynamic;
            cr_agree = agree;
          })
        expectations)
    Substitution.expected

(* ----------------------------------------------------------------- *)
(* Generated candidates: fresh replays from the analyzer's own classes *)
(* ----------------------------------------------------------------- *)

type gen_kind = Same_class | Cross_class

type gen_row = {
  g_program : string;
  g_mech : RT.mechanism;
  g_donor : string;
  g_victim : string;
  g_trigger : string;
  g_kind : gen_kind;
  g_predicted : bool;
  g_detected : bool option;
  g_agree : bool option;
}

type gen_batch = { gb_rows : gen_row list; gb_pool_same : int; gb_pool_cross : int }

let skip_note = "crossval: donor cell empty, replay skipped"

(* Candidate victims: (name, slot, func) for every global pointer with a
   load in [func]'s entry block that no same-block store precedes — so
   entering [func] authenticates whatever the global holds, and firing
   the replay at that entry guarantees the check actually runs. *)
let entry_victims (m : Ir.modul) =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Ir.global_def) ->
      let v = g.Ir.gvar in
      if Ctype.is_pointer v.Tast.v_ty then
        Hashtbl.replace globals v.Tast.v_id v.Tast.v_name)
    m.Ir.m_globals;
  List.concat_map
    (fun (fn : Ir.func) ->
      if fn.Ir.name = Ir.global_init_name || Array.length fn.Ir.blocks = 0 then
        []
      else begin
        let stored = Hashtbl.create 4 in
        let seen = Hashtbl.create 4 in
        let acc = ref [] in
        List.iter
          (fun (ins : Ir.instr) ->
            match ins.Ir.i with
            | Ir.Store { slot = Ir.Svar id; _ } -> Hashtbl.replace stored id ()
            | Ir.Load { slot = Ir.Svar id; ty; _ }
              when Ctype.is_pointer ty
                   && Hashtbl.mem globals id
                   && (not (Hashtbl.mem stored id))
                   && not (Hashtbl.mem seen id) ->
                Hashtbl.replace seen id ();
                acc := (Hashtbl.find globals id, Ir.Svar id, fn.Ir.name) :: !acc
            | _ -> ())
          fn.Ir.blocks.(0).Ir.instrs;
        List.rev !acc
      end)
    m.Ir.m_funcs

(* One (donor, victim) pair per row; victims loaded outside [main]
   first so the donor has normally been signed by trigger time. *)
let dedupe_pairs pool =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (dn, _, vn, _, _) ->
      if Hashtbl.mem seen (dn, vn) then false
      else begin
        Hashtbl.replace seen (dn, vn) ();
        true
      end)
    pool

let take n l = List.filteri (fun i _ -> i < n) l

let generated ?(max_same = 2) ?(max_cross = 1) ~name ~source mech =
  let config = Pipeline.default in
  let compiled =
    Pipeline.compile ~config (Pipeline.source ~file:(name ^ ".c") source)
  in
  let a = Pipeline.analyze ~config compiled in
  let m = Pipeline.analyzed_ir a in
  let eq = Pipeline.attack_surface ~config mech a in
  let calls = (Pipeline.run_baseline ~config compiled).Interp.call_profile in
  let victims =
    entry_victims m
    |> List.filter (fun (_, _, fv) -> List.mem_assoc fv calls)
    |> List.sort (fun (n1, _, f1) (n2, _, f2) ->
           match (f1 = "main", f2 = "main") with
           | false, true -> -1
           | true, false -> 1
           | _ -> compare (n1, f1) (n2, f2))
  in
  (* Donors must be signed somewhere or there is nothing to harvest. *)
  let donors =
    List.filter_map
      (fun (g : Ir.global_def) ->
        let v = g.Ir.gvar in
        match Equiv.find_member eq (Ir.Svar v.Tast.v_id) with
        | Some (_, mb) when mb.Equiv.mb_signs > 0 ->
            Some (v.Tast.v_name, Ir.Svar v.Tast.v_id)
        | _ -> None)
      m.Ir.m_globals
    |> List.sort compare
  in
  let pairs pred =
    List.concat_map
      (fun (vn, vs, fv) ->
        List.filter_map
          (fun (dn, ds) ->
            if dn = vn then None
            else if pred (Equiv.replayable eq ~donor:ds ~victim:vs) then
              Some (dn, ds, vn, vs, fv)
            else None)
          donors)
      victims
    |> dedupe_pairs
  in
  let same_pool = pairs Fun.id in
  let cross_pool = pairs not in
  let run_candidate kind predicted (dn, _ds, vn, _vs, fv) =
    let n = List.assoc fv calls in
    let fired = ref false in
    let attack =
      {
        Interp.trigger = Interp.On_call (fv, n);
        action =
          (fun intr ->
            let w = intr.Interp.read_word (intr.Interp.global_addr dn) in
            if w = 0L then intr.Interp.note skip_note
            else begin
              fired := true;
              intr.Interp.note
                (Printf.sprintf "crossval: replay signed %s over %s at %s#%d"
                   dn vn fv n);
              intr.Interp.write_word (intr.Interp.global_addr vn) w
            end);
      }
    in
    let outcome =
      Pipeline.run ~config ~attacks:[ attack ]
        (Pipeline.instrument ~config mech a)
    in
    let detected = if !fired then Some (Interp.detected outcome) else None in
    {
      g_program = name;
      g_mech = mech;
      g_donor = dn;
      g_victim = vn;
      g_trigger = fv;
      g_kind = kind;
      g_predicted = predicted;
      g_detected = detected;
      g_agree = Option.map (fun d -> d = not predicted) detected;
    }
  in
  {
    gb_rows =
      List.map (run_candidate Same_class true) (take max_same same_pool)
      @ List.map (run_candidate Cross_class false) (take max_cross cross_pool);
    gb_pool_same = List.length same_pool;
    gb_pool_cross = List.length cross_pool;
  }

(* ----------------------------------------------------------------- *)
(* The full summary                                                   *)
(* ----------------------------------------------------------------- *)

type summary = {
  s_catalog : catalog_row list;
  s_generated : gen_row list;
  s_checked : int;
  s_disagreements : int;
  s_skipped : int;
  s_pool_same : int;
  s_pool_cross : int;
}

(* Hand-written crossval victims beyond the catalog: a size-3 class (six
   replay edges), a cast-merged trio (STC coarsens, STWC does not), and a
   scope-split pair (PARTS merges, every RSTI mechanism splits). Each
   global pointer is loaded in the entry block of a helper so generated
   triggers always reach an authentication. *)
let corpus =
  [
    ( "xv-triple",
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
/* three pointers in one RSTI class, a fourth in its own */
char* red;
char* green;
char* blue;
long* counter;
void paint(int round) {
  printf("%d: %s %s %s\n", round, red, green, blue);
}
void tally(void) {
  printf("count %d\n", (int) *counter);
}
int main(void) {
  red = (char*) malloc(8);
  green = (char*) malloc(8);
  blue = (char*) malloc(8);
  counter = (long*) malloc(8);
  strcpy(red, "r");
  strcpy(green, "g");
  strcpy(blue, "b");
  *counter = 7;
  paint(1);
  tally();
  paint(2);
  tally();
  return 0;
}
|} );
    ( "xv-cast",
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct buf { int len; };
/* primary/backup share an RSTI-type; spare joins them only under the
   STC cast-merge */
struct buf* primary;
void* spare;
struct buf* backup;
void touch(int round) {
  struct buf* b;
  printf("primary %d\n", primary->len);
  b = (struct buf*) spare;
  printf("spare %d round %d\n", b->len, round);
  printf("backup %d\n", backup->len);
}
int main(void) {
  struct buf* t;
  primary = (struct buf*) malloc(16);
  backup = (struct buf*) malloc(16);
  spare = malloc(16);
  primary->len = 1;
  backup->len = 2;
  t = (struct buf*) spare;
  t->len = 3;
  touch(1);
  touch(2);
  return 0;
}
|} );
    ( "xv-scope",
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
/* same basic type, disjoint scopes: PARTS merges, RSTI splits */
char* log_line;
char* cmd_line;
void logit(int round) {
  printf("log %d: %s\n", round, log_line);
}
void execit(int round) {
  printf("cmd %d: %s\n", round, cmd_line);
}
int main(void) {
  log_line = (char*) malloc(16);
  cmd_line = (char*) malloc(16);
  strcpy(log_line, "l");
  strcpy(cmd_line, "c");
  logit(1);
  execit(1);
  logit(2);
  execit(2);
  return 0;
}
|} );
  ]

let default_programs () =
  List.map
    (fun (sc : Scenario.t) -> (sc.Scenario.id, sc.Scenario.program))
    Substitution.all
  @ corpus

let summarize ?jobs ?programs () =
  let programs =
    match programs with Some p -> p | None -> default_programs ()
  in
  let cat = catalog () in
  let batches =
    Rsti_engine.Scheduler.map ?jobs
      (fun (name, source) ->
        List.map (fun mech -> generated ~name ~source mech) mechanisms)
      programs
    |> List.concat
  in
  let gens = List.concat_map (fun b -> b.gb_rows) batches in
  let skipped =
    List.length (List.filter (fun g -> g.g_agree = None) gens)
  in
  let checked = List.length cat + List.length gens - skipped in
  let disagreements =
    List.length (List.filter (fun c -> not c.cr_agree) cat)
    + List.length (List.filter (fun g -> g.g_agree = Some false) gens)
  in
  {
    s_catalog = cat;
    s_generated = gens;
    s_checked = checked;
    s_disagreements = disagreements;
    s_skipped = skipped;
    s_pool_same = List.fold_left (fun n b -> n + b.gb_pool_same) 0 batches;
    s_pool_cross = List.fold_left (fun n b -> n + b.gb_pool_cross) 0 batches;
  }

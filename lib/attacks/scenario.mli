(** The attack-scenario framework behind the paper's security evaluation
    (section 6.1, Tables 1 and 2).

    A scenario is a runnable victim program (MiniC source modelled on the
    real vulnerable software), a memory-corruption step executed through
    the machine's attacker API, the scope-type bookkeeping the paper's
    Table 1 reports, and a predicate deciding whether the attacker reached
    their goal. Running a scenario under a mechanism yields one of three
    verdicts: the attack succeeded, RSTI detected it (PAC failure followed
    by a fault), or it fizzled for another reason. *)

type category = Control_flow | Data_oriented
type source = Real | Synthetic

type info = { ty : string; scope : string }
(** One "scope-type information" cell of Table 1. *)

type t = {
  id : string;                     (** short slug, e.g. ["newton-cscfi"] *)
  paper_row : string;              (** Table 1 row label *)
  category : category;
  source : source;
  corrupted : string;              (** the pointer being abused *)
  target : string;                 (** what it is redirected to *)
  original : info;                 (** programmer-intended scope-type *)
  corrupted_info : info;           (** scope-type after corruption *)
  program : string;                (** MiniC victim source *)
  attacks : Rsti_machine.Interp.attack list;
  success : Rsti_machine.Interp.outcome -> bool;
      (** did the attacker reach the goal (under no defense)? *)
}

type verdict =
  | Attack_succeeded   (** goal reached, no detection *)
  | Detected           (** PAC authentication failure stopped it *)
  | Attack_failed      (** neither: crashed or fizzled without detection *)

val verdict_to_string : verdict -> string

type run_result = {
  verdict : verdict;
  outcome : Rsti_machine.Interp.outcome;
}

val run :
  ?elision:Rsti_staticcheck.Elide.mode ->
  ?flight:int ->
  t ->
  Rsti_sti.Rsti_type.mechanism ->
  run_result
(** Compile the victim, instrument under the mechanism, execute with the
    scenario's corruption hooks, and classify the result. [~elision]
    (default [Off]) selects the precision of the static checker's
    proof-based instrumentation elision ({!Rsti_staticcheck.Elide}) —
    the safety invariant the report module asserts is that neither
    precision ever changes a verdict. [~flight] (default 0 = off) sets
    the machine's PAC flight-recorder capacity, so a [Detected] run's
    outcome carries its {!Rsti_machine.Interp.incident} records. *)

val run_baseline : t -> run_result
(** [run] with no instrumentation — must yield [Attack_succeeded] for a
    well-formed scenario (checked by the test suite). *)

val run_cfi : t -> run_result
(** Run under the signature-based CFI baseline instead of RSTI
    (uninstrumented pointers, prototype checks on indirect calls). The
    paper's introduction claim — CFI misses data-oriented attacks and
    same-signature code reuse — is checked by the test suite against
    this. *)

(** The spatial- and temporal-safety rows of Table 2: RSTI does not
    prevent memory errors, but abusing one to corrupt a pointer requires
    the attacker to plant a value with a valid PAC for that slot's
    RSTI-type.

    Unlike the substitution scenarios, the corruptions here come from
    genuine program bugs — a real [strcpy] overflow running inside the
    victim, and a use-after-free whose freed object is resprayed. *)

val spatial_overflow : Scenario.t
(** A string overflow inside a struct clobbers the adjacent function
    pointer with attacker bytes. Baseline: hijacked. All RSTI
    mechanisms: the planted bytes carry no valid PAC — detected. *)

val spatial_overflow_same_type : Scenario.t
(** The overflow clobbers an adjacent pointer of the same basic type but
    a different RSTI-type (other struct): detected by all three. *)

val temporal_uaf : Scenario.t
(** Use-after-free: the freed object's memory is resprayed with an
    attacker-controlled fake object; the dangling pointer's next use
    loads a PAC-less pointer field — detected by all three. *)

val all : Scenario.t list

val expected :
  (Scenario.t * (Rsti_sti.Rsti_type.mechanism * Scenario.verdict) list) list
(** Every mechanism detects all three (the paper's Table 2: harder/
    impossible to abuse, never invisible). *)

module Interp = Rsti_machine.Interp
module RT = Rsti_sti.Rsti_type

let info ty scope = { Scenario.ty; scope }

(* Copy the signed word stored in global [src] over global [dst]. *)
let replay_global ~src ~dst ~note trigger =
  {
    Interp.trigger;
    action =
      (fun intr ->
        intr.note note;
        intr.write_word (intr.global_addr dst) (intr.read_word (intr.global_addr src)));
  }

(* ------------------------------------------------------------------ *)
(* 1. Replay within one RSTI-type (largest-ECV case)                   *)
(* ------------------------------------------------------------------ *)

let same_rsti_replay =
  {
    Scenario.id = "sub-same-rsti";
    paper_row = "replay within an equivalence class (Table 2 / 6.2.1)";
    category = Scenario.Data_oriented;
    source = Scenario.Synthetic;
    corrupted = "msg_b";
    target = "msg_a";
    original = info "char*" "main, show";
    corrupted_info = info "char*" "main, show (same RSTI-type)";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
/* Two pointers with identical type, scope, and permission: one
   equivalence class of size two. */
char* msg_a;
char* msg_b;
void show(int round) {
  /* both pointers are used here, symmetrically: identical scope */
  printf("motd: %s\n", msg_a);
  printf("round %d: %s\n", round, msg_b);
}
int main(void) {
  msg_a = (char*) malloc(32);
  msg_b = (char*) malloc(32);
  strcpy(msg_a, "TOP-SECRET-A");
  strcpy(msg_b, "public-b");
  show(1);
  show(2);
  return 0;
}
|};
    attacks =
      [
        replay_global ~src:"msg_a" ~dst:"msg_b"
          ~note:"replay signed msg_a over msg_b (same RSTI-type)"
          (Interp.On_call ("show", 2));
      ];
    success = Checks.output_contains "round 2: TOP-SECRET-A";
  }

(* ------------------------------------------------------------------ *)
(* 2. Replay across cast-merged types (STC's combining weakness)       *)
(* ------------------------------------------------------------------ *)

let cast_merged_replay =
  {
    Scenario.id = "sub-cast-merged";
    paper_row = "substitution across compatible (cast-merged) types";
    category = Scenario.Data_oriented;
    source = Scenario.Synthetic;
    corrupted = "session";
    target = "scratch";
    original = info "struct session*" "main, handle";
    corrupted_info = info "void*" "main, handle (merged under STC)";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct session {
  long uid;
  long privileged;
};
struct session* session;
void* scratch;
void handle(int round) {
  printf("round %d uid=%ld priv=%ld\n", round, session->uid, session->privileged);
}
int main(void) {
  session = (struct session*) malloc(sizeof(struct session));
  session->uid = 1000;
  session->privileged = 0;
  scratch = malloc(sizeof(struct session));
  /* the cast that makes struct session* and void* compatible: the
     program itself moves a session through a void* (e.g. a callback
     context), so STC merges the two RSTI-types */
  scratch = (void*) session;
  scratch = malloc(16);
  handle(1);
  handle(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("handle", 2);
          action =
            (fun intr ->
              (* forge a privileged session in attacker-reachable scratch
                 memory, then replay the signed scratch pointer over the
                 session pointer *)
              intr.note "replay signed void* scratch over struct session*";
              let scratch_signed = intr.read_word (intr.global_addr "scratch") in
              let scratch_raw = Int64.logand scratch_signed 0xFFFF_FFFF_FFFFL in
              intr.write_word scratch_raw 0L;
              intr.write_word (Int64.add scratch_raw 8L) 1L;
              intr.write_word (intr.global_addr "session") scratch_signed);
        };
      ];
    success = Checks.output_contains "priv=1";
  }

(* ------------------------------------------------------------------ *)
(* 3. Replay across scopes (defeats PARTS, not RSTI)                   *)
(* ------------------------------------------------------------------ *)

let cross_scope_replay =
  {
    Scenario.id = "sub-cross-scope";
    paper_row = "same basic type, different scope (PARTS comparison, 6.1.2)";
    category = Scenario.Data_oriented;
    source = Scenario.Synthetic;
    corrupted = "audit_log";
    target = "user_input";
    original = info "char*" "write_audit";
    corrupted_info = info "char*" "read_user (different scope)";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
/* Same basic type (char*), used in two disjoint scopes, never
   flowing into each other. */
char* audit_log;
char* user_input;
void read_user(void) {
  strcpy(user_input, "GET /evil");
}
void write_audit(int round) {
  printf("audit %d: %s\n", round, audit_log);
}
int main(void) {
  audit_log = (char*) malloc(32);
  user_input = (char*) malloc(32);
  strcpy(audit_log, "boot ok");
  read_user();
  write_audit(1);
  write_audit(2);
  return 0;
}
|};
    attacks =
      [
        replay_global ~src:"user_input" ~dst:"audit_log"
          ~note:"replay signed user_input over audit_log (other scope)"
          (Interp.On_call ("write_audit", 2));
      ];
    success = Checks.output_contains "audit 2: GET /evil";
  }

(* ------------------------------------------------------------------ *)
(* 4. Replay across permissions (const vs mutable)                     *)
(* ------------------------------------------------------------------ *)

let permission_replay =
  {
    Scenario.id = "sub-permission";
    paper_row = "read-only vs read-write permission substitution";
    category = Scenario.Data_oriented;
    source = Scenario.Synthetic;
    corrupted = "banner (const char*)";
    target = "netbuf (char*)";
    original = info "const char*" "greet";
    corrupted_info = info "char*" "greet (R/W permission)";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
/* Same type and same scope; only the permission differs. */
const char* banner = "Welcome to ftpd";
char* netbuf;
void greet(int round) {
  printf("banner %d: %s\n", round, banner);
  strcpy(netbuf, "x");
}
int main(void) {
  netbuf = (char*) malloc(32);
  strcpy(netbuf, "INJECTED");
  greet(1);
  greet(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("greet", 2);
          action =
            (fun intr ->
              intr.note "replay signed netbuf over const banner";
              let v = intr.read_word (intr.global_addr "netbuf") in
              let raw = Int64.logand v 0xFFFF_FFFF_FFFFL in
              intr.write_string raw "INJECTED";
              intr.write_word (intr.global_addr "banner") v);
        };
      ];
    success = Checks.output_contains "banner 2: INJECTED";
  }

let all = [ same_rsti_replay; cast_merged_replay; cross_scope_replay; permission_replay ]

let expected =
  [
    ( same_rsti_replay,
      [
        (RT.Stwc, Scenario.Attack_succeeded);
        (RT.Stc, Scenario.Attack_succeeded);
        (RT.Stl, Scenario.Detected);
      ] );
    ( cast_merged_replay,
      [
        (RT.Stwc, Scenario.Detected);
        (RT.Stc, Scenario.Attack_succeeded);
        (RT.Stl, Scenario.Detected);
      ] );
    ( cross_scope_replay,
      [
        (RT.Stwc, Scenario.Detected);
        (RT.Stc, Scenario.Detected);
        (RT.Stl, Scenario.Detected);
        (RT.Parts, Scenario.Attack_succeeded);
      ] );
    ( permission_replay,
      [
        (RT.Stwc, Scenario.Detected);
        (RT.Stc, Scenario.Detected);
        (RT.Stl, Scenario.Detected);
        (RT.Parts, Scenario.Attack_succeeded);
      ] );
  ]

module Interp = Rsti_machine.Interp

let info ty scope = { Scenario.ty; scope }

(* Overwrite the word at [offset] of the most recent heap allocation. *)
let smash_newest_alloc ?(offset = 0L) ~value ~note () (intr : Interp.intruder) =
  match intr.heap_allocs () with
  | (obj, _) :: _ ->
      intr.note note;
      intr.write_word (Int64.add obj offset) (value intr)
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* NEWTON CsCFI (nginx): c->send_chain -> malloc                       *)
(* ------------------------------------------------------------------ *)

let newton_cscfi =
  {
    Scenario.id = "newton-cscfi";
    paper_row = "NEWTON CsCFI attack [81] (R)";
    category = Scenario.Control_flow;
    source = Scenario.Real;
    corrupted = "c->send_chain";
    target = "malloc";
    original = info "ngx_send_chain_pt" "ngx_http_write_filter";
    corrupted_info = info "void* (size_t size)" "libc";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct ngx_connection {
  long fd;
  long (*send_chain)(struct ngx_connection* c, long chain);
};
long ngx_linux_sendfile_chain(struct ngx_connection* c, long chain) {
  printf("sent %ld bytes on fd %ld\n", chain, c->fd);
  return chain;
}
struct ngx_connection* conn;
long ngx_http_write_filter(long chain) {
  return conn->send_chain(conn, chain);
}
int main(void) {
  conn = (struct ngx_connection*) malloc(sizeof(struct ngx_connection));
  conn->fd = 7;
  conn->send_chain = ngx_linux_sendfile_chain;
  ngx_http_write_filter(64);
  ngx_http_write_filter(4096);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("ngx_http_write_filter", 2);
          action =
            smash_newest_alloc ~offset:8L
              ~value:(fun intr -> intr.func_addr "malloc")
              ~note:"overwrite conn->send_chain with &malloc" ();
        };
      ];
    (* The legitimate run calls malloc exactly once; a second call means
       the hijacked send_chain invoked it. *)
    success = Checks.extern_called_times "malloc" 2;
  }

(* ------------------------------------------------------------------ *)
(* AOCR NGINX Attack 1: task->handler -> _IO_new_file_overflow         *)
(* ------------------------------------------------------------------ *)

let aocr_nginx1 =
  {
    Scenario.id = "aocr-nginx-1";
    paper_row = "AOCR NGINX Attack 1 [69] (R)";
    category = Scenario.Control_flow;
    source = Scenario.Real;
    corrupted = "task->handler";
    target = "_IO_new_file_overflow";
    original = info "void (*handler)(void *data, ngx_log_t *log)" "ngx_thread_pool_cycle";
    corrupted_info = info "int *(File *f, int ch)" "libc";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern int _IO_new_file_overflow(void* f, int ch);
struct ngx_task {
  void (*handler)(void* data, long log);
  void* data;
};
void ngx_worker(void* data, long log) {
  printf("worker ran, log=%ld\n", log);
}
struct ngx_task* queue;
void ngx_thread_pool_cycle(int rounds) {
  for (int i = 0; i < rounds; i++) {
    queue->handler(queue->data, 11);
  }
}
int main(void) {
  queue = (struct ngx_task*) malloc(sizeof(struct ngx_task));
  queue->handler = ngx_worker;
  queue->data = (void*) queue;
  ngx_thread_pool_cycle(1);
  ngx_thread_pool_cycle(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("ngx_thread_pool_cycle", 2);
          action =
            smash_newest_alloc
              ~value:(fun intr -> intr.func_addr "_IO_new_file_overflow")
              ~note:"overwrite task->handler with &_IO_new_file_overflow" ();
        };
      ];
    success = Checks.extern_called "_IO_new_file_overflow";
  }

(* ------------------------------------------------------------------ *)
(* AOCR NGINX Attack 2: log->handler -> ngx_master_process_cycle       *)
(* ------------------------------------------------------------------ *)

let aocr_nginx2 =
  {
    Scenario.id = "aocr-nginx-2";
    paper_row = "AOCR NGINX Attack 2 [69] (R)";
    category = Scenario.Control_flow;
    source = Scenario.Real;
    corrupted = "p = log->handler";
    target = "ngx_master_process_cycle";
    original = info "ngx_log_writer_pt" "ngx_log_set_levels";
    corrupted_info = info "void *(ngx_cycle_t *cycle)" "main";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct ngx_log {
  long level;
  void (*handler)(struct ngx_log* log, const char* msg);
};
void ngx_log_writer(struct ngx_log* log, const char* msg) {
  printf("[%ld] %s\n", log->level, msg);
}
void ngx_master_process_cycle(struct ngx_log* cycle, const char* unused) {
  printf("master cycle spawned!\n");
}
struct ngx_log* the_log;
void ngx_log_set_levels(long level) {
  the_log->level = level;
  the_log->handler(the_log, "level set");
}
int main(void) {
  the_log = (struct ngx_log*) malloc(sizeof(struct ngx_log));
  the_log->handler = ngx_log_writer;
  ngx_log_set_levels(1);
  ngx_log_set_levels(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("ngx_log_set_levels", 2);
          action =
            smash_newest_alloc ~offset:8L
              ~value:(fun intr -> intr.func_addr "ngx_master_process_cycle")
              ~note:"overwrite log->handler with &ngx_master_process_cycle" ();
        };
      ];
    success = Checks.func_called "ngx_master_process_cycle";
  }

(* ------------------------------------------------------------------ *)
(* AOCR Apache: eval->errfn -> ap_get_exec_line                        *)
(* ------------------------------------------------------------------ *)

let aocr_apache =
  {
    Scenario.id = "aocr-apache";
    paper_row = "AOCR Apache Attack [69] (R)";
    category = Scenario.Control_flow;
    source = Scenario.Real;
    corrupted = "eval->errfn";
    target = "ap_get_exec_line";
    original = info "sed_err_fn_t" "sed_reset_eval, eval_errf";
    corrupted_info = info "char *(apr_pool_t *p, ...)" "set_bind_password";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct sed_eval {
  long lineno;
  void (*errfn)(struct sed_eval* e, const char* msg);
};
void sed_err_default(struct sed_eval* e, const char* msg) {
  printf("sed error at %ld: %s\n", e->lineno, msg);
}
void ap_get_exec_line(struct sed_eval* p, const char* cmd) {
  printf("executing line: %s\n", cmd);
}
struct sed_eval* eval;
void sed_reset_eval(long line) {
  eval->lineno = line;
}
void eval_errf(const char* msg) {
  eval->errfn(eval, msg);
}
int main(void) {
  eval = (struct sed_eval*) malloc(sizeof(struct sed_eval));
  eval->errfn = sed_err_default;
  sed_reset_eval(10);
  eval_errf("bad pattern");
  sed_reset_eval(20);
  eval_errf("bad flags");
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("eval_errf", 2);
          action =
            smash_newest_alloc ~offset:8L
              ~value:(fun intr -> intr.func_addr "ap_get_exec_line")
              ~note:"overwrite eval->errfn with &ap_get_exec_line" ();
        };
      ];
    success = Checks.func_called "ap_get_exec_line";
  }

(* ------------------------------------------------------------------ *)
(* Control Jujutsu: ctx->output_filter -> ngx_execute_proc             *)
(* ------------------------------------------------------------------ *)

let control_jujutsu =
  {
    Scenario.id = "control-jujutsu";
    paper_row = "Control Jujutsu NGINX [34] (R)";
    category = Scenario.Control_flow;
    source = Scenario.Real;
    corrupted = "ctx->output_filter";
    target = "ngx_execute_proc()";
    original = info "ngx_output_chain_filter_pt" "ngx_output_chain";
    corrupted_info = info "static void *(ngx_cycle_t *cycle, void* data)" "ngx_execute";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct ngx_chain_ctx {
  long busy;
  long (*output_filter)(void* ctx, long chain);
};
long ngx_chain_writer(void* ctx, long chain) {
  printf("chain writer: %ld\n", chain);
  return 0;
}
long ngx_execute_proc(void* cycle, long data) {
  printf("spawned process %ld\n", data);
  return 1;
}
struct ngx_chain_ctx* octx;
long ngx_output_chain(long chain) {
  return octx->output_filter((void*) octx, chain);
}
int main(void) {
  octx = (struct ngx_chain_ctx*) malloc(sizeof(struct ngx_chain_ctx));
  octx->output_filter = ngx_chain_writer;
  ngx_output_chain(1);
  ngx_output_chain(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("ngx_output_chain", 2);
          action =
            smash_newest_alloc ~offset:8L
              ~value:(fun intr -> intr.func_addr "ngx_execute_proc")
              ~note:"overwrite ctx->output_filter with &ngx_execute_proc" ();
        };
      ];
    success = Checks.func_called "ngx_execute_proc";
  }

(* ------------------------------------------------------------------ *)
(* CVE (libtiff, Figure 1): tif->tif_encoderow -> arbitrary            *)
(* ------------------------------------------------------------------ *)

let cve_libtiff =
  {
    Scenario.id = "cve-libtiff";
    paper_row = "CVE-2014-8668 (R)";
    category = Scenario.Control_flow;
    source = Scenario.Real;
    corrupted = "tif->tif_encoderow";
    target = "arbitrary pointer (system)";
    original =
      info "TIFFCodeMethod"
        "_TIFFSetDefaultCompression, TIFFWriteScanline, TIFFOpen, main";
    corrupted_info = info "unknown (CVE)" "unknown (CVE)";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern int system(const char* cmd);
struct TIFF {
  long tif_scanlinesize;
  int (*tif_encoderow)(struct TIFF* tif, char* buf, long size, int sample);
};
int _TIFFNoRowEncode(struct TIFF* tif, char* buf, long size, int sample) {
  printf("encoded %ld bytes\n", size);
  return 1;
}
void _TIFFSetDefaultCompressionState(struct TIFF* tif) {
  tif->tif_encoderow = _TIFFNoRowEncode;
}
struct TIFF* TIFFOpen(void) {
  struct TIFF* tif = (struct TIFF*) malloc(sizeof(struct TIFF));
  tif->tif_scanlinesize = 128;
  _TIFFSetDefaultCompressionState(tif);
  return tif;
}
int TIFFWriteScanline(struct TIFF* tif, char* buf, int sample) {
  return tif->tif_encoderow(tif, buf, tif->tif_scanlinesize, sample);
}
int main(void) {
  struct TIFF* out = TIFFOpen();
  long uncompr_size = 64;
  char* uncomprbuf = (char*) malloc(uncompr_size);
  /* Unsanitized size: the overflow the attacker exploits. */
  TIFFWriteScanline(out, uncomprbuf, 0);
  TIFFWriteScanline(out, uncomprbuf, 1);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("TIFFWriteScanline", 2);
          action =
            (fun intr ->
              (* The TIFF object is the older of the two allocations. *)
              match intr.heap_allocs () with
              | _ :: (tif, _) :: _ ->
                  intr.note "heap overflow into tif->tif_encoderow";
                  intr.write_word (Int64.add tif 8L) (intr.func_addr "system")
              | _ -> ());
        };
      ];
    success = Checks.extern_called "system";
  }

(* ------------------------------------------------------------------ *)
(* CVE-2014-1912 (CPython): tp->tp_hash -> arbitrary                   *)
(* ------------------------------------------------------------------ *)

let cve_python =
  {
    Scenario.id = "cve-python";
    paper_row = "CVE-2014-1912 (R)";
    category = Scenario.Control_flow;
    source = Scenario.Real;
    corrupted = "tp->tp_hash";
    target = "arbitrary pointer (system)";
    original = info "hashfunc" "inherit_slots, PyObject_Hash";
    corrupted_info = info "unknown (CVE)" "unknown (CVE)";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern int system(const char* cmd);
struct PyTypeObject {
  long tp_basicsize;
  long (*tp_hash)(void* obj);
};
long default_hash(void* obj) {
  return ((long) obj) >> 4;
}
struct PyTypeObject* type_obj;
void inherit_slots(struct PyTypeObject* base) {
  type_obj->tp_hash = base->tp_hash;
}
long PyObject_Hash(void* obj) {
  return type_obj->tp_hash(obj);
}
int main(void) {
  type_obj = (struct PyTypeObject*) malloc(sizeof(struct PyTypeObject));
  struct PyTypeObject* base = (struct PyTypeObject*) malloc(sizeof(struct PyTypeObject));
  base->tp_hash = default_hash;
  inherit_slots(base);
  long h1 = PyObject_Hash((void*) base);
  /* sock.recv_into() overflow corrupts the type object here */
  long h2 = PyObject_Hash((void*) base);
  printf("hashes %ld %ld\n", h1, h2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("PyObject_Hash", 2);
          action =
            (fun intr ->
              match List.rev (intr.heap_allocs ()) with
              | (tyobj, _) :: _ ->
                  intr.note "buffer overflow into tp->tp_hash";
                  intr.write_word (Int64.add tyobj 8L) (intr.func_addr "system")
              | _ -> ());
        };
      ];
    success = Checks.extern_called "system";
  }

(* ------------------------------------------------------------------ *)
(* COOP REC-G (synthetic)                                              *)
(* ------------------------------------------------------------------ *)

let coop_rec_g =
  {
    Scenario.id = "coop-rec-g";
    paper_row = "COOP REC-G [27] (S)";
    category = Scenario.Control_flow;
    source = Scenario.Synthetic;
    corrupted = "objB->unref";
    target = "virtual ~Z()";
    original = info "class X" "class Z";
    corrupted_info = info "class Z" "class Z";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
/* C++-style objects: a vtable slot modeled as a function pointer. */
struct X {
  long refcount;
  void (*unref)(struct X* self);
};
struct Z {
  long state;
  void (*dtor)(struct Z* self);
};
void X_unref(struct X* self) {
  self->refcount = self->refcount - 1;
  printf("X unref -> %ld\n", self->refcount);
}
void Z_dtor(struct Z* self) {
  printf("~Z() gadget reached, state=%ld\n", self->state);
}
struct X* objB;
void release_all(int times) {
  for (int i = 0; i < times; i++) {
    objB->unref(objB);
  }
}
int main(void) {
  struct Z* z = (struct Z*) malloc(sizeof(struct Z));
  z->state = 99;
  z->dtor = Z_dtor;
  objB = (struct X*) malloc(sizeof(struct X));
  objB->refcount = 2;
  objB->unref = X_unref;
  release_all(1);
  release_all(1);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("release_all", 2);
          action =
            smash_newest_alloc ~offset:8L
              ~value:(fun intr -> intr.func_addr "Z_dtor")
              ~note:"counterfeit object: objB->unref = &~Z" ();
        };
      ];
    success = Checks.func_called "Z_dtor";
  }

(* ------------------------------------------------------------------ *)
(* COOP ML-G (synthetic)                                               *)
(* ------------------------------------------------------------------ *)

let coop_ml_g =
  {
    Scenario.id = "coop-ml-g";
    paper_row = "COOP ML-G [73] (S)";
    category = Scenario.Control_flow;
    source = Scenario.Synthetic;
    corrupted = "students[i]->decCourseCount()";
    target = "virtual ~Course()";
    original = info "void *()" "class Student, class Course";
    corrupted_info = info "class Course" "class Course";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct Student {
  long courses;
  void (*decCourseCount)(struct Student* self);
};
struct Course {
  long id;
  void (*dtor)(struct Course* self);
};
void Student_decCourseCount(struct Student* self) {
  self->courses = self->courses - 1;
}
void Course_dtor(struct Course* self) {
  printf("~Course() gadget, id=%ld\n", self->id);
}
struct Student* students[4];
void drop_course(int n) {
  for (int i = 0; i < n; i++) {
    students[i]->decCourseCount(students[i]);
  }
}
int main(void) {
  struct Course* c = (struct Course*) malloc(sizeof(struct Course));
  c->id = 42;
  c->dtor = Course_dtor;
  for (int i = 0; i < 4; i++) {
    struct Student* s = (struct Student*) malloc(sizeof(struct Student));
    s->courses = 5;
    s->decCourseCount = Student_decCourseCount;
    students[i] = s;
  }
  drop_course(4);
  drop_course(4);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("drop_course", 2);
          action =
            smash_newest_alloc ~offset:8L
              ~value:(fun intr -> intr.func_addr "Course_dtor")
              ~note:"main-loop gadget: student vptr slot -> ~Course" ();
        };
      ];
    success = Checks.func_called "Course_dtor";
  }

(* ------------------------------------------------------------------ *)
(* PittyPat COOP (synthetic): signed-pointer replay between classes    *)
(* ------------------------------------------------------------------ *)

let pittypat_coop =
  {
    Scenario.id = "pittypat-coop";
    paper_row = "PittyPat COOP Attack [31] (S)";
    category = Scenario.Control_flow;
    source = Scenario.Synthetic;
    corrupted = "member_2->registration";
    target = "member_1->registration";
    original = info "void*()" "main, class Student";
    corrupted_info = info "void*()" "main, class Teacher";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
struct Student {
  long id;
  void (*registration)(long id);
};
struct Teacher {
  long id;
  void (*registration)(long id);
};
void student_register(long id) {
  printf("student %ld registered (privileged path!)\n", id);
}
void teacher_register(long id) {
  printf("teacher %ld registered\n", id);
}
struct Student* member_1;
struct Teacher* member_2;
void do_registration(int round) {
  member_2->registration(member_2->id);
}
int main(void) {
  member_1 = (struct Student*) malloc(sizeof(struct Student));
  member_1->id = 1;
  member_1->registration = student_register;
  member_2 = (struct Teacher*) malloc(sizeof(struct Teacher));
  member_2->id = 2;
  member_2->registration = teacher_register;
  do_registration(1);
  do_registration(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("do_registration", 2);
          action =
            (fun intr ->
              (* Replay, not forgery: copy the *stored* (signed, under
                 RSTI) word from the Student object's slot into the
                 Teacher object's slot. Succeeds only if both slots carry
                 the same RSTI-type. *)
              match intr.heap_allocs () with
              | (teacher, _) :: (student, _) :: _ ->
                  intr.note "replay member_1->registration into member_2";
                  intr.write_word (Int64.add teacher 8L)
                    (intr.read_word (Int64.add student 8L))
              | _ -> ());
        };
      ];
    success = Checks.output_contains "privileged path";
  }

(* ------------------------------------------------------------------ *)
(* DOP ProFTPd (data-oriented): &ServerName corrupted from resp_buf    *)
(* ------------------------------------------------------------------ *)

let dop_proftpd =
  {
    Scenario.id = "dop-proftpd";
    paper_row = "DOP ProFTPd Attack [44] (R)";
    category = Scenario.Data_oriented;
    source = Scenario.Real;
    corrupted = "&ServerName";
    target = "resp_buf, ssl_ctx";
    original = info "const char*" "core_display_file";
    corrupted_info = info "char*" "pr_response_send_raw";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strcpy(char* dst, const char* src);
/* The secret the DOP chain exfiltrates (stands in for the SSL key). */
char ssl_private_key[32];
const char* ServerName = "ProFTPD Server";
char* resp_buf;
void pr_response_send_raw(const char* data) {
  strcpy(resp_buf, data);
}
void core_display_file(int round) {
  /* the leak gadget: dereferences ServerName and sends it out */
  printf("220 %s ready\n", ServerName);
}
int main(void) {
  strcpy(ssl_private_key, "KEY-MAT-0xDEADBEEF");
  resp_buf = (char*) malloc(64);
  pr_response_send_raw("USER anonymous");
  core_display_file(1);
  core_display_file(2);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("core_display_file", 2);
          action =
            (fun intr ->
              (* The DOP load gadget overwrites the ServerName pointer
                 slot with the (signed) resp_buf pointer — here redirected
                 at the secret, which the next display leaks. *)
              intr.note "DOP: &ServerName <- pointer to ssl_private_key";
              intr.write_word
                (intr.global_addr "ServerName")
                (intr.read_word (intr.global_addr "resp_buf"));
              intr.write_string
                (Int64.logand
                   (intr.read_word (intr.global_addr "resp_buf"))
                   0xFFFFFFFFFFFFL)
                (intr.read_string (intr.global_addr "ssl_private_key")))
        };
      ];
    success = Checks.output_contains "KEY-MAT";
  }

(* ------------------------------------------------------------------ *)
(* NEWTON CPI: v[index].get_handler -> dlopen                          *)
(* ------------------------------------------------------------------ *)

let newton_cpi =
  {
    Scenario.id = "newton-cpi";
    paper_row = "NEWTON CPI Attack [81] (R)";
    category = Scenario.Data_oriented;
    source = Scenario.Real;
    corrupted = "v[index].get_handler";
    target = "dlopen";
    original = info "ngx_http_get_variable_pt" "ngx_http_get_indexed_variable";
    corrupted_info = info "void* (const char*, int)" "ngx_load_module";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern void* dlopen(const char* path, int flags);
struct ngx_http_variable {
  long index;
  long (*get_handler)(long data);
};
long ngx_http_variable_request(long data) {
  return data * 2;
}
struct ngx_http_variable* v;
long ngx_http_get_indexed_variable(long index) {
  return v[index].get_handler(index);
}
int main(void) {
  v = (struct ngx_http_variable*) malloc(4 * sizeof(struct ngx_http_variable));
  for (int i = 0; i < 4; i++) {
    v[i].index = i;
    v[i].get_handler = ngx_http_variable_request;
  }
  long a = ngx_http_get_indexed_variable(1);
  long b = ngx_http_get_indexed_variable(2);
  printf("vars %ld %ld\n", a, b);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("ngx_http_get_indexed_variable", 2);
          action =
            smash_newest_alloc ~offset:40L (* v[2].get_handler *)
              ~value:(fun intr -> intr.func_addr "dlopen")
              ~note:"overwrite v[2].get_handler with &dlopen" ();
        };
      ];
    success = Checks.extern_called "dlopen";
  }

(* ------------------------------------------------------------------ *)
(* GHTTPD (Figure 2, data-oriented motivating example)                 *)
(* ------------------------------------------------------------------ *)

let ghttpd =
  {
    Scenario.id = "ghttpd";
    paper_row = "GHTTPD data-oriented example (Fig. 2)";
    category = Scenario.Data_oriented;
    source = Scenario.Real;
    corrupted = "ptr";
    target = "crafted URL";
    original = info "char*" "serveconnection";
    corrupted_info = info "char*" "attacker-controlled";
    program =
      {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern char* strstr(const char* hay, const char* needle);
extern char* strcpy(char* dst, const char* src);
extern int system(const char* cmd);
struct request {
  char url[64];
  char* ptr;
};
void log_request(struct request* req) {
  /* sprintf-based logging: the buffer overflow lives here */
  printf("LOG %s\n", req->ptr);
}
int serveconnection(struct request* req) {
  if (strstr(req->ptr, "/..")) {
    return -1;
  }
  log_request(req);
  if (strstr(req->ptr, "cgi-bin")) {
    system(req->ptr);
    return 1;
  }
  return 0;
}
int main(void) {
  struct request* req = (struct request*) malloc(sizeof(struct request));
  strcpy(req->url, "/index.html");
  req->ptr = req->url;
  int r = serveconnection(req);
  printf("served: %d\n", r);
  return 0;
}
|};
    attacks =
      [
        {
          Interp.trigger = Interp.On_call ("log_request", 1);
          action =
            (fun intr ->
              match intr.heap_allocs () with
              | (req, _) :: _ ->
                  intr.note "overflow in log(): req->ptr -> crafted URL";
                  (* plant the crafted URL past the checked prefix and
                     redirect the already-validated pointer at it *)
                  let crafted = Int64.add req 32L in
                  intr.write_string crafted "cgi-bin/../../../../bin/sh";
                  intr.write_word (Int64.add req 64L) crafted
              | [] -> ());
        };
      ];
    success = Checks.extern_called "system";
  }

let table1 =
  [
    newton_cscfi; aocr_nginx1; aocr_nginx2; aocr_apache; control_jujutsu;
    cve_libtiff; cve_python; coop_rec_g; coop_ml_g; pittypat_coop;
    dop_proftpd; newton_cpi;
  ]

let all = table1 @ [ ghttpd ]

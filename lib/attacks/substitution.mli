(** Pointer-substitution (replay) micro-scenarios reproducing Table 2:
    what each mechanism can and cannot stop when the attacker reuses a
    *validly signed* pointer instead of forging one.

    Expected matrix (checked by the test suite and printed by the bench):

    - {!same_rsti_replay} — both pointers share one RSTI-type (an
      equivalence class of size 2): STWC and STC miss it, STL detects it
      (the location [&p] differs).
    - {!cast_merged_replay} — the types are distinct but cast-compatible:
      STC (which merges them) misses it, STWC and STL detect it.
    - {!cross_scope_replay} — same basic type, different scope: all three
      RSTI mechanisms detect it; the PARTS baseline (type-only modifier)
      misses it — the paper's section 6.1.2 comparison.
    - {!permission_replay} — const vs non-const: all three detect it;
      PARTS misses it. *)

val same_rsti_replay : Scenario.t
val cast_merged_replay : Scenario.t
val cross_scope_replay : Scenario.t
val permission_replay : Scenario.t

val all : Scenario.t list

val expected :
  (Scenario.t * (Rsti_sti.Rsti_type.mechanism * Scenario.verdict) list) list
(** The expected verdict matrix above, used by tests and the Table 2
    reproduction. *)

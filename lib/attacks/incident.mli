(** Security-event forensics: the static↔dynamic incident coverage map.

    Runs the full Table-1 and Table-2 catalog under every mechanism
    (STWC/STC/STL/PARTS) with the machine's PAC flight recorder on, and
    correlates each detected attack's {!Rsti_machine.Interp.incident}
    with the static substitution-attack-surface partition
    ({!Rsti_dataflow.Equiv}): flight-recorder ops carry the static
    modifier constant, which is exactly the class identity of the
    partition, so every incident resolves to the class(es) of the
    failing authentication site — and, for substitution replays, to the
    class that signed the replayed value.

    The coverage invariant the report and CI assert: {e every} detected
    attack yields an incident that maps into a static artifact (an
    [Equiv] class, or the pointer-to-pointer modifier table for pp
    authentications) — zero unmapped incidents, zero detections without
    a record. Edge-exercise numbers come from the PR-7 cross-validation
    catalog: statically replayable gadget edges confirmed by a
    successful replay, and cross-class controls confirmed by a trap.

    Attack replays bypass the engine's outcome cache, but they are
    deterministic — so the per-run (verdict, incidents) extraction is
    memoized under the engine cache's [incident] stage, keyed on
    (program digest, mechanism, flight capacity). *)

val mechanisms : Rsti_sti.Rsti_type.mechanism list
(** STWC, STC, STL, PARTS — the coverage columns. *)

val default_flight : int
(** Flight-recorder ring capacity used when the caller does not choose
    one (16). *)

type record = {
  r_table : string;  (** ["table1"] or ["table2"] *)
  r_scenario : string;  (** scenario id *)
  r_paper_row : string;
  r_mech : Rsti_sti.Rsti_type.mechanism;
  r_incident : Rsti_machine.Interp.incident;
  r_classes : Rsti_dataflow.Equiv.cls list;
      (** static classes matching the failing site's (modifier, key);
          more than one only under STL, where several
          location-distinguished classes share a modifier constant;
          empty for pp authentications *)
  r_donor_classes : Rsti_dataflow.Equiv.cls list;
      (** classes matching the observed signer, for replay incidents *)
  r_pp : bool;
      (** the failing op is a pointer-to-pointer authentication — it
          maps against the instrumenter's pp modifier table, not the
          slot partition *)
  r_mapped : bool;
      (** the incident resolves into the static attack-surface graph:
          the victim site maps (class or pp table), and the signer, if
          any, maps too *)
}

type run_row = {
  rr_table : string;
  rr_scenario : string;
  rr_mech : Rsti_sti.Rsti_type.mechanism;
  rr_verdict : Scenario.verdict;
  rr_records : record list;
  rr_replay_edges : int;
      (** static replayable gadget edges of this scenario's program
          under this mechanism (unconfined attacker) *)
  rr_feasible_edges : int;
      (** same under the confined linear-overflow attacker *)
}

type mech_cov = {
  mc_mech : Rsti_sti.Rsti_type.mechanism;
  mc_runs : int;
  mc_detected : int;
  mc_incidents : int;
  mc_mapped : int;
  mc_replays : int;  (** incidents with an observed signer *)
  mc_raw : int;  (** incidents from raw (PAC-less) overwrites *)
  mc_static_replay_edges : int;
  mc_static_feasible_edges : int;
  mc_replayable_total : int;
      (** cross-validation catalog pairs statically replayable *)
  mc_replayable_exercised : int;
      (** of those, dynamically confirmed (the replay succeeded) *)
  mc_nonedges_checked : int;
      (** statically non-replayable pairs whose replay trapped *)
  mc_latency_cycles : int list;  (** detection latencies, ascending *)
  mc_latency_instrs : int list;
}

type coverage = {
  cov_flight : int;
  cov_runs : run_row list;  (** (table, scenario, mechanism) order *)
  cov_records : record list;
  cov_mechs : mech_cov list;  (** in {!mechanisms} order *)
  cov_detected : int;
  cov_incidents : int;
  cov_unmapped : int;  (** MUST be 0 *)
  cov_missing : (string * Rsti_sti.Rsti_type.mechanism) list;
      (** detected runs that produced no incident — MUST be empty *)
  cov_crossval : Crossval.catalog_row list;
}

val collect : ?jobs:int -> ?flight:int -> unit -> coverage
(** Run the catalogs and build the coverage map. Parallelized over
    scenarios ([jobs] defers to the scheduler default); deterministic at
    any job count. Emits one ["rsti-incident"] instant mark per incident
    into the span recorder when observability is enabled. *)

val ok : coverage -> bool
(** The CI invariant: [cov_unmapped = 0 && cov_missing = []]. *)

val incident_fields :
  Rsti_machine.Interp.incident -> (string * Rsti_observe.Observe.Json.t) list
(** The raw incident's JSON fields (site, expected/observed signer,
    latency, window size) — what [rstic run --events] emits for a bare
    run, where no scenario/class context exists. *)

val record_fields : record -> (string * Rsti_observe.Observe.Json.t) list
(** The incident record's JSON fields (the [rsti-events/1] payload and
    the report's raw view share this). Deterministic: every value comes
    from the simulated machine, never a wall clock. *)

val mech_fields : mech_cov -> (string * Rsti_observe.Observe.Json.t) list

val emit_events : coverage -> unit
(** Buffer the coverage map into {!Rsti_observe.Observe.Events}: one
    [incident] event per record, one [coverage] event per mechanism,
    one [coverage/summary] event with the verdict. *)

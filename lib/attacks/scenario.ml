module Interp = Rsti_machine.Interp
module Rsti_type = Rsti_sti.Rsti_type

type category = Control_flow | Data_oriented
type source = Real | Synthetic

type info = { ty : string; scope : string }

type t = {
  id : string;
  paper_row : string;
  category : category;
  source : source;
  corrupted : string;
  target : string;
  original : info;
  corrupted_info : info;
  program : string;
  attacks : Interp.attack list;
  success : Interp.outcome -> bool;
}

type verdict = Attack_succeeded | Detected | Attack_failed

let verdict_to_string = function
  | Attack_succeeded -> "ATTACK SUCCEEDED"
  | Detected -> "detected"
  | Attack_failed -> "failed (no detection)"

type run_result = { verdict : verdict; outcome : Interp.outcome }

let run ?(elide = false) scenario mech =
  let m = Rsti_ir.Lower.compile ~file:(scenario.id ^ ".c") scenario.program in
  let anal = Rsti_sti.Analysis.analyze m in
  let elide =
    if elide then
      let e = Rsti_staticcheck.Elide.analyze anal m in
      Some (Rsti_staticcheck.Elide.elide e)
    else None
  in
  let r = Rsti_rsti.Instrument.instrument ?elide mech anal m in
  let vm = Interp.create ~pp_table:r.pp_table r.modul in
  let outcome = Interp.run ~attacks:scenario.attacks vm in
  let verdict =
    if Interp.detected outcome then Detected
    else if scenario.success outcome then Attack_succeeded
    else Attack_failed
  in
  { verdict; outcome }

let run_baseline scenario = run scenario Rsti_type.Nop

(* The CFI baseline: no RSTI instrumentation, signature-based indirect-
   call checking in the machine. The paper's introduction motivates STI
   by the attacks this misses. *)
let run_cfi scenario =
  let m = Rsti_ir.Lower.compile ~file:(scenario.id ^ ".c") scenario.program in
  let vm = Interp.create ~cfi:true m in
  let outcome = Interp.run ~attacks:scenario.attacks vm in
  let verdict =
    match outcome.Interp.status with
    | Interp.Trapped (Interp.Cfi_violation _) -> Detected
    | _ ->
        if scenario.success outcome then Attack_succeeded
        else Attack_failed
  in
  { verdict; outcome }

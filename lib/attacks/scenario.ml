module Interp = Rsti_machine.Interp
module Rsti_type = Rsti_sti.Rsti_type

type category = Control_flow | Data_oriented
type source = Real | Synthetic

type info = { ty : string; scope : string }

type t = {
  id : string;
  paper_row : string;
  category : category;
  source : source;
  corrupted : string;
  target : string;
  original : info;
  corrupted_info : info;
  program : string;
  attacks : Interp.attack list;
  success : Interp.outcome -> bool;
}

type verdict = Attack_succeeded | Detected | Attack_failed

let verdict_to_string = function
  | Attack_succeeded -> "ATTACK SUCCEEDED"
  | Detected -> "detected"
  | Attack_failed -> "failed (no detection)"

type run_result = { verdict : verdict; outcome : Interp.outcome }

module Pipeline = Rsti_engine.Pipeline

let analyzed_victim scenario config =
  Pipeline.analyze ~config
    (Pipeline.compile ~config
       (Pipeline.source ~file:(scenario.id ^ ".c") scenario.program))

let run ?(elision = Rsti_staticcheck.Elide.Off) ?(flight = 0) scenario mech =
  let config = { Pipeline.default with Pipeline.elision } in
  let inst = Pipeline.instrument ~config mech (analyzed_victim scenario config) in
  let outcome = Pipeline.run ~config ~attacks:scenario.attacks ~flight inst in
  let verdict =
    if Interp.detected outcome then Detected
    else if scenario.success outcome then Attack_succeeded
    else Attack_failed
  in
  { verdict; outcome }

let run_baseline scenario = run scenario Rsti_type.Nop

(* The CFI baseline: no RSTI instrumentation, signature-based indirect-
   call checking in the machine. The paper's introduction motivates STI
   by the attacks this misses. *)
let run_cfi scenario =
  let config = Pipeline.default in
  let compiled =
    Pipeline.compile ~config
      (Pipeline.source ~file:(scenario.id ^ ".c") scenario.program)
  in
  let outcome =
    Pipeline.run_baseline ~config ~cfi:true ~attacks:scenario.attacks compiled
  in
  let verdict =
    match outcome.Interp.status with
    | Interp.Trapped (Interp.Cfi_violation _) -> Detected
    | _ ->
        if scenario.success outcome then Attack_succeeded
        else Attack_failed
  in
  { verdict; outcome }

(** [rsti_observe] — the zero-dependency telemetry core threaded through
    every layer of the stack (pipeline stages, scheduler tasks, cache
    lookups, dataflow fixpoints; the machine's hot-site profiler lives in
    {!Rsti_machine.Interp} and flows out through its [outcome]).

    Three instruments:

    - {!Span}: a process-global, domain-safe span recorder — monotonic
      clock, parent/child nesting (propagated across domain fan-out via
      {!Span.current_context}), key:value attributes — with two sinks:
      Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
      and an aggregated text summary tree.
    - {!Metrics}: a typed counter/gauge/histogram registry replacing the
      ad-hoc counters that used to live in each subsystem, dumped as one
      machine-readable JSON document.
    - {!Json}: the minimal emission substrate both sinks share (the
      library depends on nothing else in the tree, so it cannot reuse
      [Rsti_staticcheck.Json]).

    Overhead contract: spans are recorded only while {!enabled} — when
    disabled, {!Span.enter} returns the preallocated {!Span.none} handle
    and records nothing, so instrumented hot paths allocate nothing.
    Metric counters are lock-free atomics and stay live even when spans
    are disabled (they replace counters the engine always maintained);
    anything more expensive than a counter bump (e.g. tallying an
    elision summary) must itself be gated on {!enabled}. *)

val set_enabled : bool -> unit
(** Default [false]. Enables span recording (and the derived tallies
    gated on {!enabled}). *)

val enabled : unit -> bool

val reset : unit -> unit
(** {!Span.reset} plus {!Metrics.reset} plus {!Events.reset}: drop
    recorded spans, instants and events, zero every metric
    (registrations survive). *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. *)

(** Minimal JSON emission (duplicated from [Rsti_staticcheck.Json]
    because this library sits below everything and must stay
    dependency-free). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** NaN/infinities render as [null] *)
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
end

(** The span recorder. *)
module Span : sig
  type t
  (** A live span handle. *)

  val none : t
  (** The no-op handle {!enter} returns while recording is disabled;
      {!add_attr} and {!exit} on it do nothing and allocate nothing. *)

  val enter : ?attrs:(string * string) list -> string -> t
  (** Open a span named [name] under the current domain's innermost open
      span (or the installed {!context}). *)

  val add_attr : t -> string -> string -> unit
  (** Attach a key:value attribute to a live span (useful for results
      known only at exit: hit/miss, iteration counts). *)

  val exit : t -> unit
  (** Close the span and append it to the process-global record list. *)

  val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [enter]/[exit] around a closure, exception-safe. *)

  val with_span : ?attrs:(string * string) list -> string -> (t -> 'a) -> 'a
  (** {!with_} handing the live span to the closure so it can
      {!add_attr} results discovered mid-flight. *)

  type context
  (** A capture of "the span new work should nest under" — what a
      fan-out point passes to worker domains so their spans parent under
      the caller's span instead of floating as roots. *)

  val current_context : unit -> context
  val with_context : context -> (unit -> 'a) -> 'a

  (** A finished span. [parent = -1] means root. *)
  type record = {
    id : int;
    parent : int;
    name : string;
    attrs : (string * string) list;
    t_start_ns : int64;
    t_end_ns : int64;
    domain : int;  (** the domain the span ran on *)
  }

  val records : unit -> record list
  (** Finished spans, ordered by start time (ties by id). *)

  val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit
  (** Record a point-in-time mark (a Chrome "i" instant event) under
      category [cat] (default ["rsti"]). Security-event marks use their
      own category (e.g. ["rsti-incident"]) so trace viewers can filter
      them against the pipeline-stage tracks. No-op while disabled. *)

  val reset : unit -> unit

  val chrome_trace : unit -> Json.t
  (** The Chrome trace-event document ([{"traceEvents": [...]}], "X"
      complete events, one track per domain) — loadable in Perfetto and
      chrome://tracing. Span attributes appear under [args], including
      the cross-domain [parent] id. {!instant} marks follow the complete
      events as "i"-phase entries under their own category, with the
      same key set (dur = 0) so uniform consumers need no special
      casing. *)

  val summary_tree : ?max_depth:int -> unit -> string
  (** Aggregated text tree: children grouped by name under their
      parent's path, with call counts and total/self wall time. *)
end

(** The metrics registry. Names are dotted paths ([cache.analysis.hits],
    [scheduler.steals]); registration is idempotent and every mutation
    is domain-safe. *)
module Metrics : sig
  type counter

  val counter : string -> counter
  (** Get or create the counter registered under [name]. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int
  val set : counter -> int -> unit

  type gauge

  val gauge : string -> gauge
  val set_gauge : gauge -> int -> unit
  val gauge_value : gauge -> int

  type histogram

  val histogram : string -> histogram

  val observe : histogram -> float -> unit
  (** Record one observation (count/sum/min/max are maintained, and the
      sample is retained for percentile summaries). *)

  val percentile : histogram -> float -> float
  (** [percentile h q] with [q] in [\[0,1\]]: type-7 quantile (linear
      interpolation between order statistics, the R default — matching
      [Rsti_util.Stats.quantile]) over every retained sample. [nan] on
      an empty histogram. *)

  val counters : unit -> (string * int) list
  (** Every registered counter with its value, sorted by name. *)

  val reset : unit -> unit
  (** Zero all values; registrations survive. *)

  val to_json : unit -> Json.t
  (** The whole registry as one document:
      [{"schema": "rsti-metrics/1", "counters": {...}, "gauges": {...},
        "histograms": {name: {count, sum, min, max, p50, p90, p99}}}],
      keys sorted, so equal registries render byte-identically. *)
end

(** The security-event log: a process-global buffer of structured
    events rendered as one JSON-Lines document (schema [rsti-events/1]).
    Unlike spans, emission is not gated on {!enabled} — callers emit
    only from already-rare paths (incident extraction), and the sink is
    written only when a consumer asks for it ([rstic run --events],
    bench). Determinism contract: {!Events.to_jsonl} orders the rendered
    lines lexicographically, so the byte stream is identical at any
    [--jobs] provided event payloads are themselves deterministic
    (simulated cycle counts, never wall-clock). *)
module Events : sig
  val emit : cat:string -> name:string -> (string * Json.t) list -> unit
  (** Buffer one event. [cat]/[name] render as the first two fields of
      the line. *)

  val count : unit -> int
  (** Events buffered so far. *)

  val to_jsonl : unit -> string
  (** The full document: a [{"schema":"rsti-events/1","events":N}]
      header line followed by one compact JSON object per event, lines
      sorted lexicographically, trailing newline. *)

  val reset : unit -> unit
end

(* The telemetry core. Sits below every other library in the tree
   (depends only on the monotonic-clock stub), so the engine, the
   dataflow solvers and the static checker can all report into one
   process-global recorder without dependency cycles.

   Domain safety: the span list and the metric registry are mutex-
   guarded on the slow paths (span completion, metric registration);
   counter bumps are lock-free atomics; per-domain nesting state lives
   in Domain.DLS. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let now_ns () = Monotonic_clock.now ()

(* ------------------------------ JSON ------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_string ?(indent = true) t =
    let buf = Buffer.create 1024 in
    let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
    let nl () = if indent then Buffer.add_char buf '\n' in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (string_of_bool b)
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f ->
          if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
          else Buffer.add_string buf "null"
      | Str s ->
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape s);
          Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List xs ->
          Buffer.add_char buf '[';
          nl ();
          List.iteri
            (fun i x ->
              if i > 0 then (Buffer.add_char buf ','; nl ());
              pad (depth + 1);
              go (depth + 1) x)
            xs;
          nl ();
          pad depth;
          Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj kvs ->
          Buffer.add_char buf '{';
          nl ();
          List.iteri
            (fun i (k, v) ->
              if i > 0 then (Buffer.add_char buf ','; nl ());
              pad (depth + 1);
              Buffer.add_char buf '"';
              Buffer.add_string buf (escape k);
              Buffer.add_string buf (if indent then "\": " else "\":");
              go (depth + 1) v)
            kvs;
          nl ();
          pad depth;
          Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf
end

(* ------------------------------ spans ------------------------------ *)

module Span = struct
  type record = {
    id : int;
    parent : int;
    name : string;
    attrs : (string * string) list;
    t_start_ns : int64;
    t_end_ns : int64;
    domain : int;
  }

  type t = {
    s_id : int;                                  (* -1 = the none handle *)
    s_parent : int;
    s_name : string;
    mutable s_attrs : (string * string) list;    (* reverse order *)
    s_start : int64;
    s_domain : int;
  }

  let none =
    { s_id = -1; s_parent = -1; s_name = ""; s_attrs = []; s_start = 0L;
      s_domain = 0 }

  (* A point-in-time mark (Chrome "i" instant event). Security events
     use their own category so trace viewers can filter them out of the
     pipeline-stage tracks. *)
  type instant_record = {
    i_name : string;
    i_cat : string;
    i_attrs : (string * string) list;
    i_ts_ns : int64;
    i_domain : int;
  }

  let next_id = Atomic.make 0
  let lock = Mutex.create ()
  let finished : record list ref = ref []        (* reverse completion order *)
  let instants_rev : instant_record list ref = ref []

  (* Innermost-open-span stack per domain; the int at the bottom is the
     installed cross-domain context (-1 = root). *)
  let stack : int list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

  type context = int

  let current_context () =
    match Domain.DLS.get stack with id :: _ -> id | [] -> -1

  let with_context ctx f =
    let saved = Domain.DLS.get stack in
    Domain.DLS.set stack [ ctx ];
    Fun.protect ~finally:(fun () -> Domain.DLS.set stack saved) f

  let enter ?(attrs = []) name =
    if not (enabled ()) then none
    else begin
      let id = Atomic.fetch_and_add next_id 1 in
      let parent = current_context () in
      Domain.DLS.set stack (id :: Domain.DLS.get stack);
      {
        s_id = id;
        s_parent = parent;
        s_name = name;
        s_attrs = List.rev attrs;
        s_start = now_ns ();
        s_domain = (Domain.self () :> int);
      }
    end

  let add_attr t k v = if t.s_id >= 0 then t.s_attrs <- (k, v) :: t.s_attrs

  let exit t =
    if t.s_id >= 0 then begin
      let t_end = now_ns () in
      (match Domain.DLS.get stack with
      | top :: rest when top = t.s_id -> Domain.DLS.set stack rest
      | _ -> ());
      let r =
        {
          id = t.s_id;
          parent = t.s_parent;
          name = t.s_name;
          attrs = List.rev t.s_attrs;
          t_start_ns = t.s_start;
          t_end_ns = t_end;
          domain = t.s_domain;
        }
      in
      Mutex.lock lock;
      finished := r :: !finished;
      Mutex.unlock lock
    end

  let with_ ?attrs name f =
    let sp = enter ?attrs name in
    Fun.protect ~finally:(fun () -> exit sp) f

  let with_span ?attrs name f =
    let sp = enter ?attrs name in
    Fun.protect ~finally:(fun () -> exit sp) (fun () -> f sp)

  let instant ?(cat = "rsti") ?(attrs = []) name =
    if enabled () then begin
      let r =
        {
          i_name = name;
          i_cat = cat;
          i_attrs = attrs;
          i_ts_ns = now_ns ();
          i_domain = (Domain.self () :> int);
        }
      in
      Mutex.lock lock;
      instants_rev := r :: !instants_rev;
      Mutex.unlock lock
    end

  let records () =
    Mutex.lock lock;
    let rs = !finished in
    Mutex.unlock lock;
    List.sort
      (fun a b ->
        match Int64.compare a.t_start_ns b.t_start_ns with
        | 0 -> compare a.id b.id
        | c -> c)
      rs

  let instants () =
    Mutex.lock lock;
    let rs = !instants_rev in
    Mutex.unlock lock;
    List.sort
      (fun a b ->
        match Int64.compare a.i_ts_ns b.i_ts_ns with
        | 0 -> compare (a.i_cat, a.i_name) (b.i_cat, b.i_name)
        | c -> c)
      rs

  let reset () =
    Mutex.lock lock;
    finished := [];
    instants_rev := [];
    Mutex.unlock lock

  (* Chrome trace-event JSON: "X" (complete) events, microsecond
     timestamps, one track (tid) per domain. *)
  let chrome_trace () =
    let us ns = Int64.to_float ns /. 1000.0 in
    let event (r : record) =
      Json.Obj
        [
          ("name", Json.Str r.name);
          ("cat", Json.Str "rsti");
          ("ph", Json.Str "X");
          ("ts", Json.Float (us r.t_start_ns));
          ("dur", Json.Float (us (Int64.sub r.t_end_ns r.t_start_ns)));
          ("pid", Json.Int 1);
          ("tid", Json.Int r.domain);
          ( "args",
            Json.Obj
              (("parent", Json.Int r.parent)
              :: List.map (fun (k, v) -> (k, Json.Str v)) r.attrs) );
        ]
    in
    (* Instant ("i") events keep the same key set as the complete ones
       (dur = 0) so a sink that iterates events uniformly never has to
       special-case them; viewers ignore dur on "i". *)
    let instant_event (r : instant_record) =
      Json.Obj
        [
          ("name", Json.Str r.i_name);
          ("cat", Json.Str r.i_cat);
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("ts", Json.Float (us r.i_ts_ns));
          ("dur", Json.Float 0.0);
          ("pid", Json.Int 1);
          ("tid", Json.Int r.i_domain);
          ( "args",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.i_attrs) );
        ]
    in
    Json.Obj
      [
        ( "traceEvents",
          Json.List
            (List.map event (records ())
            @ List.map instant_event (instants ())) );
        ("displayTimeUnit", Json.Str "ns");
      ]

  (* Aggregated summary tree: group spans by (parent path, name), with
     call counts and total/self duration. *)
  let summary_tree ?(max_depth = 6) () =
    let rs = records () in
    let children : (int, record list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let l =
          match Hashtbl.find_opt children r.parent with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace children r.parent l;
              l
        in
        l := r :: !l)
      rs;
    (* parents recorded in this snapshot; a span whose parent finished
       outside the snapshot window is treated as a root *)
    let known = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace known r.id ()) rs;
    let dur r = Int64.to_float (Int64.sub r.t_end_ns r.t_start_ns) /. 1e6 in
    let buf = Buffer.create 1024 in
    let rec emit depth group_name members =
      if depth <= max_depth then begin
        let total = List.fold_left (fun a r -> a +. dur r) 0.0 members in
        Buffer.add_string buf
          (Printf.sprintf "%s%-*s  n=%-5d total=%.3f ms\n"
             (String.make (2 * depth) ' ')
             (max 1 (36 - (2 * depth)))
             group_name (List.length members) total);
        let kids =
          List.concat_map
            (fun r ->
              match Hashtbl.find_opt children r.id with
              | Some l -> !l
              | None -> [])
            members
        in
        let by_name = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun (r : record) ->
            match Hashtbl.find_opt by_name r.name with
            | Some l -> l := r :: !l
            | None ->
                let l = ref [ r ] in
                Hashtbl.replace by_name r.name l;
                order := r.name :: !order)
          (List.rev kids);
        List.iter
          (fun name -> emit (depth + 1) name (List.rev !(Hashtbl.find by_name name)))
          (List.rev !order)
      end
    in
    let roots =
      List.filter (fun r -> r.parent < 0 || not (Hashtbl.mem known r.parent)) rs
    in
    let by_name = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (r : record) ->
        match Hashtbl.find_opt by_name r.name with
        | Some l -> l := r :: !l
        | None ->
            let l = ref [ r ] in
            Hashtbl.replace by_name r.name l;
            order := r.name :: !order)
      roots;
    List.iter
      (fun name -> emit 0 name (List.rev !(Hashtbl.find by_name name)))
      (List.rev !order);
    Buffer.contents buf
end

(* ----------------------------- metrics ----------------------------- *)

module Metrics = struct
  type counter = int Atomic.t
  type gauge = int Atomic.t

  type hist = {
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    mutable h_samples : float list;  (* reverse observation order *)
  }

  type histogram = hist

  type metric = Counter of counter | Gauge of gauge | Histogram of hist

  let lock = Mutex.create ()
  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  let register name make get =
    Mutex.lock lock;
    let m =
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace registry name m;
          m
    in
    Mutex.unlock lock;
    get name m

  let counter name =
    register name
      (fun () -> Counter (Atomic.make 0))
      (fun name -> function
        | Counter c -> c
        | _ -> invalid_arg ("Observe.Metrics.counter: " ^ name ^ " is not a counter"))

  let incr c = Atomic.incr c
  let add c n = ignore (Atomic.fetch_and_add c n)
  let value c = Atomic.get c
  let set c n = Atomic.set c n

  let gauge name =
    register name
      (fun () -> Gauge (Atomic.make 0))
      (fun name -> function
        | Gauge g -> g
        | _ -> invalid_arg ("Observe.Metrics.gauge: " ^ name ^ " is not a gauge"))

  let set_gauge g n = Atomic.set g n
  let gauge_value g = Atomic.get g

  let histogram name =
    register name
      (fun () ->
        Histogram
          { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
            h_samples = [] })
      (fun name -> function
        | Histogram h -> h
        | _ ->
            invalid_arg ("Observe.Metrics.histogram: " ^ name ^ " is not a histogram"))

  let observe h x =
    Mutex.lock lock;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. x;
    if x < h.h_min then h.h_min <- x;
    if x > h.h_max then h.h_max <- x;
    h.h_samples <- x :: h.h_samples;
    Mutex.unlock lock

  (* Type-7 quantile (the R default, matching Rsti_util.Stats.quantile,
     which this library cannot depend on): linear interpolation between
     order statistics of the retained samples. *)
  let quantile_of_sorted (xs : float array) q =
    let n = Array.length xs in
    if n = 1 then xs.(0)
    else begin
      let h = q *. float_of_int (n - 1) in
      let i = min (n - 2) (int_of_float (Float.floor h)) in
      let frac = h -. float_of_int i in
      xs.(i) +. (frac *. (xs.(i + 1) -. xs.(i)))
    end

  let percentile h q =
    Mutex.lock lock;
    let samples = h.h_samples in
    Mutex.unlock lock;
    match samples with
    | [] -> nan
    | samples ->
        let xs = Array.of_list samples in
        Array.sort compare xs;
        quantile_of_sorted xs q

  let sorted_fold f =
    Mutex.lock lock;
    let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
    Mutex.unlock lock;
    List.filter_map f (List.sort (fun (a, _) (b, _) -> compare a b) all)

  let counters () =
    sorted_fold (function
      | name, Counter c -> Some (name, Atomic.get c)
      | _ -> None)

  let reset () =
    Mutex.lock lock;
    Hashtbl.iter
      (fun _ -> function
        | Counter c -> Atomic.set c 0
        | Gauge g -> Atomic.set g 0
        | Histogram h ->
            h.h_count <- 0;
            h.h_sum <- 0.0;
            h.h_min <- infinity;
            h.h_max <- neg_infinity;
            h.h_samples <- [])
      registry;
    Mutex.unlock lock

  let to_json () =
    let counters =
      sorted_fold (function
        | name, Counter c -> Some (name, Json.Int (Atomic.get c))
        | _ -> None)
    in
    let gauges =
      sorted_fold (function
        | name, Gauge g -> Some (name, Json.Int (Atomic.get g))
        | _ -> None)
    in
    let hists =
      sorted_fold (function
        | name, Histogram h ->
            let pct q =
              if h.h_count = 0 then Json.Null
              else
                let xs = Array.of_list h.h_samples in
                Array.sort compare xs;
                Json.Float (quantile_of_sorted xs q)
            in
            Some
              ( name,
                Json.Obj
                  [
                    ("count", Json.Int h.h_count);
                    ("sum", Json.Float h.h_sum);
                    ("min", if h.h_count = 0 then Json.Null else Json.Float h.h_min);
                    ("max", if h.h_count = 0 then Json.Null else Json.Float h.h_max);
                    ("p50", pct 0.50);
                    ("p90", pct 0.90);
                    ("p99", pct 0.99);
                  ] )
        | _ -> None)
    in
    Json.Obj
      [
        ("schema", Json.Str "rsti-metrics/1");
        ("counters", Json.Obj counters);
        ("gauges", Json.Obj gauges);
        ("histograms", Json.Obj hists);
      ]
end

(* --------------------------- event log ----------------------------- *)

module Events = struct
  type event = {
    ev_cat : string;
    ev_name : string;
    ev_fields : (string * Json.t) list;
  }

  let lock = Mutex.create ()
  let buffered : event list ref = ref []

  let emit ~cat ~name fields =
    let ev = { ev_cat = cat; ev_name = name; ev_fields = fields } in
    Mutex.lock lock;
    buffered := ev :: !buffered;
    Mutex.unlock lock

  let count () =
    Mutex.lock lock;
    let n = List.length !buffered in
    Mutex.unlock lock;
    n

  let reset () =
    Mutex.lock lock;
    buffered := [];
    Mutex.unlock lock

  (* One compact JSON object per line, header first. Determinism at any
     --jobs: events from parallel workers arrive in scheduling order, so
     the sink orders the *rendered lines* lexicographically — content,
     not arrival, decides the byte stream. Events must therefore carry
     only deterministic payloads (simulated cycles, not wall clock). *)
  let to_jsonl () =
    Mutex.lock lock;
    let evs = !buffered in
    Mutex.unlock lock;
    let line ev =
      Json.to_string ~indent:false
        (Json.Obj
           (("cat", Json.Str ev.ev_cat)
           :: ("name", Json.Str ev.ev_name)
           :: ev.ev_fields))
    in
    let lines = List.sort compare (List.map line evs) in
    let header =
      Json.to_string ~indent:false
        (Json.Obj
           [
             ("schema", Json.Str "rsti-events/1");
             ("events", Json.Int (List.length lines));
           ])
    in
    String.concat "\n" (header :: lines) ^ "\n"
end

let reset () =
  Span.reset ();
  Metrics.reset ();
  Events.reset ()

(* The LLVM-like intermediate representation.

   Shape: register machine over basic blocks, alloca-based locals (the
   form clang emits at -O0, which is also what the paper's load/store
   instrumentation operates on). Virtual registers are assigned exactly
   once by the lowering, so passes may treat the IR as SSA without phis
   (mutation goes through memory).

   Every load/store carries (a) a [slot] identifying *what* is accessed —
   a named variable, a struct field, or an anonymous deref target keyed by
   its type — which is the hook the STI analysis and the RSTI
   instrumentation key modifiers on, and (b) a [Dinfo.di_location] giving
   the enclosing function, mirroring LLVM's !dbg attachments. *)

module Ctype = Rsti_minic.Ctype

type reg = int

type value =
  | Imm of int64
  | Fimm of float
  | Reg of reg
  | Global of string   (* address of a global variable *)
  | Funcaddr of string (* address of a function (code pointer) *)
  | Str of int         (* address of string-table entry *)
  | Null

(* What a memory access touches, as recoverable from IR + debug info. *)
type slot =
  | Svar of int                  (* a named variable's storage (by var id) *)
  | Sfield of string * string    (* a struct field: (struct name, field) *)
  | Sanon of Ctype.t             (* reached through an arbitrary pointer:
                                    keyed by the slot's static type *)

type float_op = Fop | Iop  (* float or integer flavour of an arithmetic op *)

(* PA modifiers as materialized by the RSTI pass: a compile-time constant
   derived from the RSTI-type, optionally combined with the address of the
   accessed slot at runtime (the STL mechanism's "&p"). *)
type modifier =
  | Mconst of int64
  | Mloc of int64   (* constant XOR slot address, computed at runtime *)

type pac_kind =
  | Ksign          (* pac* : add a PAC *)
  | Kauth          (* aut* : verify and strip *)
  | Kresign        (* aut+pac fused at a legitimate cast (STWC/STL) *)
  | Kstrip         (* xpac : strip without checking (external calls) *)

type pac = {
  p_kind : pac_kind;
  p_dst : reg;
  p_src : value;
  p_key : Rsti_pa.Key.which;
  p_mod : modifier;          (* for Kresign: the *target* modifier *)
  p_mod_from : modifier;     (* Kresign only: the source modifier *)
  p_slot_addr : value;       (* address the Mloc modifier binds to; Null
                                when the modifier is Mconst *)
}

and instr = { i : instr_desc; dbg : Dinfo.di_location option }

and instr_desc =
  | Alloca of { dst : reg; ty : Ctype.t; dv : Dinfo.di_variable option }
  | Load of { dst : reg; addr : value; ty : Ctype.t; slot : slot }
  | Store of { src : value; addr : value; ty : Ctype.t; slot : slot }
  | Gep of { dst : reg; base : value; sname : string; field : string }
  | Gepidx of { dst : reg; base : value; elem : Ctype.t; idx : value }
  | Bitcast of { dst : reg; src : value; from_ty : Ctype.t; to_ty : Ctype.t }
  | Binop of { dst : reg; op : Rsti_minic.Ast.binop; fl : float_op; a : value; b : value }
  | Neg of { dst : reg; fl : float_op; src : value }
  | Lognot of { dst : reg; src : value }
  | Bitnot of { dst : reg; src : value }
  | Cast_num of { dst : reg; src : value; from_ty : Ctype.t; to_ty : Ctype.t }
  | Call of {
      dst : reg option;
      callee : callee;
      args : value list;
      arg_tys : Ctype.t list;
      ret_ty : Ctype.t;
    }
  | Pac of pac
  | Pp of pp_call  (* pointer-to-pointer runtime library (compiler-rt) *)

and callee = Direct of string | Indirect of value

(* The four functions of the paper's pointer-to-pointer library (4.7.7). *)
and pp_call =
  | Pp_add of { pp_addr : value; ce : int }                  (* register FE *)
  | Pp_sign of { dst : reg; src : value; ce : int; slot_addr : value }
  | Pp_auth of { dst : reg; src : value; slot_addr : value }
  | Pp_add_tbi of { dst : reg; src : value; ce : int }

type terminator =
  | Ret of value option
  | Br of int
  | Condbr of value * int * int
  | Unreachable

type block = { label : int; mutable instrs : instr list; mutable term : terminator }

type func = {
  name : string;
  ret : Ctype.t;
  params : Rsti_minic.Tast.var list;
  mutable blocks : block array;
  mutable nregs : int;
  loc : Rsti_minic.Loc.t;
}

type global_def = { gvar : Rsti_minic.Tast.var }

type modul = {
  m_structs : (string * (string * Ctype.t) list) list;
  m_globals : global_def list;
  m_funcs : func list;
  m_strings : string array;
  m_externs : (string * Ctype.t) list;
}

(* The synthetic function that runs global initializers before [main]. *)
let global_init_name = "__rsti_global_init"

let find_func m name = List.find_opt (fun f -> f.name = name) m.m_funcs

let struct_lookup m name =
  match List.assoc_opt name m.m_structs with
  | Some fields -> fields
  | None -> invalid_arg ("Ir.struct_lookup: unknown struct " ^ name)

let sizeof m ty = Ctype.sizeof ~lookup:(struct_lookup m) ty

let field_offset m sname fname =
  Ctype.field_offset ~lookup:(struct_lookup m) sname fname

let slot_to_string = function
  | Svar id -> Printf.sprintf "var#%d" id
  | Sfield (s, f) -> Printf.sprintf "%s.%s" s f
  | Sanon ty -> Printf.sprintf "anon<%s>" (Ctype.to_string ty)

(* ----------------------------------------------------------------- *)
(* Traversals                                                         *)
(* ----------------------------------------------------------------- *)

let iter_instrs f (fn : func) =
  Array.iter (fun b -> List.iter f b.instrs) fn.blocks

let fold_instrs f acc (fn : func) =
  Array.fold_left (fun acc b -> List.fold_left f acc b.instrs) acc fn.blocks

(* ----------------------------------------------------------------- *)
(* Printing (for tests and the CLI's --emit-ir)                       *)
(* ----------------------------------------------------------------- *)

let value_to_string = function
  | Imm n -> Int64.to_string n
  | Fimm x -> Printf.sprintf "%g" x
  | Reg r -> Printf.sprintf "%%r%d" r
  | Global g -> "@" ^ g
  | Funcaddr f -> "@fn:" ^ f
  | Str i -> Printf.sprintf "@str%d" i
  | Null -> "null"

let modifier_to_string = function
  | Mconst m -> Printf.sprintf "0x%Lx" m
  | Mloc m -> Printf.sprintf "0x%Lx^&slot" m

let binop_to_string = Rsti_minic.Pretty.binop_str

let instr_to_string (ins : instr) =
  let v = value_to_string in
  let dbg =
    match ins.dbg with
    | Some d -> Printf.sprintf "  ; !dbg %s:%d" d.Dinfo.dl_func d.Dinfo.dl_line
    | None -> ""
  in
  let body =
    match ins.i with
    | Alloca { dst; ty; dv } ->
        Printf.sprintf "%%r%d = alloca %s%s" dst (Ctype.to_string ty)
          (match dv with
          | Some dv -> Printf.sprintf "  ; !DIVariable %s" dv.Dinfo.dv_name
          | None -> "")
    | Load { dst; addr; ty; slot } ->
        Printf.sprintf "%%r%d = load %s, %s  ; slot %s" dst (Ctype.to_string ty)
          (v addr) (slot_to_string slot)
    | Store { src; addr; ty; slot } ->
        Printf.sprintf "store %s %s, %s  ; slot %s" (Ctype.to_string ty) (v src)
          (v addr) (slot_to_string slot)
    | Gep { dst; base; sname; field } ->
        Printf.sprintf "%%r%d = gep %s, struct %s::%s" dst (v base) sname field
    | Gepidx { dst; base; elem; idx } ->
        Printf.sprintf "%%r%d = gep %s, [%s x %s]" dst (v base) (v idx)
          (Ctype.to_string elem)
    | Bitcast { dst; src; from_ty; to_ty } ->
        Printf.sprintf "%%r%d = bitcast %s : %s to %s" dst (v src)
          (Ctype.to_string from_ty) (Ctype.to_string to_ty)
    | Binop { dst; op; fl; a; b } ->
        Printf.sprintf "%%r%d = %s%s %s, %s" dst
          (if fl = Fop then "f" else "")
          (binop_to_string op) (v a) (v b)
    | Neg { dst; fl; src } ->
        Printf.sprintf "%%r%d = %sneg %s" dst (if fl = Fop then "f" else "") (v src)
    | Lognot { dst; src } -> Printf.sprintf "%%r%d = lognot %s" dst (v src)
    | Bitnot { dst; src } -> Printf.sprintf "%%r%d = bitnot %s" dst (v src)
    | Cast_num { dst; src; from_ty; to_ty } ->
        Printf.sprintf "%%r%d = numcast %s : %s to %s" dst (v src)
          (Ctype.to_string from_ty) (Ctype.to_string to_ty)
    | Call { dst; callee; args; _ } ->
        let callee_s =
          match callee with Direct f -> "@" ^ f | Indirect c -> v c
        in
        Printf.sprintf "%scall %s(%s)"
          (match dst with Some d -> Printf.sprintf "%%r%d = " d | None -> "")
          callee_s
          (String.concat ", " (List.map v args))
    | Pac p ->
        let kind =
          match p.p_kind with
          | Ksign -> "pac"
          | Kauth -> "aut"
          | Kresign -> "resign"
          | Kstrip -> "xpac"
        in
        Printf.sprintf "%%r%d = %s.%s %s, %s" p.p_dst kind
          (Rsti_pa.Key.which_to_string p.p_key) (v p.p_src)
          (modifier_to_string p.p_mod)
    | Pp (Pp_add { pp_addr; ce }) ->
        Printf.sprintf "pp_add %s, CE=%d" (v pp_addr) ce
    | Pp (Pp_sign { dst; src; ce; _ }) ->
        Printf.sprintf "%%r%d = pp_sign %s, CE=%d" dst (v src) ce
    | Pp (Pp_auth { dst; src; _ }) -> Printf.sprintf "%%r%d = pp_auth %s" dst (v src)
    | Pp (Pp_add_tbi { dst; src; ce }) ->
        Printf.sprintf "%%r%d = pp_add_tbi %s, CE=%d" dst (v src) ce
  in
  body ^ dbg

let term_to_string = function
  | Ret None -> "ret void"
  | Ret (Some x) -> "ret " ^ value_to_string x
  | Br l -> Printf.sprintf "br L%d" l
  | Condbr (c, a, b) -> Printf.sprintf "br %s, L%d, L%d" (value_to_string c) a b
  | Unreachable -> "unreachable"

let func_to_string (fn : func) =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "define %s @%s(%s) {\n" (Ctype.to_string fn.ret) fn.name
    (String.concat ", "
       (List.map
          (fun (p : Rsti_minic.Tast.var) ->
            Ctype.to_string p.v_ty ^ " %" ^ p.v_name)
          fn.params));
  Array.iter
    (fun b ->
      Printf.bprintf buf "L%d:\n" b.label;
      List.iter (fun ins -> Printf.bprintf buf "  %s\n" (instr_to_string ins)) b.instrs;
      Printf.bprintf buf "  %s\n" (term_to_string b.term))
    fn.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let modul_to_string (m : modul) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, fields) ->
      Printf.bprintf buf "%%struct.%s = { %s }\n" name
        (String.concat ", " (List.map (fun (f, ty) -> Ctype.to_string ty ^ " " ^ f) fields)))
    m.m_structs;
  List.iter
    (fun g ->
      Printf.bprintf buf "@%s = global %s\n" g.gvar.Rsti_minic.Tast.v_name
        (Ctype.to_string g.gvar.Rsti_minic.Tast.v_ty))
    m.m_globals;
  Array.iteri (fun i s -> Printf.bprintf buf "@str%d = %S\n" i s) m.m_strings;
  Buffer.add_char buf '\n';
  List.iter (fun f -> Buffer.add_string buf (func_to_string f ^ "\n")) m.m_funcs;
  Buffer.contents buf

(** IR well-formedness verifier, run by tests over both freshly lowered
    and instrumented modules (the analogue of LLVM's module verifier).

    Checks, per function:
    - every branch target is a valid block label;
    - every register read is defined by some instruction or is an
      incoming parameter, and no register is defined twice;
    - instruction payloads are sane: loads/stores have loadable types,
      GEP struct/field pairs exist in the module, string-table and
      global references resolve;
    - non-void functions only return values, void functions none;
    - [Pac]/[Pp] instructions reference valid keys and CE range. *)

type error = { fn : string; msg : string }

val verify : Ir.modul -> error list
(** All violations found (empty = well-formed). *)

val verify_exn : Ir.modul -> unit
(** Raises [Failure] with a readable message on the first violation. *)

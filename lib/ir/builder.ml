(* Incremental construction of one IR function: fresh registers, block
   management, instruction emission. The lowering drives this; the RSTI
   instrumentation pass rewrites finished functions instead. *)

type t = {
  func_name : string;
  mutable nregs : int;
  mutable nblocks : int;
  mutable done_blocks : Ir.block list;     (* finished, reverse order *)
  mutable cur_label : int;
  mutable cur_instrs : Ir.instr list;      (* reverse order *)
  mutable cur_line : int;                  (* current !dbg line *)
}

let create ~name ~nparams =
  {
    func_name = name;
    nregs = nparams;
    nblocks = 1;
    done_blocks = [];
    cur_label = 0;
    cur_instrs = [];
    cur_line = 0;
  }

let fresh_reg b =
  let r = b.nregs in
  b.nregs <- r + 1;
  r

let set_line b line = b.cur_line <- line

let dbg b = Some { Dinfo.dl_line = b.cur_line; dl_func = b.func_name }

let emit b desc = b.cur_instrs <- { Ir.i = desc; dbg = dbg b } :: b.cur_instrs

(* Reserve a label to be filled in later (forward branches). *)
let reserve_block b =
  let l = b.nblocks in
  b.nblocks <- l + 1;
  l

(* Close the current block with [term] and start emitting into [label]. *)
let seal_and_start b term label =
  b.done_blocks <-
    { Ir.label = b.cur_label; instrs = List.rev b.cur_instrs; term } :: b.done_blocks;
  b.cur_label <- label;
  b.cur_instrs <- []

let finish b ~default_term =
  b.done_blocks <-
    { Ir.label = b.cur_label; instrs = List.rev b.cur_instrs; term = default_term }
    :: b.done_blocks;
  let blocks = Array.make b.nblocks { Ir.label = -1; instrs = []; term = Ir.Unreachable } in
  List.iter (fun (blk : Ir.block) -> blocks.(blk.label) <- blk) b.done_blocks;
  (* Labels reserved but never started become unreachable stubs. *)
  Array.iteri
    (fun i blk -> if blk.Ir.label = -1 then blocks.(i) <- { Ir.label = i; instrs = []; term = Ir.Unreachable })
    blocks;
  (blocks, b.nregs)

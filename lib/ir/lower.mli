(** Lowering from the typed MiniC AST to the IR — the [clang -g] analogue:
    alloca-based locals carrying [!DILocalVariable]-style metadata, loads
    and stores annotated with their slot and [!dbg] location, explicit
    bitcasts at every pointer cast, and a synthesized
    [__rsti_global_init] function that runs global initializers before
    [main]. *)

val lower : Rsti_minic.Tast.program -> Ir.modul
(** Lower a whole checked program. *)

val compile : ?file:string -> string -> Ir.modul
(** Parse, type-check, and lower a source string. *)

module Tast = Rsti_minic.Tast
module Ctype = Rsti_minic.Ctype
module Ast = Rsti_minic.Ast

type env = {
  modul_structs : (string * (string * Ctype.t) list) list;
  strings : (string, int) Hashtbl.t;
  mutable string_list : string list;  (* reverse order *)
  var_addr : (int, Ir.value) Hashtbl.t;  (* var id -> address value *)
  funcs : (string, unit) Hashtbl.t;      (* defined function names *)
}

let struct_lookup env name =
  match List.assoc_opt name env.modul_structs with
  | Some fields -> fields
  | None -> invalid_arg ("Lower: unknown struct " ^ name)

let sizeof env ty = Ctype.sizeof ~lookup:(struct_lookup env) ty

let intern_string env s =
  match Hashtbl.find_opt env.strings s with
  | Some i -> i
  | None ->
      let i = Hashtbl.length env.strings in
      Hashtbl.replace env.strings s i;
      env.string_list <- s :: env.string_list;
      i

let is_float_ty ty = Ctype.strip_const ty = Ctype.Double

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Lower an lvalue to (address value, slot, value type). *)
let rec lower_lval env b (l : Tast.lval) : Ir.value * Ir.slot * Ctype.t =
  Builder.set_line b l.lloc.line;
  match l.ldesc with
  | Tast.Lvar v ->
      let addr =
        match Hashtbl.find_opt env.var_addr v.v_id with
        | Some a -> a
        | None -> Ir.Global v.v_name  (* extern data object *)
      in
      (addr, Ir.Svar v.v_id, v.v_ty)
  | Tast.Lderef e ->
      let p = lower_expr env b e in
      (p, Ir.Sanon l.lty, l.lty)
  | Tast.Lfield (base, sname, fname) ->
      let base_addr, _, _ = lower_lval env b base in
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Gep { dst; base = base_addr; sname; field = fname });
      (Ir.Reg dst, Ir.Sfield (sname, fname), l.lty)
  | Tast.Lfield_ptr (e, sname, fname) ->
      let p = lower_expr env b e in
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Gep { dst; base = p; sname; field = fname });
      (Ir.Reg dst, Ir.Sfield (sname, fname), l.lty)
  | Tast.Lindex (e, idx) ->
      let p = lower_expr env b e in
      let i = lower_expr env b idx in
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Gepidx { dst; base = p; elem = l.lty; idx = i });
      (Ir.Reg dst, Ir.Sanon l.lty, l.lty)

and lower_read env b (l : Tast.lval) : Ir.value =
  let addr, slot, ty = lower_lval env b l in
  match Ctype.strip_const ty with
  | Ctype.Array _ | Ctype.Struct _ ->
      (* Aggregates have no scalar load; their "value" is their address
         (arrays decay; whole-struct reads are unsupported by MiniC). *)
      addr
  | _ ->
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Load { dst; addr; ty; slot });
      Ir.Reg dst

and lower_expr env b (e : Tast.texpr) : Ir.value =
  Builder.set_line b e.tloc.line;
  match e.tdesc with
  | Tast.Tint n -> Ir.Imm n
  | Tast.Tdouble x -> Ir.Fimm x
  | Tast.Tstr s -> Ir.Str (intern_string env s)
  | Tast.Tread l -> lower_read env b l
  | Tast.Taddr l ->
      let addr, _, _ = lower_lval env b l in
      addr
  | Tast.Tfunc_addr f -> Ir.Funcaddr f
  | Tast.Tneg a ->
      let fl = if is_float_ty a.tty then Ir.Fop else Ir.Iop in
      let v = lower_expr env b a in
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Neg { dst; fl; src = v });
      Ir.Reg dst
  | Tast.Tlognot a ->
      let v = lower_expr env b a in
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Lognot { dst; src = v });
      Ir.Reg dst
  | Tast.Tbitnot a ->
      let v = lower_expr env b a in
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Bitnot { dst; src = v });
      Ir.Reg dst
  | Tast.Tbinop ((Ast.Logand | Ast.Logor) as op, x, y) ->
      lower_short_circuit env b op x y
  | Tast.Tbinop (op, x, y) -> lower_binop env b e op x y
  | Tast.Tassign (l, r) ->
      let rv = lower_expr env b r in
      let addr, slot, ty = lower_lval env b l in
      Builder.emit b (Ir.Store { src = rv; addr; ty = Ctype.strip_const ty; slot });
      rv
  | Tast.Tcall (callee, args) ->
      let argvs = List.map (lower_expr env b) args in
      let arg_tys = List.map (fun (a : Tast.texpr) -> a.tty) args in
      let ret_ty = e.tty in
      let dst =
        if Ctype.strip_const ret_ty = Ctype.Void then None
        else Some (Builder.fresh_reg b)
      in
      let callee_ir =
        match callee with
        | Tast.Cdirect f -> Ir.Direct f
        | Tast.Cindirect f -> Ir.Indirect (lower_expr env b f)
      in
      Builder.emit b (Ir.Call { dst; callee = callee_ir; args = argvs; arg_tys; ret_ty });
      (match dst with Some d -> Ir.Reg d | None -> Ir.Null)
  | Tast.Tcast (to_ty, a) ->
      let v = lower_expr env b a in
      let from_ty = a.tty in
      let fs = Ctype.strip_all_quals from_ty and ts = Ctype.strip_all_quals to_ty in
      if Ctype.equal fs ts then v
      else if Ctype.is_pointer fs || Ctype.is_pointer ts then begin
        let dst = Builder.fresh_reg b in
        Builder.emit b (Ir.Bitcast { dst; src = v; from_ty; to_ty });
        Ir.Reg dst
      end
      else if ts = Ctype.Void then v
      else begin
        let dst = Builder.fresh_reg b in
        Builder.emit b (Ir.Cast_num { dst; src = v; from_ty; to_ty });
        Ir.Reg dst
      end
  | Tast.Tcond (c, x, y) -> lower_cond_expr env b e c x y

and lower_binop env b (e : Tast.texpr) op x y =
  let xv = lower_expr env b x in
  let yv = lower_expr env b y in
  let xp = Ctype.is_pointer x.tty and yp = Ctype.is_pointer y.tty in
  match (op, xp, yp) with
  | Ast.Add, true, false ->
      let dst = Builder.fresh_reg b in
      Builder.emit b
        (Ir.Gepidx { dst; base = xv; elem = Ctype.pointee x.tty; idx = yv });
      Ir.Reg dst
  | Ast.Sub, true, false ->
      let neg = Builder.fresh_reg b in
      Builder.emit b (Ir.Neg { dst = neg; fl = Ir.Iop; src = yv });
      let dst = Builder.fresh_reg b in
      Builder.emit b
        (Ir.Gepidx { dst; base = xv; elem = Ctype.pointee x.tty; idx = Ir.Reg neg });
      Ir.Reg dst
  | Ast.Sub, true, true ->
      let diff = Builder.fresh_reg b in
      Builder.emit b (Ir.Binop { dst = diff; op = Ast.Sub; fl = Ir.Iop; a = xv; b = yv });
      let size = sizeof env (Ctype.pointee x.tty) in
      if size = 1 then Ir.Reg diff
      else begin
        let dst = Builder.fresh_reg b in
        Builder.emit b
          (Ir.Binop
             { dst; op = Ast.Div; fl = Ir.Iop; a = Ir.Reg diff; b = Ir.Imm (Int64.of_int size) });
        Ir.Reg dst
      end
  | _ ->
      let fl =
        if is_float_ty x.tty || is_float_ty y.tty || is_float_ty e.tty then Ir.Fop
        else Ir.Iop
      in
      (* Promote an integer operand when the other side is a double. *)
      let promote (v : Ir.value) (ty : Ctype.t) =
        if fl = Ir.Fop && not (is_float_ty ty) && not (Ctype.is_pointer ty) then begin
          let dst = Builder.fresh_reg b in
          Builder.emit b
            (Ir.Cast_num { dst; src = v; from_ty = Ctype.Long; to_ty = Ctype.Double });
          Ir.Reg dst
        end
        else v
      in
      let xv = promote xv x.tty and yv = promote yv y.tty in
      let dst = Builder.fresh_reg b in
      Builder.emit b (Ir.Binop { dst; op; fl; a = xv; b = yv });
      Ir.Reg dst

(* a && b / a || b with proper short-circuiting, through an unnamed
   compiler temporary (no debug variable: it is not programmer intent). *)
and lower_short_circuit env b op x y =
  let tmp = Builder.fresh_reg b in
  Builder.emit b (Ir.Alloca { dst = tmp; ty = Ctype.Long; dv = None });
  let store v =
    Builder.emit b
      (Ir.Store { src = v; addr = Ir.Reg tmp; ty = Ctype.Long; slot = Ir.Sanon Ctype.Long })
  in
  let xv = lower_expr env b x in
  let xbool = Builder.fresh_reg b in
  Builder.emit b
    (Ir.Binop { dst = xbool; op = Ast.Ne; fl = Ir.Iop; a = xv; b = Ir.Imm 0L });
  let eval_y = Builder.reserve_block b in
  let short = Builder.reserve_block b in
  let join = Builder.reserve_block b in
  (match op with
  | Ast.Logand -> Builder.seal_and_start b (Ir.Condbr (Ir.Reg xbool, eval_y, short)) eval_y
  | Ast.Logor -> Builder.seal_and_start b (Ir.Condbr (Ir.Reg xbool, short, eval_y)) eval_y
  | _ -> assert false);
  let yv = lower_expr env b y in
  let ybool = Builder.fresh_reg b in
  Builder.emit b
    (Ir.Binop { dst = ybool; op = Ast.Ne; fl = Ir.Iop; a = yv; b = Ir.Imm 0L });
  store (Ir.Reg ybool);
  Builder.seal_and_start b (Ir.Br join) short;
  store (Ir.Imm (match op with Ast.Logand -> 0L | _ -> 1L));
  Builder.seal_and_start b (Ir.Br join) join;
  let dst = Builder.fresh_reg b in
  Builder.emit b
    (Ir.Load { dst; addr = Ir.Reg tmp; ty = Ctype.Long; slot = Ir.Sanon Ctype.Long });
  Ir.Reg dst

and lower_cond_expr env b (e : Tast.texpr) c x y =
  let ty = Ctype.strip_all_quals e.tty in
  let tmp = Builder.fresh_reg b in
  Builder.emit b (Ir.Alloca { dst = tmp; ty; dv = None });
  let cv = lower_expr env b c in
  let then_b = Builder.reserve_block b in
  let else_b = Builder.reserve_block b in
  let join = Builder.reserve_block b in
  Builder.seal_and_start b (Ir.Condbr (cv, then_b, else_b)) then_b;
  let xv = lower_expr env b x in
  Builder.emit b (Ir.Store { src = xv; addr = Ir.Reg tmp; ty; slot = Ir.Sanon ty });
  Builder.seal_and_start b (Ir.Br join) else_b;
  let yv = lower_expr env b y in
  Builder.emit b (Ir.Store { src = yv; addr = Ir.Reg tmp; ty; slot = Ir.Sanon ty });
  Builder.seal_and_start b (Ir.Br join) join;
  let dst = Builder.fresh_reg b in
  Builder.emit b (Ir.Load { dst; addr = Ir.Reg tmp; ty; slot = Ir.Sanon ty });
  Ir.Reg dst

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type loop_ctx = { break_to : int; continue_to : int }

let rec lower_stmt env b loops (s : Tast.tstmt) : unit =
  match s with
  | Tast.Tsexpr e -> ignore (lower_expr env b e)
  | Tast.Tsdecl (v, init) ->
      let dst = Builder.fresh_reg b in
      Builder.set_line b v.v_loc.line;
      Builder.emit b
        (Ir.Alloca { dst; ty = v.v_ty; dv = Some (Dinfo.variable_of_var v) });
      Hashtbl.replace env.var_addr v.v_id (Ir.Reg dst);
      Option.iter
        (fun init ->
          let iv = lower_expr env b init in
          Builder.emit b
            (Ir.Store
               { src = iv; addr = Ir.Reg dst; ty = Ctype.strip_const v.v_ty;
                 slot = Ir.Svar v.v_id }))
        init
  | Tast.Tsif (c, then_b, else_b) ->
      let cv = lower_expr env b c in
      let lt = Builder.reserve_block b in
      let le = Builder.reserve_block b in
      let join = Builder.reserve_block b in
      Builder.seal_and_start b (Ir.Condbr (cv, lt, le)) lt;
      List.iter (lower_stmt env b loops) then_b;
      Builder.seal_and_start b (Ir.Br join) le;
      List.iter (lower_stmt env b loops) else_b;
      Builder.seal_and_start b (Ir.Br join) join
  | Tast.Tswhile (c, body) ->
      let head = Builder.reserve_block b in
      let body_l = Builder.reserve_block b in
      let exit = Builder.reserve_block b in
      Builder.seal_and_start b (Ir.Br head) head;
      let cv = lower_expr env b c in
      Builder.seal_and_start b (Ir.Condbr (cv, body_l, exit)) body_l;
      List.iter
        (lower_stmt env b ({ break_to = exit; continue_to = head } :: loops))
        body;
      Builder.seal_and_start b (Ir.Br head) exit
  | Tast.Tsdo (body, c) ->
      let body_l = Builder.reserve_block b in
      let head = Builder.reserve_block b in
      let exit = Builder.reserve_block b in
      Builder.seal_and_start b (Ir.Br body_l) body_l;
      List.iter
        (lower_stmt env b ({ break_to = exit; continue_to = head } :: loops))
        body;
      Builder.seal_and_start b (Ir.Br head) head;
      let cv = lower_expr env b c in
      Builder.seal_and_start b (Ir.Condbr (cv, body_l, exit)) exit
  | Tast.Tsfor (init, cond, step, body) ->
      Option.iter (lower_stmt env b loops) init;
      let head = Builder.reserve_block b in
      let body_l = Builder.reserve_block b in
      let step_l = Builder.reserve_block b in
      let exit = Builder.reserve_block b in
      Builder.seal_and_start b (Ir.Br head) head;
      (match cond with
      | Some c ->
          let cv = lower_expr env b c in
          Builder.seal_and_start b (Ir.Condbr (cv, body_l, exit)) body_l
      | None -> Builder.seal_and_start b (Ir.Br body_l) body_l);
      List.iter
        (lower_stmt env b ({ break_to = exit; continue_to = step_l } :: loops))
        body;
      Builder.seal_and_start b (Ir.Br step_l) step_l;
      Option.iter (fun e -> ignore (lower_expr env b e)) step;
      Builder.seal_and_start b (Ir.Br head) exit
  | Tast.Tsswitch (e, arms) ->
      let v = lower_expr env b e in
      let exit = Builder.reserve_block b in
      let body_labels = List.map (fun _ -> Builder.reserve_block b) arms in
      let default_target =
        match
          List.find_map
            (fun ((a : Tast.tcase), l) -> if a.tc_default then Some l else None)
            (List.combine arms body_labels)
        with
        | Some l -> l
        | None -> exit
      in
      (* dispatch chain: one comparison per case label *)
      List.iter2
        (fun (a : Tast.tcase) label ->
          List.iter
            (fun value ->
              let cmp = Builder.fresh_reg b in
              Builder.emit b
                (Ir.Binop
                   { dst = cmp; op = Rsti_minic.Ast.Eq; fl = Ir.Iop; a = v;
                     b = Ir.Imm value });
              let next = Builder.reserve_block b in
              Builder.seal_and_start b (Ir.Condbr (Ir.Reg cmp, label, next)) next)
            a.tc_labels)
        arms body_labels;
      (* no label matched *)
      (match body_labels with
      | first :: _ -> Builder.seal_and_start b (Ir.Br default_target) first
      | [] -> Builder.seal_and_start b (Ir.Br default_target) exit);
      (* arm bodies with C fallthrough; break exits, continue passes
         through to the enclosing loop *)
      let switch_loops =
        match loops with
        | f :: _ -> { break_to = exit; continue_to = f.continue_to } :: loops
        | [] -> [ { break_to = exit; continue_to = exit } ]
      in
      let rec emit_bodies arms labels =
        match (arms, labels) with
        | [], [] -> ()
        | [ (a : Tast.tcase) ], [ _ ] ->
            List.iter (lower_stmt env b switch_loops) a.tc_body;
            Builder.seal_and_start b (Ir.Br exit) exit
        | (a : Tast.tcase) :: rest, _ :: (next :: _ as rest_labels) ->
            List.iter (lower_stmt env b switch_loops) a.tc_body;
            Builder.seal_and_start b (Ir.Br next) next;
            emit_bodies rest rest_labels
        | _ -> invalid_arg "Lower: switch arm/label mismatch"
      in
      (match body_labels with
      | [] -> () (* empty switch body: already positioned at exit *)
      | _ -> emit_bodies arms body_labels)
  | Tast.Tsreturn None ->
      let dead = Builder.reserve_block b in
      Builder.seal_and_start b (Ir.Ret None) dead
  | Tast.Tsreturn (Some e) ->
      let v = lower_expr env b e in
      let dead = Builder.reserve_block b in
      Builder.seal_and_start b (Ir.Ret (Some v)) dead
  | Tast.Tsblock body -> List.iter (lower_stmt env b loops) body
  | Tast.Tsbreak -> (
      match loops with
      | { break_to; _ } :: _ ->
          let dead = Builder.reserve_block b in
          Builder.seal_and_start b (Ir.Br break_to) dead
      | [] -> invalid_arg "Lower: break outside loop")
  | Tast.Tscontinue -> (
      match loops with
      | { continue_to; _ } :: _ ->
          let dead = Builder.reserve_block b in
          Builder.seal_and_start b (Ir.Br continue_to) dead
      | [] -> invalid_arg "Lower: continue outside loop")

(* ------------------------------------------------------------------ *)
(* Functions and module                                                *)
(* ------------------------------------------------------------------ *)

let lower_func env (fn : Tast.tfunc) : Ir.func =
  let b = Builder.create ~name:fn.tf_name ~nparams:(List.length fn.tf_params) in
  (* Spill incoming parameters (registers 0..n-1) to parameter slots,
     mirroring clang -O0; their allocas carry the DILocalVariable. *)
  List.iteri
    (fun i (p : Tast.var) ->
      let dst = Builder.fresh_reg b in
      Builder.set_line b fn.tf_loc.line;
      Builder.emit b
        (Ir.Alloca { dst; ty = p.v_ty; dv = Some (Dinfo.variable_of_var p) });
      Hashtbl.replace env.var_addr p.v_id (Ir.Reg dst);
      Builder.emit b
        (Ir.Store
           { src = Ir.Reg i; addr = Ir.Reg dst; ty = Ctype.strip_const p.v_ty;
             slot = Ir.Svar p.v_id }))
    fn.tf_params;
  List.iter (lower_stmt env b []) fn.tf_body;
  let default_term =
    if Ctype.strip_const fn.tf_ret = Ctype.Void then Ir.Ret None
    else Ir.Ret (Some (Ir.Imm 0L))
  in
  let blocks, nregs = Builder.finish b ~default_term in
  { Ir.name = fn.tf_name; ret = fn.tf_ret; params = fn.tf_params; blocks; nregs;
    loc = fn.tf_loc }

let lower (prog : Tast.program) : Ir.modul =
  let env =
    {
      modul_structs = prog.structs;
      strings = Hashtbl.create 16;
      string_list = [];
      var_addr = Hashtbl.create 64;
      funcs = Hashtbl.create 16;
    }
  in
  List.iter (fun (f : Tast.tfunc) -> Hashtbl.replace env.funcs f.tf_name ()) prog.funcs;
  (* Globals live at symbolic addresses. *)
  List.iter
    (fun ((v : Tast.var), _) -> Hashtbl.replace env.var_addr v.v_id (Ir.Global v.v_name))
    prog.globals;
  (* Synthesize __rsti_global_init running the initializers in order. *)
  let init_func =
    let b = Builder.create ~name:Ir.global_init_name ~nparams:0 in
    List.iter
      (fun ((v : Tast.var), init) ->
        Option.iter
          (fun init ->
            Builder.set_line b v.v_loc.line;
            let iv = lower_expr env b init in
            Builder.emit b
              (Ir.Store
                 { src = iv; addr = Ir.Global v.v_name;
                   ty = Ctype.strip_const v.v_ty; slot = Ir.Svar v.v_id }))
          init)
      prog.globals;
    let blocks, nregs = Builder.finish b ~default_term:(Ir.Ret None) in
    { Ir.name = Ir.global_init_name; ret = Ctype.Void; params = []; blocks; nregs;
      loc = Rsti_minic.Loc.dummy }
  in
  let funcs = init_func :: List.map (lower_func env) prog.funcs in
  {
    Ir.m_structs = prog.structs;
    m_globals = List.map (fun (v, _) -> { Ir.gvar = v }) prog.globals;
    m_funcs = funcs;
    m_strings = Array.of_list (List.rev env.string_list);
    m_externs = prog.externs;
  }

let compile ?(file = "<string>") src =
  lower (Rsti_minic.Typecheck.check_source ~file src)

(* Debug metadata attached to IR, mirroring the LLVM constructs the paper's
   analysis consumes (section 4.4):

   - [di_variable] mirrors !DILocalVariable / !DIGlobalVariable: name,
     scope and a type chain. The [Ctype.t] it carries plays the role of
     the DIDerivedType chain — [Ctype.Const] is DW_TAG_const_type (the
     permission), [Ctype.Ptr] is DW_TAG_pointer_type, [Ctype.Struct] is
     the DICompositeType reference.
   - [di_location] mirrors !DILocation: the line and the enclosing
     function, attached to every load/store so "the proper scope can
     always be obtained". *)

type di_scope =
  | Sc_function of string   (* DISubprogram *)
  | Sc_global               (* compile-unit scope *)

type di_variable = {
  dv_id : int;              (* the Tast variable id this describes *)
  dv_name : string;
  dv_type : Rsti_minic.Ctype.t;
  dv_scope : di_scope;
  dv_line : int;
  dv_is_param : bool;
}

type di_location = { dl_line : int; dl_func : string }

let variable_of_var (v : Rsti_minic.Tast.var) =
  {
    dv_id = v.v_id;
    dv_name = v.v_name;
    dv_type = v.v_ty;
    dv_scope =
      (match v.v_func with Some f -> Sc_function f | None -> Sc_global);
    dv_line = v.v_loc.line;
    dv_is_param = (v.v_kind = Rsti_minic.Tast.Kparam);
  }

let scope_to_string = function
  | Sc_function f -> f
  | Sc_global -> "<global>"

(* The permission the paper extracts by walking DIDerivedType tags for
   DW_TAG_const_type. *)
let is_read_only dv = Rsti_minic.Ctype.declared_read_only dv.dv_type

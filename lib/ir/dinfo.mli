(** Debug metadata attached to the IR, mirroring the LLVM constructs the
    paper's analysis consumes (section 4.4): [di_variable] plays the role
    of [!DILocalVariable]/[!DIGlobalVariable] (its {!Rsti_minic.Ctype.t}
    is the DIDerivedType chain — [Const] is [DW_TAG_const_type], [Ptr] is
    [DW_TAG_pointer_type], [Struct] the [DICompositeType] reference), and
    [di_location] mirrors [!DILocation] on every load/store. *)

type di_scope =
  | Sc_function of string  (** DISubprogram *)
  | Sc_global              (** compile-unit scope *)

type di_variable = {
  dv_id : int;             (** the {!Rsti_minic.Tast.var} id described *)
  dv_name : string;
  dv_type : Rsti_minic.Ctype.t;
  dv_scope : di_scope;
  dv_line : int;
  dv_is_param : bool;
}

type di_location = { dl_line : int; dl_func : string }

val variable_of_var : Rsti_minic.Tast.var -> di_variable
(** The metadata the lowering attaches to a variable's alloca / global. *)

val scope_to_string : di_scope -> string

val is_read_only : di_variable -> bool
(** The permission bit, as the paper extracts it by walking
    DIDerivedType tags for [DW_TAG_const_type]. *)

module Ctype = Rsti_minic.Ctype

type error = { fn : string; msg : string }

let verify_function (m : Ir.modul) (fn : Ir.func) : error list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun msg -> errs := { fn = fn.name; msg } :: !errs) fmt in
  let nblocks = Array.length fn.blocks in
  let nparams = List.length fn.params in
  let defined = Hashtbl.create 64 in
  for i = 0 to nparams - 1 do
    Hashtbl.replace defined i ()
  done;
  let define r =
    if r < 0 || r >= fn.nregs then err "register %%r%d out of range (nregs=%d)" r fn.nregs
    else if Hashtbl.mem defined r then err "register %%r%d defined twice" r
    else Hashtbl.replace defined r ()
  in
  (* First pass: collect definitions (registers are assigned once and the
     lowering guarantees defs precede uses in execution order, so a
     global definition set is the right granularity). *)
  Ir.iter_instrs
    (fun ins ->
      match ins.Ir.i with
      | Ir.Alloca { dst; _ } | Ir.Load { dst; _ } | Ir.Gep { dst; _ }
      | Ir.Gepidx { dst; _ } | Ir.Bitcast { dst; _ } | Ir.Binop { dst; _ }
      | Ir.Neg { dst; _ } | Ir.Lognot { dst; _ } | Ir.Bitnot { dst; _ }
      | Ir.Cast_num { dst; _ } ->
          define dst
      | Ir.Call { dst; _ } -> Option.iter define dst
      | Ir.Pac p -> define p.p_dst
      | Ir.Pp (Ir.Pp_sign { dst; _ })
      | Ir.Pp (Ir.Pp_auth { dst; _ })
      | Ir.Pp (Ir.Pp_add_tbi { dst; _ }) ->
          define dst
      | Ir.Store _ | Ir.Pp (Ir.Pp_add _) -> ())
    fn;
  let use (v : Ir.value) =
    match v with
    | Ir.Reg r ->
        if not (Hashtbl.mem defined r) then err "register %%r%d used but never defined" r
    | Ir.Global g ->
        if
          (not (List.exists (fun (d : Ir.global_def) -> d.gvar.v_name = g) m.m_globals))
          && not (List.mem_assoc g m.m_externs)
        then err "unknown global @%s" g
    | Ir.Funcaddr f ->
        if Ir.find_func m f = None && not (List.mem_assoc f m.m_externs) then
          err "unknown function reference @%s" f
    | Ir.Str i ->
        if i < 0 || i >= Array.length m.m_strings then err "string index %d out of range" i
    | Ir.Imm _ | Ir.Fimm _ | Ir.Null -> ()
  in
  let loadable ty =
    match Ctype.strip_const ty with
    | Ctype.Void -> false
    | Ctype.Struct _ | Ctype.Array _ | Ctype.Func _ -> false
    | _ -> true
  in
  let check_label l = if l < 0 || l >= nblocks then err "branch to invalid label L%d" l in
  (* Debug-metadata completeness: Sti.Analysis derives every slot's scope
     from the !dbg attachment on its loads and stores — a memory access
     without one (or naming a function that does not exist) would be
     silently mis-scoped, so it is an IR error, not a style issue. *)
  let check_dbg what (ins : Ir.instr) =
    match ins.Ir.dbg with
    | None -> err "%s without !dbg location" what
    | Some d ->
        if Ir.find_func m d.Dinfo.dl_func = None then
          err "%s !dbg names unknown function %s" what d.Dinfo.dl_func
  in
  Ir.iter_instrs
    (fun ins ->
      match ins.Ir.i with
      | Ir.Alloca { ty; _ } -> (
          match ty with
          | Ctype.Void -> err "alloca of void"
          | _ -> ( try ignore (Ir.sizeof m ty) with _ -> err "alloca of unsized type"))
      | Ir.Load { addr; ty; _ } ->
          use addr;
          check_dbg "load" ins;
          if not (loadable ty) then err "load of non-loadable type %s" (Ctype.to_string ty)
      | Ir.Store { src; addr; ty; _ } ->
          use src;
          use addr;
          check_dbg "store" ins;
          if not (loadable ty) then err "store of non-loadable type %s" (Ctype.to_string ty)
      | Ir.Gep { base; sname; field; _ } -> (
          use base;
          match List.assoc_opt sname m.m_structs with
          | None -> err "gep into unknown struct %s" sname
          | Some fields ->
              if not (List.mem_assoc field fields) then
                err "gep to unknown field %s.%s" sname field)
      | Ir.Gepidx { base; idx; elem; _ } -> (
          use base;
          use idx;
          try ignore (Ir.sizeof m elem) with _ -> err "gep over unsized element")
      | Ir.Bitcast { src; _ } -> use src
      | Ir.Binop { a; b; _ } -> use a; use b
      | Ir.Neg { src; _ } | Ir.Lognot { src; _ } | Ir.Bitnot { src; _ }
      | Ir.Cast_num { src; _ } ->
          use src
      | Ir.Call { callee; args; arg_tys; _ } ->
          (match callee with
          | Ir.Direct f -> (
              let nargs = List.length args in
              match Ir.find_func m f with
              | Some callee_fn ->
                  let nparams = List.length callee_fn.Ir.params in
                  if nargs <> nparams then
                    err "call to @%s passes %d args, signature declares %d" f
                      nargs nparams
              | None -> (
                  match List.assoc_opt f m.m_externs with
                  | Some ty -> (
                      match Ctype.strip_const ty with
                      | Ctype.Func s ->
                          let fixed = List.length s.Ctype.params in
                          if s.Ctype.variadic then begin
                            if nargs < fixed then
                              err
                                "call to variadic extern @%s passes %d args, \
                                 needs at least %d"
                                f nargs fixed
                          end
                          else if nargs <> fixed then
                            err "call to extern @%s passes %d args, declared %d"
                              f nargs fixed
                      | _ -> ())
                  | None ->
                      (* built-ins (printf, malloc, ...) resolve at runtime
                         even without a declaration; only flag arity against
                         signatures we actually have *)
                      ()))
          | Ir.Indirect c -> use c);
          List.iter use args;
          if List.length arg_tys <> List.length args then
            err "call arg/arg_ty arity mismatch (%d vs %d)" (List.length args)
              (List.length arg_tys)
      | Ir.Pac p -> (
          use p.p_src;
          use p.p_slot_addr;
          match (p.p_mod, p.p_slot_addr) with
          | Ir.Mloc _, Ir.Null -> err "Mloc modifier without a slot address"
          | _ -> ())
      | Ir.Pp (Ir.Pp_add { pp_addr; ce }) ->
          use pp_addr;
          if ce < 1 || ce > 255 then err "CE %d out of 1..255" ce
      | Ir.Pp (Ir.Pp_sign { src; ce; slot_addr; _ }) ->
          use src;
          use slot_addr;
          if ce < 1 || ce > 255 then err "CE %d out of 1..255" ce
      | Ir.Pp (Ir.Pp_auth { src; slot_addr; _ }) -> use src; use slot_addr
      | Ir.Pp (Ir.Pp_add_tbi { src; ce; _ }) ->
          use src;
          if ce < 1 || ce > 255 then err "CE %d out of 1..255" ce)
    fn;
  Array.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Ret None ->
          if Ctype.strip_const fn.ret <> Ctype.Void then
            err "void return from non-void function"
      | Ir.Ret (Some v) ->
          use v;
          if Ctype.strip_const fn.ret = Ctype.Void then
            err "value returned from void function"
      | Ir.Br l -> check_label l
      | Ir.Condbr (c, a, b') ->
          use c;
          check_label a;
          check_label b'
      | Ir.Unreachable -> ())
    fn.blocks;
  List.rev !errs

let verify (m : Ir.modul) : error list =
  List.concat_map (verify_function m) m.m_funcs

let verify_exn m =
  match verify m with
  | [] -> ()
  | { fn; msg } :: _ -> failwith (Printf.sprintf "IR verification failed in %s: %s" fn msg)

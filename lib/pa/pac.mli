(** Semantics of the Pointer Authentication instructions ([pac*], [aut*],
    [xpac]) the RSTI pass emits, executed over the simulated address layout
    ({!Vaddr}) with the QARMA-like cipher ({!Qarma}).

    Signing computes [PAC = truncate(QARMA(key, tweak=modifier, address))]
    and stores it in the pointer's unused bits; authentication recomputes
    it, strips it on a match and corrupts the pointer on a mismatch —
    exactly the behaviour of Figure 3 in the paper. *)

type ctx
(** Everything an instruction needs: the kernel's key bank, the machine's
    address layout, and a memoization cache for the simulator. *)

val keys : ctx -> Key.t
val layout : ctx -> Vaddr.config

val make : ?layout:Vaddr.config -> seed:int64 -> unit -> ctx
(** Fresh context with deterministically generated keys. The layout
    defaults to {!Vaddr.default} (48-bit VA, TBI on). *)

val compute_pac : ctx -> key:Key.which -> modifier:int64 -> int64 -> int64
(** The raw truncated PAC for a canonical pointer — exposed for analysis
    and tests; instructions below use it internally. *)

val sign : ctx -> key:Key.which -> modifier:int64 -> int64 -> int64
(** [pacia]/[pacda...]: sign a pointer. NULL (zero) is never signed and
    always authenticates — zero-initialised memory holds valid null
    pointers, as in deployed PA-based schemes. The pointer is canonicalised
    first (signing an already-signed pointer signs the *stripped* address,
    as hardware effectively garbles; we canonicalise for determinism — the
    RSTI pass never double-signs). Under TBI the top byte is excluded from
    the PAC input, so a CE tag can be added after signing without
    invalidating the signature. *)

val auth : ctx -> key:Key.which -> modifier:int64 -> int64 -> (int64, int64) result
(** [autia]/[autda...]: authenticate. [Ok p] is the stripped canonical
    pointer; [Error p] is the corrupted pointer hardware leaves behind on
    a PAC mismatch (top two PAC bits flipped — dereferencing it faults). *)

val strip : ctx -> int64 -> int64
(** [xpac]: remove the PAC without authenticating (used when calling into
    uninstrumented external libraries, section 4.6). *)

val is_signed : ctx -> int64 -> bool
(** Whether any PAC bits are present (true for signed or corrupted
    pointers; a heuristic only — a PAC can coincidentally be zero). *)

(** Virtual-address layout for the simulated AArch64 machine: where the
    Pointer Authentication Code lives inside a 64-bit pointer, and how a
    failed authentication corrupts a pointer.

    The model follows ARMv8.3 with 48-bit virtual addresses:

    - bits [0..47] — the virtual address proper;
    - bit 55 — the address-space selector (kernel/user half), preserved by
      signing and used to re-canonicalise on strip;
    - bits [48..54] and, when Top-Byte-Ignore is disabled, [56..63] — the
      PAC field;
    - when TBI is enabled the top byte [56..63] is ignored by translation
      and is available to software tags (RSTI's pointer-to-pointer Compact
      Equivalent lives there), leaving the PAC only bits [48..54]. *)

type config = {
  va_bits : int;  (** virtual-address width, 48 in the evaluation *)
  tbi : bool;     (** Top-Byte-Ignore: top byte excluded from the PAC *)
}

val default : config
(** 48-bit VA, TBI enabled — the configuration RSTI needs, since its
    pointer-to-pointer mechanism stores the CE tag in the top byte. *)

val no_tbi : config
(** 48-bit VA with TBI disabled: widest PAC field (15 bits). *)

val pac_width : config -> int
(** Number of pointer bits available to the PAC. *)

val canonical : config -> int64 -> int64
(** Clear the PAC field (and top byte under TBI), sign-extending bit 55
    into the upper bits the way hardware expects canonical pointers. *)

val is_canonical : config -> int64 -> bool
(** True iff the pointer has no PAC bits set, i.e. [canonical] is the
    identity on it. *)

val embed_pac : config -> pac:int64 -> int64 -> int64
(** Insert the low [pac_width] bits of [pac] into the pointer's PAC field.
    Leaves the top byte alone under TBI. *)

val extract_pac : config -> int64 -> int64
(** Read the PAC field back, right-aligned. *)

val corrupt : config -> int64 -> int64
(** The pointer produced by a failing [aut*] instruction: the two most
    significant PAC-field bits are flipped, making the pointer
    non-canonical so any dereference faults (paper section 2.4). *)

val top_byte : int64 -> int
(** The top byte [56..63], where the pointer-to-pointer CE tag lives. *)

val with_top_byte : int64 -> int -> int64
(** Replace the top byte. Only meaningful under TBI. *)

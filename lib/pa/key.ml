type which = IA | IB | DA | DB | GA

type t = { ia : Qarma.key; ib : Qarma.key; da : Qarma.key; db : Qarma.key; ga : Qarma.key }

let generate ~seed =
  let rng = Rsti_util.Splitmix.create seed in
  let next () = Qarma.key_of_rng rng in
  let ia = next () in
  let ib = next () in
  let da = next () in
  let db = next () in
  let ga = next () in
  { ia; ib; da; db; ga }

let lookup t = function
  | IA -> t.ia
  | IB -> t.ib
  | DA -> t.da
  | DB -> t.db
  | GA -> t.ga

let which_to_string = function
  | IA -> "ia"
  | IB -> "ib"
  | DA -> "da"
  | DB -> "db"
  | GA -> "ga"

let which_of_int = function
  | 0 -> IA
  | 1 -> IB
  | 2 -> DA
  | 3 -> DB
  | 4 -> GA
  | n -> invalid_arg (Printf.sprintf "Key.which_of_int: %d is not a PA key" n)

let int_of_which = function IA -> 0 | IB -> 1 | DA -> 2 | DB -> 3 | GA -> 4

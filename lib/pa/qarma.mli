(** A QARMA-style tweakable block cipher: 64-bit block, 64-bit tweak,
    128-bit key.

    This is the cryptographic core behind the simulated ARM PA
    instructions, standing in for the QARMA-64 cipher ARMv8.3 recommends.
    The construction follows QARMA's shape — a substitution-permutation
    network over sixteen 4-bit cells with a cell shuffle, an involutory
    MixColumns-like diffusion step, a per-round evolving tweak (cell
    permutation + LFSR on selected cells) and a central reflector — but
    the constants are our own, so it must be treated as QARMA-*like*, not
    QARMA. For this repository's purpose (a pseudorandom function of
    (pointer, modifier, key) truncated into unused pointer bits) only
    pseudorandomness and invertibility matter; both are tested. *)

type key = { k0 : int64; w0 : int64 }
(** 128-bit key split into the core key [k0] and whitening key [w0],
    mirroring QARMA's k/w split. *)

val key_of_rng : Rsti_util.Splitmix.t -> key
(** Draw a fresh key from the deterministic RNG. *)

val rounds : int
(** Number of forward rounds (the cipher runs [rounds] forward, a
    reflector, and [rounds] backward, QARMA's r=7 recommendation). *)

val encrypt : key:key -> tweak:int64 -> int64 -> int64
(** [encrypt ~key ~tweak block]: the forward permutation. *)

val decrypt : key:key -> tweak:int64 -> int64 -> int64
(** Exact inverse of {!encrypt} for the same key and tweak. *)

module Bits = Rsti_util.Bits

type ctx = {
  keys : Key.t;
  layout : Vaddr.config;
  (* PAC computations repeat heavily (same slot, same modifier, every loop
     iteration), so the truncated cipher output is memoized. This is a
     simulator-speed concern only; results are bit-identical. *)
  cache : (Key.which * int64 * int64, int64) Hashtbl.t;
}

let make ?(layout = Vaddr.default) ~seed () =
  { keys = Key.generate ~seed; layout; cache = Hashtbl.create 4096 }

(* The cipher input: the canonical address, with the top byte zeroed under
   TBI so that software tags do not perturb the PAC. *)
let cipher_input ctx ptr =
  let p = Vaddr.canonical ctx.layout ptr in
  if ctx.layout.Vaddr.tbi then Vaddr.with_top_byte p 0 else p

let compute_pac ctx ~key ~modifier ptr =
  let input = cipher_input ctx ptr in
  let cache_key = (key, modifier, input) in
  match Hashtbl.find_opt ctx.cache cache_key with
  | Some pac -> pac
  | None ->
      let k = Key.lookup ctx.keys key in
      let full = Qarma.encrypt ~key:k ~tweak:modifier input in
      let pac = Int64.logand full (Bits.mask (Vaddr.pac_width ctx.layout)) in
      if Hashtbl.length ctx.cache < 1_000_000 then
        Hashtbl.replace ctx.cache cache_key pac;
      pac

let sign ctx ~key ~modifier ptr =
  if Int64.equal ptr 0L then 0L
  else begin
    let canon = Vaddr.canonical ctx.layout ptr in
    let pac = compute_pac ctx ~key ~modifier canon in
    Vaddr.embed_pac ctx.layout ~pac canon
  end

let auth ctx ~key ~modifier ptr =
  if Int64.equal ptr 0L then Ok 0L
  else begin
  let expected = compute_pac ctx ~key ~modifier ptr in
  let found = Vaddr.extract_pac ctx.layout ptr in
  if Int64.equal expected found then Ok (Vaddr.canonical ctx.layout ptr)
  else Error (Vaddr.corrupt ctx.layout ptr)
  end

let strip ctx ptr = Vaddr.canonical ctx.layout ptr

let is_signed ctx ptr = not (Vaddr.is_canonical ctx.layout ptr)

let keys ctx = ctx.keys
let layout ctx = ctx.layout

(** The five ARMv8.3 Pointer Authentication keys. The kernel generates and
    owns them (threat model section 3: keys are trusted); user code only
    names which key an instruction uses. *)

type which =
  | IA  (** instruction key A — code pointers ([pacia]/[autia]) *)
  | IB  (** instruction key B *)
  | DA  (** data key A — RSTI signs data pointers with [pacda]/[autda] *)
  | DB  (** data key B *)
  | GA  (** generic key ([pacga]) *)

type t
(** A full key bank: one 128-bit QARMA-like key per slot. *)

val generate : seed:int64 -> t
(** Deterministically generate a bank from a seed; the simulated kernel
    does this once per process. *)

val lookup : t -> which -> Qarma.key
(** Fetch the cipher key for a slot. *)

val which_to_string : which -> string

val which_of_int : int -> which
(** Decode the integer key operand of the LLVM ptrauth intrinsics:
    0 = IA, 1 = IB, 2 = DA, 3 = DB, 4 = GA (the paper's examples sign data
    pointers with key 2). Raises [Invalid_argument] on anything else. *)

val int_of_which : which -> int

module Bits = Rsti_util.Bits

type config = { va_bits : int; tbi : bool }

let default = { va_bits = 48; tbi = true }
let no_tbi = { va_bits = 48; tbi = false }

(* PAC field part 1: bits [va_bits .. 54] (bit 55 is the selector).
   Part 2 (only when TBI is off): bits [56 .. 63]. *)

let low_field c = (c.va_bits, 55 - c.va_bits)
let high_field c = if c.tbi then (56, 0) else (56, 8)

let pac_width c =
  let _, w1 = low_field c and _, w2 = high_field c in
  w1 + w2

let select_bit ptr = Bits.bit ptr 55

let canonical c ptr =
  let sel = select_bit ptr in
  let ext = if sel then Bits.mask (64 - c.va_bits) else 0L in
  let p = Bits.set_field ptr ~lo:c.va_bits ~width:(64 - c.va_bits) ext in
  if c.tbi then
    (* Preserve the software tag byte: hardware ignores it anyway. *)
    Bits.set_field p ~lo:56 ~width:8 (Int64.of_int (Int64.to_int (Bits.field ptr ~lo:56 ~width:8)))
  else p

let is_canonical c ptr = canonical c ptr = ptr

let embed_pac c ~pac ptr =
  let lo, w1 = low_field c in
  let hi, w2 = high_field c in
  let p = Bits.set_field ptr ~lo ~width:w1 pac in
  if w2 = 0 then p
  else Bits.set_field p ~lo:hi ~width:w2 (Int64.shift_right_logical pac w1)

let extract_pac c ptr =
  let lo, w1 = low_field c in
  let hi, w2 = high_field c in
  let low = Bits.field ptr ~lo ~width:w1 in
  if w2 = 0 then low
  else Int64.logor low (Int64.shift_left (Bits.field ptr ~lo:hi ~width:w2) w1)

let corrupt c ptr =
  (* Flip the two most significant bits of the PAC field. *)
  let w = pac_width c in
  let pac = extract_pac c ptr in
  let flipped = Int64.logxor pac (Int64.shift_left 3L (w - 2)) in
  embed_pac c ~pac:flipped ptr

let top_byte ptr = Int64.to_int (Bits.field ptr ~lo:56 ~width:8)

let with_top_byte ptr b = Bits.set_field ptr ~lo:56 ~width:8 (Int64.of_int b)

module Bits = Rsti_util.Bits

type key = { k0 : int64; w0 : int64 }

let key_of_rng rng =
  { k0 = Rsti_util.Splitmix.next64 rng; w0 = Rsti_util.Splitmix.next64 rng }

let rounds = 7

(* ------------------------------------------------------------------ *)
(* Cell representation: the 64-bit state is sixteen 4-bit cells, cell 0
   being the most significant nibble (QARMA's convention).              *)
(* ------------------------------------------------------------------ *)

let get_cell x i = Int64.to_int (Bits.field x ~lo:(60 - (4 * i)) ~width:4)
let set_cell x i v = Bits.set_field x ~lo:(60 - (4 * i)) ~width:4 (Int64.of_int v)

let map_cells f x =
  let acc = ref 0L in
  for i = 0 to 15 do
    acc := set_cell !acc i (f (get_cell x i))
  done;
  !acc

let permute_cells perm x =
  (* new cell i takes the value of old cell perm.(i) *)
  let acc = ref 0L in
  for i = 0 to 15 do
    acc := set_cell !acc i (get_cell x perm.(i))
  done;
  !acc

let invert_perm perm =
  let inv = Array.make 16 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  inv

(* ------------------------------------------------------------------ *)
(* Components                                                          *)
(* ------------------------------------------------------------------ *)

(* 4-bit S-box (sigma-1 from the QARMA family) and its inverse. *)
let sbox = [| 10; 13; 14; 6; 15; 7; 3; 5; 9; 8; 0; 12; 11; 1; 2; 4 |]

let sbox_inv =
  let inv = Array.make 16 0 in
  Array.iteri (fun i s -> inv.(s) <- i) sbox;
  inv

(* Cell shuffle (QARMA's tau) and its inverse. *)
let tau = [| 0; 11; 6; 13; 10; 1; 12; 7; 5; 14; 3; 8; 15; 4; 9; 2 |]
let tau_inv = invert_perm tau

(* Tweak-update cell permutation (QARMA's h). *)
let h = [| 6; 5; 14; 15; 0; 1; 2; 3; 7; 12; 13; 4; 8; 9; 10; 11 |]

(* Cells whose nibble runs through the tweak LFSR each round. *)
let lfsr_cells = [| 0; 1; 3; 4; 8; 11; 13 |]

(* 4-bit LFSR: (b3,b2,b1,b0) -> (b0 xor b1, b3, b2, b1). *)
let lfsr n =
  let b0 = n land 1 and b1 = (n lsr 1) land 1 in
  let b2 = (n lsr 2) land 1 and b3 = (n lsr 3) land 1 in
  ((b0 lxor b1) lsl 3) lor (b3 lsl 2) lor (b2 lsl 1) lor b1

(* Rotate a 4-bit value left. *)
let rot4 n r =
  let r = r land 3 in
  ((n lsl r) lor (n lsr (4 - r))) land 0xF

(* Involutory MixColumns-like step. The state is viewed as a 4x4 cell
   matrix (row-major: cell index = 4*row + col). Each output cell XORs the
   other three cells of its column rotated by the circulant (0,1,2,1),
   QARMA's M_{4,2}. circ(0,1,2,1) is an involution over nibbles, so this
   step is its own inverse. *)
let mix_rot = [| 0; 1; 2; 1 |]

let mix_columns x =
  let acc = ref 0L in
  for col = 0 to 3 do
    for row = 0 to 3 do
      let v = ref 0 in
      for j = 1 to 3 do
        let src = ((row + j) mod 4 * 4) + col in
        v := !v lxor rot4 (get_cell x src) mix_rot.(j)
      done;
      acc := set_cell !acc ((row * 4) + col) !v
    done
  done;
  !acc

(* Round constants: digits of a fixed pseudo-random stream (splitmix of a
   nothing-up-my-sleeve seed), one per forward round plus one for the
   reflector. *)
let round_constants =
  let rng = Rsti_util.Splitmix.create 0x5254495F51524D41L (* "RTI_QRMA" *) in
  Array.init (rounds + 1) (fun _ -> Rsti_util.Splitmix.next64 rng)

let update_tweak t =
  let t = permute_cells h t in
  Array.fold_left (fun t i -> set_cell t i (lfsr (get_cell t i))) t lfsr_cells

(* Precompute the per-round tweaks; the backward half replays them in
   reverse order, as in QARMA. *)
let tweak_schedule tweak =
  let ts = Array.make rounds 0L in
  let t = ref tweak in
  for i = 0 to rounds - 1 do
    ts.(i) <- !t;
    t := update_tweak !t
  done;
  ts

(* Derived keys for the reflector and the backward half. *)
let w1_of w0 = Int64.logxor (Bits.rotr w0 1) (Int64.shift_right_logical w0 63)
let k1_of k0 = mix_columns k0

(* ------------------------------------------------------------------ *)
(* Rounds                                                              *)
(* ------------------------------------------------------------------ *)

let forward_round ~k ~tweak ~const state =
  let state = Int64.logxor state (Int64.logxor k (Int64.logxor tweak const)) in
  let state = permute_cells tau state in
  let state = mix_columns state in
  map_cells (fun c -> sbox.(c)) state

let backward_round ~k ~tweak ~const state =
  let state = map_cells (fun c -> sbox_inv.(c)) state in
  let state = mix_columns state in
  let state = permute_cells tau_inv state in
  Int64.logxor state (Int64.logxor k (Int64.logxor tweak const))

let reflector ~w1 ~k1 state =
  let state = Int64.logxor state w1 in
  let state = mix_columns state in
  Int64.logxor state k1

let encrypt ~key ~tweak block =
  let ts = tweak_schedule tweak in
  let w1 = w1_of key.w0 and k1 = k1_of key.k0 in
  let state = ref (Int64.logxor block key.w0) in
  for i = 0 to rounds - 1 do
    state := forward_round ~k:key.k0 ~tweak:ts.(i) ~const:round_constants.(i) !state
  done;
  state := reflector ~w1 ~k1 !state;
  for i = 0 to rounds - 1 do
    state :=
      backward_round ~k:key.k0 ~tweak:ts.(rounds - 1 - i)
        ~const:round_constants.(rounds) !state
  done;
  Int64.logxor !state key.w0

let decrypt ~key ~tweak block =
  let ts = tweak_schedule tweak in
  let w1 = w1_of key.w0 and k1 = k1_of key.k0 in
  let state = ref (Int64.logxor block key.w0) in
  (* Undo the backward half: it is forward_round-shaped with the pieces in
     the opposite order, so its inverse is built from the same components. *)
  for i = rounds - 1 downto 0 do
    let k = key.k0 and tweak = ts.(rounds - 1 - i) and const = round_constants.(rounds) in
    let s = Int64.logxor !state (Int64.logxor k (Int64.logxor tweak const)) in
    let s = permute_cells tau s in
    let s = mix_columns s in
    state := map_cells (fun c -> sbox.(c)) s
  done;
  (* The reflector is an involution up to its key material. *)
  state := Int64.logxor !state k1;
  state := mix_columns !state;
  state := Int64.logxor !state w1;
  for i = rounds - 1 downto 0 do
    let k = key.k0 and tweak = ts.(i) and const = round_constants.(i) in
    let s = map_cells (fun c -> sbox_inv.(c)) !state in
    let s = mix_columns s in
    let s = permute_cells tau_inv s in
    state := Int64.logxor s (Int64.logxor k (Int64.logxor tweak const))
  done;
  Int64.logxor !state key.w0

(** Static scope-escape analysis: per stack slot, whether its address
    can outlive the defining scope — the static counterpart of the
    paper's runtime scope enforcement.

    A forward may-escape lattice over the {!Cfg} tracks which registers
    may hold addresses of the function's own locals, flagging the three
    outliving sinks (stored into longer-lived memory, returned, passed
    to external code) with precise lines; the {!Points_to} solution then
    completes the picture interprocedurally (addresses stashed by
    callees) and powers the stale-frame rule: a deref in [g] of a
    pointer targeting a local of [f] where [f] cannot be an active
    caller of [g] touches a frame that has provably ended. *)

type sink =
  | Stored of string        (** description of the longer-lived destination *)
  | Returned
  | Passed_extern of string (** the external callee *)

val sink_to_string : sink -> string

type escape = {
  local : int;         (** var id *)
  local_name : string;
  func : string;       (** defining function *)
  line : int;          (** sink line, or 0 / the declaration line when the
                           sink is interprocedural *)
  sink : sink;
}

type stale = {
  use_func : string;
  use_line : int;
  local_name : string;
  decl_func : string;
  must : bool;  (** every object the pointer may target is a dead frame *)
}

type t

val analyze : points_to:Points_to.t -> Rsti_ir.Ir.modul -> t
(** Run the analysis; any {!Points_to.mode}'s solution works (a sharper
    mode yields fewer spurious escapes). *)

val escapes : t -> escape list
(** May-escape events, deterministic order. A local can appear once per
    distinct sink. *)

val stale_derefs : t -> stale list
(** Dereferences of provably-dead frames, deterministic order. *)

val may_escape : t -> int -> bool
(** Whether the local with this var id has any escape sink. *)

val stats : t -> int * int
(** (escaping locals, total locals). *)

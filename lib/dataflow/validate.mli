(** The PAC-typestate translation validator: re-checks an
    {e instrumented} module against the signed-at-rest / raw-in-flight
    discipline, without trusting the rewriter that produced it.

    A forward dataflow ({!Solver.Forward}) assigns every register a
    provenance typestate — fresh load result, sign output, cast result,
    strip/re-sign output, pp-library output — and the checker enforces,
    per instruction, that sign outputs only reach their guarded store,
    auths only consume fresh loads, casts pair with re-signs (STWC/STL),
    extern calls take stripped pointers and STL boundaries re-sign; and,
    per slot across the module, that instrumentation is all-or-nothing:
    a slot authenticated anywhere has every pointer store signed and
    every load authenticated under the one modifier {!Rsti_sti.Analysis}
    derives for it. Whole-slot elision passes; a dropped sign with the
    auths left behind does not. *)

type issue = { i_fn : string; i_what : string }

type report = {
  mech : Rsti_sti.Rsti_type.mechanism;
  issues : issue list;
  funcs : int;
  checked_slots : int;  (** pointer-bearing slots seen *)
  signed_slots : int;   (** slots carrying sign/auth instrumentation *)
}

val ok : report -> bool

val check :
  Rsti_sti.Analysis.t ->
  Rsti_sti.Rsti_type.mechanism ->
  Rsti_ir.Ir.modul ->
  report
(** [check anal mech m] validates instrumented module [m] against the
    analysis the instrumentation was derived from. [mech = Nop] asserts
    the module carries no PAC/pp ops at all. *)

val report_to_string : report -> string

val break_one_sign : Rsti_ir.Ir.modul -> Rsti_ir.Ir.modul option
(** Fault injection for tests: drop one [Ksign] guarding a slot that is
    authenticated elsewhere, storing the raw value instead — the output
    must then fail {!check}. [None] if the module has no such sign. *)

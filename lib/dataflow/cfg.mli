(** Control-flow graph over an [Ir.func]'s basic blocks: successor and
    predecessor maps (branch targets in this IR are block indices) and a
    reverse postorder from the entry block — the iteration order the
    forward solver seeds its worklist with. *)

type t

val of_func : Rsti_ir.Ir.func -> t
val func : t -> Rsti_ir.Ir.func
val n_blocks : t -> int

val succ : t -> int -> int list
val pred : t -> int -> int list

val rpo : t -> int array
(** Reachable block indices in reverse postorder (entry first). *)

val reachable : t -> int -> bool
(** Whether a block is reachable from the entry; unreachable blocks are
    skipped by the solver and keep their bottom state. *)

val successors : Rsti_ir.Ir.block -> int list
(** Branch targets of a block's terminator (deduplicated). *)

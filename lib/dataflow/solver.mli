(** Generic forward dataflow over a {!Cfg}: a worklist fixpoint solver
    parameterized by a lattice (bottom, join, equality, widening hook)
    and a transfer function per instruction/terminator. The PAC-typestate
    validator ({!Validate}) is the in-tree client; the points-to solver
    ({!Points_to}) shares the {!Worklist} engine but iterates a
    constraint graph instead of a CFG. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** Replaces [join] at a block entry after [widen_after] visits of
      that block; finite-height lattices set [let widen = join]. *)
end

module type TRANSFER = sig
  module L : LATTICE

  type ctx

  val instr : ctx -> Rsti_ir.Ir.instr -> L.t -> L.t
  val term : ctx -> Rsti_ir.Ir.terminator -> L.t -> L.t
end

module Forward (T : TRANSFER) : sig
  type result = {
    cfg : Cfg.t;
    block_in : T.L.t array;
    block_out : T.L.t array;
    visits : int;
  }

  val solve : ?widen_after:int -> ?entry:T.L.t -> ctx:T.ctx -> Cfg.t -> result
  (** Iterate to fixpoint. [entry] is the state at the function entry
      (default bottom); [widen_after] (default 16) bounds how many times
      a block is re-joined before the lattice's widening kicks in. *)

  val iter_block :
    ctx:T.ctx -> result -> int -> (Rsti_ir.Ir.instr -> T.L.t -> unit) -> unit
  (** Re-walk block [i] from its solved entry state, calling [f instr
      state_before_instr] — how checkers consume the fixpoint. *)

  val entry_state : result -> int -> T.L.t
  val exit_state : result -> int -> T.L.t
end

(** Static substitution-attack-surface analysis (paper Table 2 /
    section 6.2.1, made static).

    For one mechanism this module partitions every instrumented slot —
    exactly the population {!Rsti_sti.Analysis.instrument_candidate}
    admits, so the partition is the instrumenter's, not an
    approximation — into modifier-collision equivalence classes: two
    slots fall in the same class iff the runtime signs their pointers
    under the same PA key and the same modifier, which is precisely when
    a signed value harvested from one slot authenticates at the other
    (a replay / substitution gadget). Under [Stl] the modifier also
    binds the storage address, so distinct slots are distinct classes by
    construction.

    Two feasibility tiers per gadget edge, because two attacker models
    are in play:

    - {e replayable} — the paper's threat model (arbitrary read/write,
      no key material): same class, the donor is signed somewhere, the
      victim is authenticated somewhere, and (for stack donors) a frame
      holding the donor can still be live when the victim authenticates.
      This tier is what the dynamic oracle in [lib/attacks] must agree
      with, verdict for verdict.
    - {e feasible} — the confined linear-overflow attacker of
      {!Points_to.confinement}: additionally the victim's storage must
      be backed by attacker-writable memory, and a stack victim must
      actually escape its frame ({!Scope_escape}) for the attacker to
      have a handle on it. This refined tier feeds the
      [feasible-substitution] lint rule and the bench metrics. *)

type member = {
  mb_info : Rsti_sti.Analysis.slot_info;
  mb_signs : int;           (** instrumented store (sign) sites *)
  mb_auths : int;           (** instrumented load (auth) sites *)
  mb_auth_funcs : string list;  (** functions holding the auth sites *)
  mb_writable : bool;       (** storage reachable by the confined attacker *)
  mb_escapes : bool;        (** stack slot whose address outlives its frame *)
  mb_reach : string list option;
      (** functions whose activation can overlap this slot's lifetime
          (call-graph closure from the declaring function, sorted).
          [None] for globals, fields, and anonymous slots: always live.
          A stack donor is live at a victim's auth site only when one of
          the victim's auth functions is in this set. *)
}

type cls = {
  c_modifier : int64;       (** the shared PA modifier constant *)
  c_pa_key : Rsti_pa.Key.which;
  c_label : string;         (** the RSTI-type (or PARTS type) it encodes *)
  c_members : member list;  (** sorted by slot key *)
}

type metrics = {
  m_candidates : int;       (** instrumented slots partitioned *)
  m_classes : int;
  m_singletons : int;
  m_largest : int;          (** largest class size (0 when no classes) *)
  m_hist : (int * int) list;  (** class size -> number of classes, ascending *)
  m_replay_edges : int;     (** gadget edges under the paper's attacker *)
  m_feasible_edges : int;   (** gadget edges under the confined attacker *)
}

type result = {
  r_mech : Rsti_sti.Rsti_type.mechanism;
  r_classes : cls list;     (** sorted by (label, modifier); deterministic *)
  r_metrics : metrics;
}

val analyze :
  ?points_to:Points_to.t ->
  ?scope:Scope_escape.t ->
  Rsti_sti.Analysis.t ->
  Rsti_ir.Ir.modul ->
  Rsti_sti.Rsti_type.mechanism ->
  result
(** Partition the module's instrumented slots under a mechanism. Without
    [points_to] every member is attacker-writable (the paper's threat
    model — the oracle configuration); with it, writability is refined
    by {!Points_to.confinement} seeded on the same global
    overflow-window walk the eliding instrumenter uses. Without [scope]
    every stack slot conservatively escapes. [Nop] yields the empty
    partition. *)

val replayable : result -> donor:Rsti_ir.Ir.slot -> victim:Rsti_ir.Ir.slot -> bool
(** Whether (donor, victim) is a replayable gadget edge: same class,
    donor signed, victim authenticated, donor live at an auth site.
    False when either slot is not in the partition. This is the static
    verdict the dynamic cross-validation checks. *)

val find_member : result -> Rsti_ir.Ir.slot -> (cls * member) option
(** The class and member record a slot landed in, if any. *)

val class_edges : cls -> (member * member) list
(** All replayable (donor, victim) edges inside one class, in member
    order — the materialized gadget graph for reports and lint. Liveness
    of stack donors is already folded in. *)

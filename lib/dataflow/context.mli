(** k-limited call-site contexts: the cloning layer the context-sensitive
    points-to mode runs the Andersen solver under.

    A context is a bounded call string (newest-first call-site ids,
    length at most [k]) built over the SCC-condensed {!Callgraph}: edges
    inside one SCC do not extend the string, so recursion collapses to a
    single context and the universe is finite.  Every defined function
    carries at least the empty context — it may be entered by unknown
    external callers — and keeps at most a fixed clone budget; strings
    beyond the budget fold into the empty context (a sound merge).  The
    empty-context clone is named by the bare function name, which makes
    the [k = 0] cloned constraint graph identical to the insensitive
    one. *)

type t

val build : k:int -> Rsti_ir.Ir.modul -> Callgraph.t -> t
(** Enumerate the context universe for a module under string bound [k]. *)

val call_sites : Rsti_ir.Ir.modul -> (string * int, int) Hashtbl.t * string array
(** Stable call-site ids, independent of [k] and of the analysis mode:
    [(function, nth call instruction in function order) -> site id],
    plus the id-indexed caller names.  Deterministic over a module. *)

val empty_ctx : int
(** The empty call string; context id 0 in every universe. *)

val k : t -> int

val contexts_of : t -> string -> int list
(** The context ids a function is cloned under, ascending;
    [empty_ctx] is always a member for defined functions. *)

val extend : t -> caller:string -> ctx:int -> site:int -> callee:string -> int
(** The callee-side context for a call from [caller] (analyzed under
    [ctx]) at [site]: unchanged inside an SCC, else [site] pushed and
    truncated to [k]; strings outside the callee's enumerated set fold
    into [empty_ctx]. *)

val site : t -> caller:string -> int -> int
(** The stable id of [caller]'s nth call instruction (-1 if unknown). *)

val clone_name : t -> string -> int -> string
(** Node-name qualifier for a (function, context) clone; the empty
    context keeps the bare name. *)

val n_contexts : t -> int
(** Distinct call strings interned. *)

val n_clones : t -> int
(** Total (function, context) pairs the solver will generate. *)

val to_string : t -> int -> string
(** Render a context as its call string, e.g. [<main#3,mid#1>]. *)

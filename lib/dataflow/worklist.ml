(* A deduplicating FIFO worklist over dense integer ids — the engine
   under both fixpoint drivers in this library (the CFG solver iterates
   block ids, the points-to solver iterates constraint-graph node ids).
   Pushing an id already on the list is a no-op, so the client never
   schedules the same unit of work twice per round. *)

type t = { q : int Queue.t; mutable on : Bytes.t }

let create n = { q = Queue.create (); on = Bytes.make (max n 16) '\000' }

let ensure t i =
  let n = Bytes.length t.on in
  if i >= n then begin
    let on = Bytes.make (max (i + 1) (2 * n)) '\000' in
    Bytes.blit t.on 0 on 0 n;
    t.on <- on
  end

let push t i =
  ensure t i;
  if Bytes.get t.on i = '\000' then begin
    Bytes.set t.on i '\001';
    Queue.add i t.q
  end

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some i ->
      Bytes.set t.on i '\000';
      Some i

let is_empty t = Queue.is_empty t.q
let length t = Queue.length t.q

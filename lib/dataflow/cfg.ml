(* Control-flow graph view of an [Ir.func]: successor/predecessor maps
   over the block array (branch targets in this IR are already block
   indices) plus a reverse postorder, the iteration order that makes the
   forward worklist solver converge in few passes over reducible
   flowgraphs. *)

module Ir = Rsti_ir.Ir

type t = {
  fn : Ir.func;
  succ : int list array;
  pred : int list array;
  rpo : int array; (* block indices, reverse postorder from the entry *)
  rpo_pos : int array; (* block index -> position in [rpo]; -1 if dead *)
}

let successors (b : Ir.block) =
  match b.Ir.term with
  | Ir.Ret _ | Ir.Unreachable -> []
  | Ir.Br l -> [ l ]
  | Ir.Condbr (_, a, b') -> if a = b' then [ a ] else [ a; b' ]

let of_func (fn : Ir.func) =
  let n = Array.length fn.Ir.blocks in
  let succ = Array.map successors fn.Ir.blocks in
  let pred = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss)
    succ;
  Array.iteri (fun i ps -> pred.(i) <- List.rev ps) pred;
  (* reverse postorder via iterative DFS from block 0 (the entry) *)
  let seen = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs succ.(i);
      post := i :: !post
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !post in
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun pos b -> rpo_pos.(b) <- pos) rpo;
  { fn; succ; pred; rpo; rpo_pos }

let func t = t.fn
let n_blocks t = Array.length t.fn.Ir.blocks
let succ t i = t.succ.(i)
let pred t i = t.pred.(i)
let rpo t = t.rpo
let reachable t i = t.rpo_pos.(i) >= 0

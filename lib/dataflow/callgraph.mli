(** The module call graph: direct-call edges plus sound indirect-call
    edges (every address-taken function), condensed into strongly
    connected components listed callees-first — the bottom-up order an
    interprocedural driver processes functions in. *)

type t

val of_modul : Rsti_ir.Ir.modul -> t

val sccs : t -> string list list
(** SCCs, callees-first (a component appears after every component it
    calls into). Mutually recursive functions share a component. *)

val bottom_up : t -> string list
(** {!sccs} flattened: every defined function once, callees before
    callers. *)

val callees : t -> string -> string list
(** Direct successors of a function (defined functions only). *)

val reachable : t -> roots:string list -> string -> bool
(** Membership test for the set of functions reachable from [roots]. *)

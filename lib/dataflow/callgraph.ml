(* The module call graph and its bottom-up (callees-first) order.

   Direct calls give precise edges; an indirect call site adds edges to
   every function whose address is taken anywhere in the module (the
   sound flow-insensitive default — the points-to client then narrows
   indirect targets with its own sets). Strongly connected components
   come from Tarjan's algorithm; [bottom_up] lists SCCs callees-first,
   the order an interprocedural summary pass wants. *)

module Ir = Rsti_ir.Ir

type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
  callees : int list array;
  sccs : string list list; (* callees-first *)
}

let call_targets addr_taken (fns : (string, int) Hashtbl.t) (i : Ir.instr_desc) =
  match i with
  | Ir.Call { callee = Ir.Direct f; _ } -> (
      match Hashtbl.find_opt fns f with Some j -> [ j ] | None -> [])
  | Ir.Call { callee = Ir.Indirect _; _ } -> addr_taken
  | _ -> []

let of_modul (m : Ir.modul) =
  let names = Array.of_list (List.map (fun (f : Ir.func) -> f.Ir.name) m.Ir.m_funcs) in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) names;
  (* functions whose address is taken anywhere (Funcaddr operands) *)
  let addr_taken = ref [] in
  let note_value = function
    | Ir.Funcaddr f -> (
        match Hashtbl.find_opt index f with
        | Some j when not (List.mem j !addr_taken) -> addr_taken := j :: !addr_taken
        | _ -> ())
    | _ -> ()
  in
  List.iter
    (fun (fn : Ir.func) ->
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Load { addr; _ } -> note_value addr
          | Ir.Store { src; addr; _ } -> note_value src; note_value addr
          | Ir.Gep { base; _ } | Ir.Gepidx { base; _ } -> note_value base
          | Ir.Bitcast { src; _ } | Ir.Cast_num { src; _ }
          | Ir.Neg { src; _ } | Ir.Lognot { src; _ } | Ir.Bitnot { src; _ } ->
              note_value src
          | Ir.Binop { a; b; _ } -> note_value a; note_value b
          | Ir.Call { callee; args; _ } ->
              (match callee with Ir.Indirect v -> note_value v | Ir.Direct _ -> ());
              List.iter note_value args
          | Ir.Alloca _ | Ir.Pac _ | Ir.Pp _ -> ())
        fn)
    m.Ir.m_funcs;
  let addr_taken = List.sort compare !addr_taken in
  let callees =
    Array.of_list
      (List.map
         (fun (fn : Ir.func) ->
           let acc = ref [] in
           Ir.iter_instrs
             (fun ins ->
               List.iter
                 (fun j -> if not (List.mem j !acc) then acc := j :: !acc)
                 (call_targets addr_taken index ins.Ir.i))
             fn;
           List.rev !acc)
         m.Ir.m_funcs)
  in
  (* Tarjan's SCC: emitted components are callees-first already (a
     component is finished only after everything it reaches). *)
  let n = Array.length names in
  let idx = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and comps = ref [] in
  let rec strong v =
    idx.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if idx.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) idx.(w))
      callees.(v);
    if low.(v) = idx.(v) then begin
      let rec popc acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else popc (w :: acc)
        | [] -> acc
      in
      let comp = popc [] in
      comps := List.map (fun j -> names.(j)) comp :: !comps
    end
  in
  for v = 0 to n - 1 do
    if idx.(v) < 0 then strong v
  done;
  { names; index; callees; sccs = List.rev !comps }

let sccs t = t.sccs
let bottom_up t = List.concat t.sccs

let callees t name =
  match Hashtbl.find_opt t.index name with
  | None -> []
  | Some i -> List.map (fun j -> t.names.(j)) t.callees.(i)

let reachable t ~roots =
  let seen = Hashtbl.create 64 in
  let rec go i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.replace seen i ();
      List.iter go t.callees.(i)
    end
  in
  List.iter
    (fun r -> match Hashtbl.find_opt t.index r with Some i -> go i | None -> ())
    roots;
  fun name ->
    match Hashtbl.find_opt t.index name with
    | Some i -> Hashtbl.mem seen i
    | None -> false

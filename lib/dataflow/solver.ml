(* The generic intraprocedural worklist solver.

   A client supplies a join-semilattice (bottom, join, equality, and a
   widening operator for lattices of unbounded height) and a transfer
   function per instruction/terminator; the solver iterates blocks in
   reverse postorder off a deduplicating worklist until the per-block
   entry states stop changing. After [widen_after] visits of the same
   block the join at its entry is replaced by the widening operator, so
   clients with infinite ascending chains (intervals, counts) still
   terminate; finite-height clients leave [widen = join]. *)

module Ir = Rsti_ir.Ir
module Observe = Rsti_observe.Observe

(* Shared across every Forward instantiation: how many intraprocedural
   fixpoints ran and how block visits distribute over them. *)
let c_solves = Observe.Metrics.counter "dataflow.solver.solves"
let c_visits = Observe.Metrics.counter "dataflow.solver.visits"
let h_visits = Observe.Metrics.histogram "dataflow.solver.visits_per_solve"

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old new_] replaces [join] at a block entry once the block
      has been visited [widen_after] times; finite-height lattices use
      [let widen = join]. *)
end

module type TRANSFER = sig
  module L : LATTICE

  type ctx
  (** Whatever whole-function/whole-module context the transfer needs
      (the analysis, the enclosing function, side tables). *)

  val instr : ctx -> Ir.instr -> L.t -> L.t
  val term : ctx -> Ir.terminator -> L.t -> L.t
end

module Forward (T : TRANSFER) = struct
  type result = {
    cfg : Cfg.t;
    block_in : T.L.t array;
    block_out : T.L.t array;
    visits : int; (* total block visits until fixpoint, for diagnostics *)
  }

  let transfer_block ~ctx (b : Ir.block) st =
    let st = List.fold_left (fun st ins -> T.instr ctx ins st) st b.Ir.instrs in
    T.term ctx b.Ir.term st

  let solve ?(widen_after = 16) ?(entry = T.L.bottom) ~ctx cfg =
    let sp = Observe.Span.enter "dataflow.solver" in
    let n = Cfg.n_blocks cfg in
    let block_in = Array.make n T.L.bottom in
    let block_out = Array.make n T.L.bottom in
    let visit_count = Array.make n 0 in
    let visits = ref 0 in
    if n > 0 then begin
      block_in.(0) <- entry;
      let wl = Worklist.create n in
      (* Seed in reverse postorder: on reducible graphs this visits each
         block after its forward predecessors, so most blocks stabilize
         on the first sweep. *)
      Array.iter (fun b -> Worklist.push wl b) (Cfg.rpo cfg);
      let rec loop () =
        match Worklist.pop wl with
        | None -> ()
        | Some i ->
            incr visits;
            visit_count.(i) <- visit_count.(i) + 1;
            let out = transfer_block ~ctx (Cfg.func cfg).Ir.blocks.(i) block_in.(i) in
            if not (T.L.equal out block_out.(i)) then begin
              block_out.(i) <- out;
              List.iter
                (fun s ->
                  let combine =
                    if visit_count.(s) >= widen_after then T.L.widen
                    else T.L.join
                  in
                  let joined = combine block_in.(s) out in
                  if not (T.L.equal joined block_in.(s)) then begin
                    block_in.(s) <- joined;
                    Worklist.push wl s
                  end)
                (Cfg.succ cfg i)
            end;
            loop ()
      in
      loop ()
    end;
    Observe.Metrics.incr c_solves;
    Observe.Metrics.add c_visits !visits;
    Observe.Metrics.observe h_visits (float_of_int !visits);
    if sp != Observe.Span.none then begin
      Observe.Span.add_attr sp "func" (Cfg.func cfg).Ir.name;
      Observe.Span.add_attr sp "blocks" (string_of_int n);
      Observe.Span.add_attr sp "visits" (string_of_int !visits)
    end;
    Observe.Span.exit sp;
    { cfg; block_in; block_out; visits = !visits }

  (* Re-walk one block from its solved entry state, handing the state
     *before* each instruction to [f] — how checkers consume a result. *)
  let iter_block ~ctx res i f =
    let b = (Cfg.func res.cfg).Ir.blocks.(i) in
    let st =
      List.fold_left
        (fun st ins ->
          f ins st;
          T.instr ctx ins st)
        res.block_in.(i) b.Ir.instrs
    in
    ignore (st : T.L.t)

  let entry_state res i = res.block_in.(i)
  let exit_state res i = res.block_out.(i)
end

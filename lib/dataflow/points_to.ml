(* Inclusion-based (Andersen) points-to analysis over the IR, solved
   with the {!Worklist} engine.

   Abstract objects are field-sensitive and instance-summarized: every
   named variable (local, param, global) is one object, every anonymous
   alloca site one object, every (struct, field) pair one object shared
   by all instances (matching the analysis' [Sfield] slots), and every
   extern call site one heap object. Each object has one "content" cell
   holding the pointers stored into it; registers and the per-function
   return channel are the other pointer nodes.

   Constraint generation walks functions in the call graph's bottom-up
   order (callees first — deterministic and convergence-friendly);
   loads/stores through pointers and indirect calls are the classic
   complex constraints, re-evaluated as the address node's set grows.

   Two precision modes share the machinery. [Insensitive] is the plain
   whole-program solve. [Cloning k] layers {!Context}'s k-limited call
   strings on top: every (function, context) pair gets its own register
   and return nodes (the clone's name qualifies [Nreg]/[Nret]), while
   abstract objects stay context-free — so the cloned solution projects
   onto the insensitive one by erasing the qualifier, and is a
   refinement of it. Parameter binding routes argument flows to the
   callee clone selected by {!Context.extend}, which is what keeps
   differently-contexted calls to one helper from merging. Heap objects
   are keyed by stable call-site ids ({!Context.call_sites}) so object
   identity is mode-independent.

   On top of the raw sets sits the attacker model the elision client
   consumes ({!confinement}): attacker-writable memory is the heap
   (extern allocations), extern data objects, globals behind a
   linear-overflow window, everything whose address was passed to an
   external function or laundered through int<->pointer casts — closed
   under stored-pointer contents (a pointer at rest in attacker memory
   makes its target attacker-reachable). A slot is *confined* when no
   attacker-writable object can back it, which is what turns the
   syntactic checker's "a cast/escape appears somewhere in the
   component" obligations into "an attacker-writable store can actually
   reach this slot". *)

module Ir = Rsti_ir.Ir
module Ctype = Rsti_minic.Ctype

type mode = Insensitive | Cloning of int

let mode_to_string = function
  | Insensitive -> "insensitive"
  | Cloning k -> Printf.sprintf "cloning:%d" k

let mode_of_string = function
  | "insensitive" -> Some Insensitive
  | "cloning" -> Some (Cloning 2)
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "cloning" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some k when k >= 0 -> Some (Cloning k)
          | _ -> None)
      | _ -> None)

type obj =
  | Ovar of int                (* named variable/global storage (var id) *)
  | Otmp of string * int       (* anonymous alloca site: (function, reg) *)
  | Ofield of string * string  (* struct field cell, instance-summarized *)
  | Oheap of string * int      (* extern allocation: (callee, site id) *)
  | Oextern of string          (* extern data object *)
  | Ostr                       (* the string table (read-only) *)
  | Ofun of string             (* a function's code *)
  | Ounknown                   (* int-to-pointer launder: anything *)
  | Octx of obj * int
      (* a cloned frame cell: the [Ovar]/[Otmp] storage of a local or
         parameter in one non-empty calling context. Without this,
         every clone of a function would spill its parameters into the
         one shared frame object and the return channel would merge
         right back — the per-context cell is what actually keeps
         differently-contexted calls apart. Queries erase the wrapper
         ({!base_obj}), so the public view stays context-free. *)

let rec obj_to_string = function
  | Ovar id -> Printf.sprintf "var#%d" id
  | Otmp (f, r) -> Printf.sprintf "tmp:%s/%d" f r
  | Ofield (s, f) -> Printf.sprintf "%s.%s" s f
  | Oheap (f, i) -> Printf.sprintf "heap:%s#%d" f i
  | Oextern n -> "extern:" ^ n
  | Ostr -> "str"
  | Ofun f -> "fun:" ^ f
  | Ounknown -> "unknown"
  | Octx (o, c) -> Printf.sprintf "%s@%d" (obj_to_string o) c

(* Project a (possibly cloned) object onto the context-free base the
   insensitive mode and every query speak in. *)
let rec base_obj = function Octx (o, _) -> base_obj o | o -> o

type node =
  | Nreg of string * int (* virtual register, per function clone *)
  | Ncell of obj         (* the pointer content stored in an object *)
  | Nret of string       (* return-value channel of a function clone *)

module IntSet = Set.Make (Int)

type t = {
  modul : Ir.modul;
  mode : mode;
  ctx : Context.t option; (* Some iff mode is Cloning *)
  (* interning *)
  node_ids : (node, int) Hashtbl.t;
  mutable nodes : node array;
  mutable n_nodes : int;
  obj_ids : (obj, int) Hashtbl.t;
  mutable objs : obj array;
  mutable n_objs : int;
  (* the constraint graph *)
  mutable pts : IntSet.t array;       (* node id -> object ids *)
  mutable copy_edges : int list array; (* node id -> successor node ids *)
  (* complex constraints attached to an address/function-pointer node *)
  mutable loads_at : int list array;   (* addr node -> dst node ids *)
  mutable stores_at : (int * int) list array;
      (* addr node -> (src node, store site id) *)
  mutable geps_at : string list array; (* base node -> struct names *)
  mutable calls_at :
    (Ir.value list * int option * string * string * int * int) list array;
      (* fnptr node -> (args, dst node, caller base, caller clone,
         caller context, call site) for indirect calls *)
  (* side tables *)
  variants : (obj, obj list ref) Hashtbl.t; (* base frame obj -> Octx clones *)
  instances : (string, IntSet.t ref) Hashtbl.t; (* struct -> base objects *)
  mutable escaped : IntSet.t ref; (* objects handed to extern code *)
  globals_by_name : (string, int) Hashtbl.t; (* global name -> var id *)
  defined : (string, Ir.func) Hashtbl.t;
  (* per-Sanon-class address nodes: type-class key -> addr node ids *)
  sanon_addrs : (string, IntSet.t ref) Hashtbl.t;
  (* stable call-site ids, shared by both modes (Oheap identity) *)
  sites : (string * int, int) Hashtbl.t;
  mutable n_clones : int;
  mutable iterations : int;
  work : Worklist.t; (* the solver's queue; per-analysis, domain-safe *)
}

(* ---------------------------- interning --------------------------- *)

let node_id t n =
  match Hashtbl.find_opt t.node_ids n with
  | Some i -> i
  | None ->
      let i = t.n_nodes in
      Hashtbl.replace t.node_ids n i;
      if i >= Array.length t.nodes then begin
        let grow a fill = Array.append a (Array.make (max 64 (Array.length a)) fill) in
        t.nodes <- grow t.nodes (Nret "");
        t.pts <- grow t.pts IntSet.empty;
        t.copy_edges <- grow t.copy_edges [];
        t.loads_at <- grow t.loads_at [];
        t.stores_at <- grow t.stores_at [];
        t.geps_at <- grow t.geps_at [];
        t.calls_at <- grow t.calls_at []
      end;
      t.nodes.(i) <- n;
      t.n_nodes <- i + 1;
      i

let obj_id t o =
  match Hashtbl.find_opt t.obj_ids o with
  | Some i -> i
  | None ->
      let i = t.n_objs in
      Hashtbl.replace t.obj_ids o i;
      if i >= Array.length t.objs then
        t.objs <- Array.append t.objs (Array.make (max 64 (Array.length t.objs)) Ostr);
      t.objs.(i) <- o;
      t.n_objs <- i + 1;
      (match o with
      | Octx _ -> (
          let b = base_obj o in
          match Hashtbl.find_opt t.variants b with
          | Some l -> l := o :: !l
          | None -> Hashtbl.replace t.variants b (ref [ o ]))
      | _ -> ());
      i

(* [o] itself plus every per-context clone of it that was interned. *)
let with_variants t o =
  match Hashtbl.find_opt t.variants o with Some l -> o :: !l | None -> [ o ]

let sanon_key ty = Ctype.to_string (Ctype.strip_all_quals ty)

let sanon_set t ty =
  let k = sanon_key ty in
  match Hashtbl.find_opt t.sanon_addrs k with
  | Some s -> s
  | None ->
      let s = ref IntSet.empty in
      Hashtbl.replace t.sanon_addrs k s;
      s

let instance_set t sname =
  match Hashtbl.find_opt t.instances sname with
  | Some s -> s
  | None ->
      let s = ref IntSet.empty in
      Hashtbl.replace t.instances sname s;
      s

(* ------------------------- constraint solving --------------------- *)

let create ?(mode = Insensitive) ?ctx (m : Ir.modul) =
  let sites, _ = Context.call_sites m in
  let t =
    {
      modul = m;
      mode;
      ctx;
      node_ids = Hashtbl.create 256;
      nodes = Array.make 256 (Nret "");
      n_nodes = 0;
      obj_ids = Hashtbl.create 128;
      objs = Array.make 128 Ostr;
      n_objs = 0;
      pts = Array.make 256 IntSet.empty;
      copy_edges = Array.make 256 [];
      loads_at = Array.make 256 [];
      stores_at = Array.make 256 [];
      geps_at = Array.make 256 [];
      calls_at = Array.make 256 [];
      variants = Hashtbl.create 32;
      instances = Hashtbl.create 32;
      escaped = ref IntSet.empty;
      globals_by_name = Hashtbl.create 32;
      defined = Hashtbl.create 32;
      sanon_addrs = Hashtbl.create 32;
      sites;
      n_clones = 0;
      iterations = 0;
      work = Worklist.create 1024;
    }
  in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace t.globals_by_name g.Ir.gvar.Rsti_minic.Tast.v_name
        g.Ir.gvar.Rsti_minic.Tast.v_id)
    m.Ir.m_globals;
  List.iter (fun (f : Ir.func) -> Hashtbl.replace t.defined f.Ir.name f) m.Ir.m_funcs;
  t

let add_obj t n o =
  if not (IntSet.mem o t.pts.(n)) then begin
    t.pts.(n) <- IntSet.add o t.pts.(n);
    Worklist.push t.work n
  end

let add_objs t n os =
  let merged = IntSet.union t.pts.(n) os in
  if not (IntSet.equal merged t.pts.(n)) then begin
    t.pts.(n) <- merged;
    Worklist.push t.work n
  end

let add_copy t a b =
  if not (List.mem b t.copy_edges.(a)) then begin
    t.copy_edges.(a) <- b :: t.copy_edges.(a);
    if not (IntSet.is_empty t.pts.(a)) then Worklist.push t.work a
  end

(* The address-of facts a bare value contributes. *)
let value_objs t ~fn:_ (v : Ir.value) =
  match v with
  | Ir.Global name -> (
      match Hashtbl.find_opt t.globals_by_name name with
      | Some id -> [ obj_id t (Ovar id) ]
      | None -> [ obj_id t (Oextern name) ])
  | Ir.Funcaddr f -> [ obj_id t (Ofun f) ]
  | Ir.Str _ -> [ obj_id t Ostr ]
  | Ir.Imm _ | Ir.Fimm _ | Ir.Null | Ir.Reg _ -> []

(* Route a value into a node: registers become copy edges, address
   constants become base facts. [fn] is the clone the value is
   evaluated in — register nodes are per-clone. *)
let flow_value t ~fn v ~into =
  match v with
  | Ir.Reg r -> add_copy t (node_id t (Nreg (fn, r))) into
  | _ -> List.iter (fun o -> add_obj t into o) (value_objs t ~fn v)

let content_node t o =
  match t.objs.(o) with
  | Ofun _ -> None (* code has no pointer content cell *)
  | o -> Some (node_id t (Ncell o))

let mark_escaped t o =
  if not (IntSet.mem o !(t.escaped)) then begin
    t.escaped := IntSet.add o !(t.escaped);
    (* contents of escaped objects flow onward during closure, not here *)
    ()
  end

(* Pointer arguments handed to external code: the objects escape. *)
let escape_value t ~fn v =
  match v with
  | Ir.Reg r ->
      let n = node_id t (Nreg (fn, r)) in
      (* record as a pseudo-store into an "escape sink": simplest is to
         walk at solve time; we instead re-use stores_at with a sink. *)
      IntSet.iter (fun o -> mark_escaped t o) t.pts.(n);
      (* future growth: tag the node so new objects escape too *)
      t.geps_at.(n) <- "!escape" :: t.geps_at.(n);
      Worklist.push t.work n
  | _ -> List.iter (fun o -> mark_escaped t o) (value_objs t ~fn v)

(* The clone a call binds its callee under: the caller's context
   extended by the call site (insensitive mode: the callee itself). *)
let callee_clone t ~caller ~ctxid ~site callee =
  match t.ctx with
  | None -> callee
  | Some c ->
      Context.clone_name c callee
        (Context.extend c ~caller ~ctx:ctxid ~site ~callee)

let bind_call t ~caller ~caller_clone ~ctxid ~site args dst (callee : string) =
  match Hashtbl.find_opt t.defined callee with
  | Some callee_fn ->
      let clone = callee_clone t ~caller ~ctxid ~site callee in
      List.iteri
        (fun i arg ->
          (* parameter i occupies register i in the callee's entry *)
          if i < List.length callee_fn.Ir.params then
            flow_value t ~fn:caller_clone arg
              ~into:(node_id t (Nreg (clone, i))))
        args;
      (match dst with
      | Some d -> add_copy t (node_id t (Nret clone)) d
      | None -> ())
  | None ->
      (* external function: arguments escape, result is one heap object
         per static call site (stable ids keep both modes agreeing) *)
      List.iter (fun a -> escape_value t ~fn:caller_clone a) args;
      (match dst with
      | Some d -> add_obj t d (obj_id t (Oheap (callee, site)))
      | None -> ())

(* Frame storage (parameter spills and locals) must be per-clone: the
   ε clone keeps the bare base object, every other context gets its own
   [Octx] cell. *)
let frame_obj ~ctxid o = if ctxid = Context.empty_ctx then o else Octx (o, ctxid)

(* Generate constraints for one clone of a function: register and
   return nodes carry the clone name, abstract objects the base name. *)
let gen_function t (fn : Ir.func) ~clone ~ctxid =
  let fname = fn.Ir.name in
  let reg r = node_id t (Nreg (clone, r)) in
  let nth_call = ref 0 in
  t.n_clones <- t.n_clones + 1;
  Ir.iter_instrs
    (fun ins ->
      match ins.Ir.i with
      | Ir.Alloca { dst; dv = Some d; _ } ->
          add_obj t (reg dst) (obj_id t (frame_obj ~ctxid (Ovar d.Rsti_ir.Dinfo.dv_id)))
      | Ir.Alloca { dst; dv = None; _ } ->
          add_obj t (reg dst) (obj_id t (frame_obj ~ctxid (Otmp (fname, dst))))
      | Ir.Load { dst; addr; ty; slot } ->
          (match slot with
          | Ir.Sanon sty when Ctype.is_pointer ty -> (
              match addr with
              | Ir.Reg r -> (sanon_set t sty) := IntSet.add (reg r) !(sanon_set t sty)
              | _ -> ())
          | _ -> ());
          if Ctype.is_pointer ty then begin
            match addr with
            | Ir.Reg r ->
                let a = reg r in
                t.loads_at.(a) <- reg dst :: t.loads_at.(a);
                if not (IntSet.is_empty t.pts.(a)) then Worklist.push t.work a
            | _ ->
                List.iter
                  (fun o ->
                    match content_node t o with
                    | Some c -> add_copy t c (reg dst)
                    | None -> ())
                  (value_objs t ~fn:clone addr)
          end
      | Ir.Store { src; addr; ty; slot } ->
          (match slot with
          | Ir.Sanon sty when Ctype.is_pointer ty -> (
              match addr with
              | Ir.Reg r -> (sanon_set t sty) := IntSet.add (reg r) !(sanon_set t sty)
              | _ -> ())
          | _ -> ());
          if Ctype.is_pointer ty then begin
            match addr with
            | Ir.Reg r -> (
                let a = reg r in
                match src with
                | Ir.Reg s ->
                    t.stores_at.(a) <- (reg s, 0) :: t.stores_at.(a);
                    if not (IntSet.is_empty t.pts.(a)) then Worklist.push t.work a
                | _ ->
                    let objs = value_objs t ~fn:clone src in
                    if objs <> [] then begin
                      (* constant address stored through a pointer: model
                         with a synthetic source node *)
                      let s = node_id t (Nreg (clone, -1 - Hashtbl.hash ins)) in
                      List.iter (fun o -> add_obj t s o) objs;
                      t.stores_at.(a) <- (s, 0) :: t.stores_at.(a);
                      Worklist.push t.work a
                    end)
            | _ ->
                List.iter
                  (fun o ->
                    match content_node t o with
                    | Some c -> flow_value t ~fn:clone src ~into:c
                    | None -> ())
                  (value_objs t ~fn:clone addr)
          end
      | Ir.Gep { dst; base; sname; field } ->
          add_obj t (reg dst) (obj_id t (Ofield (sname, field)));
          (match base with
          | Ir.Reg r ->
              let b = reg r in
              t.geps_at.(b) <- sname :: t.geps_at.(b);
              if not (IntSet.is_empty t.pts.(b)) then Worklist.push t.work b
          | _ ->
              List.iter
                (fun o -> instance_set t sname := IntSet.add o !(instance_set t sname))
                (value_objs t ~fn:clone base))
      | Ir.Gepidx { dst; base; _ } ->
          (* an element address points into the same object *)
          flow_value t ~fn:clone base ~into:(reg dst)
      | Ir.Bitcast { dst; src; _ } -> flow_value t ~fn:clone src ~into:(reg dst)
      | Ir.Cast_num { dst; src; from_ty; to_ty } ->
          (* pointer laundered through an integer: everything it points
             to escapes; an integer cast back to a pointer can point
             anywhere *)
          if Ctype.is_pointer (Ctype.strip_all_quals from_ty) then
            escape_value t ~fn:clone src;
          if Ctype.is_pointer (Ctype.strip_all_quals to_ty) then
            add_obj t (reg dst) (obj_id t Ounknown)
      | Ir.Call { dst; callee; args; _ } -> (
          let site =
            match Hashtbl.find_opt t.sites (fname, !nth_call) with
            | Some s -> s
            | None -> -1
          in
          incr nth_call;
          let dstn = Option.map reg dst in
          match callee with
          | Ir.Direct f ->
              bind_call t ~caller:fname ~caller_clone:clone ~ctxid ~site args
                dstn f
          | Ir.Indirect v -> (
              match v with
              | Ir.Reg r ->
                  let n = reg r in
                  t.calls_at.(n) <-
                    (args, dstn, fname, clone, ctxid, site) :: t.calls_at.(n);
                  if not (IntSet.is_empty t.pts.(n)) then Worklist.push t.work n
              | Ir.Funcaddr f ->
                  bind_call t ~caller:fname ~caller_clone:clone ~ctxid ~site
                    args dstn f
              | _ -> ()))
      | Ir.Binop _ | Ir.Neg _ | Ir.Lognot _ | Ir.Bitnot _ | Ir.Pac _ | Ir.Pp _ ->
          ())
    fn;
  (* the return channel *)
  Array.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Ret (Some v) -> flow_value t ~fn:clone v ~into:(node_id t (Nret clone))
      | _ -> ())
    fn.Ir.blocks

let solve t =
  let processed_calls : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec drain () =
    match Worklist.pop t.work with
    | None -> ()
    | Some n ->
        t.iterations <- t.iterations + 1;
        let set = t.pts.(n) in
        (* copy edges *)
        List.iter (fun s -> add_objs t s set) t.copy_edges.(n);
        (* complex: loads through n *)
        List.iter
          (fun dst ->
            IntSet.iter
              (fun o ->
                match content_node t o with
                | Some c -> add_copy t c dst
                | None -> ())
              set)
          t.loads_at.(n);
        (* complex: stores through n *)
        List.iter
          (fun (src, _) ->
            IntSet.iter
              (fun o ->
                match content_node t o with
                | Some c -> add_copy t src c
                | None -> ())
              set)
          t.stores_at.(n);
        (* complex: geps and escape sinks on n *)
        List.iter
          (fun sname ->
            if sname = "!escape" then
              IntSet.iter (fun o -> mark_escaped t o) set
            else
              let is = instance_set t sname in
              let merged = IntSet.union !is set in
              if not (IntSet.equal merged !is) then is := merged)
          t.geps_at.(n);
        (* complex: indirect calls through n *)
        List.iter
          (fun (args, dstn, caller, caller_clone, ctxid, site) ->
            IntSet.iter
              (fun o ->
                match t.objs.(o) with
                | Ofun f
                  when not
                         (Hashtbl.mem processed_calls
                            (n, Hashtbl.hash (f, caller_clone, site))) ->
                    Hashtbl.replace processed_calls
                      (n, Hashtbl.hash (f, caller_clone, site)) ();
                    bind_call t ~caller ~caller_clone ~ctxid ~site args dstn f
                | _ -> ())
              set)
          t.calls_at.(n);
        drain ()
  in
  (* run to fixpoint; new edges/facts push nodes back onto the list *)
  drain ()

let c_analyses = Rsti_observe.Observe.Metrics.counter "dataflow.points_to.analyses"
let c_iterations = Rsti_observe.Observe.Metrics.counter "dataflow.points_to.iterations"
let h_iterations =
  Rsti_observe.Observe.Metrics.histogram "dataflow.points_to.iterations_per_solve"

let analyze ?(mode = Insensitive) (m : Ir.modul) =
  let module Observe = Rsti_observe.Observe in
  let sp = Observe.Span.enter "dataflow.points_to" in
  let cg = Callgraph.of_modul m in
  let ctx =
    match mode with
    | Insensitive -> None
    | Cloning k -> Some (Context.build ~k m cg)
  in
  let t = create ~mode ?ctx m in
  (* bottom-up: callees' facts exist before callers copy into them *)
  let by_name = Hashtbl.create 64 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace by_name f.Ir.name f) m.Ir.m_funcs;
  List.iter
    (fun name ->
      match Hashtbl.find_opt by_name name with
      | Some fn -> (
          match ctx with
          | None -> gen_function t fn ~clone:name ~ctxid:Context.empty_ctx
          | Some c ->
              List.iter
                (fun cid ->
                  gen_function t fn ~clone:(Context.clone_name c name cid)
                    ~ctxid:cid)
                (Context.contexts_of c name))
      | None -> ())
    (Callgraph.bottom_up cg);
  solve t;
  Observe.Metrics.incr c_analyses;
  Observe.Metrics.add c_iterations t.iterations;
  Observe.Metrics.observe h_iterations (float_of_int t.iterations);
  if sp != Observe.Span.none then begin
    Observe.Span.add_attr sp "mode" (mode_to_string mode);
    Observe.Span.add_attr sp "nodes" (string_of_int t.n_nodes);
    Observe.Span.add_attr sp "objects" (string_of_int t.n_objs);
    Observe.Span.add_attr sp "clones" (string_of_int t.n_clones);
    Observe.Span.add_attr sp "iterations" (string_of_int t.iterations)
  end;
  Observe.Span.exit sp;
  t

(* ----------------------------- queries ---------------------------- *)

let mode t = t.mode

let clones_of t fn =
  match t.ctx with
  | None -> [ fn ]
  | Some c -> List.map (Context.clone_name c fn) (Context.contexts_of c fn)

(* Every query answers in context-free base objects: cloned frame cells
   are projected down, so clients never see an [Octx]. *)
let objs_of_ids t ids =
  List.sort_uniq compare
    (List.map (fun o -> base_obj t.objs.(o)) (IntSet.elements ids))

let points_to t ~fn (v : Ir.value) =
  match v with
  | Ir.Reg r ->
      let ids =
        List.fold_left
          (fun acc clone ->
            match Hashtbl.find_opt t.node_ids (Nreg (clone, r)) with
            | Some n -> IntSet.union acc t.pts.(n)
            | None -> acc)
          IntSet.empty (clones_of t fn)
      in
      objs_of_ids t ids
  | _ ->
      List.sort_uniq compare
        (List.map (fun o -> base_obj t.objs.(o)) (value_objs t ~fn v))

let returns t ~fn =
  let ids =
    List.fold_left
      (fun acc clone ->
        match Hashtbl.find_opt t.node_ids (Nret clone) with
        | Some n -> IntSet.union acc t.pts.(n)
        | None -> acc)
      IntSet.empty (clones_of t fn)
  in
  objs_of_ids t ids

let instances_of t sname =
  match Hashtbl.find_opt t.instances sname with
  | Some s -> objs_of_ids t !s
  | None -> []

let objects t =
  List.sort_uniq compare
    (List.map base_obj (Array.to_list (Array.sub t.objs 0 t.n_objs)))

let cell_contents t o =
  let ids =
    List.fold_left
      (fun acc v ->
        match Hashtbl.find_opt t.node_ids (Ncell v) with
        | Some c -> IntSet.union acc t.pts.(c)
        | None -> acc)
      IntSet.empty (with_variants t o)
  in
  objs_of_ids t ids

let escaped_objects t = objs_of_ids t !(t.escaped)

type stats = {
  nodes : int;
  objects : int;
  iterations : int;
  heap_objects : int;
  escaped_objects : int;
  clones : int;
}

let stats t =
  let heap = ref 0 in
  for o = 0 to t.n_objs - 1 do
    match t.objs.(o) with Oheap _ -> incr heap | _ -> ()
  done;
  {
    nodes = t.n_nodes;
    objects = t.n_objs;
    iterations = t.iterations;
    heap_objects = !heap;
    escaped_objects = IntSet.cardinal !(t.escaped);
    clones = t.n_clones;
  }

(* ------------------------- the attacker model ---------------------- *)

type confinement = { pt : t; attacker : IntSet.t }

let confinement ?(windowed = []) (pt : t) =
  (* seeds: heap objects, extern data, escaped objects, int-laundered
     pointers, and globals behind a linear-overflow window *)
  let seeds = ref IntSet.empty in
  for o = 0 to pt.n_objs - 1 do
    match base_obj pt.objs.(o) with
    | Oheap _ | Oextern _ | Ounknown -> seeds := IntSet.add o !seeds
    | Ovar id when List.mem id windowed -> seeds := IntSet.add o !seeds
    | _ -> ()
  done;
  seeds := IntSet.union !seeds !(pt.escaped);
  (* a struct field cell lives inside its instances: if any instance is
     attacker memory, the field cell is attacker-writable *)
  let field_attacker attacker =
    Hashtbl.fold
      (fun sname is acc ->
        if IntSet.exists (fun o -> IntSet.mem o attacker) !is then
          List.fold_left
            (fun acc (fname, _) -> IntSet.add (obj_id pt (Ofield (sname, fname))) acc)
            acc
            (match List.assoc_opt sname pt.modul.Ir.m_structs with
            | Some fs -> fs
            | None -> [])
        else acc)
      pt.instances IntSet.empty
  in
  (* close under contents: a pointer stored in attacker memory makes its
     target attacker-reachable (and hence writable) *)
  let rec close attacker =
    let next = ref (IntSet.union attacker (field_attacker attacker)) in
    IntSet.iter
      (fun o ->
        match Hashtbl.find_opt pt.node_ids (Ncell pt.objs.(o)) with
        | Some c -> next := IntSet.union !next pt.pts.(c)
        | None -> ())
      !next;
    if IntSet.equal !next attacker then attacker else close !next
  in
  { pt; attacker = close !seeds }

let attacker_obj c o =
  (* [o] is a base object; any reachable per-context clone taints it *)
  List.exists
    (fun v ->
      match Hashtbl.find_opt c.pt.obj_ids v with
      | Some i -> IntSet.mem i c.attacker
      | None -> false)
    (with_variants c.pt o)

let attacker_objects c = objs_of_ids c.pt c.attacker

(* Is this slot's storage provably out of the attacker's reach?

   - [Svar id]: the variable's own object is not attacker memory.
   - [Sfield (s, f)]: no instance of [s] is attacker memory and the
     summarized field cell was not reached by the closure.
   - [Sanon ty]: every object any same-typed deref access can touch
     (the union over the class' address nodes) is private — variables
     and anonymous stack cells only, none attacker. An empty access set
     is trivially confined (the class has no executable access paths).

   Modifier consistency across the aliased paths is by construction:
   the instrumentation keys every address-taken variable and every
   deref through its [Sanon] type class ([Analysis.alias_slot]), so all
   paths that can reach a confined slot sign/auth under one modifier. *)
let confined_slot c (slot : Ir.slot) =
  let pt = c.pt in
  let att o = IntSet.mem o c.attacker in
  match slot with
  | Ir.Svar id ->
      List.for_all
        (fun v ->
          match Hashtbl.find_opt pt.obj_ids v with
          | Some o -> not (att o)
          | None -> true)
        (with_variants pt (Ovar id))
  | Ir.Sfield (s, f) ->
      (match Hashtbl.find_opt pt.instances s with
      | Some is -> not (IntSet.exists att !is)
      | None -> true)
      && (match Hashtbl.find_opt pt.obj_ids (Ofield (s, f)) with
         | Some o -> not (att o)
         | None -> true)
  | Ir.Sanon ty -> (
      match Hashtbl.find_opt pt.sanon_addrs (sanon_key ty) with
      | None -> true
      | Some addrs ->
          IntSet.for_all
            (fun a ->
              IntSet.for_all
                (fun o ->
                  (not (att o))
                  &&
                  match base_obj pt.objs.(o) with
                  | Ovar _ | Otmp _ -> true
                  | Ofield _ | Oheap _ | Oextern _ | Ostr | Ofun _ | Ounknown
                  | Octx _ ->
                      false)
                pt.pts.(a))
            !addrs)

let confinement_stats c =
  (IntSet.cardinal c.attacker, c.pt.n_objs)

(* Inclusion-based (Andersen) points-to analysis over the IR, solved
   with the {!Worklist} engine.

   Abstract objects are field-sensitive and instance-summarized: every
   named variable (local, param, global) is one object, every anonymous
   alloca site one object, every (struct, field) pair one object shared
   by all instances (matching the analysis' [Sfield] slots), and every
   extern call site one heap object. Each object has one "content" cell
   holding the pointers stored into it; registers and the per-function
   return channel are the other pointer nodes.

   Constraint generation walks functions in the call graph's bottom-up
   order (callees first — deterministic and convergence-friendly);
   loads/stores through pointers and indirect calls are the classic
   complex constraints, re-evaluated as the address node's set grows.

   On top of the raw sets sits the attacker model the elision client
   consumes ({!confinement}): attacker-writable memory is the heap
   (extern allocations), extern data objects, globals behind a
   linear-overflow window, everything whose address was passed to an
   external function or laundered through int<->pointer casts — closed
   under stored-pointer contents (a pointer at rest in attacker memory
   makes its target attacker-reachable). A slot is *confined* when no
   attacker-writable object can back it, which is what turns the
   syntactic checker's "a cast/escape appears somewhere in the
   component" obligations into "an attacker-writable store can actually
   reach this slot". *)

module Ir = Rsti_ir.Ir
module Ctype = Rsti_minic.Ctype

type obj =
  | Ovar of int                (* named variable/global storage (var id) *)
  | Otmp of string * int       (* anonymous alloca site: (function, reg) *)
  | Ofield of string * string  (* struct field cell, instance-summarized *)
  | Oheap of string * int      (* extern allocation: (callee, site id) *)
  | Oextern of string          (* extern data object *)
  | Ostr                       (* the string table (read-only) *)
  | Ofun of string             (* a function's code *)
  | Ounknown                   (* int-to-pointer launder: anything *)

let obj_to_string = function
  | Ovar id -> Printf.sprintf "var#%d" id
  | Otmp (f, r) -> Printf.sprintf "tmp:%s/%d" f r
  | Ofield (s, f) -> Printf.sprintf "%s.%s" s f
  | Oheap (f, i) -> Printf.sprintf "heap:%s#%d" f i
  | Oextern n -> "extern:" ^ n
  | Ostr -> "str"
  | Ofun f -> "fun:" ^ f
  | Ounknown -> "unknown"

type node =
  | Nreg of string * int (* virtual register, per function *)
  | Ncell of obj         (* the pointer content stored in an object *)
  | Nret of string       (* return-value channel of a defined function *)

module IntSet = Set.Make (Int)

type t = {
  modul : Ir.modul;
  (* interning *)
  node_ids : (node, int) Hashtbl.t;
  mutable nodes : node array;
  mutable n_nodes : int;
  obj_ids : (obj, int) Hashtbl.t;
  mutable objs : obj array;
  mutable n_objs : int;
  (* the constraint graph *)
  mutable pts : IntSet.t array;       (* node id -> object ids *)
  mutable copy_edges : int list array; (* node id -> successor node ids *)
  (* complex constraints attached to an address/function-pointer node *)
  mutable loads_at : int list array;   (* addr node -> dst node ids *)
  mutable stores_at : (int * int) list array;
      (* addr node -> (src node, store site id) *)
  mutable geps_at : string list array; (* base node -> struct names *)
  mutable calls_at : (Ir.value list * int option * string) list array;
      (* fnptr node -> (args, dst node, caller) for indirect calls *)
  (* side tables *)
  instances : (string, IntSet.t ref) Hashtbl.t; (* struct -> base objects *)
  mutable escaped : IntSet.t ref; (* objects handed to extern code *)
  globals_by_name : (string, int) Hashtbl.t; (* global name -> var id *)
  defined : (string, Ir.func) Hashtbl.t;
  (* per-Sanon-class address nodes: type-class key -> addr node ids *)
  sanon_addrs : (string, IntSet.t ref) Hashtbl.t;
  mutable heap_sites : int;
  mutable iterations : int;
  work : Worklist.t; (* the solver's queue; per-analysis, domain-safe *)
}

(* ---------------------------- interning --------------------------- *)

let node_id t n =
  match Hashtbl.find_opt t.node_ids n with
  | Some i -> i
  | None ->
      let i = t.n_nodes in
      Hashtbl.replace t.node_ids n i;
      if i >= Array.length t.nodes then begin
        let grow a fill = Array.append a (Array.make (max 64 (Array.length a)) fill) in
        t.nodes <- grow t.nodes (Nret "");
        t.pts <- grow t.pts IntSet.empty;
        t.copy_edges <- grow t.copy_edges [];
        t.loads_at <- grow t.loads_at [];
        t.stores_at <- grow t.stores_at [];
        t.geps_at <- grow t.geps_at [];
        t.calls_at <- grow t.calls_at []
      end;
      t.nodes.(i) <- n;
      t.n_nodes <- i + 1;
      i

let obj_id t o =
  match Hashtbl.find_opt t.obj_ids o with
  | Some i -> i
  | None ->
      let i = t.n_objs in
      Hashtbl.replace t.obj_ids o i;
      if i >= Array.length t.objs then
        t.objs <- Array.append t.objs (Array.make (max 64 (Array.length t.objs)) Ostr);
      t.objs.(i) <- o;
      t.n_objs <- i + 1;
      i

let sanon_key ty = Ctype.to_string (Ctype.strip_all_quals ty)

let sanon_set t ty =
  let k = sanon_key ty in
  match Hashtbl.find_opt t.sanon_addrs k with
  | Some s -> s
  | None ->
      let s = ref IntSet.empty in
      Hashtbl.replace t.sanon_addrs k s;
      s

let instance_set t sname =
  match Hashtbl.find_opt t.instances sname with
  | Some s -> s
  | None ->
      let s = ref IntSet.empty in
      Hashtbl.replace t.instances sname s;
      s

(* ------------------------- constraint solving --------------------- *)

let create (m : Ir.modul) =
  let t =
    {
      modul = m;
      node_ids = Hashtbl.create 256;
      nodes = Array.make 256 (Nret "");
      n_nodes = 0;
      obj_ids = Hashtbl.create 128;
      objs = Array.make 128 Ostr;
      n_objs = 0;
      pts = Array.make 256 IntSet.empty;
      copy_edges = Array.make 256 [];
      loads_at = Array.make 256 [];
      stores_at = Array.make 256 [];
      geps_at = Array.make 256 [];
      calls_at = Array.make 256 [];
      instances = Hashtbl.create 32;
      escaped = ref IntSet.empty;
      globals_by_name = Hashtbl.create 32;
      defined = Hashtbl.create 32;
      sanon_addrs = Hashtbl.create 32;
      heap_sites = 0;
      iterations = 0;
      work = Worklist.create 1024;
    }
  in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace t.globals_by_name g.Ir.gvar.Rsti_minic.Tast.v_name
        g.Ir.gvar.Rsti_minic.Tast.v_id)
    m.Ir.m_globals;
  List.iter (fun (f : Ir.func) -> Hashtbl.replace t.defined f.Ir.name f) m.Ir.m_funcs;
  t

let add_obj t n o =
  if not (IntSet.mem o t.pts.(n)) then begin
    t.pts.(n) <- IntSet.add o t.pts.(n);
    Worklist.push t.work n
  end

let add_objs t n os =
  let merged = IntSet.union t.pts.(n) os in
  if not (IntSet.equal merged t.pts.(n)) then begin
    t.pts.(n) <- merged;
    Worklist.push t.work n
  end

let add_copy t a b =
  if not (List.mem b t.copy_edges.(a)) then begin
    t.copy_edges.(a) <- b :: t.copy_edges.(a);
    if not (IntSet.is_empty t.pts.(a)) then Worklist.push t.work a
  end

(* The address-of facts a bare value contributes. *)
let value_objs t ~fn:_ (v : Ir.value) =
  match v with
  | Ir.Global name -> (
      match Hashtbl.find_opt t.globals_by_name name with
      | Some id -> [ obj_id t (Ovar id) ]
      | None -> [ obj_id t (Oextern name) ])
  | Ir.Funcaddr f -> [ obj_id t (Ofun f) ]
  | Ir.Str _ -> [ obj_id t Ostr ]
  | Ir.Imm _ | Ir.Fimm _ | Ir.Null | Ir.Reg _ -> []

(* Route a value into a node: registers become copy edges, address
   constants become base facts. *)
let flow_value t ~fn v ~into =
  match v with
  | Ir.Reg r -> add_copy t (node_id t (Nreg (fn, r))) into
  | _ -> List.iter (fun o -> add_obj t into o) (value_objs t ~fn v)

let content_node t o =
  match t.objs.(o) with
  | Ofun _ -> None (* code has no pointer content cell *)
  | o -> Some (node_id t (Ncell o))

let mark_escaped t o =
  if not (IntSet.mem o !(t.escaped)) then begin
    t.escaped := IntSet.add o !(t.escaped);
    (* contents of escaped objects flow onward during closure, not here *)
    ()
  end

(* Pointer arguments handed to external code: the objects escape. *)
let escape_value t ~fn v =
  match v with
  | Ir.Reg r ->
      let n = node_id t (Nreg (fn, r)) in
      (* record as a pseudo-store into an "escape sink": simplest is to
         walk at solve time; we instead re-use stores_at with a sink. *)
      IntSet.iter (fun o -> mark_escaped t o) t.pts.(n);
      (* future growth: tag the node so new objects escape too *)
      t.geps_at.(n) <- "!escape" :: t.geps_at.(n);
      Worklist.push t.work n
  | _ -> List.iter (fun o -> mark_escaped t o) (value_objs t ~fn v)

let bind_call t ~caller args dst (callee : string) =
  match Hashtbl.find_opt t.defined callee with
  | Some callee_fn ->
      List.iteri
        (fun i arg ->
          (* parameter i occupies register i in the callee's entry *)
          if i < List.length callee_fn.Ir.params then
            flow_value t ~fn:caller arg
              ~into:(node_id t (Nreg (callee_fn.Ir.name, i))))
        args;
      (match dst with
      | Some d -> add_copy t (node_id t (Nret callee)) d
      | None -> ())
  | None ->
      (* external function: arguments escape, result is a fresh heap
         object per call site *)
      List.iter (fun a -> escape_value t ~fn:caller a) args;
      (match dst with
      | Some d ->
          t.heap_sites <- t.heap_sites + 1;
          add_obj t d (obj_id t (Oheap (callee, t.heap_sites)))
      | None -> ())

let gen_function t (fn : Ir.func) =
  let fname = fn.Ir.name in
  let reg r = node_id t (Nreg (fname, r)) in
  Ir.iter_instrs
    (fun ins ->
      match ins.Ir.i with
      | Ir.Alloca { dst; dv = Some d; _ } ->
          add_obj t (reg dst) (obj_id t (Ovar d.Rsti_ir.Dinfo.dv_id))
      | Ir.Alloca { dst; dv = None; _ } ->
          add_obj t (reg dst) (obj_id t (Otmp (fname, dst)))
      | Ir.Load { dst; addr; ty; slot } ->
          (match slot with
          | Ir.Sanon sty when Ctype.is_pointer ty -> (
              match addr with
              | Ir.Reg r -> (sanon_set t sty) := IntSet.add (reg r) !(sanon_set t sty)
              | _ -> ())
          | _ -> ());
          if Ctype.is_pointer ty then begin
            match addr with
            | Ir.Reg r ->
                let a = reg r in
                t.loads_at.(a) <- reg dst :: t.loads_at.(a);
                if not (IntSet.is_empty t.pts.(a)) then Worklist.push t.work a
            | _ ->
                List.iter
                  (fun o ->
                    match content_node t o with
                    | Some c -> add_copy t c (reg dst)
                    | None -> ())
                  (value_objs t ~fn:fname addr)
          end
      | Ir.Store { src; addr; ty; slot } ->
          (match slot with
          | Ir.Sanon sty when Ctype.is_pointer ty -> (
              match addr with
              | Ir.Reg r -> (sanon_set t sty) := IntSet.add (reg r) !(sanon_set t sty)
              | _ -> ())
          | _ -> ());
          if Ctype.is_pointer ty then begin
            match addr with
            | Ir.Reg r -> (
                let a = reg r in
                match src with
                | Ir.Reg s ->
                    t.stores_at.(a) <- (reg s, 0) :: t.stores_at.(a);
                    if not (IntSet.is_empty t.pts.(a)) then Worklist.push t.work a
                | _ ->
                    let objs = value_objs t ~fn:fname src in
                    if objs <> [] then begin
                      (* constant address stored through a pointer: model
                         with a synthetic source node *)
                      let s = node_id t (Nreg (fname, -1 - Hashtbl.hash ins)) in
                      List.iter (fun o -> add_obj t s o) objs;
                      t.stores_at.(a) <- (s, 0) :: t.stores_at.(a);
                      Worklist.push t.work a
                    end)
            | _ ->
                List.iter
                  (fun o ->
                    match content_node t o with
                    | Some c -> flow_value t ~fn:fname src ~into:c
                    | None -> ())
                  (value_objs t ~fn:fname addr)
          end
      | Ir.Gep { dst; base; sname; field } ->
          add_obj t (reg dst) (obj_id t (Ofield (sname, field)));
          (match base with
          | Ir.Reg r ->
              let b = reg r in
              t.geps_at.(b) <- sname :: t.geps_at.(b);
              if not (IntSet.is_empty t.pts.(b)) then Worklist.push t.work b
          | _ ->
              List.iter
                (fun o -> instance_set t sname := IntSet.add o !(instance_set t sname))
                (value_objs t ~fn:fname base))
      | Ir.Gepidx { dst; base; _ } ->
          (* an element address points into the same object *)
          flow_value t ~fn:fname base ~into:(reg dst)
      | Ir.Bitcast { dst; src; _ } -> flow_value t ~fn:fname src ~into:(reg dst)
      | Ir.Cast_num { dst; src; from_ty; to_ty } ->
          (* pointer laundered through an integer: everything it points
             to escapes; an integer cast back to a pointer can point
             anywhere *)
          if Ctype.is_pointer (Ctype.strip_all_quals from_ty) then
            escape_value t ~fn:fname src;
          if Ctype.is_pointer (Ctype.strip_all_quals to_ty) then
            add_obj t (reg dst) (obj_id t Ounknown)
      | Ir.Call { dst; callee; args; _ } -> (
          let dstn = Option.map reg dst in
          match callee with
          | Ir.Direct f -> bind_call t ~caller:fname args dstn f
          | Ir.Indirect v -> (
              match v with
              | Ir.Reg r ->
                  let n = reg r in
                  t.calls_at.(n) <- (args, dstn, fname) :: t.calls_at.(n);
                  if not (IntSet.is_empty t.pts.(n)) then Worklist.push t.work n
              | Ir.Funcaddr f -> bind_call t ~caller:fname args dstn f
              | _ -> ()))
      | Ir.Binop _ | Ir.Neg _ | Ir.Lognot _ | Ir.Bitnot _ | Ir.Pac _ | Ir.Pp _ ->
          ())
    fn;
  (* the return channel *)
  Array.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Ret (Some v) -> flow_value t ~fn:fname v ~into:(node_id t (Nret fname))
      | _ -> ())
    fn.Ir.blocks

let solve t =
  let processed_calls : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec drain () =
    match Worklist.pop t.work with
    | None -> ()
    | Some n ->
        t.iterations <- t.iterations + 1;
        let set = t.pts.(n) in
        (* copy edges *)
        List.iter (fun s -> add_objs t s set) t.copy_edges.(n);
        (* complex: loads through n *)
        List.iter
          (fun dst ->
            IntSet.iter
              (fun o ->
                match content_node t o with
                | Some c -> add_copy t c dst
                | None -> ())
              set)
          t.loads_at.(n);
        (* complex: stores through n *)
        List.iter
          (fun (src, _) ->
            IntSet.iter
              (fun o ->
                match content_node t o with
                | Some c -> add_copy t src c
                | None -> ())
              set)
          t.stores_at.(n);
        (* complex: geps and escape sinks on n *)
        List.iter
          (fun sname ->
            if sname = "!escape" then
              IntSet.iter (fun o -> mark_escaped t o) set
            else
              let is = instance_set t sname in
              let merged = IntSet.union !is set in
              if not (IntSet.equal merged !is) then is := merged)
          t.geps_at.(n);
        (* complex: indirect calls through n *)
        List.iter
          (fun (args, dstn, caller) ->
            IntSet.iter
              (fun o ->
                match t.objs.(o) with
                | Ofun f when not (Hashtbl.mem processed_calls (n, Hashtbl.hash (f, caller, args))) ->
                    Hashtbl.replace processed_calls (n, Hashtbl.hash (f, caller, args)) ();
                    bind_call t ~caller args dstn f
                | _ -> ())
              set)
          t.calls_at.(n);
        drain ()
  in
  (* run to fixpoint; new edges/facts push nodes back onto the list *)
  drain ()

let c_analyses = Rsti_observe.Observe.Metrics.counter "dataflow.points_to.analyses"
let c_iterations = Rsti_observe.Observe.Metrics.counter "dataflow.points_to.iterations"
let h_iterations =
  Rsti_observe.Observe.Metrics.histogram "dataflow.points_to.iterations_per_solve"

let analyze (m : Ir.modul) =
  let module Observe = Rsti_observe.Observe in
  let sp = Observe.Span.enter "dataflow.points_to" in
  let t = create m in
  let cg = Callgraph.of_modul m in
  (* bottom-up: callees' facts exist before callers copy into them *)
  let by_name = Hashtbl.create 64 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace by_name f.Ir.name f) m.Ir.m_funcs;
  List.iter
    (fun name ->
      match Hashtbl.find_opt by_name name with
      | Some fn -> gen_function t fn
      | None -> ())
    (Callgraph.bottom_up cg);
  solve t;
  Observe.Metrics.incr c_analyses;
  Observe.Metrics.add c_iterations t.iterations;
  Observe.Metrics.observe h_iterations (float_of_int t.iterations);
  if sp != Observe.Span.none then begin
    Observe.Span.add_attr sp "nodes" (string_of_int t.n_nodes);
    Observe.Span.add_attr sp "objects" (string_of_int t.n_objs);
    Observe.Span.add_attr sp "iterations" (string_of_int t.iterations)
  end;
  Observe.Span.exit sp;
  t

(* ----------------------------- queries ---------------------------- *)

let points_to t ~fn (v : Ir.value) =
  match v with
  | Ir.Reg r -> (
      match Hashtbl.find_opt t.node_ids (Nreg (fn, r)) with
      | Some n -> List.map (fun o -> t.objs.(o)) (IntSet.elements t.pts.(n))
      | None -> [])
  | _ -> List.map (fun o -> t.objs.(o)) (value_objs t ~fn v)

let instances_of t sname =
  match Hashtbl.find_opt t.instances sname with
  | Some s -> List.map (fun o -> t.objs.(o)) (IntSet.elements !s)
  | None -> []

type stats = {
  nodes : int;
  objects : int;
  iterations : int;
  heap_objects : int;
  escaped_objects : int;
}

let stats t =
  {
    nodes = t.n_nodes;
    objects = t.n_objs;
    iterations = t.iterations;
    heap_objects = t.heap_sites;
    escaped_objects = IntSet.cardinal !(t.escaped);
  }

(* ------------------------- the attacker model ---------------------- *)

type confinement = { pt : t; attacker : IntSet.t }

let confinement ?(windowed = []) (pt : t) =
  (* seeds: heap objects, extern data, escaped objects, int-laundered
     pointers, and globals behind a linear-overflow window *)
  let seeds = ref IntSet.empty in
  for o = 0 to pt.n_objs - 1 do
    match pt.objs.(o) with
    | Oheap _ | Oextern _ | Ounknown -> seeds := IntSet.add o !seeds
    | Ovar id when List.mem id windowed -> seeds := IntSet.add o !seeds
    | _ -> ()
  done;
  seeds := IntSet.union !seeds !(pt.escaped);
  (* a struct field cell lives inside its instances: if any instance is
     attacker memory, the field cell is attacker-writable *)
  let field_attacker attacker =
    Hashtbl.fold
      (fun sname is acc ->
        if IntSet.exists (fun o -> IntSet.mem o attacker) !is then
          List.fold_left
            (fun acc (fname, _) -> IntSet.add (obj_id pt (Ofield (sname, fname))) acc)
            acc
            (match List.assoc_opt sname pt.modul.Ir.m_structs with
            | Some fs -> fs
            | None -> [])
        else acc)
      pt.instances IntSet.empty
  in
  (* close under contents: a pointer stored in attacker memory makes its
     target attacker-reachable (and hence writable) *)
  let rec close attacker =
    let next = ref (IntSet.union attacker (field_attacker attacker)) in
    IntSet.iter
      (fun o ->
        match Hashtbl.find_opt pt.node_ids (Ncell pt.objs.(o)) with
        | Some c -> next := IntSet.union !next pt.pts.(c)
        | None -> ())
      !next;
    if IntSet.equal !next attacker then attacker else close !next
  in
  { pt; attacker = close !seeds }

let attacker_obj c o =
  match Hashtbl.find_opt c.pt.obj_ids o with
  | Some i -> IntSet.mem i c.attacker
  | None -> false

let attacker_objects c = List.map (fun o -> c.pt.objs.(o)) (IntSet.elements c.attacker)

(* Is this slot's storage provably out of the attacker's reach?

   - [Svar id]: the variable's own object is not attacker memory.
   - [Sfield (s, f)]: no instance of [s] is attacker memory and the
     summarized field cell was not reached by the closure.
   - [Sanon ty]: every object any same-typed deref access can touch
     (the union over the class' address nodes) is private — variables
     and anonymous stack cells only, none attacker. An empty access set
     is trivially confined (the class has no executable access paths).

   Modifier consistency across the aliased paths is by construction:
   the instrumentation keys every address-taken variable and every
   deref through its [Sanon] type class ([Analysis.alias_slot]), so all
   paths that can reach a confined slot sign/auth under one modifier. *)
let confined_slot c (slot : Ir.slot) =
  let pt = c.pt in
  let att o = IntSet.mem o c.attacker in
  match slot with
  | Ir.Svar id -> (
      match Hashtbl.find_opt pt.obj_ids (Ovar id) with
      | Some o -> not (att o)
      | None -> true)
  | Ir.Sfield (s, f) ->
      (match Hashtbl.find_opt pt.instances s with
      | Some is -> not (IntSet.exists att !is)
      | None -> true)
      && (match Hashtbl.find_opt pt.obj_ids (Ofield (s, f)) with
         | Some o -> not (att o)
         | None -> true)
  | Ir.Sanon ty -> (
      match Hashtbl.find_opt pt.sanon_addrs (sanon_key ty) with
      | None -> true
      | Some addrs ->
          IntSet.for_all
            (fun a ->
              IntSet.for_all
                (fun o ->
                  (not (att o))
                  &&
                  match pt.objs.(o) with
                  | Ovar _ | Otmp _ -> true
                  | Ofield _ | Oheap _ | Oextern _ | Ostr | Ofun _ | Ounknown ->
                      false)
                pt.pts.(a))
            !addrs)

let confinement_stats c =
  (IntSet.cardinal c.attacker, c.pt.n_objs)

(* k-limited call-site contexts for the cloning points-to mode.

   A context is a bounded call string: the most recent [k] call-site ids
   on the path from a root into the function, newest first.  Call sites
   get stable ids from a deterministic module walk ({!call_sites}), so
   the same site numbers the same way in every analysis mode — the
   insensitive solver reuses the ids for its heap-allocation objects.

   The universe of contexts is enumerated up front from the module's
   call edges (direct edges plus the sound indirect default: every
   address-taken defined function), starting every defined function at
   the empty string [eps] — functions can always be entered by unknown
   external callers, and the empty-context clone keeps the base
   function's bare name so [k = 0] reproduces the insensitive node
   graph exactly.  Two collapses bound the enumeration:

   - edges inside one {!Callgraph} SCC do not extend the string
     (recursion would otherwise build unbounded strings), and
   - a function keeps at most [max_clones] distinct contexts; further
     strings fold into the empty context (sound: the clone merges the
     overflowing callers, exactly like the insensitive analysis merges
     all of them). *)

module Ir = Rsti_ir.Ir

let max_clones = 16

type t = {
  k : int;
  (* interned call strings: id -> site ids, newest first; id 0 = eps *)
  mutable strings : int list array;
  mutable n_ctx : int;
  ids : (int list, int) Hashtbl.t;
  scc_of : (string, int) Hashtbl.t;
  ctxs : (string, int list ref) Hashtbl.t; (* fn -> ctx ids, ascending *)
  sites : (string * int, int) Hashtbl.t;   (* (fn, nth call) -> site id *)
  site_callers : string array;             (* site id -> calling function *)
}

let empty_ctx = 0

(* Stable call-site numbering: functions in module order, call
   instructions in block/instruction order.  Every analysis mode that
   needs a per-call-site identity uses this one table. *)
let call_sites (m : Ir.modul) =
  let tbl = Hashtbl.create 256 in
  let callers = ref [] in
  let next = ref 0 in
  List.iter
    (fun (fn : Ir.func) ->
      let nth = ref 0 in
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Call _ ->
              Hashtbl.replace tbl (fn.Ir.name, !nth) !next;
              callers := fn.Ir.name :: !callers;
              incr nth;
              incr next
          | _ -> ())
        fn)
    m.Ir.m_funcs;
  (tbl, Array.of_list (List.rev !callers))

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some i -> i
  | None ->
      let i = t.n_ctx in
      Hashtbl.replace t.ids s i;
      if i >= Array.length t.strings then
        t.strings <-
          Array.append t.strings (Array.make (max 16 (Array.length t.strings)) []);
      t.strings.(i) <- s;
      t.n_ctx <- i + 1;
      i

let ctx_list t fn =
  match Hashtbl.find_opt t.ctxs fn with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.ctxs fn l;
      l

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* The callee-side context for a call edge: SCC-internal edges keep the
   caller's string, others push the site and truncate to k.  Strings a
   clone budget refused fold into eps. *)
let extend t ~caller ~ctx ~site ~callee =
  let same_scc =
    match (Hashtbl.find_opt t.scc_of caller, Hashtbl.find_opt t.scc_of callee) with
    | Some a, Some b -> a = b
    | _ -> false
  in
  let s = if same_scc then t.strings.(ctx) else take t.k (site :: t.strings.(ctx)) in
  match Hashtbl.find_opt t.ids s with
  | Some i -> if List.mem i !(ctx_list t callee) then i else empty_ctx
  | None -> empty_ctx

let build ~k (m : Ir.modul) (cg : Callgraph.t) =
  let sites, site_callers = call_sites m in
  let t =
    {
      k = max 0 k;
      strings = Array.make 64 [];
      n_ctx = 0;
      ids = Hashtbl.create 64;
      scc_of = Hashtbl.create 64;
      ctxs = Hashtbl.create 64;
      sites;
      site_callers;
    }
  in
  ignore (intern t []);
  List.iteri
    (fun i comp -> List.iter (fun f -> Hashtbl.replace t.scc_of f i) comp)
    (Callgraph.sccs cg);
  let defined = Hashtbl.create 64 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.name f) m.Ir.m_funcs;
  (* call edges: (caller, site, callee) — indirect sites target every
     address-taken defined function, mirroring Callgraph *)
  let addr_taken = ref [] in
  let note_value = function
    | Ir.Funcaddr f when Hashtbl.mem defined f ->
        if not (List.mem f !addr_taken) then addr_taken := f :: !addr_taken
    | _ -> ()
  in
  List.iter
    (fun (fn : Ir.func) ->
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Load { addr; _ } -> note_value addr
          | Ir.Store { src; addr; _ } ->
              note_value src;
              note_value addr
          | Ir.Gep { base; _ } | Ir.Gepidx { base; _ } -> note_value base
          | Ir.Bitcast { src; _ } | Ir.Cast_num { src; _ }
          | Ir.Neg { src; _ } | Ir.Lognot { src; _ } | Ir.Bitnot { src; _ } ->
              note_value src
          | Ir.Binop { a; b; _ } ->
              note_value a;
              note_value b
          | Ir.Call { callee; args; _ } ->
              (match callee with
              | Ir.Indirect v -> note_value v
              | Ir.Direct _ -> ());
              List.iter note_value args
          | Ir.Alloca _ | Ir.Pac _ | Ir.Pp _ -> ())
        fn)
    m.Ir.m_funcs;
  let addr_taken = List.sort compare !addr_taken in
  let edges = Hashtbl.create 64 in (* caller -> (site, callee) list, in order *)
  List.iter
    (fun (fn : Ir.func) ->
      let nth = ref 0 in
      let acc = ref [] in
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Call { callee; _ } ->
              let site = Hashtbl.find t.sites (fn.Ir.name, !nth) in
              incr nth;
              (match callee with
              | Ir.Direct f | Ir.Indirect (Ir.Funcaddr f) ->
                  if Hashtbl.mem defined f then acc := (site, f) :: !acc
              | Ir.Indirect _ ->
                  List.iter (fun f -> acc := (site, f) :: !acc) addr_taken)
          | _ -> ())
        fn;
      Hashtbl.replace edges fn.Ir.name (List.rev !acc))
    m.Ir.m_funcs;
  (* enumerate (function, context) pairs to fixpoint from all-eps *)
  let queue = Queue.create () in
  let add fn ctx =
    let l = ctx_list t fn in
    if not (List.mem ctx !l) then begin
      l := ctx :: !l;
      Queue.add (fn, ctx) queue
    end
  in
  List.iter (fun (f : Ir.func) -> add f.Ir.name empty_ctx) m.Ir.m_funcs;
  while not (Queue.is_empty queue) do
    let fn, ctx = Queue.pop queue in
    List.iter
      (fun (site, callee) ->
        let same_scc =
          match
            (Hashtbl.find_opt t.scc_of fn, Hashtbl.find_opt t.scc_of callee)
          with
          | Some a, Some b -> a = b
          | _ -> false
        in
        let s =
          if same_scc then t.strings.(ctx) else take t.k (site :: t.strings.(ctx))
        in
        if s = [] then add callee empty_ctx
        else begin
          let l = ctx_list t callee in
          let id = Hashtbl.find_opt t.ids s in
          match id with
          | Some i when List.mem i !l -> ()
          | _ ->
              if List.length !l < max_clones then add callee (intern t s)
              (* over budget: the string folds into eps, already present *)
        end)
      (match Hashtbl.find_opt edges fn with Some e -> e | None -> [])
  done;
  Hashtbl.iter (fun _ l -> l := List.sort_uniq compare !l) t.ctxs;
  t

let k t = t.k
let n_contexts t = t.n_ctx

let contexts_of t fn =
  match Hashtbl.find_opt t.ctxs fn with Some l -> !l | None -> [ empty_ctx ]

let n_clones t =
  Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.ctxs 0

let site t ~caller nth =
  match Hashtbl.find_opt t.sites (caller, nth) with Some s -> s | None -> -1

(* The node-naming scheme: the empty-context clone keeps the bare
   function name (so k = 0 is literally the insensitive graph), other
   clones append the interned context id. *)
let clone_name _t fn ctx =
  if ctx = empty_ctx then fn else Printf.sprintf "%s@%d" fn ctx

let to_string t ctx =
  if ctx = empty_ctx then "<>"
  else
    "<"
    ^ String.concat ","
        (List.map
           (fun s ->
             if s >= 0 && s < Array.length t.site_callers then
               Printf.sprintf "%s#%d" t.site_callers.(s) s
             else string_of_int s)
           t.strings.(ctx))
    ^ ">"

(* Static scope-escape analysis: does the address of a stack slot
   outlive its defining scope?

   The paper enforces scope at runtime (the location-sensitive STL
   mechanism); this pass is the static counterpart. Per function, a
   forward may-escape lattice over the {!Cfg} tracks which registers may
   hold addresses of the function's own locals (allocas seed the map;
   geps, element addressing and bitcasts propagate it — an interior
   pointer pins the whole frame slot). Sinks are the three ways an
   address can outlive the frame:

   - stored into longer-lived memory (a global, a struct field whose
     instances are not all in this frame, or a deref destination the
     points-to solution places outside the frame),
   - returned to the caller,
   - passed to external code (which may stash it anywhere).

   The CFG pass yields precisely-located events; the points-to solution
   then completes it interprocedurally — a local whose address sits in
   some longer-lived object's content cell, escapes to extern code, or
   flows out of the defining function's return channel may escape even
   when every sink instruction is in a callee.

   On top of the escape facts sits the stale-frame rule: a load/store in
   function [g] through a pointer that may target a local of [f], where
   [f] cannot be an active caller of [g] ([g] is unreachable from [f] in
   the call graph), dereferences a frame that has provably ended. *)

module Ir = Rsti_ir.Ir
module Dinfo = Rsti_ir.Dinfo
module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type sink =
  | Stored of string        (* description of the longer-lived destination *)
  | Returned
  | Passed_extern of string (* the external callee *)

let sink_to_string = function
  | Stored dst -> "stored into " ^ dst
  | Returned -> "returned to caller"
  | Passed_extern f -> "passed to external function " ^ f

type escape = {
  local : int;         (* var id *)
  local_name : string;
  func : string;       (* defining function *)
  line : int;          (* sink line, or the declaration line *)
  sink : sink;
}

type stale = {
  use_func : string;
  use_line : int;
  local_name : string;
  decl_func : string;
  must : bool; (* every object the pointer may target is a dead frame *)
}

type t = {
  escapes : escape list;
  stales : stale list;
  escaping : IntSet.t;
  n_locals : int;
}

(* ----------------------- the may-escape lattice -------------------- *)

module Frame_transfer = struct
  module L = struct
    type t = IntSet.t IntMap.t (* reg -> local var ids it may address *)

    let bottom = IntMap.empty
    let equal = IntMap.equal IntSet.equal
    let join = IntMap.union (fun _ a b -> Some (IntSet.union a b))
    let widen = join
  end

  type ctx = { locals : IntSet.t } (* var ids owned by this function *)

  let get st r =
    match IntMap.find_opt r st with Some s -> s | None -> IntSet.empty

  let held st = function Ir.Reg r -> get st r | _ -> IntSet.empty

  let instr ctx (ins : Ir.instr) st =
    match ins.Ir.i with
    | Ir.Alloca { dst; dv = Some d; _ }
      when IntSet.mem d.Dinfo.dv_id ctx.locals ->
        IntMap.add dst (IntSet.singleton d.Dinfo.dv_id) st
    | Ir.Gep { dst; base; _ } | Ir.Gepidx { dst; base; _ } ->
        (* an interior address keeps the frame slot alive *)
        IntMap.add dst (held st base) st
    | Ir.Bitcast { dst; src; _ } -> IntMap.add dst (held st src) st
    | Ir.Alloca { dst; _ }
    | Ir.Load { dst; _ }
    | Ir.Binop { dst; _ }
    | Ir.Neg { dst; _ }
    | Ir.Lognot { dst; _ }
    | Ir.Bitnot { dst; _ }
    | Ir.Cast_num { dst; _ } ->
        IntMap.add dst IntSet.empty st
    | Ir.Call { dst = Some d; _ } -> IntMap.add d IntSet.empty st
    | Ir.Call { dst = None; _ } | Ir.Store _ | Ir.Pac _ | Ir.Pp _ -> st

  let term _ _ st = st
end

module F = Solver.Forward (Frame_transfer)

(* --------------------------- the analysis -------------------------- *)

let c_analyses = Rsti_observe.Observe.Metrics.counter "dataflow.scope_escape.analyses"

let analyze ~points_to:(pt : Points_to.t) (m : Ir.modul) =
  let module Observe = Rsti_observe.Observe in
  let sp = Observe.Span.enter "dataflow.scope_escape" in
  let globals = Hashtbl.create 32 in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace globals g.Ir.gvar.Rsti_minic.Tast.v_id
        g.Ir.gvar.Rsti_minic.Tast.v_name)
    m.Ir.m_globals;
  (* locals: every alloca'd variable, owned by its declaring function *)
  let owner : (int, string * string * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (fn : Ir.func) ->
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Alloca { dv = Some d; _ } ->
              Hashtbl.replace owner d.Dinfo.dv_id
                (fn.Ir.name, d.Dinfo.dv_name, d.Dinfo.dv_line)
          | _ -> ())
        fn)
    m.Ir.m_funcs;
  let defined = Hashtbl.create 32 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.name ()) m.Ir.m_funcs;
  let frame_obj ~fn ~locals = function
    | Points_to.Ovar id -> IntSet.mem id locals
    | Points_to.Otmp (f, _) -> f = fn
    | _ -> false
  in
  let escapes = ref [] in
  let line_of (ins : Ir.instr) =
    match ins.Ir.dbg with Some d -> d.Dinfo.dl_line | None -> 0
  in
  (* the CFG pass: precisely-located sink events *)
  List.iter
    (fun (fn : Ir.func) ->
      let fname = fn.Ir.name in
      let locals =
        Hashtbl.fold
          (fun id (f, _, _) acc -> if f = fname then IntSet.add id acc else acc)
          owner IntSet.empty
      in
      if not (IntSet.is_empty locals) then begin
        let ctx = { Frame_transfer.locals } in
        let cfg = Cfg.of_func fn in
        let res = F.solve ~ctx cfg in
        let emit ~line ~sink ids =
          IntSet.iter
            (fun l ->
              match Hashtbl.find_opt owner l with
              | Some (f, name, _) when f = fname ->
                  escapes :=
                    { local = l; local_name = name; func = fname; line; sink }
                    :: !escapes
              | _ -> ())
            ids
        in
        for b = 0 to Cfg.n_blocks cfg - 1 do
          F.iter_block ~ctx res b (fun ins st ->
              let held v = Frame_transfer.held st v in
              match ins.Ir.i with
              | Ir.Store { src; addr; slot; _ } ->
                  let ids = held src in
                  if not (IntSet.is_empty ids) then begin
                    let dst =
                      match slot with
                      | Ir.Svar id -> (
                          match Hashtbl.find_opt globals id with
                          | Some name -> Some ("global " ^ name)
                          | None -> None (* a slot in this same frame *))
                      | Ir.Sfield (s, _) -> (
                          match Points_to.instances_of pt s with
                          | [] -> None
                          | is
                            when List.for_all (frame_obj ~fn:fname ~locals) is
                            ->
                              None
                          | _ -> Some ("a struct " ^ s ^ " outside the frame"))
                      | Ir.Sanon _ -> (
                          match Points_to.points_to pt ~fn:fname addr with
                          | [] -> None
                          | objs
                            when List.for_all (frame_obj ~fn:fname ~locals)
                                   objs ->
                              None
                          | objs ->
                              let o =
                                List.find
                                  (fun o ->
                                    not (frame_obj ~fn:fname ~locals o))
                                  objs
                              in
                              Some (Points_to.obj_to_string o))
                    in
                    match dst with
                    | Some d ->
                        emit ~line:(line_of ins) ~sink:(Stored d) ids
                    | None -> ()
                  end
              | Ir.Call { callee = Ir.Direct f; args; _ }
                when not (Hashtbl.mem defined f) ->
                  List.iter
                    (fun a ->
                      let ids = held a in
                      if not (IntSet.is_empty ids) then
                        emit ~line:(line_of ins) ~sink:(Passed_extern f) ids)
                    args
              | _ -> ());
          match fn.Ir.blocks.(b).Ir.term with
          | Ir.Ret (Some (Ir.Reg r)) ->
              let ids = Frame_transfer.get (F.exit_state res b) r in
              if not (IntSet.is_empty ids) then
                emit ~line:0 ~sink:Returned ids
          | _ -> ()
        done
      end)
    m.Ir.m_funcs;
  (* interprocedural completion from the points-to solution: addresses
     that escape through callees have no sink instruction in the
     defining function, but still show up escaped / stored in a
     longer-lived cell / in the return channel *)
  let seen = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace seen e.local ()) !escapes;
  let longer_lived o =
    match Points_to.base_obj o with
    | Points_to.Ovar id -> Hashtbl.mem globals id
    | Points_to.Ofield _ | Points_to.Oheap _ | Points_to.Oextern _
    | Points_to.Ounknown ->
        true
    | Points_to.Otmp _ | Points_to.Ostr | Points_to.Ofun _
    | Points_to.Octx _ ->
        false
  in
  let escaped = Points_to.escaped_objects pt in
  let complete l (f, name, line) =
    if not (Hashtbl.mem seen l) then begin
      let add sink =
        if not (Hashtbl.mem seen l) then begin
          Hashtbl.replace seen l ();
          escapes :=
            { local = l; local_name = name; func = f; line; sink } :: !escapes
        end
      in
      if List.mem (Points_to.Ovar l) escaped then
        add (Passed_extern "<extern>");
      if not (Hashtbl.mem seen l) then
        List.iter
          (fun o ->
            if longer_lived o then
              if List.mem (Points_to.Ovar l) (Points_to.cell_contents pt o)
              then add (Stored (Points_to.obj_to_string o)))
          (Points_to.objects pt);
      if not (Hashtbl.mem seen l) then
        if List.mem (Points_to.Ovar l) (Points_to.returns pt ~fn:f) then
          add Returned
    end
  in
  let locals_sorted =
    List.sort compare (Hashtbl.fold (fun l inf acc -> (l, inf) :: acc) owner [])
  in
  List.iter (fun (l, inf) -> complete l inf) locals_sorted;
  (* stale-frame derefs: a use in [g] of a pointer targeting a local of
     [f], where [f] cannot be an active caller of [g] *)
  let cg = Callgraph.of_modul m in
  let reach_cache = Hashtbl.create 16 in
  let reaches f g =
    let r =
      match Hashtbl.find_opt reach_cache f with
      | Some r -> r
      | None ->
          let r = Callgraph.reachable cg ~roots:[ f ] in
          Hashtbl.replace reach_cache f r;
          r
    in
    r g
  in
  let stales = ref [] in
  let stale_seen = Hashtbl.create 16 in
  List.iter
    (fun (fn : Ir.func) ->
      let g = fn.Ir.name in
      Ir.iter_instrs
        (fun ins ->
          let addr =
            match ins.Ir.i with
            | Ir.Load { addr = Ir.Reg r; _ } | Ir.Store { addr = Ir.Reg r; _ }
              ->
                Some r
            | _ -> None
          in
          match addr with
          | None -> ()
          | Some r ->
              let objs = Points_to.points_to pt ~fn:g (Ir.Reg r) in
              let dead_frame = function
                | Points_to.Ovar l -> (
                    match Hashtbl.find_opt owner l with
                    | Some (f, _, _) -> f <> g && not (reaches f g)
                    | None -> false)
                | Points_to.Otmp (f, _) -> f <> g && not (reaches f g)
                | _ -> false
              in
              let dead =
                List.filter_map
                  (function
                    | Points_to.Ovar l when dead_frame (Points_to.Ovar l) ->
                        Some l
                    | _ -> None)
                  objs
              in
              if dead <> [] then begin
                let must = List.for_all dead_frame objs in
                List.iter
                  (fun l ->
                    match Hashtbl.find_opt owner l with
                    | Some (f, name, _) ->
                        let line = line_of ins in
                        if not (Hashtbl.mem stale_seen (g, line, l)) then begin
                          Hashtbl.replace stale_seen (g, line, l) ();
                          stales :=
                            {
                              use_func = g;
                              use_line = line;
                              local_name = name;
                              decl_func = f;
                              must;
                            }
                            :: !stales
                        end
                    | None -> ())
                  dead
              end)
        fn)
    m.Ir.m_funcs;
  let escapes =
    List.sort_uniq compare (List.rev !escapes)
  in
  let escaping =
    List.fold_left (fun acc e -> IntSet.add e.local acc) IntSet.empty escapes
  in
  let t =
    {
      escapes;
      stales = List.sort_uniq compare (List.rev !stales);
      escaping;
      n_locals = Hashtbl.length owner;
    }
  in
  Observe.Metrics.incr c_analyses;
  if sp != Observe.Span.none then begin
    Observe.Span.add_attr sp "locals" (string_of_int t.n_locals);
    Observe.Span.add_attr sp "escaping" (string_of_int (IntSet.cardinal escaping));
    Observe.Span.add_attr sp "stale_derefs" (string_of_int (List.length t.stales))
  end;
  Observe.Span.exit sp;
  t

(* ----------------------------- queries ----------------------------- *)

let escapes t = t.escapes
let stale_derefs t = t.stales
let may_escape t l = IntSet.mem l t.escaping
let stats t = (IntSet.cardinal t.escaping, t.n_locals)

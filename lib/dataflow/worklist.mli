(** Deduplicating FIFO worklist over dense integer ids. *)

type t

val create : int -> t
(** [create n] sizes the membership bitmap for ids below [n]; larger ids
    grow it transparently. *)

val push : t -> int -> unit
(** Enqueue an id; a no-op if it is already queued. *)

val pop : t -> int option
(** Dequeue in FIFO order; [None] when empty. *)

val is_empty : t -> bool
val length : t -> int

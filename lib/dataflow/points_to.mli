(** Inclusion-based (Andersen) points-to analysis over the IR, solved
    with the {!Worklist} engine: field-sensitive, instance-summarized
    abstract objects, copy edges from moves/casts/calls, and the classic
    complex constraints for loads/stores through pointers and indirect
    calls. Constraint generation walks functions in {!Callgraph} bottom-up
    order.

    The {!confinement} view on top is the attacker model the elision
    client consumes: heap allocations, extern data, linear-overflow
    window victims and everything that escapes to external code —
    closed under stored-pointer contents — are attacker-writable; a slot
    backed only by other memory is {e confined}, so the syntactic
    "a cast/escape appears somewhere" obligations can be discharged. *)

type obj =
  | Ovar of int                (** named variable/global storage (var id) *)
  | Otmp of string * int       (** anonymous alloca site: (function, reg) *)
  | Ofield of string * string  (** struct field cell, instance-summarized *)
  | Oheap of string * int      (** extern allocation: (callee, site id) *)
  | Oextern of string          (** extern data object *)
  | Ostr                       (** the string table (read-only) *)
  | Ofun of string             (** a function's code *)
  | Ounknown                   (** int-to-pointer launder: may be anything *)

val obj_to_string : obj -> string

type t

val analyze : Rsti_ir.Ir.modul -> t
(** Generate and solve the constraint system for a module (call once;
    the result is immutable thereafter and safe to share). *)

val points_to : t -> fn:string -> Rsti_ir.Ir.value -> obj list
(** The objects a value may point to, evaluated in function [fn]. *)

val instances_of : t -> string -> obj list
(** The base objects field accesses of struct [sname] were applied to —
    where instances of the struct may live. *)

type stats = {
  nodes : int;
  objects : int;
  iterations : int;
  heap_objects : int;
  escaped_objects : int;
}

val stats : t -> stats

(** {2 The attacker model} *)

type confinement

val confinement : ?windowed:int list -> t -> confinement
(** Compute the attacker-writable object closure. [windowed] lists the
    var ids of globals behind a linear-overflow window (the static
    checker's layout walk) to include as seeds alongside heap objects,
    extern data, int-laundered pointers and extern-call escapees. *)

val attacker_obj : confinement -> obj -> bool
val attacker_objects : confinement -> obj list

val confined_slot : confinement -> Rsti_ir.Ir.slot -> bool
(** No attacker-writable object can back this slot: the discharge
    predicate behind [Elide]'s [~points_to] precision. [Svar] checks the
    variable's own object; [Sfield] checks every recorded instance of
    the struct plus the summarized cell; [Sanon] checks every object
    reachable from the class' recorded access paths (private stack/
    global storage only). *)

val confinement_stats : confinement -> int * int
(** (attacker objects, total objects) — for reports. *)

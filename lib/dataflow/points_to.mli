(** Inclusion-based (Andersen) points-to analysis over the IR, solved
    with the {!Worklist} engine: field-sensitive, instance-summarized
    abstract objects, copy edges from moves/casts/calls, and the classic
    complex constraints for loads/stores through pointers and indirect
    calls. Constraint generation walks functions in {!Callgraph} bottom-up
    order.

    The {!confinement} view on top is the attacker model the elision
    client consumes: heap allocations, extern data, linear-overflow
    window victims and everything that escapes to external code —
    closed under stored-pointer contents — are attacker-writable; a slot
    backed only by other memory is {e confined}, so the syntactic
    "a cast/escape appears somewhere" obligations can be discharged. *)

type mode =
  | Insensitive        (** the plain whole-program Andersen solve *)
  | Cloning of int     (** k-limited call-site cloning over {!Context}
                           call strings; [Cloning 0] produces the same
                           solution as [Insensitive] *)

val mode_to_string : mode -> string
(** ["insensitive"] or ["cloning:K"] — stable; used as cache keys. *)

val mode_of_string : string -> mode option
(** Inverse of {!mode_to_string}; bare ["cloning"] means [Cloning 2].
    Negative k is rejected. *)

type obj =
  | Ovar of int                (** named variable/global storage (var id) *)
  | Otmp of string * int       (** anonymous alloca site: (function, reg) *)
  | Ofield of string * string  (** struct field cell, instance-summarized *)
  | Oheap of string * int      (** extern allocation: (callee, site id) *)
  | Oextern of string          (** extern data object *)
  | Ostr                       (** the string table (read-only) *)
  | Ofun of string             (** a function's code *)
  | Ounknown                   (** int-to-pointer launder: may be anything *)
  | Octx of obj * int
      (** a frame cell ([Ovar]/[Otmp]) of one non-empty calling context,
          created internally under [Cloning k] so differently-contexted
          calls keep separate parameter/local storage. Queries project
          it down to its base, so client code never receives one. *)

val obj_to_string : obj -> string

val base_obj : obj -> obj
(** Strip any [Octx] wrapper: the context-free object every query and
    the insensitive mode speak in. Identity on other constructors. *)

type t

val analyze : ?mode:mode -> Rsti_ir.Ir.modul -> t
(** Generate and solve the constraint system for a module (call once;
    the result is immutable thereafter and safe to share). Default mode
    is [Insensitive]. Under [Cloning k], register and return nodes are
    duplicated per {!Context} call string and frame objects (parameter
    spills and locals) get per-context [Octx] cells, while globals,
    fields and heap objects stay context-free. Every query below unions
    over the clones and projects [Octx] back to base objects, so the
    cloned solution is a pointwise refinement of the insensitive one
    after projection. *)

val mode : t -> mode

val points_to : t -> fn:string -> Rsti_ir.Ir.value -> obj list
(** The objects a value may point to, evaluated in function [fn]
    (unioned over [fn]'s clones in cloning mode). *)

val returns : t -> fn:string -> obj list
(** The objects function [fn]'s return value may point to. *)

val instances_of : t -> string -> obj list
(** The base objects field accesses of struct [sname] were applied to —
    where instances of the struct may live. *)

val objects : t -> obj list
(** Every distinct base object the solve interned, sorted. *)

val cell_contents : t -> obj -> obj list
(** The objects whose addresses may be stored inside [o] (its content
    cell); empty for objects without a cell. *)

val escaped_objects : t -> obj list
(** Objects whose addresses were handed to external code. *)

type stats = {
  nodes : int;
  objects : int;
  iterations : int;
  heap_objects : int;
  escaped_objects : int;
  clones : int;          (** (function, context) pairs generated *)
}

val stats : t -> stats

(** {2 The attacker model} *)

type confinement

val confinement : ?windowed:int list -> t -> confinement
(** Compute the attacker-writable object closure. [windowed] lists the
    var ids of globals behind a linear-overflow window (the static
    checker's layout walk) to include as seeds alongside heap objects,
    extern data, int-laundered pointers and extern-call escapees. *)

val attacker_obj : confinement -> obj -> bool
val attacker_objects : confinement -> obj list

val confined_slot : confinement -> Rsti_ir.Ir.slot -> bool
(** No attacker-writable object can back this slot: the discharge
    predicate behind [Elide]'s [~points_to] precision. [Svar] checks the
    variable's own object; [Sfield] checks every recorded instance of
    the struct plus the summarized cell; [Sanon] checks every object
    reachable from the class' recorded access paths (private stack/
    global storage only). *)

val confinement_stats : confinement -> int * int
(** (attacker objects, total objects) — for reports. *)

(* Static substitution-attack-surface analysis: partition the
   instrumented-slot population into modifier-collision equivalence
   classes and count the replay gadget edges each mechanism leaves open.
   See equiv.mli for the two attacker tiers. *)

module Ctype = Rsti_minic.Ctype
module Ir = Rsti_ir.Ir
module Analysis = Rsti_sti.Analysis
module RT = Rsti_sti.Rsti_type

type member = {
  mb_info : Analysis.slot_info;
  mb_signs : int;
  mb_auths : int;
  mb_auth_funcs : string list;
  mb_writable : bool;
  mb_escapes : bool;
  mb_reach : string list option;
}

type cls = {
  c_modifier : int64;
  c_pa_key : Rsti_pa.Key.which;
  c_label : string;
  c_members : member list;
}

type metrics = {
  m_candidates : int;
  m_classes : int;
  m_singletons : int;
  m_largest : int;
  m_hist : (int * int) list;
  m_replay_edges : int;
  m_feasible_edges : int;
}

type result = {
  r_mech : RT.mechanism;
  r_classes : cls list;
  r_metrics : metrics;
}

let is_stack (si : Analysis.slot_info) =
  match si.kind with
  | Analysis.Klocal | Analysis.Kparam -> true
  | Analysis.Kglobal | Analysis.Kfield _ | Analysis.Kanon -> false

(* ----------------------------------------------------------------- *)
(* Donor liveness: which functions' activations can overlap a stack    *)
(* slot's lifetime — the call-graph closure from its declaring         *)
(* function. Indirect calls conservatively reach every function whose  *)
(* address is taken anywhere in the module.                            *)
(* ----------------------------------------------------------------- *)

let operand_values (i : Ir.instr_desc) : Ir.value list =
  match i with
  | Ir.Alloca _ -> []
  | Ir.Load { addr; _ } -> [ addr ]
  | Ir.Store { src; addr; _ } -> [ src; addr ]
  | Ir.Gep { base; _ } -> [ base ]
  | Ir.Gepidx { base; idx; _ } -> [ base; idx ]
  | Ir.Bitcast { src; _ }
  | Ir.Neg { src; _ }
  | Ir.Lognot { src; _ }
  | Ir.Bitnot { src; _ }
  | Ir.Cast_num { src; _ } ->
      [ src ]
  | Ir.Binop { a; b; _ } -> [ a; b ]
  | Ir.Call { callee; args; _ } -> (
      match callee with Ir.Indirect v -> v :: args | Ir.Direct _ -> args)
  | Ir.Pac p -> [ p.p_src; p.p_slot_addr ]
  | Ir.Pp (Ir.Pp_add { pp_addr; _ }) -> [ pp_addr ]
  | Ir.Pp (Ir.Pp_sign { src; slot_addr; _ }) -> [ src; slot_addr ]
  | Ir.Pp (Ir.Pp_auth { src; slot_addr; _ }) -> [ src; slot_addr ]
  | Ir.Pp (Ir.Pp_add_tbi { src; _ }) -> [ src ]

(* df -> set of functions reachable from an activation of df
   (reflexive-transitive over the call graph). *)
let build_reach (m : Ir.modul) : (string, (string, unit) Hashtbl.t) Hashtbl.t =
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.name ()) m.Ir.m_funcs;
  let addr_taken = Hashtbl.create 8 in
  let direct = Hashtbl.create 16 in
  let indirect = Hashtbl.create 8 in
  List.iter
    (fun (fn : Ir.func) ->
      Ir.iter_instrs
        (fun ins ->
          (match ins.Ir.i with
          | Ir.Call { callee = Ir.Direct f; _ } when Hashtbl.mem defined f ->
              Hashtbl.add direct fn.Ir.name f
          | Ir.Call { callee = Ir.Indirect _; _ } ->
              Hashtbl.replace indirect fn.Ir.name ()
          | _ -> ());
          List.iter
            (function
              | Ir.Funcaddr f when Hashtbl.mem defined f ->
                  Hashtbl.replace addr_taken f ()
              | _ -> ())
            (operand_values ins.Ir.i))
        fn)
    m.Ir.m_funcs;
  let addr_taken_list = Hashtbl.fold (fun f () acc -> f :: acc) addr_taken [] in
  let reach = Hashtbl.create 16 in
  List.iter
    (fun (fn : Ir.func) ->
      let seen = Hashtbl.create 16 in
      let rec visit f =
        if not (Hashtbl.mem seen f) then begin
          Hashtbl.replace seen f ();
          List.iter visit (Hashtbl.find_all direct f);
          if Hashtbl.mem indirect f then List.iter visit addr_taken_list
        end
      in
      visit fn.Ir.name;
      Hashtbl.replace reach fn.Ir.name seen)
    m.Ir.m_funcs;
  reach

(* ----------------------------------------------------------------- *)
(* Overflow-window seeding for the confined attacker: the same walk    *)
(* the eliding instrumenter performs (a writable global array opens a  *)
(* forward window over the rest of the globals segment).               *)
(* ----------------------------------------------------------------- *)

let rec has_writable_array lookup ty =
  match ty with
  | Ctype.Array (elem, _) -> not (Ctype.is_const elem)
  | Ctype.Struct s ->
      List.exists (fun (_, fty) -> has_writable_array lookup fty) (lookup s)
  | Ctype.Const _ -> false
  | Ctype.Void | Ctype.Char | Ctype.Int | Ctype.Long | Ctype.Double
  | Ctype.Ptr _ | Ctype.Func _ ->
      false

let windowed_globals (m : Ir.modul) =
  let window_open = ref false in
  List.fold_left
    (fun acc (g : Ir.global_def) ->
      let v = g.Ir.gvar in
      let acc = if !window_open then v.Rsti_minic.Tast.v_id :: acc else acc in
      if has_writable_array (Ir.struct_lookup m) v.Rsti_minic.Tast.v_ty then
        window_open := true;
      acc)
    [] m.Ir.m_globals

(* ----------------------------------------------------------------- *)
(* Partition                                                           *)
(* ----------------------------------------------------------------- *)

(* Class identity: PA key + modifier constant, plus — under STL, whose
   runtime modifier XORs in the storage address — the slot key itself,
   making every class a distinct storage location. *)
let class_key anal mech (si : Analysis.slot_info) =
  let modifier = Analysis.modifier_of anal mech si.Analysis.slot in
  let pa_key = Analysis.key_for si.Analysis.sty in
  let loc = if mech = RT.Stl then Some si.Analysis.key else None in
  (modifier, pa_key, loc)

type acc = {
  a_si : Analysis.slot_info;
  mutable a_signs : int;
  mutable a_auths : int;
  a_funcs : (string, unit) Hashtbl.t;
}

let analyze ?points_to ?scope anal (m : Ir.modul) mech : result =
  let empty =
    {
      r_mech = mech;
      r_classes = [];
      r_metrics =
        {
          m_candidates = 0;
          m_classes = 0;
          m_singletons = 0;
          m_largest = 0;
          m_hist = [];
          m_replay_edges = 0;
          m_feasible_edges = 0;
        };
    }
  in
  if mech = RT.Nop then empty
  else begin
    (* 1. Collect the instrumented population with per-slot sign/auth
       site counts — exactly what the rewriter would instrument. *)
    let slots : (string, acc) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    let touch slot fname ~sign =
      let si = Analysis.slot_info anal slot in
      let a =
        match Hashtbl.find_opt slots si.Analysis.key with
        | Some a -> a
        | None ->
            let a =
              { a_si = si; a_signs = 0; a_auths = 0; a_funcs = Hashtbl.create 4 }
            in
            Hashtbl.replace slots si.Analysis.key a;
            order := si.Analysis.key :: !order;
            a
      in
      if sign then a.a_signs <- a.a_signs + 1
      else begin
        a.a_auths <- a.a_auths + 1;
        Hashtbl.replace a.a_funcs fname ()
      end
    in
    List.iter
      (fun (fn : Ir.func) ->
        Ir.iter_instrs
          (fun ins ->
            match ins.Ir.i with
            | Ir.Load { ty; slot; _ }
              when Analysis.instrument_candidate anal mech ty slot ->
                touch slot fn.Ir.name ~sign:false
            | Ir.Store { ty; slot; _ }
              when Analysis.instrument_candidate anal mech ty slot ->
                touch slot fn.Ir.name ~sign:true
            | _ -> ())
          fn)
      m.Ir.m_funcs;
    (* 2. Attacker-model refinements. *)
    let conf =
      match points_to with
      | None -> None
      | Some pt -> Some (Points_to.confinement ~windowed:(windowed_globals m) pt)
    in
    let reach = build_reach m in
    let member_of (a : acc) =
      let si = a.a_si in
      let auth_funcs =
        List.sort compare (Hashtbl.fold (fun f () l -> f :: l) a.a_funcs [])
      in
      let writable =
        match conf with
        | None -> true
        | Some c -> not (Points_to.confined_slot c si.Analysis.slot)
      in
      let escapes =
        if not (is_stack si) then true
        else
          match (scope, si.Analysis.slot) with
          | Some sc, Ir.Svar id -> Scope_escape.may_escape sc id
          | _ -> true
      in
      let mb_reach =
        if not (is_stack si) then None
        else
          match si.Analysis.decl_func with
          | None -> None
          | Some df -> (
              match Hashtbl.find_opt reach df with
              | None -> Some [ df ]
              | Some set ->
                  Some
                    (List.sort compare
                       (Hashtbl.fold (fun f () l -> f :: l) set [])))
      in
      {
        mb_info = si;
        mb_signs = a.a_signs;
        mb_auths = a.a_auths;
        mb_auth_funcs = auth_funcs;
        mb_writable = writable;
        mb_escapes = escapes;
        mb_reach;
      }
    in
    (* 3. Group into classes. *)
    let classes : (int64 * Rsti_pa.Key.which * string option, member list ref)
        Hashtbl.t =
      Hashtbl.create 64
    in
    let n_candidates = ref 0 in
    List.iter
      (fun key ->
        let a = Hashtbl.find slots key in
        incr n_candidates;
        let ck = class_key anal mech a.a_si in
        match Hashtbl.find_opt classes ck with
        | Some l -> l := member_of a :: !l
        | None -> Hashtbl.replace classes ck (ref [ member_of a ]))
      (List.rev !order);
    let cls_list =
      Hashtbl.fold
        (fun (modifier, pa_key, _) members acc ->
          let members =
            List.sort
              (fun a b -> compare a.mb_info.Analysis.key b.mb_info.Analysis.key)
              !members
          in
          let label =
            RT.to_string (Analysis.rsti_of anal mech (List.hd members).mb_info.Analysis.slot)
          in
          { c_modifier = modifier; c_pa_key = pa_key; c_label = label;
            c_members = members }
          :: acc)
        classes []
    in
    let first_key c = (List.hd c.c_members).mb_info.Analysis.key in
    let cls_list =
      List.sort
        (fun a b ->
          let c = compare a.c_label b.c_label in
          if c <> 0 then c
          else
            let c = compare a.c_modifier b.c_modifier in
            if c <> 0 then c else compare (first_key a) (first_key b))
        cls_list
    in
    (* 4. Metrics. *)
    let sizes = List.map (fun c -> List.length c.c_members) cls_list in
    let hist =
      let h = Hashtbl.create 8 in
      List.iter
        (fun s ->
          Hashtbl.replace h s (1 + Option.value ~default:0 (Hashtbl.find_opt h s)))
        sizes;
      List.sort compare (Hashtbl.fold (fun s n acc -> (s, n) :: acc) h [])
    in
    let live_victim rset v =
      List.exists (fun f -> Hashtbl.mem rset f) v.mb_auth_funcs
    in
    let count_edges ~victim_ok =
      List.fold_left
        (fun acc c ->
          let victims =
            List.filter (fun v -> v.mb_auths > 0 && victim_ok v) c.c_members
          in
          let n_v = List.length victims in
          if n_v = 0 then acc
          else
            let df_cache = Hashtbl.create 4 in
            List.fold_left
              (fun acc d ->
                if d.mb_signs = 0 then acc
                else
                  match d.mb_reach with
                  | None ->
                      let self = d.mb_auths > 0 && victim_ok d in
                      acc + n_v - (if self then 1 else 0)
                  | Some _ ->
                      let df =
                        Option.value ~default:"" d.mb_info.Analysis.decl_func
                      in
                      let rset =
                        match Hashtbl.find_opt reach df with
                        | Some s -> s
                        | None ->
                            let s = Hashtbl.create 1 in
                            Hashtbl.replace s df ();
                            s
                      in
                      let n_live =
                        match Hashtbl.find_opt df_cache df with
                        | Some n -> n
                        | None ->
                            let n =
                              List.length (List.filter (live_victim rset) victims)
                            in
                            Hashtbl.replace df_cache df n;
                            n
                      in
                      let self =
                        d.mb_auths > 0 && victim_ok d && live_victim rset d
                      in
                      acc + n_live - (if self then 1 else 0))
              acc c.c_members)
        0 cls_list
    in
    let replay_edges = count_edges ~victim_ok:(fun _ -> true) in
    let feasible_edges =
      count_edges ~victim_ok:(fun v ->
          v.mb_writable && ((not (is_stack v.mb_info)) || v.mb_escapes))
    in
    {
      r_mech = mech;
      r_classes = cls_list;
      r_metrics =
        {
          m_candidates = !n_candidates;
          m_classes = List.length cls_list;
          m_singletons = List.length (List.filter (fun s -> s = 1) sizes);
          m_largest = List.fold_left max 0 sizes;
          m_hist = hist;
          m_replay_edges = replay_edges;
          m_feasible_edges = feasible_edges;
        };
    }
  end

(* ----------------------------------------------------------------- *)
(* Queries                                                             *)
(* ----------------------------------------------------------------- *)

let find_member result slot =
  let key = Analysis.slot_key slot in
  let rec scan = function
    | [] -> None
    | c :: rest -> (
        match
          List.find_opt (fun m -> m.mb_info.Analysis.key = key) c.c_members
        with
        | Some m -> Some (c, m)
        | None -> scan rest)
  in
  scan result.r_classes

let edge_live donor victim =
  match donor.mb_reach with
  | None -> true
  | Some rs -> List.exists (fun f -> List.mem f rs) victim.mb_auth_funcs

let replayable result ~donor ~victim =
  match (find_member result donor, find_member result victim) with
  | Some (cd, d), Some (cv, v) ->
      cd == cv
      && d.mb_info.Analysis.key <> v.mb_info.Analysis.key
      && d.mb_signs > 0 && v.mb_auths > 0 && edge_live d v
  | _ -> false

let class_edges c =
  List.concat_map
    (fun d ->
      if d.mb_signs = 0 then []
      else
        List.filter_map
          (fun v ->
            if
              v.mb_auths > 0
              && d.mb_info.Analysis.key <> v.mb_info.Analysis.key
              && edge_live d v
            then Some (d, v)
            else None)
          c.c_members)
    c.c_members

(* The PAC-typestate translation validator.

   [Instrument] promises a discipline: pointers are signed at rest and
   raw in flight. Every store to an instrumented slot goes through a
   Ksign whose modifier is the slot's RSTI-type hash; every load comes
   back through a Kauth under the same modifier; legitimate casts are
   authenticate/re-sign pairs (STWC/STL); pointers handed to external
   code are stripped; STL re-signs at call and return boundaries. This
   module re-derives those obligations from the *instrumented* IR alone
   and checks them against the [Analysis] the instrumentation claims to
   have followed — a translation validator in the classic sense: it does
   not trust the rewriter, it checks its output.

   The checker is a {!Solver.Forward} client. The lattice maps each
   virtual register to a provenance typestate (fresh load result, sign
   output, cast result, strip/re-sign output, pp-library output); the
   flow-sensitive states feed two kinds of checks:

   - structural, at each instruction: a sign's output may only flow into
     the store it guards, an auth may only consume a fresh load, a
     re-sign must pair with a pointer cast (STWC), extern calls take
     stripped arguments, STL boundaries re-sign;
   - summary, per slot across the module: instrumentation is
     all-or-nothing per slot, so a slot that is authenticated anywhere
     must have every pointer store signed and every pointer load
     authenticated, under the one modifier [Analysis] derives for it.
     Whole-slot elision (sign and auth dropped together) passes; a
     single dropped sign while the auths remain does not.

   Accesses through the pointer-to-pointer runtime are exempt exactly
   where [Instrument] exempts them: loads/stores whose address register
   is a pp-library output, and pp-protected parameter slots (loads
   authenticated by [Pp_auth], spill store raw). *)

module Ir = Rsti_ir.Ir
module Ctype = Rsti_minic.Ctype
module Analysis = Rsti_sti.Analysis
module Rsti_type = Rsti_sti.Rsti_type

type issue = { i_fn : string; i_what : string }

type report = {
  mech : Rsti_type.mechanism;
  issues : issue list;
  funcs : int;
  checked_slots : int; (* pointer-bearing slots seen *)
  signed_slots : int;  (* slots carrying sign/auth instrumentation *)
}

let ok r = r.issues = []

(* ------------------------------------------------------------------ *)
(* The register typestate lattice                                      *)
(* ------------------------------------------------------------------ *)

type vstate =
  | Vother                                        (* ordinary raw value *)
  | Vloaded of Ir.slot          (* fresh pointer load: possibly signed
                                   in-memory bits, awaiting auth *)
  | Vsigned of Ir.modifier * Rsti_pa.Key.which    (* Ksign output *)
  | Vcast                       (* differing-pointer bitcast result *)
  | Vresign                                       (* Kresign output *)
  | Vstrip                                        (* Kstrip output *)
  | Vpp                                 (* pp-runtime library output *)
  | Vconflict

(* The cast shapes [Instrument] re-signs under STWC/STL. *)
let cast_pair_guard from_ty to_ty =
  Ctype.is_pointer from_ty && Ctype.is_pointer to_ty
  && not
       (Ctype.equal
          (Ctype.strip_all_quals from_ty)
          (Ctype.strip_all_quals to_ty))

module IntMap = Map.Make (Int)

let vstate_of (st : vstate IntMap.t) (v : Ir.value) =
  match v with
  | Ir.Reg r -> ( match IntMap.find_opt r st with Some s -> s | None -> Vother)
  | _ -> Vother

module T = struct
  module L = struct
    type t = vstate IntMap.t

    let bottom = IntMap.empty
    let equal = IntMap.equal ( = )

    let join a b =
      IntMap.union (fun _ x y -> Some (if x = y then x else Vconflict)) a b

    let widen = join (* finite height: |regs| x |states| *)
  end

  type ctx = unit

  let instr () (ins : Ir.instr) st =
    match ins.Ir.i with
    | Ir.Load { dst; addr; ty; slot } ->
        let s =
          if vstate_of st addr = Vpp then Vother (* pp inner access: raw *)
          else if Ctype.is_pointer ty then Vloaded slot
          else Vother
        in
        IntMap.add dst s st
    | Ir.Pac p ->
        let s =
          match p.Ir.p_kind with
          | Ir.Ksign -> Vsigned (p.Ir.p_mod, p.Ir.p_key)
          | Ir.Kauth -> Vother
          | Ir.Kresign -> Vresign
          | Ir.Kstrip -> Vstrip
        in
        IntMap.add p.Ir.p_dst s st
    | Ir.Pp (Ir.Pp_sign { dst; _ } | Ir.Pp_auth { dst; _ } | Ir.Pp_add_tbi { dst; _ }) ->
        IntMap.add dst Vpp st
    | Ir.Pp (Ir.Pp_add _) -> st
    | Ir.Bitcast { dst; from_ty; to_ty; _ } ->
        IntMap.add dst
          (if cast_pair_guard from_ty to_ty then Vcast else Vother)
          st
    | Ir.Alloca { dst; _ }
    | Ir.Gep { dst; _ }
    | Ir.Gepidx { dst; _ }
    | Ir.Binop { dst; _ }
    | Ir.Neg { dst; _ }
    | Ir.Lognot { dst; _ }
    | Ir.Bitnot { dst; _ }
    | Ir.Cast_num { dst; _ } -> IntMap.add dst Vother st
    | Ir.Call { dst = Some d; _ } -> IntMap.add d Vother st
    | Ir.Call { dst = None; _ } | Ir.Store _ -> st

  let term () (_ : Ir.terminator) st = st
end

module F = Solver.Forward (T)

(* Operand positions of an instruction, with flags saying whether that
   position may legitimately consume a Vsigned / a Vloaded value. *)
let positions (i : Ir.instr_desc) : (Ir.value * bool * bool) list =
  let raw v = (v, false, false) in
  match i with
  | Ir.Alloca _ -> []
  | Ir.Load { addr; _ } -> [ raw addr ]
  | Ir.Store { src; addr; _ } -> [ (src, true, false); raw addr ]
  | Ir.Gep { base; _ } -> [ raw base ]
  | Ir.Gepidx { base; idx; _ } -> [ raw base; raw idx ]
  | Ir.Bitcast { src; _ }
  | Ir.Cast_num { src; _ }
  | Ir.Neg { src; _ }
  | Ir.Lognot { src; _ }
  | Ir.Bitnot { src; _ } -> [ raw src ]
  | Ir.Binop { a; b; _ } -> [ raw a; raw b ]
  | Ir.Call { callee; args; _ } ->
      (match callee with Ir.Indirect v -> [ raw v ] | Ir.Direct _ -> [])
      @ List.map raw args
  | Ir.Pac p ->
      [ (p.Ir.p_src, false, p.Ir.p_kind = Ir.Kauth); raw p.Ir.p_slot_addr ]
  | Ir.Pp (Ir.Pp_add { pp_addr; _ }) -> [ raw pp_addr ]
  | Ir.Pp (Ir.Pp_sign { src; slot_addr; _ }) -> [ raw src; raw slot_addr ]
  | Ir.Pp (Ir.Pp_auth { src; slot_addr; _ }) ->
      [ (src, false, true); raw slot_addr ]
  | Ir.Pp (Ir.Pp_add_tbi { src; _ }) -> [ raw src ]

(* ------------------------------------------------------------------ *)
(* Per-slot summaries                                                  *)
(* ------------------------------------------------------------------ *)

type slot_sum = {
  slot : Ir.slot;
  mutable signs : int;
  mutable auths : int;
  mutable raw_stores : int;  (* pointer stores without a sign *)
  mutable raw_loads : int;   (* pointer loads never authenticated *)
  mutable extra_uses : int;  (* loaded value used before/without auth *)
  mutable pp_prot : bool;    (* pp-protected parameter slot *)
  mutable seen_in : string list;
}

(* Verdict tallies for the metrics registry; always-on like the cache's. *)
let c_checks = Rsti_observe.Observe.Metrics.counter "validate.checks"
let c_ok = Rsti_observe.Observe.Metrics.counter "validate.ok"
let c_rejected = Rsti_observe.Observe.Metrics.counter "validate.rejected"
let c_issues = Rsti_observe.Observe.Metrics.counter "validate.issues"

let check anal mech (m : Ir.modul) : report =
  let issues = ref [] in
  let issue fn fmt =
    Printf.ksprintf
      (fun s -> issues := { i_fn = fn; i_what = s } :: !issues)
      fmt
  in
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.name ()) m.Ir.m_funcs;
  let externs = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem defined name) then Hashtbl.replace externs name ())
    m.Ir.m_externs;
  let sums : (string, slot_sum) Hashtbl.t = Hashtbl.create 64 in
  let sum_of fname slot =
    let k = Ir.slot_to_string slot in
    let s =
      match Hashtbl.find_opt sums k with
      | Some s -> s
      | None ->
          let s =
            {
              slot;
              signs = 0;
              auths = 0;
              raw_stores = 0;
              raw_loads = 0;
              extra_uses = 0;
              pp_prot = false;
              seen_in = [];
            }
          in
          Hashtbl.replace sums k s;
          s
    in
    if not (List.mem fname s.seen_in) then s.seen_in <- fname :: s.seen_in;
    s
  in
  let expected_mod slot =
    let h = Analysis.modifier_of anal mech slot in
    match mech with Rsti_type.Stl -> Ir.Mloc h | _ -> Ir.Mconst h
  in
  let track_casts = mech = Rsti_type.Stwc || mech = Rsti_type.Stl in
  let check_function (fn : Ir.func) =
    let fname = fn.Ir.name in
    let cfg = Cfg.of_func fn in
    let res = F.solve ~ctx:() cfg in
    (* function-local side tables over the SSA registers *)
    let loads = Hashtbl.create 32 in (* reg -> (slot, ty) of a ptr load *)
    let authed = Hashtbl.create 32 in
    let casts = Hashtbl.create 8 in (* reg -> (from_ty, to_ty), unpaired *)
    let signs_pending = Hashtbl.create 8 in
    let visit (ins : Ir.instr) st =
      let sv v = vstate_of st v in
      List.iter
        (fun (v, ok_signed, ok_loaded) ->
          match sv v with
          | Vsigned _ when not ok_signed ->
              issue fname "signed value %s escapes into flight"
                (Ir.value_to_string v)
          | Vloaded slot when not ok_loaded ->
              (sum_of fname slot).extra_uses <-
                (sum_of fname slot).extra_uses + 1
          | _ -> ())
        (positions ins.Ir.i);
      match ins.Ir.i with
      | Ir.Load { dst; addr; ty; slot } ->
          if sv addr = Vpp then () (* pp inner access: exempt *)
          else if Ctype.is_pointer ty then Hashtbl.replace loads dst (slot, ty)
      | Ir.Store { src; addr; ty; slot } ->
          if sv addr = Vpp then ()
          else if Ctype.is_pointer ty then begin
            let s = sum_of fname slot in
            match sv src with
            | Vsigned (md, key) ->
                s.signs <- s.signs + 1;
                (match src with
                | Ir.Reg r -> Hashtbl.remove signs_pending r
                | _ -> ());
                if md <> expected_mod slot then
                  issue fname
                    "store to %s signed with modifier %s, expected %s"
                    (Ir.slot_to_string slot)
                    (Ir.modifier_to_string md)
                    (Ir.modifier_to_string (expected_mod slot));
                if key <> Analysis.key_for ty then
                  issue fname "store to %s signed under the wrong PA key"
                    (Ir.slot_to_string slot)
            | _ -> s.raw_stores <- s.raw_stores + 1
          end
      | Ir.Pac p -> (
          if mech = Rsti_type.Nop then
            issue fname "PAC op in an uninstrumented (nop) module";
          match p.Ir.p_kind with
          | Ir.Ksign -> Hashtbl.replace signs_pending p.Ir.p_dst ()
          | Ir.Kauth -> (
              match p.Ir.p_src with
              | Ir.Reg r
                when (match sv (Ir.Reg r) with
                     | Vloaded _ -> true
                     | _ -> false)
                     && Hashtbl.mem loads r ->
                  let slot, ty = Hashtbl.find loads r in
                  Hashtbl.replace authed r ();
                  let s = sum_of fname slot in
                  s.auths <- s.auths + 1;
                  if p.Ir.p_mod <> expected_mod slot then
                    issue fname
                      "load of %s authenticated with modifier %s, expected %s"
                      (Ir.slot_to_string slot)
                      (Ir.modifier_to_string p.Ir.p_mod)
                      (Ir.modifier_to_string (expected_mod slot));
                  if p.Ir.p_key <> Analysis.key_for ty then
                    issue fname "load of %s authenticated under the wrong PA key"
                      (Ir.slot_to_string slot);
                  (match (p.Ir.p_mod, p.Ir.p_slot_addr) with
                  | Ir.Mloc _, Ir.Null ->
                      issue fname
                        "location-bound auth of %s carries no slot address"
                        (Ir.slot_to_string slot)
                  | _ -> ())
              | src ->
                  issue fname "auth source %s is not a fresh load result"
                    (Ir.value_to_string src))
          | Ir.Kresign -> (
              if not track_casts then
                issue fname "re-sign under %s (only STWC/STL re-sign)"
                  (Rsti_type.mechanism_to_string mech);
              match p.Ir.p_src with
              | Ir.Reg r when Hashtbl.mem casts r ->
                  let from_ty, to_ty = Hashtbl.find casts r in
                  Hashtbl.remove casts r;
                  let exp_to =
                    Ir.Mconst (Analysis.modifier_of anal mech (Ir.Sanon to_ty))
                  in
                  let exp_from =
                    Ir.Mconst
                      (Analysis.modifier_of anal mech (Ir.Sanon from_ty))
                  in
                  if p.Ir.p_mod <> exp_to || p.Ir.p_mod_from <> exp_from then
                    issue fname
                      "cast re-sign modifiers do not match the cast %s -> %s"
                      (Ctype.to_string from_ty) (Ctype.to_string to_ty);
                  if p.Ir.p_key <> Analysis.key_for to_ty then
                    issue fname "cast re-sign under the wrong PA key"
              | _ ->
                  (* STL re-signs raw values at call/return boundaries;
                     under STWC every re-sign must pair with a cast. *)
                  if mech = Rsti_type.Stwc then
                    issue fname "re-sign not paired with a pointer cast")
          | Ir.Kstrip -> ())
      | Ir.Bitcast { dst; from_ty; to_ty; _ } ->
          if track_casts && cast_pair_guard from_ty to_ty then
            Hashtbl.replace casts dst (from_ty, to_ty)
      | Ir.Pp pp -> (
          if mech = Rsti_type.Nop then
            issue fname "pp op in an uninstrumented (nop) module";
          match pp with
          | Ir.Pp_auth { src = Ir.Reg r; _ } when Hashtbl.mem loads r ->
              Hashtbl.replace authed r ();
              let slot, _ = Hashtbl.find loads r in
              (sum_of fname slot).pp_prot <- true
          | Ir.Pp_auth { src; _ } ->
              issue fname "pp_auth source %s is not a fresh load result"
                (Ir.value_to_string src)
          | Ir.Pp_sign { src = Ir.Reg r; _ } | Ir.Pp_add { pp_addr = Ir.Reg r; _ }
            ->
              Hashtbl.remove casts r (* pp-wrapped cast: re-sign exempt *)
          | _ -> ())
      | Ir.Call { callee; args; arg_tys; _ } ->
          if mech <> Rsti_type.Nop then
            List.iteri
              (fun j arg ->
                match List.nth_opt arg_tys j with
                | Some ty when Ctype.is_pointer ty -> (
                    let stv = sv arg in
                    match callee with
                    | Ir.Direct f when Hashtbl.mem externs f ->
                        if stv <> Vstrip && stv <> Vpp then
                          issue fname
                            "pointer argument %d to extern %s is not stripped"
                            j f
                    | Ir.Direct _ | Ir.Indirect _ ->
                        if
                          mech = Rsti_type.Stl && stv <> Vresign && stv <> Vpp
                        then
                          issue fname
                            "STL pointer argument %d of a call is not re-signed"
                            j)
                | _ -> ())
              args
      | _ -> ()
    in
    for i = 0 to Cfg.n_blocks cfg - 1 do
      F.iter_block ~ctx:() res i visit;
      (* State at the terminator: re-fold from the block entry rather
         than using [exit_state] — unreachable blocks keep bottom in the
         solver but their instruction pairs still resolve locally. *)
      let st =
        List.fold_left
          (fun st ins -> T.instr () ins st)
          (F.entry_state res i) fn.Ir.blocks.(i).Ir.instrs
      in
      match fn.Ir.blocks.(i).Ir.term with
      | Ir.Ret (Some v) -> (
          (match vstate_of st v with
          | Vsigned _ -> issue fname "signed value returned raw"
          | Vloaded slot ->
              (sum_of fname slot).extra_uses <-
                (sum_of fname slot).extra_uses + 1
          | _ -> ());
          if
            mech = Rsti_type.Stl
            && Ctype.is_pointer fn.Ir.ret
            && vstate_of st v <> Vresign
          then issue fname "STL pointer return is not re-signed")
      | Ir.Condbr (c, _, _) -> (
          match vstate_of st c with
          | Vsigned _ -> issue fname "signed value used in a branch"
          | _ -> ())
      | _ -> ()
    done;
    Hashtbl.iter
      (fun r ((slot, _ty) : Ir.slot * Ctype.t) ->
        if not (Hashtbl.mem authed r) then
          let s = sum_of fname slot in
          s.raw_loads <- s.raw_loads + 1)
      loads;
    Hashtbl.iter
      (fun r (_ : Ctype.t * Ctype.t) ->
        issue fname "pointer cast %%r%d is never re-signed" r)
      casts;
    Hashtbl.iter
      (fun r () -> issue fname "sign result %%r%d is never stored" r)
      signs_pending
  in
  List.iter check_function m.Ir.m_funcs;
  (* Module-level slot consistency: all-or-nothing per slot. *)
  let signed_slots = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      let where = match s.seen_in with f :: _ -> f | [] -> "<module>" in
      if s.pp_prot then begin
        if s.signs > 0 || s.auths > 0 then
          issue where "pp-protected slot %s is also PAC-instrumented"
            (Ir.slot_to_string s.slot)
      end
      else if s.signs > 0 || s.auths > 0 then begin
        incr signed_slots;
        if s.raw_stores > 0 then
          issue where "slot %s: %d unsigned store(s) while the slot is signed"
            (Ir.slot_to_string s.slot) s.raw_stores;
        if s.raw_loads > 0 then
          issue where
            "slot %s: %d unauthenticated load(s) while the slot is signed"
            (Ir.slot_to_string s.slot) s.raw_loads;
        if s.extra_uses > 0 then
          issue where
            "slot %s: loaded value used %d time(s) without authentication"
            (Ir.slot_to_string s.slot) s.extra_uses
      end)
    sums;
  let r =
    {
      mech;
      issues = List.rev !issues;
      funcs = List.length m.Ir.m_funcs;
      checked_slots = Hashtbl.length sums;
      signed_slots = !signed_slots;
    }
  in
  let module M = Rsti_observe.Observe.Metrics in
  M.incr c_checks;
  M.incr (if r.issues = [] then c_ok else c_rejected);
  M.add c_issues (List.length r.issues);
  r

let report_to_string r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "validate[%s]: %d function(s), %d slot(s), %d signed: %s\n"
    (Rsti_type.mechanism_to_string r.mech)
    r.funcs r.checked_slots r.signed_slots
    (if ok r then "OK" else Printf.sprintf "%d issue(s)" (List.length r.issues));
  List.iter
    (fun i -> Printf.bprintf buf "  [%s] %s\n" i.i_fn i.i_what)
    r.issues;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fault injection for the validator's own tests                       *)
(* ------------------------------------------------------------------ *)

(* Drop one Ksign whose guarded slot is authenticated somewhere in the
   module, rewriting its store to the raw source — the "compiler forgot
   to sign this store" bug class. Returns None if the module carries no
   such sign (e.g. it was never instrumented). *)
let break_one_sign (m : Ir.modul) : Ir.modul option =
  let authed_slots = Hashtbl.create 32 in
  List.iter
    (fun (fn : Ir.func) ->
      let loads = Hashtbl.create 32 in
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Load { dst; slot; _ } -> Hashtbl.replace loads dst slot
          | _ -> ())
        fn;
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Pac { p_kind = Ir.Kauth; p_src = Ir.Reg r; _ } -> (
              match Hashtbl.find_opt loads r with
              | Some slot ->
                  Hashtbl.replace authed_slots (Ir.slot_to_string slot) ()
              | None -> ())
          | _ -> ())
        fn)
    m.Ir.m_funcs;
  let broke = ref false in
  let fix_block (b : Ir.block) =
    if !broke then b
    else begin
      let paired_store (p : Ir.pac) rest =
        List.exists
          (fun (ins : Ir.instr) ->
            match ins.Ir.i with
            | Ir.Store { src = Ir.Reg r; slot; _ } ->
                r = p.Ir.p_dst
                && Hashtbl.mem authed_slots (Ir.slot_to_string slot)
            | _ -> false)
          rest
      in
      let rec find = function
        | { Ir.i = Ir.Pac ({ p_kind = Ir.Ksign; _ } as p); _ } :: rest
          when paired_store p rest ->
            Some p
        | _ :: rest -> find rest
        | [] -> None
      in
      match find b.Ir.instrs with
      | None -> b
      | Some p ->
          broke := true;
          let instrs =
            List.filter_map
              (fun (ins : Ir.instr) ->
                match ins.Ir.i with
                | Ir.Pac { p_kind = Ir.Ksign; p_dst; _ }
                  when p_dst = p.Ir.p_dst -> None
                | Ir.Store { src = Ir.Reg r; addr; ty; slot }
                  when r = p.Ir.p_dst ->
                    Some
                      {
                        ins with
                        Ir.i = Ir.Store { src = p.Ir.p_src; addr; ty; slot };
                      }
                | _ -> Some ins)
              b.Ir.instrs
          in
          { b with Ir.instrs }
    end
  in
  let funcs =
    List.map
      (fun (fn : Ir.func) ->
        { fn with Ir.blocks = Array.map fix_block fn.Ir.blocks })
      m.Ir.m_funcs
  in
  if !broke then Some { m with Ir.m_funcs = funcs } else None

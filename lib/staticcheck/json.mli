(** Minimal JSON emission (no external dependency): the serialization
    substrate shared by [rstic lint --format=json] and
    [rstic analyze --format=json]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float       (** NaN/infinities render as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Render. [indent] (default true) pretty-prints with two-space
    indentation; [false] emits a compact single line. *)

val of_string : string -> (t, string) result
(** Strict JSON parser over the same value type (tests and CI round-trip
    the telemetry/SARIF documents through it). Integral numbers parse as
    [Int], others as [Float]; [\u] escapes re-encode as UTF-8; trailing
    non-whitespace input is an error. *)

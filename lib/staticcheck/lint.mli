(** The whole-program STI lint pass.

    Runs over the IR + debug metadata after {!Rsti_sti.Analysis} and
    reports the STI-weakening constructs the paper only tabulates, as
    structured {!Finding.t} diagnostics:

    - pointer casts that merge STC equivalence classes, with the ECV/ECT
      growth they cause (rule [type-erasing-cast]);
    - stores through [const]-qualified slots ([const-store]);
    - double-pointer sites that lose their pointee type, and whether the
      CE/FE runtime covers them ([pp-type-loss]);
    - external calls whose [xpac] strip can launder a corrupted pointer
      when FPAC is off ([xpac-launder]);
    - slots whose equivalence class admits undetected substitution under
      STWC/STC ([substitution-window]);
    - loads/stores with missing or dangling [!dbg] metadata
      ([missing-dbg]);
    - writable arrays laid out before pointer slots — the linear-overflow
      attacker window of every Table-1 scenario ([overflow-window]);
    - raw external pointer returns entering the signed domain
      ([extern-pointer-ingress]).

    Findings are deterministic: sorted by (function, line, kind,
    message), duplicates removed. *)

val run : Rsti_sti.Analysis.t -> Rsti_ir.Ir.modul -> Finding.t list

val render_text : file:string -> Finding.t list -> string
(** Human-readable report, one two-line entry per finding plus a
    severity tally. *)

val render_json : file:string -> Finding.t list -> string
(** The {!Finding.report_json} object, pretty-printed, newline
    terminated. *)

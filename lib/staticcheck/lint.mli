(** The whole-program STI lint pass.

    Runs over the IR + debug metadata after {!Rsti_sti.Analysis} and
    reports the STI-weakening constructs the paper only tabulates, as
    structured {!Finding.t} diagnostics:

    - pointer casts that merge STC equivalence classes, with the ECV/ECT
      growth they cause (rule [type-erasing-cast]);
    - stores through [const]-qualified slots ([const-store]);
    - double-pointer sites that lose their pointee type, and whether the
      CE/FE runtime covers them ([pp-type-loss]);
    - external calls whose [xpac] strip can launder a corrupted pointer
      when FPAC is off ([xpac-launder]);
    - slots whose equivalence class admits undetected substitution under
      STWC/STC ([substitution-window]);
    - loads/stores with missing or dangling [!dbg] metadata
      ([missing-dbg]);
    - writable arrays laid out before pointer slots — the linear-overflow
      attacker window of every Table-1 scenario ([overflow-window]);
    - raw external pointer returns entering the signed domain
      ([extern-pointer-ingress]);
    - with [?scope], stack-slot addresses that may outlive their scope
      ([scope-escape]) and dereferences of provably-dead frames
      ([stale-frame-deref]), from {!Rsti_dataflow.Scope_escape};
    - with [?attack_surface], the modifier-collision equivalence classes
      and feasible substitution gadgets of a computed
      {!Attack_surface.surface} ([modifier-collision],
      [feasible-substitution]).

    Findings are deterministic: sorted by (function, line, kind,
    message), duplicates removed. *)

val run :
  ?scope:Rsti_dataflow.Scope_escape.t ->
  ?attack_surface:Rsti_dataflow.Equiv.result list ->
  Rsti_sti.Analysis.t ->
  Rsti_ir.Ir.modul ->
  Finding.t list

val dataflow_findings : Rsti_dataflow.Scope_escape.t -> Finding.t list
(** Only the [scope-escape] / [stale-frame-deref] findings, sorted and
    deduplicated — what [rstic analyze --format=sarif] emits. *)

val render_text : file:string -> Finding.t list -> string
(** Human-readable report, one two-line entry per finding plus a
    severity tally. *)

val render_json : file:string -> Finding.t list -> string
(** The {!Finding.report_json} object, pretty-printed, newline
    terminated. *)

val render_sarif : (string * Finding.t list) list -> string
(** One SARIF 2.1.0 document covering every (file, findings) report:
    [runs[0].tool.driver] is "stilint" with one reportingDescriptor per
    lint rule; each finding becomes a [results[]] entry with [ruleId] =
    the rule's kind name, [level] mapped from severity
    (error/warning/note), and a physicalLocation carrying the file URI
    and, when the finding has a line, the start line. Loadable by any
    SARIF viewer (GitHub code scanning, VS Code SARIF viewer). *)

(* Proof-based instrumentation elision (the static half of the paper's
   overhead story: §6.3.2 shows overhead tracks instrumented load/store
   count, so every sign/auth pair proven consistent is overhead removed
   at zero security cost).

   A slot's sign/auth pair can be elided when three facts hold
   statically:

   1. Modifier consistency: every store that can reach a load of the slot
      signs under the slot's own RSTI-type modifier. In this IR that is
      structural for non-aliased slots (both sites derive the modifier
      from the same slot key, and the interprocedural flow component is
      where cross-slot flows show up) — so the proof obligation reduces
      to the absence of aliased access paths.
   2. No escaping access path: the slot's address never escapes (no
      pointer to it is formed), and its flow component contains no
      heap-resident or anonymous member a same-typed foreign pointer
      could write through, and no cast launders values out of the
      component under a different RSTI-type.
   3. No attacker-writable window: under the linear-overflow attacker
      model (a contiguous write running forward from a writable buffer —
      the classic heap/stack/global overflow), no writable array in the
      same segment ("page class") precedes the slot. Heap slots always
      fail this (attacker allocations neighbour them); globals fail it
      exactly when a writable global array is laid out before them.

   Two categorical exclusions on top:

   - Code pointers are never elided: removing a control-flow check
     trades a CFI guarantee for cycles, which is not this pass's call to
     make. Likewise const slots — their auth IS the permission check.
   - Slots whose flow component stores an extern-derived (heap) pointer
     are never elided: every signed heap pointer has same-typed siblings
     living in attacker-window memory (the heap), so a substitution
     donor always exists regardless of where the slot itself lives. *)

module Ir = Rsti_ir.Ir
module Ctype = Rsti_minic.Ctype
module Analysis = Rsti_sti.Analysis
module Points_to = Rsti_dataflow.Points_to
module Scope_escape = Rsti_dataflow.Scope_escape

type mode = Off | Syntactic | With_points_to | With_context of int

let mode_to_string = function
  | Off -> "off"
  | Syntactic -> "syntactic"
  | With_points_to -> "points-to"
  | With_context k -> Printf.sprintf "context:%d" k

let default_context_k = 2

let mode_of_string = function
  | "off" -> Some Off
  | "syntactic" | "on" -> Some Syntactic
  | "points-to" | "points_to" | "pt" -> Some With_points_to
  | "context" | "cs" -> Some (With_context default_context_k)
  | s when String.length s > 8 && String.sub s 0 8 = "context:" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some k when k >= 0 -> Some (With_context k)
      | _ -> None)
  | _ -> None

type reason =
  | Heap_reachable     (* field/anonymous slot: attacker heap neighbours *)
  | Address_escapes    (* &slot is formed: aliased stores possible *)
  | Code_pointer       (* never trade a CFI check away *)
  | Const_slot         (* the auth IS the permission check: keep it *)
  | Heap_value         (* holds extern-derived (heap) pointers: donors exist *)
  | Overflow_window    (* a writable global array precedes it in layout *)
  | Cast_in_component  (* values laundered through casts in the component *)
  | Component_escapes  (* flow component has escaping/heap members *)
  | Scope_escapes      (* a local in the component provably outlives its
                          frame (scope checker's refinement of a failed
                          confinement discharge) *)

type verdict = Provably_safe | Must_check of reason

let reason_to_string = function
  | Heap_reachable -> "heap-reachable"
  | Address_escapes -> "address-escapes"
  | Code_pointer -> "code-pointer"
  | Const_slot -> "const-slot"
  | Heap_value -> "heap-value"
  | Overflow_window -> "overflow-window"
  | Cast_in_component -> "cast-in-component"
  | Component_escapes -> "component-escapes"
  | Scope_escapes -> "scope-escapes"

let verdict_to_string = function
  | Provably_safe -> "provably-safe"
  | Must_check r -> "must-check:" ^ reason_to_string r

type t = {
  anal : Analysis.t;
  windowed : (int, unit) Hashtbl.t;   (* global var ids behind a window *)
  tainted : (string, unit) Hashtbl.t; (* component roots storing heap ptrs *)
  comp_cache : (string, reason option) Hashtbl.t;
  conf : Points_to.confinement option; (* attacker model, when points-to ran *)
  scope : Scope_escape.t option; (* scope checker, in context mode *)
}

(* Does a global of this type open a forward-overflow window over the
   rest of the globals segment? Writable arrays do; so do structs
   containing one. *)
let rec has_writable_array lookup ty =
  match ty with
  | Ctype.Array (elem, _) -> not (Ctype.is_const elem)
  | Ctype.Struct s ->
      List.exists (fun (_, fty) -> has_writable_array lookup fty) (lookup s)
  | Ctype.Const _ -> false
  | Ctype.Void | Ctype.Char | Ctype.Int | Ctype.Long | Ctype.Double
  | Ctype.Ptr _ | Ctype.Func _ ->
      false

let opens_window m ty = has_writable_array (Ir.struct_lookup m) ty

let analyze ?points_to ?scope anal (m : Ir.modul) : t =
  let windowed = Hashtbl.create 16 in
  let window_open = ref false in
  List.iter
    (fun (g : Ir.global_def) ->
      let v = g.gvar in
      if !window_open then Hashtbl.replace windowed v.Rsti_minic.Tast.v_id ();
      if opens_window m v.Rsti_minic.Tast.v_ty then window_open := true)
    m.m_globals;
  (* Heap-value taint: a slot storing an extern return (malloc and
     friends, looking through casts) holds a heap pointer. Every signed
     heap pointer has same-typed siblings reachable from attacker-window
     memory, so a substitution donor always exists — the slot and its
     whole flow component stay checked. *)
  let tainted = Hashtbl.create 16 in
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.name ()) m.m_funcs;
  List.iter
    (fun (fn : Ir.func) ->
      let defs = Hashtbl.create 64 in
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Bitcast { dst; _ } | Ir.Call { dst = Some dst; _ } ->
              Hashtbl.replace defs dst ins.i
          | _ -> ())
        fn;
      let rec from_extern v =
        match v with
        | Ir.Reg r -> (
            match Hashtbl.find_opt defs r with
            | Some (Ir.Bitcast { src; _ }) -> from_extern src
            | Some (Ir.Call { callee = Ir.Direct f; _ }) ->
                not (Hashtbl.mem defined f)
            | _ -> false)
        | _ -> false
      in
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Store { slot; src; ty; _ }
            when Ctype.is_pointer ty && from_extern src ->
              Hashtbl.replace tainted (Analysis.component_of anal slot) ()
          | _ -> ())
        fn)
    m.m_funcs;
  (* The attacker model for points-to discharge seeds on exactly the
     memory the syntactic rules assume writable: the overflow-window
     victims computed above, plus what the points-to analysis itself
     knows (heap allocations, extern data, escapees, int-laundered
     pointers), closed under stored-pointer contents. *)
  let conf =
    match points_to with
    | None -> None
    | Some pt ->
        let windowed_ids = Hashtbl.fold (fun id () acc -> id :: acc) windowed [] in
        Some (Points_to.confinement ~windowed:windowed_ids pt)
  in
  { anal; windowed; tainted; comp_cache = Hashtbl.create 64; conf; scope }

(* The component-level obligations, cached per component root. *)
let component_reason t slot =
  let root = Analysis.component_of t.anal slot in
  match Hashtbl.find_opt t.comp_cache root with
  | Some r -> r
  | None ->
      let members = Analysis.component_of_slot t.anal slot in
      let r =
        if
          List.exists
            (fun (si : Analysis.slot_info) -> Analysis.cast_occs t.anal si <> [])
            members
        then Some Cast_in_component
        else if
          List.exists
            (fun (si : Analysis.slot_info) ->
              match si.kind with
              | Analysis.Kfield _ | Analysis.Kanon -> true
              | Analysis.Klocal | Analysis.Kparam | Analysis.Kglobal -> (
                  match si.slot with
                  | Ir.Svar id -> Analysis.address_taken t.anal id
                  | _ -> true))
            members
        then Some Component_escapes
        else None
      in
      Hashtbl.replace t.comp_cache root r;
      r

let syntactic_verdict t (slot : Ir.slot) : verdict =
  match Analysis.alias_slot t.anal slot with
  | Ir.Sfield _ | Ir.Sanon _ -> Must_check Heap_reachable
  | Ir.Svar id as slot -> (
      let si = Analysis.slot_info t.anal slot in
      if Analysis.address_taken t.anal id then Must_check Address_escapes
      else if Ctype.is_code_pointer si.sty then Must_check Code_pointer
      else if si.read_only then Must_check Const_slot
      else if Hashtbl.mem t.tainted (Analysis.component_of t.anal slot) then
        Must_check Heap_value
      else if si.kind = Analysis.Kglobal && Hashtbl.mem t.windowed id then
        Must_check Overflow_window
      else
        match component_reason t slot with
        | Some r -> Must_check r
        | None -> Provably_safe)

(* Obligations a confinement proof may discharge. They all assert the
   *possibility* of an attacker-writable access path to the slot —
   exactly what points-to confinement refutes. The other four are
   categorical: code pointers and const slots are policy (never trade a
   CFI/permission check for cycles), heap-value slots always have
   substitution donors, and overflow-window victims are attacker seeds
   of the confinement itself (so they can never be proven confined). *)
let dischargeable = function
  | Heap_reachable | Address_escapes | Cast_in_component | Component_escapes ->
      true
  | Code_pointer | Const_slot | Heap_value | Overflow_window | Scope_escapes ->
      false

(* The categorical obligations re-checked on the discharge path: the
   syntactic verdict reports the *first* failing obligation, so an
   aliased code-pointer slot reads [Address_escapes] — discharging that
   must not elide the CFI check hiding behind it. *)
let categorical_reason t (slot : Ir.slot) : reason option =
  let si = Analysis.slot_info t.anal slot in
  if Ctype.is_code_pointer si.sty then Some Code_pointer
  else if si.read_only then Some Const_slot
  else if Hashtbl.mem t.tainted (Analysis.component_of t.anal slot) then
    Some Heap_value
  else
    match slot with
    | Ir.Svar id when si.kind = Analysis.Kglobal && Hashtbl.mem t.windowed id
      ->
        Some Overflow_window
    | _ -> None

(* The scope checker's diagnostic refinement: when a discharge fails
   and some local in the slot's flow component provably outlives its
   frame, the blanket "escapes somewhere" reason becomes the concrete
   frame-exit. Never changes the safe/must-check partition — the scope
   lattice is coarser than the attacker closure on exactly the
   obligations elision discharges, so confinement subsumes it as a
   gate; what it adds is the *which scope ended* answer. *)
let scope_reason t (slot : Ir.slot) : reason option =
  match t.scope with
  | None -> None
  | Some sc ->
      let members = Analysis.component_of_slot t.anal slot in
      if
        List.exists
          (fun (si : Analysis.slot_info) ->
            match si.slot with
            | Ir.Svar id -> (
                (match si.kind with
                | Analysis.Klocal | Analysis.Kparam -> true
                | _ -> false)
                && Scope_escape.may_escape sc id)
            | _ -> false)
          members
      then Some Scope_escapes
      else None

let verdict t (slot : Ir.slot) : verdict =
  let v = syntactic_verdict t slot in
  match (v, t.conf) with
  | Provably_safe, _ | _, None -> v
  | Must_check r, Some conf when dischargeable r -> (
      let aslot = Analysis.alias_slot t.anal slot in
      if Points_to.confined_slot conf aslot then
        match categorical_reason t aslot with
        | Some r' -> Must_check r'
        | None -> Provably_safe
      else
        match scope_reason t aslot with Some r' -> Must_check r' | None -> v)
  | Must_check _, Some _ -> v

let elide t slot = verdict t slot = Provably_safe

(* Would the instrumentation pass touch this slot at all under the three
   RSTI mechanisms? (Mirrors Instrument.should_instrument: fields,
   anonymous slots, globals, and escaping locals/params.) *)
let is_candidate t (si : Analysis.slot_info) =
  Ctype.is_pointer si.sty
  &&
  match si.kind with
  | Analysis.Kglobal | Analysis.Kfield _ | Analysis.Kanon -> true
  | Analysis.Klocal | Analysis.Kparam -> (
      match si.slot with
      | Ir.Svar id -> Analysis.address_taken t.anal id
      | _ -> true)

type summary = {
  candidates : int;
  safe : int;
  reasons : (reason * int) list;
}

let summary t =
  let cands =
    List.filter (is_candidate t) (Analysis.pointer_vars t.anal)
  in
  let verdicts = List.map (fun si -> verdict t si.Analysis.slot) cands in
  let reasons =
    List.filter_map
      (fun r ->
        let n = List.length (List.filter (( = ) (Must_check r)) verdicts) in
        if n = 0 then None else Some (r, n))
      [
        Heap_reachable; Address_escapes; Code_pointer; Const_slot;
        Heap_value; Overflow_window; Cast_in_component; Component_escapes;
        Scope_escapes;
      ]
  in
  {
    candidates = List.length cands;
    safe = List.length (List.filter (( = ) Provably_safe) verdicts);
    reasons;
  }

let summary_to_string s =
  Printf.sprintf "elision: %d/%d candidate slots provably safe%s" s.safe
    s.candidates
    (if s.reasons = [] then ""
     else
       " ("
       ^ String.concat ", "
           (List.map
              (fun (r, n) -> Printf.sprintf "%s: %d" (reason_to_string r) n)
              s.reasons)
       ^ ")")

(* Obligations-discharged tallies for the metrics registry
   ([elide.<precision>.{candidates,safe,reason.<r>}]). Computing a
   summary walks every candidate slot, so this runs only while
   {!Rsti_observe.Observe.enabled}; the final shadowing below puts the
   tally on every [analyze]/[pred] call site, in and outside this
   module. *)
let tally t =
  if Rsti_observe.Observe.enabled () then begin
    let prefix =
      match (t.conf, t.scope) with
      | None, _ -> "elide.syntactic."
      | Some _, None -> "elide.points_to."
      | Some _, Some _ -> "elide.context."
    in
    let add name n =
      Rsti_observe.Observe.Metrics.add
        (Rsti_observe.Observe.Metrics.counter (prefix ^ name))
        n
    in
    let s = summary t in
    add "candidates" s.candidates;
    add "safe" s.safe;
    List.iter (fun (r, n) -> add ("reason." ^ reason_to_string r) n) s.reasons
  end

let analyze ?points_to ?scope anal m =
  let t = analyze ?points_to ?scope anal m in
  tally t;
  t

(* The elision predicate handed to [Instrument.instrument ~elide], at a
   chosen precision; [Off] means no predicate (instrument everything). *)
let pred mode anal (m : Ir.modul) : (Ir.slot -> bool) option =
  match mode with
  | Off -> None
  | Syntactic -> Some (elide (analyze anal m))
  | With_points_to ->
      let pt = Points_to.analyze m in
      Some (elide (analyze ~points_to:pt anal m))
  | With_context k ->
      let pt = Points_to.analyze ~mode:(Points_to.Cloning k) m in
      let scope = Scope_escape.analyze ~points_to:pt m in
      Some (elide (analyze ~points_to:pt ~scope anal m))

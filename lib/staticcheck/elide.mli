(** Proof-based instrumentation elision.

    Classifies every instrumentation-candidate slot as [Provably_safe]
    (its sign/auth pair can be removed with no loss of detection) or
    [Must_check] with the discharging obligation that failed. A slot is
    provably safe when every store reaching a load of it is a
    same-RSTI-type sign in the same flow component, its address never
    escapes the component, and no attacker-writable window (writable
    global array earlier in layout, or heap adjacency) aliases it. Code
    pointers are never elided.

    The syntactic rules over-approximate reachability: "a cast appears
    in the component" or "the slot is a struct field" assume an
    attacker-writable access path exists. Passing a
    {!Rsti_dataflow.Points_to} result upgrades those obligations to a
    points-to question — a slot whose every backing object is provably
    outside the attacker-writable closure (heap, extern data, escapees,
    overflow-window victims, laundered pointers, closed under stored
    contents) is discharged. Code pointers, const slots, heap-value
    donors and overflow-window victims stay categorical. *)

(** Elision precision: [Off] instruments everything, [Syntactic] uses
    the flow-component rules alone, [With_points_to] additionally
    discharges obligations by points-to confinement, and
    [With_context k] discharges with the k-limited call-site-cloned
    solution ({!Rsti_dataflow.Points_to.mode} [Cloning k]) plus the
    {!Rsti_dataflow.Scope_escape} checker — a strictly sharper attacker
    closure, so its safe set always contains [With_points_to]'s. *)
type mode = Off | Syntactic | With_points_to | With_context of int

val mode_to_string : mode -> string
(** ["off"], ["syntactic"], ["points-to"], or ["context:K"]. *)

val mode_of_string : string -> mode option
(** Accepts the {!mode_to_string} spellings plus ["on"]/["pt"]/["cs"]
    aliases; bare ["context"] means [With_context 2]. *)

type reason =
  | Heap_reachable
  | Address_escapes
  | Code_pointer
  | Const_slot
  | Heap_value
  | Overflow_window
  | Cast_in_component
  | Component_escapes
  | Scope_escapes
      (** a local in the flow component provably outlives its frame —
          the scope checker's refinement of a failed discharge (only
          reported when a {!Rsti_dataflow.Scope_escape} result was
          supplied; never changes the safe/must-check partition) *)

type verdict = Provably_safe | Must_check of reason

val reason_to_string : reason -> string
val verdict_to_string : verdict -> string

type t

val opens_window : Rsti_ir.Ir.modul -> Rsti_minic.Ctype.t -> bool
(** Does a slot of this type open a forward linear-overflow window over
    whatever is laid out behind it? True for writable arrays and structs
    containing one. Shared with the lint's [overflow-window] rule. *)

val analyze :
  ?points_to:Rsti_dataflow.Points_to.t ->
  ?scope:Rsti_dataflow.Scope_escape.t ->
  Rsti_sti.Analysis.t ->
  Rsti_ir.Ir.modul ->
  t
(** Build the elision map for a module (computes the global-segment
    overflow windows from declaration-order layout and caches
    per-flow-component obligations). With [?points_to], builds the
    attacker-confinement closure (seeded with the overflow-window
    victims) and discharges dischargeable obligations through it — any
    {!Rsti_dataflow.Points_to.mode}'s solution works, and a cloned one
    discharges at least as many slots. With [?scope], failed discharges
    whose component contains a provably frame-escaping local report
    [Scope_escapes] instead of the blanket escape reason. *)

val verdict : t -> Rsti_ir.Ir.slot -> verdict
(** Classification of a slot (after alias resolution). Unknown slots are
    conservatively [Must_check]. *)

val syntactic_verdict : t -> Rsti_ir.Ir.slot -> verdict
(** The flow-component verdict alone, ignoring any points-to result —
    what {!verdict} returns on a [t] built without [?points_to]. The
    soundness-monotonicity property tests compare the two: points-to may
    only move slots from [Must_check] to [Provably_safe], never the
    reverse. *)

val dischargeable : reason -> bool
(** Whether a confinement proof may discharge this obligation. *)

val elide : t -> Rsti_ir.Ir.slot -> bool
(** [true] iff {!verdict} is [Provably_safe] — the predicate handed to
    [Rsti.Instrument.instrument ~elide]. *)

val pred :
  mode ->
  Rsti_sti.Analysis.t ->
  Rsti_ir.Ir.modul ->
  (Rsti_ir.Ir.slot -> bool) option
(** The elision predicate at a chosen precision ([None] when [Off]);
    [With_points_to] runs {!Rsti_dataflow.Points_to.analyze} internally.
    The engine's cache computes and memoizes the pieces itself. *)

type summary = {
  candidates : int;  (** slots the instrumentation pass would touch *)
  safe : int;        (** of those, provably safe *)
  reasons : (reason * int) list;  (** must-check tally, fixed order *)
}

val summary : t -> summary
val summary_to_string : summary -> string

(** Proof-based instrumentation elision.

    Classifies every instrumentation-candidate slot as [Provably_safe]
    (its sign/auth pair can be removed with no loss of detection) or
    [Must_check] with the discharging obligation that failed. A slot is
    provably safe when every store reaching a load of it is a
    same-RSTI-type sign in the same flow component, its address never
    escapes the component, and no attacker-writable window (writable
    global array earlier in layout, or heap adjacency) aliases it. Code
    pointers are never elided. *)

type reason =
  | Heap_reachable
  | Address_escapes
  | Code_pointer
  | Const_slot
  | Heap_value
  | Overflow_window
  | Cast_in_component
  | Component_escapes

type verdict = Provably_safe | Must_check of reason

val reason_to_string : reason -> string
val verdict_to_string : verdict -> string

type t

val opens_window : Rsti_ir.Ir.modul -> Rsti_minic.Ctype.t -> bool
(** Does a slot of this type open a forward linear-overflow window over
    whatever is laid out behind it? True for writable arrays and structs
    containing one. Shared with the lint's [overflow-window] rule. *)

val analyze : Rsti_sti.Analysis.t -> Rsti_ir.Ir.modul -> t
(** Build the elision map for a module (computes the global-segment
    overflow windows from declaration-order layout and caches
    per-flow-component obligations). *)

val verdict : t -> Rsti_ir.Ir.slot -> verdict
(** Classification of a slot (after alias resolution). Unknown slots are
    conservatively [Must_check]. *)

val elide : t -> Rsti_ir.Ir.slot -> bool
(** [true] iff {!verdict} is [Provably_safe] — the predicate handed to
    [Rsti.Instrument.instrument ~elide]. *)

type summary = {
  candidates : int;  (** slots the instrumentation pass would touch *)
  safe : int;        (** of those, provably safe *)
  reasons : (reason * int) list;  (** must-check tally, fixed order *)
}

val summary : t -> summary
val summary_to_string : summary -> string
